// Package jmake is a from-scratch reproduction of JMake (Lawall & Muller,
// DSN 2017): dependable compilation checking for Linux-kernel janitors.
//
// JMake answers one question: after a patch compiles, were all of its
// changed lines actually seen by the compiler? In a highly configurable
// code base any line can be excluded by conditional compilation, so a
// clean build is not evidence that a change was checked. JMake mutates the
// changed lines with tokens that are invalid in C but survive
// preprocessing, selects candidate architectures and configurations by
// heuristics, and verifies that every token reaches a .i file whose
// translation unit also compiles cleanly.
//
// The package exposes three layers:
//
//   - Checking: NewSession/Checker over a source tree, CheckCommit over a
//     repository — the paper's tool (§III).
//   - Substrate generation: GenerateKernel and SynthesizeHistory build the
//     kernel-shaped tree and commit history the evaluation runs against
//     (substituting for the real kernel, see DESIGN.md).
//   - Evaluation: Evaluate reproduces the paper's §V study; the returned
//     Run aggregates every table and figure.
//
// A minimal check of the latest commit:
//
//	tree, man, _ := jmake.GenerateKernel(1, 0.2)
//	hist, _ := jmake.SynthesizeHistory(tree, man, 2, 0.02)
//	ids, _ := hist.Repo.Between("v4.3", "v4.4", jmake.ModifyingNonMerge)
//	report, _ := jmake.CheckCommit(hist.Repo, ids[len(ids)-1], jmake.Options{})
//	fmt.Println(report.Certified())
package jmake

import (
	"fmt"

	"jmake/internal/ccache"
	"jmake/internal/commitgen"
	"jmake/internal/core"
	"jmake/internal/eval"
	"jmake/internal/faultinject"
	"jmake/internal/fstree"
	"jmake/internal/incr"
	"jmake/internal/janitor"
	"jmake/internal/kernelgen"
	"jmake/internal/maintainers"
	"jmake/internal/textdiff"
	"jmake/internal/trace"
	"jmake/internal/vclock"
	"jmake/internal/vcs"
)

// Core checking types (paper §III).
type (
	// Report is the outcome of checking one patch.
	Report = core.PatchReport
	// FileOutcome is the per-file result inside a Report.
	FileOutcome = core.FileOutcome
	// Status classifies a file outcome.
	Status = core.Status
	// Escape pairs an unwitnessed mutation with its diagnosed reason.
	Escape = core.Escape
	// EscapeReason is the Table IV taxonomy.
	EscapeReason = core.EscapeReason
	// Mutation is one inserted @"kind:file:line" token.
	Mutation = core.Mutation
	// MutateResult is the outcome of mutating one file.
	MutateResult = core.MutateResult
	// Options tune the checker (group sizes, header-candidate limits).
	Options = core.Options
	// Session shares window-invariant state across many checks.
	Session = core.Session
	// Checker runs JMake against one source snapshot.
	Checker = core.Checker
	// FaultPlan configures deterministic fault injection (Options.Faults);
	// the zero plan injects nothing.
	FaultPlan = faultinject.Plan
	// FaultEvent is one injected fault recorded in a Report.
	FaultEvent = faultinject.Event
	// ResultCache is the shared compile-result cache: content-addressed
	// .i/.o verdicts keyed by include-closure fingerprints, shared across
	// patches via a Session and optionally persisted across runs.
	ResultCache = ccache.Cache
	// ResultCacheStats snapshots a ResultCache's counters.
	ResultCacheStats = ccache.StatsSet
)

// NewResultCache returns an empty compile-result cache, e.g. to share one
// cache across several Sessions via Session.SetResultCache.
func NewResultCache() *ResultCache { return ccache.New() }

// LoadResultCache returns a compile-result cache warm-started from dir
// (best-effort: a missing or corrupt cache file just yields a cold cache).
// Persist it back with SaveResultCache after checking.
func LoadResultCache(dir string) *ResultCache {
	c := ccache.New()
	c.Load(dir)
	return c
}

// SaveResultCache persists a cache to dir for future LoadResultCache
// calls, evicting least-recently-used entries beyond maxBytes (0 = the
// 64 MiB default).
func SaveResultCache(c *ResultCache, dir string, maxBytes int64) error {
	return c.Save(dir, maxBytes)
}

// Re-exported statuses.
const (
	StatusCertified       = core.StatusCertified
	StatusCommentOnly     = core.StatusCommentOnly
	StatusEscapes         = core.StatusEscapes
	StatusBuildFailed     = core.StatusBuildFailed
	StatusSetupFile       = core.StatusSetupFile
	StatusUnsupportedArch = core.StatusUnsupportedArch
	StatusNoMakefile      = core.StatusNoMakefile
	StatusBudgetExhausted = core.StatusBudgetExhausted
	StatusArchQuarantined = core.StatusArchQuarantined
	StatusStaticDead      = core.StatusStaticDead
	StatusCanceled        = core.StatusCanceled
)

// StaticDisagreement is one static/dynamic cross-check failure recorded in
// a Report when Options.StaticPresence is enabled (any entry indicates a
// bug in the static analysis, not in the patch).
type StaticDisagreement = core.StaticDisagreement

// UniformFaultPlan builds a fault plan applying rate to every fault class
// (transient preprocessor and config failures, truncated .i output,
// mid-run cross-compiler breakage, stalls), keyed by seed.
func UniformFaultPlan(seed uint64, rate float64) FaultPlan {
	return faultinject.Uniform(seed, rate)
}

// Re-exported escape reasons (Table IV).
const (
	EscapeIfdefNotAllyes = core.EscapeIfdefNotAllyes
	EscapeIfdefNeverSet  = core.EscapeIfdefNeverSet
	EscapeIfdefModule    = core.EscapeIfdefModule
	EscapeIfndefOrElse   = core.EscapeIfndefOrElse
	EscapeBothBranches   = core.EscapeBothBranches
	EscapeIfZero         = core.EscapeIfZero
	EscapeUnusedMacro    = core.EscapeUnusedMacro
	EscapeOther          = core.EscapeOther
)

// Substrate types.
type (
	// Tree is an in-memory source tree.
	Tree = fstree.Tree
	// Manifest describes what GenerateKernel produced.
	Manifest = kernelgen.Manifest
	// History is a synthesized repository with its janitor roster.
	History = commitgen.Result
	// Repo is the version-control store.
	Repo = vcs.Repo
	// Commit is one history node.
	Commit = vcs.Commit
	// LogOptions filter history walks.
	LogOptions = vcs.LogOptions
	// JanitorSpec is one Table II roster row.
	JanitorSpec = commitgen.JanitorSpec
	// JanitorStats is one measured Table II row.
	JanitorStats = janitor.AuthorStats
	// JanitorThresholds are the Table I criteria.
	JanitorThresholds = janitor.Thresholds
)

// Evaluation types (paper §V).
type (
	// EvalParams configure a full evaluation run.
	EvalParams = eval.Params
	// Run is a completed evaluation with per-patch results and the
	// aggregations behind every table and figure.
	Run = eval.Run
	// PatchResult is one window commit's outcome.
	PatchResult = eval.PatchResult
)

// FileDiff is one file's unified diff.
type FileDiff = textdiff.FileDiff

// ModifyingNonMerge matches the paper's git-log filters
// (-w --diff-filter=M --no-merges, §V-A).
var ModifyingNonMerge = vcs.LogOptions{NoMerges: true, OnlyModify: true}

// DiffFiles computes the unified diff between two versions of a file,
// reporting false when they are identical.
func DiffFiles(path, oldContent, newContent string) (FileDiff, bool) {
	return textdiff.Diff(path, path, oldContent, newContent)
}

// FormatDiff renders a FileDiff in unified-diff format.
func FormatDiff(fd FileDiff) string { return textdiff.Format(fd) }

// ParsePatch parses unified-diff text (as produced by git show or diff -u)
// into per-file diffs.
func ParsePatch(text string) ([]FileDiff, error) { return textdiff.ParsePatch(text) }

// ApplyPatch applies per-file diffs to a tree in place, returning an error
// if any hunk fails to apply (mirroring the patch(1) tool).
func ApplyPatch(tree *Tree, fds []FileDiff) error {
	for _, fd := range fds {
		old, err := tree.Read(fd.OldPath)
		if err != nil {
			return fmt.Errorf("jmake: %w", err)
		}
		patched, err := textdiff.Apply(old, fd)
		if err != nil {
			return fmt.Errorf("jmake: applying to %s: %w", fd.OldPath, err)
		}
		tree.Write(fd.NewPath, patched)
	}
	return nil
}

// CheckPatchText is the janitor's entry point: given a pre-patch tree and
// unified-diff text, apply the patch and verify that every changed line is
// subjected to the compiler. The tree is not modified; checking happens on
// a patched clone.
func CheckPatchText(tree *Tree, patchText string, opts Options) (*Report, error) {
	fds, err := ParsePatch(patchText)
	if err != nil {
		return nil, fmt.Errorf("jmake: %w", err)
	}
	if len(fds) == 0 {
		return nil, fmt.Errorf("jmake: no file diffs found in patch")
	}
	snapshot := tree.Clone()
	if err := ApplyPatch(snapshot, fds); err != nil {
		return nil, err
	}
	session, err := core.NewSession(snapshot)
	if err != nil {
		return nil, fmt.Errorf("jmake: %w", err)
	}
	kept := fds[:0:0]
	for _, fd := range fds {
		if eval.RelevantPath(fd.NewPath) {
			kept = append(kept, fd)
		}
	}
	checker := session.Checker(snapshot, vclock.DefaultModel(uint64(len(patchText))), opts)
	return checker.CheckPatch("patch", kept)
}

// GenerateKernel builds the kernel-shaped source tree: 26 architectures,
// Kconfig and Kbuild hierarchies, subsystem headers, drivers with
// conditional-compilation structure, MAINTAINERS, and build metadata.
// scale 1.0 yields roughly 730 drivers across 32 subsystems; the full
// evaluation uses 1.6 (~1,170 drivers), sized so the Table II janitors'
// file spreads fit.
func GenerateKernel(seed int64, scale float64) (*Tree, *Manifest, error) {
	return kernelgen.Generate(kernelgen.Params{Seed: seed, Scale: scale})
}

// SynthesizeHistory builds the commit history over a generated tree: the
// v3.0→v4.3 background (janitor profiles per Table II) and the v4.3→v4.4
// evaluation window (12,946 modifying commits at scale 1.0, with the
// paper's edit-class mix).
func SynthesizeHistory(tree *Tree, man *Manifest, seed int64, scale float64) (*History, error) {
	return commitgen.Build(tree, man, commitgen.Params{Seed: seed, Scale: scale})
}

// NewSession captures the state shared by checks against snapshots of the
// same tree (architectures, build metadata, configuration cache).
func NewSession(base *Tree) (*Session, error) { return core.NewSession(base) }

// NewChecker builds a checker over one post-patch snapshot. seed feeds the
// deterministic virtual-time model used for reported durations.
func NewChecker(session *Session, tree *Tree, seed uint64, opts Options) *Checker {
	return session.Checker(tree, vclock.DefaultModel(seed), opts)
}

// CheckCommit runs JMake on one commit of a repository: it checks out the
// post-commit snapshot, extracts the patch, and verifies that every
// changed line is subjected to the compiler.
func CheckCommit(repo *Repo, id string, opts Options) (*Report, error) {
	tree, err := repo.CheckoutTree(id)
	if err != nil {
		return nil, fmt.Errorf("jmake: %w", err)
	}
	session, err := core.NewSession(tree)
	if err != nil {
		return nil, fmt.Errorf("jmake: %w", err)
	}
	return checkCommitWith(session, repo, tree, id, opts)
}

// CheckCommitWith is CheckCommit reusing a shared Session, so many
// commits share one arch index, configuration cache, token cache and
// compile-result cache. Verdicts are identical to CheckCommit's.
func CheckCommitWith(session *Session, repo *Repo, id string, opts Options) (*Report, error) {
	tree, err := repo.CheckoutTree(id)
	if err != nil {
		return nil, fmt.Errorf("jmake: %w", err)
	}
	return checkCommitWith(session, repo, tree, id, opts)
}

func checkCommitWith(session *Session, repo *Repo, tree *Tree, id string, opts Options) (*Report, error) {
	fds, err := repo.FileDiffs(id)
	if err != nil {
		return nil, fmt.Errorf("jmake: %w", err)
	}
	kept := fds[:0:0]
	for _, fd := range fds {
		if eval.RelevantPath(fd.NewPath) {
			kept = append(kept, fd)
		}
	}
	checker := session.Checker(tree, vclock.DefaultModel(uint64(len(id))), opts)
	return checker.CheckPatch(id, kept)
}

// Tracing types (internal/trace): spans are stamped with virtual times
// from the deterministic cost model, so a trace is a reproducible
// artifact, byte-identical at any concurrency and any cache state.
type (
	// TraceSpan is one node of a recorded virtual-time span tree.
	TraceSpan = trace.Span
	// SessionTrace is a merged session trace ready for export (Chrome
	// trace-event JSON, plain-text tree, per-stage summary).
	SessionTrace = trace.Trace
)

// CheckCommitTraced is CheckCommitWith additionally recording the
// patch's virtual-time span tree. The returned span is unstamped;
// assemble one or more of them with MergeTraces before exporting.
func CheckCommitTraced(session *Session, repo *Repo, id string, opts Options) (*Report, *TraceSpan, error) {
	tree, err := repo.CheckoutTree(id)
	if err != nil {
		return nil, nil, fmt.Errorf("jmake: %w", err)
	}
	fds, err := repo.FileDiffs(id)
	if err != nil {
		return nil, nil, fmt.Errorf("jmake: %w", err)
	}
	kept := fds[:0:0]
	for _, fd := range fds {
		if eval.RelevantPath(fd.NewPath) {
			kept = append(kept, fd)
		}
	}
	model := vclock.DefaultModel(uint64(len(id)))
	checker := session.Checker(tree, model, opts)
	rec := trace.NewRecorder(trace.KindPatch, model.NewClock(), trace.A("commit", id))
	checker.SetTrace(rec)
	report, err := checker.CheckPatch(id, kept)
	if err != nil {
		return nil, nil, err
	}
	return report, rec.Finish(), nil
}

// MergeTraces assembles per-patch span trees — in checking order, which
// must be deterministic for the result to be — into a session trace and
// stamps the deterministic cache outcomes (first occurrence of each
// content key = "compute", repeats = "reuse"). Nil spans are skipped.
func MergeTraces(spans ...*TraceSpan) *SessionTrace {
	t := &trace.Trace{}
	for _, s := range spans {
		if s != nil {
			t.Spans = append(t.Spans, s)
		}
	}
	t.Stamp()
	return t
}

// Mutate inserts mutation tokens for the changed lines of one file,
// following the placement rules of paper §III-B. Exposed for tooling that
// wants the mutation engine without the build pipeline.
func Mutate(path, content string, changedLines []int) MutateResult {
	return core.Mutate(path, content, changedLines)
}

// IdentifyJanitors runs the §IV study over a repository.
func IdentifyJanitors(repo *Repo, maintainersText string, th JanitorThresholds) ([]JanitorStats, error) {
	return IdentifyJanitorsWorkers(repo, maintainersText, th, 1)
}

// IdentifyJanitorsWorkers is IdentifyJanitors with the per-commit tallying
// fanned over workers; the result is identical at any worker count.
func IdentifyJanitorsWorkers(repo *Repo, maintainersText string, th JanitorThresholds, workers int) ([]JanitorStats, error) {
	entries, err := maintainers.Parse(maintainersText)
	if err != nil {
		return nil, fmt.Errorf("jmake: %w", err)
	}
	return janitor.IdentifyWorkers(repo, maintainers.NewIndex(entries), "v3.0", "v4.3", "v4.4", th, workers)
}

// DefaultJanitorThresholds returns Table I's values.
func DefaultJanitorThresholds() JanitorThresholds { return janitor.DefaultThresholds() }

// Annotate renders a checked patch with per-line verdicts: ✓ witnessed by
// the compiler, ✗ escaped (with the diagnosis), · comment-only. This is
// the human-facing form of JMake's answer.
func Annotate(fds []FileDiff, report *Report) string { return core.Annotate(fds, report) }

// CoverageRatio summarizes a report: compiler-witnessed changed lines over
// all compiler-relevant changed lines.
func CoverageRatio(report *Report) (covered, relevant int) {
	return core.CoverageRatio(report)
}

// Evaluate reproduces the paper's §V evaluation end to end and returns the
// run with every table and figure computable from it.
func Evaluate(p EvalParams) (*Run, error) { return eval.Execute(p) }

// Incremental follower types (internal/incr): a long-lived session that
// consumes a commit stream and re-checks each commit with cost
// proportional to the diff, emitting reports byte-identical to
// from-scratch checks.
type (
	// Follower is the incremental commit-stream checker.
	Follower = incr.Follower
	// FollowOptions configure a Follower.
	FollowOptions = incr.Options
	// FollowStep is one followed commit's outcome with its cost stats.
	FollowStep = incr.StepResult
	// ReactiveParams configure the reactive benchmark replay.
	ReactiveParams = incr.ReactiveParams
	// ReactiveReport is the reactive section of BENCH_pipeline.json.
	ReactiveReport = eval.ReactiveReport
)

// NewFollower seeds an incremental follower at baseID: one full checkout
// and session build, after which each Step costs proportional to its
// commit's diff.
func NewFollower(repo *Repo, baseID string, opts FollowOptions) (*Follower, error) {
	return incr.NewFollower(repo, baseID, opts)
}

// RunReactive replays the evaluation window's commit stream against one
// warm follower and reports per-commit virtual (= cold) vs effective
// cost (cmd/jmake-bench -reactive).
func RunReactive(repo *Repo, p ReactiveParams) (*ReactiveReport, error) {
	return incr.RunReactive(repo, p)
}

// BenchReport is the pipeline benchmark output (cmd/jmake-bench).
type BenchReport = eval.BenchReport

// RunBenchmarks prepares one evaluation substrate and measures window
// throughput at 1/2/4/8 workers plus a cold-then-warm result-cache pair
// against cacheDir (which must start empty).
func RunBenchmarks(p EvalParams, cacheDir string) (*BenchReport, error) {
	return eval.RunBenchmarks(p, cacheDir)
}

// BenchWorkerResult is one worker-count throughput measurement.
type BenchWorkerResult = eval.BenchWorkerResult

// RunWorkerSweep measures window throughput at each worker count over one
// shared substrate — the cheap scaling smoke behind `make bench-scaling`.
func RunWorkerSweep(p EvalParams, workers []int) ([]BenchWorkerResult, error) {
	return eval.RunWorkerSweep(p, workers)
}
