// Command jmake-load replays a commit stream against a running jmaked
// at configurable concurrency and reports what the service did under
// pressure: latency percentiles, shed (429) and timeout (504) rates, and
// — the non-negotiable part — that every 200 answer upholds the safety
// invariant: a certified file has all mutations found and no escaped
// lines. A single false certification fails the run.
//
// Usage:
//
//	jmake-load [-addr host:port] [-n 200] [-c 32 | -qps N] [-deadline-ms N] [-chaos]
//
// -c drives a closed loop: that many clients, each waiting for its
// answer before sending the next request, so offered load adapts to the
// daemon's speed. -qps drives an open loop instead: requests are
// injected at a constant rate on their own goroutines whether or not
// earlier ones have answered — the shape real traffic has — which
// exposes queueing, shedding and timeout behavior a closed loop's
// coordinated omission hides.
//
// -chaos adds a deterministic fault plan (fault_rate 0.25, seed varying
// per request) to every request, driving the daemon's resilience layer
// through the public API; the safety assertion and the daemon must both
// survive.
//
// The tool scrapes /metricsz before and after the burst and prints the
// server-side delta (changed counters, server latency percentiles) next
// to its own client-side numbers, so client-observed and server-recorded
// views of the same burst can be compared directly.
//
// Shed responses carry a Retry-After advisory. The summary separates
// honored vs ignored advisories: with -honor-retry-after a closed-loop
// client sleeps the advised delay before its next request (honored);
// otherwise — and always in open-loop mode, where arrivals are on a
// fixed schedule — the advisory is counted but ignored.
//
// Helper modes for scripts:
//
//	jmake-load -print-latest-commit     print the window's tip commit ID
//	jmake-load -report-for <commit>     print the daemon's report verbatim
//	jmake-load -get <path>              GET a daemon path, print the body
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jmake"
	"jmake/internal/cliopts"
	"jmake/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jmake-load:", err)
		os.Exit(1)
	}
}

type tally struct {
	mu        sync.Mutex
	latencies []time.Duration

	ok        atomic.Int64
	shed      atomic.Int64
	timedOut  atomic.Int64 // 504 from the daemon (deadline), distinct from transport errors
	transport atomic.Int64 // request never got an HTTP answer (dial/read error)
	failed    atomic.Int64 // unexpected status or undecodable 200 body
	falseCert atomic.Int64

	shedHonored atomic.Int64 // 429s whose Retry-After advisory we slept out
	shedIgnored atomic.Int64 // 429s where the advisory was counted but not honored
	advisedMS   atomic.Int64 // sum of advised Retry-After, for the average
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8344", "jmaked address")
		n           = flag.Int("n", 200, "total requests to replay")
		c           = flag.Int("c", 32, "concurrent clients (closed loop: each waits for its answer before sending the next)")
		qps         = flag.Float64("qps", 0, "open-loop mode: inject requests at this constant rate, one goroutine each, ignoring -c (0 = closed loop)")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-request deadline_ms (0 = daemon default)")
		chaos       = flag.Bool("chaos", false, "inject a deterministic fault plan on every request")
		faultSeed   = flag.Uint64("fault-seed", 1, "base fault-plan seed for -chaos (request i uses seed+i)")
		honorRetry  = flag.Bool("honor-retry-after", false, "closed loop: sleep a 429's Retry-After before the client's next request")
		printLatest = flag.Bool("print-latest-commit", false, "print the window's tip commit ID and exit")
		reportFor   = flag.String("report-for", "", "print the daemon's report for one commit verbatim and exit")
		getPath     = flag.String("get", "", "GET this daemon path, print the body, exit 1 on non-200 (script helper)")
	)
	flag.Parse()
	base := "http://" + *addr
	client := &http.Client{Timeout: 10 * time.Minute}

	if *getPath != "" {
		return doGet(client, base, *getPath)
	}

	commits, err := fetchCommits(client, base)
	if err != nil {
		return err
	}
	if *printLatest {
		fmt.Println(commits[len(commits)-1])
		return nil
	}
	if *reportFor != "" {
		body, status, _, err := postCheck(client, base, checkBody{Commit: *reportFor, DeadlineMS: *deadlineMS})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("daemon answered %d: %s", status, body)
		}
		_, err = os.Stdout.Write(body)
		return err
	}

	before, err := scrapeMetrics(client, base)
	if err != nil {
		return fmt.Errorf("scraping /metricsz before the burst: %w", err)
	}

	reqFor := func(i int) checkBody {
		req := checkBody{Commit: commits[i%len(commits)], DeadlineMS: *deadlineMS}
		if *chaos {
			req.Options = cliopts.Check{FaultRate: 0.25, FaultSeed: *faultSeed + uint64(i)}
		}
		return req
	}
	var t tally
	var elapsed time.Duration
	if *qps > 0 {
		// Open-loop: inject at a constant rate regardless of completions, the
		// way real traffic arrives. Unlike the closed loop below, a slow
		// daemon does not throttle the offered load — queueing, shedding and
		// timeout behavior show at their true rates (no coordinated
		// omission). Each request gets its own goroutine; arrival i is
		// scheduled at start + i/qps, so transient stalls do not shift the
		// rest of the schedule. Retry-After advisories are never honored
		// here: honoring would shift the fixed arrival schedule.
		fmt.Printf("injecting %d requests over %d commits at %.1f req/s open-loop (chaos=%v)\n",
			*n, len(commits), *qps, *chaos)
		interval := time.Duration(float64(time.Second) / *qps)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < *n; i++ {
			time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				doOne(client, base, reqFor(i), &t, false)
			}(i)
		}
		wg.Wait()
		elapsed = time.Since(start)
	} else {
		fmt.Printf("replaying %d requests over %d commits at concurrency %d (chaos=%v, honor-retry-after=%v)\n",
			*n, len(commits), *c, *chaos, *honorRetry)
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < *c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					doOne(client, base, reqFor(i), &t, *honorRetry)
				}
			}()
		}
		start := time.Now()
		for i := 0; i < *n; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		elapsed = time.Since(start)
	}

	printSummary(&t, *n, elapsed)

	after, err := scrapeMetrics(client, base)
	if err != nil {
		return fmt.Errorf("scraping /metricsz after the burst: %w", err)
	}
	printServerDelta(before, after)

	if err := checkHealth(client, base); err != nil {
		return fmt.Errorf("daemon unhealthy after the burst: %w", err)
	}
	fmt.Println("daemon healthy after the burst")
	if t.falseCert.Load() > 0 {
		return fmt.Errorf("%d FALSE CERTIFICATIONS — the daemon lied under load", t.falseCert.Load())
	}
	if t.ok.Load() == 0 {
		return fmt.Errorf("no request succeeded; nothing validated")
	}
	return nil
}

type checkBody struct {
	Commit     string        `json:"commit"`
	Options    cliopts.Check `json:"options"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
}

// doGet is the -get script helper: fetch one daemon path and print the
// body verbatim (so shell scripts can read /metricsz, /debugz/requests,
// or /tracez/<id> without a curl dependency).
func doGet(client *http.Client, base, path string) error {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	resp, err := client.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s answered %d", path, resp.StatusCode)
	}
	return nil
}

func fetchCommits(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/commits")
	if err != nil {
		return nil, fmt.Errorf("reaching daemon: %w", err)
	}
	defer resp.Body.Close()
	var payload struct {
		Commits []string `json:"commits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decoding /commits: %w", err)
	}
	if len(payload.Commits) == 0 {
		return nil, fmt.Errorf("daemon reports an empty commit window")
	}
	return payload.Commits, nil
}

func postCheck(client *http.Client, base string, req checkBody) (body []byte, status int, retryAfter time.Duration, err error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, 0, 0, err
	}
	resp, err := client.Post(base+"/check", "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	if s, _ := strconv.Atoi(resp.Header.Get("Retry-After")); s > 0 {
		retryAfter = time.Duration(s) * time.Second
	}
	body, err = io.ReadAll(resp.Body)
	return body, resp.StatusCode, retryAfter, err
}

func doOne(client *http.Client, base string, req checkBody, t *tally, honorRetry bool) {
	start := time.Now()
	body, status, retryAfter, err := postCheck(client, base, req)
	lat := time.Since(start)
	if err != nil {
		// No HTTP answer at all: the transport failed, which is a different
		// failure class than a daemon that answered with an error status.
		t.transport.Add(1)
		return
	}
	t.mu.Lock()
	t.latencies = append(t.latencies, lat)
	t.mu.Unlock()
	switch status {
	case http.StatusOK:
		var report jmake.Report
		if err := json.Unmarshal(body, &report); err != nil {
			t.failed.Add(1)
			fmt.Fprintf(os.Stderr, "jmake-load: %s: undecodable report: %v\n", req.Commit, err)
			return
		}
		if bad := falseCertifications(&report); len(bad) > 0 {
			t.falseCert.Add(int64(len(bad)))
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "jmake-load: FALSE CERTIFICATION on %s: %s\n", req.Commit, msg)
			}
		}
		t.ok.Add(1)
	case http.StatusTooManyRequests:
		t.shed.Add(1)
		t.advisedMS.Add(retryAfter.Milliseconds())
		if honorRetry && retryAfter > 0 {
			t.shedHonored.Add(1)
			time.Sleep(retryAfter)
		} else {
			t.shedIgnored.Add(1)
		}
	case http.StatusGatewayTimeout:
		t.timedOut.Add(1)
	default:
		t.failed.Add(1)
		fmt.Fprintf(os.Stderr, "jmake-load: %s: status %d: %.200s\n", req.Commit, status, body)
	}
}

// falseCertifications applies the chaos-sweep safety invariant to a
// served report: certified ⇒ every mutation witnessed and no escapes.
func falseCertifications(r *jmake.Report) []string {
	var bad []string
	for _, f := range r.Files {
		if f.Status != jmake.StatusCertified {
			continue
		}
		if f.FoundMutations != f.Mutations {
			bad = append(bad, fmt.Sprintf("%s certified with %d/%d mutations found",
				f.Path, f.FoundMutations, f.Mutations))
		}
		if len(f.EscapedLines) != 0 {
			bad = append(bad, fmt.Sprintf("%s certified with escaped lines %v",
				f.Path, f.EscapedLines))
		}
	}
	return bad
}

func printSummary(t *tally, n int, elapsed time.Duration) {
	t.mu.Lock()
	lats := append([]time.Duration(nil), t.latencies...)
	t.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)-1))
		return lats[i].Round(time.Millisecond)
	}
	ok, shed, timedOut := t.ok.Load(), t.shed.Load(), t.timedOut.Load()
	transport, failed := t.transport.Load(), t.failed.Load()
	fmt.Printf("done in %v: %d ok, %d shed (429), %d timed out (504), %d transport errors, %d failed\n",
		elapsed.Round(time.Millisecond), ok, shed, timedOut, transport, failed)
	if shed > 0 {
		avg := time.Duration(t.advisedMS.Load()/shed) * time.Millisecond
		fmt.Printf("retry-after: advised avg %v, honored %d, ignored %d\n",
			avg, t.shedHonored.Load(), t.shedIgnored.Load())
	}
	fmt.Printf("latency: p50 %v  p95 %v  p99 %v  max %v\n", pct(0.50), pct(0.95), pct(0.99), pct(1.0))
	fmt.Printf("rates: shed %.1f%%  timeout %.1f%%  throughput %.1f req/s\n",
		100*float64(shed)/float64(n), 100*float64(timedOut)/float64(n),
		float64(ok)/elapsed.Seconds())
}

// metricsSnapshot mirrors the /metricsz JSON payload shape (the parts
// the delta report uses).
type metricsSnapshot struct {
	Daemon  []metrics.Sample `json:"daemon"`
	Session []metrics.Sample `json:"session"`
	Latency struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50"`
		P95   float64 `json:"p95"`
		P99   float64 `json:"p99"`
	} `json:"latency"`
}

func scrapeMetrics(client *http.Client, base string) (*metricsSnapshot, error) {
	resp, err := client.Get(base + "/metricsz?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// printServerDelta prints the server-side view of the burst: every
// counter/gauge/histogram series that changed between the two scrapes,
// sorted by name, plus the server's own latency percentiles — so the
// client-side summary above can be cross-checked against what the daemon
// says it did.
func printServerDelta(before, after *metricsSnapshot) {
	index := func(samples []metrics.Sample) map[string]metrics.Sample {
		m := make(map[string]metrics.Sample, len(samples))
		for _, s := range samples {
			m[s.Name] = s
		}
		return m
	}
	section := func(title string, b, a []metrics.Sample) {
		prev := index(b)
		var lines []string
		for _, s := range a {
			if old, ok := prev[s.Name]; ok && old.Value == s.Value {
				continue
			}
			lines = append(lines, formatDelta(prev[s.Name], s))
		}
		if len(lines) == 0 {
			return
		}
		sort.Strings(lines)
		fmt.Printf("server delta (%s):\n", title)
		for _, l := range lines {
			fmt.Println("  " + l)
		}
	}
	section("daemon", before.Daemon, after.Daemon)
	section("session", before.Session, after.Session)
	fmt.Printf("server latency: count %d  p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
		after.Latency.Count, after.Latency.P50, after.Latency.P95, after.Latency.P99)
}

// formatDelta renders one changed series. Counter/gauge values are plain
// integers ("+N"); histogram values ("count=N sum=G") show the count
// move; anything unparseable prints old -> new.
func formatDelta(old, cur metrics.Sample) string {
	oldCount, okOld := sampleCount(old)
	curCount, okCur := sampleCount(cur)
	if okCur && (okOld || old.Value == "") {
		return fmt.Sprintf("%-44s %+d (now %d)", cur.Name, curCount-oldCount, curCount)
	}
	if old.Value == "" {
		return fmt.Sprintf("%-44s -> %s", cur.Name, cur.Value)
	}
	return fmt.Sprintf("%-44s %s -> %s", cur.Name, old.Value, cur.Value)
}

// sampleCount extracts the integer magnitude of a sample value: the
// value itself for counters/gauges, the count= field for histograms.
func sampleCount(s metrics.Sample) (int64, bool) {
	v := s.Value
	if s.Kind == "histogram" {
		for _, part := range strings.Fields(v) {
			if strings.HasPrefix(part, "count=") {
				v = strings.TrimPrefix(part, "count=")
				break
			}
		}
	}
	n, err := strconv.ParseInt(v, 10, 64)
	return n, err == nil
}

func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("healthz answered %d: %s", resp.StatusCode, body)
	}
	return nil
}
