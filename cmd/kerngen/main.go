// Command kerngen generates the kernel-shaped source tree and reports its
// composition, or dumps individual files. It exists to inspect the
// substrate the evaluation runs on.
//
// Usage:
//
//	kerngen [-seed N] [-scale S] [-cat path] [-ls prefix]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jmake"
	"jmake/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kerngen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed  = flag.Int64("seed", 1, "generation seed")
		scale = flag.Float64("scale", 1.0, "size multiplier")
		cat   = flag.String("cat", "", "print one file and exit")
		ls    = flag.String("ls", "", "list files under a prefix and exit")
		dump  = flag.Bool("metrics", false, "dump the composition tallies as a raw metrics-registry snapshot")
	)
	flag.Parse()

	tree, man, err := jmake.GenerateKernel(*seed, *scale)
	if err != nil {
		return err
	}
	if *cat != "" {
		content, err := tree.Read(*cat)
		if err != nil {
			return err
		}
		fmt.Print(content)
		return nil
	}
	if *ls != "" {
		for _, p := range tree.Under(*ls) {
			fmt.Println(p)
		}
		return nil
	}

	// Composition tallies live in a metrics registry rather than a pile of
	// local ints, so -metrics can dump exactly the numbers the report used.
	reg := metrics.NewRegistry()
	byKind := func(kind string) *metrics.Counter {
		return reg.Counter("gen_files", metrics.L("kind", kind))
	}
	lines := reg.Counter("gen_lines")
	if err := tree.Walk(func(p, content string) error {
		lines.Add(uint64(strings.Count(content, "\n")))
		switch {
		case strings.HasSuffix(p, ".c"):
			byKind("c").Inc()
		case strings.HasSuffix(p, ".h"):
			byKind("h").Inc()
		case strings.HasSuffix(p, "Kconfig") || strings.Contains(p, "Kconfig."):
			byKind("kconfig").Inc()
		case strings.HasSuffix(p, "Makefile") || strings.HasSuffix(p, "Kbuild"):
			byKind("makefile").Inc()
		default:
			byKind("other").Inc()
		}
		return nil
	}); err != nil {
		return err
	}

	if *dump {
		for _, s := range reg.Snapshot() {
			fmt.Printf("%s %s %s\n", s.Kind, s.Name, s.Value)
		}
		return nil
	}
	fmt.Printf("tree: %d files, %d lines\n", tree.Len(), lines.Value())
	fmt.Printf("  .c %d, .h %d, Kconfig %d, Makefile %d, other %d\n",
		byKind("c").Value(), byKind("h").Value(), byKind("kconfig").Value(),
		byKind("makefile").Value(), byKind("other").Value())
	fmt.Printf("subsystems: %d   drivers: %d\n", len(man.Subsystems), len(man.Drivers))
	archBound, quirk := 0, 0
	siteCounts := map[string]int{}
	for _, d := range man.Drivers {
		if d.ArchBound != "" {
			archBound++
		}
		if d.QuirkArch != "" {
			quirk++
		}
		for c := range d.Sites {
			siteCounts[fmt.Sprintf("site%d", c)]++
		}
	}
	fmt.Printf("arch-bound drivers: %d   arch-quirk drivers: %d\n", archBound, quirk)
	fmt.Printf("architectures: %d working, %d broken\n", len(man.WorkingArches), len(man.BrokenArches))
	fmt.Printf("setup files: %v\n", man.SetupFiles)
	fmt.Printf("whole-build file: %s\n", man.WholeBuildFile)
	fmt.Printf("many-macro file: %s\n", man.ManyMacroFile)
	return nil
}
