// Command kerngen generates the kernel-shaped source tree and reports its
// composition, or dumps individual files. It exists to inspect the
// substrate the evaluation runs on. With -emit it materializes the tree on
// disk, optionally seeding configuration mismatches (-inject-mismatches)
// with a ground-truth manifest for jmake-lint -audit-verify.
//
// Usage:
//
//	kerngen [-seed N] [-scale S] [-cat path] [-ls prefix]
//	kerngen -emit DIR [-inject-mismatches N] [-inject-seed N]
//	        [-inject-manifest FILE] [-baseline-out FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jmake"
	"jmake/internal/kernelgen"
	"jmake/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kerngen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed       = flag.Int64("seed", 1, "generation seed")
		scale      = flag.Float64("scale", 1.0, "size multiplier")
		cat        = flag.String("cat", "", "print one file and exit")
		ls         = flag.String("ls", "", "list files under a prefix and exit")
		dump       = flag.Bool("metrics", false, "dump the composition tallies as a raw metrics-registry snapshot")
		emit       = flag.String("emit", "", "write the generated tree into this directory and exit")
		injectN    = flag.Int("inject-mismatches", 0, "with -emit: seed N configuration mismatches into the tree")
		injectSeed = flag.Int64("inject-seed", 1, "seed for mismatch injection placement")
		injectOut  = flag.String("inject-manifest", "", "with -inject-mismatches: write the ground-truth manifest JSON here")
		baseOut    = flag.String("baseline-out", "", "write the manifest's audit-baseline symbol list as JSON here")
	)
	flag.Parse()

	tree, man, err := jmake.GenerateKernel(*seed, *scale)
	if err != nil {
		return err
	}
	if *emit != "" {
		return emitTree(tree, man, *emit, *injectN, *injectSeed, *injectOut, *baseOut)
	}
	if *cat != "" {
		content, err := tree.Read(*cat)
		if err != nil {
			return err
		}
		fmt.Print(content)
		return nil
	}
	if *ls != "" {
		for _, p := range tree.Under(*ls) {
			fmt.Println(p)
		}
		return nil
	}

	// Composition tallies live in a metrics registry rather than a pile of
	// local ints, so -metrics can dump exactly the numbers the report used.
	reg := metrics.NewRegistry()
	byKind := func(kind string) *metrics.Counter {
		return reg.Counter("gen_files", metrics.L("kind", kind))
	}
	lines := reg.Counter("gen_lines")
	if err := tree.Walk(func(p, content string) error {
		lines.Add(uint64(strings.Count(content, "\n")))
		switch {
		case strings.HasSuffix(p, ".c"):
			byKind("c").Inc()
		case strings.HasSuffix(p, ".h"):
			byKind("h").Inc()
		case strings.HasSuffix(p, "Kconfig") || strings.Contains(p, "Kconfig."):
			byKind("kconfig").Inc()
		case strings.HasSuffix(p, "Makefile") || strings.HasSuffix(p, "Kbuild"):
			byKind("makefile").Inc()
		default:
			byKind("other").Inc()
		}
		return nil
	}); err != nil {
		return err
	}

	if *dump {
		for _, s := range reg.Snapshot() {
			fmt.Printf("%s %s %s\n", s.Kind, s.Name, s.Value)
		}
		return nil
	}
	fmt.Printf("tree: %d files, %d lines\n", tree.Len(), lines.Value())
	fmt.Printf("  .c %d, .h %d, Kconfig %d, Makefile %d, other %d\n",
		byKind("c").Value(), byKind("h").Value(), byKind("kconfig").Value(),
		byKind("makefile").Value(), byKind("other").Value())
	fmt.Printf("subsystems: %d   drivers: %d\n", len(man.Subsystems), len(man.Drivers))
	archBound, quirk := 0, 0
	siteCounts := map[string]int{}
	for _, d := range man.Drivers {
		if d.ArchBound != "" {
			archBound++
		}
		if d.QuirkArch != "" {
			quirk++
		}
		for c := range d.Sites {
			siteCounts[fmt.Sprintf("site%d", c)]++
		}
	}
	fmt.Printf("arch-bound drivers: %d   arch-quirk drivers: %d\n", archBound, quirk)
	fmt.Printf("architectures: %d working, %d broken\n", len(man.WorkingArches), len(man.BrokenArches))
	fmt.Printf("setup files: %v\n", man.SetupFiles)
	fmt.Printf("whole-build file: %s\n", man.WholeBuildFile)
	fmt.Printf("many-macro file: %s\n", man.ManyMacroFile)
	return nil
}

// emitTree materializes the generated tree under dir, after injecting the
// requested mismatches, and writes the side-band JSON artifacts the audit
// smoke test consumes.
func emitTree(tree *jmake.Tree, man *kernelgen.Manifest, dir string, injectN int, injectSeed int64,
	injectOut, baseOut string) error {
	injected, err := kernelgen.InjectMismatches(tree, injectSeed, injectN)
	if err != nil {
		return err
	}
	if err := tree.Walk(func(p, content string) error {
		dst := filepath.Join(dir, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		return os.WriteFile(dst, []byte(content), 0o644)
	}); err != nil {
		return err
	}
	if injectOut != "" {
		if injected == nil {
			injected = []kernelgen.InjectedMismatch{}
		}
		if err := writeJSONFile(injectOut, injected); err != nil {
			return err
		}
	}
	if baseOut != "" {
		baseline := man.AuditBaseline
		if baseline == nil {
			baseline = []string{}
		}
		if err := writeJSONFile(baseOut, baseline); err != nil {
			return err
		}
	}
	fmt.Printf("emitted %d files to %s (%d mismatches injected)\n", tree.Len(), dir, len(injected))
	return nil
}

func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
