// Command kerngen generates the kernel-shaped source tree and reports its
// composition, or dumps individual files. It exists to inspect the
// substrate the evaluation runs on.
//
// Usage:
//
//	kerngen [-seed N] [-scale S] [-cat path] [-ls prefix]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jmake"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kerngen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed  = flag.Int64("seed", 1, "generation seed")
		scale = flag.Float64("scale", 1.0, "size multiplier")
		cat   = flag.String("cat", "", "print one file and exit")
		ls    = flag.String("ls", "", "list files under a prefix and exit")
	)
	flag.Parse()

	tree, man, err := jmake.GenerateKernel(*seed, *scale)
	if err != nil {
		return err
	}
	if *cat != "" {
		content, err := tree.Read(*cat)
		if err != nil {
			return err
		}
		fmt.Print(content)
		return nil
	}
	if *ls != "" {
		for _, p := range tree.Under(*ls) {
			fmt.Println(p)
		}
		return nil
	}

	var cFiles, hFiles, kconfigs, makefiles, other int
	lines := 0
	if err := tree.Walk(func(p, content string) error {
		lines += strings.Count(content, "\n")
		switch {
		case strings.HasSuffix(p, ".c"):
			cFiles++
		case strings.HasSuffix(p, ".h"):
			hFiles++
		case strings.HasSuffix(p, "Kconfig") || strings.Contains(p, "Kconfig."):
			kconfigs++
		case strings.HasSuffix(p, "Makefile") || strings.HasSuffix(p, "Kbuild"):
			makefiles++
		default:
			other++
		}
		return nil
	}); err != nil {
		return err
	}

	fmt.Printf("tree: %d files, %d lines\n", tree.Len(), lines)
	fmt.Printf("  .c %d, .h %d, Kconfig %d, Makefile %d, other %d\n",
		cFiles, hFiles, kconfigs, makefiles, other)
	fmt.Printf("subsystems: %d   drivers: %d\n", len(man.Subsystems), len(man.Drivers))
	archBound, quirk := 0, 0
	siteCounts := map[string]int{}
	for _, d := range man.Drivers {
		if d.ArchBound != "" {
			archBound++
		}
		if d.QuirkArch != "" {
			quirk++
		}
		for c := range d.Sites {
			siteCounts[fmt.Sprintf("site%d", c)]++
		}
	}
	fmt.Printf("arch-bound drivers: %d   arch-quirk drivers: %d\n", archBound, quirk)
	fmt.Printf("architectures: %d working, %d broken\n", len(man.WorkingArches), len(man.BrokenArches))
	fmt.Printf("setup files: %v\n", man.SetupFiles)
	fmt.Printf("whole-build file: %s\n", man.WholeBuildFile)
	fmt.Printf("many-macro file: %s\n", man.ManyMacroFile)
	return nil
}
