// Command jmaked serves jmake checks over HTTP from a warm session: the
// generated workspace, arch index, Kconfig valuations, lexed tokens and
// the compile-result cache stay resident across requests, so a check
// costs its own work only — not the per-invocation warm-up the batch CLI
// pays.
//
// Usage:
//
//	jmaked [-addr :8344] [workspace/cache flags as in jmake]
//
// Endpoints:
//
//	GET  /healthz   liveness (process up, session present)
//	GET  /readyz    readiness (503 while draining)
//	GET  /metricsz  daemon + session metrics, latency percentiles
//	GET  /commits   the workspace's window commit IDs
//	GET  /audit     whole-tree configuration-mismatch report (cached)
//	POST /check     {"commit": ID, "options": {...}, "deadline_ms": N}
//	POST /batch     {"commits": [ID...], ...}
//	POST /follow    {"commits": [ID...], ...} — incremental stream: one
//	                warm follower session resident across streams, one
//	                NDJSON entry per commit flushed as checked, with
//	                per-commit virtual vs effective cost
//
// The /check happy path answers the same bytes `jmake -commit ID -json`
// prints for the same workspace flags. Overload sheds with 429 +
// Retry-After; deadline expiry answers 504 with a partial report; SIGINT
// or SIGTERM drains gracefully and flushes the persistent cache tier.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jmake/internal/daemon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jmaked:", err)
		os.Exit(1)
	}
}

func run() error {
	var cfg daemon.Config
	cfg.Workspace.Register(flag.CommandLine, 0.4, 0.05)
	cfg.Cache.Register(flag.CommandLine)
	var (
		addr         = flag.String("addr", "127.0.0.1:8344", "listen address")
		maxInFlight  = flag.Int("max-inflight", 2, "max concurrently running checks")
		maxQueue     = flag.Int("max-queue", 8, "max requests waiting for a slot before shedding with 429 (-1 = none)")
		deadline     = flag.Duration("deadline", 60*time.Second, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", 5*time.Minute, "cap on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
		debug        = flag.Bool("debug", false, "enable debug_panic/debug_hold_ms request fields (tests only)")
	)
	flag.Parse()
	cfg.MaxInFlight = *maxInFlight
	cfg.MaxQueue = *maxQueue
	cfg.DefaultDeadline = *deadline
	cfg.MaxDeadline = *maxDeadline
	cfg.Debug = *debug

	log.Printf("jmaked: generating workspace (tree-scale %.2f, commit-scale %.2f)...",
		cfg.Workspace.TreeScale, cfg.Workspace.CommitScale)
	start := time.Now()
	s, err := daemon.New(cfg)
	if err != nil {
		return err
	}
	log.Printf("jmaked: warm in %v, %d window commits, serving on %s",
		time.Since(start).Round(time.Millisecond), len(s.Commits()), *addr)

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("jmaked: %v: draining (grace %v)...", sig, *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx, srv); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("jmaked: drained cleanly")
	return nil
}
