// Command jmaked serves jmake checks over HTTP from a warm session: the
// generated workspace, arch index, Kconfig valuations, lexed tokens and
// the compile-result cache stay resident across requests, so a check
// costs its own work only — not the per-invocation warm-up the batch CLI
// pays.
//
// Usage:
//
//	jmaked [-addr :8344] [workspace/cache flags as in jmake]
//
// Endpoints:
//
//	GET  /healthz   liveness (process up, session present)
//	GET  /readyz    readiness (503 while draining)
//	GET  /metricsz  daemon + session metrics; JSON by default, Prometheus
//	                text exposition with ?format=prometheus or an Accept
//	                header asking for text/plain
//	GET  /commits   the workspace's window commit IDs
//	GET  /audit     whole-tree configuration-mismatch report (cached)
//	POST /check     {"commit": ID, "options": {...}, "deadline_ms": N};
//	                ?trace=tree|chrome|summary (or X-JMake-Trace) returns
//	                the span tree beside the report, byte-identical to the
//	                one-shot CLI trace artifacts
//	POST /batch     {"commits": [ID...], ...}; same ?trace= sidecar per
//	                entry
//	POST /follow    {"commits": [ID...], ...} — incremental stream: one
//	                warm follower session resident across streams, one
//	                NDJSON entry per commit flushed as checked, with
//	                per-commit virtual vs effective cost
//	GET  /tracez/<request-id>          recent request's trace (?format=)
//	GET  /debugz/requests              flight recorder: last N records
//
// Every request gets a deterministic ID (X-JMake-Request-Id header,
// request_id field in error envelopes and flight records); -log-level
// selects the structured NDJSON event stream on stderr; -debug-addr
// serves net/http/pprof on a separate listener.
//
// The /check happy path answers the same bytes `jmake -commit ID -json`
// prints for the same workspace flags. Overload sheds with 429 +
// Retry-After; deadline expiry answers 504 with a partial report; SIGINT
// or SIGTERM drains gracefully and flushes the persistent cache tier.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jmake/internal/daemon"
	"jmake/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jmaked:", err)
		os.Exit(1)
	}
}

func run() error {
	var cfg daemon.Config
	cfg.Workspace.Register(flag.CommandLine, 0.4, 0.05)
	cfg.Cache.Register(flag.CommandLine)
	var (
		addr         = flag.String("addr", "127.0.0.1:8344", "listen address")
		maxInFlight  = flag.Int("max-inflight", 2, "max concurrently running checks")
		maxQueue     = flag.Int("max-queue", 8, "max requests waiting for a slot before shedding with 429 (-1 = none)")
		deadline     = flag.Duration("deadline", 60*time.Second, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", 5*time.Minute, "cap on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
		debug        = flag.Bool("debug", false, "enable debug_panic/debug_hold_ms request fields (tests only)")
		logLevel     = flag.String("log-level", "info", "structured log threshold: debug|info|warn|error")
		logSample    = flag.Int("log-debug-sample", 1, "keep 1 of every N debug events (info+ never sampled)")
		flightSize   = flag.Int("flight", obs.DefaultFlightRecorderSize, "flight-recorder capacity: last N request records kept for /debugz/requests and /tracez")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	)
	flag.Parse()
	cfg.MaxInFlight = *maxInFlight
	cfg.MaxQueue = *maxQueue
	cfg.DefaultDeadline = *deadline
	cfg.MaxDeadline = *maxDeadline
	cfg.Debug = *debug
	cfg.FlightSize = *flightSize
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	cfg.Logger = obs.New(os.Stderr, level)
	cfg.Logger.SetDebugSampling(*logSample)

	if *debugAddr != "" {
		// pprof lives on its own listener so profiling is never exposed on
		// the service address by accident.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				log.Printf("jmaked: debug listener: %v", err)
			}
		}()
		log.Printf("jmaked: pprof on %s/debug/pprof/", *debugAddr)
	}

	log.Printf("jmaked: generating workspace (tree-scale %.2f, commit-scale %.2f)...",
		cfg.Workspace.TreeScale, cfg.Workspace.CommitScale)
	start := time.Now()
	s, err := daemon.New(cfg)
	if err != nil {
		return err
	}
	log.Printf("jmaked: warm in %v, %d window commits, serving on %s",
		time.Since(start).Round(time.Millisecond), len(s.Commits()), *addr)

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("jmaked: %v: draining (grace %v)...", sig, *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx, srv); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("jmaked: drained cleanly")
	return nil
}
