// Command trace-check validates Chrome trace-event JSON files produced
// by jmake's -trace-out: parseable JSON with a traceEvents array,
// balanced B/E pairs per track, non-decreasing timestamps within each
// track, and valid pid/tid on every event. It exits non-zero on the
// first invalid file, so `make trace-smoke` can gate on it.
//
// Usage:
//
//	trace-check trace.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"jmake/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: trace-check trace.json [more.json ...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err == nil {
			err = trace.ValidateChrome(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-check: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok (%d bytes)\n", path, len(data))
	}
	if bad {
		os.Exit(1)
	}
}
