// Command trace-check validates jmake observability artifacts so smoke
// scripts can gate on them:
//
//   - default mode: Chrome trace-event JSON files produced by -trace-out
//     (parseable JSON with a traceEvents array, balanced B/E pairs per
//     track, non-decreasing timestamps within each track, valid pid/tid);
//   - -prom mode: Prometheus text exposition (as served by jmaked's
//     /metricsz?format=prometheus) — legal metric/label names, sorted
//     label keys, cumulative histogram buckets with a +Inf bucket
//     matching _count, and a _sum per series.
//
// It exits non-zero on the first invalid file. "-" reads stdin, so a
// scrape can be piped straight in:
//
//	trace-check trace.json [more.json ...]
//	trace-check -prom metrics.txt
//	jmake-load -get "/metricsz?format=prometheus" | trace-check -prom -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jmake/internal/metrics"
	"jmake/internal/trace"
)

func main() {
	prom := flag.Bool("prom", false, "validate Prometheus text exposition instead of Chrome traces")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: trace-check [-prom] file [more ...]  (\"-\" = stdin)")
		os.Exit(2)
	}
	validate := trace.ValidateChrome
	if *prom {
		validate = metrics.ValidateText
	}
	bad := false
	for _, path := range flag.Args() {
		var data []byte
		var err error
		if path == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(path)
		}
		if err == nil {
			err = validate(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-check: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok (%d bytes)\n", path, len(data))
	}
	if bad {
		os.Exit(1)
	}
}
