// Command jmake checks that every changed line of a commit is subjected to
// the compiler, over a generated kernel-shaped workspace. It is the
// developer-facing tool of the paper (§III): run it after preparing a
// change, read which lines the compiler never saw.
//
// Usage:
//
//	jmake [-tree-scale S] [-commit-scale S] [-n N | -commit ID] [-show]
//
// With -n, the latest N window commits are checked; with -commit, one
// specific commit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jmake"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jmake:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		treeSeed    = flag.Int64("tree-seed", 1, "kernel tree generation seed")
		histSeed    = flag.Int64("history-seed", 2, "history generation seed")
		treeScale   = flag.Float64("tree-scale", 0.4, "kernel tree size multiplier")
		commitScale = flag.Float64("commit-scale", 0.05, "history size multiplier")
		n           = flag.Int("n", 5, "check the latest N window commits")
		commitID    = flag.String("commit", "", "check one specific commit ID")
		show        = flag.Bool("show", false, "print each commit's patch before the verdict")
		annotate    = flag.Bool("annotate", false, "print the patch with per-line compile verdicts")
		allmod      = flag.Bool("allmod", false, "also try allmodconfig (covers #ifdef MODULE, ~2x configurations)")
		prescan     = flag.Bool("prescan", false, "statically warn about doomed regions before building")
		coverage    = flag.Bool("coverage", false, "synthesize targeted configurations for regions standard configs miss")
		static      = flag.Bool("static", false, "prove dead lines before building and cross-check predictions against .i witnesses")
		patchFile   = flag.String("patch", "", "check a unified-diff patch file against the v4.4 tree instead of commits")
		faultRate   = flag.Float64("fault-rate", 0, "inject deterministic faults at this per-operation rate (0 = off)")
		faultSeed   = flag.Uint64("fault-seed", 1, "fault-plan seed (with -fault-rate)")
		budget      = flag.Duration("budget", 0, "per-patch virtual-time budget (0 = unlimited)")
		retries     = flag.Int("retries", 0, "max retries per transient failure (0 = default 2, negative = off)")
		cacheDir    = flag.String("cache-dir", "", "persist the compile-result cache here across runs (warm-start + save back)")
		noCache     = flag.Bool("no-result-cache", false, "disable the shared compile-result cache (identical verdicts, more compute)")
		cacheStats  = flag.Bool("cache-stats", false, "print result-cache counters after checking")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON file of the checked commits' virtual-time spans")
		traceTree   = flag.String("trace-tree", "", "write the checked commits' virtual-time spans as an indented text tree")
	)
	flag.Parse()

	fmt.Println("generating workspace...")
	tree, man, err := jmake.GenerateKernel(*treeSeed, *treeScale)
	if err != nil {
		return err
	}
	hist, err := jmake.SynthesizeHistory(tree, man, *histSeed, *commitScale)
	if err != nil {
		return err
	}
	ids, err := hist.Repo.Between("v4.3", "v4.4", jmake.ModifyingNonMerge)
	if err != nil {
		return err
	}
	fmt.Printf("workspace: %d files, %d window commits\n\n", tree.Len(), len(ids))

	var targets []string
	if *commitID != "" {
		targets = []string{*commitID}
	} else {
		start := len(ids) - *n
		if start < 0 {
			start = 0
		}
		targets = ids[start:]
	}

	opts := jmake.Options{
		TryAllModConfig: *allmod,
		Prescan:         *prescan,
		CoverageConfigs: *coverage,
		StaticPresence:  *static,
		MaxRetries:      *retries,
		Budget:          *budget,
	}
	if *faultRate > 0 {
		opts.Faults = jmake.UniformFaultPlan(*faultSeed, *faultRate)
	}

	if *patchFile != "" {
		text, err := os.ReadFile(*patchFile)
		if err != nil {
			return err
		}
		head, err := hist.Repo.TagID("v4.4")
		if err != nil {
			return err
		}
		base, err := hist.Repo.CheckoutTree(head)
		if err != nil {
			return err
		}
		report, err := jmake.CheckPatchText(base, string(text), opts)
		if err != nil {
			return err
		}
		printReport("(patch file)", report)
		return nil
	}

	// One session across all targets so the commits share the arch index,
	// configuration cache, and compile-result cache. With -cache-dir the
	// result cache additionally survives across jmake runs.
	base, err := hist.Repo.CheckoutTree(targets[0])
	if err != nil {
		return err
	}
	session, err := jmake.NewSession(base)
	if err != nil {
		return err
	}
	if *noCache {
		session.SetResultCache(nil)
	} else if *cacheDir != "" {
		session.SetResultCache(jmake.LoadResultCache(*cacheDir))
	}

	tracing := *traceOut != "" || *traceTree != ""
	var spans []*jmake.TraceSpan
	for _, id := range targets {
		if *show {
			text, err := hist.Repo.Show(id)
			if err != nil {
				return err
			}
			fmt.Println(text)
		}
		var report *jmake.Report
		var err error
		if tracing {
			var span *jmake.TraceSpan
			report, span, err = jmake.CheckCommitTraced(session, hist.Repo, id, opts)
			spans = append(spans, span)
		} else {
			report, err = jmake.CheckCommitWith(session, hist.Repo, id, opts)
		}
		if err != nil {
			return err
		}
		printReport(id, report)
		if *annotate {
			fds, err := hist.Repo.FileDiffs(id)
			if err != nil {
				return err
			}
			fmt.Print(jmake.Annotate(fds, report))
		}
	}
	if st, ok := session.ResultCacheStats(); ok && *cacheStats {
		fmt.Printf("result cache: make.i %d/%d hits (%d deduped), make.o %d/%d hits, %d entries, saved %v virtual\n",
			st.MakeI.Hits, st.MakeI.Hits+st.MakeI.Misses, st.MakeI.Deduped,
			st.MakeO.Hits, st.MakeO.Hits+st.MakeO.Misses,
			st.Entries, st.SavedVirtual.Round(1e6))
	}
	if tracing {
		// Stamp once over the whole session: cache outcomes are defined by
		// first occurrence across all checked commits, in checking order.
		tr := jmake.MergeTraces(spans...)
		if *traceOut != "" {
			if err := os.WriteFile(*traceOut, tr.Chrome(4), 0o644); err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
			fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
		}
		if *traceTree != "" {
			if err := os.WriteFile(*traceTree, []byte(tr.Tree()), 0o644); err != nil {
				return fmt.Errorf("writing trace tree: %w", err)
			}
			fmt.Printf("wrote span tree to %s\n", *traceTree)
		}
	}
	if !*noCache && *cacheDir != "" {
		if err := jmake.SaveResultCache(session.ResultCache(), *cacheDir, 0); err != nil {
			return fmt.Errorf("persisting result cache: %w", err)
		}
	}
	return nil
}

func printReport(id string, r *jmake.Report) {
	verdict := "NOT CERTIFIED"
	if r.Certified() {
		verdict = "CERTIFIED"
	}
	if len(r.Files) == 0 {
		verdict = "SKIPPED (no .c/.h changes)"
	}
	fmt.Printf("commit %.12s: %s  (virtual time %v)\n", id, verdict, r.Total.Round(1e6))
	if r.Retries > 0 || len(r.FaultEvents) > 0 {
		fmt.Printf("  resilience: %d injected faults, %d retries\n", len(r.FaultEvents), r.Retries)
	}
	if r.BudgetExhausted {
		fmt.Printf("  budget exhausted: checking stopped before completion\n")
	}
	if len(r.QuarantinedArches) > 0 {
		fmt.Printf("  quarantined arches: %s\n", strings.Join(r.QuarantinedArches, ","))
	}
	for _, w := range r.PrescanWarnings {
		fmt.Printf("  prescan: %s line %d can never be compiled by standard configurations: %s\n",
			w.Mutation.File, w.Mutation.Line, w.Reason)
	}
	if r.StaticSkippedMakeI > 0 || r.StaticSkippedMakeO > 0 {
		fmt.Printf("  static pruning: skipped %d make.i and %d make.o invocations\n",
			r.StaticSkippedMakeI, r.StaticSkippedMakeO)
	}
	for _, d := range r.StaticDynamicDisagreements {
		fmt.Printf("  STATIC/DYNAMIC DISAGREEMENT: %s line %d on %s: predicted visible=%v, observed %v\n",
			d.File, d.Line, d.Arch, d.Predicted, d.Observed)
	}
	for _, f := range r.Files {
		fmt.Printf("  %-46s %-16s mutations %d/%d", f.Path, f.Status, f.FoundMutations, f.Mutations)
		if len(f.UsedArches) > 0 {
			fmt.Printf("  arches %s", strings.Join(f.UsedArches, ","))
		}
		if f.UsedDefconfig {
			fmt.Printf("  (defconfig)")
		}
		if f.ExtraCCompiles > 0 {
			fmt.Printf("  extra .c compiles %d", f.ExtraCCompiles)
		}
		fmt.Println()
		for _, e := range f.Escapes {
			fmt.Printf("      line %d not subjected to the compiler: %s\n",
				e.Mutation.Line, e.Reason)
		}
		if len(f.StaticDeadLines) > 0 {
			fmt.Printf("      statically dead lines (no compile issued): %v\n", f.StaticDeadLines)
		}
		if f.FailureDetail != "" {
			fmt.Printf("      %s\n", firstLine(f.FailureDetail))
		}
	}
	fmt.Println()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
