// Command jmake checks that every changed line of a commit is subjected to
// the compiler, over a generated kernel-shaped workspace. It is the
// developer-facing tool of the paper (§III): run it after preparing a
// change, read which lines the compiler never saw.
//
// Usage:
//
//	jmake [-tree-scale S] [-commit-scale S] [-n N | -commit ID | -follow] [-show]
//
// With -n, the latest N window commits are checked; with -commit, one
// specific commit. With -json, each report is printed as indented JSON
// (and the workspace chatter goes to stderr), byte-identical to the
// report jmaked serves for the same commit.
//
// With -follow, the latest commits are consumed as an incremental
// stream: the session is seeded once, then each commit costs
// proportional to its diff (per-commit virtual vs effective cost goes to
// the diagnostic stream). Reports are byte-identical to one-shot checks;
// -follow-out DIR writes each as DIR/<commit>.json, and -follow-cold
// switches to a from-scratch session per commit for comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"jmake"
	"jmake/internal/cliopts"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jmake:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ws    cliopts.Workspace
		chk   cliopts.Check
		cache cliopts.Cache
		tro   cliopts.Trace
	)
	ws.Register(flag.CommandLine, 0.4, 0.05)
	chk.Register(flag.CommandLine)
	cache.Register(flag.CommandLine)
	tro.Register(flag.CommandLine)
	var (
		n         = flag.Int("n", 5, "check the latest N window commits")
		commitID  = flag.String("commit", "", "check one specific commit ID")
		show      = flag.Bool("show", false, "print each commit's patch before the verdict")
		annotate  = flag.Bool("annotate", false, "print the patch with per-line compile verdicts")
		patchFile = flag.String("patch", "", "check a unified-diff patch file against the v4.4 tree instead of commits")
		jsonOut   = flag.Bool("json", false, "print each report as indented JSON (diagnostics go to stderr)")

		follow        = flag.Bool("follow", false, "follow the commit stream incrementally: one warm session, per-commit cost proportional to the diff")
		followN       = flag.Int("follow-n", 0, "with -follow, stream the latest N window commits (0 = the -n value)")
		followOut     = flag.String("follow-out", "", "with -follow, write each report to DIR/<commit>.json (bytes identical to -commit ID -json)")
		followCold    = flag.Bool("follow-cold", false, "with -follow, rebuild the session from scratch for every commit (slow comparator for verifying byte-identity)")
		followWorkers = flag.Int("follow-workers", 1, "with -follow, check non-structural batches with this many workers")
	)
	flag.Parse()

	// Under -json, stdout is exactly the report(s); chatter goes to stderr.
	diag := os.Stdout
	if *jsonOut {
		diag = os.Stderr
	}

	fmt.Fprintln(diag, "generating workspace...")
	built, err := ws.Build()
	if err != nil {
		return err
	}
	fmt.Fprintf(diag, "workspace: %d files, %d window commits\n\n", built.Tree.Len(), len(built.WindowIDs))

	targets := built.Targets(*commitID, *n)
	opts := chk.Options()

	if *follow {
		nf := *followN
		if nf == 0 {
			nf = *n
		}
		return runFollow(built, opts, nf, *followWorkers, *followCold, *jsonOut, *followOut, diag)
	}

	if *patchFile != "" {
		text, err := os.ReadFile(*patchFile)
		if err != nil {
			return err
		}
		head, err := built.Hist.Repo.TagID("v4.4")
		if err != nil {
			return err
		}
		base, err := built.Hist.Repo.CheckoutTree(head)
		if err != nil {
			return err
		}
		report, err := jmake.CheckPatchText(base, string(text), opts)
		if err != nil {
			return err
		}
		return emitReport("(patch file)", report, *jsonOut)
	}

	// One session across all targets so the commits share the arch index,
	// configuration cache, and compile-result cache. With -cache-dir the
	// result cache additionally survives across jmake runs.
	session, err := built.SessionAt(targets[0])
	if err != nil {
		return err
	}
	cache.Apply(session)

	var spans []*jmake.TraceSpan
	for _, id := range targets {
		if *show {
			text, err := built.Hist.Repo.Show(id)
			if err != nil {
				return err
			}
			fmt.Fprintln(diag, text)
		}
		var report *jmake.Report
		var err error
		if tro.Enabled() {
			var span *jmake.TraceSpan
			report, span, err = jmake.CheckCommitTraced(session, built.Hist.Repo, id, opts)
			spans = append(spans, span)
		} else {
			report, err = jmake.CheckCommitWith(session, built.Hist.Repo, id, opts)
		}
		if err != nil {
			return err
		}
		if err := emitReport(id, report, *jsonOut); err != nil {
			return err
		}
		if *annotate {
			fds, err := built.Hist.Repo.FileDiffs(id)
			if err != nil {
				return err
			}
			fmt.Fprint(diag, jmake.Annotate(fds, report))
		}
	}
	cache.PrintStats(diag, session)
	if tro.Enabled() {
		// Stamp once over the whole session: cache outcomes are defined by
		// first occurrence across all checked commits, in checking order.
		tr := jmake.MergeTraces(spans...)
		if err := tro.WriteFiles(tr.Chrome(4), tr.Tree(), diag); err != nil {
			return err
		}
	}
	if err := cache.Flush(session); err != nil {
		return fmt.Errorf("persisting result cache: %w", err)
	}
	return nil
}

// runFollow drives the incremental follower over the latest n window
// commits: seed once at the stream's parent, then per-commit cost
// proportional to the diff. Every emitted report is byte-identical to
// `jmake -commit ID -json` output for the same commit; the incremental
// machinery only changes the effective cost, which is printed per commit
// on the diagnostic stream.
func runFollow(built *cliopts.Built, opts jmake.Options, n, workers int, cold, jsonOut bool, outDir string, diag io.Writer) error {
	ids := built.WindowIDs
	if n > 0 && len(ids) > n {
		ids = ids[len(ids)-n:]
	}
	if len(ids) == 0 {
		return fmt.Errorf("no window commits to follow")
	}
	base, err := built.Hist.Repo.Parent(ids[0])
	if err != nil {
		return err
	}
	if base == "" {
		return fmt.Errorf("stream starts at the root commit; nothing to seed from")
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	mode := "warm"
	if cold {
		mode = "cold"
	}
	fmt.Fprintf(diag, "following %d commits from %.12s (%s session, %d workers)\n\n", len(ids), base, mode, workers)

	f, err := jmake.NewFollower(built.Hist.Repo, base,
		jmake.FollowOptions{Checker: opts, Workers: workers, Cold: cold})
	if err != nil {
		return err
	}
	var emitErr error
	runErr := f.Run(ids, func(r jmake.FollowStep) bool {
		if r.Err != nil {
			emitErr = fmt.Errorf("commit %.12s: %w", r.Commit, r.Err)
			return false
		}
		eff := ""
		if r.EffectiveMeasured {
			pct := 100.0
			if r.VirtualSeconds > 0 {
				pct = 100 * r.EffectiveSeconds / r.VirtualSeconds
			}
			eff = fmt.Sprintf("  effective %.2fs (%.0f%% of cold)", r.EffectiveSeconds, pct)
		}
		fmt.Fprintf(diag, "commit %.12s: files=%d touched=%d invalidated_tus=%d structural=%v virtual %.2fs%s\n",
			r.Commit, r.Files, r.Touched, r.InvalidatedTUs, r.Structural, r.VirtualSeconds, eff)
		data, err := json.MarshalIndent(r.Report, "", "  ")
		if err != nil {
			emitErr = err
			return false
		}
		data = append(data, '\n')
		if outDir != "" {
			if err := os.WriteFile(filepath.Join(outDir, r.Commit+".json"), data, 0o644); err != nil {
				emitErr = err
				return false
			}
		} else if jsonOut {
			if _, err := os.Stdout.Write(data); err != nil {
				emitErr = err
				return false
			}
		} else {
			printReport(r.Commit, r.Report)
		}
		return true
	})
	if emitErr != nil {
		return emitErr
	}
	return runErr
}

func emitReport(id string, r *jmake.Report, asJSON bool) error {
	if asJSON {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	printReport(id, r)
	return nil
}

func printReport(id string, r *jmake.Report) {
	verdict := "NOT CERTIFIED"
	if r.Certified() {
		verdict = "CERTIFIED"
	}
	if len(r.Files) == 0 {
		verdict = "SKIPPED (no .c/.h changes)"
	}
	fmt.Printf("commit %.12s: %s  (virtual time %v)\n", id, verdict, r.Total.Round(1e6))
	if r.Retries > 0 || len(r.FaultEvents) > 0 {
		fmt.Printf("  resilience: %d injected faults, %d retries\n", len(r.FaultEvents), r.Retries)
	}
	if r.BudgetExhausted {
		fmt.Printf("  budget exhausted: checking stopped before completion\n")
	}
	if r.Interrupted {
		fmt.Printf("  interrupted: checking stopped before completion\n")
	}
	if len(r.QuarantinedArches) > 0 {
		fmt.Printf("  quarantined arches: %s\n", strings.Join(r.QuarantinedArches, ","))
	}
	for _, w := range r.PrescanWarnings {
		fmt.Printf("  prescan: %s line %d can never be compiled by standard configurations: %s\n",
			w.Mutation.File, w.Mutation.Line, w.Reason)
	}
	if r.StaticSkippedMakeI > 0 || r.StaticSkippedMakeO > 0 {
		fmt.Printf("  static pruning: skipped %d make.i and %d make.o invocations\n",
			r.StaticSkippedMakeI, r.StaticSkippedMakeO)
	}
	for _, d := range r.StaticDynamicDisagreements {
		fmt.Printf("  STATIC/DYNAMIC DISAGREEMENT: %s line %d on %s: predicted visible=%v, observed %v\n",
			d.File, d.Line, d.Arch, d.Predicted, d.Observed)
	}
	for _, f := range r.Files {
		fmt.Printf("  %-46s %-16s mutations %d/%d", f.Path, f.Status, f.FoundMutations, f.Mutations)
		if len(f.UsedArches) > 0 {
			fmt.Printf("  arches %s", strings.Join(f.UsedArches, ","))
		}
		if f.UsedDefconfig {
			fmt.Printf("  (defconfig)")
		}
		if f.ExtraCCompiles > 0 {
			fmt.Printf("  extra .c compiles %d", f.ExtraCCompiles)
		}
		fmt.Println()
		for _, e := range f.Escapes {
			fmt.Printf("      line %d not subjected to the compiler: %s\n",
				e.Mutation.Line, e.Reason)
		}
		if len(f.StaticDeadLines) > 0 {
			fmt.Printf("      statically dead lines (no compile issued): %v\n", f.StaticDeadLines)
		}
		if f.FailureDetail != "" {
			fmt.Printf("      %s\n", firstLine(f.FailureDetail))
		}
	}
	fmt.Println()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
