// Command jmake checks that every changed line of a commit is subjected to
// the compiler, over a generated kernel-shaped workspace. It is the
// developer-facing tool of the paper (§III): run it after preparing a
// change, read which lines the compiler never saw.
//
// Usage:
//
//	jmake [-tree-scale S] [-commit-scale S] [-n N | -commit ID] [-show]
//
// With -n, the latest N window commits are checked; with -commit, one
// specific commit. With -json, each report is printed as indented JSON
// (and the workspace chatter goes to stderr), byte-identical to the
// report jmaked serves for the same commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"jmake"
	"jmake/internal/cliopts"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jmake:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ws    cliopts.Workspace
		chk   cliopts.Check
		cache cliopts.Cache
		tro   cliopts.Trace
	)
	ws.Register(flag.CommandLine, 0.4, 0.05)
	chk.Register(flag.CommandLine)
	cache.Register(flag.CommandLine)
	tro.Register(flag.CommandLine)
	var (
		n         = flag.Int("n", 5, "check the latest N window commits")
		commitID  = flag.String("commit", "", "check one specific commit ID")
		show      = flag.Bool("show", false, "print each commit's patch before the verdict")
		annotate  = flag.Bool("annotate", false, "print the patch with per-line compile verdicts")
		patchFile = flag.String("patch", "", "check a unified-diff patch file against the v4.4 tree instead of commits")
		jsonOut   = flag.Bool("json", false, "print each report as indented JSON (diagnostics go to stderr)")
	)
	flag.Parse()

	// Under -json, stdout is exactly the report(s); chatter goes to stderr.
	diag := os.Stdout
	if *jsonOut {
		diag = os.Stderr
	}

	fmt.Fprintln(diag, "generating workspace...")
	built, err := ws.Build()
	if err != nil {
		return err
	}
	fmt.Fprintf(diag, "workspace: %d files, %d window commits\n\n", built.Tree.Len(), len(built.WindowIDs))

	targets := built.Targets(*commitID, *n)
	opts := chk.Options()

	if *patchFile != "" {
		text, err := os.ReadFile(*patchFile)
		if err != nil {
			return err
		}
		head, err := built.Hist.Repo.TagID("v4.4")
		if err != nil {
			return err
		}
		base, err := built.Hist.Repo.CheckoutTree(head)
		if err != nil {
			return err
		}
		report, err := jmake.CheckPatchText(base, string(text), opts)
		if err != nil {
			return err
		}
		return emitReport("(patch file)", report, *jsonOut)
	}

	// One session across all targets so the commits share the arch index,
	// configuration cache, and compile-result cache. With -cache-dir the
	// result cache additionally survives across jmake runs.
	session, err := built.SessionAt(targets[0])
	if err != nil {
		return err
	}
	cache.Apply(session)

	var spans []*jmake.TraceSpan
	for _, id := range targets {
		if *show {
			text, err := built.Hist.Repo.Show(id)
			if err != nil {
				return err
			}
			fmt.Fprintln(diag, text)
		}
		var report *jmake.Report
		var err error
		if tro.Enabled() {
			var span *jmake.TraceSpan
			report, span, err = jmake.CheckCommitTraced(session, built.Hist.Repo, id, opts)
			spans = append(spans, span)
		} else {
			report, err = jmake.CheckCommitWith(session, built.Hist.Repo, id, opts)
		}
		if err != nil {
			return err
		}
		if err := emitReport(id, report, *jsonOut); err != nil {
			return err
		}
		if *annotate {
			fds, err := built.Hist.Repo.FileDiffs(id)
			if err != nil {
				return err
			}
			fmt.Fprint(diag, jmake.Annotate(fds, report))
		}
	}
	cache.PrintStats(diag, session)
	if tro.Enabled() {
		// Stamp once over the whole session: cache outcomes are defined by
		// first occurrence across all checked commits, in checking order.
		tr := jmake.MergeTraces(spans...)
		if err := tro.WriteFiles(tr.Chrome(4), tr.Tree(), diag); err != nil {
			return err
		}
	}
	if err := cache.Flush(session); err != nil {
		return fmt.Errorf("persisting result cache: %w", err)
	}
	return nil
}

func emitReport(id string, r *jmake.Report, asJSON bool) error {
	if asJSON {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	printReport(id, r)
	return nil
}

func printReport(id string, r *jmake.Report) {
	verdict := "NOT CERTIFIED"
	if r.Certified() {
		verdict = "CERTIFIED"
	}
	if len(r.Files) == 0 {
		verdict = "SKIPPED (no .c/.h changes)"
	}
	fmt.Printf("commit %.12s: %s  (virtual time %v)\n", id, verdict, r.Total.Round(1e6))
	if r.Retries > 0 || len(r.FaultEvents) > 0 {
		fmt.Printf("  resilience: %d injected faults, %d retries\n", len(r.FaultEvents), r.Retries)
	}
	if r.BudgetExhausted {
		fmt.Printf("  budget exhausted: checking stopped before completion\n")
	}
	if r.Interrupted {
		fmt.Printf("  interrupted: checking stopped before completion\n")
	}
	if len(r.QuarantinedArches) > 0 {
		fmt.Printf("  quarantined arches: %s\n", strings.Join(r.QuarantinedArches, ","))
	}
	for _, w := range r.PrescanWarnings {
		fmt.Printf("  prescan: %s line %d can never be compiled by standard configurations: %s\n",
			w.Mutation.File, w.Mutation.Line, w.Reason)
	}
	if r.StaticSkippedMakeI > 0 || r.StaticSkippedMakeO > 0 {
		fmt.Printf("  static pruning: skipped %d make.i and %d make.o invocations\n",
			r.StaticSkippedMakeI, r.StaticSkippedMakeO)
	}
	for _, d := range r.StaticDynamicDisagreements {
		fmt.Printf("  STATIC/DYNAMIC DISAGREEMENT: %s line %d on %s: predicted visible=%v, observed %v\n",
			d.File, d.Line, d.Arch, d.Predicted, d.Observed)
	}
	for _, f := range r.Files {
		fmt.Printf("  %-46s %-16s mutations %d/%d", f.Path, f.Status, f.FoundMutations, f.Mutations)
		if len(f.UsedArches) > 0 {
			fmt.Printf("  arches %s", strings.Join(f.UsedArches, ","))
		}
		if f.UsedDefconfig {
			fmt.Printf("  (defconfig)")
		}
		if f.ExtraCCompiles > 0 {
			fmt.Printf("  extra .c compiles %d", f.ExtraCCompiles)
		}
		fmt.Println()
		for _, e := range f.Escapes {
			fmt.Printf("      line %d not subjected to the compiler: %s\n",
				e.Mutation.Line, e.Reason)
		}
		if len(f.StaticDeadLines) > 0 {
			fmt.Printf("      statically dead lines (no compile issued): %v\n", f.StaticDeadLines)
		}
		if f.FailureDetail != "" {
			fmt.Printf("      %s\n", firstLine(f.FailureDetail))
		}
	}
	fmt.Println()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
