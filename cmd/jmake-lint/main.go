// Command jmake-lint runs the static presence-condition analysis over real
// files on disk, without building anything: for every .c/.h file it reports
// the per-line #if condition, the Kbuild gate when a Makefile chain is
// present, and the lines no configuration can ever compile. It is the
// standalone face of the analysis internal/core uses to prune compiles
// (DESIGN.md §9).
//
// With -audit it instead runs the whole-tree configuration-mismatch audit
// (internal/audit): undefined CONFIG_* references, dead symbols,
// contradictory dependency chains, and blocks unsatisfiable under every
// architecture. The audit exit code is the finding count (capped at 100);
// 101 signals an audit failure or a -audit-verify mismatch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"jmake/internal/audit"
	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/metrics"
	"jmake/internal/presence"
	"jmake/internal/stats"
)

// auditFailExit signals an audit error or ground-truth mismatch, above the
// capped finding-count range.
const auditFailExit = 101

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jmake-lint:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		root     = flag.String("root", ".", "source tree root (Makefile chain, if any, is resolved from here)")
		arch     = flag.String("arch", kbuild.HostArch, "architecture for SRCARCH Makefile expansion")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		deadOnly = flag.Bool("dead", false, "report only provably-dead lines")
		summary  = flag.Bool("summary", false, "print the per-arch/per-stage analysis summary table after the reports")
		auditRun = flag.Bool("audit", false, "run the whole-tree configuration-mismatch audit instead of per-file reports")
		workers  = flag.Int("workers", 1, "parallel file-scan workers for -audit (output is identical at any value)")
		baseline = flag.String("baseline", "", "JSON file with a string array of symbols whose audit findings are suppressed")
		verify   = flag.String("audit-verify", "", "JSON ground-truth manifest the audit findings must match exactly")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: jmake-lint [flags] [file ...]\n\n"+
				"Without file arguments, every .c/.h file under -root is analyzed.\n"+
				"File arguments are paths relative to -root.\n"+
				"With -audit, the whole tree is audited for configuration mismatches\n"+
				"and the exit code is the finding count (capped at 100; 101 = failure).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	tree, err := fstree.LoadDir(*root)
	if err != nil {
		return 0, err
	}
	if *auditRun {
		return runAudit(tree, *workers, *baseline, *verify, *jsonOut)
	}
	paths := flag.Args()
	if len(paths) == 0 {
		for _, p := range tree.Paths() {
			if strings.HasSuffix(p, ".c") || strings.HasSuffix(p, ".h") {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
	}

	// The analysis tallies flow through the same metrics registry the
	// build pipeline uses, so the summary table reads from the registry —
	// never from a second, hand-maintained counter pile.
	reg := metrics.NewRegistry()
	var results []fileResult
	for _, p := range paths {
		p = fstree.Clean(p)
		content, err := tree.Read(p)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", p, err)
		}
		results = append(results, analyzeOne(tree, p, content, *arch, reg))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return 0, enc.Encode(results)
	}
	for _, r := range results {
		printText(r, *deadOnly)
	}
	if *summary {
		fmt.Println("== analysis summary by stage and arch ==")
		fmt.Println(renderSummary(reg, *arch))
	}
	return 0, nil
}

// runAudit executes the whole-tree audit and maps its outcome to the exit
// code: the finding count (capped at 100), or auditFailExit when the audit
// could not run or the report does not match a -audit-verify manifest.
func runAudit(tree *fstree.Tree, workers int, baselinePath, verifyPath string, jsonOut bool) (int, error) {
	ignore := make(map[string]bool)
	if baselinePath != "" {
		var syms []string
		if err := readJSONFile(baselinePath, &syms); err != nil {
			return auditFailExit, fmt.Errorf("baseline: %w", err)
		}
		for _, s := range syms {
			ignore[s] = true
		}
	}
	rep, err := audit.Run(audit.Params{Tree: tree, Ignore: ignore, Workers: workers})
	if err != nil {
		return auditFailExit, err
	}
	if jsonOut {
		b, err := rep.JSON()
		if err != nil {
			return auditFailExit, err
		}
		os.Stdout.Write(b)
	} else {
		fmt.Print(rep.Text())
	}
	code := len(rep.Findings)
	if code > 100 {
		code = 100
	}
	if verifyPath != "" {
		var want []audit.Expectation
		if err := readJSONFile(verifyPath, &want); err != nil {
			return auditFailExit, fmt.Errorf("audit-verify: %w", err)
		}
		missing, extra := audit.Verify(rep, want)
		for _, e := range missing {
			fmt.Fprintf(os.Stderr, "jmake-lint: audit-verify: expected finding missing: %s\n", e)
		}
		for _, f := range extra {
			fmt.Fprintf(os.Stderr, "jmake-lint: audit-verify: finding beyond ground truth: [%s] %s:%d %s\n",
				f.Category, f.File, f.Line, f.Symbol)
		}
		if len(missing) > 0 || len(extra) > 0 {
			return auditFailExit, fmt.Errorf("audit-verify: %d missing, %d extra", len(missing), len(extra))
		}
		fmt.Fprintf(os.Stderr, "jmake-lint: audit-verify: all %d expected findings matched exactly\n", len(want))
	}
	return code, nil
}

func readJSONFile(path string, into any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, into)
}

// lint stage names for the summary table; "gate" tallies only run for .c
// files under a Makefile chain, "presence" and "dead" for every file.
var lintStages = []struct{ stage, metric string }{
	{"files", "lint_files"},
	{"gate", "lint_gates_resolved"},
	{"gate-module", "lint_gates_module"},
	{"presence", "lint_conditional_lines"},
	{"dead", "lint_dead_lines"},
}

func renderSummary(reg *metrics.Registry, arch string) string {
	tb := stats.NewTable("stage", "arch", "count")
	for _, s := range lintStages {
		tb.AddRow(s.stage, arch, fmt.Sprintf("%d", reg.Counter(s.metric, metrics.L("arch", arch)).Value()))
	}
	return tb.String()
}

// fileResult is one file's report, shared between the text and JSON modes.
type fileResult struct {
	File string `json:"file"`
	// Gate lists the CONFIG variables the Kbuild descent requires (empty
	// when no Makefile chain gates the file or none could be resolved).
	Gate []string `json:"gate,omitempty"`
	// GateModule is true when the file's own rule is obj-m.
	GateModule bool `json:"gate_module,omitempty"`
	// Conds holds one entry per line under a non-trivial #if condition.
	Conds []lineCond `json:"conds,omitempty"`
	// Dead lists lines whose condition is provably unsatisfiable.
	Dead []int `json:"dead,omitempty"`
}

type lineCond struct {
	Line int    `json:"line"`
	Cond string `json:"cond"`
}

func analyzeOne(tree *fstree.Tree, p, content, arch string, reg *metrics.Registry) fileResult {
	byArch := metrics.L("arch", arch)
	reg.Counter("lint_files", byArch).Inc()
	r := fileResult{File: p}
	if strings.HasSuffix(p, ".c") && tree.Exists("Makefile") {
		if gate, err := kbuild.FileGate(tree, p, arch); err == nil {
			r.Gate = gate.Vars
			r.GateModule = gate.OwnModule
			if len(gate.Vars) > 0 {
				reg.Counter("lint_gates_resolved", byArch).Inc()
			}
			if gate.OwnModule {
				reg.Counter("lint_gates_module", byArch).Inc()
			}
		}
	}
	f := presence.Analyze(p, content)
	for n := 1; n <= f.Len(); n++ {
		cond := f.LineCond(n)
		if cond == presence.True {
			continue
		}
		r.Conds = append(r.Conds, lineCond{Line: n, Cond: cond.String()})
	}
	r.Dead = f.DeadLines()
	reg.Counter("lint_conditional_lines", byArch).Add(uint64(len(r.Conds)))
	reg.Counter("lint_dead_lines", byArch).Add(uint64(len(r.Dead)))
	return r
}

func printText(r fileResult, deadOnly bool) {
	if deadOnly {
		for _, n := range r.Dead {
			fmt.Printf("%s:%d: dead: no configuration compiles this line\n", r.File, n)
		}
		return
	}
	fmt.Printf("== %s\n", r.File)
	if len(r.Gate) > 0 {
		kind := "builtin or module"
		if r.GateModule {
			kind = "module only"
		}
		fmt.Printf("gate: CONFIG_%s (%s)\n", strings.Join(r.Gate, " && CONFIG_"), kind)
	}
	for _, lc := range r.Conds {
		fmt.Printf("%4d: %s\n", lc.Line, lc.Cond)
	}
	if len(r.Dead) > 0 {
		parts := make([]string, len(r.Dead))
		for i, n := range r.Dead {
			parts[i] = fmt.Sprint(n)
		}
		fmt.Printf("dead: %s\n", strings.Join(parts, " "))
	}
}
