// Command janitor-study reproduces the paper's §IV janitor identification
// (Tables I and II): it synthesizes the long commit history, applies the
// activity thresholds, and ranks candidates by the coefficient of
// variation of their per-file patch counts.
//
// Usage:
//
//	janitor-study [-tree-scale S] [-commit-scale S] [-paper-thresholds]
//	              [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"jmake"
	"jmake/internal/metrics"
	"jmake/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "janitor-study:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		treeSeed    = flag.Int64("tree-seed", 1, "kernel tree generation seed")
		histSeed    = flag.Int64("history-seed", 2, "history generation seed")
		treeScale   = flag.Float64("tree-scale", 1.6, "kernel tree size multiplier")
		commitScale = flag.Float64("commit-scale", 1.0, "history size multiplier")
		paperTh     = flag.Bool("paper-thresholds", true, "use the paper's Table I thresholds unscaled")
		workers     = flag.Int("workers", 0, "parallel commit-tally workers (0 = auto)")
		dump        = flag.Bool("metrics", false, "dump the study tallies as a raw metrics-registry snapshot after the tables")
	)
	flag.Parse()

	th := jmake.DefaultJanitorThresholds()
	if !*paperTh {
		scale := *commitScale
		th.MinPatches = scaleMin(th.MinPatches, scale, 3)
		th.MinSubsystems = scaleMin(th.MinSubsystems, scale, 4)
		th.MinLists = scaleMin(th.MinLists, scale, 2)
		th.MinWindowPatches = scaleMin(th.MinWindowPatches, scale, 2)
	}

	fmt.Println("== Table I: thresholds on janitor activity ==")
	t1 := stats.NewTable("criterion", "threshold")
	t1.AddRow("# patches", fmt.Sprintf(">= %d", th.MinPatches))
	t1.AddRow("# subsystems", fmt.Sprintf(">= %d", th.MinSubsystems))
	t1.AddRow("# lists", fmt.Sprintf(">= %d", th.MinLists))
	t1.AddRow("# maintainer patches", fmt.Sprintf("< %.0f%%", 100*th.MaxMaintainerFrac))
	t1.AddRow("# window patches", fmt.Sprintf(">= %d", th.MinWindowPatches))
	fmt.Println(t1.String())

	fmt.Println("generating history...")
	tree, man, err := jmake.GenerateKernel(*treeSeed, *treeScale)
	if err != nil {
		return err
	}
	hist, err := jmake.SynthesizeHistory(tree, man, *histSeed, *commitScale)
	if err != nil {
		return err
	}
	mtext, err := hist.Repo.ReadTip("MAINTAINERS")
	if err != nil {
		return err
	}
	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	js, err := jmake.IdentifyJanitorsWorkers(hist.Repo, mtext, th, w)
	if err != nil {
		return err
	}

	fmt.Println("\n== Table II: janitors identified using our criteria ==")
	t2 := stats.NewTable("janitor", "patches", "subsystems", "lists", "maintainer", "file cv", "window")
	roster := map[string]bool{}
	for _, j := range hist.Janitors {
		roster[j.Email] = true
	}
	hits := 0
	for _, j := range js {
		name := j.Name
		if roster[j.Email] {
			name += " *"
			hits++
		}
		t2.AddRow(name,
			fmt.Sprintf("%d", j.Patches),
			fmt.Sprintf("%d", j.Subsystems),
			fmt.Sprintf("%d", j.Lists),
			fmt.Sprintf("%.0f%%", 100*j.MaintainerFrac),
			fmt.Sprintf("%.2f", j.FileCV),
			fmt.Sprintf("%d", j.WindowPatches))
	}
	fmt.Println(t2.String())
	fmt.Printf("(*) planted Table II roster member: %d/%d identified\n", hits, len(js))

	if *dump {
		// The study's headline tallies, registered so downstream tooling
		// reads them the same way it reads the pipeline's counters.
		reg := metrics.NewRegistry()
		reg.Counter("study_candidates").Add(uint64(len(js)))
		reg.Counter("study_roster_hits").Add(uint64(hits))
		reg.Counter("study_roster_size").Add(uint64(len(hist.Janitors)))
		for _, j := range js {
			reg.Counter("study_janitor_patches").Add(uint64(j.Patches))
			reg.Counter("study_window_patches").Add(uint64(j.WindowPatches))
		}
		fmt.Println()
		for _, s := range reg.Snapshot() {
			fmt.Printf("%s %s %s\n", s.Kind, s.Name, s.Value)
		}
	}
	return nil
}

func scaleMin(n int, scale float64, min int) int {
	v := int(float64(n)*scale + 0.5)
	if v < min {
		v = min
	}
	return v
}
