// Command jmake-bench benchmarks the parallel evaluation pipeline: window
// throughput at 1/2/4/8 workers, then a cold-vs-warm pair of runs against
// a persistent result cache. It writes the machine-readable report to
// BENCH_pipeline.json (see -o) and prints a human summary.
//
// The cold/warm comparison is in effective virtual seconds — the
// deterministic cost-model currency — so the headline savings figure is
// machine-independent; only the wall-clock columns vary by host.
//
// Profiling flags (-cpuprofile, -mutexprofile, -blockprofile) capture
// pprof profiles of the benchmarked run, for hunting lock convoys and
// allocation hot spots in the pipeline. -scaling-check turns the command
// into a CI smoke gate: run only the worker sweep at a small scale and
// fail unless 4-worker throughput clears -min-speedup times the 1-worker
// throughput (skipped on hosts without enough CPUs to parallelize).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"jmake"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jmake-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		treeSeed    = flag.Int64("tree-seed", 51, "kernel tree generation seed")
		histSeed    = flag.Int64("history-seed", 52, "commit history generation seed")
		modelSeed   = flag.Uint64("model-seed", 53, "virtual-time model seed")
		treeScale   = flag.Float64("tree-scale", 1.0, "kernel tree size multiplier")
		commitScale = flag.Float64("commit-scale", 0.02, "history size multiplier")
		out         = flag.String("o", "BENCH_pipeline.json", "output report path")
		cacheDir    = flag.String("cache-dir", "", "directory for the cold/warm cache pair (default: a fresh temp dir)")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
		blockProfile = flag.String("blockprofile", "", "write a blocking profile to this file")

		scalingCheck = flag.Bool("scaling-check", false, "run only the 1-vs-4-worker sweep and fail below -min-speedup (CI smoke)")
		minSpeedup   = flag.Float64("min-speedup", 1.5, "minimum 4-worker/1-worker throughput ratio for -scaling-check")

		reactive      = flag.Bool("reactive", false, "also replay the window through the incremental follower and attach per-commit virtual vs effective cost to the report")
		reactiveN     = flag.Int("reactive-commits", 0, "cap the reactive replay at N commits (0 = the whole window)")
		reactiveCheck = flag.Bool("reactive-check", false, "run only the reactive replay and fail unless the small-commit mean effective/cold ratio clears -max-ratio (CI smoke)")
		maxRatio      = flag.Float64("max-ratio", 0.30, "maximum small-commit mean effective/cold ratio for -reactive-check")
	)
	flag.Parse()

	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	writeProfile := func(name, path string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return pprof.Lookup(name).WriteTo(f, 0)
	}
	defer func() {
		if err := writeProfile("mutex", *mutexProfile); err != nil {
			fmt.Fprintln(os.Stderr, "jmake-bench: mutex profile:", err)
		}
		if err := writeProfile("block", *blockProfile); err != nil {
			fmt.Fprintln(os.Stderr, "jmake-bench: block profile:", err)
		}
	}()

	params := jmake.EvalParams{
		TreeSeed:    *treeSeed,
		HistorySeed: *histSeed,
		ModelSeed:   *modelSeed,
		TreeScale:   *treeScale,
		CommitScale: *commitScale,
	}

	if *scalingCheck {
		return runScalingCheck(params, *minSpeedup)
	}
	if *reactiveCheck {
		return runReactiveCheck(params, *reactiveN, *maxRatio)
	}

	dir := *cacheDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "jmake-bench-cache-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	fmt.Printf("benchmarking: tree-scale=%.2f commit-scale=%.2f cache-dir=%s\n",
		*treeScale, *commitScale, dir)
	rep, err := jmake.RunBenchmarks(params, dir)
	if err != nil {
		return err
	}

	fmt.Printf("\nworker sweep (%d window commits):\n", rep.WindowCommits)
	for _, w := range rep.WorkerSweep {
		fmt.Printf("  workers=%d  wall %.2fs  %.1f patches/sec\n",
			w.Workers, w.WallSeconds, w.PatchesPerSec)
	}
	fmt.Printf("\nresult cache (effective virtual seconds, full price %.1fs):\n",
		rep.Cold.TotalVirtualSeconds)
	fmt.Printf("  cold: %.1fs effective (saved %.1fs; make.i %d/%d hits, make.o %d/%d hits)\n",
		rep.Cold.EffectiveVirtualSeconds, rep.Cold.SavedVirtualSeconds,
		rep.Cold.MakeIHits, rep.Cold.MakeIHits+rep.Cold.MakeIMisses,
		rep.Cold.MakeOHits, rep.Cold.MakeOHits+rep.Cold.MakeOMisses)
	fmt.Printf("  warm: %.1fs effective (saved %.1fs; loaded %d entries; make.i %d/%d hits, make.o %d/%d hits)\n",
		rep.Warm.EffectiveVirtualSeconds, rep.Warm.SavedVirtualSeconds,
		rep.Warm.LoadedEntries,
		rep.Warm.MakeIHits, rep.Warm.MakeIHits+rep.Warm.MakeIMisses,
		rep.Warm.MakeOHits, rep.Warm.MakeOHits+rep.Warm.MakeOMisses)
	fmt.Printf("  warm saves %.1f%% of cold's effective virtual time\n", rep.WarmSavingsPct)
	if len(rep.Spans) > 0 {
		fmt.Printf("\nspan attribution (warm pass, virtual seconds):\n")
		for _, s := range rep.Spans {
			fmt.Printf("  %-8s %6d spans  %8.1fs charged  %8.1fs saved by cache\n",
				s.Kind, s.Spans, s.VirtualSeconds, s.SavedVirtualSeconds)
		}
	}

	if *reactive {
		rr, err := runReactive(params, *reactiveN)
		if err != nil {
			return fmt.Errorf("reactive replay: %w", err)
		}
		rep.Reactive = rr
		printReactive(rr)
	}

	data, err := rep.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", *out)
	return nil
}

// runReactive replays the evaluation window's commit stream through one
// warm follower over the same substrate the other benchmarks use,
// yielding per-commit virtual (= cold) vs effective cost.
func runReactive(p jmake.EvalParams, commits int) (*jmake.ReactiveReport, error) {
	tree, man, err := jmake.GenerateKernel(p.TreeSeed, p.TreeScale)
	if err != nil {
		return nil, err
	}
	hist, err := jmake.SynthesizeHistory(tree, man, p.HistorySeed, p.CommitScale)
	if err != nil {
		return nil, err
	}
	return jmake.RunReactive(hist.Repo, jmake.ReactiveParams{Commits: commits})
}

func printReactive(rr *jmake.ReactiveReport) {
	fmt.Printf("\nreactive follower (%d commits streamed after the seed):\n", rr.Commits)
	pct := 100.0
	if rr.TotalVirtualSeconds > 0 {
		pct = 100 * rr.TotalEffectiveSeconds / rr.TotalVirtualSeconds
	}
	fmt.Printf("  total: %.1fs virtual, %.1fs effective (%.1f%% of cold)\n",
		rr.TotalVirtualSeconds, rr.TotalEffectiveSeconds, pct)
	fmt.Printf("  small commits (<=2 files, post-warmup): %d, mean effective/cold ratio %.3f\n",
		rr.SmallCommits, rr.SmallCommitMeanRatio)
}

// runReactiveCheck is the CI smoke gate for incremental following: replay
// the window through one warm follower and require the steady-state small
// commits (<=2 relevant files, past warm-up) to cost at most maxRatio of
// their cold price on average. A follower that silently degenerates to
// tree-proportional work fails this long before it fails a human.
func runReactiveCheck(p jmake.EvalParams, commits int, maxRatio float64) error {
	fmt.Printf("reactive-check: tree-scale=%.2f commit-scale=%.3f max-ratio=%.2f\n",
		p.TreeScale, p.CommitScale, maxRatio)
	rr, err := runReactive(p, commits)
	if err != nil {
		return err
	}
	printReactive(rr)
	if rr.SmallCommits == 0 {
		return fmt.Errorf("reactive-check: the replay contained no small commits to gate on — grow -reactive-commits or the commit scale")
	}
	if rr.SmallCommitMeanRatio > maxRatio {
		return fmt.Errorf("reactive-check: small commits cost %.1f%% of cold on average (want <= %.1f%%) — incremental invalidation is not paying for itself",
			100*rr.SmallCommitMeanRatio, 100*maxRatio)
	}
	fmt.Println("reactive-check: OK")
	return nil
}

// runScalingCheck is the CI smoke gate for worker scaling: measure the
// window at 1 and 4 workers and require the 4-worker pass to clear
// minSpeedup× the 1-worker throughput. Wall-clock speedup needs real
// cores — a 1-CPU container cannot parallelize CPU-bound work no matter
// how contention-free the pipeline is — so hosts with fewer than 4 CPUs
// skip (exit 0) rather than report a false regression.
func runScalingCheck(params jmake.EvalParams, minSpeedup float64) error {
	if n := runtime.NumCPU(); n < 4 {
		fmt.Printf("scaling-check: SKIP (%d CPU(s) available, need >= 4 for a meaningful 4-worker ratio)\n", n)
		return nil
	}
	fmt.Printf("scaling-check: tree-scale=%.2f commit-scale=%.3f min-speedup=%.2fx\n",
		params.TreeScale, params.CommitScale, minSpeedup)
	sweep, err := jmake.RunWorkerSweep(params, []int{1, 4})
	if err != nil {
		return err
	}
	for _, w := range sweep {
		fmt.Printf("  workers=%d  wall %.2fs  %.1f patches/sec\n",
			w.Workers, w.WallSeconds, w.PatchesPerSec)
	}
	if sweep[0].PatchesPerSec <= 0 {
		return fmt.Errorf("scaling-check: 1-worker pass measured no throughput")
	}
	ratio := sweep[1].PatchesPerSec / sweep[0].PatchesPerSec
	fmt.Printf("  speedup: %.2fx (threshold %.2fx)\n", ratio, minSpeedup)
	if ratio < minSpeedup {
		return fmt.Errorf("scaling-check: 4-worker throughput is only %.2fx the 1-worker throughput (want >= %.2fx) — the parallel pipeline is serializing", ratio, minSpeedup)
	}
	fmt.Println("scaling-check: OK")
	return nil
}
