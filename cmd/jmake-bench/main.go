// Command jmake-bench benchmarks the parallel evaluation pipeline: window
// throughput at 1/2/4/8 workers, then a cold-vs-warm pair of runs against
// a persistent result cache. It writes the machine-readable report to
// BENCH_pipeline.json (see -o) and prints a human summary.
//
// The cold/warm comparison is in effective virtual seconds — the
// deterministic cost-model currency — so the headline savings figure is
// machine-independent; only the wall-clock columns vary by host.
package main

import (
	"flag"
	"fmt"
	"os"

	"jmake"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jmake-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		treeSeed    = flag.Int64("tree-seed", 51, "kernel tree generation seed")
		histSeed    = flag.Int64("history-seed", 52, "commit history generation seed")
		modelSeed   = flag.Uint64("model-seed", 53, "virtual-time model seed")
		treeScale   = flag.Float64("tree-scale", 0.25, "kernel tree size multiplier")
		commitScale = flag.Float64("commit-scale", 0.02, "history size multiplier")
		out         = flag.String("o", "BENCH_pipeline.json", "output report path")
		cacheDir    = flag.String("cache-dir", "", "directory for the cold/warm cache pair (default: a fresh temp dir)")
	)
	flag.Parse()

	dir := *cacheDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "jmake-bench-cache-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	fmt.Printf("benchmarking: tree-scale=%.2f commit-scale=%.2f cache-dir=%s\n",
		*treeScale, *commitScale, dir)
	rep, err := jmake.RunBenchmarks(jmake.EvalParams{
		TreeSeed:    *treeSeed,
		HistorySeed: *histSeed,
		ModelSeed:   *modelSeed,
		TreeScale:   *treeScale,
		CommitScale: *commitScale,
	}, dir)
	if err != nil {
		return err
	}

	fmt.Printf("\nworker sweep (%d window commits):\n", rep.WindowCommits)
	for _, w := range rep.WorkerSweep {
		fmt.Printf("  workers=%d  wall %.2fs  %.1f patches/sec\n",
			w.Workers, w.WallSeconds, w.PatchesPerSec)
	}
	fmt.Printf("\nresult cache (effective virtual seconds, full price %.1fs):\n",
		rep.Cold.TotalVirtualSeconds)
	fmt.Printf("  cold: %.1fs effective (saved %.1fs; make.i %d/%d hits, make.o %d/%d hits)\n",
		rep.Cold.EffectiveVirtualSeconds, rep.Cold.SavedVirtualSeconds,
		rep.Cold.MakeIHits, rep.Cold.MakeIHits+rep.Cold.MakeIMisses,
		rep.Cold.MakeOHits, rep.Cold.MakeOHits+rep.Cold.MakeOMisses)
	fmt.Printf("  warm: %.1fs effective (saved %.1fs; loaded %d entries; make.i %d/%d hits, make.o %d/%d hits)\n",
		rep.Warm.EffectiveVirtualSeconds, rep.Warm.SavedVirtualSeconds,
		rep.Warm.LoadedEntries,
		rep.Warm.MakeIHits, rep.Warm.MakeIHits+rep.Warm.MakeIMisses,
		rep.Warm.MakeOHits, rep.Warm.MakeOHits+rep.Warm.MakeOMisses)
	fmt.Printf("  warm saves %.1f%% of cold's effective virtual time\n", rep.WarmSavingsPct)
	if len(rep.Spans) > 0 {
		fmt.Printf("\nspan attribution (warm pass, virtual seconds):\n")
		for _, s := range rep.Spans {
			fmt.Printf("  %-8s %6d spans  %8.1fs charged  %8.1fs saved by cache\n",
				s.Kind, s.Spans, s.VirtualSeconds, s.SavedVirtualSeconds)
		}
	}

	data, err := rep.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", *out)
	return nil
}
