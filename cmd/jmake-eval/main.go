// Command jmake-eval reproduces the paper's §V evaluation: it generates
// the kernel-shaped tree and commit history, runs JMake over every patch
// between v4.3 and v4.4, and prints each table and figure.
//
// Usage:
//
//	jmake-eval [flags] [selectors...]
//
// Selectors: table1 table2 table3 table4 fig4a fig4b fig4c fig5 fig6
// archstats configstats mutstats cstats hstats summary limits
// invocations faults pipeline presence spans all (default: all).
//
// With -json, diagnostic `#` lines go to stderr so stdout is exactly the
// report: same-seed runs emit byte-identical JSON at any -workers setting.
// -runtime-metrics opts into the volatile scheduling figures (wall clock,
// throughput, worker configuration), which are NOT reproducible.
//
// -trace-out writes a Chrome trace-event JSON file of the whole run's
// virtual-time spans (load in Perfetto / chrome://tracing); -trace-tree
// writes the same spans as an indented text tree. Both are stamped with
// virtual times from the deterministic cost model, so like the JSON
// report they are byte-identical at any -workers setting and any
// result-cache state. The `spans` selector prints the per-kind summary
// table on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"jmake"
	"jmake/internal/cliopts"
	"jmake/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jmake-eval:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ws    cliopts.Workspace
		chk   cliopts.Check
		cache cliopts.Cache
		tro   cliopts.Trace
	)
	ws.Register(flag.CommandLine, 1.6, 1.0)
	chk.Register(flag.CommandLine)
	cache.Register(flag.CommandLine)
	tro.Register(flag.CommandLine)
	var (
		modelSeed  = flag.Uint64("model-seed", 3, "virtual-time model seed")
		workers    = flag.Int("workers", 0, "parallel patch workers (0 = auto, capped at 25)")
		inflight   = flag.Int("inflight", 0, "bound on admitted-but-unmerged patches (0 = 2*workers)")
		runtimeMet = flag.Bool("runtime-metrics", false, "include volatile scheduling metrics (wall clock, throughput); output is no longer reproducible")
		points     = flag.Bool("points", false, "print figures as x/y points instead of ASCII plots")
		jsonOut    = flag.Bool("json", false, "emit the whole evaluation as machine-readable JSON and exit")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, s := range flag.Args() {
		want[strings.ToLower(s)] = true
	}
	if len(want) == 0 {
		want["all"] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	// Diagnostic chatter goes to stdout for humans, but to stderr under
	// -json so stdout is exactly the (reproducible) report.
	diag := os.Stdout
	if *jsonOut {
		diag = os.Stderr
	}
	fmt.Fprintf(diag, "# jmake-eval: tree-scale=%.2f commit-scale=%.2f workers=%d\n",
		ws.TreeScale, ws.CommitScale, *workers)
	traced := tro.Enabled() || want["spans"]
	start := time.Now()
	run, err := jmake.Evaluate(jmake.EvalParams{
		TreeSeed:      ws.TreeSeed,
		HistorySeed:   ws.HistorySeed,
		ModelSeed:     *modelSeed,
		TreeScale:     ws.TreeScale,
		CommitScale:   ws.CommitScale,
		Workers:       *workers,
		InFlight:      *inflight,
		Checker:       chk.Options(),
		NoResultCache: cache.Disable,
		CacheDir:      cache.Dir,
		CacheMaxBytes: cache.MaxBytes,
		Trace:         traced,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(diag, "# evaluated %d window commits (%d skipped by path filter) in %v\n\n",
		len(run.Results), run.SkippedCount(), time.Since(start).Round(time.Millisecond))

	if tro.Enabled() {
		if err := tro.WriteFiles(run.ChromeTrace(), run.TraceTree(), diag); err != nil {
			return err
		}
	}

	if *jsonOut {
		var data []byte
		if *runtimeMet {
			data, err = run.JSONWithRuntime(*points)
		} else {
			data, err = run.JSON(*points)
		}
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}

	if sel("table1") {
		th := jmake.DefaultJanitorThresholds()
		fmt.Println("== Table I: thresholds on janitor activity ==")
		tb := stats.NewTable("criterion", "threshold")
		tb.AddRow("# patches", fmt.Sprintf(">= %d", th.MinPatches))
		tb.AddRow("# subsystems", fmt.Sprintf(">= %d", th.MinSubsystems))
		tb.AddRow("# lists", fmt.Sprintf(">= %d", th.MinLists))
		tb.AddRow("# maintainer patches", fmt.Sprintf("< %.0f%%", 100*th.MaxMaintainerFrac))
		fmt.Println(tb.String())
	}
	if sel("table2") {
		fmt.Println("== Table II: janitors identified ==")
		fmt.Println(run.TableII())
	}
	if sel("table3") {
		fmt.Println("== Table III: characteristics of patches ==")
		fmt.Println(run.ComputeTableIII().Render())
	}
	if sel("table4") {
		fmt.Println("== Table IV: reasons changed lines escape the compiler (janitor patches) ==")
		fmt.Println(run.ComputeTableIV(true).Render())
		fmt.Println("== Table IV companion: all patches ==")
		fmt.Println(run.ComputeTableIV(false).Render())
	}

	d := run.ComputeDurations()
	figs := []struct {
		name, label string
		cdf         *stats.CDF
	}{
		{"fig4a", "Fig 4a: configuration creation time (s)", d.Fig4a()},
		{"fig4b", "Fig 4b: .i generation time per invocation (s)", d.Fig4b()},
		{"fig4c", "Fig 4c: .o generation time per invocation (s)", d.Fig4c()},
		{"fig5", "Fig 5: overall running time per patch (s)", d.Fig5()},
		{"fig6", "Fig 6: overall running time per janitor patch (s)", d.Fig6()},
	}
	for _, f := range figs {
		if !sel(f.name) {
			continue
		}
		fmt.Printf("== %s ==\n", f.label)
		fmt.Printf("n=%d p50=%.1fs p82=%.1fs p95=%.1fs p98=%.1fs max=%.1fs\n",
			f.cdf.Len(), f.cdf.Percentile(0.50), f.cdf.Percentile(0.82),
			f.cdf.Percentile(0.95), f.cdf.Percentile(0.98), f.cdf.Max())
		if *points {
			for _, pt := range f.cdf.Points(40) {
				fmt.Printf("%.3f %.1f\n", pt[0], pt[1])
			}
		} else {
			fmt.Println(f.cdf.RenderASCII(64, 10, "seconds"))
		}
	}

	if sel("archstats") {
		fmt.Println("== §V-B: choice of architecture ==")
		fmt.Println(run.ComputeArchStats().Render())
	}
	if sel("configstats") {
		s := run.ComputeConfigStats()
		fmt.Println("== §V-B: allyesconfig vs configs/ defconfigs ==")
		fmt.Printf("patches fully certified with allyesconfig only: %d (%.0f%%)\n",
			s.CertifiedAllyesOnly, pct(s.CertifiedAllyesOnly, s.TotalPatches))
		fmt.Printf("patches fully certified with defconfigs too:    %d (%.0f%%)\n\n",
			s.CertifiedWithConfig, pct(s.CertifiedWithConfig, s.TotalPatches))
	}
	if sel("mutstats") {
		all := run.ComputeMutStats(false)
		jan := run.ComputeMutStats(true)
		fmt.Println("== §V-B: properties of mutations ==")
		tb := stats.NewTable("population", "one mutation", "<= 3 mutations", "max")
		tb.AddRow(".c (all)", pctS(all.OneC, all.TotalC), pctS(all.LeThreeC, all.TotalC), fmt.Sprintf("%d", all.MaxC))
		tb.AddRow(".h (all)", pctS(all.OneH, all.TotalH), pctS(all.LeThreeH, all.TotalH), fmt.Sprintf("%d", all.MaxH))
		tb.AddRow(".c (janitor)", pctS(jan.OneC, jan.TotalC), pctS(jan.LeThreeC, jan.TotalC), fmt.Sprintf("%d", jan.MaxC))
		tb.AddRow(".h (janitor)", pctS(jan.OneH, jan.TotalH), pctS(jan.LeThreeH, jan.TotalH), fmt.Sprintf("%d", jan.MaxH))
		fmt.Println(tb.String())
	}
	if sel("cstats") {
		all := run.ComputeCStats(false)
		jan := run.ComputeCStats(true)
		fmt.Println("== §V-B: benefits of mutations for .c files ==")
		fmt.Printf("all:     %d instances; clean first compile %d (%.0f%%); silent escapes %d; recovered via arches %d\n",
			all.Total, all.CleanFirst, pct(all.CleanFirst, all.Total), all.SilentEscapes, all.RecoveredByArch)
		fmt.Printf("janitor: %d instances; clean first compile %d (%.0f%%); silent escapes %d; recovered via arches %d\n\n",
			jan.Total, jan.CleanFirst, pct(jan.CleanFirst, jan.Total), jan.SilentEscapes, jan.RecoveredByArch)
	}
	if sel("hstats") {
		all := run.ComputeHStats(false)
		jan := run.ComputeHStats(true)
		fmt.Println("== §V-B: benefits of mutations for .h files ==")
		fmt.Printf("all:     %d instances; covered by patch's own .c %d (%.0f%%); needed extra %d; recovered %d; never %d; max extra compiles %d\n",
			all.Total, all.CoveredByPatchCs, pct(all.CoveredByPatchCs, all.Total),
			all.NeededExtra, all.RecoveredExtra, all.NeverCovered, all.MaxExtraCompiles)
		fmt.Printf("janitor: %d instances; covered by patch's own .c %d (%.0f%%); needed extra %d; recovered %d; never %d\n\n",
			jan.Total, jan.CoveredByPatchCs, pct(jan.CoveredByPatchCs, jan.Total),
			jan.NeededExtra, jan.RecoveredExtra, jan.NeverCovered)
	}
	if sel("summary") {
		s := run.ComputeSummary()
		fmt.Println("== §V-B summary ==")
		fmt.Printf("all patches:     %d/%d fully certified (%.0f%%)\n",
			s.CertifiedAll, s.TotalAll, pct(s.CertifiedAll, s.TotalAll))
		fmt.Printf("janitor patches: %d/%d fully certified (%.0f%%)\n",
			s.CertifiedJanitor, s.TotalJanitor, pct(s.CertifiedJanitor, s.TotalJanitor))
		fmt.Printf("patches needing a single make invocation: %d (%.0f%%)\n\n",
			s.SingleInvocationPatches, pct(s.SingleInvocationPatches, s.TotalAll))
	}
	if sel("limits") {
		s := run.ComputeSummary()
		fmt.Println("== §V-D: limitations ==")
		fmt.Printf("untreatable patches (build-setup files): %d of %d (%.1f%%)\n\n",
			s.Untreatable, s.TotalAll, pct(s.Untreatable, s.TotalAll))
	}
	if sel("invocations") {
		printInvocationStats(run)
	}
	if sel("faults") {
		fmt.Println("== resilience: injected faults, retries, budgets ==")
		fmt.Println(run.ComputeFaultStats().Render())
	}
	if sel("pipeline") {
		fmt.Println("== parallel evaluation pipeline ==")
		fmt.Println(run.RenderPipeline(*runtimeMet))
	}
	if sel("presence") && chk.Static {
		fmt.Println("== static presence-condition analysis ==")
		fmt.Println(run.ComputePresenceStats().Render())
	}
	if sel("spans") && traced {
		fmt.Println("== virtual-time spans by kind ==")
		fmt.Println(run.TraceSummary())
	}
	return nil
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

func pctS(n, d int) string { return fmt.Sprintf("%.0f%%", pct(n, d)) }

// printInvocationStats reports the §V-C per-patch invocation counts.
func printInvocationStats(run *jmake.Run) {
	var configs, makeIs, makeOs []int
	for _, res := range run.Results {
		if res.Skipped || res.Report == nil {
			continue
		}
		configs = append(configs, len(res.Report.ConfigDurations))
		makeIs = append(makeIs, len(res.Report.MakeIDurations))
		makeOs = append(makeOs, len(res.Report.MakeODurations))
	}
	show := func(name string, xs []int) {
		sort.Ints(xs)
		if len(xs) == 0 {
			return
		}
		one := 0
		for _, x := range xs {
			if x <= 1 {
				one++
			}
		}
		fmt.Printf("%-22s one-or-fewer %.0f%%, p95 %d, max %d\n",
			name, pct(one, len(xs)), xs[len(xs)*95/100], xs[len(xs)-1])
	}
	fmt.Println("== §V-C: invocations per patch ==")
	show("configurations", configs)
	show(".i invocations", makeIs)
	show(".o invocations", makeOs)
	fmt.Println()
}
