package jmake_test

import (
	"strings"
	"testing"

	"jmake"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	tree, man, err := jmake.GenerateKernel(1, 0.15)
	if err != nil {
		t.Fatalf("GenerateKernel: %v", err)
	}
	if tree.Len() == 0 || len(man.Drivers) == 0 {
		t.Fatal("empty tree or manifest")
	}
	hist, err := jmake.SynthesizeHistory(tree, man, 2, 0.01)
	if err != nil {
		t.Fatalf("SynthesizeHistory: %v", err)
	}
	ids, err := hist.Repo.Between("v4.3", "v4.4", jmake.ModifyingNonMerge)
	if err != nil {
		t.Fatalf("Between: %v", err)
	}
	if len(ids) == 0 {
		t.Fatal("no window commits")
	}

	checked := 0
	for _, id := range ids {
		report, err := jmake.CheckCommit(hist.Repo, id, jmake.Options{})
		if err != nil {
			t.Fatalf("CheckCommit(%s): %v", id, err)
		}
		if len(report.Files) == 0 {
			continue // path-filtered commit
		}
		checked++
		if checked >= 5 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no commits checked")
	}
}

func TestPublicMutate(t *testing.T) {
	res := jmake.Mutate("f.c", "int a;\nint b;\n", []int{2})
	if len(res.Mutations) != 1 {
		t.Fatalf("Mutations = %d", len(res.Mutations))
	}
	if !strings.Contains(res.Content, res.Mutations[0].ID) {
		t.Error("mutation not inserted")
	}
}

func TestPublicJanitorStudy(t *testing.T) {
	tree, man, err := jmake.GenerateKernel(5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := jmake.SynthesizeHistory(tree, man, 6, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	mtext, err := hist.Repo.ReadTip("MAINTAINERS")
	if err != nil {
		t.Fatal(err)
	}
	th := jmake.DefaultJanitorThresholds()
	th.MinPatches, th.MinSubsystems, th.MinLists, th.MinWindowPatches = 3, 3, 2, 1
	js, err := jmake.IdentifyJanitors(hist.Repo, mtext, th)
	if err != nil {
		t.Fatalf("IdentifyJanitors: %v", err)
	}
	if len(js) == 0 {
		t.Fatal("no janitors identified")
	}
}

func TestSessionReuse(t *testing.T) {
	tree, man, err := jmake.GenerateKernel(7, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := jmake.SynthesizeHistory(tree, man, 8, 0.008)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := hist.Repo.Between("v4.3", "v4.4", jmake.ModifyingNonMerge)
	base, err := hist.Repo.CheckoutTree(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	session, err := jmake.NewSession(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if i >= 6 {
			break
		}
		snap, err := hist.Repo.CheckoutTree(id)
		if err != nil {
			t.Fatal(err)
		}
		fds, err := hist.Repo.FileDiffs(id)
		if err != nil {
			t.Fatal(err)
		}
		checker := jmake.NewChecker(session, snap, 1, jmake.Options{})
		if _, err := checker.CheckPatch(id, fds); err != nil {
			t.Fatalf("CheckPatch: %v", err)
		}
	}
}

func TestCheckPatchText(t *testing.T) {
	tree, man, err := jmake.GenerateKernel(9, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// Craft a patch against a generated driver.
	var path string
	for _, d := range man.Drivers {
		if d.ArchBound == "" {
			path = d.CFile
			break
		}
	}
	old, err := tree.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(old, "0x04", "0x09", 1)
	if edited == old {
		t.Skip("driver lacks the expected register constant")
	}
	fd, _ := jmake.DiffFiles(path, old, edited)
	patch := jmake.FormatDiff(fd)

	report, err := jmake.CheckPatchText(tree, patch, jmake.Options{})
	if err != nil {
		t.Fatalf("CheckPatchText: %v", err)
	}
	if !report.Certified() {
		t.Errorf("patch not certified: %+v", report.Files)
	}
	// The original tree must be untouched.
	now, _ := tree.Read(path)
	if now != old {
		t.Error("CheckPatchText modified the input tree")
	}
}

func TestCheckPatchTextErrors(t *testing.T) {
	tree, _, err := jmake.GenerateKernel(9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jmake.CheckPatchText(tree, "not a patch", jmake.Options{}); err == nil {
		t.Error("garbage patch accepted")
	}
	bad := "--- a/drivers/net/nonexistent.c\n+++ b/drivers/net/nonexistent.c\n@@ -1,1 +1,1 @@\n-x\n+y\n"
	if _, err := jmake.CheckPatchText(tree, bad, jmake.Options{}); err == nil {
		t.Error("patch against missing file accepted")
	}
}
