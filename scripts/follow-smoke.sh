#!/bin/sh
# follow-smoke: end-to-end proof of the incremental follower's
# dependability contract over a generated workspace.
#
#   1. Stream the latest 20 window commits through one warm follower at
#      workers 1 and at workers 4, writing each report to a file.
#   2. Stream the same commits in -follow-cold mode (a from-scratch
#      session per commit — the one-shot comparator).
#   3. cmp every report three ways: warm/1 == warm/4 == cold. Warmth and
#      concurrency may change cost, never a byte.
#   4. Spot-check one commit against a literal `jmake -commit ID -json`
#      one-shot run — the follower is not allowed its own serialization.
#   5. Gate the economics: replay the bench window through a warm
#      follower and require steady-state small commits (<= 2 files, past
#      warm-up) to average <= 30% of their cold price.
set -eu

GO=${GO:-go}
WS="-tree-scale 0.15 -commit-scale 0.008"
N=20

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

$GO build -o "$dir/jmake" ./cmd/jmake
$GO build -o "$dir/jmake-bench" ./cmd/jmake-bench

echo "follow-smoke: streaming $N commits (warm, workers 1)..."
"$dir/jmake" $WS -follow -follow-n $N -follow-workers 1 -follow-out "$dir/w1" >"$dir/w1.log"
echo "follow-smoke: streaming $N commits (warm, workers 4)..."
"$dir/jmake" $WS -follow -follow-n $N -follow-workers 4 -follow-out "$dir/w4" >/dev/null
echo "follow-smoke: streaming $N commits (cold comparator)..."
"$dir/jmake" $WS -follow -follow-n $N -follow-cold -follow-out "$dir/cold" >/dev/null

count=0
for f in "$dir/w1"/*.json; do
    b=$(basename "$f")
    cmp "$f" "$dir/w4/$b"
    cmp "$f" "$dir/cold/$b"
    count=$((count + 1))
done
[ "$count" -ge 1 ] || { echo "follow-smoke: no reports were streamed" >&2; exit 1; }
echo "follow-smoke: $count reports byte-identical across warm/1, warm/4 and cold"

id=$(ls "$dir/w1" | head -1 | sed 's/\.json$//')
"$dir/jmake" $WS -commit "$id" -json >"$dir/oneshot.json" 2>/dev/null
cmp "$dir/w1/$id.json" "$dir/oneshot.json"
echo "follow-smoke: streamed report for $id matches the one-shot CLI byte for byte"

echo "follow-smoke: gating small-commit economics..."
"$dir/jmake-bench" -reactive-check $WS -reactive-commits 40 -max-ratio 0.30

echo "follow-smoke: OK"
