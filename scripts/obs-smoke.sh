#!/bin/sh
# obs-smoke: end-to-end exercise of jmaked's observability surface.
#
#   1. Start jmaked with tight admission limits, a flight recorder, and
#      debug-level structured logging; wait for readiness.
#   2. Chaos burst at concurrency 32 (jmake-load scrapes /metricsz before
#      and after and fails if the scrape breaks).
#   3. Scrape /metricsz?format=prometheus and validate the exposition
#      with trace-check -prom (legal names, sorted labels, cumulative
#      histograms with matching +Inf/_count).
#   4. Require the flight recorder to have captured the burst's shed
#      requests, then pull the trace for a successful request via
#      /tracez/<request-id> and require a non-empty span tree.
#   5. Require the structured NDJSON request log on stderr.
#   6. SIGTERM and require a clean drain.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:8439}
WS="-tree-scale 0.15 -commit-scale 0.008"

dir=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$dir"
}
trap cleanup EXIT

$GO build -o "$dir/jmaked" ./cmd/jmaked
$GO build -o "$dir/jmake-load" ./cmd/jmake-load
$GO build -o "$dir/trace-check" ./cmd/trace-check

# Tight queue on purpose: the burst must shed, and the sheds must show up
# as flight records with outcome "shed".
"$dir/jmaked" -addr "$ADDR" $WS -max-inflight 2 -max-queue 2 \
    -flight 256 -log-level debug >"$dir/jmaked.log" 2>&1 &
pid=$!

i=0
until "$dir/jmake-load" -addr "$ADDR" -print-latest-commit >/dev/null 2>&1; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "obs-smoke: jmaked died during startup" >&2
        cat "$dir/jmaked.log" >&2
        pid=""
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 120 ]; then
        echo "obs-smoke: jmaked never became ready" >&2
        cat "$dir/jmaked.log" >&2
        exit 1
    fi
    sleep 0.5
done

"$dir/jmake-load" -addr "$ADDR" -n 120 -c 32 -chaos

"$dir/jmake-load" -addr "$ADDR" -get "/metricsz?format=prometheus" >"$dir/metrics.prom"
"$dir/trace-check" -prom "$dir/metrics.prom"
grep -q '^requests_outcome_total{endpoint="check",outcome="shed"}' "$dir/metrics.prom"
echo "obs-smoke: Prometheus exposition valid, shed outcomes counted"

"$dir/jmake-load" -addr "$ADDR" -get "/debugz/requests" >"$dir/flight.json"
grep -q '"outcome": "shed"' "$dir/flight.json"

# Pull the span tree for a request the flight recorder says succeeded:
# remember each record's request_id, emit it when its outcome is "ok".
rid=$(awk -F'"' '/"request_id":/ { id=$4 } /"outcome": "ok"/ { print id; exit }' "$dir/flight.json")
if [ -z "$rid" ]; then
    echo "obs-smoke: no ok record in flight recorder" >&2
    exit 1
fi
"$dir/jmake-load" -addr "$ADDR" -get "/tracez/$rid?format=tree" >"$dir/trace.tree"
test -s "$dir/trace.tree"
grep -q "patch" "$dir/trace.tree"
echo "obs-smoke: flight recorder holds the burst, /tracez/$rid serves its span tree"

grep -q '"msg":"request"' "$dir/jmaked.log"
grep -q '"level":"debug"' "$dir/jmaked.log"

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "obs-smoke: jmaked exited non-zero on SIGTERM" >&2
    cat "$dir/jmaked.log" >&2
    pid=""
    exit 1
fi
pid=""
grep -q "drained cleanly" "$dir/jmaked.log"
echo "obs-smoke: structured request log present, clean drain"
