#!/bin/sh
# audit-smoke: ground-truth gate for the whole-tree configuration audit.
#
#   1. Emit a generated tree with 10 seeded mismatches and the matching
#      ground-truth manifest + audit baseline.
#   2. jmake-lint -audit -audit-verify must find all 10 findings and
#      nothing else (exit code 10 = the finding count).
#   3. The JSON report must be byte-identical at -workers 1 and 4.
#   4. A clean emitted tree (no injections) must audit to exit code 0
#      with zero findings.
set -eu

GO=${GO:-go}

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

$GO build -o "$dir/kerngen" ./cmd/kerngen
$GO build -o "$dir/jmake-lint" ./cmd/jmake-lint

"$dir/kerngen" -scale 0.12 -emit "$dir/tree" -inject-mismatches 10 \
    -inject-manifest "$dir/truth.json" -baseline-out "$dir/baseline.json" >/dev/null

status=0
"$dir/jmake-lint" -audit -root "$dir/tree" -baseline "$dir/baseline.json" \
    -audit-verify "$dir/truth.json" -json -workers 1 >"$dir/w1.json" || status=$?
if [ "$status" -ne 10 ]; then
    echo "audit-smoke: injected audit exit code $status, want 10" >&2
    exit 1
fi

status=0
"$dir/jmake-lint" -audit -root "$dir/tree" -baseline "$dir/baseline.json" \
    -audit-verify "$dir/truth.json" -json -workers 4 >"$dir/w4.json" || status=$?
if [ "$status" -ne 10 ]; then
    echo "audit-smoke: -workers 4 audit exit code $status, want 10" >&2
    exit 1
fi
cmp "$dir/w1.json" "$dir/w4.json"

"$dir/kerngen" -scale 0.12 -emit "$dir/clean" -baseline-out "$dir/clean-baseline.json" >/dev/null
"$dir/jmake-lint" -audit -root "$dir/clean" -baseline "$dir/clean-baseline.json" >"$dir/clean.txt"

echo "audit-smoke: 10/10 injected mismatches found with 0 extras; clean tree audits clean; JSON worker-invariant"
