#!/bin/sh
# daemon-smoke: end-to-end exercise of jmaked through its public surface.
#
#   1. Start jmaked on a tiny workspace and wait for readiness.
#   2. Replay 200 requests at concurrency 32 (jmake-load fails on any
#      false certification or dead daemon).
#   3. Byte-compare one daemon report against `jmake -commit ID -json`
#      for the same workspace flags — the service must change latency,
#      never bytes.
#   4. Replay 100 more requests with -chaos (deterministic fault
#      injection through the request options).
#   5. SIGTERM and require a clean drain.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:8437}
WS="-tree-scale 0.15 -commit-scale 0.008"

dir=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$dir"
}
trap cleanup EXIT

$GO build -o "$dir/jmaked" ./cmd/jmaked
$GO build -o "$dir/jmake-load" ./cmd/jmake-load
$GO build -o "$dir/jmake" ./cmd/jmake

# Small admission limits on purpose: at concurrency 32 the burst must be
# shed with 429s, not queued without bound.
"$dir/jmaked" -addr "$ADDR" $WS -max-inflight 2 -max-queue 4 \
    -cache-dir "$dir/cache" >"$dir/jmaked.log" 2>&1 &
pid=$!

i=0
until "$dir/jmake-load" -addr "$ADDR" -print-latest-commit >/dev/null 2>&1; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "daemon-smoke: jmaked died during startup" >&2
        cat "$dir/jmaked.log" >&2
        pid=""
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 120 ]; then
        echo "daemon-smoke: jmaked never became ready" >&2
        cat "$dir/jmaked.log" >&2
        exit 1
    fi
    sleep 0.5
done

"$dir/jmake-load" -addr "$ADDR" -n 200 -c 32

id=$("$dir/jmake-load" -addr "$ADDR" -print-latest-commit)
"$dir/jmake-load" -addr "$ADDR" -report-for "$id" >"$dir/daemon.json"
"$dir/jmake" $WS -commit "$id" -json >"$dir/cli.json" 2>/dev/null
cmp "$dir/daemon.json" "$dir/cli.json"
echo "daemon-smoke: daemon and CLI reports byte-identical for $id"

"$dir/jmake-load" -addr "$ADDR" -n 100 -c 32 -chaos

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "daemon-smoke: jmaked exited non-zero on SIGTERM" >&2
    cat "$dir/jmaked.log" >&2
    pid=""
    exit 1
fi
pid=""
grep -q "drained cleanly" "$dir/jmaked.log"
test -f "$dir/cache/jmake-ccache.json"
echo "daemon-smoke: clean drain, persistent cache tier flushed"
