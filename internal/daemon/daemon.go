// Package daemon is jmaked's service core: a long-lived check service
// that keeps a warm jmake.Session (arch index, Kconfig valuations, lexed
// tokens, the in-memory compile-result cache) resident across requests,
// so interactive clients pay generation and warm-up cost once instead of
// per invocation.
//
// The robustness surface is the point of the package, not an accessory:
//
//   - Bounded admission: at most MaxInFlight checks run concurrently and
//     at most MaxQueue more may wait; beyond that the server sheds load
//     with 429 and a Retry-After priced by the virtual-clock backoff
//     model, rather than queueing without bound until memory runs out.
//   - Deadlines: every request carries a deadline (default, capped),
//     propagated as a context and polled by the checker at stage
//     boundaries (core.Options.Interrupt). A deadline expiry yields 504
//     with an honestly-labeled partial report — never a wedged worker.
//   - Panic isolation: a panicking check answers 500 and the worker
//     survives. Because a panic mid-check could corrupt the shared warm
//     state, a tripwire then re-runs a canary commit and byte-compares
//     its report against the one recorded at startup; any difference
//     discards the session and rebuilds it from scratch.
//   - Graceful drain: Shutdown stops admitting, lets in-flight requests
//     finish (or hit their deadlines), and flushes the persistent cache
//     tier exactly once.
//
// Besides one-shot /check and /batch, the server follows commit streams
// incrementally: POST /follow holds one admission slot for a whole
// ordered commit list, drives it through a resident incr.Follower (its
// own warm session, separate from the one-shot session), and streams
// one NDJSON entry per commit as each check finishes. Re-posting a
// stream that picks up where the last one stopped continues warm, so
// per-commit cost is proportional to the diff.
//
// Reports served on the happy path are byte-identical to `jmake -commit
// <id> -json` over the same workspace flags: both paths call
// jmake.CheckCommitWith with the same deterministic virtual-clock model,
// and the caches only change compute, never verdicts.
package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jmake"
	"jmake/internal/audit"
	"jmake/internal/cliopts"
	"jmake/internal/metrics"
	"jmake/internal/obs"
	"jmake/internal/trace"
	"jmake/internal/vclock"
)

// Config tunes one Server.
type Config struct {
	// Addr is the listen address (cmd/jmaked only; tests use Handler).
	Addr string
	// MaxInFlight bounds concurrently running checks; <1 means 2.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it
	// the server sheds with 429. <0 means 0 (shed immediately when all
	// slots are busy); 0 means the default 8.
	MaxQueue int
	// DefaultDeadline applies when a request does not set deadline_ms;
	// 0 means 60s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines; 0 means 5m.
	MaxDeadline time.Duration
	// Workspace selects the generated tree and history to serve.
	Workspace cliopts.Workspace
	// Cache configures the session's compile-result cache, including the
	// persistent tier flushed on drain.
	Cache cliopts.Cache
	// Debug enables the debug_panic / debug_hold_ms request fields used
	// by tests and load drills. Never enable in normal service.
	Debug bool
	// Logger receives the structured NDJSON event stream (one line per
	// request plus lifecycle events); nil means INFO to stderr.
	Logger *obs.Logger
	// FlightSize is the flight-recorder ring capacity; 0 selects
	// obs.DefaultFlightRecorderSize.
	FlightSize int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 2
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = obs.New(os.Stderr, obs.Info)
	}
	return c
}

// Server is the daemon state shared across requests.
type Server struct {
	cfg   Config
	built *cliopts.Built

	// mu guards session: readers (checks) share it, the tripwire swaps
	// it wholesale after a suspect panic.
	mu      sync.RWMutex
	session *jmake.Session

	// reg owns the daemon-side request metrics. The session keeps its own
	// registry (cache counters live there and die with a rebuilt session);
	// /metricsz snapshots both.
	reg       *metrics.Registry
	latency   *metrics.Histogram
	queueWait *metrics.Histogram
	inflight  *metrics.Gauge
	queued    *metrics.Gauge

	// flight is the ring of recent request records served at
	// /debugz/requests; each record keeps its stamped trace until
	// evicted, which is what /tracez/<request-id> serves.
	flight *obs.FlightRecorder
	// reqSeq numbers requests deterministically: the ID depends only on
	// arrival order and the commit, never on the clock.
	reqSeq atomic.Uint64

	// model prices Retry-After on shed responses with the same capped
	// exponential backoff the checker charges for its own retries.
	model      *vclock.Model
	shedStreak atomic.Int64

	sem   chan struct{}
	queue chan struct{}

	draining  atomic.Bool
	flushOnce sync.Once

	// followMu serializes /follow streams over the resident follower,
	// which is single-goroutine by contract. The follower carries its own
	// warm session, separate from the one-shot session above; it is
	// created lazily on the first stream, continued warm when the next
	// stream picks up where the last one stopped, and discarded after a
	// panic or stream error.
	followMu     sync.Mutex
	follower     *jmake.Follower
	followerOpts string
	// followCtx is the deadline context of the stream currently driving
	// the follower; the follower's Interrupt hook reads it.
	followCtx atomic.Pointer[context.Context]

	// auditOnce computes the whole-tree audit report lazily on the first
	// /audit request; the workspace tree is immutable for the daemon's
	// lifetime, so the serialized report is cached forever after.
	auditOnce sync.Once
	auditJSON []byte
	auditErr  error

	canaryID   string
	canaryJSON []byte
}

// latencyBuckets are request-latency histogram bounds in seconds.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// New generates the workspace, warms the session, records the canary
// report, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	built, err := cfg.Workspace.Build()
	if err != nil {
		return nil, fmt.Errorf("daemon: building workspace: %w", err)
	}
	if len(built.WindowIDs) == 0 {
		return nil, fmt.Errorf("daemon: empty patch window")
	}
	s := &Server{
		cfg:   cfg,
		built: built,
		reg:   metrics.NewRegistry(),
		model: vclock.DefaultModel(uint64(len(built.WindowIDs))),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		queue: make(chan struct{}, cfg.MaxQueue),
	}
	s.latency = s.reg.Histogram("request_latency_seconds", latencyBuckets)
	s.queueWait = s.reg.Histogram("queue_wait_seconds", latencyBuckets)
	s.inflight = s.reg.Gauge("requests_inflight")
	s.queued = s.reg.Gauge("requests_queued")
	s.flight = obs.NewFlightRecorder(cfg.FlightSize)
	if err := s.rebuildSession(); err != nil {
		return nil, err
	}
	// The canary is the window's tip commit: checked once at startup, its
	// report is the invariant the panic tripwire re-verifies before the
	// warm session is trusted again.
	s.canaryID = built.WindowIDs[len(built.WindowIDs)-1]
	canary, err := s.checkOne(context.Background(), s.canaryID, cliopts.Check{})
	if err != nil {
		return nil, fmt.Errorf("daemon: canary check: %w", err)
	}
	s.canaryJSON = marshalReport(canary)
	return s, nil
}

// rebuildSession replaces the warm session with a fresh one over the
// window base, re-wiring the cache flags (a -cache-dir warm start makes
// the rebuild cheap again).
func (s *Server) rebuildSession() error {
	session, err := s.built.SessionAt(s.built.WindowIDs[0])
	if err != nil {
		return fmt.Errorf("daemon: session: %w", err)
	}
	s.cfg.Cache.Apply(session)
	s.mu.Lock()
	s.session = session
	s.mu.Unlock()
	return nil
}

// marshalReport is THE report serialization: the same bytes `jmake
// -commit <id> -json` prints, so a daemon answer can be diffed against
// the batch CLI directly.
func marshalReport(r *jmake.Report) []byte {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// PatchReport contains only marshalable fields; reaching this is a
		// programming error worth crashing the request, not the daemon.
		panic(fmt.Sprintf("daemon: marshaling report: %v", err))
	}
	return append(data, '\n')
}

// checkOne runs one commit check against the warm session, honoring ctx
// at the checker's stage boundaries.
func (s *Server) checkOne(ctx context.Context, id string, chk cliopts.Check) (*jmake.Report, error) {
	opts := chk.Options()
	if opts.Interrupt == nil {
		opts.Interrupt = func() bool { return ctx.Err() != nil }
	}
	s.mu.RLock()
	session := s.session
	s.mu.RUnlock()
	return jmake.CheckCommitWith(session, s.built.Hist.Repo, id, opts)
}

// checkOneTraced is checkOne with span recording: the service path always
// traces, so every flight record carries the span tree and /tracez can
// answer for any recent request. Tracing never changes report bytes
// (PR 5's invariant, re-proven by the daemon byte-identity tests).
func (s *Server) checkOneTraced(ctx context.Context, id string, chk cliopts.Check) (*jmake.Report, *jmake.TraceSpan, error) {
	opts := chk.Options()
	if opts.Interrupt == nil {
		opts.Interrupt = func() bool { return ctx.Err() != nil }
	}
	s.mu.RLock()
	session := s.session
	s.mu.RUnlock()
	return jmake.CheckCommitTraced(session, s.built.Hist.Repo, id, opts)
}

// nextRequestID mints the deterministic per-request ID: an arrival-order
// sequence number plus a commit prefix, so operators can correlate a log
// line, a flight record, and a /tracez lookup without any clock or
// randomness in the identity.
func (s *Server) nextRequestID(commit string) string {
	tag := commit
	if len(tag) > 8 {
		tag = tag[:8]
	}
	if tag == "" {
		tag = "batch"
	}
	return fmt.Sprintf("r%06d-%s", s.reqSeq.Add(1), tag)
}

// traceFormatFor resolves the requested sidecar format from the ?trace=
// query parameter or the X-JMake-Trace header ("" means no sidecar).
func traceFormatFor(r *http.Request) (string, error) {
	f := r.URL.Query().Get("trace")
	if f == "" {
		f = r.Header.Get("X-JMake-Trace")
	}
	switch f {
	case "", "tree", "chrome", "summary":
		return f, nil
	}
	return "", fmt.Errorf("unknown trace format %q (want tree|chrome|summary)", f)
}

// renderTraceArtifact renders the stamped trace in one of the three CLI
// formats, byte-identical to what `jmake -commit ID -trace-out/-trace-tree`
// writes (chrome uses the CLI's 4 lanes) or jmake-eval's summary table.
func renderTraceArtifact(tr *jmake.SessionTrace, format string) []byte {
	switch format {
	case "chrome":
		return tr.Chrome(4)
	case "summary":
		return []byte(tr.RenderSummary())
	default: // "tree"
		return []byte(tr.Tree())
	}
}

// sidecarEnvelope assembles the traced /check response by hand: the
// report bytes are embedded verbatim (running them back through
// encoding/json would re-indent them and break the byte-identity
// guarantee), and the trace artifact rides as a JSON string beside them.
func sidecarEnvelope(requestID, format string, artifact, report []byte) []byte {
	var b bytes.Buffer
	b.WriteString("{\n  \"request_id\": ")
	b.Write(mustJSON(requestID))
	b.WriteString(",\n  \"trace_format\": ")
	b.Write(mustJSON(format))
	b.WriteString(",\n  \"trace\": ")
	b.Write(mustJSON(string(artifact)))
	b.WriteString(",\n  \"report\": ")
	b.Write(bytes.TrimSuffix(report, []byte("\n")))
	b.WriteString("\n}\n")
	return b.Bytes()
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("daemon: marshaling sidecar field: %v", err))
	}
	return data
}

// traceStats derives the deterministic per-request numbers a flight
// record carries from the stamped trace: cache compute/reuse counts over
// keyed spans and a compact per-stage summary line.
func traceStats(tr *jmake.SessionTrace) (compute, reuse int, summary string) {
	var walk func(sp *trace.Span)
	walk = func(sp *trace.Span) {
		if sp.Key != 0 {
			switch v, _ := sp.Attr("cache"); v {
			case "compute":
				compute++
			case "reuse":
				reuse++
			}
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range tr.Spans {
		walk(sp)
	}
	var parts []string
	for _, l := range tr.Summarize() {
		parts = append(parts, fmt.Sprintf("%s/%s=%d:%.1fs", l.Stage, l.Arch, l.Count, l.Virtual.Seconds()))
	}
	return compute, reuse, strings.Join(parts, " ")
}

// admit implements bounded admission. It returns a release func on
// success; otherwise shed=true with the advised retry delay, or
// shed=false when ctx expired while queued.
func (s *Server) admit(ctx context.Context) (release func(), retryAfter time.Duration, shed, ok bool) {
	release = func() {
		<-s.sem
		s.inflight.Add(-1)
	}
	select {
	case s.sem <- struct{}{}:
		s.shedStreak.Store(0)
		s.inflight.Add(1)
		return release, 0, false, true
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		// Queue full: shed now. The advised wait grows with the shed
		// streak on the checker's own capped backoff curve, so a thundering
		// herd is told to spread out further the longer the overload lasts.
		streak := int(s.shedStreak.Add(1))
		if streak > 8 {
			streak = 8
		}
		s.reg.Counter("requests_shed").Inc()
		return nil, s.model.Backoff(streak, "admission"), true, false
	}
	s.queued.Add(1)
	defer func() {
		<-s.queue
		s.queued.Add(-1)
	}()
	select {
	case s.sem <- struct{}{}:
		s.shedStreak.Store(0)
		s.inflight.Add(1)
		return release, 0, false, true
	case <-ctx.Done():
		s.reg.Counter("requests_expired_queued").Inc()
		return nil, 0, false, false
	}
}

// deadlineFor resolves a request's deadline from deadline_ms, bounded by
// the configured cap.
func (s *Server) deadlineFor(ms int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	mux.HandleFunc("/commits", s.handleCommits)
	mux.HandleFunc("/check", s.handleCheck)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/follow", s.handleFollow)
	mux.HandleFunc("/audit", s.handleAudit)
	mux.HandleFunc("/tracez/", s.handleTracez)
	mux.HandleFunc("/debugz/requests", s.handleDebugzRequests)
	return mux
}

// handleTracez serves the span tree of a recent request by ID, in any of
// the CLI trace formats (?format=tree|chrome|summary, default tree). The
// body is the raw artifact — byte-identical to the file the one-shot CLI
// would write for the same commit. Records evicted from the flight
// recorder answer 404: the ring is the retention policy.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	rid := strings.TrimPrefix(r.URL.Path, "/tracez/")
	if rid == "" || strings.Contains(rid, "/") {
		http.Error(w, "want /tracez/<request-id>", http.StatusBadRequest)
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "":
		format = "tree"
	case "tree", "chrome", "summary":
	default:
		http.Error(w, fmt.Sprintf("unknown trace format %q (want tree|chrome|summary)", format), http.StatusBadRequest)
		return
	}
	rec, ok := s.flight.Find(rid)
	if !ok || rec.Trace == nil {
		http.Error(w, "no trace for request "+rid+" (unknown, evicted, or never ran a check)", http.StatusNotFound)
		return
	}
	if format == "chrome" {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(renderTraceArtifact(rec.Trace, format))
}

// handleDebugzRequests dumps the flight recorder, oldest first: the
// post-mortem surface for "what were the last N requests and how did
// they die". Field order within each record is fixed by obs.Record.
func (s *Server) handleDebugzRequests(w http.ResponseWriter, r *http.Request) {
	recs := s.flight.Records()
	writeJSON(w, http.StatusOK, struct {
		Capacity int          `json:"capacity"`
		Count    int          `json:"count"`
		Records  []obs.Record `json:"records"`
	}{s.flight.Cap(), len(recs), recs})
}

// handleAudit serves the whole-tree configuration-mismatch report over the
// workspace's generated tree, with the manifest's intentional escape-class
// symbols suppressed so a clean workspace audits to zero findings. The
// Kconfig parses come from the warm session's shared per-arch cache, and
// the serialized bytes are audit.Report.JSON — identical to `jmake-lint
// -audit -json -baseline <manifest baseline>` over the emitted tree.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	s.auditOnce.Do(func() {
		ignore := make(map[string]bool, len(s.built.Manifest.AuditBaseline))
		for _, sym := range s.built.Manifest.AuditBaseline {
			ignore[sym] = true
		}
		s.mu.RLock()
		session := s.session
		s.mu.RUnlock()
		rep, err := audit.Run(audit.Params{
			Tree:    s.built.Tree,
			Ignore:  ignore,
			Workers: s.cfg.MaxInFlight,
			Kconfig: session.KconfigProvider(s.built.Tree),
		})
		if err != nil {
			s.auditErr = err
			return
		}
		s.auditJSON, s.auditErr = rep.JSON()
		s.reg.Counter("daemon_audit_runs").Inc()
	})
	if s.auditErr != nil {
		http.Error(w, "audit: "+s.auditErr.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.auditJSON)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and the warm session is present. Health
	// stays true while draining — the process is healthy, just not ready.
	s.mu.RLock()
	alive := s.session != nil
	s.mu.RUnlock()
	if !alive {
		http.Error(w, "no session", http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// metricszPayload is the /metricsz response shape.
type metricszPayload struct {
	Daemon  []metrics.Sample `json:"daemon"`
	Session []metrics.Sample `json:"session"`
	Latency struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50"`
		P95   float64 `json:"p95"`
		P99   float64 `json:"p99"`
	} `json:"latency"`
	InFlight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
}

// wantsPrometheus decides /metricsz content negotiation: explicit
// ?format=prometheus|json wins, else an Accept header asking for
// text/plain (what a Prometheus scraper sends) selects the exposition
// format; the JSON snapshot stays the default for bare curls.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		s.mu.RLock()
		session := s.session
		s.mu.RUnlock()
		w.Header().Set("Content-Type", metrics.TextContentType)
		metrics.WriteText(w, s.reg, session.Metrics())
		return
	}
	var p metricszPayload
	p.Daemon = s.reg.Snapshot()
	s.mu.RLock()
	p.Session = s.session.Metrics().Snapshot()
	s.mu.RUnlock()
	p.Latency.Count = s.latency.Count()
	p.Latency.P50 = s.latency.Quantile(0.50)
	p.Latency.P95 = s.latency.Quantile(0.95)
	p.Latency.P99 = s.latency.Quantile(0.99)
	p.InFlight = s.inflight.Value()
	p.Queued = s.queued.Value()
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleCommits(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Commits []string `json:"commits"`
	}{s.built.WindowIDs})
}

// checkRequest is the /check request body. Options uses the same JSON
// schema as the CLI flag struct (cliopts.Check).
type checkRequest struct {
	Commit     string        `json:"commit"`
	Options    cliopts.Check `json:"options"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
	// Debug-only fault hooks (Config.Debug): panic mid-check, or hold the
	// check open to make admission and deadline tests deterministic.
	DebugPanic  bool  `json:"debug_panic,omitempty"`
	DebugHoldMS int64 `json:"debug_hold_ms,omitempty"`
}

// errorResponse is the JSON error envelope for non-200 answers. Report
// carries the partial result on 504 — clearly labeled, never a
// certification the checker did not earn. RequestID lets the client pull
// the flight record and trace for the failed request.
type errorResponse struct {
	Error     string          `json:"error"`
	RequestID string          `json:"request_id,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req checkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if req.Commit == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing commit"})
		return
	}
	s.serveCheck(w, r, req)
}

// finishRequest is the single exit point for request accounting: the
// outcome counter, the flight record, and the structured log line all
// derive from one Record, so the three surfaces can never disagree.
func (s *Server) finishRequest(rec obs.Record) {
	s.reg.Counter("requests_outcome_total",
		metrics.L("endpoint", rec.Endpoint), metrics.L("outcome", rec.Outcome)).Inc()
	s.flight.Add(rec)
	fields := []obs.Field{
		obs.F("request_id", rec.RequestID),
		obs.F("endpoint", rec.Endpoint),
		obs.F("commit", rec.Commit),
		obs.F("outcome", rec.Outcome),
		obs.F("status", rec.Status),
	}
	if rec.Cause != "" {
		fields = append(fields, obs.F("cause", rec.Cause))
	}
	fields = append(fields,
		obs.F("wall_ms", rec.WallMillis),
		obs.F("virtual_seconds", rec.VirtualSeconds),
		obs.F("cache_hit_ratio", rec.CacheHitRatio))
	log := s.cfg.Logger
	switch rec.Outcome {
	case obs.OutcomeOK:
		log.Info("request", fields...)
	case obs.OutcomePanic, obs.OutcomeError:
		log.Error("request", fields...)
	default:
		log.Warn("request", fields...)
	}
	if rec.Spans != "" && log.Enabled(obs.Debug) {
		log.Debug("request spans", obs.F("request_id", rec.RequestID), obs.F("spans", rec.Spans))
	}
}

// fillTraceFields derives the record's deterministic fields from the
// request's stamped trace and report.
func fillTraceFields(rec *obs.Record, tr *jmake.SessionTrace, report *jmake.Report) {
	if report != nil {
		rec.VirtualSeconds = report.Total.Seconds()
	}
	if tr == nil {
		return
	}
	rec.Trace = tr
	compute, reuse, spans := traceStats(tr)
	rec.CacheCompute, rec.CacheReuse, rec.Spans = compute, reuse, spans
	if compute+reuse > 0 {
		rec.CacheHitRatio = float64(reuse) / float64(compute+reuse)
	}
}

func (s *Server) serveCheck(w http.ResponseWriter, r *http.Request, req checkRequest) {
	rid := s.nextRequestID(req.Commit)
	w.Header().Set("X-JMake-Request-Id", rid)
	rec := obs.Record{RequestID: rid, Endpoint: "check", Commit: req.Commit}
	traceFormat, ferr := traceFormatFor(r)
	if ferr != nil {
		rec.Outcome, rec.Status, rec.Cause = obs.OutcomeError, http.StatusBadRequest, ferr.Error()
		s.finishRequest(rec)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: ferr.Error(), RequestID: rid})
		return
	}
	if s.draining.Load() {
		rec.Outcome, rec.Status = obs.OutcomeDraining, http.StatusServiceUnavailable
		s.finishRequest(rec)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining", RequestID: rid})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()

	arrived := time.Now()
	release, retryAfter, shed, ok := s.admit(ctx)
	s.queueWait.Observe(time.Since(arrived).Seconds())
	if shed {
		rec.Outcome, rec.Status = obs.OutcomeShed, http.StatusTooManyRequests
		rec.Cause = fmt.Sprintf("admission queue full; advised retry in %v", retryAfter)
		rec.WallMillis = wallMillis(arrived)
		s.finishRequest(rec)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "overloaded, retry later", RequestID: rid})
		return
	}
	if !ok {
		rec.Outcome, rec.Status = obs.OutcomeTimeout, http.StatusGatewayTimeout
		rec.Cause = "deadline expired while queued"
		rec.WallMillis = wallMillis(arrived)
		s.finishRequest(rec)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline expired while queued", RequestID: rid})
		return
	}
	defer release()

	start := time.Now()
	s.reg.Counter("requests_total").Inc()
	report, span, err := s.guardedCheck(ctx, req)
	s.latency.Observe(time.Since(start).Seconds())
	s.reg.Histogram("request_wall_seconds", latencyBuckets, metrics.L("endpoint", "check")).
		Observe(time.Since(start).Seconds())
	rec.WallMillis = wallMillis(arrived)
	tr := jmake.MergeTraces(span)
	if span == nil {
		tr = nil
	}
	fillTraceFields(&rec, tr, report)

	var pe *panicError
	switch {
	case errors.As(err, &pe):
		rec.Outcome, rec.Status, rec.Cause = obs.OutcomePanic, http.StatusInternalServerError, pe.cause
		s.finishRequest(rec)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal error (check panicked; state verified)", RequestID: rid})
	case err != nil:
		rec.Outcome, rec.Status, rec.Cause = obs.OutcomeError, http.StatusNotFound, err.Error()
		s.finishRequest(rec)
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error(), RequestID: rid})
	case report.Interrupted:
		s.reg.Counter("requests_timed_out").Inc()
		rec.Outcome, rec.Status, rec.Cause = obs.OutcomeTimeout, http.StatusGatewayTimeout, "deadline exceeded mid-check"
		s.finishRequest(rec)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{
			Error:     "deadline exceeded; partial report attached",
			RequestID: rid,
			Report:    marshalReport(report),
		})
	default:
		rec.Outcome, rec.Status = obs.OutcomeOK, http.StatusOK
		s.finishRequest(rec)
		body := marshalReport(report)
		if traceFormat != "" && tr != nil {
			// Sidecar: the trace artifact rides beside the report as a JSON
			// string; the report bytes inside the envelope are the exact
			// marshalReport bytes, embedded without re-encoding.
			body = sidecarEnvelope(rid, traceFormat, renderTraceArtifact(tr, traceFormat), body)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}
}

func wallMillis(since time.Time) float64 {
	return float64(time.Since(since)) / float64(time.Millisecond)
}

// panicError marks a check that died by panic (already recovered),
// carrying the recovered cause for the flight record and log line.
type panicError struct{ cause string }

func (e *panicError) Error() string { return "daemon: check panicked: " + e.cause }

// guardedCheck is checkOneTraced wrapped in panic isolation: a panic is
// recovered, counted, and followed by the canary tripwire before the
// warm session may serve again.
func (s *Server) guardedCheck(ctx context.Context, req checkRequest) (report *jmake.Report, span *jmake.TraceSpan, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.reg.Counter("daemon_panics").Inc()
			s.cfg.Logger.Error("recovered check panic",
				obs.F("commit", req.Commit), obs.F("panic", fmt.Sprint(rec)))
			s.verifySession()
			report, span, err = nil, nil, &panicError{cause: fmt.Sprint(rec)}
		}
	}()
	if s.cfg.Debug && req.DebugHoldMS > 0 {
		holdUntil(ctx, time.Duration(req.DebugHoldMS)*time.Millisecond)
	}
	if s.cfg.Debug && req.DebugPanic {
		panic("debug_panic requested")
	}
	return s.checkOneTraced(ctx, req.Commit, req.Options)
}

// holdUntil sleeps for d or until ctx is done, in small slices so tests
// with short deadlines are prompt.
func holdUntil(ctx context.Context, d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// verifySession is the poisoned-session tripwire: after a panic, re-run
// the canary commit and byte-compare its report with the startup record.
// Any difference — including a second panic — discards the warm session
// and rebuilds it.
func (s *Server) verifySession() {
	ok := func() (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		report, err := s.checkOne(context.Background(), s.canaryID, cliopts.Check{})
		if err != nil {
			return false
		}
		return string(marshalReport(report)) == string(s.canaryJSON)
	}()
	if ok {
		s.reg.Counter("daemon_tripwire_ok").Inc()
		return
	}
	s.reg.Counter("daemon_session_rebuilds").Inc()
	s.cfg.Logger.Warn("canary mismatch after panic; rebuilding session")
	if err := s.rebuildSession(); err != nil {
		// Keep serving on the suspect session rather than dying; /healthz
		// stays true, but the rebuild failure is counted and logged.
		s.reg.Counter("daemon_session_rebuild_failures").Inc()
		s.cfg.Logger.Error("session rebuild failed", obs.F("error", err.Error()))
	}
}

// batchRequest checks several commits under one admission slot and one
// deadline, answering an array in request order.
type batchRequest struct {
	Commits    []string      `json:"commits"`
	Options    cliopts.Check `json:"options"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
}

type batchEntry struct {
	Commit    string          `json:"commit"`
	RequestID string          `json:"request_id"`
	Report    json.RawMessage `json:"report,omitempty"`
	// Trace carries the per-commit sidecar artifact as a JSON string when
	// the batch asked for one (?trace= / X-JMake-Trace), byte-identical
	// to the one-shot CLI artifact for the same commit.
	Trace string `json:"trace,omitempty"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	traceFormat, ferr := traceFormatFor(r)
	if ferr != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: ferr.Error()})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Commits) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: need commits"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()
	arrived := time.Now()
	release, retryAfter, shed, ok := s.admit(ctx)
	s.queueWait.Observe(time.Since(arrived).Seconds())
	if shed {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "overloaded, retry later"})
		return
	}
	if !ok {
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline expired while queued"})
		return
	}
	defer release()

	out := make([]batchEntry, 0, len(req.Commits))
	for _, id := range req.Commits {
		rid := s.nextRequestID(id)
		rec := obs.Record{RequestID: rid, Endpoint: "batch", Commit: id}
		if ctx.Err() != nil {
			// Deadline mid-batch: remaining commits are reported as canceled,
			// never silently dropped.
			rec.Outcome, rec.Status = obs.OutcomeCanceled, http.StatusGatewayTimeout
			rec.Cause = "deadline exceeded before this commit was checked"
			s.finishRequest(rec)
			out = append(out, batchEntry{Commit: id, RequestID: rid, Error: rec.Cause})
			continue
		}
		s.reg.Counter("requests_total").Inc()
		start := time.Now()
		report, span, err := s.guardedCheck(ctx, checkRequest{Commit: id, Options: req.Options})
		s.latency.Observe(time.Since(start).Seconds())
		s.reg.Histogram("request_wall_seconds", latencyBuckets, metrics.L("endpoint", "batch")).
			Observe(time.Since(start).Seconds())
		rec.WallMillis = wallMillis(start)
		var tr *jmake.SessionTrace
		if span != nil {
			tr = jmake.MergeTraces(span)
		}
		fillTraceFields(&rec, tr, report)
		var pe *panicError
		switch {
		case errors.As(err, &pe):
			rec.Outcome, rec.Status, rec.Cause = obs.OutcomePanic, http.StatusInternalServerError, pe.cause
			out = append(out, batchEntry{Commit: id, RequestID: rid, Error: "internal error (check panicked; state verified)"})
		case err != nil:
			rec.Outcome, rec.Status, rec.Cause = obs.OutcomeError, http.StatusNotFound, err.Error()
			out = append(out, batchEntry{Commit: id, RequestID: rid, Error: err.Error()})
		case report.Interrupted:
			s.reg.Counter("requests_timed_out").Inc()
			rec.Outcome, rec.Status, rec.Cause = obs.OutcomeTimeout, http.StatusGatewayTimeout, "deadline exceeded mid-check"
			out = append(out, batchEntry{Commit: id, RequestID: rid, Error: "deadline exceeded; partial report attached", Report: marshalReport(report)})
		default:
			rec.Outcome, rec.Status = obs.OutcomeOK, http.StatusOK
			e := batchEntry{Commit: id, RequestID: rid, Report: marshalReport(report)}
			if traceFormat != "" && tr != nil {
				e.Trace = string(renderTraceArtifact(tr, traceFormat))
			}
			out = append(out, e)
		}
		s.finishRequest(rec)
	}
	writeJSON(w, http.StatusOK, out)
}

// followRequest streams incremental checks of an ordered commit list.
// The server keeps one resident follower: when the requested stream
// continues past the previous stream's cursor (same options), the warm
// session is reused and per-commit cost is proportional to the diff;
// otherwise the follower reseeds at the first commit's parent.
type followRequest struct {
	Commits    []string      `json:"commits"`
	Options    cliopts.Check `json:"options"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
	// Reseed forces a fresh follower even when the resident one could
	// continue warm.
	Reseed bool `json:"reseed,omitempty"`
}

// followEntry is one line of the /follow response: compact JSON, one
// entry per commit, flushed as produced. Report carries the same bytes
// as /check for the same commit (modulo the entry's compact rendering).
type followEntry struct {
	Commit            string          `json:"commit"`
	Files             int             `json:"files"`
	Touched           int             `json:"touched"`
	Structural        bool            `json:"structural,omitempty"`
	InvalidatedTUs    int             `json:"invalidated_tus"`
	VirtualSeconds    float64         `json:"virtual_seconds"`
	EffectiveSeconds  float64         `json:"effective_seconds"`
	EffectiveMeasured bool            `json:"effective_measured,omitempty"`
	Report            json.RawMessage `json:"report,omitempty"`
	Error             string          `json:"error,omitempty"`
}

// handleFollow streams a commit sequence through the resident follower
// under one admission slot and one deadline, writing one followEntry
// line per commit as each check completes (http.Flusher per line). A
// deadline expiry yields honestly-labeled partial entries for whatever
// was in flight, never a silent truncation; a panic discards the
// follower so the next stream reseeds from scratch.
func (s *Server) handleFollow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	var req followRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Commits) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: need commits"})
		return
	}
	rid := s.nextRequestID(req.Commits[0])
	w.Header().Set("X-JMake-Request-Id", rid)
	rec := obs.Record{RequestID: rid, Endpoint: "follow",
		Commit: fmt.Sprintf("%s..%s (%d commits)", req.Commits[0], req.Commits[len(req.Commits)-1], len(req.Commits))}
	arrived := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()
	release, retryAfter, shed, ok := s.admit(ctx)
	s.queueWait.Observe(time.Since(arrived).Seconds())
	if shed {
		rec.Outcome, rec.Status = obs.OutcomeShed, http.StatusTooManyRequests
		rec.Cause = fmt.Sprintf("admission queue full; advised retry in %v", retryAfter)
		rec.WallMillis = wallMillis(arrived)
		s.finishRequest(rec)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "overloaded, retry later", RequestID: rid})
		return
	}
	if !ok {
		rec.Outcome, rec.Status, rec.Cause = obs.OutcomeTimeout, http.StatusGatewayTimeout, "deadline expired while queued"
		rec.WallMillis = wallMillis(arrived)
		s.finishRequest(rec)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline expired while queued", RequestID: rid})
		return
	}
	defer release()

	s.followMu.Lock()
	defer s.followMu.Unlock()

	f, err := s.followerFor(req)
	if err != nil {
		rec.Outcome, rec.Status, rec.Cause = obs.OutcomeError, http.StatusNotFound, err.Error()
		rec.WallMillis = wallMillis(arrived)
		s.finishRequest(rec)
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error(), RequestID: rid})
		return
	}
	s.followCtx.Store(&ctx)
	defer s.followCtx.Store(nil)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitted := 0
	writeEntry := func(e followEntry) {
		enc.Encode(e)
		if flusher != nil {
			flusher.Flush()
		}
		emitted++
	}

	runErr := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				s.reg.Counter("daemon_panics").Inc()
				s.cfg.Logger.Error("recovered follow panic", obs.F("panic", fmt.Sprint(rec)))
				err = &panicError{cause: fmt.Sprint(rec)}
			}
		}()
		return f.Run(req.Commits, func(st jmake.FollowStep) bool {
			s.reg.Counter("requests_total").Inc()
			writeEntry(s.followEntryFor(st))
			return true
		})
	}()
	rec.WallMillis = wallMillis(arrived)
	if runErr != nil {
		// The follower's tree or session may be mid-sequence; discard it so
		// the next stream reseeds rather than continuing from suspect state.
		s.follower = nil
		s.reg.Counter("daemon_follower_discards").Inc()
		msg := "follow stream aborted: " + runErr.Error()
		for _, id := range req.Commits[min(emitted, len(req.Commits)):] {
			writeEntry(followEntry{Commit: id, Error: msg})
		}
		var pe *panicError
		if errors.As(runErr, &pe) {
			rec.Outcome, rec.Cause = obs.OutcomePanic, pe.cause
		} else {
			rec.Outcome, rec.Cause = obs.OutcomeError, runErr.Error()
		}
		rec.Status = http.StatusOK // stream already committed 200; the abort is in-band
	} else {
		rec.Outcome, rec.Status = obs.OutcomeOK, http.StatusOK
	}
	s.reg.Histogram("request_wall_seconds", latencyBuckets, metrics.L("endpoint", "follow")).
		Observe(time.Since(arrived).Seconds())
	s.finishRequest(rec)
}

// followerFor returns the resident follower when it can serve the
// request warm (every requested commit after its cursor, same checker
// options), otherwise reseeds one at the first commit's parent.
// Caller holds followMu.
func (s *Server) followerFor(req followRequest) (*jmake.Follower, error) {
	optsKey, err := json.Marshal(req.Options)
	if err != nil {
		return nil, err
	}
	if s.follower != nil && !req.Reseed && s.followerOpts == string(optsKey) &&
		s.followerServes(req.Commits) {
		s.reg.Counter("daemon_follow_continues").Inc()
		return s.follower, nil
	}
	base, err := s.built.Hist.Repo.Parent(req.Commits[0])
	if err != nil {
		return nil, err
	}
	if base == "" {
		return nil, fmt.Errorf("commit %s has no parent to seed a follower from", req.Commits[0])
	}
	opts := req.Options.Options()
	if opts.Interrupt == nil {
		opts.Interrupt = func() bool {
			if p := s.followCtx.Load(); p != nil && *p != nil {
				return (*p).Err() != nil
			}
			return false
		}
	}
	f, err := jmake.NewFollower(s.built.Hist.Repo, base, jmake.FollowOptions{Checker: opts})
	if err != nil {
		return nil, err
	}
	s.follower, s.followerOpts = f, string(optsKey)
	s.reg.Counter("daemon_follow_seeds").Inc()
	return f, nil
}

// followerServes reports whether every requested commit lies after the
// resident follower's cursor, i.e. the stream can continue warm.
func (s *Server) followerServes(ids []string) bool {
	seq, err := s.built.Hist.Repo.Since(s.follower.Cursor())
	if err != nil {
		return false
	}
	in := make(map[string]bool, len(seq))
	for _, id := range seq {
		in[id] = true
	}
	for _, id := range ids {
		if !in[id] {
			return false
		}
	}
	return true
}

// followEntryFor renders one follower step as a stream entry.
func (s *Server) followEntryFor(st jmake.FollowStep) followEntry {
	e := followEntry{
		Commit:            st.Commit,
		Files:             st.Files,
		Touched:           st.Touched,
		Structural:        st.Structural,
		InvalidatedTUs:    st.InvalidatedTUs,
		VirtualSeconds:    st.VirtualSeconds,
		EffectiveSeconds:  st.EffectiveSeconds,
		EffectiveMeasured: st.EffectiveMeasured,
	}
	switch {
	case st.Err != nil:
		e.Error = st.Err.Error()
	case st.Report.Interrupted:
		s.reg.Counter("requests_timed_out").Inc()
		e.Error = "deadline exceeded; partial report attached"
		e.Report = marshalReport(st.Report)
	default:
		e.Report = marshalReport(st.Report)
	}
	return e
}

// Shutdown drains the server: no new checks are admitted, the HTTP
// server (if any) stops accepting, and once in-flight work has finished
// (or ctx expires) the persistent cache tier is flushed exactly once.
// Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context, srv *http.Server) error {
	s.draining.Store(true)
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	} else {
		// No HTTP server to wait on (tests drive the handler directly):
		// wait for in-flight checks by filling every semaphore slot.
		err = s.waitIdle(ctx)
	}
	s.flushOnce.Do(func() {
		s.mu.RLock()
		session := s.session
		s.mu.RUnlock()
		if ferr := s.cfg.Cache.Flush(session); ferr != nil {
			s.cfg.Logger.Error("cache flush on drain failed", obs.F("error", ferr.Error()))
			s.reg.Counter("ccache_flush_failures").Inc()
		} else {
			s.reg.Counter("daemon_cache_flushes").Inc()
		}
	})
	return err
}

func (s *Server) waitIdle(ctx context.Context) error {
	for i := 0; i < cap(s.sem); i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for i := 0; i < cap(s.sem); i++ {
		<-s.sem
	}
	return nil
}

// Metrics exposes the daemon registry (tests).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Flight exposes the flight recorder (tests).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Commits exposes the window IDs (tests and cmd/jmaked logging).
func (s *Server) Commits() []string { return s.built.WindowIDs }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
