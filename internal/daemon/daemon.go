// Package daemon is jmaked's service core: a long-lived check service
// that keeps a warm jmake.Session (arch index, Kconfig valuations, lexed
// tokens, the in-memory compile-result cache) resident across requests,
// so interactive clients pay generation and warm-up cost once instead of
// per invocation.
//
// The robustness surface is the point of the package, not an accessory:
//
//   - Bounded admission: at most MaxInFlight checks run concurrently and
//     at most MaxQueue more may wait; beyond that the server sheds load
//     with 429 and a Retry-After priced by the virtual-clock backoff
//     model, rather than queueing without bound until memory runs out.
//   - Deadlines: every request carries a deadline (default, capped),
//     propagated as a context and polled by the checker at stage
//     boundaries (core.Options.Interrupt). A deadline expiry yields 504
//     with an honestly-labeled partial report — never a wedged worker.
//   - Panic isolation: a panicking check answers 500 and the worker
//     survives. Because a panic mid-check could corrupt the shared warm
//     state, a tripwire then re-runs a canary commit and byte-compares
//     its report against the one recorded at startup; any difference
//     discards the session and rebuilds it from scratch.
//   - Graceful drain: Shutdown stops admitting, lets in-flight requests
//     finish (or hit their deadlines), and flushes the persistent cache
//     tier exactly once.
//
// Besides one-shot /check and /batch, the server follows commit streams
// incrementally: POST /follow holds one admission slot for a whole
// ordered commit list, drives it through a resident incr.Follower (its
// own warm session, separate from the one-shot session), and streams
// one NDJSON entry per commit as each check finishes. Re-posting a
// stream that picks up where the last one stopped continues warm, so
// per-commit cost is proportional to the diff.
//
// Reports served on the happy path are byte-identical to `jmake -commit
// <id> -json` over the same workspace flags: both paths call
// jmake.CheckCommitWith with the same deterministic virtual-clock model,
// and the caches only change compute, never verdicts.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jmake"
	"jmake/internal/audit"
	"jmake/internal/cliopts"
	"jmake/internal/metrics"
	"jmake/internal/vclock"
)

// Config tunes one Server.
type Config struct {
	// Addr is the listen address (cmd/jmaked only; tests use Handler).
	Addr string
	// MaxInFlight bounds concurrently running checks; <1 means 2.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it
	// the server sheds with 429. <0 means 0 (shed immediately when all
	// slots are busy); 0 means the default 8.
	MaxQueue int
	// DefaultDeadline applies when a request does not set deadline_ms;
	// 0 means 60s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines; 0 means 5m.
	MaxDeadline time.Duration
	// Workspace selects the generated tree and history to serve.
	Workspace cliopts.Workspace
	// Cache configures the session's compile-result cache, including the
	// persistent tier flushed on drain.
	Cache cliopts.Cache
	// Debug enables the debug_panic / debug_hold_ms request fields used
	// by tests and load drills. Never enable in normal service.
	Debug bool
	// Log receives operational warnings; nil means the standard logger.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 2
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// Server is the daemon state shared across requests.
type Server struct {
	cfg   Config
	built *cliopts.Built

	// mu guards session: readers (checks) share it, the tripwire swaps
	// it wholesale after a suspect panic.
	mu      sync.RWMutex
	session *jmake.Session

	// reg owns the daemon-side request metrics. The session keeps its own
	// registry (cache counters live there and die with a rebuilt session);
	// /metricsz snapshots both.
	reg      *metrics.Registry
	latency  *metrics.Histogram
	inflight *metrics.Gauge
	queued   *metrics.Gauge

	// model prices Retry-After on shed responses with the same capped
	// exponential backoff the checker charges for its own retries.
	model      *vclock.Model
	shedStreak atomic.Int64

	sem   chan struct{}
	queue chan struct{}

	draining  atomic.Bool
	flushOnce sync.Once

	// followMu serializes /follow streams over the resident follower,
	// which is single-goroutine by contract. The follower carries its own
	// warm session, separate from the one-shot session above; it is
	// created lazily on the first stream, continued warm when the next
	// stream picks up where the last one stopped, and discarded after a
	// panic or stream error.
	followMu     sync.Mutex
	follower     *jmake.Follower
	followerOpts string
	// followCtx is the deadline context of the stream currently driving
	// the follower; the follower's Interrupt hook reads it.
	followCtx atomic.Pointer[context.Context]

	// auditOnce computes the whole-tree audit report lazily on the first
	// /audit request; the workspace tree is immutable for the daemon's
	// lifetime, so the serialized report is cached forever after.
	auditOnce sync.Once
	auditJSON []byte
	auditErr  error

	canaryID   string
	canaryJSON []byte
}

// latencyBuckets are request-latency histogram bounds in seconds.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// New generates the workspace, warms the session, records the canary
// report, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	built, err := cfg.Workspace.Build()
	if err != nil {
		return nil, fmt.Errorf("daemon: building workspace: %w", err)
	}
	if len(built.WindowIDs) == 0 {
		return nil, fmt.Errorf("daemon: empty patch window")
	}
	s := &Server{
		cfg:   cfg,
		built: built,
		reg:   metrics.NewRegistry(),
		model: vclock.DefaultModel(uint64(len(built.WindowIDs))),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		queue: make(chan struct{}, cfg.MaxQueue),
	}
	s.latency = s.reg.Histogram("request_latency_seconds", latencyBuckets)
	s.inflight = s.reg.Gauge("requests_inflight")
	s.queued = s.reg.Gauge("requests_queued")
	if err := s.rebuildSession(); err != nil {
		return nil, err
	}
	// The canary is the window's tip commit: checked once at startup, its
	// report is the invariant the panic tripwire re-verifies before the
	// warm session is trusted again.
	s.canaryID = built.WindowIDs[len(built.WindowIDs)-1]
	canary, err := s.checkOne(context.Background(), s.canaryID, cliopts.Check{})
	if err != nil {
		return nil, fmt.Errorf("daemon: canary check: %w", err)
	}
	s.canaryJSON = marshalReport(canary)
	return s, nil
}

// rebuildSession replaces the warm session with a fresh one over the
// window base, re-wiring the cache flags (a -cache-dir warm start makes
// the rebuild cheap again).
func (s *Server) rebuildSession() error {
	session, err := s.built.SessionAt(s.built.WindowIDs[0])
	if err != nil {
		return fmt.Errorf("daemon: session: %w", err)
	}
	s.cfg.Cache.Apply(session)
	s.mu.Lock()
	s.session = session
	s.mu.Unlock()
	return nil
}

// marshalReport is THE report serialization: the same bytes `jmake
// -commit <id> -json` prints, so a daemon answer can be diffed against
// the batch CLI directly.
func marshalReport(r *jmake.Report) []byte {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// PatchReport contains only marshalable fields; reaching this is a
		// programming error worth crashing the request, not the daemon.
		panic(fmt.Sprintf("daemon: marshaling report: %v", err))
	}
	return append(data, '\n')
}

// checkOne runs one commit check against the warm session, honoring ctx
// at the checker's stage boundaries.
func (s *Server) checkOne(ctx context.Context, id string, chk cliopts.Check) (*jmake.Report, error) {
	opts := chk.Options()
	if opts.Interrupt == nil {
		opts.Interrupt = func() bool { return ctx.Err() != nil }
	}
	s.mu.RLock()
	session := s.session
	s.mu.RUnlock()
	return jmake.CheckCommitWith(session, s.built.Hist.Repo, id, opts)
}

// admit implements bounded admission. It returns a release func on
// success; otherwise shed=true with the advised retry delay, or
// shed=false when ctx expired while queued.
func (s *Server) admit(ctx context.Context) (release func(), retryAfter time.Duration, shed, ok bool) {
	release = func() {
		<-s.sem
		s.inflight.Add(-1)
	}
	select {
	case s.sem <- struct{}{}:
		s.shedStreak.Store(0)
		s.inflight.Add(1)
		return release, 0, false, true
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		// Queue full: shed now. The advised wait grows with the shed
		// streak on the checker's own capped backoff curve, so a thundering
		// herd is told to spread out further the longer the overload lasts.
		streak := int(s.shedStreak.Add(1))
		if streak > 8 {
			streak = 8
		}
		s.reg.Counter("requests_shed").Inc()
		return nil, s.model.Backoff(streak, "admission"), true, false
	}
	s.queued.Add(1)
	defer func() {
		<-s.queue
		s.queued.Add(-1)
	}()
	select {
	case s.sem <- struct{}{}:
		s.shedStreak.Store(0)
		s.inflight.Add(1)
		return release, 0, false, true
	case <-ctx.Done():
		s.reg.Counter("requests_expired_queued").Inc()
		return nil, 0, false, false
	}
}

// deadlineFor resolves a request's deadline from deadline_ms, bounded by
// the configured cap.
func (s *Server) deadlineFor(ms int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	mux.HandleFunc("/commits", s.handleCommits)
	mux.HandleFunc("/check", s.handleCheck)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/follow", s.handleFollow)
	mux.HandleFunc("/audit", s.handleAudit)
	return mux
}

// handleAudit serves the whole-tree configuration-mismatch report over the
// workspace's generated tree, with the manifest's intentional escape-class
// symbols suppressed so a clean workspace audits to zero findings. The
// Kconfig parses come from the warm session's shared per-arch cache, and
// the serialized bytes are audit.Report.JSON — identical to `jmake-lint
// -audit -json -baseline <manifest baseline>` over the emitted tree.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	s.auditOnce.Do(func() {
		ignore := make(map[string]bool, len(s.built.Manifest.AuditBaseline))
		for _, sym := range s.built.Manifest.AuditBaseline {
			ignore[sym] = true
		}
		s.mu.RLock()
		session := s.session
		s.mu.RUnlock()
		rep, err := audit.Run(audit.Params{
			Tree:    s.built.Tree,
			Ignore:  ignore,
			Workers: s.cfg.MaxInFlight,
			Kconfig: session.KconfigProvider(s.built.Tree),
		})
		if err != nil {
			s.auditErr = err
			return
		}
		s.auditJSON, s.auditErr = rep.JSON()
		s.reg.Counter("daemon_audit_runs").Inc()
	})
	if s.auditErr != nil {
		http.Error(w, "audit: "+s.auditErr.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.auditJSON)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and the warm session is present. Health
	// stays true while draining — the process is healthy, just not ready.
	s.mu.RLock()
	alive := s.session != nil
	s.mu.RUnlock()
	if !alive {
		http.Error(w, "no session", http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// metricszPayload is the /metricsz response shape.
type metricszPayload struct {
	Daemon  []metrics.Sample `json:"daemon"`
	Session []metrics.Sample `json:"session"`
	Latency struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50"`
		P95   float64 `json:"p95"`
		P99   float64 `json:"p99"`
	} `json:"latency"`
	InFlight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	var p metricszPayload
	p.Daemon = s.reg.Snapshot()
	s.mu.RLock()
	p.Session = s.session.Metrics().Snapshot()
	s.mu.RUnlock()
	p.Latency.Count = s.latency.Count()
	p.Latency.P50 = s.latency.Quantile(0.50)
	p.Latency.P95 = s.latency.Quantile(0.95)
	p.Latency.P99 = s.latency.Quantile(0.99)
	p.InFlight = s.inflight.Value()
	p.Queued = s.queued.Value()
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleCommits(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Commits []string `json:"commits"`
	}{s.built.WindowIDs})
}

// checkRequest is the /check request body. Options uses the same JSON
// schema as the CLI flag struct (cliopts.Check).
type checkRequest struct {
	Commit     string        `json:"commit"`
	Options    cliopts.Check `json:"options"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
	// Debug-only fault hooks (Config.Debug): panic mid-check, or hold the
	// check open to make admission and deadline tests deterministic.
	DebugPanic  bool  `json:"debug_panic,omitempty"`
	DebugHoldMS int64 `json:"debug_hold_ms,omitempty"`
}

// errorResponse is the JSON error envelope for non-200 answers. Report
// carries the partial result on 504 — clearly labeled, never a
// certification the checker did not earn.
type errorResponse struct {
	Error  string          `json:"error"`
	Report json.RawMessage `json:"report,omitempty"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req checkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if req.Commit == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing commit"})
		return
	}
	s.serveCheck(w, r, req)
}

func (s *Server) serveCheck(w http.ResponseWriter, r *http.Request, req checkRequest) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()

	release, retryAfter, shed, ok := s.admit(ctx)
	if shed {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "overloaded, retry later"})
		return
	}
	if !ok {
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline expired while queued"})
		return
	}
	defer release()

	start := time.Now()
	s.reg.Counter("requests_total").Inc()
	report, err := s.guardedCheck(ctx, req)
	s.latency.Observe(time.Since(start).Seconds())
	switch {
	case err == errPanicked:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal error (check panicked; state verified)"})
	case err != nil:
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	case report.Interrupted:
		s.reg.Counter("requests_timed_out").Inc()
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{
			Error:  "deadline exceeded; partial report attached",
			Report: marshalReport(report),
		})
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(marshalReport(report))
	}
}

// errPanicked marks a check that died by panic (already recovered).
var errPanicked = fmt.Errorf("daemon: check panicked")

// guardedCheck is checkOne wrapped in panic isolation: a panic is
// recovered, counted, and followed by the canary tripwire before the
// warm session may serve again.
func (s *Server) guardedCheck(ctx context.Context, req checkRequest) (report *jmake.Report, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.reg.Counter("daemon_panics").Inc()
			s.cfg.Log.Printf("daemon: recovered check panic on %s: %v", req.Commit, rec)
			s.verifySession()
			report, err = nil, errPanicked
		}
	}()
	if s.cfg.Debug && req.DebugHoldMS > 0 {
		holdUntil(ctx, time.Duration(req.DebugHoldMS)*time.Millisecond)
	}
	if s.cfg.Debug && req.DebugPanic {
		panic("debug_panic requested")
	}
	return s.checkOne(ctx, req.Commit, req.Options)
}

// holdUntil sleeps for d or until ctx is done, in small slices so tests
// with short deadlines are prompt.
func holdUntil(ctx context.Context, d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// verifySession is the poisoned-session tripwire: after a panic, re-run
// the canary commit and byte-compare its report with the startup record.
// Any difference — including a second panic — discards the warm session
// and rebuilds it.
func (s *Server) verifySession() {
	ok := func() (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		report, err := s.checkOne(context.Background(), s.canaryID, cliopts.Check{})
		if err != nil {
			return false
		}
		return string(marshalReport(report)) == string(s.canaryJSON)
	}()
	if ok {
		s.reg.Counter("daemon_tripwire_ok").Inc()
		return
	}
	s.reg.Counter("daemon_session_rebuilds").Inc()
	s.cfg.Log.Printf("daemon: canary mismatch after panic; rebuilding session")
	if err := s.rebuildSession(); err != nil {
		// Keep serving on the suspect session rather than dying; /healthz
		// stays true, but the rebuild failure is counted and logged.
		s.reg.Counter("daemon_session_rebuild_failures").Inc()
		s.cfg.Log.Printf("daemon: session rebuild failed: %v", err)
	}
}

// batchRequest checks several commits under one admission slot and one
// deadline, answering an array in request order.
type batchRequest struct {
	Commits    []string      `json:"commits"`
	Options    cliopts.Check `json:"options"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
}

type batchEntry struct {
	Commit string          `json:"commit"`
	Report json.RawMessage `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Commits) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: need commits"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()
	release, retryAfter, shed, ok := s.admit(ctx)
	if shed {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "overloaded, retry later"})
		return
	}
	if !ok {
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline expired while queued"})
		return
	}
	defer release()

	out := make([]batchEntry, 0, len(req.Commits))
	for _, id := range req.Commits {
		if ctx.Err() != nil {
			// Deadline mid-batch: remaining commits are reported as canceled,
			// never silently dropped.
			out = append(out, batchEntry{Commit: id, Error: "deadline exceeded before this commit was checked"})
			continue
		}
		s.reg.Counter("requests_total").Inc()
		start := time.Now()
		report, err := s.guardedCheck(ctx, checkRequest{Commit: id, Options: req.Options})
		s.latency.Observe(time.Since(start).Seconds())
		switch {
		case err != nil:
			out = append(out, batchEntry{Commit: id, Error: err.Error()})
		case report.Interrupted:
			s.reg.Counter("requests_timed_out").Inc()
			out = append(out, batchEntry{Commit: id, Error: "deadline exceeded; partial report attached", Report: marshalReport(report)})
		default:
			out = append(out, batchEntry{Commit: id, Report: marshalReport(report)})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// followRequest streams incremental checks of an ordered commit list.
// The server keeps one resident follower: when the requested stream
// continues past the previous stream's cursor (same options), the warm
// session is reused and per-commit cost is proportional to the diff;
// otherwise the follower reseeds at the first commit's parent.
type followRequest struct {
	Commits    []string      `json:"commits"`
	Options    cliopts.Check `json:"options"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
	// Reseed forces a fresh follower even when the resident one could
	// continue warm.
	Reseed bool `json:"reseed,omitempty"`
}

// followEntry is one line of the /follow response: compact JSON, one
// entry per commit, flushed as produced. Report carries the same bytes
// as /check for the same commit (modulo the entry's compact rendering).
type followEntry struct {
	Commit            string          `json:"commit"`
	Files             int             `json:"files"`
	Touched           int             `json:"touched"`
	Structural        bool            `json:"structural,omitempty"`
	InvalidatedTUs    int             `json:"invalidated_tus"`
	VirtualSeconds    float64         `json:"virtual_seconds"`
	EffectiveSeconds  float64         `json:"effective_seconds"`
	EffectiveMeasured bool            `json:"effective_measured,omitempty"`
	Report            json.RawMessage `json:"report,omitempty"`
	Error             string          `json:"error,omitempty"`
}

// handleFollow streams a commit sequence through the resident follower
// under one admission slot and one deadline, writing one followEntry
// line per commit as each check completes (http.Flusher per line). A
// deadline expiry yields honestly-labeled partial entries for whatever
// was in flight, never a silent truncation; a panic discards the
// follower so the next stream reseeds from scratch.
func (s *Server) handleFollow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	var req followRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Commits) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: need commits"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()
	release, retryAfter, shed, ok := s.admit(ctx)
	if shed {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "overloaded, retry later"})
		return
	}
	if !ok {
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline expired while queued"})
		return
	}
	defer release()

	s.followMu.Lock()
	defer s.followMu.Unlock()

	f, err := s.followerFor(req)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	s.followCtx.Store(&ctx)
	defer s.followCtx.Store(nil)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitted := 0
	writeEntry := func(e followEntry) {
		enc.Encode(e)
		if flusher != nil {
			flusher.Flush()
		}
		emitted++
	}

	runErr := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				s.reg.Counter("daemon_panics").Inc()
				s.cfg.Log.Printf("daemon: recovered follow panic: %v", rec)
				err = errPanicked
			}
		}()
		return f.Run(req.Commits, func(st jmake.FollowStep) bool {
			s.reg.Counter("requests_total").Inc()
			writeEntry(s.followEntryFor(st))
			return true
		})
	}()
	if runErr != nil {
		// The follower's tree or session may be mid-sequence; discard it so
		// the next stream reseeds rather than continuing from suspect state.
		s.follower = nil
		s.reg.Counter("daemon_follower_discards").Inc()
		msg := "follow stream aborted: " + runErr.Error()
		for _, id := range req.Commits[min(emitted, len(req.Commits)):] {
			writeEntry(followEntry{Commit: id, Error: msg})
		}
	}
}

// followerFor returns the resident follower when it can serve the
// request warm (every requested commit after its cursor, same checker
// options), otherwise reseeds one at the first commit's parent.
// Caller holds followMu.
func (s *Server) followerFor(req followRequest) (*jmake.Follower, error) {
	optsKey, err := json.Marshal(req.Options)
	if err != nil {
		return nil, err
	}
	if s.follower != nil && !req.Reseed && s.followerOpts == string(optsKey) &&
		s.followerServes(req.Commits) {
		s.reg.Counter("daemon_follow_continues").Inc()
		return s.follower, nil
	}
	base, err := s.built.Hist.Repo.Parent(req.Commits[0])
	if err != nil {
		return nil, err
	}
	if base == "" {
		return nil, fmt.Errorf("commit %s has no parent to seed a follower from", req.Commits[0])
	}
	opts := req.Options.Options()
	if opts.Interrupt == nil {
		opts.Interrupt = func() bool {
			if p := s.followCtx.Load(); p != nil && *p != nil {
				return (*p).Err() != nil
			}
			return false
		}
	}
	f, err := jmake.NewFollower(s.built.Hist.Repo, base, jmake.FollowOptions{Checker: opts})
	if err != nil {
		return nil, err
	}
	s.follower, s.followerOpts = f, string(optsKey)
	s.reg.Counter("daemon_follow_seeds").Inc()
	return f, nil
}

// followerServes reports whether every requested commit lies after the
// resident follower's cursor, i.e. the stream can continue warm.
func (s *Server) followerServes(ids []string) bool {
	seq, err := s.built.Hist.Repo.Since(s.follower.Cursor())
	if err != nil {
		return false
	}
	in := make(map[string]bool, len(seq))
	for _, id := range seq {
		in[id] = true
	}
	for _, id := range ids {
		if !in[id] {
			return false
		}
	}
	return true
}

// followEntryFor renders one follower step as a stream entry.
func (s *Server) followEntryFor(st jmake.FollowStep) followEntry {
	e := followEntry{
		Commit:            st.Commit,
		Files:             st.Files,
		Touched:           st.Touched,
		Structural:        st.Structural,
		InvalidatedTUs:    st.InvalidatedTUs,
		VirtualSeconds:    st.VirtualSeconds,
		EffectiveSeconds:  st.EffectiveSeconds,
		EffectiveMeasured: st.EffectiveMeasured,
	}
	switch {
	case st.Err != nil:
		e.Error = st.Err.Error()
	case st.Report.Interrupted:
		s.reg.Counter("requests_timed_out").Inc()
		e.Error = "deadline exceeded; partial report attached"
		e.Report = marshalReport(st.Report)
	default:
		e.Report = marshalReport(st.Report)
	}
	return e
}

// Shutdown drains the server: no new checks are admitted, the HTTP
// server (if any) stops accepting, and once in-flight work has finished
// (or ctx expires) the persistent cache tier is flushed exactly once.
// Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context, srv *http.Server) error {
	s.draining.Store(true)
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	} else {
		// No HTTP server to wait on (tests drive the handler directly):
		// wait for in-flight checks by filling every semaphore slot.
		err = s.waitIdle(ctx)
	}
	s.flushOnce.Do(func() {
		s.mu.RLock()
		session := s.session
		s.mu.RUnlock()
		if ferr := s.cfg.Cache.Flush(session); ferr != nil {
			s.cfg.Log.Printf("daemon: cache flush on drain failed: %v", ferr)
			s.reg.Counter("ccache_flush_failures").Inc()
		} else {
			s.reg.Counter("daemon_cache_flushes").Inc()
		}
	})
	return err
}

func (s *Server) waitIdle(ctx context.Context) error {
	for i := 0; i < cap(s.sem); i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for i := 0; i < cap(s.sem); i++ {
		<-s.sem
	}
	return nil
}

// Metrics exposes the daemon registry (tests).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Commits exposes the window IDs (tests and cmd/jmaked logging).
func (s *Server) Commits() []string { return s.built.WindowIDs }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
