package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"jmake/internal/audit"
)

// TestAuditEndpoint checks that /audit serves a clean report for the
// generated workspace (its manifest baseline suppresses the intentional
// escape-class fixtures), that repeated requests serve the identical
// cached bytes, and that the audit ran exactly once.
func TestAuditEndpoint(t *testing.T) {
	s, ts := newTestServer(t, nil)

	get := func() []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/audit")
		if err != nil {
			t.Fatalf("GET /audit: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /audit: %d: %s", resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q, want application/json", ct)
		}
		return body
	}

	first := get()
	var rep audit.Report
	if err := json.Unmarshal(first, &rep); err != nil {
		t.Fatalf("/audit not an audit.Report: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("workspace audit has %d findings, want 0 (baseline %d symbols):\n%s",
			len(rep.Findings), len(s.built.Manifest.AuditBaseline), rep.Text())
	}
	if rep.Suppressed == 0 {
		t.Error("expected baseline suppressions in the workspace audit")
	}
	if len(rep.Arches) == 0 || rep.Files == 0 || rep.Symbols == 0 {
		t.Errorf("implausible audit coverage: %+v", rep)
	}

	second := get()
	if !bytes.Equal(first, second) {
		t.Error("repeated /audit responses differ; expected cached bytes")
	}
	if got := s.reg.Counter("daemon_audit_runs").Value(); got != 1 {
		t.Errorf("daemon_audit_runs = %d, want 1", got)
	}
}
