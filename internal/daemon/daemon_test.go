package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"jmake"
	"jmake/internal/cliopts"
	"jmake/internal/metrics"
	"jmake/internal/obs"
)

// testWorkspace is the tiny substrate every daemon test serves.
var testWorkspace = cliopts.Workspace{
	TreeSeed: 11, HistorySeed: 12, TreeScale: 0.12, CommitScale: 0.008,
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workspace:   testWorkspace,
		MaxInFlight: 4,
		MaxQueue:    64,
		Debug:       true,
		// Tests run quiet; individual tests swap in a buffer logger when
		// they assert on the event stream.
		Logger: obs.New(io.Discard, obs.Error),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("daemon.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCheck(t *testing.T, ts *httptest.Server, req checkRequest) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/check", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST /check: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func windowTail(s *Server, n int) []string {
	ids := s.Commits()
	if len(ids) > n {
		ids = ids[len(ids)-n:]
	}
	return ids
}

func counterValue(reg *metrics.Registry, name string) uint64 {
	return reg.Counter(name).Value()
}

// assertReportSafety applies the chaos-sweep invariant to a served body:
// certified ⇒ all mutations found, no escapes.
func assertReportSafety(t *testing.T, commit string, body []byte) {
	t.Helper()
	var r jmake.Report
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("%s: undecodable report: %v", commit, err)
	}
	for _, f := range r.Files {
		if f.Status != jmake.StatusCertified {
			continue
		}
		if f.FoundMutations != f.Mutations {
			t.Errorf("%s: %s certified with %d/%d mutations found", commit, f.Path, f.FoundMutations, f.Mutations)
		}
		if len(f.EscapedLines) != 0 {
			t.Errorf("%s: %s certified with escaped lines %v", commit, f.Path, f.EscapedLines)
		}
	}
}

// TestConcurrentByteIdentical: the same commits answered concurrently
// (shared warm session, any interleaving) must be byte-identical to the
// sequential answers AND to a fresh offline session's reports — the
// service may change latency, never bytes. Run under -race this also
// exercises the session sharing.
func TestConcurrentByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, nil)
	ids := windowTail(s, 6)

	sequential := make(map[string][]byte, len(ids))
	for _, id := range ids {
		status, body := postCheck(t, ts, checkRequest{Commit: id})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", id, status, body)
		}
		sequential[id] = body
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan string, rounds*len(ids))
	for round := 0; round < rounds; round++ {
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				status, body := postCheck(t, ts, checkRequest{Commit: id})
				if status != http.StatusOK {
					errs <- fmt.Sprintf("%s: status %d", id, status)
					return
				}
				if !bytes.Equal(body, sequential[id]) {
					errs <- fmt.Sprintf("%s: concurrent body differs from sequential", id)
				}
			}(id)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Cross-check one daemon answer against an offline fresh session: the
	// daemon serves the same bytes the library computes cold.
	built, err := testWorkspace.Build()
	if err != nil {
		t.Fatal(err)
	}
	session, err := built.SessionAt(built.WindowIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	report, err := jmake.CheckCommitWith(session, built.Hist.Repo, ids[0], jmake.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(report), sequential[ids[0]]) {
		t.Error("daemon report differs from an offline fresh-session report")
	}
}

// TestAdmissionShed: with one slot, no queue, and a held check, the
// second request must be shed with 429 + Retry-After — bounded admission,
// not unbounded queueing.
func TestAdmissionShed(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = -1 // no wait queue
	})
	id := s.Commits()[len(s.Commits())-1]

	release := make(chan struct{})
	go func() {
		defer close(release)
		status, _ := postCheck(t, ts, checkRequest{Commit: id, DebugHoldMS: 2000})
		if status != http.StatusOK {
			t.Errorf("held request: status %d", status)
		}
	}()
	// Wait until the held request owns the slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.inflight.Value() == 0 {
		t.Fatal("held request never became in-flight")
	}

	data, _ := json.Marshal(checkRequest{Commit: id})
	resp, err := http.Post(ts.URL+"/check", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if counterValue(s.Metrics(), "requests_shed") == 0 {
		t.Error("shed not counted")
	}
	<-release
}

// TestDeadline504: a held check with a short deadline must answer 504
// with an honestly-labeled partial report — never block past the
// deadline, never wedge the worker.
func TestDeadline504(t *testing.T) {
	s, ts := newTestServer(t, nil)
	id := s.Commits()[len(s.Commits())-1]

	start := time.Now()
	status, body := postCheck(t, ts, checkRequest{Commit: id, DeadlineMS: 60, DebugHoldMS: 10_000})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not honored: request took %v", elapsed)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("undecodable 504 body: %v", err)
	}
	var partial jmake.Report
	if err := json.Unmarshal(er.Report, &partial); err != nil {
		t.Fatalf("504 without a decodable partial report: %v", err)
	}
	if !partial.Interrupted {
		t.Error("partial report not marked Interrupted")
	}
	for _, f := range partial.Files {
		if f.Status == jmake.StatusCertified {
			t.Errorf("%s certified on a timed-out check", f.Path)
		}
	}
	if counterValue(s.Metrics(), "requests_timed_out") == 0 {
		t.Error("timeout not counted")
	}

	// The worker is not wedged: the next plain request succeeds.
	status, _ = postCheck(t, ts, checkRequest{Commit: id})
	if status != http.StatusOK {
		t.Fatalf("request after timeout: status %d", status)
	}
}

// TestPanicRecoveryAndTripwire: a panicking check answers 500, the warm
// state is canary-verified before reuse, and subsequent requests serve
// the same bytes as before the panic.
func TestPanicRecoveryAndTripwire(t *testing.T) {
	s, ts := newTestServer(t, nil)
	id := s.Commits()[len(s.Commits())-1]

	status, before := postCheck(t, ts, checkRequest{Commit: id})
	if status != http.StatusOK {
		t.Fatalf("pre-panic request: status %d", status)
	}

	status, body := postCheck(t, ts, checkRequest{Commit: id, DebugPanic: true})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d: %s", status, body)
	}
	if counterValue(s.Metrics(), "daemon_panics") != 1 {
		t.Errorf("daemon_panics = %d, want 1", counterValue(s.Metrics(), "daemon_panics"))
	}
	if counterValue(s.Metrics(), "daemon_tripwire_ok") != 1 {
		t.Errorf("daemon_tripwire_ok = %d, want 1 (canary must be re-verified)", counterValue(s.Metrics(), "daemon_tripwire_ok"))
	}

	status, after := postCheck(t, ts, checkRequest{Commit: id})
	if status != http.StatusOK {
		t.Fatalf("post-panic request: status %d", status)
	}
	if !bytes.Equal(before, after) {
		t.Error("post-panic report differs from pre-panic report")
	}
}

// TestTripwireRebuild: when the canary comparison fails (state genuinely
// poisoned), the session is rebuilt and service continues correctly.
func TestTripwireRebuild(t *testing.T) {
	s, ts := newTestServer(t, nil)
	id := s.Commits()[len(s.Commits())-1]
	status, before := postCheck(t, ts, checkRequest{Commit: id})
	if status != http.StatusOK {
		t.Fatalf("pre-poison request: status %d", status)
	}

	// Poison the recorded canary so the next tripwire run cannot match.
	s.canaryJSON = []byte("poisoned")
	status, _ = postCheck(t, ts, checkRequest{Commit: id, DebugPanic: true})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d", status)
	}
	if counterValue(s.Metrics(), "daemon_session_rebuilds") != 1 {
		t.Errorf("daemon_session_rebuilds = %d, want 1", counterValue(s.Metrics(), "daemon_session_rebuilds"))
	}
	status, after := postCheck(t, ts, checkRequest{Commit: id})
	if status != http.StatusOK {
		t.Fatalf("post-rebuild request: status %d", status)
	}
	if !bytes.Equal(before, after) {
		t.Error("rebuilt session serves different bytes")
	}
}

// TestDrain: shutdown mid-burst lets accepted requests finish, refuses
// new ones, and flushes the persistent cache tier exactly once — even
// when Shutdown is called twice.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, func(c *Config) {
		c.Cache = cliopts.Cache{Dir: dir}
	})
	id := s.Commits()[len(s.Commits())-1]

	inFlight := make(chan int, 1)
	go func() {
		status, _ := postCheck(t, ts, checkRequest{Commit: id, DebugHoldMS: 300})
		inFlight <- status
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.inflight.Value() == 0 {
		t.Fatal("held request never became in-flight")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx, nil); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if status := <-inFlight; status != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", status)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while drained: %d, want 503", resp.StatusCode)
	}
	if status, _ := postCheck(t, ts, checkRequest{Commit: id}); status != http.StatusServiceUnavailable {
		t.Errorf("/check while drained: %d, want 503", status)
	}

	if err := s.Shutdown(ctx, nil); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if n := counterValue(s.Metrics(), "daemon_cache_flushes"); n != 1 {
		t.Errorf("daemon_cache_flushes = %d, want exactly 1", n)
	}
	// The flush actually reached disk.
	rc := jmake.LoadResultCache(dir)
	if rc.Stats().Entries == 0 {
		t.Error("drained cache tier is empty on disk")
	}
}

// TestChaosHTTP drives the fault-injection layer through the public
// request API: every 200 answer must uphold the safety invariant and the
// daemon must stay healthy — the HTTP surface adds no new way to lie.
func TestChaosHTTP(t *testing.T) {
	s, ts := newTestServer(t, nil)
	ids := windowTail(s, 4)
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		for _, id := range ids {
			status, body := postCheck(t, ts, checkRequest{
				Commit:  id,
				Options: cliopts.Check{FaultRate: 0.25, FaultSeed: seed},
			})
			if status != http.StatusOK {
				t.Fatalf("seed %d %s: status %d: %s", seed, id, status, body)
			}
			assertReportSafety(t, id, body)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unhealthy after chaos: %d", resp.StatusCode)
	}
}

// TestBatchDeadline: a batch that cannot finish within its deadline
// answers every commit in order — reports for the checked prefix, an
// explicit deadline error for the rest — and never drops entries.
func TestBatchDeadline(t *testing.T) {
	s, ts := newTestServer(t, nil)
	ids := s.Commits()
	// Cycle the window until the batch cannot possibly finish in time.
	commits := make([]string, 0, 2000)
	for len(commits) < 2000 {
		commits = append(commits, ids...)
	}
	data, _ := json.Marshal(batchRequest{Commits: commits, DeadlineMS: 80})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out []batchEntry
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(commits) {
		t.Fatalf("batch answered %d entries for %d commits", len(out), len(commits))
	}
	canceled := 0
	for i, e := range out {
		if e.Commit != commits[i] {
			t.Fatalf("entry %d out of order: %s != %s", i, e.Commit, commits[i])
		}
		if e.Report == nil && e.Error == "" {
			t.Fatalf("entry %d has neither report nor error", i)
		}
		if e.Error != "" {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("80ms deadline over 2000 checks produced no deadline errors")
	}
}

// TestMetricsEndpoints exercises /healthz, /readyz, /metricsz and
// /commits shapes.
func TestMetricsEndpoints(t *testing.T) {
	s, ts := newTestServer(t, nil)
	id := s.Commits()[0]
	if status, _ := postCheck(t, ts, checkRequest{Commit: id}); status != http.StatusOK {
		t.Fatalf("seed request failed")
	}
	for _, path := range []string{"/healthz", "/readyz", "/commits", "/metricsz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if path == "/metricsz" {
			var p metricszPayload
			if err := json.Unmarshal(body, &p); err != nil {
				t.Fatalf("/metricsz not JSON: %v", err)
			}
			if p.Latency.Count == 0 {
				t.Error("/metricsz latency count is 0 after a request")
			}
			if len(p.Daemon) == 0 || len(p.Session) == 0 {
				t.Error("/metricsz missing registry snapshots")
			}
		}
	}
	// Unknown commit is a clean 404-class error, not a panic.
	if status, _ := postCheck(t, ts, checkRequest{Commit: "no-such-commit"}); status != http.StatusNotFound {
		t.Errorf("unknown commit: status %d, want 404", status)
	}
}

// postFollow posts one /follow stream and decodes its NDJSON entries.
func postFollow(t *testing.T, ts *httptest.Server, req followRequest) (int, []followEntry) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/follow", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST /follow: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /follow: status %d: %s", resp.StatusCode, body)
	}
	var out []followEntry
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var e followEntry
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("decoding follow entry %d: %v", len(out), err)
		}
		out = append(out, e)
	}
	return resp.StatusCode, out
}

// TestFollowStream: /follow answers one entry per commit in order, each
// report byte-identical (modulo the entry's compact rendering) to what
// /check serves for the same commit; a second stream that picks up where
// the first stopped continues the resident follower warm instead of
// reseeding, and a stream behind the cursor reseeds.
func TestFollowStream(t *testing.T) {
	s, ts := newTestServer(t, nil)
	ids := windowTail(s, 8)
	if len(ids) < 4 {
		t.Fatalf("window too small: %d commits", len(ids))
	}
	first, second := ids[:len(ids)/2], ids[len(ids)/2:]

	compactCheck := func(id string) []byte {
		status, body := postCheck(t, ts, checkRequest{Commit: id})
		if status != http.StatusOK {
			t.Fatalf("/check %s: status %d", id, status)
		}
		var buf bytes.Buffer
		if err := json.Compact(&buf, body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	assertEntries := func(entries []followEntry, want []string) {
		t.Helper()
		if len(entries) != len(want) {
			t.Fatalf("stream answered %d entries for %d commits", len(entries), len(want))
		}
		for i, e := range entries {
			if e.Commit != want[i] {
				t.Fatalf("entry %d out of order: %s != %s", i, e.Commit, want[i])
			}
			if e.Error != "" {
				t.Fatalf("%s: unexpected stream error: %s", e.Commit, e.Error)
			}
			if !bytes.Equal(e.Report, compactCheck(e.Commit)) {
				t.Errorf("%s: /follow report differs from /check report", e.Commit)
			}
			if !e.EffectiveMeasured {
				t.Errorf("%s: sequential stream without effective attribution", e.Commit)
			}
			if e.EffectiveSeconds > e.VirtualSeconds+1e-9 {
				t.Errorf("%s: effective %.3fs exceeds virtual %.3fs", e.Commit, e.EffectiveSeconds, e.VirtualSeconds)
			}
		}
	}

	_, entries := postFollow(t, ts, followRequest{Commits: first})
	assertEntries(entries, first)
	if n := counterValue(s.Metrics(), "daemon_follow_seeds"); n != 1 {
		t.Fatalf("daemon_follow_seeds = %d after first stream, want 1", n)
	}

	// Second stream continues past the first one's cursor: warm, no reseed.
	_, entries = postFollow(t, ts, followRequest{Commits: second})
	assertEntries(entries, second)
	if n := counterValue(s.Metrics(), "daemon_follow_continues"); n != 1 {
		t.Errorf("daemon_follow_continues = %d after continuation, want 1", n)
	}
	if n := counterValue(s.Metrics(), "daemon_follow_seeds"); n != 1 {
		t.Errorf("daemon_follow_seeds = %d after continuation, want 1 (no reseed)", n)
	}
	var virtual, effective float64
	for _, e := range entries {
		virtual += e.VirtualSeconds
		effective += e.EffectiveSeconds
	}
	if virtual > 0 && effective >= virtual {
		t.Errorf("warm continuation saved nothing: effective %.3fs, virtual %.3fs", effective, virtual)
	}

	// A stream behind the cursor cannot continue: it reseeds, and still
	// serves the same bytes.
	_, entries = postFollow(t, ts, followRequest{Commits: first})
	assertEntries(entries, first)
	if n := counterValue(s.Metrics(), "daemon_follow_seeds"); n != 2 {
		t.Errorf("daemon_follow_seeds = %d after behind-cursor stream, want 2", n)
	}
}

// TestFollowDeadline: a stream that cannot finish within its deadline
// labels the unfinished tail honestly — an error (with partial report
// where one exists) for every commit the deadline caught, no silently
// dropped entries — and the next stream still serves correct bytes.
func TestFollowDeadline(t *testing.T) {
	s, ts := newTestServer(t, nil)
	ids := windowTail(s, 6)

	_, entries := postFollow(t, ts, followRequest{Commits: ids, DeadlineMS: 1})
	if len(entries) != len(ids) {
		t.Fatalf("deadline stream answered %d entries for %d commits", len(entries), len(ids))
	}
	interrupted := 0
	for i, e := range entries {
		if e.Commit != ids[i] {
			t.Fatalf("entry %d out of order: %s != %s", i, e.Commit, ids[i])
		}
		if e.Error != "" {
			interrupted++
		}
	}
	if interrupted == 0 {
		t.Error("1ms deadline over the window produced no deadline errors")
	}

	// Service intact afterwards: a fresh stream (reseeded past the
	// interrupted follower) matches /check bytes.
	id := ids[len(ids)-1]
	status, body := postCheck(t, ts, checkRequest{Commit: id})
	if status != http.StatusOK {
		t.Fatalf("/check after deadline stream: status %d", status)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, body); err != nil {
		t.Fatal(err)
	}
	_, entries = postFollow(t, ts, followRequest{Commits: []string{id}, Reseed: true})
	if len(entries) != 1 || entries[0].Error != "" {
		t.Fatalf("post-deadline stream broken: %+v", entries)
	}
	if !bytes.Equal(entries[0].Report, buf.Bytes()) {
		t.Error("post-deadline follow report differs from /check report")
	}
}
