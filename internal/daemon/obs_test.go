package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"jmake"
	"jmake/internal/metrics"
	"jmake/internal/obs"
	"jmake/internal/trace"
)

// get fetches a daemon path with optional headers.
func get(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// postCheckPath posts a check request to an arbitrary path (so tests can
// add ?trace=...) with optional headers.
func postCheckPath(t *testing.T, ts *httptest.Server, path string, req checkRequest, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// traceEnvelope is the decoded /check?trace= response.
type traceEnvelope struct {
	RequestID   string          `json:"request_id"`
	TraceFormat string          `json:"trace_format"`
	Trace       string          `json:"trace"`
	Report      json.RawMessage `json:"report"`
}

// offlineArtifacts runs the one-shot CLI trace path (CheckCommitTraced +
// MergeTraces over a fresh session) for one commit and returns the three
// artifacts plus the report bytes — the ground truth every daemon
// sidecar must match byte-for-byte.
func offlineArtifacts(t *testing.T, id string) (tree, chrome, summary string, report []byte) {
	t.Helper()
	built, err := testWorkspace.Build()
	if err != nil {
		t.Fatalf("offline workspace: %v", err)
	}
	session, err := built.SessionAt(built.WindowIDs[0])
	if err != nil {
		t.Fatalf("offline session: %v", err)
	}
	rep, span, err := jmake.CheckCommitTraced(session, built.Hist.Repo, id, jmake.Options{})
	if err != nil {
		t.Fatalf("offline CheckCommitTraced: %v", err)
	}
	tr := jmake.MergeTraces(span)
	return tr.Tree(), string(tr.Chrome(4)), tr.RenderSummary(), marshalReport(rep)
}

// TestTraceSidecarDeterminism is the tentpole acceptance test: the trace
// sidecar is byte-identical to the one-shot CLI artifact for the same
// commit — cold and warm, MaxInFlight 1 and 4, query param or header —
// and asking for a trace changes zero bytes of the report.
func TestTraceSidecarDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("workspace generation is slow")
	}
	var id string
	var wantTree, wantChrome, wantSummary string
	var wantReport []byte

	for _, inflight := range []int{1, 4} {
		inflight := inflight
		t.Run(fmt.Sprintf("inflight=%d", inflight), func(t *testing.T) {
			s, ts := newTestServer(t, func(c *Config) { c.MaxInFlight = inflight })
			if id == "" {
				id = windowTail(s, 2)[0]
				wantTree, wantChrome, wantSummary, wantReport = offlineArtifacts(t, id)
			}

			// Plain check first: the no-trace body is the bare report, and it
			// pins the bytes the sidecar envelope must embed unchanged.
			resp, plain := postCheckPath(t, ts, "/check", checkRequest{Commit: id}, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("plain check: %d: %s", resp.StatusCode, plain)
			}
			if !bytes.Equal(plain, wantReport) {
				t.Fatalf("plain daemon report != offline CLI report")
			}
			if rid := resp.Header.Get("X-JMake-Request-Id"); rid == "" {
				t.Error("missing X-JMake-Request-Id header")
			}

			// Cold vs warm: the first traced request runs against whatever
			// cache state the plain check left; the repeat is fully warm. The
			// stamped trace must not care.
			var coldBody []byte
			for _, phase := range []string{"cold", "warm"} {
				resp, body := postCheckPath(t, ts, "/check?trace=tree", checkRequest{Commit: id}, nil)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s traced check: %d: %s", phase, resp.StatusCode, body)
				}
				var env traceEnvelope
				if err := json.Unmarshal(body, &env); err != nil {
					t.Fatalf("%s: undecodable envelope: %v", phase, err)
				}
				if env.TraceFormat != "tree" || env.RequestID == "" {
					t.Errorf("%s: envelope metadata = %q/%q", phase, env.TraceFormat, env.RequestID)
				}
				if env.Trace != wantTree {
					t.Errorf("%s: sidecar tree != offline CLI tree:\ngot:\n%s\nwant:\n%s", phase, env.Trace, wantTree)
				}
				// The embedded report is the exact marshalReport bytes (modulo
				// the trailing newline JSON decoding strips).
				if got := append(append([]byte(nil), env.Report...), '\n'); !bytes.Equal(got, wantReport) {
					t.Errorf("%s: sidecar report bytes != plain report bytes", phase)
				}
				if phase == "cold" {
					coldBody = body
				} else if !bytes.Equal(stripRequestID(t, coldBody), stripRequestID(t, body)) {
					t.Errorf("cold and warm traced responses differ beyond the request id")
				}
			}

			// Header opt-in is equivalent to the query param.
			_, viaHeader := postCheckPath(t, ts, "/check", checkRequest{Commit: id}, map[string]string{"X-JMake-Trace": "tree"})
			var envH traceEnvelope
			if err := json.Unmarshal(viaHeader, &envH); err != nil {
				t.Fatalf("header variant: %v", err)
			}
			if envH.Trace != wantTree {
				t.Error("X-JMake-Trace header sidecar differs from ?trace= sidecar")
			}

			// The other two formats match their offline artifacts too.
			_, chromeBody := postCheckPath(t, ts, "/check?trace=chrome", checkRequest{Commit: id}, nil)
			var envC traceEnvelope
			if err := json.Unmarshal(chromeBody, &envC); err != nil {
				t.Fatal(err)
			}
			if envC.Trace != wantChrome {
				t.Error("chrome sidecar != offline Chrome(4) artifact")
			}
			if err := trace.ValidateChrome([]byte(envC.Trace)); err != nil {
				t.Errorf("chrome sidecar invalid: %v", err)
			}
			_, sumBody := postCheckPath(t, ts, "/check?trace=summary", checkRequest{Commit: id}, nil)
			var envS traceEnvelope
			if err := json.Unmarshal(sumBody, &envS); err != nil {
				t.Fatal(err)
			}
			if envS.Trace != wantSummary {
				t.Error("summary sidecar != offline RenderSummary artifact")
			}

			// Unknown formats are rejected up front.
			resp, _ = postCheckPath(t, ts, "/check?trace=flamegraph", checkRequest{Commit: id}, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("unknown trace format answered %d, want 400", resp.StatusCode)
			}
		})
	}
}

// stripRequestID normalizes a traced envelope for byte comparison across
// requests (the request id is the only field allowed to differ).
func stripRequestID(t *testing.T, body []byte) []byte {
	t.Helper()
	var env traceEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	env.RequestID = ""
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTraceSidecarConcurrent hammers traced checks concurrently at
// MaxInFlight 4: every sidecar for the same commit must be byte-identical
// regardless of interleaving.
func TestTraceSidecarConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("workspace generation is slow")
	}
	_, ts := newTestServer(t, nil)
	s, _ := http.Get(ts.URL + "/commits")
	var payload struct {
		Commits []string `json:"commits"`
	}
	json.NewDecoder(s.Body).Decode(&payload)
	s.Body.Close()
	id := payload.Commits[len(payload.Commits)-1]

	const clients = 8
	traces := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, body := postCheckPath(t, ts, "/check?trace=tree", checkRequest{Commit: id}, nil)
			var env traceEnvelope
			if json.Unmarshal(body, &env) == nil {
				traces[i] = env.Trace
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if traces[i] != traces[0] {
			t.Fatalf("concurrent sidecar %d differs from sidecar 0", i)
		}
	}
	if traces[0] == "" {
		t.Fatal("no sidecar captured")
	}
}

// TestMetricszDeterministic: two consecutive scrapes of an idle daemon
// are byte-identical, in both the JSON snapshot and the Prometheus text
// exposition (the satellite regression for snapshot ordering).
func TestMetricszDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("workspace generation is slow")
	}
	s, ts := newTestServer(t, nil)
	// Put some traffic through first so the registries are non-trivial.
	id := windowTail(s, 1)[0]
	postCheck(t, ts, checkRequest{Commit: id})
	postCheck(t, ts, checkRequest{Commit: id})

	for _, path := range []string{"/metricsz", "/metricsz?format=prometheus"} {
		_, a := get(t, ts, path, nil)
		_, b := get(t, ts, path, nil)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two idle scrapes differ:\n--- first\n%s\n--- second\n%s", path, a, b)
		}
	}
}

// TestMetricszPrometheus checks content negotiation and that the
// exposition passes the validator and contains the new wall-clock and
// outcome series.
func TestMetricszPrometheus(t *testing.T) {
	if testing.Short() {
		t.Skip("workspace generation is slow")
	}
	s, ts := newTestServer(t, nil)
	id := windowTail(s, 1)[0]
	postCheck(t, ts, checkRequest{Commit: id})

	resp, body := get(t, ts, "/metricsz?format=prometheus", nil)
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Errorf("content type = %q, want %q", ct, metrics.TextContentType)
	}
	if err := metrics.ValidateText(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# TYPE request_latency_seconds histogram",
		"request_latency_seconds_bucket",
		`request_wall_seconds_bucket{endpoint="check",le="+Inf"}`,
		`requests_outcome_total{endpoint="check",outcome="ok"} 1`,
		"queue_wait_seconds_count",
		"requests_inflight 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Accept-header negotiation selects the text format; default is JSON.
	resp, _ = get(t, ts, "/metricsz", map[string]string{"Accept": "text/plain"})
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Errorf("Accept: text/plain negotiated %q", ct)
	}
	resp, jsonBody := get(t, ts, "/metricsz", nil)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default content type = %q", ct)
	}
	var payload metricszPayload
	if err := json.Unmarshal(jsonBody, &payload); err != nil {
		t.Fatalf("JSON snapshot undecodable: %v", err)
	}
	if len(payload.Daemon) == 0 || len(payload.Session) == 0 {
		t.Error("JSON snapshot missing registries")
	}
	// The JSON snapshot is fully name-sorted (satellite 1).
	for i := 1; i < len(payload.Daemon); i++ {
		if payload.Daemon[i].Name < payload.Daemon[i-1].Name {
			t.Errorf("daemon snapshot unsorted: %q after %q", payload.Daemon[i].Name, payload.Daemon[i-1].Name)
		}
	}
}

// TestFlightRecorderEndpoints: records for ok and panic requests, stable
// field ordering in /debugz/requests, /tracez service and 404 after
// eviction.
func TestFlightRecorderEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("workspace generation is slow")
	}
	s, ts := newTestServer(t, func(c *Config) { c.FlightSize = 3 })
	id := windowTail(s, 1)[0]

	resp, _ := postCheckPath(t, ts, "/check", checkRequest{Commit: id}, nil)
	okRID := resp.Header.Get("X-JMake-Request-Id")
	if okRID == "" {
		t.Fatal("no request id on ok check")
	}

	// The ok request's trace is immediately queryable.
	resp, treeBody := get(t, ts, "/tracez/"+okRID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez/%s: %d: %s", okRID, resp.StatusCode, treeBody)
	}
	if !strings.Contains(string(treeBody), "patch") {
		t.Errorf("tracez body does not look like a span tree:\n%s", treeBody)
	}
	wantTree, wantChrome, _, _ := offlineArtifacts(t, id)
	if string(treeBody) != wantTree {
		t.Errorf("/tracez tree != offline CLI tree")
	}
	resp, chromeBody := get(t, ts, "/tracez/"+okRID+"?format=chrome", nil)
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("chrome tracez content type = %q", resp.Header.Get("Content-Type"))
	}
	if string(chromeBody) != wantChrome {
		t.Errorf("/tracez chrome != offline CLI chrome artifact")
	}
	if resp, _ := get(t, ts, "/tracez/"+okRID+"?format=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus tracez format answered %d", resp.StatusCode)
	}

	// A panicking check leaves a record with its cause.
	resp, _ = postCheckPath(t, ts, "/check", checkRequest{Commit: id, DebugPanic: true}, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("debug panic answered %d", resp.StatusCode)
	}
	panicRID := resp.Header.Get("X-JMake-Request-Id")

	_, debugBody := get(t, ts, "/debugz/requests", nil)
	var dump struct {
		Capacity int          `json:"capacity"`
		Count    int          `json:"count"`
		Records  []obs.Record `json:"records"`
	}
	if err := json.Unmarshal(debugBody, &dump); err != nil {
		t.Fatalf("debugz undecodable: %v", err)
	}
	if dump.Capacity != 3 {
		t.Errorf("capacity = %d, want 3", dump.Capacity)
	}
	byID := map[string]obs.Record{}
	for _, r := range dump.Records {
		byID[r.RequestID] = r
	}
	okRec, ok := byID[okRID]
	if !ok {
		t.Fatalf("ok record %s missing from flight recorder", okRID)
	}
	if okRec.Outcome != obs.OutcomeOK || okRec.Status != 200 || okRec.Endpoint != "check" {
		t.Errorf("ok record = %+v", okRec)
	}
	if okRec.VirtualSeconds <= 0 || okRec.Spans == "" {
		t.Errorf("ok record missing trace-derived fields: %+v", okRec)
	}
	panicRec, ok := byID[panicRID]
	if !ok {
		t.Fatalf("panic record %s missing", panicRID)
	}
	if panicRec.Outcome != obs.OutcomePanic || panicRec.Status != 500 || panicRec.Cause != "debug_panic requested" {
		t.Errorf("panic record = %+v", panicRec)
	}

	// Field order in the serialized dump is the obs.Record order.
	seqIdx := bytes.Index(debugBody, []byte(`"seq"`))
	ridIdx := bytes.Index(debugBody, []byte(`"request_id"`))
	outIdx := bytes.Index(debugBody, []byte(`"outcome"`))
	if !(seqIdx >= 0 && seqIdx < ridIdx && ridIdx < outIdx) {
		t.Errorf("debugz field order not stable: seq@%d request_id@%d outcome@%d", seqIdx, ridIdx, outIdx)
	}
	// Records are oldest-first with increasing seq.
	for i := 1; i < len(dump.Records); i++ {
		if dump.Records[i].Seq <= dump.Records[i-1].Seq {
			t.Errorf("debugz records not seq-ordered at %d", i)
		}
	}

	// Push the ok record out of the ring; its trace must 404.
	for i := 0; i < 3; i++ {
		postCheck(t, ts, checkRequest{Commit: id})
	}
	if resp, _ := get(t, ts, "/tracez/"+okRID, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted tracez answered %d, want 404", resp.StatusCode)
	}
	if _, found := s.Flight().Find(okRID); found {
		t.Error("evicted record still findable")
	}
}

// TestStructuredRequestLog asserts the per-request NDJSON event stream:
// one decodable line per request with the request-scoped fields, and
// shed/panic causes surfaced.
func TestStructuredRequestLog(t *testing.T) {
	if testing.Short() {
		t.Skip("workspace generation is slow")
	}
	var buf syncBuffer
	s, ts := newTestServer(t, func(c *Config) {
		c.Logger = obs.New(&buf, obs.Info)
	})
	id := windowTail(s, 1)[0]
	resp, _ := postCheckPath(t, ts, "/check", checkRequest{Commit: id}, nil)
	rid := resp.Header.Get("X-JMake-Request-Id")
	postCheckPath(t, ts, "/check", checkRequest{Commit: id, DebugPanic: true}, nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var okLine, panicLine map[string]any
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if ev["msg"] != "request" {
			continue
		}
		switch ev["outcome"] {
		case "ok":
			okLine = ev
		case "panic":
			panicLine = ev
		}
	}
	if okLine == nil {
		t.Fatal("no ok request event logged")
	}
	if okLine["request_id"] != rid || okLine["commit"] != id || okLine["level"] != "info" {
		t.Errorf("ok event = %v", okLine)
	}
	if _, has := okLine["virtual_seconds"]; !has {
		t.Error("ok event missing virtual_seconds")
	}
	if panicLine == nil {
		t.Fatal("no panic request event logged")
	}
	if panicLine["level"] != "error" || panicLine["cause"] != "debug_panic requested" {
		t.Errorf("panic event = %v", panicLine)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestBatchTraceSidecar: per-entry request ids and trace sidecars on
// /batch, byte-identical to the /check sidecar for the same commit.
func TestBatchTraceSidecar(t *testing.T) {
	if testing.Short() {
		t.Skip("workspace generation is slow")
	}
	s, ts := newTestServer(t, nil)
	ids := windowTail(s, 2)

	data, _ := json.Marshal(batchRequest{Commits: ids})
	resp, err := http.Post(ts.URL+"/batch?trace=tree", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, body)
	}
	var entries []batchEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(ids) {
		t.Fatalf("%d entries for %d commits", len(entries), len(ids))
	}
	for i, e := range entries {
		if e.RequestID == "" {
			t.Errorf("entry %d missing request id", i)
		}
		if e.Trace == "" {
			t.Errorf("entry %d missing trace sidecar", i)
			continue
		}
		// Same commit through /check?trace=tree must give the same artifact.
		_, checkBody := postCheckPath(t, ts, "/check?trace=tree", checkRequest{Commit: e.Commit}, nil)
		var env traceEnvelope
		if err := json.Unmarshal(checkBody, &env); err != nil {
			t.Fatal(err)
		}
		if e.Trace != env.Trace {
			t.Errorf("batch sidecar for %s differs from check sidecar", e.Commit)
		}
	}
}
