package audit

import "fmt"

// Expectation is one finding the caller asserts the audit must produce —
// the ground-truth format written by kerngen's mismatch injector and
// consumed by jmake-lint -audit-verify. The JSON field names match
// Finding's, so an injection manifest round-trips through either type.
type Expectation struct {
	Category Category `json:"category"`
	File     string   `json:"file"`
	Line     int      `json:"line,omitempty"`
	Symbol   string   `json:"symbol,omitempty"`
}

func (e Expectation) String() string {
	s := fmt.Sprintf("[%s]", e.Category)
	if e.File != "" {
		s += " " + e.File
		if e.Line > 0 {
			s += fmt.Sprintf(":%d", e.Line)
		}
	}
	if e.Symbol != "" {
		s += " " + e.Symbol
	}
	return s
}

// matches reports whether a finding satisfies the expectation. Symbol-level
// expectations (Line 0) match on category and symbol — the representative
// file of a cross-arch Kconfig finding is an implementation detail — while
// positional expectations also pin file and line.
func (e Expectation) matches(f Finding) bool {
	if f.Category != e.Category {
		return false
	}
	if e.Symbol != "" && f.Symbol != e.Symbol {
		return false
	}
	if e.Line > 0 && (f.File != e.File || f.Line != e.Line) {
		return false
	}
	return true
}

// Verify checks the report against a ground-truth manifest both ways: every
// expectation must be matched by a distinct finding (else it is missing)
// and every finding must match some expectation (else it is extra). A report
// verifies exactly when both returned slices are empty — 100% recall with
// zero false positives.
func Verify(rep *Report, want []Expectation) (missing []Expectation, extra []Finding) {
	used := make([]bool, len(rep.Findings))
	for _, e := range want {
		found := false
		for i, f := range rep.Findings {
			if !used[i] && e.matches(f) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, e)
		}
	}
	for i, f := range rep.Findings {
		if !used[i] {
			extra = append(extra, f)
		}
	}
	return missing, extra
}
