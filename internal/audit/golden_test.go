package audit

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"jmake/internal/fstree"
)

// TestGoldenCorpus pins the audit's JSON report over examples/audit/src —
// a fixture tree with one defect per finding category and an unreported
// #if 0 — byte for byte, at two worker counts. Regenerate the golden with
// UPDATE_GOLDEN=1 go test ./internal/audit/ after an intentional format
// or analysis change.
func TestGoldenCorpus(t *testing.T) {
	srcDir := filepath.Join("..", "..", "examples", "audit", "src")
	goldenPath := filepath.Join("..", "..", "examples", "audit", "golden", "report.json")

	var outs [][]byte
	for _, workers := range []int{1, 2} {
		tree, err := fstree.LoadDir(srcDir)
		if err != nil {
			t.Fatalf("corpus missing: %v", err)
		}
		rep, err := Run(Params{Tree: tree, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, b)

		// Each category must be represented exactly once: the misspelled
		// Kbuild gate and the misspelled #ifdef are both undefined refs.
		want := map[Category]int{CatUndefinedRef: 2, CatDeadSymbol: 1, CatContradiction: 2, CatDeadCode: 1}
		for c, n := range want {
			if rep.Counts[c] != n {
				t.Errorf("workers=%d: counts[%s] = %d, want %d\n%s", workers, c, rep.Counts[c], n, rep.Text())
			}
		}
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("JSON differs between workers=1 and workers=2:\n%s\n---\n%s", outs[0], outs[1])
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, outs[0], 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(outs[0], want) {
		t.Errorf("audit report drifted from golden\n--- got ---\n%s--- want ---\n%s", outs[0], want)
	}
}
