package audit

import (
	"strings"
	"testing"

	"jmake/internal/fstree"
)

func auditFixture(t *testing.T, kconfig, code string) *Report {
	t.Helper()
	tr := fstree.New()
	tr.Write("Kconfig", kconfig)
	if code != "" {
		tr.Write("probe.c", code)
	}
	rep, err := Run(Params{Tree: tr})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTristateMvsYChain checks the audit's tristate chain semantics: a
// tristate capped at m by its dependency chain makes a plain #ifdef (the
// y macro) dead while the _MODULE spelling stays compilable — and the
// symbol itself is not dead, so only the block is reported.
func TestTristateMvsYChain(t *testing.T) {
	rep := auditFixture(t, `
config CAPPED
	tristate "never above m"
	depends on m
`, `#ifdef CONFIG_CAPPED
int only_builtin;
#endif
#ifdef CONFIG_CAPPED_MODULE
int only_modular;
#endif
`)
	if got := rep.Counts[CatDeadSymbol]; got != 0 {
		t.Errorf("dead-symbol count = %d, want 0 (CAPPED is reachable at m):\n%s", got, rep.Text())
	}
	if got := rep.Counts[CatDeadCode]; got != 1 {
		t.Fatalf("dead-code count = %d, want 1:\n%s", got, rep.Text())
	}
	f := rep.Findings[0]
	if f.File != "probe.c" || f.Line != 2 || f.Symbol != "CAPPED" {
		t.Errorf("dead block = %+v, want probe.c:2 CAPPED", f)
	}
}

// TestSelectOverridesUnsatisfiedDep checks how a select interacts with an
// unsatisfiable dependency: alone, the symbol is a dead-symbol finding;
// with a selector, the select exemption stops the dead-symbol report (a
// select raises the target past its depends-on) and the defect is instead
// attributed to the selector as a select-vs-depends conflict — one
// finding either way, never two for one defect.
func TestSelectOverridesUnsatisfiedDep(t *testing.T) {
	const deadDecl = `
config ROOT
	bool "root"

config STUCK
	bool "unsatisfiable on its own"
	depends on ROOT && !ROOT
`
	rep := auditFixture(t, deadDecl, "")
	if got := rep.Counts[CatDeadSymbol]; got != 1 {
		t.Fatalf("without selector: dead-symbol count = %d, want 1:\n%s", got, rep.Text())
	}

	rep = auditFixture(t, deadDecl+`
config RAISER
	bool "raiser"
	select STUCK
`, "")
	if got := rep.Counts[CatDeadSymbol]; got != 0 {
		t.Errorf("with selector: dead-symbol count = %d, want 0 (select exempts the target):\n%s",
			got, rep.Text())
	}
	if got := rep.Counts[CatContradiction]; got != 1 {
		t.Fatalf("with selector: contradiction count = %d, want 1:\n%s", got, rep.Text())
	}
	if f := findingWith(rep.Findings, CatContradiction, "RAISER"); f == nil || !strings.Contains(f.Detail, "STUCK") {
		t.Errorf("conflict not attributed to selector: %+v", rep.Findings)
	}
}

// TestSelfDependencyCycleTerminates feeds the chain expansion a direct
// self-dependency and a two-symbol cycle; the audit must terminate and
// report nothing (both admit the all-yes valuation).
func TestSelfDependencyCycleTerminates(t *testing.T) {
	rep := auditFixture(t, `
config SELF
	bool "depends on itself"
	depends on SELF

config PING
	bool "ping"
	depends on PONG

config PONG
	bool "pong"
	depends on PING
`, `#ifdef CONFIG_SELF
int self_block;
#endif
`)
	if len(rep.Findings) != 0 {
		t.Errorf("cycles produced %d findings, want 0:\n%s", len(rep.Findings), rep.Text())
	}
}

// TestSelectConflictStillReported guards the exemption's boundary: the
// select exemption must not hide a selector whose every enabling
// configuration violates the target's dependencies.
func TestSelectConflictStillReported(t *testing.T) {
	rep := auditFixture(t, `
config GUARD
	bool "guard"

config WANTS_GUARD
	bool "wants guard"
	depends on GUARD

config FORCER
	bool "forcer"
	depends on !GUARD
	select WANTS_GUARD
`, "")
	if got := rep.Counts[CatContradiction]; got != 1 {
		t.Fatalf("contradiction count = %d, want 1:\n%s", got, rep.Text())
	}
	if f := rep.Findings[0]; f.Symbol != "FORCER" || !strings.Contains(f.Detail, "WANTS_GUARD") {
		t.Errorf("select conflict = %+v, want FORCER vs WANTS_GUARD", f)
	}
}
