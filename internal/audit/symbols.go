package audit

import (
	"fmt"
	"sort"
	"strings"

	"jmake/internal/kconfig"
	"jmake/internal/presence"
)

// Symbol-level checks. Each check runs per architecture and is aggregated:
// a finding is reported only when it holds in *every* architecture where
// the check applies (flagged == applicable), because an option usable
// somewhere is not a tree-wide defect. The representative finding comes
// from the first flagging architecture in sorted order, so reports are
// deterministic.

// symIssue is one per-arch flag, keyed for cross-arch aggregation.
type symIssue struct {
	key string
	f   Finding
}

type symAgg struct {
	applicable, flagged int
	f                   Finding
	has                 bool
}

// checkSymbols runs the dead-symbol, chain-contradiction, and
// select-vs-depends checks over every architecture and aggregates.
func checkSymbols(arches []*archCtx, ignore map[string]bool, suppressed *int) ([]Finding, int) {
	aggs := make(map[string]*symAgg)
	get := func(key string) *symAgg {
		a := aggs[key]
		if a == nil {
			a = &symAgg{}
			aggs[key] = a
		}
		return a
	}
	unknown := 0
	for _, ac := range arches {
		flagged, applicable, unk := checkArchSymbols(ac)
		unknown += unk
		for key := range applicable {
			get(key).applicable++
		}
		for _, si := range flagged {
			a := get(si.key)
			a.flagged++
			if !a.has {
				a.f = si.f
				a.has = true
			}
		}
	}
	keys := make([]string, 0, len(aggs))
	for k := range aggs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Finding
	for _, k := range keys {
		a := aggs[k]
		if !a.has || a.flagged != a.applicable {
			continue
		}
		if ignored(ignore, a.f.Symbol) {
			*suppressed++
			continue
		}
		out = append(out, a.f)
	}
	return out, unknown
}

// checkArchSymbols runs the three symbol checks in one architecture.
// applicable records every check key that could have fired here, so the
// aggregator can demand unanimity across declaring architectures.
func checkArchSymbols(ac *archCtx) (flagged []symIssue, applicable map[string]bool, unknown int) {
	kt := ac.kt
	applicable = make(map[string]bool)
	names := kt.Names()
	sort.Strings(names)
	for _, name := range names {
		s := kt.Symbol(name)
		if s == nil {
			continue
		}
		deadKey := "dead\x00" + name
		chainKey := "chain\x00" + name
		applicable[deadKey] = true
		applicable[chainKey] = true

		// Select targets are exempt from dependency-based deadness: a
		// select raises them regardless of their own depends-on.
		ownDead := presence.SatYes
		if !ac.selects[name] && s.DependsOn != nil {
			enabled, _ := presence.DependsFormulas(kt, s.DependsOn)
			enabled = presence.Substitute(enabled, presence.UndeclaredKnow(kt))
			ownDead = presence.Decide(enabled)
			switch ownDead {
			case presence.SatNo:
				flagged = append(flagged, symIssue{deadKey, Finding{
					Category: CatDeadSymbol,
					File:     s.DefFile,
					Symbol:   name,
					Detail: fmt.Sprintf("depends on %s is unsatisfiable: no configuration can enable %s",
						s.DependsOn.String(), name),
				}})
			case presence.SatUnknown:
				unknown++
			}
		}

		// Chain contradiction: each link satisfiable on its own, but the
		// transitive closure of depends-on implications is not. Skipped
		// when the symbol is already dead by its own clause.
		if !ac.selects[name] && s.DependsOn != nil && ownDead != presence.SatNo {
			ch := chainFormula(ac, name)
			switch presence.Decide(ch) {
			case presence.SatNo:
				flagged = append(flagged, symIssue{chainKey, Finding{
					Category: CatContradiction,
					File:     s.DefFile,
					Symbol:   name,
					Detail: fmt.Sprintf("depends-on chain of %s is contradictory: the transitive dependency closure admits no configuration",
						name),
				}})
			case presence.SatUnknown:
				unknown++
			}
		}

		// Select-vs-depends: the selector is enableable, but every
		// configuration that enables it violates the selected symbol's
		// own dependencies (which `select` forcibly ignores).
		for i, sel := range s.Selects {
			selKey := fmt.Sprintf("sel\x00%s\x00%d\x00%s", name, i, sel.Target)
			applicable[selKey] = true
			tgt := kt.Symbol(sel.Target)
			if tgt == nil || tgt.DependsOn == nil {
				continue
			}
			base := chainFormula(ac, name)
			if sel.Cond != nil {
				condEn, _ := presence.DependsFormulas(kt, sel.Cond)
				base = presence.And(base, presence.Substitute(condEn, presence.UndeclaredKnow(kt)))
			}
			switch presence.Decide(base) {
			case presence.SatNo:
				continue // selector itself unreachable: reported elsewhere
			case presence.SatUnknown:
				unknown++
				continue
			}
			tgtEn, _ := presence.DependsFormulas(kt, tgt.DependsOn)
			tgtEn = presence.Substitute(tgtEn, presence.UndeclaredKnow(kt))
			switch presence.Decide(presence.And(base, tgtEn)) {
			case presence.SatNo:
				flagged = append(flagged, symIssue{selKey, Finding{
					Category: CatContradiction,
					File:     s.DefFile,
					Symbol:   name,
					Detail: fmt.Sprintf("select %s conflicts with its dependency (%s): every configuration enabling %s violates it",
						sel.Target, tgt.DependsOn.String(), name),
				}})
			case presence.SatUnknown:
				unknown++
			}
		}
	}
	return flagged, applicable, unknown
}

// chainFormula conjoins the symbol's enabled-formula with the depends-on
// implications of every symbol reachable through it, to a fixed depth.
// Each symbol is constrained at most once, so self-dependencies and
// cycles terminate; select targets stay unconstrained (a select can raise
// them past their depends-on). Symbols beyond the depth bound stay free,
// which only widens satisfiability and keeps SatNo proofs sound.
func chainFormula(ac *archCtx, name string) presence.Formula {
	kt := ac.kt
	f := presence.SymbolEnabled(kt, name)
	done := make(map[string]bool)
	for depth := 0; depth < 8; depth++ {
		added := false
		for _, sym := range presence.Symbols(f) {
			if !presence.IsConfigSymbol(sym) || done[sym] {
				continue
			}
			done[sym] = true
			base := strings.TrimPrefix(sym, "CONFIG_")
			root, isMod := base, false
			if kt.Symbol(base) == nil {
				r, ok := strings.CutSuffix(base, "_MODULE")
				if !ok {
					continue
				}
				root, isMod = r, true
			}
			s := kt.Symbol(root)
			if s == nil || ac.selects[root] || s.DependsOn == nil {
				continue
			}
			enabled, isYes := presence.DependsFormulas(kt, s.DependsOn)
			yVar := presence.Symbol("CONFIG_" + root)
			mVar := presence.Symbol("CONFIG_" + root + "_MODULE")
			switch {
			case isMod:
				f = presence.And(f, presence.Implies(mVar, enabled))
			case s.Type == kconfig.TypeTristate:
				f = presence.And(f, presence.Implies(yVar, isYes))
			default:
				f = presence.And(f, presence.Implies(yVar, enabled))
			}
			added = true
		}
		if !added {
			break
		}
	}
	return presence.Substitute(f, presence.UndeclaredKnow(kt))
}
