package audit

import (
	"bytes"
	"strings"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/metrics"
)

const testKconfig = `config FOO
	bool "foo"

config BAR
	tristate "bar"
	depends on FOO

config DEAD
	bool "dead"
	depends on FOO && !FOO

config CHA
	bool "cha"
	depends on CHB

config CHB
	bool "chb"
	depends on !CHA

config GUARD
	bool "guard"

config SELDEP
	bool "seldep"
	depends on GUARD

config SELECTOR
	bool "selector"
	depends on !GUARD
	select SELDEP
`

const testFooC = `int base;
#ifdef CONFIG_PHANTOM
int phantom;
#endif
#ifndef CONFIG_FOO
int nofoo;
#endif
#if 0
int never;
#endif
#ifdef CONFIG_BAR
int bar;
#endif
`

func fixtureTree() *fstree.Tree {
	t := fstree.New()
	t.Write("Kconfig", testKconfig)
	t.Write("Makefile", "obj-y += drivers/\n")
	t.Write("drivers/Makefile", "obj-$(CONFIG_FOO) += foo.o\nobj-$(CONFIG_GHOST) += ghost.o\n")
	t.Write("drivers/foo.c", testFooC)
	return t
}

func findingWith(fs []Finding, cat Category, sym string) *Finding {
	for i := range fs {
		if fs[i].Category == cat && fs[i].Symbol == sym {
			return &fs[i]
		}
	}
	return nil
}

func TestRunAllCategories(t *testing.T) {
	rep, err := Run(Params{Tree: fixtureTree()})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Arches, []string{"all"}; len(got) != 1 || got[0] != want[0] {
		t.Errorf("arches = %v, want %v", got, want)
	}
	if rep.Files != 1 || rep.Symbols != 8 || rep.GateRefs != 2 {
		t.Errorf("files/symbols/gaterefs = %d/%d/%d, want 1/8/2", rep.Files, rep.Symbols, rep.GateRefs)
	}
	wantCounts := map[Category]int{CatUndefinedRef: 2, CatDeadSymbol: 1, CatContradiction: 2, CatDeadCode: 1}
	for c, n := range wantCounts {
		if rep.Counts[c] != n {
			t.Errorf("counts[%s] = %d, want %d\n%s", c, rep.Counts[c], n, rep.Text())
		}
	}
	if len(rep.Findings) != 6 {
		t.Fatalf("got %d findings, want 6:\n%s", len(rep.Findings), rep.Text())
	}

	if f := findingWith(rep.Findings, CatUndefinedRef, "GHOST"); f == nil || f.File != "drivers/Makefile" || f.Line != 2 {
		t.Errorf("GHOST gate ref finding wrong: %+v", f)
	}
	if f := findingWith(rep.Findings, CatUndefinedRef, "PHANTOM"); f == nil || f.File != "drivers/foo.c" || f.Line != 3 {
		t.Errorf("PHANTOM code ref finding wrong: %+v", f)
	}
	if f := findingWith(rep.Findings, CatDeadSymbol, "DEAD"); f == nil || f.File != "Kconfig" {
		t.Errorf("DEAD symbol finding wrong: %+v", f)
	}
	if f := findingWith(rep.Findings, CatContradiction, "CHA"); f == nil {
		t.Errorf("missing chain contradiction on CHA:\n%s", rep.Text())
	}
	if f := findingWith(rep.Findings, CatContradiction, "SELECTOR"); f == nil || !strings.Contains(f.Detail, "SELDEP") {
		t.Errorf("select-vs-depends finding wrong: %+v", f)
	}
	if f := findingWith(rep.Findings, CatDeadCode, "FOO"); f == nil || f.File != "drivers/foo.c" || f.Line != 6 || f.EndLine != 6 {
		t.Errorf("dead-code finding wrong: %+v", f)
	}

	// CHB is satisfiable (CHB=y, CHA=n) and must not be flagged; the #if 0
	// block and the live CONFIG_BAR block must not appear either.
	if f := findingWith(rep.Findings, CatContradiction, "CHB"); f != nil {
		t.Errorf("CHB wrongly flagged: %+v", f)
	}
	for _, f := range rep.Findings {
		if f.Category == CatDeadCode && f.Line != 6 {
			t.Errorf("unexpected dead-code finding: %+v", f)
		}
	}
}

func TestRunIgnoreSuppresses(t *testing.T) {
	ignore := map[string]bool{
		"PHANTOM": true, "GHOST": true, "DEAD": true,
		"CHA": true, "SELECTOR": true, "FOO": true,
	}
	rep, err := Run(Params{Tree: fixtureTree(), Ignore: ignore})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("with full baseline, got %d findings:\n%s", len(rep.Findings), rep.Text())
	}
	if rep.Suppressed != 6 {
		t.Errorf("suppressed = %d, want 6", rep.Suppressed)
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var outs [][]byte
	for _, w := range []int{1, 4} {
		rep, err := Run(Params{Tree: fixtureTree(), Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, b)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("JSON differs between workers=1 and workers=4:\n%s\n---\n%s", outs[0], outs[1])
	}
}

func TestRunMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	rep, err := Run(Params{Tree: fixtureTree(), Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("audit_files").Value(); got != uint64(rep.Files) {
		t.Errorf("audit_files = %d, want %d", got, rep.Files)
	}
	if got := reg.Counter("audit_findings", metrics.L("category", string(CatDeadCode))).Value(); got != 1 {
		t.Errorf("audit_findings{dead-code} = %d, want 1", got)
	}
}

func TestRunNoKconfig(t *testing.T) {
	tr := fstree.New()
	tr.Write("a.c", "int x;\n")
	if _, err := Run(Params{Tree: tr}); err == nil {
		t.Fatal("expected error on tree without Kconfig root")
	}
}
