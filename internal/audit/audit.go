// Package audit implements the whole-tree configuration-mismatch analysis:
// it walks every Kbuild gate, Kconfig symbol, and preprocessor conditional
// of a source tree and reports typed findings in the defect classes of
// El-Sharkawy et al.'s configuration-mismatch study — references to
// undefined CONFIG_* symbols, symbols dead by construction, contradictory
// dependency chains and select-vs-depends conflicts, and #if blocks no
// architecture/configuration valuation can ever compile.
//
// Unlike the per-commit static pre-pass (internal/core), which proves
// changed lines dead to skip builds, the audit quantifies over the whole
// tree and over every architecture: a block is reported dead only when its
// presence formula is unsatisfiable under each architecture's Kconfig
// constraints. All proofs go through presence.Decide, whose explicit
// SatUnknown result guarantees a bounded-enumeration give-up is never
// misread as a proof; unknowns are counted, not reported.
package audit

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/metrics"
	"jmake/internal/sched"
	"jmake/internal/trace"
)

// Category classifies a finding. The four categories are disjoint by
// construction: an undefined symbol disqualifies its block from dead-code
// analysis, a dead symbol is not re-reported as a contradiction, and a
// select conflict is keyed on the selector, not the target.
type Category string

const (
	// CatUndefinedRef is a CONFIG_* reference — in an obj-$(CONFIG_X)
	// Kbuild rule or a preprocessor conditional — to a symbol no Kconfig
	// file of any architecture declares.
	CatUndefinedRef Category = "undefined-reference"
	// CatDeadSymbol is a declared symbol whose own `depends on` expression
	// is unsatisfiable in every architecture that declares it.
	CatDeadSymbol Category = "dead-symbol"
	// CatContradiction is a symbol whose transitive depends-on chain is
	// contradictory although each link is locally satisfiable, or a
	// `select` whose every enabling configuration violates the selected
	// symbol's dependencies.
	CatContradiction Category = "contradiction"
	// CatDeadCode is a conditional block whose presence formula (#if stack
	// ∧ Kbuild gate ∧ Kconfig constraints) is unsatisfiable under every
	// architecture — tree-wide dead code, distinct from the per-commit
	// StatusStaticDead classification.
	CatDeadCode Category = "dead-code"
)

// Categories lists every category in report order.
var Categories = []Category{CatUndefinedRef, CatDeadSymbol, CatContradiction, CatDeadCode}

func catRank(c Category) int {
	for i, k := range Categories {
		if k == c {
			return i
		}
	}
	return len(Categories)
}

// Finding is one mismatch. Line is 0 for Kconfig-level findings (the
// symbol parser does not track line numbers); EndLine is set only for
// dead-code block findings.
type Finding struct {
	Category Category `json:"category"`
	File     string   `json:"file"`
	Line     int      `json:"line,omitempty"`
	EndLine  int      `json:"end_line,omitempty"`
	// Symbol is the Kconfig symbol name without the CONFIG_ prefix; for
	// dead-code findings it names the first configuration symbol of the
	// block's condition.
	Symbol string `json:"symbol,omitempty"`
	Detail string `json:"detail"`
}

// Report is the audit result. Findings are in canonical order (category
// rank, file, line, symbol, detail) and Counts always carries all four
// category keys, so the JSON encoding is byte-identical across runs and
// worker counts.
type Report struct {
	Arches     []string         `json:"arches"`
	Files      int              `json:"files"`
	Symbols    int              `json:"symbols"`
	GateRefs   int              `json:"gate_refs"`
	Counts     map[Category]int `json:"counts"`
	Unknown    int              `json:"unknown"`
	Suppressed int              `json:"suppressed"`
	Findings   []Finding        `json:"findings"`
}

// Params configures a run. Only Tree is required.
type Params struct {
	Tree *fstree.Tree
	// Ignore suppresses findings whose symbol (or its _MODULE root) is in
	// the set — kernelgen trees record their intentional escape-class
	// fixtures here (Manifest.AuditBaseline) so a clean generated tree
	// audits to zero findings.
	Ignore map[string]bool
	// Workers parallelizes the per-file scan; results are byte-identical
	// at any value. Values below 1 mean 1.
	Workers int
	// Reg receives audit_* counters when non-nil.
	Reg *metrics.Registry
	// Rec receives deterministic virtual-time audit spans when non-nil.
	Rec *trace.Recorder
	// Kconfig overrides how an architecture's tree is parsed; the daemon
	// passes the warm Session's memoized provider. nil parses fresh.
	Kconfig func(archName, rootPath string) (*kconfig.Tree, error)
}

// archCtx is one architecture's Kconfig knowledge.
type archCtx struct {
	name    string
	root    string
	kt      *kconfig.Tree
	selects map[string]bool
}

// Deterministic virtual-time prices for trace spans: proportional to work
// items, independent of wall clock and worker count.
const (
	symbolCost  = 20 * time.Microsecond
	gateRefCost = 5 * time.Microsecond
	fileCost    = 300 * time.Microsecond
)

// Run audits the tree and returns the report. An error means the tree has
// no Kconfig root or an architecture's Kconfig failed to parse — the audit
// refuses to report "no findings" when it could not load the symbol
// tables it checks against.
func Run(p Params) (*Report, error) {
	t := p.Tree
	arches, err := discoverArches(p)
	if err != nil {
		return nil, err
	}

	// A symbol declared by any architecture's tree — including broken or
	// quirk architectures — is not "undefined"; per-arch deadness handles
	// the rest.
	declared := make(map[string]bool)
	for _, ac := range arches {
		for _, name := range ac.kt.Names() {
			declared[name] = true
		}
	}

	rep := &Report{
		Counts:   make(map[Category]int, len(Categories)),
		Findings: []Finding{},
	}
	for _, ac := range arches {
		rep.Arches = append(rep.Arches, ac.name)
	}
	rep.Symbols = len(declared)

	// Kconfig symbol checks: dead symbols, contradictory chains, select
	// conflicts. A symbol-level finding must hold in every architecture
	// that declares the symbol — an option alive somewhere is not dead.
	symFindings, unknown := checkSymbols(arches, p.Ignore, &rep.Suppressed)
	rep.Unknown += unknown
	rep.Findings = append(rep.Findings, symFindings...)
	p.Rec.Leaf("audit-symbols", time.Duration(rep.Symbols)*symbolCost,
		trace.A("symbols", fmt.Sprint(rep.Symbols)))

	// Kbuild gate references: every obj-$(CONFIG_X) rule in the tree.
	refFindings, nRefs := gateRefFindings(t, arches[0].name, declared, p.Ignore, &rep.Suppressed)
	rep.GateRefs = nRefs
	rep.Findings = append(rep.Findings, refFindings...)
	p.Rec.Leaf("audit-gates", time.Duration(nRefs)*gateRefCost,
		trace.A("gate_refs", fmt.Sprint(nRefs)))

	// Per-file scan: undefined references in conditionals and tree-wide
	// dead blocks. Files are processed in sorted order with in-order
	// result merge, so the output is invariant under Workers.
	var files []string
	for _, path := range t.Paths() {
		if strings.HasSuffix(path, ".c") || strings.HasSuffix(path, ".h") {
			files = append(files, path)
		}
	}
	sort.Strings(files)
	rep.Files = len(files)
	mc := kbuild.NewMakefileCache(t)
	hasRootMk := t.Exists("Makefile")
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	scans, _ := sched.Collect(len(files), sched.Options{Workers: workers}, func(i int) fileScan {
		return scanFile(t, files[i], arches, declared, p.Ignore, mc, hasRootMk)
	})
	for _, fs := range scans {
		rep.Findings = append(rep.Findings, fs.findings...)
		rep.Unknown += fs.unknown
		rep.Suppressed += fs.suppressed
	}
	p.Rec.Leaf("audit-files", time.Duration(len(files))*fileCost,
		trace.A("files", fmt.Sprint(len(files))))

	sortFindings(rep.Findings)
	for _, c := range Categories {
		rep.Counts[c] = 0
	}
	for _, f := range rep.Findings {
		rep.Counts[f.Category]++
	}

	if p.Reg != nil {
		p.Reg.Counter("audit_files").Add(uint64(rep.Files))
		p.Reg.Counter("audit_symbols").Add(uint64(rep.Symbols))
		p.Reg.Counter("audit_gate_refs").Add(uint64(rep.GateRefs))
		p.Reg.Counter("audit_sat_unknown").Add(uint64(rep.Unknown))
		p.Reg.Counter("audit_suppressed").Add(uint64(rep.Suppressed))
		for _, c := range Categories {
			p.Reg.Counter("audit_findings", metrics.L("category", string(c))).Add(uint64(rep.Counts[c]))
		}
	}
	return rep, nil
}

// discoverArches finds the Kconfig roots: one per arch/<name>/Kconfig, or
// the tree root's Kconfig as a single pseudo-architecture ("all") when no
// arch directories exist (fixture corpora).
func discoverArches(p Params) ([]*archCtx, error) {
	t := p.Tree
	var out []*archCtx
	for _, path := range t.Paths() {
		parts := strings.Split(path, "/")
		if len(parts) == 3 && parts[0] == "arch" && parts[2] == "Kconfig" {
			out = append(out, &archCtx{name: parts[1], root: path})
		}
	}
	if len(out) == 0 {
		if t.Exists("Kconfig") {
			out = append(out, &archCtx{name: "all", root: "Kconfig"})
		} else {
			return nil, fmt.Errorf("audit: no Kconfig root found (neither arch/*/Kconfig nor Kconfig)")
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	parse := p.Kconfig
	if parse == nil {
		parse = func(_, root string) (*kconfig.Tree, error) {
			return kconfig.Parse(kbuild.TreeSource{T: t}, root)
		}
	}
	for _, ac := range out {
		kt, err := parse(ac.name, ac.root)
		if err != nil {
			return nil, fmt.Errorf("audit: parsing %s: %w", ac.root, err)
		}
		ac.kt = kt
		ac.selects = kt.SelectTargets()
	}
	return out, nil
}

// sortFindings puts findings in the canonical report order.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if ra, rb := catRank(a.Category), catRank(b.Category); ra != rb {
			return ra < rb
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Symbol != b.Symbol {
			return a.Symbol < b.Symbol
		}
		return a.Detail < b.Detail
	})
}

// ignored reports whether a symbol name (without prefix) or its _MODULE
// root is in the suppression set.
func ignored(ignore map[string]bool, sym string) bool {
	if len(ignore) == 0 || sym == "" {
		return false
	}
	if ignore[sym] {
		return true
	}
	if root, ok := strings.CutSuffix(sym, "_MODULE"); ok && ignore[root] {
		return true
	}
	return false
}

// declaredRoot reports whether name (without prefix) is declared in some
// architecture, accepting CONFIG_X_MODULE spellings of a declared X.
func declaredRoot(declared map[string]bool, name string) bool {
	if declared[name] {
		return true
	}
	if root, ok := strings.CutSuffix(name, "_MODULE"); ok && declared[root] {
		return true
	}
	return false
}
