package audit

import (
	"fmt"
	"sort"
	"strings"

	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/presence"
)

// gateRefFindings checks every obj-$(CONFIG_X) rule in the tree against
// the union of the architectures' symbol tables. The rule set is the same
// under any architecture name (the substituted $(SRCARCH) never appears
// inside a CONFIG variable), so one enumeration suffices.
func gateRefFindings(t *fstree.Tree, archName string, declared, ignore map[string]bool, suppressed *int) ([]Finding, int) {
	refs := kbuild.GateRefs(t, archName)
	var out []Finding
	for _, r := range refs {
		if declaredRoot(declared, r.Var) {
			continue
		}
		if ignored(ignore, r.Var) {
			*suppressed++
			continue
		}
		out = append(out, Finding{
			Category: CatUndefinedRef,
			File:     r.File,
			Line:     r.Line,
			Symbol:   r.Var,
			Detail:   fmt.Sprintf("obj-$(CONFIG_%s) references a symbol no Kconfig file declares", r.Var),
		})
	}
	return out, len(refs)
}

// fileScan is one file's audit result.
type fileScan struct {
	findings            []Finding
	unknown, suppressed int
}

// scanFile audits one .c/.h file: CONFIG_* references in its conditionals
// against the declared-symbol union, and each conditional block's presence
// formula against every applicable architecture.
func scanFile(t *fstree.Tree, path string, arches []*archCtx, declared, ignore map[string]bool,
	mc *kbuild.MakefileCache, hasRootMk bool) fileScan {
	var fs fileScan
	content, err := t.Read(path)
	if err != nil {
		return fs
	}
	fc := presence.Analyze(path, content)
	regs := fc.Regions()
	if len(regs) == 0 {
		return fs
	}

	// Undefined references: one finding per (file, symbol), anchored at the
	// first line the symbol governs.
	undefAt := make(map[string]int)
	for _, rg := range regs {
		for _, sym := range presence.Symbols(rg.Cond) {
			if !presence.IsConfigSymbol(sym) {
				continue
			}
			base := strings.TrimPrefix(sym, "CONFIG_")
			if declaredRoot(declared, base) {
				continue
			}
			if at, ok := undefAt[base]; !ok || rg.Start < at {
				undefAt[base] = rg.Start
			}
		}
	}
	undefSyms := make([]string, 0, len(undefAt))
	for s := range undefAt {
		undefSyms = append(undefSyms, s)
	}
	sort.Strings(undefSyms)
	for _, sym := range undefSyms {
		if ignored(ignore, sym) {
			fs.suppressed++
			continue
		}
		fs.findings = append(fs.findings, Finding{
			Category: CatUndefinedRef,
			File:     path,
			Line:     undefAt[sym],
			Symbol:   sym,
			Detail:   fmt.Sprintf("conditional references CONFIG_%s, which no Kconfig file declares", sym),
		})
	}

	// Dead blocks. A file under arch/<A>/ is only ever compiled for A;
	// everything else must be dead under every architecture. Kbuild gates
	// apply to .c files reached from a root Makefile; a broken descent
	// chain drops the gate (over-approximation, sound for dead proofs).
	archList := arches
	if rest, ok := strings.CutPrefix(path, "arch/"); ok {
		archList = nil
		if i := strings.IndexByte(rest, '/'); i > 0 {
			for _, ac := range arches {
				if ac.name == rest[:i] {
					archList = []*archCtx{ac}
					break
				}
			}
		}
	}
	gated := strings.HasSuffix(path, ".c") && hasRootMk
	for _, rg := range regs {
		// Literal #if 0 (and the #else arm of #if 1) is the universal
		// idiom for commented-out code, not a configuration mismatch.
		if rg.Cond == presence.False {
			continue
		}
		syms := presence.Symbols(rg.Cond)
		hasConfig, hasUndef := false, false
		for _, sym := range syms {
			if !presence.IsConfigSymbol(sym) {
				continue
			}
			hasConfig = true
			if !declaredRoot(declared, strings.TrimPrefix(sym, "CONFIG_")) {
				hasUndef = true
			}
		}
		// Blocks without configuration symbols are out of scope, and blocks
		// over undefined symbols are already reported as undefined
		// references — proving them dead would double-count one defect.
		if !hasConfig || hasUndef {
			continue
		}
		dead := len(archList) > 0
		for _, ac := range archList {
			var gate *kbuild.Gate
			if gated {
				if g, err := mc.FileGate(path, ac.name); err == nil {
					gate = &g
				}
			}
			switch presence.Decide(presence.ArchFormula(ac.kt, ac.selects, rg.Cond, gate)) {
			case presence.SatYes:
				dead = false
			case presence.SatUnknown:
				fs.unknown++
				dead = false
			}
			if !dead {
				break
			}
		}
		if !dead {
			continue
		}
		supp := false
		firstSym := ""
		for _, sym := range syms {
			if !presence.IsConfigSymbol(sym) {
				continue
			}
			base := strings.TrimPrefix(sym, "CONFIG_")
			if firstSym == "" {
				firstSym = base
			}
			if ignored(ignore, base) {
				supp = true
			}
		}
		if supp {
			fs.suppressed++
			continue
		}
		fs.findings = append(fs.findings, Finding{
			Category: CatDeadCode,
			File:     path,
			Line:     rg.Start,
			EndLine:  rg.End,
			Symbol:   firstSym,
			Detail:   fmt.Sprintf("block is unsatisfiable in every architecture: %s", rg.Cond.String()),
		})
	}
	return fs
}
