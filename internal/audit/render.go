package audit

import (
	"encoding/json"
	"fmt"
	"strings"
)

// JSON renders the report as indented JSON with a trailing newline — the
// single serializer shared by jmake-lint, the golden tests, and the
// jmaked /audit endpoint, so all three are byte-identical by construction.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the human-readable report: a summary header, per-category
// counts, and one line per finding in canonical order.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d finding(s) across %d file(s), %d symbol(s), %d gate ref(s) [arches: %s]\n",
		len(r.Findings), r.Files, r.Symbols, r.GateRefs, strings.Join(r.Arches, " "))
	for _, c := range Categories {
		fmt.Fprintf(&b, "  %-20s %d\n", string(c)+":", r.Counts[c])
	}
	if r.Unknown > 0 {
		fmt.Fprintf(&b, "  %-20s %d (formulas beyond the SAT bound; never reported as findings)\n", "unknown:", r.Unknown)
	}
	if r.Suppressed > 0 {
		fmt.Fprintf(&b, "  %-20s %d (baseline-ignored)\n", "suppressed:", r.Suppressed)
	}
	for _, f := range r.Findings {
		loc := f.File
		if f.Line > 0 {
			loc = fmt.Sprintf("%s:%d", f.File, f.Line)
			if f.EndLine > f.Line {
				loc = fmt.Sprintf("%s-%d", loc, f.EndLine)
			}
		}
		sym := ""
		if f.Symbol != "" {
			sym = " " + f.Symbol + ":"
		}
		fmt.Fprintf(&b, "%s: [%s]%s %s\n", loc, f.Category, sym, f.Detail)
	}
	return b.String()
}
