package incr

import (
	"context"
	"fmt"

	"jmake/internal/ccache"
	"jmake/internal/core"
	"jmake/internal/eval"
	"jmake/internal/fstree"
	"jmake/internal/sched"
	"jmake/internal/vclock"
	"jmake/internal/vcs"
)

// Options configure a Follower.
type Options struct {
	// Checker tunes the per-commit JMake pipeline (same knobs as one-shot
	// checks; byte-identity holds per option set).
	Checker core.Options
	// Workers bounds concurrent checks inside one non-structural batch of
	// Run. Structural commits are barriers. 0 or 1 checks sequentially —
	// the only mode with per-commit effective-cost attribution.
	Workers int
	// Cold disables all session reuse: every Step builds a fresh session
	// over the advanced tree, exactly like `jmake -commit`. This is the
	// comparator mode the invalidation tests and follow-smoke diff
	// against; it is deliberately slow.
	Cold bool
}

// StepResult is one followed commit's outcome.
type StepResult struct {
	Commit string
	// Report is the checker's verdict — byte-identical (under the same
	// JSON rendering) to a from-scratch check of the same commit. A
	// commit with no checker-relevant files yields a zero-plan report,
	// not an error.
	Report *core.PatchReport
	// Err is a per-commit check failure; the follower's tree and session
	// state stay consistent, so the stream can continue past it.
	Err error
	// Files counts checker-relevant files; Touched counts every path the
	// commit changed.
	Files   int
	Touched int
	// Structural marks commits that forced session invalidation; Refresh
	// details what was dropped.
	Structural bool
	Refresh    core.RefreshSummary
	// InvalidatedTUs counts translation units whose transitive inputs the
	// commit changed (reverse dependency index + cache manifests).
	InvalidatedTUs int
	// VirtualSeconds is the report's full recompute price. It is also the
	// cold baseline: a cold check of this commit reports the same total.
	VirtualSeconds float64
	// EffectiveSeconds is VirtualSeconds minus what the warm session's
	// ledgers absorbed during this check. Only measured when the commit
	// was checked sequentially (EffectiveMeasured); concurrent batches
	// interleave ledger writes, so per-commit attribution would lie.
	EffectiveSeconds  float64
	EffectiveMeasured bool
}

// Follower consumes a commit stream with true incremental invalidation:
// one warm session, one live working tree, per-commit cost proportional
// to the diff. Not safe for concurrent use; one goroutine drives it.
type Follower struct {
	repo  *vcs.Repo
	tree  *fstree.Tree
	sess  *core.Session
	index *Index
	// cursor is the commit the tree and session currently reflect.
	cursor string
	opts   Options
}

// NewFollower seeds a follower at baseID: one full checkout, one session
// build, one index scan — the only tree-proportional work the follower
// ever does (in warm mode).
func NewFollower(repo *vcs.Repo, baseID string, opts Options) (*Follower, error) {
	tree, err := repo.CheckoutTree(baseID)
	if err != nil {
		return nil, fmt.Errorf("incr: %w", err)
	}
	f := &Follower{
		repo:   repo,
		tree:   tree,
		cursor: baseID,
		opts:   opts,
		index:  NewIndex(tree),
	}
	if !opts.Cold {
		sess, err := core.NewSession(tree)
		if err != nil {
			return nil, fmt.Errorf("incr: %w", err)
		}
		sess.EnableWarm()
		f.sess = sess
	}
	return f, nil
}

// Cursor returns the commit the follower currently reflects.
func (f *Follower) Cursor() string { return f.cursor }

// Session exposes the warm session (nil in cold mode), e.g. for ledger
// inspection in tests.
func (f *Follower) Session() *core.Session { return f.sess }

// savedSeconds snapshots every warmth ledger the session carries: the
// config and set-up ledgers plus the result cache's saved-virtual total.
func (f *Follower) savedSeconds() float64 {
	if f.sess == nil {
		return 0
	}
	wl := f.sess.WarmSaved()
	saved := wl.ConfigSaved + wl.SetupSaved
	if st, ok := f.sess.ResultCacheStats(); ok {
		saved += st.SavedVirtual
	}
	return saved.Seconds()
}

// advanceOne applies commit c to the working tree and returns its changed
// paths. O(diff), never O(tree).
func (f *Follower) advanceOne(c *vcs.Commit) []string {
	paths := make([]string, 0, len(c.Changes))
	for _, ch := range c.Changes {
		paths = append(paths, ch.Path)
		if ch.New == "" {
			_ = f.tree.Remove(ch.Path)
			continue
		}
		f.tree.Write(ch.Path, f.repo.Blob(ch.New))
	}
	return paths
}

// sequenceTo lists every commit in (cursor, id], oldest first. The stream
// the caller checks may skip merges and empty diffs, but the follower must
// apply all of them to keep tree and session in sync.
func (f *Follower) sequenceTo(id string) ([]string, error) {
	seq, err := f.repo.Since(f.cursor)
	if err != nil {
		return nil, fmt.Errorf("incr: %w", err)
	}
	for i, cid := range seq {
		if cid == id {
			return seq[:i+1], nil
		}
	}
	return nil, fmt.Errorf("incr: commit %s is not after follower cursor %s", id, f.cursor)
}

// Step advances the follower through every commit up to and including id
// and checks id, returning its result. Intermediate commits (merges,
// empty diffs, anything the caller's stream filtered out) are applied and
// refreshed but not checked.
func (f *Follower) Step(id string) (StepResult, error) {
	seq, err := f.sequenceTo(id)
	if err != nil {
		return StepResult{Commit: id, Err: err}, err
	}
	var res StepResult
	for _, cid := range seq {
		last := cid == id
		r, err := f.apply(cid, last)
		if err != nil {
			return r, err
		}
		if last {
			res = r
		}
	}
	if res.Err == nil {
		f.check(&res, f.tree, true)
	}
	return res, res.Err
}

// apply advances tree, index and session past one commit. When stats is
// true it also prices the commit's blast radius (done before the index
// update, so dependents reflect the edges the commit found in place).
func (f *Follower) apply(cid string, stats bool) (StepResult, error) {
	c, err := f.repo.Get(cid)
	if err != nil {
		return StepResult{Commit: cid, Err: err}, err
	}
	paths := f.advanceOne(c)
	res := StepResult{
		Commit:     cid,
		Touched:    len(paths),
		Structural: Structural(paths),
	}
	if stats {
		res.InvalidatedTUs = len(f.index.Dependents(f.tree, f.resultCache(), paths))
	}
	f.index.Update(f.tree, paths)
	if f.sess != nil {
		sum, err := f.sess.Refresh(f.tree, paths)
		if err != nil {
			res.Err = err
			f.cursor = cid
			return res, err
		}
		res.Refresh = sum
	}
	f.cursor = cid
	return res, nil
}

// resultCache returns the warm session's result cache (nil in cold mode).
func (f *Follower) resultCache() *ccache.Cache {
	if f.sess == nil {
		return nil
	}
	return f.sess.ResultCache()
}

// check runs the actual JMake check of res.Commit over snapshot, exactly
// replicating the from-scratch path: FileDiffs → relevance filter →
// default virtual-clock model seeded by the commit ID's length →
// CheckPatch. measured enables per-commit effective-cost attribution via
// ledger deltas (sequential callers only).
func (f *Follower) check(res *StepResult, snapshot *fstree.Tree, measured bool) {
	fds, err := f.repo.FileDiffs(res.Commit)
	if err != nil {
		res.Err = err
		return
	}
	kept := fds[:0:0]
	for _, fd := range fds {
		if eval.RelevantPath(fd.NewPath) {
			kept = append(kept, fd)
		}
	}
	res.Files = len(kept)

	sess := f.sess
	if sess == nil {
		// Cold comparator: a fresh session per commit, like CheckCommit.
		sess, err = core.NewSession(snapshot)
		if err != nil {
			res.Err = err
			return
		}
	}
	before := 0.0
	if measured {
		before = f.savedSeconds()
	}
	checker := sess.Checker(snapshot, vclock.DefaultModel(uint64(len(res.Commit))), f.opts.Checker)
	report, err := checker.CheckPatch(res.Commit, kept)
	if err != nil {
		res.Err = err
		return
	}
	res.Report = report
	res.VirtualSeconds = report.Total.Seconds()
	if measured {
		res.EffectiveMeasured = true
		res.EffectiveSeconds = res.VirtualSeconds - (f.savedSeconds() - before)
		if res.EffectiveSeconds < 0 {
			res.EffectiveSeconds = 0
		}
	}
}

// Run follows a stream of commit IDs (each must be after the previous and
// after the cursor), emitting one StepResult per requested commit in
// order. emit returning false stops the stream early. With Workers > 1,
// runs of non-structural commits are checked concurrently over per-commit
// tree snapshots — reports are worker-count- and warmth-invariant, so the
// emitted bytes match the sequential stream; only per-commit effective
// attribution is lost (EffectiveMeasured false). Structural commits are
// barriers: the pending batch drains before the session refreshes.
func (f *Follower) Run(ids []string, emit func(StepResult) bool) error {
	if len(ids) == 0 {
		return nil
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	seq, err := f.sequenceTo(ids[len(ids)-1])
	if err != nil {
		return err
	}
	seqSet := make(map[string]bool, len(seq))
	for _, cid := range seq {
		seqSet[cid] = true
	}
	for _, id := range ids {
		if !seqSet[id] {
			return fmt.Errorf("incr: commit %s is not after follower cursor %s (or out of order)", id, f.cursor)
		}
	}

	sequential := f.opts.Workers <= 1 || f.opts.Cold
	type pending struct {
		res  StepResult
		snap *fstree.Tree
	}
	var batch []pending
	stopped := false
	flush := func() {
		if len(batch) == 0 || stopped {
			batch = nil
			return
		}
		sched.MapCtx(context.Background(), len(batch),
			sched.Options{Workers: f.opts.Workers},
			func(i int) StepResult {
				r := batch[i].res
				f.check(&r, batch[i].snap, false)
				return r
			},
			func(i int, r StepResult) {
				if !stopped && !emit(r) {
					stopped = true
				}
			})
		batch = nil
	}

	for _, cid := range seq {
		if stopped {
			break
		}
		checkIt := want[cid]
		if sequential {
			res, err := f.apply(cid, checkIt)
			if checkIt {
				if err == nil {
					f.check(&res, f.tree, true)
				}
				if !emit(res) {
					return nil
				}
			} else if err != nil {
				return err
			}
			continue
		}
		// Batched mode: structural commits drain in-flight checks before
		// the session mutates under them.
		if Structural(commitPaths(f.repo, cid)) {
			flush()
		}
		res, err := f.apply(cid, checkIt)
		if err != nil && !checkIt {
			return err
		}
		if checkIt {
			if err != nil {
				flush()
				if !emit(res) {
					return nil
				}
				continue
			}
			batch = append(batch, pending{res: res, snap: f.tree.Clone()})
		}
	}
	flush()
	return nil
}

// commitPaths lists a commit's changed paths without applying it.
func commitPaths(repo *vcs.Repo, cid string) []string {
	c, err := repo.Get(cid)
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(c.Changes))
	for _, ch := range c.Changes {
		out = append(out, ch.Path)
	}
	return out
}
