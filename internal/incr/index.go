// Package incr implements the incremental commit-stream follower: a
// long-lived session that consumes commits one at a time and re-checks
// each with cost proportional to the diff, not the tree.
//
// The dependability contract is absolute: every report a follower emits
// is byte-identical to what a from-scratch `jmake -commit ID -json` run
// produces for the same commit. Warmth only changes the session's
// *effective* cost (measured in saved-virtual-time ledgers), never a
// report byte. The pieces:
//
//   - Index (this file): a reverse dependency index — header → dependent
//     translation units — built from a static include scan and enriched
//     with the result cache's include-closure manifests, plus Kbuild-gate
//     and Kconfig edges. It prices each commit's blast radius.
//   - Follower (incr.go): applies commits to a live working tree,
//     invalidates exactly the session state each commit's paths could
//     affect (core.Session.Refresh), and re-checks with warm state.
//   - RunReactive (reactive.go): the benchmark harness replaying an
//     N-commit stream and reporting per-commit virtual vs effective cost.
package incr

import (
	"sort"
	"strings"

	"jmake/internal/ccache"
	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/presence"
)

// Index is the reverse dependency index over one working tree. Edges are
// kept by include *target* (the literal `#include` operand), not resolved
// path: target→path resolution depends on per-arch search orders, so the
// index matches targets against changed header paths at query time by
// suffix — a condition- and arch-blind over-approximation, exactly the
// discipline the presence analysis uses.
//
// Index is not safe for concurrent mutation; the follower updates it
// between checks, never during one.
type Index struct {
	// fwd[file] lists the file's include targets (deduplicated, sorted).
	fwd map[string][]string
	// rev[target] is the set of files whose #include list names target.
	rev map[string]map[string]bool
}

// NewIndex scans every .c/.h file of tree once and builds the static
// include-edge index.
func NewIndex(tree *fstree.Tree) *Index {
	ix := &Index{
		fwd: make(map[string][]string),
		rev: make(map[string]map[string]bool),
	}
	for _, p := range tree.Paths() {
		if sourceLike(p) {
			ix.scan(tree, p)
		}
	}
	return ix
}

func sourceLike(p string) bool {
	return strings.HasSuffix(p, ".c") || strings.HasSuffix(p, ".h")
}

// scan (re)computes one file's forward edges from its current content.
func (ix *Index) scan(tree *fstree.Tree, p string) {
	ix.drop(p)
	content, err := tree.Read(p)
	if err != nil {
		return
	}
	seen := make(map[string]bool)
	var targets []string
	for _, inc := range presence.Includes(content) {
		t := fstree.Clean(inc.Target)
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		targets = append(targets, t)
	}
	sort.Strings(targets)
	ix.fwd[p] = targets
	for _, t := range targets {
		set := ix.rev[t]
		if set == nil {
			set = make(map[string]bool)
			ix.rev[t] = set
		}
		set[p] = true
	}
}

// drop removes one file's forward edges and their reverse entries.
func (ix *Index) drop(p string) {
	for _, t := range ix.fwd[p] {
		if set := ix.rev[t]; set != nil {
			delete(set, p)
			if len(set) == 0 {
				delete(ix.rev, t)
			}
		}
	}
	delete(ix.fwd, p)
}

// Update advances the index past one commit: every changed source file is
// re-scanned against the already-advanced tree (deleted files drop their
// edges). Non-source paths need no edge maintenance — their effects are
// handled as Kbuild/Kconfig edges at query time.
func (ix *Index) Update(tree *fstree.Tree, changed []string) {
	for _, p := range changed {
		p = fstree.Clean(p)
		if !sourceLike(p) {
			continue
		}
		if tree.Exists(p) {
			ix.scan(tree, p)
		} else {
			ix.drop(p)
		}
	}
}

// matchesTarget reports whether header path h could be what an
// `#include <target>` / `#include "target"` resolves to: the path equals
// the target or ends with /target (covering every search-dir prefix and
// the quoted same-directory rule at once).
func matchesTarget(h, target string) bool {
	return h == target || strings.HasSuffix(h, "/"+target)
}

// Structural reports whether any changed path invalidates session-level
// state (build metadata, architecture trees, Kconfig inputs, Makefiles) —
// the same classification core.Session.Refresh applies, exposed so the
// follower can put a concurrency barrier in front of the refresh.
func Structural(changed []string) bool {
	for _, p := range changed {
		p = fstree.Clean(p)
		base := p[strings.LastIndexByte(p, '/')+1:]
		if p == kbuild.MetaPath || strings.HasPrefix(p, "arch/") ||
			strings.HasPrefix(base, "Kconfig") ||
			base == "Makefile" || base == "Kbuild" {
			return true
		}
	}
	return false
}

// Dependents returns the translation units (.c paths) whose transitive
// inputs include any of the changed paths, sorted. Three edge classes
// contribute:
//
//   - include edges: reverse-BFS from each changed header through the
//     static target index (headers reached transitively keep expanding
//     the frontier, .c files terminate it);
//   - manifest edges: the result cache's include-closure manifests name
//     the exact root TUs that observed a header during real compiles —
//     these catch computed includes the static scan cannot see;
//   - Kbuild-gate edges: a changed Makefile/Kbuild pulls in every TU in
//     its directory subtree.
//
// Kconfig / Kbuild.meta / arch-wide changes invalidate globally; callers
// detect those with Structural rather than enumerating the whole tree.
// A changed .c file is its own dependent.
func (ix *Index) Dependents(tree *fstree.Tree, cache *ccache.Cache, changed []string) []string {
	tus := make(map[string]bool)
	visited := make(map[string]bool)
	var frontier []string

	for _, p := range changed {
		p = fstree.Clean(p)
		base := p[strings.LastIndexByte(p, '/')+1:]
		switch {
		case strings.HasSuffix(p, ".c"):
			tus[p] = true
		case strings.HasSuffix(p, ".h"):
			frontier = append(frontier, p)
		case base == "Makefile" || base == "Kbuild":
			dir := ""
			if i := strings.LastIndexByte(p, '/'); i >= 0 {
				dir = p[:i]
			}
			for _, q := range tree.Under(dir) {
				if strings.HasSuffix(q, ".c") {
					tus[q] = true
				}
			}
		}
	}

	// Static include edges, transitively.
	for len(frontier) > 0 {
		h := frontier[0]
		frontier = frontier[1:]
		if visited[h] {
			continue
		}
		visited[h] = true
		for target, includers := range ix.rev {
			if !matchesTarget(h, target) {
				continue
			}
			for f := range includers {
				if strings.HasSuffix(f, ".c") {
					tus[f] = true
				} else if !visited[f] {
					frontier = append(frontier, f)
				}
			}
		}
	}

	// Manifest edges: exact observed closures from real compiles.
	if cache != nil {
		hdrs := make([]string, 0, len(visited))
		for h := range visited {
			hdrs = append(hdrs, h)
		}
		for _, roots := range cache.Dependents(hdrs) {
			for _, r := range roots {
				tus[r] = true
			}
		}
	}

	out := make([]string, 0, len(tus))
	for p := range tus {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
