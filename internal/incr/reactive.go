package incr

import (
	"fmt"

	"jmake/internal/core"
	"jmake/internal/eval"
	"jmake/internal/vcs"
)

// ReactiveParams configure a reactive benchmark replay.
type ReactiveParams struct {
	// Commits caps how many window commits are replayed after the seed
	// (0 = the whole window).
	Commits int
	// Warmup excludes the first N checked commits from the small-commit
	// gate population: the very first commits pay the session's one-time
	// set-up and config valuations, which is the point — but the steady
	// state is what the <30% gate measures. Default 3.
	Warmup int
	// Checker tunes the per-commit pipeline.
	Checker core.Options
}

// smallCommitMaxFiles bounds the gate population: commits touching at
// most this many relevant files, the "small diff" of the acceptance
// criterion.
const smallCommitMaxFiles = 2

// RunReactive replays a commit stream against one warm follower and
// reports per-commit virtual (= cold) vs effective cost. The stream is
// the evaluation window (v4.3..v4.4, modifying non-merges), seeded at the
// first window commit like the evaluation itself.
func RunReactive(repo *vcs.Repo, p ReactiveParams) (*eval.ReactiveReport, error) {
	ids, err := repo.Between("v4.3", "v4.4", vcs.LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		return nil, fmt.Errorf("incr: %w", err)
	}
	if len(ids) < 2 {
		return nil, fmt.Errorf("incr: window too small for a reactive replay (%d commits)", len(ids))
	}
	stream := ids[1:]
	if p.Commits > 0 && len(stream) > p.Commits {
		stream = stream[:p.Commits]
	}
	warmup := p.Warmup
	if warmup == 0 {
		warmup = 3
	}

	f, err := NewFollower(repo, ids[0], Options{Checker: p.Checker})
	if err != nil {
		return nil, err
	}

	rep := &eval.ReactiveReport{}
	var ratioSum float64
	checked := 0
	runErr := f.Run(stream, func(r StepResult) bool {
		rc := eval.ReactiveCommit{
			Commit:           r.Commit,
			Files:            r.Files,
			Touched:          r.Touched,
			Structural:       r.Structural,
			InvalidatedTUs:   r.InvalidatedTUs,
			VirtualSeconds:   r.VirtualSeconds,
			EffectiveSeconds: r.EffectiveSeconds,
		}
		if r.VirtualSeconds > 0 {
			rc.EffectiveRatio = r.EffectiveSeconds / r.VirtualSeconds
		} else {
			rc.EffectiveRatio = 1
		}
		rep.PerCommit = append(rep.PerCommit, rc)
		rep.Commits++
		rep.TotalVirtualSeconds += r.VirtualSeconds
		rep.TotalEffectiveSeconds += r.EffectiveSeconds
		checked++
		if checked > warmup && !r.Structural &&
			r.Files > 0 && r.Files <= smallCommitMaxFiles && r.VirtualSeconds > 0 {
			rep.SmallCommits++
			ratioSum += rc.EffectiveRatio
		}
		return true
	})
	if runErr != nil {
		return nil, runErr
	}
	if rep.SmallCommits > 0 {
		rep.SmallCommitMeanRatio = ratioSum / float64(rep.SmallCommits)
	}
	return rep, nil
}
