package incr

import (
	"reflect"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/kbuild"
)

// indexTree is a hand-built tree exercising every edge class the index
// models: direct and transitive includes (angle and quoted), a shared
// header with two dependents, a Makefile-gated directory, and files
// outside any closure.
func indexTree() *fstree.Tree {
	tr := fstree.New()
	tr.Write("drivers/foo/main.c", "#include <linux/top.h>\nint main_v;\n")
	tr.Write("drivers/foo/aux.c", "#include \"local.h\"\nint aux_v;\n")
	tr.Write("drivers/foo/local.h", "#include <linux/top.h>\n#define L 1\n")
	tr.Write("drivers/foo/Makefile", "obj-y += main.o aux.o\n")
	tr.Write("drivers/bar/lone.c", "int lone_v;\n")
	tr.Write("include/linux/top.h", "#include <linux/base.h>\n#define T 1\n")
	tr.Write("include/linux/base.h", "#define B 1\n")
	return tr
}

func deps(t *testing.T, ix *Index, tr *fstree.Tree, changed ...string) []string {
	t.Helper()
	return ix.Dependents(tr, nil, changed)
}

func wantDeps(t *testing.T, got []string, want ...string) {
	t.Helper()
	if want == nil {
		want = []string{}
	}
	if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
		t.Errorf("dependents = %v, want %v", got, want)
	}
}

func TestIndexDirectAndTransitiveHeaders(t *testing.T) {
	tr := indexTree()
	ix := NewIndex(tr)

	// Direct: top.h is named by main.c and local.h; local.h expands to aux.c.
	wantDeps(t, deps(t, ix, tr, "include/linux/top.h"),
		"drivers/foo/aux.c", "drivers/foo/main.c")
	// Transitive: base.h is only reached through top.h, same blast radius.
	wantDeps(t, deps(t, ix, tr, "include/linux/base.h"),
		"drivers/foo/aux.c", "drivers/foo/main.c")
	// Quoted include: local.h reaches only its includer.
	wantDeps(t, deps(t, ix, tr, "drivers/foo/local.h"), "drivers/foo/aux.c")
	// A header no one includes has no dependents.
	tr.Write("include/linux/orphan.h", "#define O 1\n")
	ix.Update(tr, []string{"include/linux/orphan.h"})
	wantDeps(t, deps(t, ix, tr, "include/linux/orphan.h"))
}

func TestIndexSelfAndKbuildEdges(t *testing.T) {
	tr := indexTree()
	ix := NewIndex(tr)

	// A changed .c file is its own (only) dependent.
	wantDeps(t, deps(t, ix, tr, "drivers/bar/lone.c"), "drivers/bar/lone.c")
	// A changed Makefile pulls in every TU under its directory, nothing else.
	wantDeps(t, deps(t, ix, tr, "drivers/foo/Makefile"),
		"drivers/foo/aux.c", "drivers/foo/main.c")
	// Mixed change sets union their radii.
	wantDeps(t, deps(t, ix, tr, "drivers/bar/lone.c", "drivers/foo/local.h"),
		"drivers/bar/lone.c", "drivers/foo/aux.c")
}

func TestIndexUpdateRewritesEdges(t *testing.T) {
	tr := indexTree()
	ix := NewIndex(tr)

	// main.c stops including top.h: it leaves top.h's blast radius.
	tr.Write("drivers/foo/main.c", "int main_v;\n")
	ix.Update(tr, []string{"drivers/foo/main.c"})
	wantDeps(t, deps(t, ix, tr, "include/linux/top.h"), "drivers/foo/aux.c")

	// aux.c is deleted: its edges disappear with it.
	tr.Remove("drivers/foo/aux.c")
	ix.Update(tr, []string{"drivers/foo/aux.c"})
	wantDeps(t, deps(t, ix, tr, "include/linux/top.h"))
	wantDeps(t, deps(t, ix, tr, "drivers/foo/local.h"))

	// A new includer gains edges immediately.
	tr.Write("drivers/bar/fresh.c", "#include <linux/base.h>\nint fv;\n")
	ix.Update(tr, []string{"drivers/bar/fresh.c"})
	wantDeps(t, deps(t, ix, tr, "include/linux/base.h"), "drivers/bar/fresh.c")
}

func TestIndexSuffixMatchingIsPathPrecise(t *testing.T) {
	tr := fstree.New()
	// Both headers end in "top.h", but only a /-separated suffix matches:
	// `#include <linux/top.h>` can resolve to include/linux/top.h, never to
	// include/linux/stop.h.
	tr.Write("include/linux/top.h", "#define T 1\n")
	tr.Write("include/linux/stop.h", "#define S 1\n")
	tr.Write("a.c", "#include <linux/top.h>\n")
	ix := NewIndex(tr)
	wantDeps(t, deps(t, ix, tr, "include/linux/top.h"), "a.c")
	wantDeps(t, deps(t, ix, tr, "include/linux/stop.h"))
}

func TestStructuralClassification(t *testing.T) {
	structural := []string{
		kbuild.MetaPath,
		"arch/x86_64/configs/defconfig",
		"drivers/foo/Kconfig",
		"drivers/foo/Kconfig.debug",
		"drivers/foo/Makefile",
		"drivers/foo/Kbuild",
	}
	for _, p := range structural {
		if !Structural([]string{p}) {
			t.Errorf("Structural(%q) = false, want true", p)
		}
	}
	plain := [][]string{
		{"drivers/foo/main.c"},
		{"include/linux/top.h"},
		{"Documentation/Makefile.txt"},
		{},
	}
	for _, ps := range plain {
		if Structural(ps) {
			t.Errorf("Structural(%v) = true, want false", ps)
		}
	}
	// One structural path anywhere in the set flips the whole commit.
	if !Structural([]string{"drivers/foo/main.c", "drivers/foo/Kconfig"}) {
		t.Error("mixed change set not classified structural")
	}
}
