package incr

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"jmake/internal/commitgen"
	"jmake/internal/core"
	"jmake/internal/eval"
	"jmake/internal/kernelgen"
	"jmake/internal/vclock"
	"jmake/internal/vcs"
)

// Shared substrate: generating the tree and history dominates test time,
// so every test gets the same repo. Tests only append commits (the repo
// is append-only), and each test seeds its own follower, so sharing is
// safe as long as appended probe commits use distinct content.
var (
	subOnce sync.Once
	subRepo *vcs.Repo
	subIDs  []string
	subErr  error
)

func substrate(t *testing.T) (*vcs.Repo, []string) {
	t.Helper()
	subOnce.Do(func() {
		tree, man, err := kernelgen.Generate(kernelgen.Params{Seed: 41, Scale: 0.15})
		if err != nil {
			subErr = err
			return
		}
		hist, err := commitgen.Build(tree, man, commitgen.Params{Seed: 42, Scale: 0.008})
		if err != nil {
			subErr = err
			return
		}
		subRepo = hist.Repo
		subIDs, subErr = subRepo.Between("v4.3", "v4.4", vcs.LogOptions{NoMerges: true, OnlyModify: true})
	})
	if subErr != nil {
		t.Fatalf("substrate: %v", subErr)
	}
	return subRepo, subIDs
}

// coldReport replicates the from-scratch CheckCommit path exactly: fresh
// checkout, fresh session, relevance filter, default model seeded by the
// ID length.
func coldReport(t *testing.T, repo *vcs.Repo, id string, opts core.Options) *core.PatchReport {
	t.Helper()
	tree, err := repo.CheckoutTree(id)
	if err != nil {
		t.Fatalf("checkout %s: %v", id, err)
	}
	sess, err := core.NewSession(tree)
	if err != nil {
		t.Fatalf("session %s: %v", id, err)
	}
	fds, err := repo.FileDiffs(id)
	if err != nil {
		t.Fatalf("diffs %s: %v", id, err)
	}
	kept := fds[:0:0]
	for _, fd := range fds {
		if eval.RelevantPath(fd.NewPath) {
			kept = append(kept, fd)
		}
	}
	checker := sess.Checker(tree, vclock.DefaultModel(uint64(len(id))), opts)
	rep, err := checker.CheckPatch(id, kept)
	if err != nil {
		t.Fatalf("cold check %s: %v", id, err)
	}
	return rep
}

func marshal(t *testing.T, r *core.PatchReport) string {
	t.Helper()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func requireIdentical(t *testing.T, repo *vcs.Repo, res StepResult, opts core.Options) {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("follower check of %s failed: %v", res.Commit, res.Err)
	}
	warm := marshal(t, res.Report)
	cold := marshal(t, coldReport(t, repo, res.Commit, opts))
	if warm != cold {
		t.Fatalf("commit %s: incremental report differs from cold check\nwarm:\n%s\ncold:\n%s",
			res.Commit, warm, cold)
	}
}

var probeSig = vcs.Signature{Name: "Probe Author", Email: "probe@example.com", When: time.Unix(1700000000, 0)}

// appendEdit commits one file transformation at the tip.
func appendEdit(t *testing.T, repo *vcs.Repo, path string, transform func(string) string) string {
	t.Helper()
	old, err := repo.ReadTip(path)
	if err != nil {
		t.Fatalf("read tip %s: %v", path, err)
	}
	nv := transform(old)
	return repo.Commit(probeSig, "edit "+path, map[string]*string{path: &nv}, false)
}

// appendFn appends a uniquely-named function to a .c file, producing real
// changed lines for the checker to chase.
func appendFn(t *testing.T, repo *vcs.Repo, path, tag string) string {
	return appendEdit(t, repo, path, func(s string) string {
		return s + fmt.Sprintf("\nint probe_%s(void)\n{\n\treturn %d;\n}\n", tag, len(tag))
	})
}

// TestFollowerMatchesColdOnWindow replays a prefix of the evaluation
// window — skipping every other commit, so the follower also exercises
// applying unchecked intermediate commits — and requires byte-identity
// with cold checks throughout.
func TestFollowerMatchesColdOnWindow(t *testing.T) {
	repo, ids := substrate(t)
	var opts core.Options
	f, err := NewFollower(repo, ids[0], Options{Checker: opts})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 2; i < len(ids) && checked < 8; i += 2 {
		res, err := f.Step(ids[i])
		if err != nil {
			t.Fatalf("step %s: %v", ids[i], err)
		}
		requireIdentical(t, repo, res, opts)
		if !res.EffectiveMeasured {
			t.Fatalf("sequential step %s did not measure effective cost", res.Commit)
		}
		if res.EffectiveSeconds > res.VirtualSeconds {
			t.Fatalf("commit %s: effective %.3f exceeds virtual %.3f",
				res.Commit, res.EffectiveSeconds, res.VirtualSeconds)
		}
		checked++
	}
	// Warmth must actually materialize: once the session has seen a few
	// commits, the ledgers are non-zero.
	saved := f.savedSeconds()
	if saved <= 0 {
		t.Fatalf("warm session saved nothing over %d commits", checked)
	}
}

// TestFollowerInvalidationEdges mutates one dependency-edge class at a
// time mid-stream — root file, direct header, transitive header, Kbuild
// gate, Kconfig constraint, arch defconfig list, build metadata — and
// requires the follower's next reports to stay byte-identical to cold
// checks. Each structural probe is crafted so stale session state would
// change report bytes (symbol counts price configs, setupops price
// builds, gates move presence formulas), so a missed invalidation fails
// loudly here.
func TestFollowerInvalidationEdges(t *testing.T) {
	repo, _ := substrate(t)
	var opts core.Options
	base := repo.Head()

	type probe struct {
		name string
		edit func(t *testing.T) string // appends the structural/dep edit, returns its ID
	}
	const root = "drivers/char/core.c"
	probes := []probe{
		{"root-file", func(t *testing.T) string {
			return appendFn(t, repo, root, "rootedit")
		}},
		{"direct-header", func(t *testing.T) string {
			return appendEdit(t, repo, "include/linux/cdev.h", func(s string) string {
				return strings.Replace(s, "#define MINORBITS 0x01", "#define MINORBITS 0x03", 1)
			})
		}},
		{"transitive-header", func(t *testing.T) string {
			return appendEdit(t, repo, "include/linux/types.h", func(s string) string {
				return strings.Replace(s, "typedef unsigned long size_t_k;", "typedef unsigned long size_t_k;\ntypedef unsigned long uptr_k;", 1)
			})
		}},
		{"kbuild-gate", func(t *testing.T) string {
			// Re-gate the probed TU: obj-y → a tristate symbol. Stale
			// gate state would leave core.c's presence formula ungated.
			return appendEdit(t, repo, "drivers/char/Makefile", func(s string) string {
				return strings.Replace(s, "obj-y += core.o", "obj-$(CONFIG_CHAR_DEV_DEBUG) += core.o", 1)
			})
		}},
		{"kconfig-constraint", func(t *testing.T) string {
			// A new symbol changes the Kconfig tree's size, which prices
			// every `make *config`; stale valuations would keep the old
			// symbol count in ConfigDurations.
			return appendEdit(t, repo, "drivers/char/Kconfig", func(s string) string {
				return s + "\nconfig PROBE_EXTRA\n\tbool \"probe extra\"\n\tdefault y\n\tdepends on CHAR_DEV\n"
			})
		}},
		{"arch-list", func(t *testing.T) string {
			// A new defconfig mentioning the gating variable changes the
			// §III-C candidate list for files gated by it.
			content := "CONFIG_CHAR_DEV=y\nCONFIG_CHAR_DEV_DEBUG=y\n"
			return repo.Commit(probeSig, "add defconfig",
				map[string]*string{"arch/alpha/configs/probe_defconfig": &content}, false)
		}},
		{"kbuild-meta", func(t *testing.T) string {
			// Re-pricing x86_64's set-up ops changes every MakeI first
			// invocation on the host arch; stale metadata would keep the
			// old price.
			return appendEdit(t, repo, "Kbuild.meta", func(s string) string {
				return strings.Replace(s, "setupops x86_64 84", "setupops x86_64 85", 1)
			})
		}},
	}

	f, err := NewFollower(repo, base, Options{Checker: opts})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range probes {
		editID := pr.edit(t)
		// Check the edit commit itself (non-source edits yield zero-plan
		// reports, still byte-compared), then a fresh .c edit that must
		// observe the new state.
		res, err := f.Step(editID)
		if err != nil {
			t.Fatalf("%s: step edit: %v", pr.name, err)
		}
		requireIdentical(t, repo, res, opts)

		probeID := appendFn(t, repo, root, fmt.Sprintf("after%d", i))
		res, err = f.Step(probeID)
		if err != nil {
			t.Fatalf("%s: step probe: %v", pr.name, err)
		}
		requireIdentical(t, repo, res, opts)
		if res.Files != 1 {
			t.Fatalf("%s: probe commit should have 1 relevant file, got %d", pr.name, res.Files)
		}
	}
}

// TestFollowerEmptyAndMergeCommits checks the stream edge cases: a commit
// with an empty diff yields a zero-plan report (not an error), and merge
// commits are followed like any other.
func TestFollowerEmptyAndMergeCommits(t *testing.T) {
	repo, _ := substrate(t)
	var opts core.Options
	base := repo.Head()

	// Empty diff: rewriting a file with identical content records no
	// changes.
	same, err := repo.ReadTip("drivers/char/core.c")
	if err != nil {
		t.Fatal(err)
	}
	emptyID := repo.Commit(probeSig, "no-op", map[string]*string{"drivers/char/core.c": &same}, false)
	// Merge commit with a real change.
	merged, err := repo.ReadTip("drivers/char/gampax.c")
	if err != nil {
		// Fall back to any drivers .c file if the sample name shifts.
		t.Skipf("sample file missing: %v", err)
	}
	merged += "\nint probe_merge(void)\n{\n\treturn 7;\n}\n"
	mergeID := repo.Commit(probeSig, "merge", map[string]*string{"drivers/char/gampax.c": &merged}, true)

	f, err := NewFollower(repo, base, Options{Checker: opts})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Step(emptyID)
	if err != nil {
		t.Fatalf("empty-diff step: %v", err)
	}
	if res.Report == nil || len(res.Report.Files) != 0 || res.Files != 0 {
		t.Fatalf("empty-diff commit should yield a zero-plan report, got %+v", res.Report)
	}
	requireIdentical(t, repo, res, opts)

	res, err = f.Step(mergeID)
	if err != nil {
		t.Fatalf("merge step: %v", err)
	}
	requireIdentical(t, repo, res, opts)
}

// TestFollowerRandomStream is the fuzz-style cross-check: a seeded random
// subset of the window (random gaps exercise intermediate application)
// must stay byte-identical to cold checks, both sequentially and via Run
// at several workers.
func TestFollowerRandomStream(t *testing.T) {
	repo, ids := substrate(t)
	var opts core.Options
	rng := rand.New(rand.NewSource(7))
	var stream []string
	for i := 1; i < len(ids) && len(stream) < 10; i++ {
		if rng.Intn(3) > 0 {
			continue
		}
		stream = append(stream, ids[i])
	}
	if len(stream) < 4 {
		t.Fatalf("stream too small: %d", len(stream))
	}

	colds := make(map[string]string, len(stream))
	for _, id := range stream {
		colds[id] = marshal(t, coldReport(t, repo, id, opts))
	}

	for _, workers := range []int{1, 3} {
		f, err := NewFollower(repo, ids[0], Options{Checker: opts, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var got []StepResult
		if err := f.Run(stream, func(r StepResult) bool {
			got = append(got, r)
			return true
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(stream) {
			t.Fatalf("workers=%d: emitted %d of %d", workers, len(got), len(stream))
		}
		for i, r := range got {
			if r.Commit != stream[i] {
				t.Fatalf("workers=%d: out of order: got %s want %s", workers, r.Commit, stream[i])
			}
			if r.Err != nil {
				t.Fatalf("workers=%d: %s: %v", workers, r.Commit, r.Err)
			}
			if m := marshal(t, r.Report); m != colds[r.Commit] {
				t.Fatalf("workers=%d: commit %s differs from cold", workers, r.Commit)
			}
		}
	}
}

// TestRunReactive smoke-checks the benchmark harness over a short stream:
// per-commit entries exist, virtual cost is positive, and warm effective
// cost lands below virtual once warmed up.
func TestRunReactive(t *testing.T) {
	repo, _ := substrate(t)
	rep, err := RunReactive(repo, ReactiveParams{Commits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Commits != 10 || len(rep.PerCommit) != 10 {
		t.Fatalf("expected 10 replayed commits, got %d", rep.Commits)
	}
	if rep.TotalVirtualSeconds <= 0 {
		t.Fatalf("no virtual cost recorded")
	}
	if rep.TotalEffectiveSeconds >= rep.TotalVirtualSeconds {
		t.Fatalf("warm replay saved nothing: effective %.2f vs virtual %.2f",
			rep.TotalEffectiveSeconds, rep.TotalVirtualSeconds)
	}
	if rep.SmallCommits > 0 && rep.SmallCommitMeanRatio >= 1 {
		t.Fatalf("small-commit ratio not below 1: %.3f", rep.SmallCommitMeanRatio)
	}
}
