// Package maintainers models the Linux kernel MAINTAINERS file: named
// subsystem entries with maintainer addresses, mailing lists, and file
// patterns. JMake's janitor identification (paper §IV) uses entries as its
// subsystem notion and the designated mailing lists as a coarser-grained
// one.
package maintainers

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Entry is one MAINTAINERS subsystem block.
type Entry struct {
	Name        string
	Maintainers []string // email addresses from M: lines
	Lists       []string // addresses from L: lines
	Patterns    []string // file patterns from F: lines
}

// ErrParse reports malformed MAINTAINERS content.
var ErrParse = errors.New("maintainers: parse error")

// Parse reads MAINTAINERS-format text: entries separated by blank lines,
// each starting with a name line followed by tagged lines (M:, L:, F:).
func Parse(content string) ([]Entry, error) {
	var out []Entry
	var cur *Entry
	for ln, raw := range strings.Split(content, "\n") {
		line := strings.TrimRight(raw, " \t")
		if strings.TrimSpace(line) == "" {
			cur = nil
			continue
		}
		if len(line) >= 2 && line[1] == ':' {
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: tagged line outside entry", ErrParse, ln+1)
			}
			val := strings.TrimSpace(line[2:])
			switch line[0] {
			case 'M':
				cur.Maintainers = append(cur.Maintainers, extractEmail(val))
			case 'L':
				cur.Lists = append(cur.Lists, val)
			case 'F':
				cur.Patterns = append(cur.Patterns, val)
			default:
				// S:, W:, T:, K: etc. — irrelevant here.
			}
			continue
		}
		out = append(out, Entry{Name: line})
		cur = &out[len(out)-1]
	}
	return out, nil
}

// extractEmail pulls the address out of "Name <addr>" or returns the value
// unchanged.
func extractEmail(s string) string {
	if i := strings.IndexByte(s, '<'); i >= 0 {
		if j := strings.IndexByte(s[i:], '>'); j > 0 {
			return s[i+1 : i+j]
		}
	}
	return s
}

// matches reports whether a MAINTAINERS F: pattern covers path: a pattern
// ending in '/' covers the subtree, otherwise it must match exactly or as
// a single-star glob on the basename.
func matches(pattern, path string) bool {
	if strings.HasSuffix(pattern, "/") {
		return strings.HasPrefix(path, pattern)
	}
	if strings.ContainsRune(pattern, '*') {
		dir := ""
		base := pattern
		if i := strings.LastIndexByte(pattern, '/'); i >= 0 {
			dir, base = pattern[:i+1], pattern[i+1:]
		}
		pdir := ""
		pbase := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			pdir, pbase = path[:i+1], path[i+1:]
		}
		return dir == pdir && globMatch(base, pbase)
	}
	return pattern == path
}

// globMatch implements '*' wildcards within one path segment.
func globMatch(pattern, s string) bool {
	parts := strings.Split(pattern, "*")
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		i := strings.Index(s, part)
		if i < 0 {
			return false
		}
		s = s[i+len(part):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

// Index answers subsystem and list queries over a parsed MAINTAINERS file.
type Index struct {
	entries []Entry
}

// NewIndex builds an index over entries.
func NewIndex(entries []Entry) *Index {
	return &Index{entries: entries}
}

// Entries returns the underlying entries.
func (ix *Index) Entries() []Entry { return ix.entries }

// SubsystemsFor returns the names of entries whose patterns cover path.
func (ix *Index) SubsystemsFor(path string) []string {
	var out []string
	for _, e := range ix.entries {
		for _, p := range e.Patterns {
			if matches(p, path) {
				out = append(out, e.Name)
				break
			}
		}
	}
	return out
}

// ListsFor returns the union of mailing lists designated for path, sorted.
func (ix *Index) ListsFor(path string) []string {
	seen := make(map[string]bool)
	for _, e := range ix.entries {
		covered := false
		for _, p := range e.Patterns {
			if matches(p, path) {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		for _, l := range e.Lists {
			seen[l] = true
		}
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// IsMaintainer reports whether email maintains any entry covering path.
func (ix *Index) IsMaintainer(email, path string) bool {
	for _, e := range ix.entries {
		covered := false
		for _, p := range e.Patterns {
			if matches(p, path) {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		for _, m := range e.Maintainers {
			if m == email {
				return true
			}
		}
	}
	return false
}
