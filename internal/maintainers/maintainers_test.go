package maintainers

import (
	"reflect"
	"testing"
)

const sample = `NETWORKING DRIVERS
M:	Dave Miller <davem@example.org>
L:	netdev@vger.example.org
F:	drivers/net/
F:	include/linux/netdevice.h

USB SUBSYSTEM
M:	Greg KH <gregkh@example.org>
L:	linux-usb@vger.example.org
S:	Maintained
F:	drivers/usb/
F:	include/linux/usb*.h

STAGING
L:	devel@driverdev.example.org
F:	drivers/staging/
`

func mustIndex(t *testing.T) *Index {
	t.Helper()
	entries, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return NewIndex(entries)
}

func TestParse(t *testing.T) {
	entries, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	e := entries[0]
	if e.Name != "NETWORKING DRIVERS" {
		t.Errorf("Name = %q", e.Name)
	}
	if !reflect.DeepEqual(e.Maintainers, []string{"davem@example.org"}) {
		t.Errorf("Maintainers = %v", e.Maintainers)
	}
	if !reflect.DeepEqual(e.Lists, []string{"netdev@vger.example.org"}) {
		t.Errorf("Lists = %v", e.Lists)
	}
	if len(e.Patterns) != 2 {
		t.Errorf("Patterns = %v", e.Patterns)
	}
	// S: lines are skipped without error.
	if len(entries[1].Patterns) != 2 {
		t.Errorf("USB patterns = %v", entries[1].Patterns)
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse("M:\torphan@example.org\n"); err == nil {
		t.Error("tagged line outside entry should fail")
	}
}

func TestSubsystemsFor(t *testing.T) {
	ix := mustIndex(t)
	tests := []struct {
		path string
		want []string
	}{
		{"drivers/net/bonding.c", []string{"NETWORKING DRIVERS"}},
		{"include/linux/netdevice.h", []string{"NETWORKING DRIVERS"}},
		{"drivers/usb/storage.c", []string{"USB SUBSYSTEM"}},
		{"include/linux/usb_gadget.h", []string{"USB SUBSYSTEM"}},
		{"drivers/staging/foo/bar.c", []string{"STAGING"}},
		{"mm/page_alloc.c", nil},
		{"include/linux/usb/ch9.h", nil}, // glob is single-segment
	}
	for _, tt := range tests {
		if got := ix.SubsystemsFor(tt.path); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("SubsystemsFor(%s) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestListsFor(t *testing.T) {
	ix := mustIndex(t)
	got := ix.ListsFor("drivers/net/tun.c")
	if !reflect.DeepEqual(got, []string{"netdev@vger.example.org"}) {
		t.Errorf("ListsFor = %v", got)
	}
	if lists := ix.ListsFor("kernel/fork.c"); lists != nil && len(lists) != 0 {
		t.Errorf("uncovered path lists = %v", lists)
	}
}

func TestIsMaintainer(t *testing.T) {
	ix := mustIndex(t)
	if !ix.IsMaintainer("davem@example.org", "drivers/net/tun.c") {
		t.Error("davem should maintain drivers/net")
	}
	if ix.IsMaintainer("davem@example.org", "drivers/usb/core.c") {
		t.Error("davem should not maintain drivers/usb")
	}
	if ix.IsMaintainer("nobody@example.org", "drivers/net/tun.c") {
		t.Error("unknown address should not maintain anything")
	}
}

func TestGlobMatch(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"usb*.h", "usb_gadget.h", true},
		{"usb*.h", "usb.h", true},
		{"usb*.h", "serial.h", false},
		{"*", "anything", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "abc", true},
		{"a*b*c", "acb", false},
	}
	for _, tt := range tests {
		if got := globMatch(tt.pattern, tt.s); got != tt.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}

func TestExtractEmail(t *testing.T) {
	if got := extractEmail("Dave <d@x.org>"); got != "d@x.org" {
		t.Errorf("extractEmail = %q", got)
	}
	if got := extractEmail("bare@x.org"); got != "bare@x.org" {
		t.Errorf("extractEmail bare = %q", got)
	}
}
