package ccache

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"jmake/internal/cc"
	"jmake/internal/metrics"
	"jmake/internal/vclock"
)

// persistVersion guards the on-disk format: a file written by a different
// version is ignored wholesale (cold start, never an error).
const persistVersion = 1

// persistFile is the cache's file name under the -cache-dir directory.
const persistFile = "jmake-ccache.json"

// DefaultMaxBytes bounds the persisted tier when the caller passes 0.
const DefaultMaxBytes = 64 << 20

// diskFile is the versioned on-disk format: one JSON document holding the
// most-recently-used entries, each with an integrity checksum.
type diskFile struct {
	Version int         `json:"version"`
	Entries []diskEntry `json:"entries"`
}

type diskEntry struct {
	Stage  int             `json:"stage"`
	Ctx    uint64          `json:"ctx"`
	Root   string          `json:"root"`
	Deps   []dep           `json:"deps"`
	Failed bool            `json:"failed,omitempty"`
	Err    string          `json:"err,omitempty"`
	Text   string          `json:"text,omitempty"`
	Work   vclock.FileWork `json:"work"`
	Object cc.Object       `json:"object"`
	// Check is a content checksum over every other field; entries that do
	// not verify are dropped silently (corrupt entry = miss, never error).
	Check uint64 `json:"check"`
}

func (d *diskEntry) checksum() uint64 {
	e := d.toEntry()
	h := entryID(e)
	// Fold the payload in on top of the key-side identity.
	return h ^ hashContent(d.Err) ^ hashContent(d.Text) ^
		uint64(d.Work.Lines)<<32 ^ uint64(d.Work.Includes) ^
		uint64(d.Object.Lines)<<16 ^ uint64(d.Object.Functions) ^
		uint64(boolBit(d.Failed))<<63 ^ hashStrings(d.Object.Defined)
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

func hashStrings(ss []string) uint64 {
	var h uint64 = 1469598103934665603
	for _, s := range ss {
		h ^= hashContent(s)
		h *= 1099511628211
	}
	return h
}

func (d *diskEntry) toEntry() *entry {
	return &entry{
		stage:    Stage(d.Stage),
		ctx:      d.Ctx,
		rootPath: d.Root,
		deps:     d.Deps,
		failed:   d.Failed,
		errText:  d.Err,
		text:     d.Text,
		work:     d.Work,
		object:   d.Object,
	}
}

// notePersistFailure counts one persistence problem and logs a single
// stderr warning for the cache's lifetime. The failure never changes
// behavior (cold start / lost entries only), but it must not be silent:
// a daemon operator watching ccache_load_failures/ccache_save_failures
// can tell "cold by design" from "disk is eating the cache".
func (c *Cache) notePersistFailure(counter *metrics.Counter, n uint64, what string) {
	counter.Add(n)
	c.warnOnce.Do(func() {
		log.Printf("ccache: %s (cache stays best-effort; watch ccache_load_failures/ccache_save_failures for recurrence)", what)
	})
}

// Load warm-starts the cache from dir. It is strictly best-effort: a
// missing, unreadable, version-mismatched or corrupt file (or corrupt
// individual entries) leaves the cache cold — persistence failures must
// never change verdicts, only hit rates. A missing file is cold by
// design; every other failure is counted in ccache_load_failures.
func (c *Cache) Load(dir string) {
	raw, err := os.ReadFile(filepath.Join(dir, persistFile))
	if err != nil {
		if !os.IsNotExist(err) {
			c.notePersistFailure(c.loadFailures, 1, fmt.Sprintf("reading persistent tier: %v", err))
		}
		return
	}
	var df diskFile
	if json.Unmarshal(raw, &df) != nil {
		c.notePersistFailure(c.loadFailures, 1, fmt.Sprintf("corrupt persistent tier %s: not valid JSON", filepath.Join(dir, persistFile)))
		return
	}
	if df.Version != persistVersion {
		c.notePersistFailure(c.loadFailures, 1, fmt.Sprintf("persistent tier version %d != %d: ignoring file", df.Version, persistVersion))
		return
	}
	dropped := 0
	// The file is MRU-first; insert in reverse so recency survives the
	// round-trip (insertLocked stamps increasing use sequence numbers).
	// Each entry goes to the shard of its probe key; taking that shard's
	// lock per insert is fine on this cold path.
	for i := len(df.Entries) - 1; i >= 0; i-- {
		d := &df.Entries[i]
		if d.Stage < 0 || Stage(d.Stage) >= numStages || len(d.Deps) == 0 {
			dropped++
			continue
		}
		if d.checksum() != d.Check {
			dropped++
			continue
		}
		e := d.toEntry()
		e.id = entryID(e)
		e.size = entrySize(e)
		sh := c.shardFor(probeKey(e.stage, e.ctx, e.deps[0].Hash))
		sh.mu.Lock()
		if _, dup := sh.byID[e.id]; dup {
			sh.mu.Unlock()
			continue
		}
		c.insertLocked(sh, e)
		sh.mu.Unlock()
		c.loaded.Add(1)
	}
	if dropped > 0 {
		c.notePersistFailure(c.loadFailures, uint64(dropped), fmt.Sprintf("dropped %d corrupt entries from persistent tier", dropped))
	}
}

// Save persists the most-recently-used entries to dir, bounded by
// maxBytes of payload (0 = DefaultMaxBytes). The write is atomic
// (temp file + rename) so a crashed run cannot leave a torn cache.
func (c *Cache) Save(dir string, maxBytes int64) error {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	var entries []*entry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.byID {
			entries = append(entries, e)
		}
		sh.mu.Unlock()
	}
	// LRU bound: newest use first, cut at the byte budget (the global
	// atomic sequence gives lastUse a total order across shards).
	sort.Slice(entries, func(i, j int) bool { return entries[i].lastUse > entries[j].lastUse })
	df := diskFile{Version: persistVersion}
	var total int64
	for _, e := range entries {
		if total+e.size > maxBytes {
			break
		}
		total += e.size
		d := diskEntry{
			Stage: int(e.stage), Ctx: e.ctx, Root: e.rootPath, Deps: e.deps,
			Failed: e.failed, Err: e.errText, Text: e.text,
			Work: e.work, Object: e.object,
		}
		d.Check = d.checksum()
		df.Entries = append(df.Entries, d)
	}
	raw, err := json.Marshal(&df)
	if err != nil {
		c.notePersistFailure(c.saveFailures, 1, fmt.Sprintf("encoding persistent tier: %v", err))
		return fmt.Errorf("ccache: encoding: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.notePersistFailure(c.saveFailures, 1, fmt.Sprintf("saving persistent tier: %v", err))
		return fmt.Errorf("ccache: %w", err)
	}
	tmp := filepath.Join(dir, persistFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		c.notePersistFailure(c.saveFailures, 1, fmt.Sprintf("saving persistent tier: %v", err))
		return fmt.Errorf("ccache: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, persistFile)); err != nil {
		c.notePersistFailure(c.saveFailures, 1, fmt.Sprintf("saving persistent tier: %v", err))
		return fmt.Errorf("ccache: %w", err)
	}
	return nil
}
