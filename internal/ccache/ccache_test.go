package ccache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jmake/internal/cc"
	"jmake/internal/cpp"
	"jmake/internal/metrics"
	"jmake/internal/vclock"
)

func optsWith(dirs []string, defines map[string]string, depth int) cpp.Options {
	return cpp.Options{IncludeDirs: dirs, Defines: defines, MaxDepth: depth}
}

// mapSource is a trivial Source over a mutable file map.
type mapSource map[string]string

func (m mapSource) ReadFile(p string) (string, bool) {
	s, ok := m[p]
	return s, ok
}

func testSource() mapSource {
	return mapSource{
		"drivers/a.c":     "#include <sub.h>\nint f(void) { return X; }\n",
		"include/sub.h":   "#include <deep.h>\n#define X 1\n",
		"include/deep.h":  "typedef int deep_t;\n",
		"drivers/same.c":  "#include <sub.h>\nint f(void) { return X; }\n",
		"drivers/other.c": "int g(void) { return 2; }\n",
	}
}

const rootText = "# 1 \"drivers/a.c\"\n# 1 \"include/sub.h\" 1\nint body;\n# 2 \"drivers/a.c\" 2\nint f(void) { return 1; }\n"

var (
	testInputs  = []string{"drivers/a.c", "include/sub.h", "include/deep.h"}
	testMissing = []string{"drivers/sub.h"} // probed before include/ and absent
	testWork    = vclock.FileWork{Lines: 40, Includes: 2}
)

func storeOne(t *testing.T, c *Cache, src mapSource) Context {
	t.Helper()
	cx := c.Context(StageI, "x86", 11, 22)
	p := cx.Probe(src, "drivers/a.c")
	if p.Hit {
		t.Fatalf("unexpected hit on empty cache")
	}
	p.StoreI(testInputs, testMissing, rootText, testWork)
	return cx
}

func TestStoreAndHit(t *testing.T) {
	src := testSource()
	c := New()
	cx := storeOne(t, c, src)

	p := cx.Probe(src, "drivers/a.c")
	if !p.Hit {
		t.Fatalf("expected hit after store")
	}
	if p.Text != rootText || p.Work != testWork || p.Failed {
		t.Fatalf("served payload mismatch: %+v", p)
	}
	if p.Deps != len(testInputs)+len(testMissing) {
		t.Fatalf("Deps = %d, want %d", p.Deps, len(testInputs)+len(testMissing))
	}
	st := c.Stats()
	if st.MakeI.Hits != 1 || st.MakeI.Misses != 1 {
		t.Fatalf("stats = %+v", st.MakeI)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("entries/bytes = %d/%d", st.Entries, st.Bytes)
	}
}

// Mutating any file of the include closure — even a transitive header the
// root never names directly — must invalidate.
func TestTransitiveDepInvalidation(t *testing.T) {
	src := testSource()
	c := New()
	cx := storeOne(t, c, src)

	src["include/deep.h"] = "typedef long deep_t;\n"
	p := cx.Probe(src, "drivers/a.c")
	if p.Hit {
		t.Fatalf("expected miss after transitive header edit")
	}
	p.Cancel()

	// Restoring the original content makes the old entry valid again.
	src["include/deep.h"] = testSource()["include/deep.h"]
	if p := cx.Probe(src, "drivers/a.c"); !p.Hit {
		t.Fatalf("expected hit after restoring header")
	}
}

// Creating a file at a path the original run probed and found absent must
// invalidate: the new file would shadow the include that was used.
func TestAbsentDepInvalidation(t *testing.T) {
	src := testSource()
	c := New()
	cx := storeOne(t, c, src)

	src["drivers/sub.h"] = "#define X 9\n"
	p := cx.Probe(src, "drivers/a.c")
	if p.Hit {
		t.Fatalf("expected miss after creating a shadowing header")
	}
	p.Cancel()
}

func TestContextSeparation(t *testing.T) {
	src := testSource()
	c := New()
	storeOne(t, c, src)

	for name, cx := range map[string]Context{
		"arch":   c.Context(StageI, "arm", 11, 22),
		"config": c.Context(StageI, "x86", 12, 22),
		"opts":   c.Context(StageI, "x86", 11, 23),
		"stage":  c.Context(StageO, "x86", 11, 22),
	} {
		p := cx.Probe(src, "drivers/a.c")
		if p.Hit {
			t.Fatalf("%s: expected miss under different context", name)
		}
		p.Cancel()
	}
}

// An identical-content file at a different path is served with the root's
// line markers rewritten.
func TestRootRemap(t *testing.T) {
	src := testSource()
	c := New()
	cx := storeOne(t, c, src)

	p := cx.Probe(src, "drivers/same.c")
	if !p.Hit {
		t.Fatalf("expected dedupe hit for identical content at a new path")
	}
	want := "# 1 \"drivers/same.c\"\n# 1 \"include/sub.h\" 1\nint body;\n# 2 \"drivers/same.c\" 2\nint f(void) { return 1; }\n"
	if p.Text != want {
		t.Fatalf("remapped text:\n%q\nwant:\n%q", p.Text, want)
	}
}

// If the quoted root path appears outside marker lines (__FILE__ expansion
// or a string literal spelling the path), remapping would corrupt the
// payload, so serving is refused.
func TestRootRemapRefused(t *testing.T) {
	src := testSource()
	c := New()
	cx := c.Context(StageI, "x86", 11, 22)
	p := cx.Probe(src, "drivers/a.c")
	text := "# 1 \"drivers/a.c\"\nconst char *f = \"drivers/a.c\";\n"
	p.StoreI(testInputs, nil, text, testWork)

	// Exact path still serves verbatim.
	if p := cx.Probe(src, "drivers/a.c"); !p.Hit || p.Text != text {
		t.Fatalf("same-path serve failed: %+v", p)
	}
	// Different path must refuse (counted as a miss).
	p2 := cx.Probe(src, "drivers/same.c")
	if p2.Hit {
		t.Fatalf("expected refusal for __FILE__-style payload")
	}
	p2.Cancel()
}

// Failure entries embed the root path in their message, so they serve only
// for the exact path that produced them.
func TestFailureExactPathOnly(t *testing.T) {
	src := testSource()
	c := New()
	cx := c.Context(StageI, "x86", 11, 22)
	p := cx.Probe(src, "drivers/a.c")
	p.StoreFailure(testInputs, nil, "cpp: drivers/a.c:2: unterminated conditional")

	hit := cx.Probe(src, "drivers/a.c")
	if !hit.Hit || !hit.Failed || hit.ErrText == "" {
		t.Fatalf("failure serve: %+v", hit)
	}
	other := cx.Probe(src, "drivers/same.c")
	if other.Hit {
		t.Fatalf("failure must not serve cross-path")
	}
	other.Cancel()
}

func TestStageORoundTrip(t *testing.T) {
	src := testSource()
	c := New()
	cx := c.Context(StageO, "x86", 11, 22)
	obj := cc.Object{Lines: 120, Functions: 3, Defined: []string{"f", "g"}}
	p := cx.Probe(src, "drivers/a.c")
	p.StoreO(testInputs, testMissing, obj)

	hit := cx.Probe(src, "drivers/a.c")
	if !hit.Hit || hit.Failed {
		t.Fatalf("StageO serve: %+v", hit)
	}
	if hit.Object.Lines != obj.Lines || hit.Object.Functions != obj.Functions ||
		len(hit.Object.Defined) != 2 {
		t.Fatalf("object payload mismatch: %+v", hit.Object)
	}
}

func TestCancelCountsMissStoresNothing(t *testing.T) {
	src := testSource()
	c := New()
	cx := c.Context(StageI, "x86", 11, 22)
	p := cx.Probe(src, "drivers/a.c")
	p.Cancel()
	st := c.Stats()
	if st.MakeI.Misses != 1 || st.Entries != 0 {
		t.Fatalf("after cancel: %+v", st)
	}
}

func TestUnreadableRootIsMiss(t *testing.T) {
	src := testSource()
	c := New()
	cx := c.Context(StageI, "x86", 11, 22)
	p := cx.Probe(src, "drivers/gone.c")
	if p.Hit {
		t.Fatalf("unreadable root cannot hit")
	}
	p.StoreI(nil, nil, "x", testWork) // must be a no-op
	if st := c.Stats(); st.Entries != 0 || st.MakeI.Misses != 1 {
		t.Fatalf("after unreadable root: %+v", st)
	}
}

func TestSavedLedger(t *testing.T) {
	c := New()
	c.AddSaved(StageI, 3*time.Second)
	c.AddSaved(StageO, time.Second)
	st := c.Stats()
	if st.SavedVirtual != 4*time.Second {
		t.Fatalf("SavedVirtual = %v", st.SavedVirtual)
	}
	if st.SavedMakeI != 3*time.Second || st.SavedMakeO != time.Second {
		t.Fatalf("per-stage saved = %v / %v, want 3s / 1s", st.SavedMakeI, st.SavedMakeO)
	}
	c.NoteDedup(StageI)
	if got := c.Stats().MakeI.Deduped; got != 1 {
		t.Fatalf("Deduped = %d", got)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	src := testSource()
	dir := t.TempDir()
	c := New()
	cx := storeOne(t, c, src)
	ox := c.Context(StageO, "x86", 11, 22)
	p := ox.Probe(src, "drivers/a.c")
	p.StoreO(testInputs, testMissing, cc.Object{Lines: 10, Functions: 1})
	if err := c.Save(dir, 0); err != nil {
		t.Fatalf("Save: %v", err)
	}

	warm := New()
	warm.Load(dir)
	st := warm.Stats()
	if st.LoadedEntries != 2 || st.Entries != 2 {
		t.Fatalf("loaded %d/%d entries", st.LoadedEntries, st.Entries)
	}
	wcx := warm.Context(StageI, "x86", 11, 22)
	if p := wcx.Probe(src, "drivers/a.c"); !p.Hit || p.Text != rootText {
		t.Fatalf("warm StageI probe: %+v", p)
	}
	_ = cx
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	src := testSource()
	dir := t.TempDir()
	c := New()
	storeOne(t, c, src)
	if err := c.Save(dir, 0); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := filepath.Join(dir, persistFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var df diskFile
	if err := json.Unmarshal(raw, &df); err != nil {
		t.Fatal(err)
	}
	df.Version = persistVersion + 1
	raw2, _ := json.Marshal(&df)
	if err := os.WriteFile(path, raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	warm := New()
	warm.Load(dir)
	if st := warm.Stats(); st.LoadedEntries != 0 || st.Entries != 0 {
		t.Fatalf("version-mismatched file must load cold, got %+v", st)
	}
}

func TestLoadDropsCorruptEntries(t *testing.T) {
	src := testSource()
	dir := t.TempDir()
	c := New()
	storeOne(t, c, src)
	if err := c.Save(dir, 0); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := filepath.Join(dir, persistFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var df diskFile
	if err := json.Unmarshal(raw, &df); err != nil {
		t.Fatal(err)
	}
	df.Entries[0].Text += "tampered"
	raw2, _ := json.Marshal(&df)
	if err := os.WriteFile(path, raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	warm := New()
	warm.Load(dir) // must not error, must drop the tampered entry
	if st := warm.Stats(); st.LoadedEntries != 0 || st.Entries != 0 {
		t.Fatalf("tampered entry must be dropped, got %+v", st)
	}

	// Total garbage in place of the file is also just a cold start.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	warm2 := New()
	warm2.Load(dir)
	if st := warm2.Stats(); st.Entries != 0 {
		t.Fatalf("garbage file must load cold, got %+v", st)
	}
}

// Save keeps the most-recently-used entries within the byte bound.
func TestSaveLRUBound(t *testing.T) {
	src := mapSource{}
	c := New()
	cx := c.Context(StageI, "x86", 1, 2)
	for i := 0; i < 8; i++ {
		path := fmt.Sprintf("drivers/f%d.c", i)
		src[path] = fmt.Sprintf("int f%d(void){return %d;}\n", i, i)
		p := cx.Probe(src, path)
		p.StoreI([]string{path}, nil, fmt.Sprintf("# 1 %q\npayload %d\n", path, i), testWork)
	}
	// Touch entry 0 so it is the most recent.
	if p := cx.Probe(src, "drivers/f0.c"); !p.Hit {
		t.Fatalf("expected hit on f0")
	}

	dir := t.TempDir()
	// Budget for roughly two entries (each ~100 bytes of accounted size).
	if err := c.Save(dir, 250); err != nil {
		t.Fatalf("Save: %v", err)
	}
	warm := New()
	warm.Load(dir)
	st := warm.Stats()
	if st.Entries == 0 || st.Entries >= 8 {
		t.Fatalf("LRU bound kept %d entries, want a strict MRU subset", st.Entries)
	}
	// The most recently used entry must have survived.
	if p := warm.Context(StageI, "x86", 1, 2).Probe(src, "drivers/f0.c"); !p.Hit {
		t.Fatalf("MRU entry evicted by LRU bound")
	}
}

// Eight goroutines hammer one key: the singleflight election must compute
// exactly once, and the counters must come out worker-count-invariant.
// Run under -race in `make check`.
func TestConcurrentSingleflight(t *testing.T) {
	src := testSource()
	c := New()
	cx := c.Context(StageI, "x86", 11, 22)

	const n = 8
	var computes int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(n)
	for g := 0; g < n; g++ {
		go func() {
			defer wg.Done()
			p := cx.Probe(src, "drivers/a.c")
			if p.Hit {
				return
			}
			mu.Lock()
			computes++
			mu.Unlock()
			p.StoreI(testInputs, testMissing, rootText, testWork)
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computed %d times, want exactly once", computes)
	}
	st := c.Stats()
	if st.MakeI.Misses != 1 || st.MakeI.Hits != n-1 {
		t.Fatalf("counters not invariant: %+v", st.MakeI)
	}

	// Different keys in parallel must not serialize or collide.
	wg.Add(n)
	for g := 0; g < n; g++ {
		g := g
		go func() {
			defer wg.Done()
			path := fmt.Sprintf("drivers/p%d.c", g)
			mu.Lock()
			src[path] = fmt.Sprintf("int p%d;\n", g)
			mu.Unlock()
			ms := mapSource{path: fmt.Sprintf("int p%d;\n", g)}
			p := cx.Probe(ms, path)
			if !p.Hit {
				p.StoreI([]string{path}, nil, "text", testWork)
			}
		}()
	}
	wg.Wait()
}

func TestOptionsFingerprint(t *testing.T) {
	base := func() map[string]string { return map[string]string{"A": "1", "B": "2"} }
	a := OptionsFingerprint(optsWith([]string{"include"}, base(), 10))
	if b := OptionsFingerprint(optsWith([]string{"include"}, base(), 10)); a != b {
		t.Fatalf("fingerprint not deterministic")
	}
	if b := OptionsFingerprint(optsWith([]string{"include", "arch"}, base(), 10)); a == b {
		t.Fatalf("include dirs must affect fingerprint")
	}
	d := base()
	d["MODULE"] = "1"
	if b := OptionsFingerprint(optsWith([]string{"include"}, d, 10)); a == b {
		t.Fatalf("defines must affect fingerprint")
	}
	if b := OptionsFingerprint(optsWith([]string{"include"}, base(), 11)); a == b {
		t.Fatalf("max depth must affect fingerprint")
	}
}

// Persistence failures stay silent in behavior (cold start) but must be
// visible in the metrics registry, so an operator can tell "cold by
// design" from "disk is eating the cache".
func TestPersistFailureCounters(t *testing.T) {
	src := testSource()
	dir := t.TempDir()
	c := New()
	storeOne(t, c, src)
	if err := c.Save(dir, 0); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := filepath.Join(dir, persistFile)

	// A missing file is cold by design: no failure counted.
	reg := metrics.NewRegistry()
	cold := NewIn(reg)
	cold.Load(t.TempDir())
	if got := reg.Counter("ccache_load_failures").Value(); got != 0 {
		t.Fatalf("missing file counted %d load failures, want 0", got)
	}

	// Garbage in place of the file: one load failure.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg = metrics.NewRegistry()
	NewIn(reg).Load(dir)
	if got := reg.Counter("ccache_load_failures").Value(); got != 1 {
		t.Fatalf("garbage file counted %d load failures, want 1", got)
	}

	// Tampered entries: one load failure per dropped entry.
	if err := c.Save(dir, 0); err != nil {
		t.Fatalf("Save: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var df diskFile
	if err := json.Unmarshal(raw, &df); err != nil {
		t.Fatal(err)
	}
	df.Entries[0].Text += "tampered"
	raw2, _ := json.Marshal(&df)
	if err := os.WriteFile(path, raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	reg = metrics.NewRegistry()
	warm := NewIn(reg)
	warm.Load(dir)
	if got := reg.Counter("ccache_load_failures").Value(); got != 1 {
		t.Fatalf("tampered entry counted %d load failures, want 1", got)
	}
	if st := warm.Stats(); st.Entries != 0 {
		t.Fatalf("tampered entry must still be dropped, got %+v", st)
	}

	// A failed save counts too (target dir is a file, MkdirAll fails).
	blocked := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(blocked, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	reg = metrics.NewRegistry()
	sc := NewIn(reg)
	storeOne(t, sc, src)
	if err := sc.Save(filepath.Join(blocked, "cache"), 0); err == nil {
		t.Fatal("Save into a file path must error")
	}
	if got := reg.Counter("ccache_save_failures").Value(); got != 1 {
		t.Fatalf("failed save counted %d save failures, want 1", got)
	}
}

// TestDependents: the reverse dependency view must name exactly the root
// TUs whose manifests recorded a queried path — read or probed-absent —
// without listing a root as its own dependent.
func TestDependents(t *testing.T) {
	src := testSource()
	c := New()
	cx := storeOne(t, c, src) // drivers/a.c closure: sub.h, deep.h (+ absent drivers/sub.h)

	// A second root with a disjoint closure.
	p := cx.Probe(src, "drivers/other.c")
	if p.Hit {
		t.Fatal("unexpected hit")
	}
	p.StoreI([]string{"drivers/other.c"}, nil, "other text", testWork)

	deps := c.Dependents([]string{
		"include/deep.h", // transitive read dep of a.c
		"drivers/sub.h",  // probed-absent dep of a.c
		"drivers/a.c",    // a root itself: never its own dependent
		"include/nope.h", // mentioned by no manifest
	})
	if got := deps["include/deep.h"]; len(got) != 1 || got[0] != "drivers/a.c" {
		t.Errorf("Dependents(deep.h) = %v, want [drivers/a.c]", got)
	}
	if got := deps["drivers/sub.h"]; len(got) != 1 || got[0] != "drivers/a.c" {
		t.Errorf("Dependents(absent probe path) = %v, want [drivers/a.c]", got)
	}
	if got, ok := deps["drivers/a.c"]; ok {
		t.Errorf("root listed as its own dependent: %v", got)
	}
	if got, ok := deps["include/nope.h"]; ok {
		t.Errorf("unrelated path has dependents: %v", got)
	}
}
