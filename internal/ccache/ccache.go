// Package ccache is a content-addressed compile-result cache: it memoizes
// preprocessing (.i) and compilation (.o) verdicts across builds, patches
// and — via the optional persistent tier — across runs.
//
// The key problem is the classic ccache one: which headers a translation
// unit depends on is only known *after* preprocessing it. The cache
// therefore stores manifests ("direct mode"): a probe hashes the invariant
// context (arch name, kconfig valuation fingerprint, cpp.Options
// fingerprint) together with the root file's content, then verifies each
// candidate entry's manifest — every file the original run read (path +
// content hash) and every path it probed and found absent — against the
// current tree. A manifest that verifies proves the entire include closure
// is unchanged, so the memoized verdict is exactly what recomputation
// would produce. Anything that can change a verdict misses: a mutated
// root or transitively included header, a created file that shadows an
// include, a different CONFIG_ valuation, different predefined macros
// (so allyes vs allmod vs MODULE=1 never cross-contaminate), or a
// different architecture. Kbuild reachability is deliberately NOT cached
// — kbuild re-walks Makefiles on every call — so Kbuild gate edits take
// effect live and Makefiles stay out of the manifest.
//
// The root path itself is excluded from the fingerprint so that
// identical-content translation units dedupe: a successful .i entry can
// be served for a different path by rewriting the root's line markers
// (serving is refused — a plain miss — if the quoted old path appears
// outside marker lines, e.g. via __FILE__, which would make the rewrite
// unsound). Failure entries embed paths in their message, so they only
// ever serve for the exact root path that produced them.
//
// Concurrency follows the TokenCache discipline: a per-probe-key
// in-flight election makes every distinct result computed exactly once,
// so hit/miss counters are worker-count-invariant. (They are NOT
// warmth-invariant — a warm start from disk legitimately converts misses
// to hits — which is why they live with the volatile runtime metrics,
// never in the default reproducible report.) The store itself is split
// into shards addressed by probe-key prefix, each with its own mutex, so
// workers probing different translation units never serialize on one
// lock; only the recency sequence is global (a single atomic counter).
package ccache

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jmake/internal/cc"
	"jmake/internal/cpp"
	"jmake/internal/metrics"
	"jmake/internal/vclock"
)

// Source supplies file contents for manifest hashing and verification
// (satisfied by kbuild.TreeSource).
type Source interface {
	ReadFile(path string) (string, bool)
}

// Stage separates the two cached pipeline stages.
type Stage int

// Cache stages.
const (
	StageI Stage = iota // MakeI: preprocessing results
	StageO              // MakeO: compilation verdicts
	numStages
)

func (s Stage) String() string {
	if s == StageI {
		return "make_i"
	}
	return "make_o"
}

// Stats are one stage's counters. Hits and Misses are worker-count-
// invariant (compute-exactly-once); Deduped counts hits served for a
// fingerprint that was stored earlier in the same MakeI invocation
// (identical translation units preprocessed once per group).
type Stats struct {
	Hits        uint64
	Misses      uint64
	Deduped     uint64
	BytesServed uint64
	BytesStored uint64
}

// HitRate is Hits / (Hits+Misses).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// StatsSet is a full cache snapshot.
type StatsSet struct {
	MakeI, MakeO Stats
	// Entries / Bytes describe the in-memory store right now.
	Entries int
	Bytes   int64
	// LoadedEntries counts entries warm-started from the persistent tier.
	LoadedEntries int
	// SavedVirtual is the effective virtual time the cache saved: for every
	// serve, the full recompute price minus the charged probe cost. The
	// reported per-patch durations always use the full price (so reports
	// are byte-identical with the cache on, off, warm or cold); this ledger
	// is where the cache's honest effective win is accounted.
	SavedVirtual time.Duration
	// The same ledger attributed per stage (SavedVirtual is their sum),
	// for the bench report's span attribution.
	SavedMakeI, SavedMakeO time.Duration
}

// dep is one manifest entry: a file the original run read (content hash)
// or probed and found absent.
type dep struct {
	Path   string `json:"p"`
	Hash   uint64 `json:"h,omitempty"`
	Absent bool   `json:"a,omitempty"`
}

// entry is one memoized verdict. Immutable after insertion except for
// lastUse, which is only touched under the cache lock.
type entry struct {
	stage    Stage
	ctx      uint64
	rootPath string
	deps     []dep // deps[0] is the root file
	id       uint64

	failed  bool
	errText string
	text    string // StageI success payload
	work    vclock.FileWork
	object  cc.Object // StageO success payload

	size    int64
	lastUse uint64
}

// stageSeries holds one stage's counter handles in the owning registry —
// the registry is the single home for these numbers; Stats() builds its
// snapshot as a view over it.
type stageSeries struct {
	hits, misses, deduped    *metrics.Counter
	bytesServed, bytesStored *metrics.Counter
	savedNS                  *metrics.Counter // effective ledger, integer ns
}

func newStageSeries(reg *metrics.Registry, stage Stage) stageSeries {
	l := metrics.L("stage", stage.String())
	return stageSeries{
		hits:        reg.Counter("result_cache_hits", l),
		misses:      reg.Counter("result_cache_misses", l),
		deduped:     reg.Counter("result_cache_deduped", l),
		bytesServed: reg.Counter("result_cache_bytes_served", l),
		bytesStored: reg.Counter("result_cache_bytes_stored", l),
		savedNS:     reg.Counter("result_cache_saved_ns", l),
	}
}

func (s stageSeries) snapshot() Stats {
	return Stats{
		Hits:        s.hits.Value(),
		Misses:      s.misses.Value(),
		Deduped:     s.deduped.Value(),
		BytesServed: s.bytesServed.Value(),
		BytesStored: s.bytesStored.Value(),
	}
}

// cacheShards is the shard count; a power of two so the shard index is a
// mask of the probe key's top bits.
const cacheShards = 16

// cacheShard is one independently locked slice of the store. An entry
// lives in the shard of its probe key; entryID includes every probe-key
// component (stage, context, root content hash via deps[0]), so the byID
// identity index can live shard-local too.
type cacheShard struct {
	mu       sync.Mutex
	index    map[uint64][]*entry // probe key -> candidate entries
	byID     map[uint64]*entry
	inflight map[uint64]chan struct{}
	bytes    int64
}

// Cache is the two-tier store. The zero value is not usable; call New.
type Cache struct {
	shards [cacheShards]cacheShard
	// seq is the global recency sequence: one atomic counter instead of a
	// lock gives LRU ordering a total order across shards.
	seq    atomic.Uint64
	loaded atomic.Int64
	series [numStages]stageSeries
	// loadFailures / saveFailures count persistence problems (corrupt or
	// version-mismatched files, dropped entries, failed writes). Cold-start
	// semantics are unchanged — these exist so an operator can tell "cold
	// by design" from "disk is eating the cache".
	loadFailures *metrics.Counter
	saveFailures *metrics.Counter
	warnOnce     sync.Once
}

// New returns an empty cache counting into a private registry.
func New() *Cache { return NewIn(metrics.NewRegistry()) }

// NewIn returns an empty cache whose counters are series in reg, so a
// shared session registry owns every cache's numbers.
func NewIn(reg *metrics.Registry) *Cache {
	c := &Cache{
		loadFailures: reg.Counter("ccache_load_failures"),
		saveFailures: reg.Counter("ccache_save_failures"),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.index = make(map[uint64][]*entry)
		sh.byID = make(map[uint64]*entry)
		sh.inflight = make(map[uint64]chan struct{})
	}
	for s := StageI; s < numStages; s++ {
		c.series[s] = newStageSeries(reg, s)
	}
	return c
}

// shardFor maps a probe key to its shard by prefix (top bits).
func (c *Cache) shardFor(pk uint64) *cacheShard {
	return &c.shards[pk>>(64-4)] // top log2(cacheShards) bits
}

// Stats snapshots the counters. Shards are visited in turn, so the
// entry/byte totals are a consistent sum of per-shard snapshots (exact
// whenever no store races the call, which is when the numbers matter).
func (c *Cache) Stats() StatsSet {
	var entries int
	var bytes int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += len(sh.byID)
		bytes += sh.bytes
		sh.mu.Unlock()
	}
	savedI := c.series[StageI].savedNS.Duration()
	savedO := c.series[StageO].savedNS.Duration()
	return StatsSet{
		MakeI:         c.series[StageI].snapshot(),
		MakeO:         c.series[StageO].snapshot(),
		Entries:       entries,
		Bytes:         bytes,
		LoadedEntries: int(c.loaded.Load()),
		SavedVirtual:  savedI + savedO,
		SavedMakeI:    savedI,
		SavedMakeO:    savedO,
	}
}

// AddSaved credits the stage's effective-time ledger (full price minus
// probe cost for one serve).
func (c *Cache) AddSaved(stage Stage, d time.Duration) {
	c.series[stage].savedNS.AddDuration(d)
}

// Dependents reports, for each queried path, the distinct root files of
// live manifests whose include closure recorded that path — read with a
// content hash, or probed and found absent. This is the reverse
// dependency view a commit-stream follower needs: exactly the
// translation units whose cached verdicts a change to that path can
// invalidate (any other entry's manifest cannot mention the path, so its
// verdict provably survives the change). The root file is not listed as
// its own dependent; per-path results are sorted for determinism.
func (c *Cache) Dependents(paths []string) map[string][]string {
	want := make(map[string]bool, len(paths))
	for _, p := range paths {
		want[p] = true
	}
	found := make(map[string]map[string]bool)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.byID {
			for _, d := range e.deps[1:] {
				if want[d.Path] {
					m := found[d.Path]
					if m == nil {
						m = make(map[string]bool)
						found[d.Path] = m
					}
					m[e.rootPath] = true
				}
			}
		}
		sh.mu.Unlock()
	}
	out := make(map[string][]string, len(found))
	for p, m := range found {
		roots := make([]string, 0, len(m))
		for r := range m {
			roots = append(roots, r)
		}
		sort.Strings(roots)
		out[p] = roots
	}
	return out
}

// NoteDedup counts one within-invocation dedupe hit.
func (c *Cache) NoteDedup(stage Stage) {
	c.series[stage].deduped.Inc()
}

func hashContent(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

func hashU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(b[:])
}

func probeKey(stage Stage, ctx, rootHash uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte{byte(stage)})
	hashU64(h, ctx)
	hashU64(h, rootHash)
	return h.Sum64()
}

// OptionsFingerprint hashes the verdict-relevant cpp.Options fields:
// include search order, predefined macros, and nesting bound. The token
// cache is a pure memoization and is excluded.
func OptionsFingerprint(o cpp.Options) uint64 {
	h := fnv.New64a()
	for _, d := range o.IncludeDirs {
		_, _ = h.Write([]byte(d))
		_, _ = h.Write([]byte{0})
	}
	_, _ = h.Write([]byte{1})
	writeDef := func(name, body string) {
		_, _ = h.Write([]byte(name))
		_, _ = h.Write([]byte{'='})
		_, _ = h.Write([]byte(body))
		_, _ = h.Write([]byte{0})
	}
	if o.Predefined != nil {
		// Pre-sorted in the shared set; byte-identical to the map walk
		// below, so either Options form yields the same fingerprint.
		o.Predefined.VisitDefines(writeDef)
	} else {
		names := make([]string, 0, len(o.Defines))
		for name := range o.Defines {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			writeDef(name, o.Defines[name])
		}
	}
	hashU64(h, uint64(o.MaxDepth))
	return h.Sum64()
}

// Context pins the invariant key components — stage, architecture,
// config fingerprint, options fingerprint — for a sequence of probes.
type Context struct {
	c   *Cache
	stg Stage
	ctx uint64
}

// Context builds a probe context.
func (c *Cache) Context(stage Stage, archName string, configFP, optsFP uint64) Context {
	return Context{c: c, stg: stage, ctx: ContextKey(stage, archName, configFP, optsFP)}
}

// ContextKey hashes the invariant probe-context components. Exposed so
// the tracing layer can compute probe identities even when no cache is
// attached (trace cache-outcome stamping must be cache-state-invariant).
func ContextKey(stage Stage, archName string, configFP, optsFP uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte{byte(stage)})
	_, _ = h.Write([]byte(archName))
	_, _ = h.Write([]byte{0})
	hashU64(h, configFP)
	hashU64(h, optsFP)
	return h.Sum64()
}

// KeyFor returns the probe key a Probe for rootContent under ctxKey
// would carry — the same identity Probe.Key reports when a cache is
// attached.
func KeyFor(stage Stage, ctxKey uint64, rootContent string) uint64 {
	return probeKey(stage, ctxKey, hashContent(rootContent))
}

// Probe is the result of one lookup. On a hit the payload fields are
// filled and the probe is finished. On a miss the caller holds the
// probe key's in-flight slot and MUST finish the probe with exactly one
// of StoreI / StoreO / StoreFailure / Cancel — other workers probing the
// same key wait until then (compute-exactly-once).
type Probe struct {
	c        *Cache
	stg      Stage
	ctx      uint64
	src      Source
	rootPath string
	rootHash uint64
	rootOK   bool
	done     bool

	// Key identifies the probe (context + root content); the builder uses
	// it to detect within-invocation dedupe.
	Key uint64
	// Hit reports whether a verified entry was served.
	Hit bool
	// Deps is the number of manifest entries verified for the hit,
	// for probe pricing (vclock.Model.CacheProbe).
	Deps int

	// Served payload (valid when Hit).
	Failed  bool
	ErrText string
	Text    string
	Work    vclock.FileWork
	Object  cc.Object
}

// Probe looks up the verdict for rootPath against src.
func (cx Context) Probe(src Source, rootPath string) *Probe {
	p := &Probe{c: cx.c, stg: cx.stg, ctx: cx.ctx, src: src, rootPath: rootPath}
	content, ok := src.ReadFile(rootPath)
	if !ok {
		// Unreadable root: nothing to fingerprint; count the failed lookup
		// and let the caller recompute (the preprocessor will report the
		// real error). Store becomes a no-op.
		cx.c.series[cx.stg].misses.Inc()
		p.done = true
		return p
	}
	p.rootOK = true
	p.rootHash = hashContent(content)
	p.Key = probeKey(cx.stg, cx.ctx, p.rootHash)

	c := cx.c
	sh := c.shardFor(p.Key)
	for {
		sh.mu.Lock()
		if ch, busy := sh.inflight[p.Key]; busy {
			sh.mu.Unlock()
			<-ch
			continue
		}
		cands := append([]*entry(nil), sh.index[p.Key]...)
		ch := make(chan struct{})
		sh.inflight[p.Key] = ch
		sh.mu.Unlock()

		// Verify manifests against the current tree outside the lock;
		// entries are immutable and no other worker can insert under this
		// key while we hold the in-flight slot.
		for _, e := range cands {
			text, ok := p.tryServe(e)
			if !ok {
				continue
			}
			sh.mu.Lock()
			e.lastUse = c.seq.Add(1)
			delete(sh.inflight, p.Key)
			sh.mu.Unlock()
			c.series[p.stg].hits.Inc()
			c.series[p.stg].bytesServed.Add(uint64(e.size))
			close(ch)
			p.Hit = true
			p.Deps = len(e.deps)
			p.Failed = e.failed
			p.ErrText = e.errText
			p.Text = text
			p.Work = e.work
			p.Object = e.object
			p.done = true
			return p
		}
		// Miss: keep the in-flight slot until Store*/Cancel.
		return p
	}
}

// tryServe verifies e's manifest for this probe and returns the (possibly
// root-remapped) .i text.
func (p *Probe) tryServe(e *entry) (string, bool) {
	if e.ctx != p.ctx || e.stage != p.stg {
		return "", false
	}
	if len(e.deps) == 0 || e.deps[0].Hash != p.rootHash {
		return "", false
	}
	// Failures embed the root path in their message: exact path only.
	if e.failed && e.rootPath != p.rootPath {
		return "", false
	}
	for _, d := range e.deps[1:] {
		if d.Absent {
			if _, ok := p.src.ReadFile(d.Path); ok {
				return "", false
			}
			continue
		}
		content, ok := p.src.ReadFile(d.Path)
		if !ok || hashContent(content) != d.Hash {
			return "", false
		}
	}
	if e.failed || e.stage == StageO || e.rootPath == p.rootPath {
		return e.text, true
	}
	return remapRoot(e.text, e.rootPath, p.rootPath)
}

// remapRoot rewrites the gcc-style line markers that name oldPath so a
// cached .i text serves an identical-content file at newPath. Markers and
// the __FILE__ builtin both embed the Go-quoted path; only marker lines
// are rewritten, and if the quoted old path appears anywhere else (a
// __FILE__ expansion or a source literal spelling the path) the rewrite
// would be unsound, so serving is refused.
func remapRoot(text, oldPath, newPath string) (string, bool) {
	oldQ := strconv.Quote(oldPath)
	if !strings.Contains(text, oldQ) {
		return text, true
	}
	newQ := strconv.Quote(newPath)
	lines := strings.Split(text, "\n")
	for i, ln := range lines {
		if rest, ok := strings.CutPrefix(ln, "# "); ok {
			if j := strings.IndexByte(rest, ' '); j > 0 && isDigits(rest[:j]) {
				q := rest[j+1:]
				if q == oldQ || strings.HasPrefix(q, oldQ+" ") {
					lines[i] = "# " + rest[:j] + " " + newQ + q[len(oldQ):]
					continue
				}
				// A marker for another file cannot contain the quoted old
				// path (an interior '"' would have been escaped).
				continue
			}
		}
		if strings.Contains(ln, oldQ) {
			return "", false
		}
	}
	return strings.Join(lines, "\n"), true
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// buildDeps hashes the closure reported by the preprocessor against the
// probe's tree. inputs[0] is normally the root file; it is forced to the
// front so deps[0] is always the root.
func (p *Probe) buildDeps(inputs, missing []string) []dep {
	deps := make([]dep, 0, len(inputs)+len(missing))
	deps = append(deps, dep{Path: p.rootPath, Hash: p.rootHash})
	for _, in := range inputs {
		if in == p.rootPath {
			continue
		}
		content, ok := p.src.ReadFile(in)
		if !ok {
			// The tree changed mid-run (cannot happen on the single-threaded
			// builder path); treat as unhashable.
			return nil
		}
		deps = append(deps, dep{Path: in, Hash: hashContent(content)})
	}
	for _, m := range missing {
		deps = append(deps, dep{Path: m, Absent: true})
	}
	return deps
}

// StoreI finishes a miss with a successful preprocessing result.
func (p *Probe) StoreI(inputs, missing []string, text string, work vclock.FileWork) {
	p.store(&entry{
		stage: StageI, ctx: p.ctx, rootPath: p.rootPath,
		deps: p.buildDeps(inputs, missing), text: text, work: work,
	})
}

// StoreO finishes a miss with a successful compilation verdict.
func (p *Probe) StoreO(inputs, missing []string, obj cc.Object) {
	p.store(&entry{
		stage: StageO, ctx: p.ctx, rootPath: p.rootPath,
		deps: p.buildDeps(inputs, missing), object: obj,
	})
}

// StoreFailure finishes a miss with a genuine (deterministic) failure.
// Injected faults must never reach here: the builder rolls them before
// probing, so fault outcomes are neither stored nor served.
func (p *Probe) StoreFailure(inputs, missing []string, errText string) {
	p.store(&entry{
		stage: p.stg, ctx: p.ctx, rootPath: p.rootPath,
		deps: p.buildDeps(inputs, missing), failed: true, errText: errText,
	})
}

// Cancel finishes a miss without storing (counts as a plain miss).
func (p *Probe) Cancel() { p.store(nil) }

func (p *Probe) store(e *entry) {
	if p.done {
		return
	}
	p.done = true
	c := p.c
	sh := c.shardFor(p.Key)
	sh.mu.Lock()
	c.series[p.stg].misses.Inc()
	if e != nil && len(e.deps) > 0 {
		e.id = entryID(e)
		e.size = entrySize(e)
		c.insertLocked(sh, e)
		c.series[p.stg].bytesStored.Add(uint64(e.size))
	}
	ch := sh.inflight[p.Key]
	delete(sh.inflight, p.Key)
	sh.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// insertLocked adds e to sh (which must be the shard of e's probe key and
// be held locked), replacing any entry with the same identity (same
// stage, context, root path and manifest).
func (c *Cache) insertLocked(sh *cacheShard, e *entry) {
	e.lastUse = c.seq.Add(1)
	if old, ok := sh.byID[e.id]; ok {
		c.removeLocked(sh, old)
	}
	sh.byID[e.id] = e
	pk := probeKey(e.stage, e.ctx, e.deps[0].Hash)
	sh.index[pk] = append(sh.index[pk], e)
	sh.bytes += e.size
}

func (c *Cache) removeLocked(sh *cacheShard, e *entry) {
	delete(sh.byID, e.id)
	pk := probeKey(e.stage, e.ctx, e.deps[0].Hash)
	list := sh.index[pk]
	for i, x := range list {
		if x == e {
			sh.index[pk] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	if len(sh.index[pk]) == 0 {
		delete(sh.index, pk)
	}
	sh.bytes -= e.size
}

// entryID identifies an entry by everything key-side: stage, context,
// root path and full manifest. Deterministic recomputation cannot attach
// two payloads to one identity, so duplicates are safe to replace.
func entryID(e *entry) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte{byte(e.stage)})
	hashU64(h, e.ctx)
	_, _ = h.Write([]byte(e.rootPath))
	_, _ = h.Write([]byte{0})
	for _, d := range e.deps {
		_, _ = h.Write([]byte(d.Path))
		_, _ = h.Write([]byte{0})
		hashU64(h, d.Hash)
		if d.Absent {
			_, _ = h.Write([]byte{1})
		}
	}
	return h.Sum64()
}

func entrySize(e *entry) int64 {
	n := int64(len(e.text) + len(e.errText) + len(e.rootPath) + 64)
	for _, d := range e.deps {
		n += int64(len(d.Path)) + 16
	}
	for _, f := range e.object.Defined {
		n += int64(len(f))
	}
	return n
}
