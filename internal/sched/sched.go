// Package sched provides the parallel patch-evaluation pipeline: a
// worker pool that fans items out over N workers while delivering results
// to the consumer strictly in submission order, with bounded in-flight
// memory.
//
// The pool is deliberately oblivious to what it schedules. Determinism is
// the caller's contract — a job must compute the same result regardless of
// which worker runs it or in what order jobs complete — and the pool's
// contract is that the merge order (and therefore everything the consumer
// builds from it) is independent of the worker count. The evaluation gets
// byte-identical reports at any -workers setting because per-patch state is
// checker-local and the window-invariant caches it shares (Kconfig
// valuations, lexed tokens) memoize pure functions.
//
// Backpressure: each admitted item holds one semaphore slot from dispatch
// until its result has been emitted in order. With InFlight slots, at most
// InFlight results (tree clones, patch reports) exist at once, no matter
// how far the fastest worker runs ahead of an expensive straggler.
package sched

import (
	"context"
	"sync"
	"time"
)

// Options tune one Map run.
type Options struct {
	// Workers is the number of concurrent workers; values below 1 mean 1.
	Workers int
	// InFlight bounds how many items may be admitted (dispatched, running,
	// or completed-but-not-yet-merged) at once. Values below Workers are
	// raised to Workers so no worker is starved; 0 means 2*Workers.
	InFlight int
}

func (o Options) withDefaults(n int) Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if n > 0 && o.Workers > n {
		o.Workers = n
	}
	if o.InFlight <= 0 {
		o.InFlight = 2 * o.Workers
	}
	if o.InFlight < o.Workers {
		o.InFlight = o.Workers
	}
	return o
}

// Metrics describes one completed Map run. Items and the option echoes are
// deterministic; Wall, ItemsPerSec and MaxBuffered depend on scheduling
// and must not feed reproducible reports.
type Metrics struct {
	Items    int
	Workers  int
	InFlight int
	// Wall is the elapsed wall-clock time of the whole run.
	Wall time.Duration
	// ItemsPerSec is Items divided by Wall.
	ItemsPerSec float64
	// MaxBuffered is the high-water mark of results completed out of order
	// and held back for in-order emission (always <= InFlight).
	MaxBuffered int
	// Canceled counts items never dispatched because the context was done
	// first (MapCtx). Dispatch is sequential, so the canceled items are
	// exactly the indexes [Items-Canceled, Items) — the emitted results
	// form an in-order prefix.
	Canceled int
}

type slot[T any] struct {
	i int
	v T
}

// Map runs fn(i) for every i in [0,n) on opts.Workers workers and calls
// emit(i, fn(i)) for every index in strictly ascending order. fn calls run
// concurrently; emit calls run serially on the calling goroutine. Map
// returns after every item has been emitted.
func Map[T any](n int, opts Options, fn func(i int) T, emit func(i int, v T)) Metrics {
	return MapCtx(context.Background(), n, opts, fn, emit)
}

// MapCtx is Map with a cancellation path: once ctx is done, items not yet
// handed to a worker are never dispatched (fn is not called for them and
// emit never sees them), while already-running items finish and are
// emitted in order. The emitted indexes therefore form the in-order
// prefix [0, Items-Canceled). Callers that want running items to stop
// early must additionally check ctx inside fn — the pool only guarantees
// prompt abandonment of the queue.
func MapCtx[T any](ctx context.Context, n int, opts Options, fn func(i int) T, emit func(i int, v T)) Metrics {
	opts = opts.withDefaults(n)
	start := time.Now()
	met := Metrics{Items: n, Workers: opts.Workers, InFlight: opts.InFlight}
	if n <= 0 {
		met.Wall = time.Since(start)
		return met
	}

	sem := make(chan struct{}, opts.InFlight)
	jobs := make(chan int)
	out := make(chan slot[T])

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out <- slot[T]{i: i, v: fn(i)}
			}
		}()
	}
	// canceled is written by the dispatcher before it closes jobs and read
	// by the merger only after out closes; the jobs-close -> workers-done
	// -> out-close chain orders the accesses.
	canceled := 0
	done := ctx.Done()
	go func() {
		defer close(jobs)
		// Admission control: an item is dispatched only once an in-flight
		// slot frees up (released by the merger after in-order emission).
		for i := 0; i < n; i++ {
			select {
			case sem <- struct{}{}:
			case <-done:
				canceled = n - i
				return
			}
			// Re-check after the (possibly long) slot wait so a cancellation
			// that happened while blocked is honored before dispatch, even if
			// a worker is already free to take the job.
			select {
			case <-done:
				<-sem
				canceled = n - i
				return
			default:
			}
			select {
			case jobs <- i:
			case <-done:
				<-sem
				canceled = n - i
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Reorder buffer: results merged in submission order regardless of
	// completion order.
	buffered := make(map[int]T, opts.InFlight)
	next := 0
	for s := range out {
		buffered[s.i] = s.v
		if len(buffered) > met.MaxBuffered {
			met.MaxBuffered = len(buffered)
		}
		for {
			v, ok := buffered[next]
			if !ok {
				break
			}
			delete(buffered, next)
			emit(next, v)
			<-sem
			next++
		}
	}

	met.Canceled = canceled
	met.Wall = time.Since(start)
	if secs := met.Wall.Seconds(); secs > 0 {
		met.ItemsPerSec = float64(n-canceled) / secs
	}
	return met
}

// Collect is Map with the results gathered into a slice, for callers that
// only need the ordered output.
func Collect[T any](n int, opts Options, fn func(i int) T) ([]T, Metrics) {
	out := make([]T, n)
	met := Map(n, opts, fn, func(i int, v T) { out[i] = v })
	return out, met
}
