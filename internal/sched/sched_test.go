package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapEmitsInSubmissionOrder(t *testing.T) {
	const n = 200
	var got []int
	met := Map(n, Options{Workers: 8},
		func(i int) int {
			// Reverse the natural completion order within small windows so
			// the reorder buffer actually has work to do.
			time.Sleep(time.Duration((i%7)*50) * time.Microsecond)
			return i * i
		},
		func(i, v int) {
			if v != i*i {
				t.Errorf("emit(%d) = %d, want %d", i, v, i*i)
			}
			got = append(got, i)
		})
	if len(got) != n {
		t.Fatalf("emitted %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emission order broken at %d: got index %d", i, v)
		}
	}
	if met.Items != n || met.Workers != 8 {
		t.Errorf("metrics = %+v", met)
	}
	if met.MaxBuffered > met.InFlight {
		t.Errorf("MaxBuffered %d exceeds InFlight %d", met.MaxBuffered, met.InFlight)
	}
}

func TestMapBoundsInFlight(t *testing.T) {
	const n, inflight = 120, 3
	var live, maxLive int64
	met := Map(n, Options{Workers: 3, InFlight: inflight},
		func(i int) int {
			cur := atomic.AddInt64(&live, 1)
			for {
				prev := atomic.LoadInt64(&maxLive)
				if cur <= prev || atomic.CompareAndSwapInt64(&maxLive, prev, cur) {
					break
				}
			}
			// Index 0 is the straggler: everything else finishes first, so
			// without admission control the fast items would all pile up.
			if i == 0 {
				time.Sleep(20 * time.Millisecond)
			}
			return i
		},
		func(i, v int) { atomic.AddInt64(&live, -1) })
	if got := atomic.LoadInt64(&maxLive); got > inflight {
		t.Errorf("max in-flight = %d, want <= %d", got, inflight)
	}
	if met.InFlight != inflight {
		t.Errorf("InFlight echo = %d, want %d", met.InFlight, inflight)
	}
}

func TestMapWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []int {
		out, _ := Collect(64, Options{Workers: workers}, func(i int) int {
			return i*31 + 7
		})
		return out
	}
	base := run(1)
	for _, w := range []int{2, 4, 9} {
		got := run(w)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d diverges at %d: %d vs %d", w, i, got[i], base[i])
			}
		}
	}
}

func TestMapDefaults(t *testing.T) {
	// Zero and hostile option values must still terminate and emit all.
	count := 0
	met := Map(10, Options{Workers: -3, InFlight: -1},
		func(i int) struct{} { return struct{}{} },
		func(i int, _ struct{}) { count++ })
	if count != 10 {
		t.Fatalf("emitted %d, want 10", count)
	}
	if met.Workers != 1 || met.InFlight < met.Workers {
		t.Errorf("normalized metrics = %+v", met)
	}
}

func TestMapEmptyInput(t *testing.T) {
	called := false
	met := Map(0, Options{Workers: 4},
		func(i int) int { t.Error("fn called for empty input"); return 0 },
		func(i, v int) { called = true })
	if called || met.Items != 0 {
		t.Errorf("empty run misbehaved: called=%v metrics=%+v", called, met)
	}
}

func TestMapConcurrentFnSerialEmit(t *testing.T) {
	// emit must never run concurrently with itself even though fn does.
	var mu sync.Mutex
	inEmit := false
	Map(100, Options{Workers: 6}, func(i int) int { return i }, func(i, v int) {
		mu.Lock()
		if inEmit {
			t.Error("emit re-entered concurrently")
		}
		inEmit = true
		mu.Unlock()
		mu.Lock()
		inEmit = false
		mu.Unlock()
	})
}

// MapCtx: once the context is canceled, items not yet handed to a worker
// never run; everything dispatched before the cancellation is still
// emitted, in order, as the prefix [0, Items-Canceled).
func TestMapCtxCancelSkipsQueuedItems(t *testing.T) {
	const n = 50
	ctx, cancel := context.WithCancel(context.Background())
	var ran sync.Map
	var emitted []int
	met := MapCtx(ctx, n, Options{Workers: 1, InFlight: 1},
		func(i int) int {
			ran.Store(i, true)
			if i == 0 {
				// Cancel while item 0 is the only dispatched item. The
				// in-flight slot is held until item 0 is emitted, so the
				// dispatcher cannot hand out item 1 before observing done.
				cancel()
			}
			return i
		},
		func(i int, v int) { emitted = append(emitted, v) })

	if met.Canceled != n-1 {
		t.Fatalf("Canceled = %d, want %d", met.Canceled, n-1)
	}
	if len(emitted) != 1 || emitted[0] != 0 {
		t.Fatalf("emitted = %v, want [0]", emitted)
	}
	ran.Range(func(k, _ any) bool {
		if k.(int) != 0 {
			t.Errorf("canceled item %d ran", k)
		}
		return true
	})
}

// Cancellation mid-flight with many workers: the emitted results are an
// ascending prefix, nothing past the canceled boundary ever runs, and the
// books balance.
func TestMapCtxCancelMidFlight(t *testing.T) {
	const n = 300
	ctx, cancel := context.WithCancel(context.Background())
	var ranCount atomic.Int64
	var emitted []int
	met := MapCtx(ctx, n, Options{Workers: 8},
		func(i int) int {
			ranCount.Add(1)
			if i == 40 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return i
		},
		func(i int, v int) { emitted = append(emitted, v) })

	if met.Canceled == 0 {
		t.Fatal("expected some items to be canceled")
	}
	boundary := n - met.Canceled
	if len(emitted) != boundary {
		t.Fatalf("emitted %d items, want %d (= Items-Canceled)", len(emitted), boundary)
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emitted[%d] = %d; merge order broken", i, v)
		}
	}
	if got := int(ranCount.Load()); got != boundary {
		t.Fatalf("fn ran %d times, want %d (every dispatched item, nothing more)", got, boundary)
	}
}

// An already-done context runs nothing.
func TestMapCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	met := MapCtx(ctx, 10, Options{Workers: 4},
		func(i int) int { ran = true; return i },
		func(i int, v int) { t.Errorf("emit(%d) on a dead context", i) })
	if ran {
		t.Error("fn ran on a dead context")
	}
	if met.Canceled != 10 {
		t.Fatalf("Canceled = %d, want 10", met.Canceled)
	}
}
