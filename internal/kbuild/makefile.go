// Package kbuild implements a Kbuild-style build system over an in-memory
// source tree: per-directory Makefiles with obj-$(CONFIG_X) rules,
// composite objects, directory descent, single-target preprocessing
// (`make file.i`) and compilation (`make file.o`), plus the Makefile
// heuristics JMake uses to guess gating configuration variables (§III-C).
package kbuild

import (
	"errors"
	"fmt"
	"path"
	"regexp"
	"sort"
	"strings"

	"jmake/internal/fstree"
)

// ErrNoMakefile is returned when a directory on the build path has no
// Makefile.
var ErrNoMakefile = errors.New("kbuild: no Makefile found")

// ObjRule is one `obj-$(COND) += targets...` line. CondVar is the CONFIG
// variable name without the CONFIG_ prefix; "" means unconditionally built
// (obj-y). Module is true for obj-m rules. Line is the rule's 1-based line
// number in the makefile, so audits can point at the exact reference.
type ObjRule struct {
	CondVar string
	Module  bool
	Targets []string // "foo.o" or "subdir/"
	Line    int
}

// Makefile is a parsed Kbuild makefile.
type Makefile struct {
	Path string
	Objs []ObjRule
	// Composites maps a composite object name ("foo", from foo.o) to its
	// constituent object files, from `foo-objs := a.o b.o` or `foo-y := ...`.
	Composites map[string][]string
	// ConfigVars lists every CONFIG_* variable mentioned anywhere in the
	// file, for the fallback gating heuristic.
	ConfigVars []string
}

var (
	objRuleRe   = regexp.MustCompile(`^obj-(y|m|\$\(CONFIG_([A-Za-z0-9_]+)\))\s*[+:]?=\s*(.*)$`)
	compositeRe = regexp.MustCompile(`^([A-Za-z0-9_\-]+)-(objs|y)\s*[+:]?=\s*(.*)$`)
	configVarRe = regexp.MustCompile(`CONFIG_([A-Za-z0-9_]+)`)
)

// ParseMakefile parses Kbuild makefile content. archName replaces
// $(SRCARCH)/$(ARCH) references, which the root Makefile uses to descend
// into the architecture directory.
func ParseMakefile(mkPath, content, archName string) *Makefile {
	content = strings.ReplaceAll(content, "$(SRCARCH)", archName)
	content = strings.ReplaceAll(content, "$(ARCH)", archName)
	mf := &Makefile{Path: mkPath, Composites: make(map[string][]string)}
	seenVar := make(map[string]bool)
	for num, raw := range strings.Split(content, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, m := range configVarRe.FindAllStringSubmatch(line, -1) {
			if !seenVar[m[1]] {
				seenVar[m[1]] = true
				mf.ConfigVars = append(mf.ConfigVars, m[1])
			}
		}
		if m := objRuleRe.FindStringSubmatch(line); m != nil {
			rule := ObjRule{Targets: strings.Fields(m[3]), Line: num + 1}
			switch {
			case m[1] == "y":
			case m[1] == "m":
				rule.Module = true
			default:
				rule.CondVar = m[2]
			}
			mf.Objs = append(mf.Objs, rule)
			continue
		}
		if m := compositeRe.FindStringSubmatch(line); m != nil && m[1] != "obj" {
			name := strings.TrimSuffix(m[1], "-")
			mf.Composites[name] = append(mf.Composites[name], strings.Fields(m[3])...)
		}
	}
	return mf
}

// LoadMakefile reads and parses the makefile for directory dir, trying
// "Makefile" then "Kbuild".
func LoadMakefile(t *fstree.Tree, dir, archName string) (*Makefile, error) {
	for _, name := range []string{"Makefile", "Kbuild"} {
		p := path.Join(dir, name)
		if content, err := t.Read(p); err == nil {
			return ParseMakefile(p, content, archName), nil
		}
	}
	return nil, fmt.Errorf("%w in %s", ErrNoMakefile, dir)
}

// ruleFor returns the rule covering target ("foo.o" or "sub/") and whether
// one exists. Composite membership is resolved: if target belongs to
// foo-objs, the rule for foo.o applies.
func (mf *Makefile) ruleFor(target string) (ObjRule, bool) {
	for _, r := range mf.Objs {
		for _, tgt := range r.Targets {
			if tgt == target {
				return r, true
			}
		}
	}
	if strings.HasSuffix(target, ".o") {
		for comp, members := range mf.Composites {
			for _, mem := range members {
				if mem == target {
					return mf.ruleFor(comp + ".o")
				}
			}
		}
	}
	return ObjRule{}, false
}

// GatingConfigs implements the paper's §III-C Makefile heuristic for a .c
// file: configuration variables on lines that mention the file's .o,
// recursively through composite-object labels, falling back to every
// CONFIG variable in the Makefile when nothing more specific is found.
func GatingConfigs(t *fstree.Tree, cFile, archName string) ([]string, error) {
	mf, err := LoadMakefile(t, path.Dir(cFile), archName)
	if err != nil {
		return nil, err
	}
	obj := strings.TrimSuffix(path.Base(cFile), ".c") + ".o"
	vars := make(map[string]bool)
	collectGating(mf, obj, vars, 0)
	if len(vars) == 0 {
		for _, v := range mf.ConfigVars {
			vars[v] = true
		}
	}
	out := make([]string, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

// Gate is the exact Kbuild gate of one file: the conjunction of CONFIG
// variables that must be enabled for the build to descend to it. Unlike the
// GatingConfigs heuristic, it is derived from the actual descent chain and
// object rule, so it is a presence condition, not a guess.
type Gate struct {
	// Vars are CONFIG variable names (without prefix, sorted, deduplicated)
	// gating the descent directories and the file's own rule; all must be
	// != n for the file to be built.
	Vars []string
	// OwnVar is the CONFIG variable of the file's own obj- rule, "" for
	// obj-y/obj-m. When set it also appears in Vars.
	OwnVar string
	// OwnModule is true when the file's own rule is obj-m: the file can
	// only ever be built as a module.
	OwnModule bool
}

func errNotListed(file, mkPath string) error {
	return fmt.Errorf("%w: %s not listed in %s", ErrNotReachable, file, mkPath)
}

func errNoRule(obj, mkPath string) error {
	return fmt.Errorf("%w: no rule for %s in %s", ErrNotReachable, obj, mkPath)
}

func collectGating(mf *Makefile, obj string, vars map[string]bool, depth int) {
	if depth > 8 {
		return
	}
	for _, r := range mf.Objs {
		for _, tgt := range r.Targets {
			if tgt == obj && r.CondVar != "" {
				vars[r.CondVar] = true
			}
		}
	}
	// Composite labels whose member list mentions obj: recurse on the
	// label's own .o.
	for comp, members := range mf.Composites {
		for _, mem := range members {
			if mem == obj {
				collectGating(mf, comp+".o", vars, depth+1)
			}
		}
	}
}
