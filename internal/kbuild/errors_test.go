package kbuild

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want FaultClass
	}{
		{"nil", nil, ClassPermanent},
		{"transient", fmt.Errorf("cpp died: %w", ErrTransient), ClassTransient},
		{"broken arch", fmt.Errorf("%w: mips", ErrBrokenArch), ClassArch},
		{"not reachable", fmt.Errorf("%w: f.c", ErrNotReachable), ClassPermanent},
		{"no makefile", fmt.Errorf("%w at drivers/", ErrNoMakefile), ClassPermanent},
		{"plain", errors.New("compile error"), ClassPermanent},
		// Transient wins over arch: a flaky broken-arch probe is retried.
		{"transient arch", fmt.Errorf("%w: %w", ErrTransient, ErrBrokenArch), ClassTransient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !IsTransient(fmt.Errorf("x: %w", ErrTransient)) || IsTransient(errors.New("y")) {
		t.Error("IsTransient misclassifies")
	}
}

func TestFaultClassString(t *testing.T) {
	if ClassPermanent.String() != "permanent" || ClassTransient.String() != "transient" || ClassArch.String() != "arch" {
		t.Error("FaultClass strings wrong")
	}
}
