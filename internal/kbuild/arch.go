package kbuild

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"jmake/internal/fstree"
)

// HostArch is the architecture of the developer machine in our model,
// matching the paper's testbed.
const HostArch = "x86_64"

// Arch describes one supported architecture of the tree.
type Arch struct {
	Name string
	// SetupOps is the number of Makefile set-up operations the first make
	// invocation performs for this architecture (paper §III-D: >80 for x86,
	// >60 for arm).
	SetupOps int
	// Broken marks architectures whose cross-compiler is unavailable
	// (paper §II-A: 10 of 34 architectures failed).
	Broken bool
	// KconfigRoot is arch/<name>/Kconfig.
	KconfigRoot string
	// IncludeDirs are the preprocessor search paths for this architecture.
	IncludeDirs []string
	// Defines are the compiler's architecture built-ins (e.g. __x86_64__).
	Defines map[string]string
}

// Meta is tree-level build metadata, read from the Kbuild.meta manifest the
// tree generator emits (the moral equivalent of facts baked into the real
// kernel's build plumbing).
type Meta struct {
	// SetupOpsByArch overrides the per-arch set-up operation counts.
	SetupOpsByArch map[string]int
	// BrokenArches lists architectures without a working cross-compiler.
	BrokenArches map[string]bool
	// WholeBuildFiles lists files whose .o compilation triggers a whole
	// kernel build (paper §V-C, prom_init.c).
	WholeBuildFiles map[string]bool
	// SetupFiles lists files involved in the build's own preliminary
	// compilation; JMake cannot mutate them (paper §V-D).
	SetupFiles map[string]bool
}

// MetaPath is where the manifest lives in the tree.
const MetaPath = "Kbuild.meta"

// LoadMeta reads Kbuild.meta from the tree root; a missing manifest yields
// empty metadata.
func LoadMeta(t *fstree.Tree) (*Meta, error) {
	m := &Meta{
		SetupOpsByArch:  make(map[string]int),
		BrokenArches:    make(map[string]bool),
		WholeBuildFiles: make(map[string]bool),
		SetupFiles:      make(map[string]bool),
	}
	content, err := t.Read(MetaPath)
	if err != nil {
		return m, nil
	}
	for ln, raw := range strings.Split(content, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "setupops" && len(fields) == 3:
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("kbuild: %s:%d: bad setupops count %q", MetaPath, ln+1, fields[2])
			}
			m.SetupOpsByArch[fields[1]] = n
		case fields[0] == "brokenarch" && len(fields) == 2:
			m.BrokenArches[fields[1]] = true
		case fields[0] == "wholebuild" && len(fields) == 2:
			m.WholeBuildFiles[fstree.Clean(fields[1])] = true
		case fields[0] == "setupfile" && len(fields) == 2:
			m.SetupFiles[fstree.Clean(fields[1])] = true
		default:
			return nil, fmt.Errorf("kbuild: %s:%d: bad manifest line %q", MetaPath, ln+1, line)
		}
	}
	return m, nil
}

// defaultSetupOps derives a plausible per-arch set-up count when the
// manifest has no override.
func defaultSetupOps(name string) int {
	sum := 0
	for i := 0; i < len(name); i++ {
		sum += int(name[i])
	}
	return 55 + sum%25
}

// DiscoverArches scans arch/ and returns the architectures the tree
// supports, keyed by name.
func DiscoverArches(t *fstree.Tree, meta *Meta) map[string]*Arch {
	out := make(map[string]*Arch)
	seen := make(map[string]bool)
	for _, p := range t.Under("arch") {
		rest := strings.TrimPrefix(p, "arch/")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			continue
		}
		name := rest[:slash]
		if seen[name] {
			continue
		}
		seen[name] = true
		a := &Arch{
			Name:        name,
			SetupOps:    defaultSetupOps(name),
			Broken:      meta.BrokenArches[name],
			KconfigRoot: "arch/" + name + "/Kconfig",
			IncludeDirs: []string{"arch/" + name + "/include", "include"},
			Defines: map[string]string{
				"__KERNEL__":       "1",
				"__GNUC__":         "4",
				"__" + name + "__": "1",
			},
		}
		if ops, ok := meta.SetupOpsByArch[name]; ok {
			a.SetupOps = ops
		}
		out[name] = a
	}
	return out
}

// ArchNames returns the discovered architecture names, host first, then
// alphabetical — the order JMake tries them (paper §V-B: x86_64 first).
func ArchNames(arches map[string]*Arch) []string {
	var rest []string
	for name := range arches {
		if name != HostArch {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	out := make([]string, 0, len(arches))
	if _, ok := arches[HostArch]; ok {
		out = append(out, HostArch)
	}
	return append(out, rest...)
}
