package kbuild

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"path"
	"strings"
	"sync/atomic"
	"time"

	"jmake/internal/cc"
	"jmake/internal/ccache"
	"jmake/internal/cpp"
	"jmake/internal/faultinject"
	"jmake/internal/fstree"
	"jmake/internal/kconfig"
	"jmake/internal/trace"
	"jmake/internal/vclock"
)

// TreeSource adapts fstree.Tree to the cpp.Source and kconfig.Source
// interfaces.
type TreeSource struct {
	T *fstree.Tree
}

// ReadFile implements cpp.Source and kconfig.Source.
func (s TreeSource) ReadFile(p string) (string, bool) {
	c, err := s.T.Read(p)
	return c, err == nil
}

var (
	_ cpp.Source     = TreeSource{}
	_ kconfig.Source = TreeSource{}
)

// ErrNotReachable is returned when the build never descends to a file for
// the current architecture and configuration ("No rule to make target").
var ErrNotReachable = errors.New("kbuild: file not reachable in this build")

// ErrBrokenArch is returned when the architecture has no working
// cross-compiler.
var ErrBrokenArch = errors.New("kbuild: cross-compiler unavailable")

// Builder performs single-target builds against one tree, architecture and
// configuration, tracking whether set-up work has already been paid (the
// first make invocation for a configuration is much more expensive,
// paper §III-D).
type Builder struct {
	Tree  *fstree.Tree
	Arch  *Arch
	Cfg   *kconfig.Config
	Meta  *Meta
	Model *vclock.Model
	// Cache optionally shares lexing work across builds (see
	// cpp.TokenCache). Set it before the first MakeI/MakeO call.
	Cache *cpp.TokenCache
	// Faults optionally injects deterministic failures into MakeI/MakeO
	// (transient preprocessor errors, truncated .i output, mid-run
	// cross-compiler breakage, stalls). nil disables injection.
	Faults *faultinject.Injector
	// Results optionally memoizes preprocessing and compilation verdicts
	// across builds, patches and runs, keyed by the include closure (see
	// internal/ccache). Reported durations stay at the full recompute
	// price — caching saves real compute, not reported virtual time — with
	// the effective probe-priced ledger kept on the cache itself. Injected
	// faults are rolled before any probe and are never stored or served.
	// Set it before the first MakeI/MakeO call; nil disables caching.
	Results *ccache.Cache
	// Trace optionally records every make invocation as a virtual-time
	// span (internal/trace). Spans carry only cache-state- and worker-
	// invariant attributes: probe identities (for post-merge cache-outcome
	// stamping), never live hit/miss outcomes. nil disables recording.
	Trace *trace.Recorder
	// WarmSetup marks this builder's (arch, configuration) build directory
	// as kept warm by a persistent session (commit-stream follower):
	// set-up was already paid by an earlier check and the directory state
	// survives between commits. Reported durations still charge the full
	// first-invocation set-up — reports must stay byte-identical to a cold
	// session's — but SetupSaved is credited with the avoided delta.
	WarmSetup bool
	// SetupSaved, when non-nil with WarmSetup, accumulates the avoided
	// set-up nanoseconds (atomic adds; shared across builders).
	SetupSaved *int64

	invoked bool
	// invokeSeq distinguishes jitter keys between invocations.
	invokeSeq int

	// Memoized result-cache key components; constant for a builder's
	// lifetime (fixed arch, config and tree metadata).
	fpInit       bool
	cfgFP        uint64
	optsFPMod    uint64
	optsFPNonMod uint64

	// Memoized preprocessor options (one per MODULE flag); constant for a
	// builder's lifetime. The embedded Predefined macro set is shared
	// through the token cache across every builder on the same (arch,
	// config) pair, so the CONFIG_* define set is merged and lexed once
	// per configuration rather than once per preprocessed file.
	optsInit   bool
	optsNonMod cpp.Options
	optsMod    cpp.Options
}

// fingerprints memoizes the result-cache key components (fixed for a
// builder's lifetime).
func (b *Builder) fingerprints() {
	if !b.fpInit {
		b.cfgFP = b.Cfg.Fingerprint()
		b.optsFPNonMod = ccache.OptionsFingerprint(b.cppOptions(false))
		b.optsFPMod = ccache.OptionsFingerprint(b.cppOptions(true))
		b.fpInit = true
	}
}

func (b *Builder) optsFP(asModule bool) uint64 {
	if asModule {
		return b.optsFPMod
	}
	return b.optsFPNonMod
}

// cacheContext builds the probe context for this builder's invariants.
func (b *Builder) cacheContext(stage ccache.Stage, asModule bool) ccache.Context {
	b.fingerprints()
	return b.Results.Context(stage, b.Arch.Name, b.cfgFP, b.optsFP(asModule))
}

// traceKey computes the probe identity a cache probe for path would
// carry, without requiring an attached cache: trace spans must carry the
// same identities whether the result cache is off, cold or warm.
func (b *Builder) traceKey(stage ccache.Stage, asModule bool, path string) uint64 {
	content, ok := TreeSource{b.Tree}.ReadFile(path)
	if !ok {
		return 0
	}
	b.fingerprints()
	return ccache.KeyFor(stage, ccache.ContextKey(stage, b.Arch.Name, b.cfgFP, b.optsFP(asModule)), content)
}

// NewBuilder assembles a builder. It fails for architectures marked broken
// in the tree metadata, mirroring make.cross failures.
func NewBuilder(tree *fstree.Tree, arch *Arch, cfg *kconfig.Config, meta *Meta, model *vclock.Model) (*Builder, error) {
	if arch.Broken {
		return nil, fmt.Errorf("%w: %s", ErrBrokenArch, arch.Name)
	}
	return &Builder{Tree: tree, Arch: arch, Cfg: cfg, Meta: meta, Model: model}, nil
}

// Reachable checks that the build descends to file for this configuration:
// every directory on the path is listed (and enabled) in its parent's
// Makefile, and the file's own object rule is enabled. It returns the
// file's rule value (Yes for built-in, Mod for module).
func (b *Builder) Reachable(file string) (kconfig.Value, error) {
	file = fstree.Clean(file)
	dir := path.Dir(file)
	if dir == "." {
		dir = ""
	}
	// Walk from the root to the file's directory.
	var components []string
	if dir != "" {
		components = strings.Split(dir, "/")
	}
	cur := ""
	for i := 0; i < len(components); i++ {
		mf, err := LoadMakefile(b.Tree, cur, b.Arch.Name)
		if err != nil {
			return kconfig.No, err
		}
		sub := components[i] + "/"
		rule, ok := mf.ruleFor(sub)
		if !ok {
			// Arch directories nest one extra level: the root Makefile lists
			// arch/<name>/ in one step.
			if cur == "" && components[i] == "arch" && i+1 < len(components) {
				if rule2, ok2 := mf.ruleFor("arch/" + components[i+1] + "/"); ok2 {
					if v := b.ruleValue(rule2); v == kconfig.No {
						return kconfig.No, fmt.Errorf("%w: %s disabled at %s", ErrNotReachable, file, mf.Path)
					}
					cur = path.Join(cur, components[i], components[i+1])
					i++
					continue
				}
			}
			return kconfig.No, fmt.Errorf("%w: %s not listed in %s", ErrNotReachable, file, mf.Path)
		}
		if v := b.ruleValue(rule); v == kconfig.No {
			return kconfig.No, fmt.Errorf("%w: %s disabled at %s", ErrNotReachable, file, mf.Path)
		}
		cur = path.Join(cur, components[i])
	}
	// The file's own rule.
	mf, err := LoadMakefile(b.Tree, dir, b.Arch.Name)
	if err != nil {
		return kconfig.No, err
	}
	obj := strings.TrimSuffix(path.Base(file), ".c") + ".o"
	rule, ok := mf.ruleFor(obj)
	if !ok {
		return kconfig.No, fmt.Errorf("%w: no rule for %s in %s", ErrNotReachable, obj, mf.Path)
	}
	v := b.ruleValue(rule)
	if v == kconfig.No {
		return kconfig.No, fmt.Errorf("%w: rule for %s disabled (CONFIG_%s=n)", ErrNotReachable, obj, rule.CondVar)
	}
	return v, nil
}

func (b *Builder) ruleValue(r ObjRule) kconfig.Value {
	switch {
	case r.CondVar != "":
		return b.Cfg.Value(r.CondVar)
	case r.Module:
		return kconfig.Mod
	default:
		return kconfig.Yes
	}
}

// IFile is the outcome of preprocessing one file in a MakeI invocation.
type IFile struct {
	Path string
	Text string
	Work vclock.FileWork
	// Err is non-nil when this file failed (unreachable, missing include,
	// #error, ...); other files in the same invocation may still succeed.
	Err error

	// Trace bookkeeping: whether the file got far enough to have a probe
	// identity (past reachability and pre-probe faults), and whether it
	// was preprocessed as a module.
	keyed bool
	mod   bool
}

// cppOptions returns the preprocessor options for one file. asModule adds
// the MODULE define, as Kbuild does when compiling modular objects — this
// is why `#ifdef MODULE` code escapes allyesconfig (paper Table IV).
func (b *Builder) cppOptions(asModule bool) cpp.Options {
	if !b.optsInit {
		b.optsNonMod = b.buildOptions(false)
		b.optsMod = b.buildOptions(true)
		b.optsInit = true
	}
	if asModule {
		return b.optsMod
	}
	return b.optsNonMod
}

func (b *Builder) buildOptions(asModule bool) cpp.Options {
	build := func() map[string]string {
		cfgDefs := b.Cfg.Defines()
		defines := make(map[string]string, len(b.Arch.Defines)+len(cfgDefs)+1)
		for k, v := range b.Arch.Defines {
			defines[k] = v
		}
		for k, v := range cfgDefs {
			defines[k] = v
		}
		if asModule {
			defines["MODULE"] = "1"
		}
		return defines
	}
	var pre *cpp.Predefined
	if b.Cache != nil {
		// The election key must identify the define set's content: the
		// config fingerprint covers every CONFIG_* value, and within one
		// token cache's lifetime (one checker, one discovered arch table)
		// the arch name pins the arch built-ins and include dirs.
		h := fnv.New64a()
		_, _ = h.Write([]byte(b.Arch.Name))
		_, _ = h.Write([]byte{0})
		var buf [9]byte
		binary.BigEndian.PutUint64(buf[:8], b.Cfg.Fingerprint())
		if asModule {
			buf[8] = 1
		}
		_, _ = h.Write(buf[:])
		pre = b.Cache.PredefinedFor(h.Sum64(), build)
	} else {
		pre = cpp.NewPredefined(build())
	}
	return cpp.Options{IncludeDirs: b.Arch.IncludeDirs, Predefined: pre, Cache: b.Cache}
}

// MakeI runs `make f1.i f2.i ...` for a group of files (the paper groups
// up to 50 files per invocation). It returns per-file results and the
// virtual duration of the whole invocation.
func (b *Builder) MakeI(files []string) ([]IFile, time.Duration) {
	b.invokeSeq++
	first := !b.invoked
	b.invoked = true

	key := fmt.Sprintf("%s:%d", b.Arch.Name, b.invokeSeq)
	var span *trace.Span
	evBase := 0
	if b.Trace != nil {
		b.fingerprints()
		evBase = b.Faults.EventCount()
		span = b.Trace.Open(trace.KindMakeI,
			trace.A("arch", b.Arch.Name),
			trace.A("cfg", fmt.Sprintf("%016x", b.cfgFP)),
			trace.A("files", fmt.Sprintf("%d", len(files))),
			trace.A("first", fmt.Sprintf("%t", first)))
	}
	archDown := b.Faults.ArchBroken(b.Arch.Name)
	results := make([]IFile, 0, len(files))
	var works []vclock.FileWork // every preprocessed file: the full (reported) price
	// Effective-ledger state, used only with the result cache: recomputed
	// files' work plus probe costs for the hits.
	var missWorks []vclock.FileWork
	var probeCost time.Duration
	var stored map[uint64]bool // probe keys stored by this invocation (dedupe)
	for _, f := range files {
		r := IFile{Path: fstree.Clean(f)}
		if archDown {
			r.Err = fmt.Errorf("%w: %s (broke mid-run)", ErrBrokenArch, b.Arch.Name)
			results = append(results, r)
			continue
		}
		// Faults roll before any cache probe: an injected failure is never
		// stored, and a file the fault hits is never served from cache, so
		// the fault sequence (and every report) is cache-state-independent.
		if b.Faults.FailPreprocess(b.Arch.Name + ":i:" + r.Path) {
			r.Err = fmt.Errorf("%w: preprocessor crashed on %s (%s)", ErrTransient, r.Path, b.Arch.Name)
			results = append(results, r)
			continue
		}
		// Reachability is always computed live (never cached): Kbuild gate
		// and Makefile edits must take effect immediately.
		v, err := b.Reachable(r.Path)
		if err != nil {
			r.Err = err
			results = append(results, r)
			continue
		}
		r.mod = v == kconfig.Mod
		r.keyed = true
		if b.Results == nil {
			res, err := cpp.Preprocess(TreeSource{b.Tree}, r.Path, b.cppOptions(v == kconfig.Mod))
			if err != nil {
				r.Err = err
				results = append(results, r)
				continue
			}
			r.Text = res.Output
			if b.Faults.TruncateI(b.Arch.Name + ":i:" + r.Path) {
				r.Text = r.Text[:len(r.Text)/2]
			}
			r.Work = vclock.FileWork{Lines: res.InputLines, Includes: res.Includes}
			works = append(works, r.Work)
			results = append(results, r)
			continue
		}
		p := b.cacheContext(ccache.StageI, v == kconfig.Mod).Probe(TreeSource{b.Tree}, r.Path)
		if p.Hit {
			probeCost += b.Model.CacheProbe(p.Deps, key+":"+r.Path)
			if stored[p.Key] {
				b.Results.NoteDedup(ccache.StageI)
			}
			if p.Failed {
				r.Err = errors.New(p.ErrText)
				results = append(results, r)
				continue
			}
			r.Text = p.Text
			if b.Faults.TruncateI(b.Arch.Name + ":i:" + r.Path) {
				r.Text = r.Text[:len(r.Text)/2]
			}
			r.Work = p.Work
			works = append(works, r.Work)
			results = append(results, r)
			continue
		}
		res, err := cpp.Preprocess(TreeSource{b.Tree}, r.Path, b.cppOptions(v == kconfig.Mod))
		if stored == nil {
			stored = make(map[uint64]bool)
		}
		stored[p.Key] = true
		if err != nil {
			p.StoreFailure(res.Inputs, res.Missing, err.Error())
			r.Err = err
			results = append(results, r)
			continue
		}
		r.Text = res.Output
		r.Work = vclock.FileWork{Lines: res.InputLines, Includes: res.Includes}
		// Store the clean text before the truncation fault is applied, so
		// an injected truncation is never served to a later probe.
		p.StoreI(res.Inputs, res.Missing, res.Output, r.Work)
		if b.Faults.TruncateI(b.Arch.Name + ":i:" + r.Path) {
			r.Text = r.Text[:len(r.Text)/2]
		}
		works = append(works, r.Work)
		missWorks = append(missWorks, r.Work)
		results = append(results, r)
	}
	dur := b.Model.MakeI(first, b.Arch.SetupOps, works, key)
	if b.Results != nil {
		eff := b.Model.MakeI(first, b.Arch.SetupOps, missWorks, key) + probeCost
		if eff < dur {
			b.Results.AddSaved(ccache.StageI, dur-eff)
		}
	}
	b.creditWarmSetup(first,
		b.Model.MakeI(true, b.Arch.SetupOps, nil, key)-b.Model.MakeI(false, b.Arch.SetupOps, nil, key))
	dur += b.Faults.Stall(key)
	if span != nil {
		evs := b.Faults.EventsSince(evBase)
		for i := range results {
			r := &results[i]
			attrs := []trace.Attr{trace.A("path", r.Path), trace.A("outcome", outcomeOf(r.Err))}
			for _, ev := range evs {
				if ev.Op == b.Arch.Name+":i:"+r.Path {
					attrs = append(attrs, trace.A("fault", ev.Kind.String()))
				}
			}
			m := b.Trace.Mark(trace.KindFile, attrs...)
			if r.keyed {
				m.Key = b.traceKey(ccache.StageI, r.mod, r.Path)
			}
		}
		for _, ev := range evs {
			if ev.Op == key || ev.Op == b.Arch.Name {
				span.Add(trace.A("fault", ev.Kind.String()))
			}
		}
		b.Trace.Advance(dur)
		b.Trace.Close(span)
	}
	return results, dur
}

// outcomeOf classifies a make result for span attributes. Every class is
// deterministic: fault-injected outcomes follow the seeded plan, and
// cached verdicts reproduce the recomputed error text exactly.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrNotReachable):
		return "unreachable"
	case errors.Is(err, ErrBrokenArch):
		return "arch-broken"
	case errors.Is(err, ErrTransient):
		return "transient"
	default:
		return "error"
	}
}

// MakeO runs `make file.o`: preprocess then compile. The returned duration
// includes the whole-kernel prerequisite build when the tree metadata
// marks the file that way (paper §V-C).
func (b *Builder) MakeO(file string) (cc.Object, time.Duration, error) {
	if b.Trace == nil {
		return b.makeO(file)
	}
	b.fingerprints()
	file = fstree.Clean(file)
	span := b.Trace.Open(trace.KindMakeO,
		trace.A("arch", b.Arch.Name),
		trace.A("cfg", fmt.Sprintf("%016x", b.cfgFP)),
		trace.A("path", file))
	evBase := b.Faults.EventCount()
	obj, dur, err := b.makeO(file)
	span.Add(trace.A("outcome", outcomeOf(err)))
	preProbeFault := false
	for _, ev := range b.Faults.EventsSince(evBase) {
		span.Add(trace.A("fault", ev.Kind.String()))
		if ev.Kind == faultinject.KindPreprocess || ev.Kind == faultinject.KindArchBreak {
			preProbeFault = true
		}
	}
	// Files that got past reachability and the pre-probe faults have a
	// probe identity; record it on a cache-probe mark so post-merge
	// stamping can assign the deterministic cache outcome.
	if !preProbeFault {
		if v, rerr := b.Reachable(file); rerr == nil {
			if k := b.traceKey(ccache.StageO, v == kconfig.Mod, file); k != 0 {
				m := b.Trace.Mark(trace.KindCacheProbe, trace.A("path", file))
				m.Key = k
			}
		}
	}
	b.Trace.Advance(dur)
	b.Trace.Close(span)
	return obj, dur, err
}

func (b *Builder) makeO(file string) (cc.Object, time.Duration, error) {
	b.invokeSeq++
	first := !b.invoked
	b.invoked = true
	key := fmt.Sprintf("%s:o:%d", b.Arch.Name, b.invokeSeq)

	file = fstree.Clean(file)
	failBase := b.Model.MakeO(first, b.Arch.SetupOps, 0, 0, key)
	// Every path below charges `first` pricing exactly once (failBase or
	// the success duration share the key, and jitter multiplies the whole
	// charge), so the warm-set-up credit is exact at any exit.
	b.creditWarmSetup(first,
		failBase-b.Model.MakeO(false, b.Arch.SetupOps, 0, 0, key))
	stall := b.Faults.Stall(key)
	failDur := failBase + stall
	// Injected faults roll before any cache interaction (see MakeI).
	if b.Faults.ArchBroken(b.Arch.Name) {
		return cc.Object{}, failDur, fmt.Errorf("%w: %s (broke mid-run)", ErrBrokenArch, b.Arch.Name)
	}
	if b.Faults.FailPreprocess(b.Arch.Name + ":o:" + file) {
		return cc.Object{}, failDur, fmt.Errorf("%w: compiler crashed on %s (%s)", ErrTransient, file, b.Arch.Name)
	}
	v, err := b.Reachable(file)
	if err != nil {
		return cc.Object{}, failDur, err
	}
	if b.Results != nil {
		p := b.cacheContext(ccache.StageO, v == kconfig.Mod).Probe(TreeSource{b.Tree}, file)
		if p.Hit {
			probe := b.Model.CacheProbe(p.Deps, key)
			if p.Failed {
				if probe < failBase {
					b.Results.AddSaved(ccache.StageO, failBase-probe)
				}
				return cc.Object{}, failDur, errors.New(p.ErrText)
			}
			obj := p.Object
			prereq := 0
			if b.Meta.WholeBuildFiles[file] {
				prereq = b.Tree.Len()
			}
			dur := b.Model.MakeO(first, b.Arch.SetupOps, obj.Lines, prereq, key)
			if probe < dur {
				b.Results.AddSaved(ccache.StageO, dur-probe)
			}
			return obj, dur + stall, nil
		}
		res, err := cpp.Preprocess(TreeSource{b.Tree}, file, b.cppOptions(v == kconfig.Mod))
		if err != nil {
			p.StoreFailure(res.Inputs, res.Missing, err.Error())
			return cc.Object{}, failDur, err
		}
		obj, err := cc.Compile(res.Output)
		if err != nil {
			p.StoreFailure(res.Inputs, res.Missing, err.Error())
			return cc.Object{}, failDur, err
		}
		p.StoreO(res.Inputs, res.Missing, obj)
		prereq := 0
		if b.Meta.WholeBuildFiles[file] {
			prereq = b.Tree.Len()
		}
		dur := b.Model.MakeO(first, b.Arch.SetupOps, obj.Lines, prereq, key)
		return obj, dur + stall, nil
	}
	res, err := cpp.Preprocess(TreeSource{b.Tree}, file, b.cppOptions(v == kconfig.Mod))
	if err != nil {
		return cc.Object{}, failDur, err
	}
	obj, err := cc.Compile(res.Output)
	if err != nil {
		return cc.Object{}, failDur, err
	}
	prereq := 0
	if b.Meta.WholeBuildFiles[file] {
		prereq = b.Tree.Len() // every file in the tree, approximating "the entire kernel"
	}
	dur := b.Model.MakeO(first, b.Arch.SetupOps, obj.Lines, prereq, key)
	return obj, dur + stall, nil
}

// SetSetupDone marks the configuration's Makefile set-up as already paid,
// for a second builder sharing a configured tree (JMake preprocesses the
// mutated tree and compiles the pristine one under the same configuration,
// so only the first invocation pays full set-up).
func (b *Builder) SetSetupDone() { b.invoked = true }

// creditWarmSetup credits the warm-session ledger with the difference
// between first-invocation set-up and the incremental re-check the
// invocation would really have performed against a warm build directory.
func (b *Builder) creditWarmSetup(first bool, delta time.Duration) {
	if first && b.WarmSetup && b.SetupSaved != nil && delta > 0 {
		atomic.AddInt64(b.SetupSaved, int64(delta))
	}
}

// IsSetupFile reports whether JMake must refuse to mutate this file because
// the kernel Makefile compiles it during build set-up (paper §V-D).
func (b *Builder) IsSetupFile(file string) bool {
	return b.Meta.SetupFiles[fstree.Clean(file)]
}
