package kbuild

import "errors"

// ErrTransient marks failures that may succeed if the same operation is
// retried: flaky toolchain invocations, failed config generation runs,
// and other environmental hiccups (the dominant failure mode in
// large-scale commit-compilation studies). Wrap with
// fmt.Errorf("...: %w", ErrTransient) and test with IsTransient.
var ErrTransient = errors.New("transient failure")

// FaultClass partitions build errors for the resilience layer: transient
// errors are retried, arch errors feed the architecture circuit breaker,
// permanent errors are reported as-is.
type FaultClass int

const (
	// ClassPermanent errors will not go away on retry (compile errors,
	// unreachable files, missing Makefiles).
	ClassPermanent FaultClass = iota
	// ClassTransient errors are worth retrying.
	ClassTransient
	// ClassArch errors indicate the architecture's toolchain itself is
	// broken, not the file under test.
	ClassArch
)

func (c FaultClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassArch:
		return "arch"
	default:
		return "permanent"
	}
}

// Classify maps an error to its fault class. Transient wins over arch so
// that a transiently-failing broken-arch probe is retried before the
// breaker gives up on the architecture.
func Classify(err error) FaultClass {
	switch {
	case err == nil:
		return ClassPermanent
	case errors.Is(err, ErrTransient):
		return ClassTransient
	case errors.Is(err, ErrBrokenArch):
		return ClassArch
	default:
		return ClassPermanent
	}
}

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient)
}
