package kbuild

import (
	"path"
	"sort"
	"strings"
	"sync"

	"jmake/internal/fstree"
)

// GateRef is one obj-$(CONFIG_X) reference in a Kbuild makefile: the audit
// uses these to cross-check every gating variable against the Kconfig
// symbol tables.
type GateRef struct {
	File string // makefile path within the tree
	Line int    // 1-based line of the obj- rule
	Var  string // CONFIG variable name without the prefix
}

// GateRefs enumerates every obj-$(CONFIG_X) rule in every Makefile/Kbuild
// file of the tree, in deterministic order (file path, then line). archName
// substitutes $(SRCARCH)/$(ARCH) during parsing, as in ParseMakefile.
func GateRefs(t *fstree.Tree, archName string) []GateRef {
	var refs []GateRef
	for _, p := range t.Paths() {
		base := path.Base(p)
		if base != "Makefile" && base != "Kbuild" {
			continue
		}
		content, err := t.Read(p)
		if err != nil {
			continue
		}
		mf := ParseMakefile(p, content, archName)
		for _, r := range mf.Objs {
			if r.CondVar != "" {
				refs = append(refs, GateRef{File: p, Line: r.Line, Var: r.CondVar})
			}
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].File != refs[j].File {
			return refs[i].File < refs[j].File
		}
		return refs[i].Line < refs[j].Line
	})
	return refs
}

// MakefileCache memoizes LoadMakefile per (dir, arch) so tree-wide walks —
// which resolve the same descent-chain makefiles for every file in a
// directory — parse each makefile once instead of once per file. It is
// safe for concurrent use.
type MakefileCache struct {
	T  *fstree.Tree
	mu sync.Mutex
	// byKey caches parse results, including failures, keyed by dir + "\x00"
	// + arch.
	byKey map[string]mfEntry
}

type mfEntry struct {
	mf  *Makefile
	err error
}

// NewMakefileCache returns a cache over one tree snapshot. The cache must
// not outlive mutations to the tree.
func NewMakefileCache(t *fstree.Tree) *MakefileCache {
	return &MakefileCache{T: t, byKey: make(map[string]mfEntry)}
}

// Load is LoadMakefile with memoization.
func (c *MakefileCache) Load(dir, archName string) (*Makefile, error) {
	key := dir + "\x00" + archName
	c.mu.Lock()
	e, ok := c.byKey[key]
	c.mu.Unlock()
	if !ok {
		e.mf, e.err = LoadMakefile(c.T, dir, archName)
		c.mu.Lock()
		c.byKey[key] = e
		c.mu.Unlock()
	}
	return e.mf, e.err
}

// FileGate is the cached equivalent of the package-level FileGate: same
// walk, same results, but each makefile on the descent chain is parsed at
// most once per architecture across all calls.
func (c *MakefileCache) FileGate(file, archName string) (Gate, error) {
	return fileGate(c.Load, file, archName)
}

// FileGate walks the descent chain of a .c file — the same walk
// Builder.Reachable performs, minus any configuration — and collects every
// obj-$(CONFIG_X) condition along it. An error means the chain is broken
// (missing Makefile, unlisted directory or object): no gate is derivable
// and callers must not treat the file as unconditionally built.
func FileGate(t *fstree.Tree, file, archName string) (Gate, error) {
	return fileGate(func(dir, arch string) (*Makefile, error) {
		return LoadMakefile(t, dir, arch)
	}, file, archName)
}

// fileGate implements the descent-chain walk over any makefile loader.
func fileGate(load func(dir, archName string) (*Makefile, error), file, archName string) (Gate, error) {
	file = fstree.Clean(file)
	dir := path.Dir(file)
	if dir == "." {
		dir = ""
	}
	var components []string
	if dir != "" {
		components = strings.Split(dir, "/")
	}
	vars := make(map[string]bool)
	var gate Gate
	cur := ""
	for i := 0; i < len(components); i++ {
		mf, err := load(cur, archName)
		if err != nil {
			return Gate{}, err
		}
		rule, ok := mf.ruleFor(components[i] + "/")
		if !ok {
			// Arch directories nest one extra level: the root Makefile lists
			// arch/<name>/ in one step.
			if cur == "" && components[i] == "arch" && i+1 < len(components) {
				if rule2, ok2 := mf.ruleFor("arch/" + components[i+1] + "/"); ok2 {
					if rule2.CondVar != "" {
						vars[rule2.CondVar] = true
					}
					cur = path.Join(cur, components[i], components[i+1])
					i++
					continue
				}
			}
			return Gate{}, errNotListed(file, mf.Path)
		}
		if rule.CondVar != "" {
			vars[rule.CondVar] = true
		}
		cur = path.Join(cur, components[i])
	}
	mf, err := load(dir, archName)
	if err != nil {
		return Gate{}, err
	}
	obj := strings.TrimSuffix(path.Base(file), ".c") + ".o"
	rule, ok := mf.ruleFor(obj)
	if !ok {
		return Gate{}, errNoRule(obj, mf.Path)
	}
	gate.OwnVar = rule.CondVar
	gate.OwnModule = rule.Module
	if rule.CondVar != "" {
		vars[rule.CondVar] = true
	}
	for v := range vars {
		gate.Vars = append(gate.Vars, v)
	}
	sort.Strings(gate.Vars)
	return gate, nil
}
