package kbuild

import (
	"errors"
	"strings"
	"testing"

	"jmake/internal/ccache"
	"jmake/internal/faultinject"
	"jmake/internal/fstree"
	"jmake/internal/kconfig"
)

// cacheTree is testTree plus a transitive include chain (netdrv.c ->
// linux/chain.h -> linux/deep.h) and a second file with content identical
// to netdrv.c, for dedupe tests.
func cacheTree(t *testing.T) *fstree.Tree {
	t.Helper()
	tr := testTree(t)
	tr.Write("include/linux/chain.h", "#include <linux/deep.h>\n#define CHAIN 1\n")
	tr.Write("include/linux/deep.h", "#define DEEP 1\n")
	tr.Write("drivers/net/netdrv.c", "#include <linux/chain.h>\nint netdrv_probe(void)\n{\n\treturn DEEP;\n}\n")
	tr.Write("drivers/net/Makefile", `
obj-$(CONFIG_NETDRV) += netdrv.o
obj-$(CONFIG_NETDRV) += netdrv2.o
obj-$(CONFIG_BONDING) += bonding.o
bonding-objs := bond_main.o bond_alb.o
`)
	tr.Write("drivers/net/netdrv2.c", "#include <linux/chain.h>\nint netdrv_probe(void)\n{\n\treturn DEEP;\n}\n")
	return tr
}

func cachedBuilder(t *testing.T, tr *fstree.Tree, archName string, cfg *kconfig.Config, rc *ccache.Cache) *Builder {
	t.Helper()
	b := newTestBuilder(t, tr, archName, cfg)
	b.Results = rc
	return b
}

// A shared cache must serve byte-identical results and identical reported
// durations — the serve is invisible except in the cache counters.
func TestCacheMakeIHitEquality(t *testing.T) {
	tr := cacheTree(t)
	files := []string{"drivers/net/netdrv.c", "net/core.c", "drivers/usb/storage.c", "drivers/net/ghost.c"}

	// Baseline: cache off.
	off := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"))
	offRes, offDur := off.MakeI(files)

	rc := ccache.New()
	cold := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"), rc)
	coldRes, coldDur := cold.MakeI(files)
	warm := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"), rc)
	warmRes, warmDur := warm.MakeI(files)

	for i := range offRes {
		for name, got := range map[string][]IFile{"cold": coldRes, "warm": warmRes} {
			if got[i].Text != offRes[i].Text || got[i].Work != offRes[i].Work {
				t.Errorf("%s[%d]: payload differs from cache-off run", name, i)
			}
			gotErr, wantErr := "", ""
			if got[i].Err != nil {
				gotErr = got[i].Err.Error()
			}
			if offRes[i].Err != nil {
				wantErr = offRes[i].Err.Error()
			}
			if gotErr != wantErr {
				t.Errorf("%s[%d]: err %q, want %q", name, i, gotErr, wantErr)
			}
		}
	}
	if coldDur != offDur || warmDur != offDur {
		t.Errorf("durations differ: off=%v cold=%v warm=%v (must stay full price)", offDur, coldDur, warmDur)
	}
	st := rc.Stats()
	if st.MakeI.Hits == 0 {
		t.Error("warm builder never hit")
	}
	if st.SavedVirtual <= 0 {
		t.Error("hits must credit the effective-savings ledger")
	}
}

func TestCacheMakeOHitEquality(t *testing.T) {
	tr := cacheTree(t)
	off := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV"))
	offObj, offDur, offErr := off.MakeO("drivers/net/netdrv.c")
	if offErr != nil {
		t.Fatalf("MakeO: %v", offErr)
	}

	rc := ccache.New()
	cold := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV"), rc)
	coldObj, coldDur, coldErr := cold.MakeO("drivers/net/netdrv.c")
	warm := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV"), rc)
	warmObj, warmDur, warmErr := warm.MakeO("drivers/net/netdrv.c")
	if coldErr != nil || warmErr != nil {
		t.Fatalf("cached MakeO: %v / %v", coldErr, warmErr)
	}
	if coldObj.Lines != offObj.Lines || warmObj.Lines != offObj.Lines ||
		warmObj.Functions != offObj.Functions {
		t.Errorf("objects differ: off=%+v cold=%+v warm=%+v", offObj, coldObj, warmObj)
	}
	if coldDur != offDur || warmDur != offDur {
		t.Errorf("durations differ: off=%v cold=%v warm=%v", offDur, coldDur, warmDur)
	}
	if st := rc.Stats(); st.MakeO.Hits != 1 || st.MakeO.Misses != 1 {
		t.Errorf("MakeO counters = %+v", st.MakeO)
	}
}

// Compile failures are memoized too, with the exact error text.
func TestCacheMakeOFailureMemoized(t *testing.T) {
	tr := cacheTree(t)
	tr.Write("drivers/net/netdrv.c", "int probe(void)\n{\n\t@\"other:drivers/net/netdrv.c:3\"\n\treturn 0;\n}\n")
	off := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV"))
	_, offDur, offErr := off.MakeO("drivers/net/netdrv.c")
	if offErr == nil {
		t.Fatal("baseline should fail")
	}

	rc := ccache.New()
	cold := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV"), rc)
	_, _, coldErr := cold.MakeO("drivers/net/netdrv.c")
	warm := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV"), rc)
	_, warmDur, warmErr := warm.MakeO("drivers/net/netdrv.c")
	if coldErr == nil || warmErr == nil {
		t.Fatal("cached runs should fail too")
	}
	if coldErr.Error() != offErr.Error() || warmErr.Error() != offErr.Error() {
		t.Errorf("error text drifted: off=%q cold=%q warm=%q", offErr, coldErr, warmErr)
	}
	if warmDur != offDur {
		t.Errorf("failure duration %v, want full price %v", warmDur, offDur)
	}
	if st := rc.Stats(); st.MakeO.Hits != 1 {
		t.Errorf("failure entry not served: %+v", st.MakeO)
	}
}

// The invalidation table: anything that can change a verdict must miss.
func TestCacheInvalidationTable(t *testing.T) {
	newTree := func() *fstree.Tree { return cacheTree(t) }
	baseCfg := func() *kconfig.Config { return cfgWith("NETDRV", "NET") }
	const file = "drivers/net/netdrv.c"

	// sameAgain must hit; every other mutation must probe and miss.
	cases := []struct {
		name    string
		mutate  func(tr *fstree.Tree) (*fstree.Tree, *kconfig.Config, string)
		wantHit bool
	}{
		{"same_again", func(tr *fstree.Tree) (*fstree.Tree, *kconfig.Config, string) {
			return tr, baseCfg(), "x86_64"
		}, true},
		{"root_edit", func(tr *fstree.Tree) (*fstree.Tree, *kconfig.Config, string) {
			tr.Write(file, "#include <linux/chain.h>\nint netdrv_probe(void)\n{\n\treturn DEEP + 1;\n}\n")
			return tr, baseCfg(), "x86_64"
		}, false},
		{"direct_header_edit", func(tr *fstree.Tree) (*fstree.Tree, *kconfig.Config, string) {
			tr.Write("include/linux/chain.h", "#include <linux/deep.h>\n#define CHAIN 2\n")
			return tr, baseCfg(), "x86_64"
		}, false},
		{"transitive_header_edit", func(tr *fstree.Tree) (*fstree.Tree, *kconfig.Config, string) {
			tr.Write("include/linux/deep.h", "#define DEEP 2\n")
			return tr, baseCfg(), "x86_64"
		}, false},
		{"config_value_change", func(tr *fstree.Tree) (*fstree.Tree, *kconfig.Config, string) {
			return tr, cfgWith("NETDRV", "NET", "USB"), "x86_64"
		}, false},
		{"arch_change", func(tr *fstree.Tree) (*fstree.Tree, *kconfig.Config, string) {
			return tr, baseCfg(), "arm"
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := ccache.New()
			seedB := cachedBuilder(t, newTree(), "x86_64", baseCfg(), rc)
			if res, _ := seedB.MakeI([]string{file}); res[0].Err != nil {
				t.Fatalf("seed run: %v", res[0].Err)
			}
			before := rc.Stats().MakeI

			tr2, cfg2, arch2 := tc.mutate(newTree())
			b := cachedBuilder(t, tr2, arch2, cfg2, rc)
			if res, _ := b.MakeI([]string{file}); res[0].Err != nil {
				t.Fatalf("probe run: %v", res[0].Err)
			}
			after := rc.Stats().MakeI
			gotHit := after.Hits > before.Hits
			if gotHit != tc.wantHit {
				t.Errorf("hit=%v, want %v (stats %+v -> %+v)", gotHit, tc.wantHit, before, after)
			}
		})
	}
}

// A Kbuild gate edit takes effect immediately: reachability is computed
// live, never cached, so disabling the object rule wins over any number of
// prior cached serves.
func TestCacheKbuildGateLive(t *testing.T) {
	tr := cacheTree(t)
	rc := ccache.New()
	b := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"), rc)
	if res, _ := b.MakeI([]string{"drivers/net/netdrv.c"}); res[0].Err != nil {
		t.Fatalf("seed run: %v", res[0].Err)
	}

	// Remove netdrv.o from the Makefile: the cached entry is still valid as
	// content, but the build no longer descends to the file.
	tr.Write("drivers/net/Makefile", "obj-$(CONFIG_BONDING) += bonding.o\nbonding-objs := bond_main.o bond_alb.o\n")
	b2 := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"), rc)
	res, _ := b2.MakeI([]string{"drivers/net/netdrv.c"})
	if !errors.Is(res[0].Err, ErrNotReachable) {
		t.Fatalf("err = %v, want ErrNotReachable despite warm cache", res[0].Err)
	}
	// Flipping the gate's CONFIG variable off behaves the same way.
	tr2 := cacheTree(t)
	b3 := cachedBuilder(t, tr2, "x86_64", cfgWith("NET"), rc)
	res3, _ := b3.MakeI([]string{"drivers/net/netdrv.c"})
	if !errors.Is(res3[0].Err, ErrNotReachable) {
		t.Fatalf("err = %v, want ErrNotReachable (CONFIG_NETDRV=n)", res3[0].Err)
	}
}

// Identical translation units inside one MakeI group are preprocessed
// once: the second file is a dedupe hit served with remapped line markers.
func TestCacheDedupeWithinGroup(t *testing.T) {
	tr := cacheTree(t)
	rc := ccache.New()
	b := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"), rc)
	res, _ := b.MakeI([]string{"drivers/net/netdrv.c", "drivers/net/netdrv2.c"})
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("errs: %v / %v", res[0].Err, res[1].Err)
	}
	st := rc.Stats().MakeI
	if st.Misses != 1 || st.Hits != 1 || st.Deduped != 1 {
		t.Fatalf("dedupe counters = %+v, want 1 miss / 1 hit / 1 deduped", st)
	}
	// The served copy must name its own path, not the stored root's.
	if !strings.Contains(res[1].Text, `"drivers/net/netdrv2.c"`) ||
		strings.Contains(res[1].Text, `"drivers/net/netdrv.c"`) {
		t.Errorf("dedupe serve not remapped:\n%s", res[1].Text)
	}
	// Same content compared against a direct preprocess of netdrv2.c.
	off := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"))
	offRes, _ := off.MakeI([]string{"drivers/net/netdrv2.c"})
	if res[1].Text != offRes[0].Text {
		t.Errorf("deduped text differs from direct preprocess")
	}
}

// Injected faults bypass the cache entirely: a faulted attempt neither
// probes nor stores, the retry recomputes, and only the genuine result is
// ever cached.
func TestCacheFaultBypassAndRetry(t *testing.T) {
	const op = "x86_64:i:drivers/net/netdrv.c"
	// Find a seed whose first roll for op fires while the two retry rolls
	// do not (each attempt rolls a fresh decision).
	var seed uint64
	for s := uint64(1); ; s++ {
		if s > 50_000 {
			t.Fatal("no suitable fault seed found")
		}
		in := faultinject.New(faultinject.Plan{Seed: s, PreprocessRate: 0.5}, "scope")
		if in.FailPreprocess(op) && !in.FailPreprocess(op) && !in.FailPreprocess(op) {
			seed = s
			break
		}
	}

	tr := cacheTree(t)
	rc := ccache.New()
	b := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"), rc)
	b.Faults = faultinject.New(faultinject.Plan{Seed: seed, PreprocessRate: 0.5}, "scope")

	// Attempt 1: the fault fires before any cache interaction.
	res1, _ := b.MakeI([]string{"drivers/net/netdrv.c"})
	if !errors.Is(res1[0].Err, ErrTransient) {
		t.Fatalf("attempt 1 err = %v, want ErrTransient", res1[0].Err)
	}
	if st := rc.Stats().MakeI; st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("faulted attempt touched the cache: %+v", st)
	}

	// Attempt 2 (the retry): fault clears, recompute + store.
	res2, _ := b.MakeI([]string{"drivers/net/netdrv.c"})
	if res2[0].Err != nil {
		t.Fatalf("retry err = %v", res2[0].Err)
	}
	if st := rc.Stats().MakeI; st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("retry must recompute: %+v", st)
	}

	// Attempt 3: the genuine result is now served.
	res3, _ := b.MakeI([]string{"drivers/net/netdrv.c"})
	if res3[0].Err != nil || res3[0].Text != res2[0].Text {
		t.Fatalf("third attempt should hit with identical text")
	}
	if st := rc.Stats().MakeI; st.Hits != 1 {
		t.Fatalf("third attempt did not hit: %+v", st)
	}
}

// A truncation fault is applied to the served copy only — the stored text
// stays clean, so later probes (and other patches) never see it.
func TestCacheTruncationNeverStored(t *testing.T) {
	const op = "x86_64:i:drivers/net/netdrv.c"
	var seed uint64
	for s := uint64(1); ; s++ {
		if s > 50_000 {
			t.Fatal("no suitable truncate seed found")
		}
		in := faultinject.New(faultinject.Plan{Seed: s, TruncateRate: 0.5}, "scope")
		if in.TruncateI(op) {
			seed = s
			break
		}
	}

	tr := cacheTree(t)
	off := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"))
	offRes, _ := off.MakeI([]string{"drivers/net/netdrv.c"})

	rc := ccache.New()
	faulted := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"), rc)
	faulted.Faults = faultinject.New(faultinject.Plan{Seed: seed, TruncateRate: 0.5}, "scope")
	fRes, _ := faulted.MakeI([]string{"drivers/net/netdrv.c"})
	if fRes[0].Err != nil {
		t.Fatalf("faulted run: %v", fRes[0].Err)
	}
	if len(fRes[0].Text) >= len(offRes[0].Text) {
		t.Fatalf("truncation fault did not truncate")
	}

	clean := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"), rc)
	cRes, _ := clean.MakeI([]string{"drivers/net/netdrv.c"})
	if cRes[0].Text != offRes[0].Text {
		t.Fatalf("cache served truncated text:\ngot  %d bytes\nwant %d bytes",
			len(cRes[0].Text), len(offRes[0].Text))
	}
}

// Yes vs Mod builds never cross-contaminate: the MODULE define is part of
// the options fingerprint.
func TestCacheModuleSeparation(t *testing.T) {
	tr := cacheTree(t)
	tr.Write("drivers/net/netdrv.c", "#ifdef MODULE\nint module_only;\n#endif\nint always;\n")
	rc := ccache.New()

	yes := cachedBuilder(t, tr, "x86_64", cfgWith("NETDRV"), rc)
	yRes, _ := yes.MakeI([]string{"drivers/net/netdrv.c"})

	mcfg := &kconfig.Config{}
	mcfg.Set("NETDRV", kconfig.Mod)
	mod := cachedBuilder(t, tr, "x86_64", mcfg, rc)
	mRes, _ := mod.MakeI([]string{"drivers/net/netdrv.c"})

	if strings.Contains(yRes[0].Text, "module_only") {
		t.Error("built-in serve leaked MODULE text")
	}
	if !strings.Contains(mRes[0].Text, "module_only") {
		t.Error("modular build lost MODULE text (served stale built-in entry?)")
	}
	if st := rc.Stats().MakeI; st.Hits != 0 || st.Misses != 2 {
		t.Errorf("yes/mod must not share entries: %+v", st)
	}
}
