package kbuild

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"jmake/internal/cpp"
	"jmake/internal/fstree"
	"jmake/internal/kconfig"
	"jmake/internal/vclock"
)

// testTree builds a miniature two-arch kernel tree by hand.
func testTree(t *testing.T) *fstree.Tree {
	t.Helper()
	tr := fstree.New()
	tr.Write("Kbuild.meta", `
setupops x86_64 84
setupops arm 63
brokenarch score
wholebuild arch/powerpc/kernel/prom_init.c
setupfile include/linux/compiler_setup.h
`)
	tr.Write("Makefile", "obj-y += drivers/ net/ arch/$(SRCARCH)/\n")
	tr.Write("drivers/Makefile", "obj-y += net/\nobj-$(CONFIG_USB) += usb/\n")
	tr.Write("drivers/net/Makefile", `
obj-$(CONFIG_NETDRV) += netdrv.o
obj-$(CONFIG_BONDING) += bonding.o
bonding-objs := bond_main.o bond_alb.o
`)
	tr.Write("drivers/usb/Makefile", "obj-$(CONFIG_USB_STORAGE) += storage.o\n")
	tr.Write("net/Makefile", "obj-$(CONFIG_NET) += core.o\n")
	tr.Write("arch/x86_64/Makefile", "obj-y += kernel/\n")
	tr.Write("arch/x86_64/kernel/Makefile", "obj-y += setup.o\n")
	tr.Write("arch/x86_64/Kconfig", "config X86_64\n\tbool \"x86_64\"\n\tdefault y\n")
	tr.Write("arch/x86_64/include/asm/io.h",
		"#ifndef ASM_IO_H\n#define ASM_IO_H\nextern void outw(int v, unsigned long a);\n#endif\n")
	tr.Write("arch/arm/Makefile", "obj-y += kernel/\n")
	tr.Write("arch/arm/kernel/Makefile", "obj-y += entry.o\n")
	tr.Write("arch/arm/Kconfig", "config ARM\n\tbool \"arm\"\n\tdefault y\n")
	tr.Write("arch/arm/include/asm/io.h",
		"#ifndef ASM_IO_H\n#define ASM_IO_H\nextern void outw(int v, unsigned long a);\nextern void arm_special(void);\n#endif\n")
	tr.Write("arch/score/Makefile", "obj-y += kernel/\n")
	tr.Write("arch/score/Kconfig", "config SCORE\n\tbool \"score\"\n\tdefault y\n")

	tr.Write("include/linux/types.h", "#ifndef TYPES_H\n#define TYPES_H\ntypedef unsigned int u32;\n#endif\n")
	tr.Write("drivers/net/netdrv.c", `#include <linux/types.h>
#include <asm/io.h>
int netdrv_probe(void)
{
	outw(1, 0x40);
	return 0;
}
`)
	tr.Write("drivers/net/bond_main.c", "#include <linux/types.h>\nint bond_init(void)\n{\n\treturn 0;\n}\n")
	tr.Write("drivers/net/bond_alb.c", "int bond_alb(void)\n{\n\treturn 1;\n}\n")
	tr.Write("drivers/usb/storage.c", "int storage_probe(void)\n{\n\treturn 0;\n}\n")
	tr.Write("net/core.c", "int net_core(void)\n{\n\treturn 0;\n}\n")
	tr.Write("arch/x86_64/kernel/setup.c", "int setup_arch(void)\n{\n\treturn 0;\n}\n")
	tr.Write("arch/arm/kernel/entry.c", "#include <asm/io.h>\nint entry(void)\n{\n\tarm_special();\n\treturn 0;\n}\n")
	return tr
}

// cfgWith returns a Config with the given variables set to y.
func cfgWith(names ...string) *kconfig.Config {
	c := &kconfig.Config{}
	for _, n := range names {
		c.Set(n, kconfig.Yes)
	}
	return c
}

func newTestBuilder(t *testing.T, tr *fstree.Tree, archName string, cfg *kconfig.Config) *Builder {
	t.Helper()
	meta, err := LoadMeta(tr)
	if err != nil {
		t.Fatalf("LoadMeta: %v", err)
	}
	arches := DiscoverArches(tr, meta)
	a, ok := arches[archName]
	if !ok {
		t.Fatalf("arch %s not discovered", archName)
	}
	b, err := NewBuilder(tr, a, cfg, meta, vclock.DefaultModel(1))
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	return b
}

func TestParseMakefile(t *testing.T) {
	mf := ParseMakefile("drivers/net/Makefile", `
# comment
obj-y += always.o sub/
obj-m += mod.o
obj-$(CONFIG_FOO) += foo.o
bar-objs := bar_a.o bar_b.o
obj-$(CONFIG_BAR) += bar.o
`, "x86_64")
	if len(mf.Objs) != 4 {
		t.Fatalf("Objs = %d, want 4: %+v", len(mf.Objs), mf.Objs)
	}
	if mf.Objs[0].CondVar != "" || mf.Objs[0].Module {
		t.Errorf("obj-y rule = %+v", mf.Objs[0])
	}
	if !mf.Objs[1].Module {
		t.Errorf("obj-m rule = %+v", mf.Objs[1])
	}
	if mf.Objs[2].CondVar != "FOO" {
		t.Errorf("CondVar = %q", mf.Objs[2].CondVar)
	}
	if got := mf.Composites["bar"]; !reflect.DeepEqual(got, []string{"bar_a.o", "bar_b.o"}) {
		t.Errorf("Composites[bar] = %v", got)
	}
	if !reflect.DeepEqual(mf.ConfigVars, []string{"FOO", "BAR"}) {
		t.Errorf("ConfigVars = %v", mf.ConfigVars)
	}
	// Composite member resolves to the composite's rule.
	rule, ok := mf.ruleFor("bar_a.o")
	if !ok || rule.CondVar != "BAR" {
		t.Errorf("ruleFor(bar_a.o) = %+v, %v", rule, ok)
	}
}

func TestSrcArchSubstitution(t *testing.T) {
	mf := ParseMakefile("Makefile", "obj-y += arch/$(SRCARCH)/\n", "arm")
	rule, ok := mf.ruleFor("arch/arm/")
	if !ok || rule.CondVar != "" {
		t.Errorf("ruleFor(arch/arm/) = %+v, %v", rule, ok)
	}
}

func TestGatingConfigs(t *testing.T) {
	tr := testTree(t)
	tests := []struct {
		file string
		want []string
	}{
		{"drivers/net/netdrv.c", []string{"NETDRV"}},
		{"drivers/net/bond_main.c", []string{"BONDING"}}, // via composite
		{"net/core.c", []string{"NET"}},
		// setup.o is obj-y: fallback takes every var in the Makefile (none).
		{"arch/x86_64/kernel/setup.c", []string{}},
	}
	for _, tt := range tests {
		got, err := GatingConfigs(tr, tt.file, "x86_64")
		if err != nil {
			t.Fatalf("GatingConfigs(%s): %v", tt.file, err)
		}
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("GatingConfigs(%s) = %v, want %v", tt.file, got, tt.want)
		}
	}
}

func TestGatingConfigsNoMakefile(t *testing.T) {
	tr := fstree.New()
	tr.Write("orphan/file.c", "int x;\n")
	if _, err := GatingConfigs(tr, "orphan/file.c", "x86_64"); !errors.Is(err, ErrNoMakefile) {
		t.Errorf("err = %v, want ErrNoMakefile", err)
	}
}

func TestLoadMeta(t *testing.T) {
	tr := testTree(t)
	meta, err := LoadMeta(tr)
	if err != nil {
		t.Fatalf("LoadMeta: %v", err)
	}
	if meta.SetupOpsByArch["x86_64"] != 84 || meta.SetupOpsByArch["arm"] != 63 {
		t.Errorf("SetupOpsByArch = %v", meta.SetupOpsByArch)
	}
	if !meta.BrokenArches["score"] {
		t.Error("score should be broken")
	}
	if !meta.WholeBuildFiles["arch/powerpc/kernel/prom_init.c"] {
		t.Error("wholebuild file missing")
	}
	if !meta.SetupFiles["include/linux/compiler_setup.h"] {
		t.Error("setup file missing")
	}
}

func TestLoadMetaMissingIsEmpty(t *testing.T) {
	meta, err := LoadMeta(fstree.New())
	if err != nil {
		t.Fatalf("LoadMeta: %v", err)
	}
	if len(meta.BrokenArches) != 0 {
		t.Errorf("meta = %+v, want empty", meta)
	}
}

func TestDiscoverArches(t *testing.T) {
	tr := testTree(t)
	meta, _ := LoadMeta(tr)
	arches := DiscoverArches(tr, meta)
	if len(arches) != 3 {
		t.Fatalf("found %d arches, want 3: %v", len(arches), arches)
	}
	x86 := arches["x86_64"]
	if x86.SetupOps != 84 {
		t.Errorf("x86_64 SetupOps = %d", x86.SetupOps)
	}
	if !arches["score"].Broken {
		t.Error("score should be Broken")
	}
	names := ArchNames(arches)
	if names[0] != "x86_64" {
		t.Errorf("ArchNames[0] = %s, want x86_64 (host first)", names[0])
	}
	if !reflect.DeepEqual(names[1:], []string{"arm", "score"}) {
		t.Errorf("ArchNames rest = %v", names[1:])
	}
}

func TestBrokenArchRefused(t *testing.T) {
	tr := testTree(t)
	meta, _ := LoadMeta(tr)
	arches := DiscoverArches(tr, meta)
	_, err := NewBuilder(tr, arches["score"], cfgWith(), meta, vclock.DefaultModel(1))
	if !errors.Is(err, ErrBrokenArch) {
		t.Errorf("err = %v, want ErrBrokenArch", err)
	}
}

func TestReachable(t *testing.T) {
	tr := testTree(t)
	b := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET", "USB"))

	if v, err := b.Reachable("drivers/net/netdrv.c"); err != nil || v != kconfig.Yes {
		t.Errorf("netdrv.c: %v, %v", v, err)
	}
	// BONDING unset: composite members unreachable.
	if _, err := b.Reachable("drivers/net/bond_main.c"); !errors.Is(err, ErrNotReachable) {
		t.Errorf("bond_main.c err = %v, want ErrNotReachable", err)
	}
	// USB dir enabled but USB_STORAGE off.
	if _, err := b.Reachable("drivers/usb/storage.c"); !errors.Is(err, ErrNotReachable) {
		t.Errorf("storage.c err = %v, want ErrNotReachable", err)
	}
	// Own arch reachable; foreign arch not.
	if _, err := b.Reachable("arch/x86_64/kernel/setup.c"); err != nil {
		t.Errorf("setup.c err = %v", err)
	}
	if _, err := b.Reachable("arch/arm/kernel/entry.c"); !errors.Is(err, ErrNotReachable) {
		t.Errorf("entry.c err = %v, want ErrNotReachable", err)
	}
}

func TestReachableDirGated(t *testing.T) {
	tr := testTree(t)
	// Disable the usb/ directory itself.
	b := newTestBuilder(t, tr, "x86_64", cfgWith("USB_STORAGE"))
	if _, err := b.Reachable("drivers/usb/storage.c"); !errors.Is(err, ErrNotReachable) {
		t.Errorf("err = %v, want ErrNotReachable (directory gated)", err)
	}
}

func TestModuleValue(t *testing.T) {
	tr := testTree(t)
	cfg := &kconfig.Config{}
	cfg.Set("NETDRV", kconfig.Mod)
	b := newTestBuilder(t, tr, "x86_64", cfg)
	v, err := b.Reachable("drivers/net/netdrv.c")
	if err != nil || v != kconfig.Mod {
		t.Errorf("modular file: %v, %v", v, err)
	}
}

func TestMakeI(t *testing.T) {
	tr := testTree(t)
	b := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"))
	results, dur := b.MakeI([]string{"drivers/net/netdrv.c", "net/core.c", "drivers/usb/storage.c"})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil {
		t.Errorf("netdrv.i: %v", results[0].Err)
	}
	if !strings.Contains(results[0].Text, "netdrv_probe") {
		t.Errorf("netdrv.i missing content")
	}
	if results[0].Work.Includes != 3 {
		t.Errorf("netdrv.i Includes = %d, want 3", results[0].Work.Includes)
	}
	if results[1].Err != nil {
		t.Errorf("core.i: %v", results[1].Err)
	}
	if results[2].Err == nil {
		t.Error("storage.i should fail (unreachable)")
	}
	if dur <= 0 {
		t.Errorf("duration = %v", dur)
	}
	// Second invocation must be cheaper (set-up already paid).
	_, dur2 := b.MakeI([]string{"net/core.c"})
	if dur2 >= dur {
		t.Errorf("second MakeI (%v) should be cheaper than first (%v)", dur2, dur)
	}
}

func TestMakeIModuleDefines(t *testing.T) {
	tr := testTree(t)
	tr.Write("drivers/net/netdrv.c", `#ifdef MODULE
int module_only;
#endif
int always;
`)
	cfg := &kconfig.Config{}
	cfg.Set("NETDRV", kconfig.Mod)
	b := newTestBuilder(t, tr, "x86_64", cfg)
	results, _ := b.MakeI([]string{"drivers/net/netdrv.c"})
	if results[0].Err != nil {
		t.Fatalf("MakeI: %v", results[0].Err)
	}
	if !strings.Contains(results[0].Text, "module_only") {
		t.Error("MODULE should be defined for modular builds")
	}

	// Built-in build: MODULE undefined.
	b2 := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV"))
	results2, _ := b2.MakeI([]string{"drivers/net/netdrv.c"})
	if strings.Contains(results2[0].Text, "module_only") {
		t.Error("MODULE must not be defined for built-in builds")
	}
}

func TestMakeO(t *testing.T) {
	tr := testTree(t)
	b := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV"))
	obj, dur, err := b.MakeO("drivers/net/netdrv.c")
	if err != nil {
		t.Fatalf("MakeO: %v", err)
	}
	if obj.Functions != 1 {
		t.Errorf("Functions = %d", obj.Functions)
	}
	if dur <= 0 {
		t.Errorf("duration = %v", dur)
	}
}

func TestMakeOFailsOnMissingDeclaration(t *testing.T) {
	tr := testTree(t)
	// entry.c calls arm_special(), declared only in arm's asm/io.h. Put an
	// equivalent file on the x86 side to show the cross-arch failure.
	tr.Write("drivers/net/netdrv.c", "#include <asm/io.h>\nint probe(void)\n{\n\tarm_special();\n\treturn 0;\n}\n")
	b := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV"))
	if _, _, err := b.MakeO("drivers/net/netdrv.c"); err == nil {
		t.Error("MakeO should fail: arm_special undeclared on x86_64")
	}
	// The same file compiles for arm.
	barm := newTestBuilder(t, tr, "arm", cfgWith("NETDRV", "NET"))
	if _, _, err := barm.MakeO("drivers/net/netdrv.c"); err != nil {
		t.Errorf("MakeO on arm: %v", err)
	}
}

func TestMakeOMutatedFileFails(t *testing.T) {
	tr := testTree(t)
	tr.Write("drivers/net/netdrv.c", "int probe(void)\n{\n\t@\"other:drivers/net/netdrv.c:3\"\n\treturn 0;\n}\n")
	b := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV"))
	if _, _, err := b.MakeO("drivers/net/netdrv.c"); err == nil {
		t.Error("MakeO should reject the mutation character")
	}
	// But MakeI must succeed and carry the mutation through.
	b2 := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV"))
	results, _ := b2.MakeI([]string{"drivers/net/netdrv.c"})
	if results[0].Err != nil {
		t.Fatalf("MakeI: %v", results[0].Err)
	}
	if !strings.Contains(results[0].Text, `@"other:drivers/net/netdrv.c:3"`) {
		t.Error("mutation missing from .i output")
	}
}

func TestWholeBuildFileCost(t *testing.T) {
	tr := testTree(t)
	tr.Write("arch/powerpc/Makefile", "obj-y += kernel/\n")
	tr.Write("arch/powerpc/Kconfig", "config PPC\n\tbool \"ppc\"\n\tdefault y\n")
	tr.Write("arch/powerpc/kernel/Makefile", "obj-y += prom_init.o\n")
	tr.Write("arch/powerpc/kernel/prom_init.c", "int prom_init(void)\n{\n\treturn 0;\n}\n")
	meta, _ := LoadMeta(tr)
	arches := DiscoverArches(tr, meta)
	b, err := NewBuilder(tr, arches["powerpc"], cfgWith(), meta, vclock.DefaultModel(1))
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	_, dur, err := b.MakeO("arch/powerpc/kernel/prom_init.c")
	if err != nil {
		t.Fatalf("MakeO: %v", err)
	}
	if dur < 10*time.Second {
		t.Errorf("prom_init.c MakeO = %v, want whole-kernel cost", dur)
	}
}

func TestIsSetupFile(t *testing.T) {
	tr := testTree(t)
	b := newTestBuilder(t, tr, "x86_64", cfgWith())
	if !b.IsSetupFile("include/linux/compiler_setup.h") {
		t.Error("setup file not flagged")
	}
	if b.IsSetupFile("net/core.c") {
		t.Error("normal file flagged as setup")
	}
}

func TestLoadMakefileKbuildFallback(t *testing.T) {
	tr := fstree.New()
	tr.Write("drivers/misc/Kbuild", "obj-$(CONFIG_MISC) += misc.o\n")
	mf, err := LoadMakefile(tr, "drivers/misc", "x86_64")
	if err != nil {
		t.Fatalf("LoadMakefile: %v", err)
	}
	if mf.Path != "drivers/misc/Kbuild" {
		t.Errorf("Path = %s", mf.Path)
	}
	rule, ok := mf.ruleFor("misc.o")
	if !ok || rule.CondVar != "MISC" {
		t.Errorf("ruleFor = %+v, %v", rule, ok)
	}
}

func TestMakefilePrefersOverKbuild(t *testing.T) {
	tr := fstree.New()
	tr.Write("d/Makefile", "obj-y += frommakefile.o\n")
	tr.Write("d/Kbuild", "obj-y += fromkbuild.o\n")
	mf, err := LoadMakefile(tr, "d", "x86_64")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mf.ruleFor("frommakefile.o"); !ok {
		t.Error("Makefile should win over Kbuild")
	}
}

func TestMakeIUnknownFile(t *testing.T) {
	tr := testTree(t)
	b := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV"))
	results, _ := b.MakeI([]string{"drivers/net/ghost.c"})
	if results[0].Err == nil {
		t.Error("preprocessing a missing file should fail")
	}
}

func TestBuilderTokenCacheConsistency(t *testing.T) {
	tr := testTree(t)
	b1 := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"))
	r1, _ := b1.MakeI([]string{"drivers/net/netdrv.c"})

	b2 := newTestBuilder(t, tr, "x86_64", cfgWith("NETDRV", "NET"))
	b2.Cache = cpp.NewTokenCache()
	r2a, _ := b2.MakeI([]string{"drivers/net/netdrv.c"})
	r2b, _ := b2.MakeI([]string{"drivers/net/netdrv.c"})

	if r1[0].Err != nil || r2a[0].Err != nil || r2b[0].Err != nil {
		t.Fatalf("errors: %v / %v / %v", r1[0].Err, r2a[0].Err, r2b[0].Err)
	}
	if r2a[0].Text != r1[0].Text {
		t.Error("cached output differs from uncached")
	}
	if r2b[0].Text != r2a[0].Text {
		t.Error("second cached run differs from first")
	}
	if b2.Cache.Len() == 0 {
		t.Error("cache unused")
	}
}

func TestFileGate(t *testing.T) {
	tr := testTree(t)
	tr.Write("drivers/usb/Makefile", "obj-$(CONFIG_USB_STORAGE) += storage.o\nobj-m += gadget.o\n")
	tr.Write("drivers/usb/gadget.c", "int gadget(void)\n{\n\treturn 0;\n}\n")

	cases := []struct {
		file     string
		wantVars []string
		wantOwn  string
		wantMod  bool
	}{
		{"drivers/net/netdrv.c", []string{"NETDRV"}, "NETDRV", false},
		{"drivers/net/bond_main.c", []string{"BONDING"}, "BONDING", false},
		{"drivers/usb/storage.c", []string{"USB", "USB_STORAGE"}, "USB_STORAGE", false},
		{"drivers/usb/gadget.c", []string{"USB"}, "", true},
		{"net/core.c", []string{"NET"}, "NET", false},
		{"arch/x86_64/kernel/setup.c", nil, "", false},
	}
	for _, c := range cases {
		g, err := FileGate(tr, c.file, "x86_64")
		if err != nil {
			t.Fatalf("FileGate(%s): %v", c.file, err)
		}
		if !reflect.DeepEqual(g.Vars, c.wantVars) {
			t.Errorf("FileGate(%s).Vars = %v, want %v", c.file, g.Vars, c.wantVars)
		}
		if g.OwnVar != c.wantOwn || g.OwnModule != c.wantMod {
			t.Errorf("FileGate(%s) own = %q/%v, want %q/%v",
				c.file, g.OwnVar, g.OwnModule, c.wantOwn, c.wantMod)
		}
	}

	if _, err := FileGate(tr, "drivers/net/orphan.c", "x86_64"); err == nil {
		t.Error("FileGate(orphan) should fail: no object rule")
	}
	if _, err := FileGate(tr, "sound/pci/hda.c", "x86_64"); err == nil {
		t.Error("FileGate(unlisted dir) should fail")
	}
	// The arm walk resolves $(SRCARCH) to arm: x86_64 files become invisible.
	if _, err := FileGate(tr, "arch/x86_64/kernel/setup.c", "arm"); err == nil {
		t.Error("FileGate(x86_64 file, arm walk) should fail")
	}
	if g, err := FileGate(tr, "arch/arm/kernel/entry.c", "arm"); err != nil || len(g.Vars) != 0 {
		t.Errorf("FileGate(arm entry) = %+v, %v", g, err)
	}
}
