package vcs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"jmake/internal/fstree"
	"jmake/internal/textdiff"
)

func sig(name string) Signature {
	return Signature{Name: name, Email: strings.ToLower(name) + "@example.org",
		When: time.Date(2015, 11, 1, 12, 0, 0, 0, time.UTC)}
}

func strp(s string) *string { return &s }

func newTestRepo(t *testing.T) *Repo {
	t.Helper()
	base := fstree.New()
	base.Write("drivers/a.c", "int a;\n")
	base.Write("drivers/b.c", "int b;\n")
	base.Write("include/x.h", "#define X 1\n")
	return NewRepo(base, sig("Root"))
}

func TestCommitAndCheckout(t *testing.T) {
	r := newTestRepo(t)
	id1 := r.Commit(sig("Alice"), "edit a", map[string]*string{
		"drivers/a.c": strp("int a = 2;\n"),
	}, false)
	id2 := r.Commit(sig("Bob"), "add c, delete b", map[string]*string{
		"drivers/c.c": strp("int c;\n"),
		"drivers/b.c": nil,
	}, false)

	t1, err := r.CheckoutTree(id1)
	if err != nil {
		t.Fatalf("CheckoutTree(id1): %v", err)
	}
	if got, _ := t1.Read("drivers/a.c"); got != "int a = 2;\n" {
		t.Errorf("a.c at id1 = %q", got)
	}
	if !t1.Exists("drivers/b.c") {
		t.Error("b.c should still exist at id1")
	}
	t2, err := r.CheckoutTree(id2)
	if err != nil {
		t.Fatalf("CheckoutTree(id2): %v", err)
	}
	if t2.Exists("drivers/b.c") {
		t.Error("b.c should be deleted at id2")
	}
	if got, _ := t2.Read("drivers/c.c"); got != "int c;\n" {
		t.Errorf("c.c at id2 = %q", got)
	}
}

func TestNoopCommitChanges(t *testing.T) {
	r := newTestRepo(t)
	id := r.Commit(sig("Alice"), "noop", map[string]*string{
		"drivers/a.c": strp("int a;\n"), // identical content
		"nonexistent": nil,              // delete of missing file
	}, false)
	c, err := r.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(c.Changes) != 0 {
		t.Errorf("noop commit has %d changes, want 0", len(c.Changes))
	}
}

func TestBetweenWithFilters(t *testing.T) {
	r := newTestRepo(t)
	if err := r.Tag("v4.3", r.Head()); err != nil {
		t.Fatalf("Tag: %v", err)
	}
	idMod := r.Commit(sig("Alice"), "modify", map[string]*string{"drivers/a.c": strp("int a=1;\n")}, false)
	_ = r.Commit(sig("Bob"), "merge branch", nil, true)
	_ = r.Commit(sig("Carol"), "add new file", map[string]*string{"drivers/new.c": strp("x\n")}, false)
	idMod2 := r.Commit(sig("Dave"), "modify again", map[string]*string{"include/x.h": strp("#define X 2\n")}, false)
	if err := r.Tag("v4.4", r.Head()); err != nil {
		t.Fatalf("Tag: %v", err)
	}

	ids, err := r.Between("v4.3", "v4.4", LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		t.Fatalf("Between: %v", err)
	}
	want := []string{idMod, idMod2}
	if len(ids) != 2 || ids[0] != want[0] || ids[1] != want[1] {
		t.Errorf("Between = %v, want %v", ids, want)
	}

	all, err := r.Between("v4.3", "v4.4", LogOptions{})
	if err != nil {
		t.Fatalf("Between all: %v", err)
	}
	if len(all) != 4 {
		t.Errorf("Between unfiltered = %d commits, want 4", len(all))
	}

	if _, err := r.Between("v4.4", "v4.3", LogOptions{}); err == nil {
		t.Error("Between with reversed tags should fail")
	}
	if _, err := r.Between("nope", "v4.4", LogOptions{}); !errors.Is(err, ErrUnknownTag) {
		t.Errorf("unknown tag err = %v", err)
	}
}

func TestShowAndFileDiffs(t *testing.T) {
	r := newTestRepo(t)
	id := r.Commit(sig("Alice"), "tweak a and x", map[string]*string{
		"drivers/a.c": strp("int a = 5;\n"),
		"include/x.h": strp("#define X 2\n"),
	}, false)

	fds, err := r.FileDiffs(id)
	if err != nil {
		t.Fatalf("FileDiffs: %v", err)
	}
	if len(fds) != 2 {
		t.Fatalf("FileDiffs = %d diffs, want 2", len(fds))
	}
	if fds[0].NewPath != "drivers/a.c" || fds[1].NewPath != "include/x.h" {
		t.Errorf("paths = %s, %s", fds[0].NewPath, fds[1].NewPath)
	}
	// Applying the diff to the old blob must reproduce the new blob.
	c, _ := r.Get(id)
	for i, ch := range c.Changes {
		got, err := textdiff.Apply(r.Blob(ch.Old), fds[i])
		if err != nil {
			t.Fatalf("Apply diff %d: %v", i, err)
		}
		if got != r.Blob(ch.New) {
			t.Errorf("diff %d does not reproduce new content", i)
		}
	}

	show, err := r.Show(id)
	if err != nil {
		t.Fatalf("Show: %v", err)
	}
	for _, want := range []string{"commit " + id, "Author: Alice <alice@example.org>", "    tweak a and x", "diff --git a/drivers/a.c b/drivers/a.c"} {
		if !strings.Contains(show, want) {
			t.Errorf("Show output missing %q:\n%s", want, show)
		}
	}
}

func TestCheckoutAcrossCheckpoints(t *testing.T) {
	base := fstree.New()
	base.Write("f.c", "v0\n")
	r := NewRepo(base, sig("Root"))
	var ids []string
	n := checkpointEvery*2 + 37
	for i := 1; i <= n; i++ {
		ids = append(ids, r.Commit(sig("A"), fmt.Sprintf("v%d", i),
			map[string]*string{"f.c": strp(fmt.Sprintf("v%d\n", i))}, false))
	}
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		k := rnd.Intn(n)
		tr, err := r.CheckoutTree(ids[k])
		if err != nil {
			t.Fatalf("CheckoutTree: %v", err)
		}
		want := fmt.Sprintf("v%d\n", k+1)
		if got, _ := tr.Read("f.c"); got != want {
			t.Errorf("checkout %d: f.c = %q, want %q", k, got, want)
		}
	}
	// Checkout must not alias internal state: mutating the result leaves
	// later checkouts unaffected.
	tr, _ := r.CheckoutTree(ids[0])
	tr.Write("f.c", "corrupted")
	tr2, _ := r.CheckoutTree(ids[0])
	if got, _ := tr2.Read("f.c"); got != "v1\n" {
		t.Errorf("checkout aliased internal state: f.c = %q", got)
	}
}

func TestGetUnknown(t *testing.T) {
	r := newTestRepo(t)
	if _, err := r.Get("deadbeef"); !errors.Is(err, ErrUnknownCommit) {
		t.Errorf("Get unknown: err = %v, want ErrUnknownCommit", err)
	}
	if _, err := r.CheckoutTree("deadbeef"); !errors.Is(err, ErrUnknownCommit) {
		t.Errorf("CheckoutTree unknown: err = %v, want ErrUnknownCommit", err)
	}
}

func TestDeterministicIDs(t *testing.T) {
	build := func() []string {
		r := newTestRepo(t)
		var ids []string
		ids = append(ids, r.Commit(sig("Alice"), "one", map[string]*string{"drivers/a.c": strp("1\n")}, false))
		ids = append(ids, r.Commit(sig("Bob"), "two", map[string]*string{"drivers/b.c": strp("2\n")}, false))
		return ids
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("commit %d IDs differ: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestParentAndSince(t *testing.T) {
	r := newTestRepo(t)
	root := r.Head()
	id1 := r.Commit(sig("Alice"), "one", map[string]*string{"drivers/a.c": strp("1\n")}, false)
	idMerge := r.Commit(sig("Bob"), "merge branch", nil, true)
	id2 := r.Commit(sig("Carol"), "two", map[string]*string{"drivers/b.c": strp("2\n")}, false)

	if p, err := r.Parent(root); err != nil || p != "" {
		t.Errorf("Parent(root) = %q, %v; want \"\", nil", p, err)
	}
	if p, err := r.Parent(id1); err != nil || p != root {
		t.Errorf("Parent(id1) = %q, %v; want root", p, err)
	}
	if p, err := r.Parent(id2); err != nil || p != idMerge {
		t.Errorf("Parent(id2) = %q, %v; want the merge commit", p, err)
	}
	if _, err := r.Parent("deadbeef"); !errors.Is(err, ErrUnknownCommit) {
		t.Errorf("Parent unknown: err = %v", err)
	}

	// Since is unfiltered: merges included, oldest first — a follower must
	// apply every commit even when it only checks a filtered subset.
	seq, err := r.Since(root)
	if err != nil {
		t.Fatalf("Since: %v", err)
	}
	want := []string{id1, idMerge, id2}
	if len(seq) != len(want) {
		t.Fatalf("Since(root) = %d commits, want %d", len(seq), len(want))
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("Since(root)[%d] = %s, want %s", i, seq[i], want[i])
		}
	}
	if seq, err := r.Since(id2); err != nil || len(seq) != 0 {
		t.Errorf("Since(head) = %v, %v; want empty", seq, err)
	}
	if _, err := r.Since("deadbeef"); !errors.Is(err, ErrUnknownCommit) {
		t.Errorf("Since unknown: err = %v", err)
	}
}

// TestRenameAsDeleteAdd: this VCS has no rename tracking — a rename is a
// delete plus an add in one commit, which is exactly how JMake's driver
// sees it. The commit must be excluded by OnlyModify, diff as a full
// removal plus a full addition, and check out correctly.
func TestRenameAsDeleteAdd(t *testing.T) {
	r := newTestRepo(t)
	if err := r.Tag("v4.3", r.Head()); err != nil {
		t.Fatal(err)
	}
	id := r.Commit(sig("Alice"), "rename a.c to a2.c", map[string]*string{
		"drivers/a.c":  nil,
		"drivers/a2.c": strp("int a;\n"),
	}, false)
	if err := r.Tag("v4.4", r.Head()); err != nil {
		t.Fatal(err)
	}

	c, err := r.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Changes) != 2 {
		t.Fatalf("rename commit has %d changes, want 2 (delete + add)", len(c.Changes))
	}
	sawDelete, sawAdd := false, false
	for _, ch := range c.Changes {
		switch ch.Path {
		case "drivers/a.c":
			sawDelete = ch.New == "" && ch.Old != ""
		case "drivers/a2.c":
			sawAdd = ch.Old == "" && ch.New != ""
		}
	}
	if !sawDelete || !sawAdd {
		t.Errorf("rename not recorded as delete+add: delete=%v add=%v", sawDelete, sawAdd)
	}

	fds, err := r.FileDiffs(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(fds) != 2 {
		t.Fatalf("FileDiffs = %d diffs, want 2", len(fds))
	}
	for _, fd := range fds {
		adds, dels := 0, 0
		for _, h := range fd.Hunks {
			for _, ln := range h.Lines {
				switch ln.Op {
				case '+':
					adds++
				case '-':
					dels++
				}
			}
		}
		switch fd.NewPath {
		case "drivers/a.c":
			if adds != 0 || dels == 0 {
				t.Errorf("delete side: %d adds, %d dels", adds, dels)
			}
		case "drivers/a2.c":
			if adds == 0 || dels != 0 {
				t.Errorf("add side: %d adds, %d dels", adds, dels)
			}
		}
	}

	tr, err := r.CheckoutTree(id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exists("drivers/a.c") {
		t.Error("renamed-away path still exists after checkout")
	}
	if got, _ := tr.Read("drivers/a2.c"); got != "int a;\n" {
		t.Errorf("renamed-to path = %q", got)
	}

	// The evaluation window (--diff-filter=M) must not select it.
	ids, err := r.Between("v4.3", "v4.4", LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("OnlyModify window selected the rename commit: %v", ids)
	}
}

// TestMergeAndEmptyDiffCommits: merges and empty-diff commits are
// filtered from the evaluation window but still part of history — their
// tree effects must survive checkout and Since so a follower applying
// everything stays in sync.
func TestMergeAndEmptyDiffCommits(t *testing.T) {
	r := newTestRepo(t)
	if err := r.Tag("v4.3", r.Head()); err != nil {
		t.Fatal(err)
	}
	// A merge that carries a tree change (the usual case: the merged
	// branch's work lands with the merge commit).
	idMerge := r.Commit(sig("Bob"), "merge branch with work", map[string]*string{
		"drivers/a.c": strp("int a = 9;\n"),
	}, true)
	// An empty-diff commit: same content rewritten.
	idEmpty := r.Commit(sig("Carol"), "rewrite same content", map[string]*string{
		"drivers/a.c": strp("int a = 9;\n"),
	}, false)
	idMod := r.Commit(sig("Dave"), "real change", map[string]*string{
		"drivers/b.c": strp("int b = 1;\n"),
	}, false)
	if err := r.Tag("v4.4", r.Head()); err != nil {
		t.Fatal(err)
	}

	cEmpty, err := r.Get(idEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if len(cEmpty.Changes) != 0 {
		t.Fatalf("empty-diff commit recorded %d changes", len(cEmpty.Changes))
	}
	if fds, err := r.FileDiffs(idEmpty); err != nil || len(fds) != 0 {
		t.Errorf("FileDiffs(empty) = %v, %v; want no diffs", fds, err)
	}

	ids, err := r.Between("v4.3", "v4.4", LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != idMod {
		t.Errorf("window = %v, want only the real change %s", ids, idMod)
	}

	// The merge's tree effect is visible at and after the merge.
	tr, err := r.CheckoutTree(idEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Read("drivers/a.c"); got != "int a = 9;\n" {
		t.Errorf("merge change lost by checkout: a.c = %q", got)
	}
	// Since hands a follower the full unfiltered tail, merge included.
	seq, err := r.Since(idMerge)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 || seq[0] != idEmpty || seq[1] != idMod {
		t.Errorf("Since(merge) = %v, want [%s %s]", seq, idEmpty, idMod)
	}
}
