package vcs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"jmake/internal/fstree"
	"jmake/internal/textdiff"
)

func sig(name string) Signature {
	return Signature{Name: name, Email: strings.ToLower(name) + "@example.org",
		When: time.Date(2015, 11, 1, 12, 0, 0, 0, time.UTC)}
}

func strp(s string) *string { return &s }

func newTestRepo(t *testing.T) *Repo {
	t.Helper()
	base := fstree.New()
	base.Write("drivers/a.c", "int a;\n")
	base.Write("drivers/b.c", "int b;\n")
	base.Write("include/x.h", "#define X 1\n")
	return NewRepo(base, sig("Root"))
}

func TestCommitAndCheckout(t *testing.T) {
	r := newTestRepo(t)
	id1 := r.Commit(sig("Alice"), "edit a", map[string]*string{
		"drivers/a.c": strp("int a = 2;\n"),
	}, false)
	id2 := r.Commit(sig("Bob"), "add c, delete b", map[string]*string{
		"drivers/c.c": strp("int c;\n"),
		"drivers/b.c": nil,
	}, false)

	t1, err := r.CheckoutTree(id1)
	if err != nil {
		t.Fatalf("CheckoutTree(id1): %v", err)
	}
	if got, _ := t1.Read("drivers/a.c"); got != "int a = 2;\n" {
		t.Errorf("a.c at id1 = %q", got)
	}
	if !t1.Exists("drivers/b.c") {
		t.Error("b.c should still exist at id1")
	}
	t2, err := r.CheckoutTree(id2)
	if err != nil {
		t.Fatalf("CheckoutTree(id2): %v", err)
	}
	if t2.Exists("drivers/b.c") {
		t.Error("b.c should be deleted at id2")
	}
	if got, _ := t2.Read("drivers/c.c"); got != "int c;\n" {
		t.Errorf("c.c at id2 = %q", got)
	}
}

func TestNoopCommitChanges(t *testing.T) {
	r := newTestRepo(t)
	id := r.Commit(sig("Alice"), "noop", map[string]*string{
		"drivers/a.c": strp("int a;\n"), // identical content
		"nonexistent": nil,              // delete of missing file
	}, false)
	c, err := r.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(c.Changes) != 0 {
		t.Errorf("noop commit has %d changes, want 0", len(c.Changes))
	}
}

func TestBetweenWithFilters(t *testing.T) {
	r := newTestRepo(t)
	if err := r.Tag("v4.3", r.Head()); err != nil {
		t.Fatalf("Tag: %v", err)
	}
	idMod := r.Commit(sig("Alice"), "modify", map[string]*string{"drivers/a.c": strp("int a=1;\n")}, false)
	_ = r.Commit(sig("Bob"), "merge branch", nil, true)
	_ = r.Commit(sig("Carol"), "add new file", map[string]*string{"drivers/new.c": strp("x\n")}, false)
	idMod2 := r.Commit(sig("Dave"), "modify again", map[string]*string{"include/x.h": strp("#define X 2\n")}, false)
	if err := r.Tag("v4.4", r.Head()); err != nil {
		t.Fatalf("Tag: %v", err)
	}

	ids, err := r.Between("v4.3", "v4.4", LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		t.Fatalf("Between: %v", err)
	}
	want := []string{idMod, idMod2}
	if len(ids) != 2 || ids[0] != want[0] || ids[1] != want[1] {
		t.Errorf("Between = %v, want %v", ids, want)
	}

	all, err := r.Between("v4.3", "v4.4", LogOptions{})
	if err != nil {
		t.Fatalf("Between all: %v", err)
	}
	if len(all) != 4 {
		t.Errorf("Between unfiltered = %d commits, want 4", len(all))
	}

	if _, err := r.Between("v4.4", "v4.3", LogOptions{}); err == nil {
		t.Error("Between with reversed tags should fail")
	}
	if _, err := r.Between("nope", "v4.4", LogOptions{}); !errors.Is(err, ErrUnknownTag) {
		t.Errorf("unknown tag err = %v", err)
	}
}

func TestShowAndFileDiffs(t *testing.T) {
	r := newTestRepo(t)
	id := r.Commit(sig("Alice"), "tweak a and x", map[string]*string{
		"drivers/a.c": strp("int a = 5;\n"),
		"include/x.h": strp("#define X 2\n"),
	}, false)

	fds, err := r.FileDiffs(id)
	if err != nil {
		t.Fatalf("FileDiffs: %v", err)
	}
	if len(fds) != 2 {
		t.Fatalf("FileDiffs = %d diffs, want 2", len(fds))
	}
	if fds[0].NewPath != "drivers/a.c" || fds[1].NewPath != "include/x.h" {
		t.Errorf("paths = %s, %s", fds[0].NewPath, fds[1].NewPath)
	}
	// Applying the diff to the old blob must reproduce the new blob.
	c, _ := r.Get(id)
	for i, ch := range c.Changes {
		got, err := textdiff.Apply(r.Blob(ch.Old), fds[i])
		if err != nil {
			t.Fatalf("Apply diff %d: %v", i, err)
		}
		if got != r.Blob(ch.New) {
			t.Errorf("diff %d does not reproduce new content", i)
		}
	}

	show, err := r.Show(id)
	if err != nil {
		t.Fatalf("Show: %v", err)
	}
	for _, want := range []string{"commit " + id, "Author: Alice <alice@example.org>", "    tweak a and x", "diff --git a/drivers/a.c b/drivers/a.c"} {
		if !strings.Contains(show, want) {
			t.Errorf("Show output missing %q:\n%s", want, show)
		}
	}
}

func TestCheckoutAcrossCheckpoints(t *testing.T) {
	base := fstree.New()
	base.Write("f.c", "v0\n")
	r := NewRepo(base, sig("Root"))
	var ids []string
	n := checkpointEvery*2 + 37
	for i := 1; i <= n; i++ {
		ids = append(ids, r.Commit(sig("A"), fmt.Sprintf("v%d", i),
			map[string]*string{"f.c": strp(fmt.Sprintf("v%d\n", i))}, false))
	}
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		k := rnd.Intn(n)
		tr, err := r.CheckoutTree(ids[k])
		if err != nil {
			t.Fatalf("CheckoutTree: %v", err)
		}
		want := fmt.Sprintf("v%d\n", k+1)
		if got, _ := tr.Read("f.c"); got != want {
			t.Errorf("checkout %d: f.c = %q, want %q", k, got, want)
		}
	}
	// Checkout must not alias internal state: mutating the result leaves
	// later checkouts unaffected.
	tr, _ := r.CheckoutTree(ids[0])
	tr.Write("f.c", "corrupted")
	tr2, _ := r.CheckoutTree(ids[0])
	if got, _ := tr2.Read("f.c"); got != "v1\n" {
		t.Errorf("checkout aliased internal state: f.c = %q", got)
	}
}

func TestGetUnknown(t *testing.T) {
	r := newTestRepo(t)
	if _, err := r.Get("deadbeef"); !errors.Is(err, ErrUnknownCommit) {
		t.Errorf("Get unknown: err = %v, want ErrUnknownCommit", err)
	}
	if _, err := r.CheckoutTree("deadbeef"); !errors.Is(err, ErrUnknownCommit) {
		t.Errorf("CheckoutTree unknown: err = %v, want ErrUnknownCommit", err)
	}
}

func TestDeterministicIDs(t *testing.T) {
	build := func() []string {
		r := newTestRepo(t)
		var ids []string
		ids = append(ids, r.Commit(sig("Alice"), "one", map[string]*string{"drivers/a.c": strp("1\n")}, false))
		ids = append(ids, r.Commit(sig("Bob"), "two", map[string]*string{"drivers/b.c": strp("2\n")}, false))
		return ids
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("commit %d IDs differ: %s vs %s", i, a[i], b[i])
		}
	}
}
