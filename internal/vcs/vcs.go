// Package vcs implements a minimal content-addressed version-control store:
// linear commit history, blob storage, tags, snapshot checkout, and
// git-show-style patch rendering.
//
// The JMake paper drives its evaluation from `git log -w --diff-filter=M
// --no-merges` over Linux v4.3..v4.4 and checks out one snapshot per patch
// with `git reset --hard` (paper §V-A). This package provides those exact
// capabilities over the synthetic history produced by internal/commitgen.
package vcs

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"jmake/internal/fstree"
	"jmake/internal/textdiff"
)

// ErrUnknownCommit is returned for lookups of commit IDs not in the repo.
var ErrUnknownCommit = errors.New("vcs: unknown commit")

// ErrUnknownTag is returned for lookups of undefined tags.
var ErrUnknownTag = errors.New("vcs: unknown tag")

// Hash is the hex content hash of a blob.
type Hash string

// Signature identifies the author of a commit.
type Signature struct {
	Name  string
	Email string
	When  time.Time
}

// Change records one file touched by a commit. An empty Old means the file
// was created; an empty New means it was deleted.
type Change struct {
	Path string
	Old  Hash
	New  Hash
}

// Commit is one node of the (linear) history.
type Commit struct {
	ID      string
	Parent  string // empty for the root commit
	Author  Signature
	Subject string
	IsMerge bool
	Changes []Change
}

// checkpointEvery controls how often a full tree snapshot is retained to
// bound checkout cost.
const checkpointEvery = 256

// Repo is an append-only repository. It is safe for concurrent reads after
// all commits have been appended; appending is not concurrency-safe.
type Repo struct {
	blobs       map[Hash]string
	commits     map[string]*Commit
	order       []string // commit IDs, oldest first, including root
	index       map[string]int
	tags        map[string]string
	checkpoints map[int]*fstree.Tree // order index -> snapshot after that commit
	tip         *fstree.Tree
}

// NewRepo creates a repository whose root commit holds a copy of base.
func NewRepo(base *fstree.Tree, author Signature) *Repo {
	r := &Repo{
		blobs:       make(map[Hash]string),
		commits:     make(map[string]*Commit),
		index:       make(map[string]int),
		tags:        make(map[string]string),
		checkpoints: make(map[int]*fstree.Tree),
		tip:         base.Clone(),
	}
	root := &Commit{Author: author, Subject: "initial import"}
	for _, p := range r.tip.Paths() {
		c, _ := r.tip.Read(p)
		h := r.putBlob(c)
		root.Changes = append(root.Changes, Change{Path: p, New: h})
	}
	root.ID = r.commitID(root)
	r.commits[root.ID] = root
	r.index[root.ID] = 0
	r.order = append(r.order, root.ID)
	r.checkpoints[0] = r.tip.Clone()
	return r
}

func (r *Repo) putBlob(content string) Hash {
	sum := sha1.Sum([]byte(content))
	h := Hash(hex.EncodeToString(sum[:]))
	if _, ok := r.blobs[h]; !ok {
		r.blobs[h] = content
	}
	return h
}

func (r *Repo) commitID(c *Commit) string {
	hsh := sha1.New()
	fmt.Fprintf(hsh, "parent %s\nauthor %s <%s> %d\nsubject %s\nmerge %v\n",
		c.Parent, c.Author.Name, c.Author.Email, c.Author.When.Unix(), c.Subject, c.IsMerge)
	for _, ch := range c.Changes {
		fmt.Fprintf(hsh, "%s %s %s\n", ch.Path, ch.Old, ch.New)
	}
	return hex.EncodeToString(hsh.Sum(nil))
}

// Commit appends a commit that applies files to the tip: for each entry, a
// non-nil value writes the file and nil deletes it. It returns the new
// commit's ID. Paths are sorted for determinism.
func (r *Repo) Commit(author Signature, subject string, files map[string]*string, isMerge bool) string {
	c := &Commit{Parent: r.order[len(r.order)-1], Author: author, Subject: subject, IsMerge: isMerge}
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, fstree.Clean(p))
	}
	sort.Strings(paths)
	for _, p := range paths {
		var old Hash
		if prev, err := r.tip.Read(p); err == nil {
			old = r.putBlob(prev)
		}
		nv := files[p]
		if nv == nil {
			if old == "" {
				continue // deleting a nonexistent file is a no-op
			}
			if err := r.tip.Remove(p); err != nil {
				continue
			}
			c.Changes = append(c.Changes, Change{Path: p, Old: old})
			continue
		}
		if old != "" && r.blobs[old] == *nv {
			continue // unchanged content is not a change
		}
		h := r.putBlob(*nv)
		r.tip.Write(p, *nv)
		c.Changes = append(c.Changes, Change{Path: p, Old: old, New: h})
	}
	c.ID = r.commitID(c)
	idx := len(r.order)
	r.commits[c.ID] = c
	r.index[c.ID] = idx
	r.order = append(r.order, c.ID)
	if idx%checkpointEvery == 0 {
		r.checkpoints[idx] = r.tip.Clone()
	}
	return c.ID
}

// Tag associates name with a commit ID.
func (r *Repo) Tag(name, id string) error {
	if _, ok := r.commits[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCommit, id)
	}
	r.tags[name] = id
	return nil
}

// TagID resolves a tag name.
func (r *Repo) TagID(name string) (string, error) {
	id, ok := r.tags[name]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownTag, name)
	}
	return id, nil
}

// Get returns the commit with the given ID.
func (r *Repo) Get(id string) (*Commit, error) {
	c, ok := r.commits[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCommit, id)
	}
	return c, nil
}

// Blob returns the content stored under h; missing hashes return "".
func (r *Repo) Blob(h Hash) string { return r.blobs[h] }

// ReadTip returns the content of path at the current tip. The commit
// generator uses it to base each synthetic edit on the file's current
// state.
func (r *Repo) ReadTip(path string) (string, error) { return r.tip.Read(path) }

// Len returns the number of commits including the root.
func (r *Repo) Len() int { return len(r.order) }

// Head returns the ID of the most recent commit.
func (r *Repo) Head() string { return r.order[len(r.order)-1] }

// Parent returns the ID of the commit immediately before id in history
// order, or "" when id is the root commit. This is the seed position a
// commit-stream follower needs: check out Parent(id), then apply id.
func (r *Repo) Parent(id string) (string, error) {
	idx, ok := r.index[id]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownCommit, id)
	}
	if idx == 0 {
		return "", nil
	}
	return r.order[idx-1], nil
}

// Since returns every commit ID strictly after `id` in history order,
// oldest first and unfiltered — merges and empty-diff commits included,
// because a follower must apply all of them to keep its working tree in
// sync even when it only checks a filtered subset.
func (r *Repo) Since(id string) ([]string, error) {
	idx, ok := r.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCommit, id)
	}
	out := make([]string, len(r.order)-idx-1)
	copy(out, r.order[idx+1:])
	return out, nil
}

// LogOptions mirror the git-log filters used by the paper's evaluation.
type LogOptions struct {
	NoMerges   bool // --no-merges
	OnlyModify bool // --diff-filter=M: keep only commits where every change modifies an existing file
}

// Between returns the commit IDs after `fromTag` up to and including
// `toTag`, oldest first, applying opts.
func (r *Repo) Between(fromTag, toTag string, opts LogOptions) ([]string, error) {
	from, err := r.TagID(fromTag)
	if err != nil {
		return nil, err
	}
	to, err := r.TagID(toTag)
	if err != nil {
		return nil, err
	}
	fi, ti := r.index[from], r.index[to]
	if fi > ti {
		return nil, fmt.Errorf("vcs: tag %s is newer than %s", fromTag, toTag)
	}
	var out []string
	for i := fi + 1; i <= ti; i++ {
		c := r.commits[r.order[i]]
		if opts.NoMerges && c.IsMerge {
			continue
		}
		if opts.OnlyModify && !onlyModifies(c) {
			continue
		}
		out = append(out, c.ID)
	}
	return out, nil
}

func onlyModifies(c *Commit) bool {
	if len(c.Changes) == 0 {
		return false
	}
	for _, ch := range c.Changes {
		if ch.Old == "" || ch.New == "" {
			return false
		}
	}
	return true
}

// CheckoutTree returns a fresh tree holding the snapshot as of commit id
// (after applying it), equivalent to `git reset --hard id` into a clean
// working copy.
func (r *Repo) CheckoutTree(id string) (*fstree.Tree, error) {
	idx, ok := r.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCommit, id)
	}
	// Nearest checkpoint at or before idx.
	ci := idx - idx%checkpointEvery
	base, ok := r.checkpoints[ci]
	if !ok {
		// The tip tree may be ahead of the last checkpoint; rebuild from the
		// closest earlier checkpoint that exists.
		for ci > 0 && !ok {
			ci -= checkpointEvery
			base, ok = r.checkpoints[ci]
		}
		if !ok {
			return nil, fmt.Errorf("vcs: no checkpoint for commit %s", id)
		}
	}
	t := base.Clone()
	for i := ci + 1; i <= idx; i++ {
		for _, ch := range r.commits[r.order[i]].Changes {
			if ch.New == "" {
				// Deletions of files missing from the checkpoint are no-ops.
				_ = t.Remove(ch.Path)
				continue
			}
			t.Write(ch.Path, r.blobs[ch.New])
		}
	}
	return t, nil
}

// FileDiffs returns the structured per-file diffs of a commit, sorted by
// path. Whitespace-only line changes are preserved (JMake's driver passes
// -w to git; the commit generator never produces whitespace-only edits, so
// the distinction is immaterial here).
func (r *Repo) FileDiffs(id string) ([]textdiff.FileDiff, error) {
	c, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	var out []textdiff.FileDiff
	for _, ch := range c.Changes {
		fd, changed := textdiff.Diff(ch.Path, ch.Path, r.blobs[ch.Old], r.blobs[ch.New])
		if changed {
			out = append(out, fd)
		}
	}
	return out, nil
}

// Show renders the commit as `git show` does: a header block followed by
// the unified diff of every changed file.
func (r *Repo) Show(id string) (string, error) {
	c, err := r.Get(id)
	if err != nil {
		return "", err
	}
	fds, err := r.FileDiffs(id)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "commit %s\n", c.ID)
	fmt.Fprintf(&b, "Author: %s <%s>\n", c.Author.Name, c.Author.Email)
	fmt.Fprintf(&b, "Date:   %s\n\n", c.Author.When.Format(time.ANSIC))
	fmt.Fprintf(&b, "    %s\n\n", c.Subject)
	b.WriteString(textdiff.FormatPatch(fds))
	return b.String(), nil
}
