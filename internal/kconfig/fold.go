package kconfig

// FoldFuncs supplies one constructor per dependency-expression node shape
// for FoldExpr. Sym also receives the y/m/n tristate literals, spelled
// exactly as in the Kconfig source.
type FoldFuncs[T any] struct {
	Sym func(name string) T
	Not func(x T) T
	And func(l, r T) T
	Or  func(l, r T) T
	// Cmp handles =/!= tests; the operand expressions are passed unfolded
	// because their comparison semantics (string/tristate equality) do not
	// decompose through the boolean constructors.
	Cmp func(l, r Expr, ne bool) T
}

// FoldExpr maps a `depends on` expression bottom-up into another domain —
// the presence-condition layer uses it to turn dependency expressions into
// boolean formulas without this package exporting its AST node types.
func FoldExpr[T any](e Expr, fns FoldFuncs[T]) T {
	switch n := e.(type) {
	case symRef:
		return fns.Sym(n.name)
	case notExpr:
		return fns.Not(FoldExpr(n.x, fns))
	case andExpr:
		return fns.And(FoldExpr(n.l, fns), FoldExpr(n.r, fns))
	case orExpr:
		return fns.Or(FoldExpr(n.l, fns), FoldExpr(n.r, fns))
	case cmpExpr:
		return fns.Cmp(n.l, n.r, n.ne)
	}
	// Future node kinds degrade to an opaque comparison over themselves.
	return fns.Cmp(e, e, false)
}

// DependsClosure returns the `depends on` expression of name and of every
// symbol those dependencies mention, transitively, up to maxDepth levels of
// indirection (0 collects only name's own clause). Symbols without a clause
// and undeclared names contribute nothing; the y/m/n literals are skipped.
func (t *Tree) DependsClosure(name string, maxDepth int) map[string]Expr {
	out := make(map[string]Expr)
	frontier := []string{name}
	for depth := 0; depth <= maxDepth && len(frontier) > 0; depth++ {
		var next []string
		for _, n := range frontier {
			if _, seen := out[n]; seen {
				continue
			}
			s := t.Symbol(n)
			if s == nil || s.DependsOn == nil {
				continue
			}
			out[n] = s.DependsOn
			for _, ref := range s.DependsOn.Symbols(nil) {
				switch ref {
				case "y", "m", "n":
					continue
				}
				next = append(next, ref)
			}
		}
		frontier = next
	}
	return out
}

// SelectTargets returns the set of symbols forced by any `select` clause in
// the tree. The fixpoint raises select targets regardless of their own
// dependencies, so consumers that turn `depends on` into hard constraints
// must exempt these symbols or they would wrongly prove lines dead.
func (t *Tree) SelectTargets() map[string]bool {
	out := make(map[string]bool)
	for _, name := range t.Names() {
		s := t.Symbol(name)
		if s == nil {
			continue
		}
		for _, sel := range s.Selects {
			out[sel.Target] = true
		}
	}
	return out
}
