// Package kconfig implements a subset of the Linux kernel's Kconfig
// configuration language: bool and tristate symbols with prompts,
// `depends on` and `select` with conditions, defaults, `source` inclusion,
// and `if` blocks — plus the configuration strategies JMake relies on:
// allyesconfig, allmodconfig, and defconfig resolution (paper §II-B).
package kconfig

import "fmt"

// Value is a tristate configuration value. The ordering No < Mod < Yes is
// semantic: && is min and || is max.
type Value int

// Tristate values.
const (
	No  Value = 0
	Mod Value = 1
	Yes Value = 2
)

func (v Value) String() string {
	switch v {
	case Yes:
		return "y"
	case Mod:
		return "m"
	default:
		return "n"
	}
}

// Expr is a Kconfig dependency expression.
type Expr interface {
	// Eval computes the tristate value of the expression given a symbol
	// valuation.
	Eval(get func(name string) Value) Value
	// Symbols appends the names referenced by the expression.
	Symbols(into []string) []string
	// WantsFor records, for each referenced symbol, the value that pushes
	// the whole expression toward target (used by coverage-configuration
	// synthesis: to satisfy `FOO && !BAR`, want FOO=target and BAR=!target).
	WantsFor(target Value, into map[string]Value)
	String() string
}

type symRef struct{ name string }

func (e symRef) Eval(get func(string) Value) Value {
	switch e.name {
	case "y":
		return Yes
	case "m":
		return Mod
	case "n":
		return No
	}
	return get(e.name)
}
func (e symRef) Symbols(into []string) []string {
	if e.name == "y" || e.name == "m" || e.name == "n" {
		return into
	}
	return append(into, e.name)
}
func (e symRef) WantsFor(target Value, into map[string]Value) {
	if e.name == "y" || e.name == "m" || e.name == "n" {
		return
	}
	into[e.name] = target
}
func (e symRef) String() string { return e.name }

type notExpr struct{ x Expr }

func (e notExpr) Eval(get func(string) Value) Value { return Yes - e.x.Eval(get) }
func (e notExpr) Symbols(into []string) []string    { return e.x.Symbols(into) }
func (e notExpr) WantsFor(target Value, into map[string]Value) {
	e.x.WantsFor(Yes-target, into)
}
func (e notExpr) String() string { return "!" + e.x.String() }

type andExpr struct{ l, r Expr }

func (e andExpr) Eval(get func(string) Value) Value {
	l, r := e.l.Eval(get), e.r.Eval(get)
	if l < r {
		return l
	}
	return r
}
func (e andExpr) Symbols(into []string) []string {
	return e.r.Symbols(e.l.Symbols(into))
}
func (e andExpr) WantsFor(target Value, into map[string]Value) {
	e.l.WantsFor(target, into)
	e.r.WantsFor(target, into)
}
func (e andExpr) String() string { return "(" + e.l.String() + " && " + e.r.String() + ")" }

type orExpr struct{ l, r Expr }

func (e orExpr) Eval(get func(string) Value) Value {
	l, r := e.l.Eval(get), e.r.Eval(get)
	if l > r {
		return l
	}
	return r
}
func (e orExpr) Symbols(into []string) []string {
	return e.r.Symbols(e.l.Symbols(into))
}
func (e orExpr) WantsFor(target Value, into map[string]Value) {
	// Satisfying either side suffices; drive both toward the target, which
	// is conservative but sound for coverage purposes.
	e.l.WantsFor(target, into)
	e.r.WantsFor(target, into)
}
func (e orExpr) String() string { return "(" + e.l.String() + " || " + e.r.String() + ")" }

type cmpExpr struct {
	l, r Expr
	ne   bool
}

func (e cmpExpr) Eval(get func(string) Value) Value {
	eq := e.l.Eval(get) == e.r.Eval(get)
	if eq != e.ne {
		return Yes
	}
	return No
}
func (e cmpExpr) Symbols(into []string) []string {
	return e.r.Symbols(e.l.Symbols(into))
}
func (e cmpExpr) WantsFor(target Value, into map[string]Value) {
	// Equality tests do not yield simple per-symbol wants; skip them.
}
func (e cmpExpr) String() string {
	op := "="
	if e.ne {
		op = "!="
	}
	return e.l.String() + op + e.r.String()
}

// ParseExpr parses a Kconfig dependency expression: identifiers, the y/m/n
// literals, !, &&, ||, =, != and parentheses.
func ParseExpr(s string) (Expr, error) {
	p := &exprParser{toks: lexExpr(s)}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("kconfig: trailing %q in expression %q", p.toks[p.pos], s)
	}
	return e, nil
}

func lexExpr(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '!' && i+1 < len(s) && s[i+1] == '=':
			out = append(out, "!=")
			i += 2
		case c == '!' || c == '(' || c == ')' || c == '=':
			out = append(out, string(c))
			i++
		case c == '&' && i+1 < len(s) && s[i+1] == '&':
			out = append(out, "&&")
			i += 2
		case c == '|' && i+1 < len(s) && s[i+1] == '|':
			out = append(out, "||")
			i += 2
		default:
			j := i
			for j < len(s) && (s[j] == '_' || s[j] >= 'a' && s[j] <= 'z' ||
				s[j] >= 'A' && s[j] <= 'Z' || s[j] >= '0' && s[j] <= '9') {
				j++
			}
			if j == i {
				out = append(out, string(c))
				i++
			} else {
				out = append(out, s[i:j])
				i = j
			}
		}
	}
	return out
}

type exprParser struct {
	toks []string
	pos  int
}

func (p *exprParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.toks) && p.toks[p.pos] == "||" {
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *exprParser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.toks) && p.toks[p.pos] == "&&" {
		p.pos++
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *exprParser) parseCmp() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) && (p.toks[p.pos] == "=" || p.toks[p.pos] == "!=") {
		op := p.toks[p.pos]
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return cmpExpr{l, r, op == "!="}, nil
	}
	return l, nil
}

func (p *exprParser) parseUnary() (Expr, error) {
	if p.pos >= len(p.toks) {
		return nil, fmt.Errorf("kconfig: unexpected end of expression")
	}
	t := p.toks[p.pos]
	switch t {
	case "!":
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{x}, nil
	case "(":
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.toks) || p.toks[p.pos] != ")" {
			return nil, fmt.Errorf("kconfig: missing ')' in expression")
		}
		p.pos++
		return e, nil
	case ")", "&&", "||", "=", "!=":
		return nil, fmt.Errorf("kconfig: unexpected %q in expression", t)
	default:
		p.pos++
		return symRef{t}, nil
	}
}

// isIdentText reports whether s is a plain identifier (used by the lexer's
// callers to validate symbol names).
func isIdentText(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}
