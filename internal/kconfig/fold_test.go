package kconfig

import "testing"

// chainTree declares a two-level dependency chain: LEAF depends on MID,
// MID depends on ROOT && !BLOCK, plus a selector forcing FORCED.
func chainTree(t *testing.T) *Tree {
	t.Helper()
	return parseOne(t, `
config ROOT
	bool "root"

config BLOCK
	bool "block"

config MID
	bool "mid"
	depends on ROOT && !BLOCK

config LEAF
	tristate "leaf"
	depends on MID

config FORCED
	bool "forced"
	depends on BLOCK

config SELECTOR
	bool "selector"
	select FORCED
`)
}

func TestDependsClosureTwoLevels(t *testing.T) {
	tree := chainTree(t)

	got := tree.DependsClosure("LEAF", 8)
	if len(got) != 2 {
		t.Fatalf("closure = %v, want LEAF and MID clauses", got)
	}
	if e := got["LEAF"]; e == nil || e.String() != "MID" {
		t.Errorf("LEAF clause = %v", got["LEAF"])
	}
	if e := got["MID"]; e == nil || e.String() != "(ROOT && !BLOCK)" {
		t.Errorf("MID clause = %v", got["MID"])
	}

	// Depth 0 stops at the symbol's own clause.
	if got := tree.DependsClosure("LEAF", 0); len(got) != 1 || got["LEAF"] == nil {
		t.Errorf("depth-0 closure = %v", got)
	}
	// Symbols without dependencies and undeclared names contribute nothing.
	if got := tree.DependsClosure("ROOT", 8); len(got) != 0 {
		t.Errorf("ROOT closure = %v", got)
	}
	if got := tree.DependsClosure("NO_SUCH", 8); len(got) != 0 {
		t.Errorf("undeclared closure = %v", got)
	}
}

func TestFoldExprRebuild(t *testing.T) {
	tree := chainTree(t)
	fns := FoldFuncs[string]{
		Sym: func(name string) string { return name },
		Not: func(x string) string { return "!" + x },
		And: func(l, r string) string { return "(" + l + " & " + r + ")" },
		Or:  func(l, r string) string { return "(" + l + " | " + r + ")" },
		Cmp: func(l, r Expr, ne bool) string { return "cmp" },
	}
	if got := FoldExpr(tree.Symbol("MID").DependsOn, fns); got != "(ROOT & !BLOCK)" {
		t.Errorf("FoldExpr(MID deps) = %q", got)
	}
	e, err := ParseExpr(`A || B = y`)
	if err != nil {
		t.Fatalf("ParseExpr: %v", err)
	}
	if got := FoldExpr(e, fns); got != "(A | cmp)" {
		t.Errorf("FoldExpr(cmp) = %q", got)
	}
}

func TestSelectTargets(t *testing.T) {
	tree := chainTree(t)
	got := tree.SelectTargets()
	if !got["FORCED"] || len(got) != 1 {
		t.Errorf("SelectTargets = %v", got)
	}
}
