package kconfig

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync/atomic"
)

// SymType is the type of a configuration symbol.
type SymType int

// Symbol types. Only bool and tristate matter for code inclusion.
const (
	TypeBool SymType = iota + 1
	TypeTristate
)

// Select is one `select TARGET [if COND]` clause.
type Select struct {
	Target string
	Cond   Expr // nil means unconditional
}

// Default is one `default EXPR [if COND]` clause.
type Default struct {
	Value Expr
	Cond  Expr // nil means unconditional
}

// Symbol is one `config NAME` block.
type Symbol struct {
	Name      string
	Type      SymType
	Prompt    string
	DependsOn Expr // nil means no dependency
	Selects   []Select
	Defaults  []Default
	// DefFile is the Kconfig file that declared the symbol, used by JMake's
	// architecture heuristics to associate symbols with arch directories.
	DefFile string
}

// Source supplies Kconfig file contents (satisfied by fstree adapters).
type Source interface {
	ReadFile(path string) (string, bool)
}

// ChoiceGroup is a `choice ... endchoice` block: exactly one member can be
// enabled. This is why allyesconfig cannot cover everything — the paper
// notes it "is forced to make some choices and thus does not include all
// lines of code" (§VI).
type ChoiceGroup struct {
	Members []string
	// Default names the member chosen when nothing forces another.
	Default string
}

// Tree is a parsed Kconfig hierarchy rooted at one file.
//
// A Tree is immutable after Parse returns, so concurrent evaluation
// workers may share one Tree freely: AllYesConfig, AllModConfig,
// ApplyDefconfig and the dependency queries only read it and build fresh
// Config values. (In practice sharing goes through core.ConfigProvider,
// which also memoizes the valuations under a lock.)
type Tree struct {
	symbols map[string]*Symbol
	order   []string
	choices []*ChoiceGroup
	// files lists every Kconfig file parsed, in order.
	files []string
}

// ErrParse wraps Kconfig syntax errors.
var ErrParse = errors.New("kconfig: parse error")

// Parse reads the Kconfig hierarchy rooted at rootPath, following `source`
// directives.
func Parse(src Source, rootPath string) (*Tree, error) {
	t := &Tree{symbols: make(map[string]*Symbol)}
	if err := t.parseFile(src, rootPath, nil, 0); err != nil {
		return nil, err
	}
	return t, nil
}

const maxSourceDepth = 32

// parseFile parses one Kconfig file. cond is the conjunction of enclosing
// `if` blocks from ancestors, applied as an extra dependency to each symbol.
func (t *Tree) parseFile(src Source, path string, cond Expr, depth int) error {
	if depth > maxSourceDepth {
		return fmt.Errorf("%w: source nesting too deep at %s", ErrParse, path)
	}
	content, ok := src.ReadFile(path)
	if !ok {
		return fmt.Errorf("%w: %s: no such file", ErrParse, path)
	}
	t.files = append(t.files, path)

	var cur *Symbol
	var curChoice *ChoiceGroup
	// condStack holds the conditions of `if` blocks opened in this file.
	condStack := []Expr{cond}
	curCond := func() Expr { return condStack[len(condStack)-1] }
	lines := strings.Split(content, "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		word, rest := splitWord(line)
		fail := func(msg string) error {
			return fmt.Errorf("%w: %s:%d: %s", ErrParse, path, ln+1, msg)
		}
		switch word {
		case "config", "menuconfig":
			if !isIdentText(rest) {
				return fail(fmt.Sprintf("bad symbol name %q", rest))
			}
			cur = t.declare(rest, path)
			if c := curCond(); c != nil {
				cur.addDep(c)
			}
			if curChoice != nil {
				curChoice.Members = append(curChoice.Members, cur.Name)
			}
		case "choice":
			cur = nil
			if curChoice != nil {
				return fail("nested choice blocks are not supported")
			}
			curChoice = &ChoiceGroup{}
			t.choices = append(t.choices, curChoice)
		case "endchoice":
			cur = nil
			if curChoice == nil {
				return fail("endchoice without choice")
			}
			curChoice = nil
		case "bool", "boolean":
			if cur == nil {
				if curChoice != nil {
					continue // the choice block's own type line
				}
				return fail("type outside config block")
			}
			cur.Type = TypeBool
			cur.Prompt = unquote(rest)
		case "tristate":
			if cur == nil {
				if curChoice != nil {
					continue
				}
				return fail("type outside config block")
			}
			cur.Type = TypeTristate
			cur.Prompt = unquote(rest)
		case "depends":
			if cur == nil {
				return fail("depends outside config block")
			}
			exprText := strings.TrimSpace(strings.TrimPrefix(rest, "on"))
			e, err := ParseExpr(exprText)
			if err != nil {
				return fail(err.Error())
			}
			cur.addDep(e)
		case "select":
			if cur == nil {
				return fail("select outside config block")
			}
			target, condText := splitIf(rest)
			if !isIdentText(target) {
				return fail(fmt.Sprintf("bad select target %q", target))
			}
			sel := Select{Target: target}
			if condText != "" {
				e, err := ParseExpr(condText)
				if err != nil {
					return fail(err.Error())
				}
				sel.Cond = e
			}
			cur.Selects = append(cur.Selects, sel)
		case "default", "def_bool", "def_tristate":
			if cur == nil {
				// A default line directly inside a choice block names the
				// chosen member.
				if curChoice != nil && word == "default" {
					name, _ := splitIf(rest)
					if !isIdentText(name) {
						return fail(fmt.Sprintf("bad choice default %q", name))
					}
					curChoice.Default = name
					continue
				}
				return fail("default outside config block")
			}
			if word == "def_bool" {
				cur.Type = TypeBool
			}
			if word == "def_tristate" {
				cur.Type = TypeTristate
			}
			valText, condText := splitIf(rest)
			v, err := ParseExpr(valText)
			if err != nil {
				return fail(err.Error())
			}
			d := Default{Value: v}
			if condText != "" {
				e, err := ParseExpr(condText)
				if err != nil {
					return fail(err.Error())
				}
				d.Cond = e
			}
			cur.Defaults = append(cur.Defaults, d)
		case "source":
			cur = nil
			if err := t.parseFile(src, unquote(rest), curCond(), depth+1); err != nil {
				return err
			}
		case "if":
			cur = nil
			e, err := ParseExpr(rest)
			if err != nil {
				return fail(err.Error())
			}
			if c := curCond(); c != nil {
				e = andExpr{c, e}
			}
			condStack = append(condStack, e)
		case "endif":
			cur = nil
			if len(condStack) == 1 {
				return fail("endif without if")
			}
			condStack = condStack[:len(condStack)-1]
		case "menu", "endmenu", "comment", "help", "---help---", "mainmenu":
			// Structure and documentation only. Help bodies are indented
			// free text; they never collide with recognized keywords here
			// because the generated corpus keeps help text one line.
			cur = nil
		default:
			// Unknown attribute lines inside a config block are tolerated
			// (string/int symbols, ranges, etc. are irrelevant to builds).
		}
	}
	if len(condStack) != 1 {
		return fmt.Errorf("%w: %s: unterminated if block", ErrParse, path)
	}
	if curChoice != nil {
		return fmt.Errorf("%w: %s: unterminated choice block", ErrParse, path)
	}
	return nil
}

// Choices returns the parsed choice groups.
func (t *Tree) Choices() []*ChoiceGroup {
	out := make([]*ChoiceGroup, len(t.choices))
	copy(out, t.choices)
	return out
}

func (t *Tree) declare(name, file string) *Symbol {
	if s, ok := t.symbols[name]; ok {
		return s
	}
	s := &Symbol{Name: name, Type: TypeBool, DefFile: file}
	t.symbols[name] = s
	t.order = append(t.order, name)
	return s
}

func (s *Symbol) addDep(e Expr) {
	if s.DependsOn == nil {
		s.DependsOn = e
		return
	}
	s.DependsOn = andExpr{s.DependsOn, e}
}

func splitWord(line string) (word, rest string) {
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return line[:i], strings.TrimSpace(line[i:])
	}
	return line, ""
}

// splitIf splits "EXPR if COND" at the top-level `if`.
func splitIf(s string) (value, cond string) {
	if i := strings.Index(s, " if "); i >= 0 {
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+4:])
	}
	return strings.TrimSpace(s), ""
}

func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// Symbol returns the named symbol, or nil.
func (t *Tree) Symbol(name string) *Symbol { return t.symbols[name] }

// Names returns all symbol names in declaration order.
func (t *Tree) Names() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Len returns the number of declared symbols.
func (t *Tree) Len() int { return len(t.order) }

// Files returns the Kconfig files parsed, in order.
func (t *Tree) Files() []string {
	out := make([]string, len(t.files))
	copy(out, t.files)
	return out
}

// Config is a complete symbol valuation. Like Tree it is immutable once
// built — Value and Defines only read — so one cached Config may back any
// number of concurrent builders.
type Config struct {
	values map[string]Value
	// memo caches the derived views (the Defines rendering and the
	// fingerprint), which builders request once per patch variant; the
	// valuation has thousands of symbols, so rebuilding them per builder
	// dominated builder setup. Set drops the memo. The pointer is atomic
	// because concurrent builders share one cached Config: a racing
	// rebuild is idempotent, so last-store-wins is fine.
	memo atomic.Pointer[configMemo]
}

type configMemo struct {
	defines map[string]string
	fp      uint64
}

func (c *Config) memoized() *configMemo {
	if m := c.memo.Load(); m != nil {
		return m
	}
	m := &configMemo{defines: c.buildDefines(), fp: c.computeFingerprint()}
	c.memo.Store(m)
	return m
}

// Value returns the configured value of name (No for unknown symbols, as in
// the kernel: an unset CONFIG_* is simply undefined).
func (c *Config) Value(name string) Value { return c.values[name] }

// Set overrides one symbol value. Used by tests and by the MODULE handling
// in kbuild. Not safe concurrently with readers; a shared (provider-cached)
// Config must never be Set.
func (c *Config) Set(name string, v Value) {
	if c.values == nil {
		c.values = make(map[string]Value)
	}
	c.values[name] = v
	c.memo.Store(nil)
}

// Clone returns an independent copy.
func (c *Config) Clone() *Config {
	nc := &Config{values: make(map[string]Value, len(c.values))}
	for k, v := range c.values {
		nc.values[k] = v
	}
	return nc
}

// Defines renders the valuation as preprocessor macros the way Kbuild's
// generated autoconf.h does: CONFIG_FOO=1 for y, CONFIG_FOO_MODULE=1 for m.
// The returned map is memoized and shared — callers must not modify it.
func (c *Config) Defines() map[string]string {
	return c.memoized().defines
}

func (c *Config) buildDefines() map[string]string {
	out := make(map[string]string, len(c.values))
	for name, v := range c.values {
		switch v {
		case Yes:
			out["CONFIG_"+name] = "1"
		case Mod:
			out["CONFIG_"+name+"_MODULE"] = "1"
		}
	}
	return out
}

// Fingerprint returns a stable content hash of the complete valuation —
// every symbol, including explicit n entries, since Value (and hence
// Kbuild reachability) distinguishes them from absent ones. Two configs
// with equal fingerprints make identical Value and Defines decisions, so
// the fingerprint is a sound result-cache key component (internal/ccache).
// Memoized: the sort over every symbol name runs once per valuation, not
// once per builder.
func (c *Config) Fingerprint() uint64 {
	return c.memoized().fp
}

func (c *Config) computeFingerprint() uint64 {
	names := make([]string, 0, len(c.values))
	for name := range c.values {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		_, _ = h.Write([]byte(name))
		_, _ = h.Write([]byte{'=', byte(c.values[name]), 0})
	}
	return h.Sum64()
}

// EnabledCount returns how many symbols are y or m (used in reports).
func (c *Config) EnabledCount() int {
	n := 0
	for _, v := range c.values {
		if v != No {
			n++
		}
	}
	return n
}

// fixpoint computes a stable valuation where each symbol takes
// want(symbol) bounded by its dependencies, then select clauses force
// their targets on (ignoring the target's own dependencies, faithfully to
// Kconfig's infamous select semantics).
func (t *Tree) fixpoint(want func(*Symbol) Value) *Config {
	vals := make(map[string]Value, len(t.order))
	get := func(name string) Value { return vals[name] }
	// Start from the desired maximum and shrink to honor dependencies;
	// iterate because dependencies reference other symbols.
	for _, name := range t.order {
		vals[name] = want(t.symbols[name])
	}
	prev := make(map[string]Value, len(t.order))
	for iter := 0; iter < len(t.order)+2; iter++ {
		// Convergence is judged on iteration-end states: the want pass and
		// the choice enforcement legitimately flip choice members back and
		// forth within one iteration.
		for k, v := range vals {
			prev[k] = v
		}
		changed := false
		for _, name := range t.order {
			s := t.symbols[name]
			v := want(s)
			if s.DependsOn != nil {
				dep := s.DependsOn.Eval(get)
				if dep == No {
					v = No
				} else if s.Type == TypeTristate && dep < v {
					v = dep
				}
			}
			vals[name] = v
		}
		// Enforce choice groups: exactly one member stays enabled — the
		// group default if possible, else the first enabled member. This is
		// the "allyesconfig is forced to make some choices" effect.
		for _, ch := range t.choices {
			winner := ""
			if ch.Default != "" && vals[ch.Default] != No {
				winner = ch.Default
			} else {
				for _, m := range ch.Members {
					if vals[m] != No {
						winner = m
						break
					}
				}
			}
			for _, m := range ch.Members {
				v := No
				if m == winner {
					v = Yes
				}
				vals[m] = v
			}
		}
		// Apply selects: a select raises the target to at least the
		// selector's value regardless of the target's dependencies.
		for _, name := range t.order {
			s := t.symbols[name]
			sv := vals[name]
			if sv == No {
				continue
			}
			for _, sel := range s.Selects {
				if sel.Cond != nil && sel.Cond.Eval(get) == No {
					continue
				}
				target, ok := t.symbols[sel.Target]
				forced := sv
				if ok && target.Type == TypeBool && forced == Mod {
					forced = Yes
				}
				if vals[sel.Target] < forced {
					vals[sel.Target] = forced
				}
			}
		}
		for k, v := range vals {
			if prev[k] != v {
				changed = true
				break
			}
		}
		if iter > 0 && !changed {
			break
		}
	}
	return &Config{values: vals}
}

// AllYesConfig emulates `make allyesconfig`: every symbol is set as high as
// its dependencies allow, preferring y.
func (t *Tree) AllYesConfig() *Config {
	return t.fixpoint(func(*Symbol) Value { return Yes })
}

// AllModConfig emulates `make allmodconfig`: tristate symbols prefer m,
// bool symbols prefer y.
func (t *Tree) AllModConfig() *Config {
	return t.fixpoint(func(s *Symbol) Value {
		if s.Type == TypeTristate {
			return Mod
		}
		return Yes
	})
}

// ConfigWithWants computes a configuration that drives the named symbols
// toward the requested values while everything else follows allyesconfig.
// Dependencies still apply: a want that cannot be satisfied (e.g. the
// symbol depends on an undeclared variable) simply ends at n. This backs
// the Vampyr/Troll-style coverage-configuration synthesis the paper
// proposes as future work (§VII).
func (t *Tree) ConfigWithWants(wants map[string]Value) *Config {
	return t.fixpoint(func(s *Symbol) Value {
		if v, ok := wants[s.Name]; ok {
			return v
		}
		return Yes
	})
}

// DependencyWants expands a want for one symbol into the per-symbol wants
// that make its dependency chain satisfiable (one level deep): to get
// FOO=y where FOO depends on BAR && !BAZ, also want BAR=y and BAZ=n.
func (t *Tree) DependencyWants(name string, target Value) map[string]Value {
	wants := map[string]Value{name: target}
	if s := t.symbols[name]; s != nil && s.DependsOn != nil && target != No {
		s.DependsOn.WantsFor(Yes, wants)
		wants[name] = target // the symbol's own want always wins
	}
	return wants
}

// ApplyDefconfig emulates `make <name>_defconfig` followed by
// olddefconfig: symbols explicitly listed get their listed value (bounded
// by dependencies); unlisted symbols take their first applicable default.
func (t *Tree) ApplyDefconfig(text string) (*Config, error) {
	explicit := make(map[string]Value)
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// "# CONFIG_FOO is not set"
			if name, ok := notSetName(line); ok {
				explicit[name] = No
			}
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 || !strings.HasPrefix(line, "CONFIG_") {
			return nil, fmt.Errorf("%w: defconfig line %d: %q", ErrParse, ln+1, line)
		}
		name := line[len("CONFIG_"):eq]
		var v Value
		switch line[eq+1:] {
		case "y":
			v = Yes
		case "m":
			v = Mod
		case "n":
			v = No
		default:
			return nil, fmt.Errorf("%w: defconfig line %d: bad value %q", ErrParse, ln+1, line[eq+1:])
		}
		explicit[name] = v
	}
	cfg := t.fixpoint(func(s *Symbol) Value {
		if v, ok := explicit[s.Name]; ok {
			return v
		}
		return No // resolved by defaults below
	})
	// Defaults for unlisted symbols, then re-run the fixpoint with the
	// combined wants so selects and dependencies settle.
	want := func(s *Symbol) Value {
		if v, ok := explicit[s.Name]; ok {
			return v
		}
		get := func(name string) Value { return cfg.values[name] }
		for _, d := range s.Defaults {
			if d.Cond != nil && d.Cond.Eval(get) == No {
				continue
			}
			return d.Value.Eval(get)
		}
		return No
	}
	return t.fixpoint(want), nil
}

// MentionedIn reports which declared symbols appear (as CONFIG_ references)
// in the given text. Used by JMake's arch heuristics over Makefiles.
func (t *Tree) MentionedIn(text string) []string {
	var out []string
	for _, name := range t.order {
		if strings.Contains(text, "CONFIG_"+name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func notSetName(line string) (string, bool) {
	const pre = "# CONFIG_"
	const suf = " is not set"
	if strings.HasPrefix(line, pre) && strings.HasSuffix(line, suf) {
		return line[len(pre) : len(line)-len(suf)], true
	}
	return "", false
}
