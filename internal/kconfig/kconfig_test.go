package kconfig

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

type mapSource map[string]string

func (m mapSource) ReadFile(p string) (string, bool) {
	c, ok := m[p]
	return c, ok
}

func parseOne(t *testing.T, text string) *Tree {
	t.Helper()
	tree, err := Parse(mapSource{"Kconfig": text}, "Kconfig")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tree
}

func TestParseExprEval(t *testing.T) {
	vals := map[string]Value{"A": Yes, "B": Mod, "C": No}
	get := func(n string) Value { return vals[n] }
	tests := []struct {
		expr string
		want Value
	}{
		{"A", Yes},
		{"B", Mod},
		{"C", No},
		{"UNDECLARED", No},
		{"!A", No},
		{"!B", Mod}, // tristate negation: !m == m
		{"!C", Yes},
		{"A && B", Mod},
		{"A || B", Yes},
		{"C || B", Mod},
		{"A && !C", Yes},
		{"(A || C) && B", Mod},
		{"A = y", Yes},
		{"B = m", Yes},
		{"B != y", Yes},
		{"A != y", No},
		{"y", Yes},
		{"m", Mod},
		{"n", No},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			e, err := ParseExpr(tt.expr)
			if err != nil {
				t.Fatalf("ParseExpr: %v", err)
			}
			if got := e.Eval(get); got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.expr, got, tt.want)
			}
		})
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, bad := range []string{"", "A &&", "(A", "A B", "&& A", "!"} {
		if _, err := ParseExpr(bad); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", bad)
		}
	}
}

func TestParseBasicSymbols(t *testing.T) {
	tree := parseOne(t, `
config NET
	bool "Networking support"

config USB
	tristate "USB support"
	depends on NET

config USB_STORAGE
	tristate "USB storage"
	depends on USB
	default m
`)
	if tree.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tree.Len())
	}
	net := tree.Symbol("NET")
	if net.Type != TypeBool || net.Prompt != "Networking support" {
		t.Errorf("NET = %+v", net)
	}
	usb := tree.Symbol("USB")
	if usb.Type != TypeTristate || usb.DependsOn == nil {
		t.Errorf("USB = %+v", usb)
	}
	if got := tree.Names(); !reflect.DeepEqual(got, []string{"NET", "USB", "USB_STORAGE"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestSourceDirective(t *testing.T) {
	src := mapSource{
		"Kconfig":         "config TOP\n\tbool \"top\"\nsource \"drivers/Kconfig\"\n",
		"drivers/Kconfig": "config DRV\n\tbool \"drv\"\n\tdepends on TOP\n",
	}
	tree, err := Parse(src, "Kconfig")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tree.Symbol("DRV") == nil {
		t.Fatal("DRV not found via source")
	}
	if got := tree.Symbol("DRV").DefFile; got != "drivers/Kconfig" {
		t.Errorf("DefFile = %q", got)
	}
	if got := tree.Files(); !reflect.DeepEqual(got, []string{"Kconfig", "drivers/Kconfig"}) {
		t.Errorf("Files = %v", got)
	}
}

func TestMissingSource(t *testing.T) {
	_, err := Parse(mapSource{"Kconfig": "source \"gone/Kconfig\"\n"}, "Kconfig")
	if !errors.Is(err, ErrParse) {
		t.Errorf("err = %v, want ErrParse", err)
	}
}

func TestIfBlocks(t *testing.T) {
	tree := parseOne(t, `
config GATE
	bool "gate"

if GATE
config INSIDE
	bool "inside"
endif

config OUTSIDE
	bool "outside"
`)
	cfgAll := tree.AllYesConfig()
	if cfgAll.Value("INSIDE") != Yes {
		t.Errorf("INSIDE should be y when GATE is y")
	}
	// Now a tree where the gate can never be y.
	tree2 := parseOne(t, `
config GATE
	bool "gate"
	depends on NEVER

if GATE
config INSIDE
	bool "inside"
endif
`)
	if got := tree2.AllYesConfig().Value("INSIDE"); got != No {
		t.Errorf("INSIDE = %v, want n (gate off)", got)
	}
}

func TestUnterminatedIf(t *testing.T) {
	_, err := Parse(mapSource{"Kconfig": "if A\nconfig B\n\tbool \"b\"\n"}, "Kconfig")
	if !errors.Is(err, ErrParse) {
		t.Errorf("err = %v, want ErrParse", err)
	}
}

func TestAllYesConfigDependencies(t *testing.T) {
	tree := parseOne(t, `
config A
	bool "a"

config B
	bool "b"
	depends on A

config C
	bool "c"
	depends on !A

config D
	tristate "d"
	depends on B
`)
	cfg := tree.AllYesConfig()
	if cfg.Value("A") != Yes || cfg.Value("B") != Yes || cfg.Value("D") != Yes {
		t.Errorf("A/B/D = %v/%v/%v, want y/y/y", cfg.Value("A"), cfg.Value("B"), cfg.Value("D"))
	}
	// The paper (§VII) notes allyesconfig sets variables to yes, so code
	// under !A (like #ifndef) stays out.
	if cfg.Value("C") != No {
		t.Errorf("C = %v, want n (depends on !A)", cfg.Value("C"))
	}
}

func TestAllModConfig(t *testing.T) {
	tree := parseOne(t, `
config CORE
	bool "core"

config DRV
	tristate "driver"
	depends on CORE
`)
	cfg := tree.AllModConfig()
	if cfg.Value("CORE") != Yes {
		t.Errorf("CORE = %v, want y (bool)", cfg.Value("CORE"))
	}
	if cfg.Value("DRV") != Mod {
		t.Errorf("DRV = %v, want m (tristate)", cfg.Value("DRV"))
	}
}

func TestTristateDependencyBound(t *testing.T) {
	// A tristate depending on an m symbol is capped at m.
	tree := parseOne(t, `
config BUS
	tristate "bus"

config DEV
	tristate "dev"
	depends on BUS
`)
	cfg := tree.AllModConfig()
	if cfg.Value("DEV") != Mod {
		t.Errorf("DEV = %v, want m", cfg.Value("DEV"))
	}
}

func TestSelectForcesTarget(t *testing.T) {
	tree := parseOne(t, `
config HELPER
	bool "helper"
	depends on NEVER_SET

config USER
	bool "user"
	select HELPER
`)
	cfg := tree.AllYesConfig()
	// select ignores the target's dependencies — true Kconfig semantics.
	if cfg.Value("HELPER") != Yes {
		t.Errorf("HELPER = %v, want y (selected)", cfg.Value("HELPER"))
	}
}

func TestConditionalSelect(t *testing.T) {
	tree := parseOne(t, `
config COND
	bool "cond"
	depends on NEVER

config T
	bool "t"
	depends on NEVER

config U
	bool "u"
	select T if COND
`)
	cfg := tree.AllYesConfig()
	if cfg.Value("T") != No {
		t.Errorf("T = %v, want n (select condition false)", cfg.Value("T"))
	}
}

func TestApplyDefconfig(t *testing.T) {
	tree := parseOne(t, `
config A
	bool "a"

config B
	tristate "b"
	depends on A

config C
	bool "c"
	default A

config D
	bool "d"
	default y if B
`)
	cfg, err := tree.ApplyDefconfig("CONFIG_A=y\nCONFIG_B=m\n# CONFIG_X is not set\n")
	if err != nil {
		t.Fatalf("ApplyDefconfig: %v", err)
	}
	if cfg.Value("A") != Yes || cfg.Value("B") != Mod {
		t.Errorf("A/B = %v/%v", cfg.Value("A"), cfg.Value("B"))
	}
	if cfg.Value("C") != Yes {
		t.Errorf("C = %v, want y (default A)", cfg.Value("C"))
	}
	if cfg.Value("D") != Yes {
		t.Errorf("D = %v, want y (default y if B, B=m)", cfg.Value("D"))
	}
}

func TestApplyDefconfigErrors(t *testing.T) {
	tree := parseOne(t, "config A\n\tbool \"a\"\n")
	for _, bad := range []string{"GARBAGE\n", "CONFIG_A=maybe\n", "A=y\n"} {
		if _, err := tree.ApplyDefconfig(bad); err == nil {
			t.Errorf("ApplyDefconfig(%q) succeeded, want error", bad)
		}
	}
}

func TestDefines(t *testing.T) {
	tree := parseOne(t, `
config ON
	bool "on"

config MODULAR
	tristate "modular"

config OFF
	bool "off"
	depends on NEVER
`)
	cfg := tree.AllModConfig()
	defs := cfg.Defines()
	if defs["CONFIG_ON"] != "1" {
		t.Errorf("CONFIG_ON missing: %v", defs)
	}
	if defs["CONFIG_MODULAR_MODULE"] != "1" {
		t.Errorf("CONFIG_MODULAR_MODULE missing: %v", defs)
	}
	if _, ok := defs["CONFIG_OFF"]; ok {
		t.Errorf("CONFIG_OFF should be absent: %v", defs)
	}
	if _, ok := defs["CONFIG_MODULAR"]; ok {
		t.Errorf("m symbol must not define the builtin macro: %v", defs)
	}
}

func TestMentionedIn(t *testing.T) {
	tree := parseOne(t, "config FOO\n\tbool \"f\"\nconfig BAR\n\tbool \"b\"\n")
	makefile := "obj-$(CONFIG_FOO) += foo.o\nobj-y += core.o\n"
	got := tree.MentionedIn(makefile)
	if !reflect.DeepEqual(got, []string{"FOO"}) {
		t.Errorf("MentionedIn = %v", got)
	}
}

func TestEnabledCountAndClone(t *testing.T) {
	tree := parseOne(t, "config A\n\tbool \"a\"\nconfig B\n\tbool \"b\"\n\tdepends on NEVER\n")
	cfg := tree.AllYesConfig()
	if cfg.EnabledCount() != 1 {
		t.Errorf("EnabledCount = %d, want 1", cfg.EnabledCount())
	}
	cl := cfg.Clone()
	cl.Set("B", Yes)
	if cfg.Value("B") != No {
		t.Error("Clone aliases original")
	}
}

// Property: tristate negation is an involution and De Morgan holds for the
// min/max lattice.
func TestQuickTristateLattice(t *testing.T) {
	norm := func(v Value) Value {
		if v < No {
			return No
		}
		if v > Yes {
			return Yes
		}
		return v
	}
	f := func(a8, b8 uint8) bool {
		a, b := norm(Value(a8%3)), norm(Value(b8%3))
		get := func(n string) Value {
			if n == "A" {
				return a
			}
			return b
		}
		notNot, _ := ParseExpr("!!A")
		plain, _ := ParseExpr("A")
		deMorganL, _ := ParseExpr("!(A && B)")
		deMorganR, _ := ParseExpr("!A || !B")
		return notNot.Eval(get) == plain.Eval(get) &&
			deMorganL.Eval(get) == deMorganR.Eval(get)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AllYesConfig is a fixpoint — every enabled symbol's dependency
// evaluates above No, i.e. the valuation is self-consistent (modulo
// selects, which legitimately violate dependencies).
func TestAllYesConfigConsistent(t *testing.T) {
	tree := parseOne(t, `
config A
	bool "a"
config B
	bool "b"
	depends on A
config C
	tristate "c"
	depends on B && !D
config D
	bool "d"
	depends on NEVER
config E
	tristate "e"
	depends on C
`)
	cfg := tree.AllYesConfig()
	get := func(n string) Value { return cfg.Value(n) }
	for _, name := range tree.Names() {
		s := tree.Symbol(name)
		if cfg.Value(name) == No || s.DependsOn == nil {
			continue
		}
		if s.DependsOn.Eval(get) == No {
			t.Errorf("symbol %s enabled with unmet dependency %s", name, s.DependsOn)
		}
	}
}

func TestExprString(t *testing.T) {
	e, err := ParseExpr("A && !(B || C) && D != y")
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	for _, want := range []string{"A", "B", "C", "D", "&&", "||", "!", "!="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// Symbols() must list each referenced symbol.
	syms := e.Symbols(nil)
	if len(syms) != 4 {
		t.Errorf("Symbols = %v, want 4 entries", syms)
	}
}

func TestChoiceGroup(t *testing.T) {
	tree := parseOne(t, `
choice
	bool "CPU governor"
	default GOV_ONDEMAND

config GOV_PERFORMANCE
	bool "performance"

config GOV_ONDEMAND
	bool "ondemand"

config GOV_POWERSAVE
	bool "powersave"

endchoice

config OTHER
	bool "other"
`)
	if len(tree.Choices()) != 1 {
		t.Fatalf("choices = %d", len(tree.Choices()))
	}
	ch := tree.Choices()[0]
	if len(ch.Members) != 3 || ch.Default != "GOV_ONDEMAND" {
		t.Fatalf("choice = %+v", ch)
	}
	cfg := tree.AllYesConfig()
	// Exactly the default member is enabled — allyesconfig is forced to
	// make a choice (paper §VI).
	if cfg.Value("GOV_ONDEMAND") != Yes {
		t.Errorf("default member = %v, want y", cfg.Value("GOV_ONDEMAND"))
	}
	if cfg.Value("GOV_PERFORMANCE") != No || cfg.Value("GOV_POWERSAVE") != No {
		t.Errorf("non-default members should be n: %v / %v",
			cfg.Value("GOV_PERFORMANCE"), cfg.Value("GOV_POWERSAVE"))
	}
	if cfg.Value("OTHER") != Yes {
		t.Errorf("symbols outside the choice unaffected: %v", cfg.Value("OTHER"))
	}
}

func TestChoiceWithoutDefaultPicksFirst(t *testing.T) {
	tree := parseOne(t, `
choice
	bool "pick one"

config FIRST
	bool "first"

config SECOND
	bool "second"

endchoice
`)
	cfg := tree.AllYesConfig()
	if cfg.Value("FIRST") != Yes || cfg.Value("SECOND") != No {
		t.Errorf("FIRST/SECOND = %v/%v, want y/n", cfg.Value("FIRST"), cfg.Value("SECOND"))
	}
}

func TestChoiceDefconfigOverride(t *testing.T) {
	tree := parseOne(t, `
choice
	bool "pick"
	default A_OPT

config A_OPT
	bool "a"

config B_OPT
	bool "b"

endchoice
`)
	cfg, err := tree.ApplyDefconfig("CONFIG_B_OPT=y\n# CONFIG_A_OPT is not set\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Value("B_OPT") != Yes || cfg.Value("A_OPT") != No {
		t.Errorf("A/B = %v/%v, want n/y (defconfig overrides the choice)",
			cfg.Value("A_OPT"), cfg.Value("B_OPT"))
	}
}

func TestChoiceParseErrors(t *testing.T) {
	for _, bad := range []string{
		"choice\nconfig X\n\tbool \"x\"\n",       // unterminated
		"endchoice\n",                            // endchoice without choice
		"choice\nchoice\nendchoice\nendchoice\n", // nested
	} {
		if _, err := Parse(mapSource{"Kconfig": bad}, "Kconfig"); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
