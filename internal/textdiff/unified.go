package textdiff

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ContextLines is the number of unchanged lines shown around each change in
// a unified diff, matching the diff/git default.
const ContextLines = 3

// Line is one line of a hunk body.
type Line struct {
	Op   byte // ' ' context, '-' removed, '+' added
	Text string
}

// Hunk is one @@-delimited block of a file diff. Starts are 1-based; a
// count of 0 means the start points just before the given line (diff
// convention for pure insertions/deletions).
type Hunk struct {
	OldStart, OldCount int
	NewStart, NewCount int
	Lines              []Line
}

// FileDiff is the diff of a single file. Paths carry no a/ b/ prefix.
type FileDiff struct {
	OldPath, NewPath string
	Hunks            []Hunk
}

// splitLines splits s into lines without trailing newlines. An empty string
// yields no lines; a trailing newline does not produce a final empty line.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// joinLines is the inverse of splitLines: non-empty input gains a trailing
// newline.
func joinLines(lines []string) string {
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// Diff computes the unified diff between old and new content. It returns
// the zero FileDiff and false when the contents are identical.
func Diff(oldPath, newPath, oldContent, newContent string) (FileDiff, bool) {
	if oldContent == newContent {
		return FileDiff{}, false
	}
	script := myers(splitLines(oldContent), splitLines(newContent))
	fd := FileDiff{OldPath: oldPath, NewPath: newPath}

	// Group edit ops into hunks with ContextLines of context.
	type region struct{ start, end int } // [start,end) in script, covering changes
	var regions []region
	i := 0
	for i < len(script) {
		if script[i].op == ' ' {
			i++
			continue
		}
		j := i
		// Extend while the gap of context between changes is small enough to
		// merge (2*ContextLines).
		for k := i; k < len(script); {
			if script[k].op != ' ' {
				j = k + 1
				k++
				continue
			}
			gap := 0
			for k+gap < len(script) && script[k+gap].op == ' ' {
				gap++
			}
			if k+gap < len(script) && gap <= 2*ContextLines {
				k += gap
				continue
			}
			break
		}
		regions = append(regions, region{i, j})
		i = j
	}

	oldLine, newLine := 1, 1
	pos := 0
	for _, r := range regions {
		// Advance counters through untouched context before the region.
		for pos < r.start {
			if script[pos].op == ' ' {
				oldLine++
				newLine++
			}
			pos++
		}
		lead := r.start - pos // always 0 here; context accounted above
		_ = lead
		start := r.start - ContextLines
		if start < 0 {
			start = 0
		}
		// Walk back counters for leading context included in the hunk.
		backCtx := r.start - start
		h := Hunk{
			OldStart: oldLine - backCtx,
			NewStart: newLine - backCtx,
		}
		end := r.end + ContextLines
		if end > len(script) {
			end = len(script)
		}
		for p := start; p < end; p++ {
			e := script[p]
			h.Lines = append(h.Lines, Line{e.op, e.text})
			switch e.op {
			case ' ':
				h.OldCount++
				h.NewCount++
			case '-':
				h.OldCount++
			case '+':
				h.NewCount++
			}
			if p >= r.start && p < r.end {
				// Keep global counters in sync for ops inside the region.
				switch e.op {
				case ' ':
					oldLine++
					newLine++
				case '-':
					oldLine++
				case '+':
					newLine++
				}
			}
		}
		pos = r.end
		// Unified-diff convention: a zero-count range points at the line
		// *after which* material goes, so its start is decremented.
		if h.OldCount == 0 {
			h.OldStart--
		}
		if h.NewCount == 0 {
			h.NewStart--
		}
		fd.Hunks = append(fd.Hunks, h)
	}
	return fd, true
}

// Format renders fd in unified-diff format with git-style a/ b/ headers.
func Format(fd FileDiff) string {
	var b strings.Builder
	fmt.Fprintf(&b, "diff --git a/%s b/%s\n", fd.OldPath, fd.NewPath)
	fmt.Fprintf(&b, "--- a/%s\n", fd.OldPath)
	fmt.Fprintf(&b, "+++ b/%s\n", fd.NewPath)
	for _, h := range fd.Hunks {
		fmt.Fprintf(&b, "@@ -%d,%d +%d,%d @@\n", h.OldStart, h.OldCount, h.NewStart, h.NewCount)
		for _, l := range h.Lines {
			b.WriteByte(l.Op)
			b.WriteString(l.Text)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatPatch renders a multi-file patch.
func FormatPatch(fds []FileDiff) string {
	var b strings.Builder
	for _, fd := range fds {
		b.WriteString(Format(fd))
	}
	return b.String()
}

// ErrBadPatch is returned for malformed patch text.
var ErrBadPatch = errors.New("textdiff: malformed patch")

// ParsePatch parses a (possibly multi-file) unified diff as produced by
// Format or git show.
func ParsePatch(text string) ([]FileDiff, error) {
	var out []FileDiff
	var cur *FileDiff
	lines := splitLines(text)
	for i := 0; i < len(lines); i++ {
		ln := lines[i]
		switch {
		case strings.HasPrefix(ln, "diff --git "):
			out = append(out, FileDiff{})
			cur = &out[len(out)-1]
		case strings.HasPrefix(ln, "--- "):
			if cur == nil {
				out = append(out, FileDiff{})
				cur = &out[len(out)-1]
			}
			cur.OldPath = stripPathPrefix(strings.TrimPrefix(ln, "--- "))
		case strings.HasPrefix(ln, "+++ "):
			if cur == nil {
				return nil, fmt.Errorf("%w: +++ before ---", ErrBadPatch)
			}
			cur.NewPath = stripPathPrefix(strings.TrimPrefix(ln, "+++ "))
		case strings.HasPrefix(ln, "@@ "):
			if cur == nil {
				return nil, fmt.Errorf("%w: hunk before file header", ErrBadPatch)
			}
			h, err := parseHunkHeader(ln)
			if err != nil {
				return nil, err
			}
			// Body lines follow until counts are satisfied.
			needOld, needNew := h.OldCount, h.NewCount
			for needOld > 0 || needNew > 0 {
				i++
				if i >= len(lines) {
					return nil, fmt.Errorf("%w: truncated hunk", ErrBadPatch)
				}
				bl := lines[i]
				if bl == "" {
					bl = " " // tolerate stripped trailing blanks in context lines
				}
				op := bl[0]
				txt := bl[1:]
				switch op {
				case ' ':
					needOld--
					needNew--
				case '-':
					needOld--
				case '+':
					needNew--
				case '\\': // "\ No newline at end of file"
					continue
				default:
					return nil, fmt.Errorf("%w: bad hunk line %q", ErrBadPatch, bl)
				}
				h.Lines = append(h.Lines, Line{op, txt})
			}
			cur.Hunks = append(cur.Hunks, h)
		}
	}
	return out, nil
}

func stripPathPrefix(p string) string {
	p = strings.TrimSpace(p)
	for _, pre := range []string{"a/", "b/"} {
		if strings.HasPrefix(p, pre) {
			return p[len(pre):]
		}
	}
	return p
}

func parseHunkHeader(ln string) (Hunk, error) {
	// @@ -l[,c] +l[,c] @@ optional-section
	var h Hunk
	body := strings.TrimPrefix(ln, "@@ ")
	end := strings.Index(body, " @@")
	if end < 0 {
		return h, fmt.Errorf("%w: bad hunk header %q", ErrBadPatch, ln)
	}
	parts := strings.Fields(body[:end])
	if len(parts) != 2 || !strings.HasPrefix(parts[0], "-") || !strings.HasPrefix(parts[1], "+") {
		return h, fmt.Errorf("%w: bad hunk header %q", ErrBadPatch, ln)
	}
	var err error
	h.OldStart, h.OldCount, err = parseRange(parts[0][1:])
	if err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadPatch, err)
	}
	h.NewStart, h.NewCount, err = parseRange(parts[1][1:])
	if err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadPatch, err)
	}
	return h, nil
}

func parseRange(s string) (start, count int, err error) {
	count = 1
	if i := strings.IndexByte(s, ','); i >= 0 {
		count, err = strconv.Atoi(s[i+1:])
		if err != nil {
			return 0, 0, err
		}
		s = s[:i]
	}
	start, err = strconv.Atoi(s)
	return start, count, err
}

// Apply applies fd to content, returning the patched content. Context and
// removed lines must match exactly.
func Apply(content string, fd FileDiff) (string, error) {
	src := splitLines(content)
	var out []string
	srcPos := 0 // 0-based index into src
	for hi, h := range fd.Hunks {
		// Copy untouched lines before the hunk.
		hunkStart := h.OldStart - 1
		if h.OldCount == 0 {
			// Pure insertion: OldStart is the line *after which* to insert.
			hunkStart = h.OldStart
		}
		if hunkStart < srcPos || hunkStart > len(src) {
			return "", fmt.Errorf("%w: hunk %d starts at %d, position %d", ErrBadPatch, hi+1, hunkStart, srcPos)
		}
		out = append(out, src[srcPos:hunkStart]...)
		srcPos = hunkStart
		for _, l := range h.Lines {
			switch l.Op {
			case ' ':
				if srcPos >= len(src) || src[srcPos] != l.Text {
					return "", fmt.Errorf("%w: context mismatch at old line %d", ErrBadPatch, srcPos+1)
				}
				out = append(out, src[srcPos])
				srcPos++
			case '-':
				if srcPos >= len(src) || src[srcPos] != l.Text {
					return "", fmt.Errorf("%w: removal mismatch at old line %d", ErrBadPatch, srcPos+1)
				}
				srcPos++
			case '+':
				out = append(out, l.Text)
			}
		}
	}
	out = append(out, src[srcPos:]...)
	return joinLines(out), nil
}

// ChangedNewLines returns the 1-based line numbers, in the post-patch file,
// that JMake must track for fd (paper §III-B): for hunks that add or modify
// code, the added lines; for hunks that only remove code, the first line
// remaining after the removed block (clamped to the last line of the file,
// i.e. "or the end of the file").
//
// newTotal is the number of lines in the post-patch file, used for the
// end-of-file clamp; pass 0 if unknown to skip clamping.
func ChangedNewLines(fd FileDiff, newTotal int) []int {
	var out []int
	seen := make(map[int]bool)
	add := func(n int) {
		if n < 1 {
			n = 1
		}
		if newTotal > 0 && n > newTotal {
			n = newTotal
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, h := range fd.Hunks {
		newLine := h.NewStart
		if h.NewCount == 0 {
			newLine = h.NewStart + 1
		}
		hasAdd := false
		lastRemovalNew := -1
		for _, l := range h.Lines {
			switch l.Op {
			case ' ':
				newLine++
			case '+':
				hasAdd = true
				add(newLine)
				newLine++
			case '-':
				lastRemovalNew = newLine
			}
		}
		if !hasAdd && lastRemovalNew >= 0 {
			add(lastRemovalNew)
		}
	}
	return out
}
