package textdiff

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustDiff(t *testing.T, a, b string) FileDiff {
	t.Helper()
	fd, changed := Diff("f.c", "f.c", a, b)
	if !changed {
		t.Fatal("Diff reported no change")
	}
	return fd
}

func TestDiffIdentical(t *testing.T) {
	if _, changed := Diff("a", "a", "x\ny\n", "x\ny\n"); changed {
		t.Error("identical contents reported as changed")
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	tests := []struct{ name, a, b string }{
		{"modify middle", "a\nb\nc\nd\ne\n", "a\nb\nC\nd\ne\n"},
		{"add line", "a\nb\nc\n", "a\nb\nnew\nc\n"},
		{"remove line", "a\nb\nc\nd\n", "a\nc\nd\n"},
		{"append at end", "a\nb\n", "a\nb\nc\n"},
		{"prepend", "a\nb\n", "z\na\nb\n"},
		{"empty to content", "", "a\nb\n"},
		{"content to empty", "a\nb\n", ""},
		{"two far changes", "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n13\n14\n15\n", "1\nX\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n13\nY\n15\n"},
		{"adjacent changes merge", "1\n2\n3\n4\n5\n6\n7\n8\n", "1\nA\n3\n4\nB\n6\n7\n8\n"},
		{"total rewrite", "a\nb\nc\n", "x\ny\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fd, changed := Diff("f", "f", tt.a, tt.b)
			if !changed {
				t.Fatal("no change reported")
			}
			got, err := Apply(tt.a, fd)
			if err != nil {
				t.Fatalf("Apply: %v\npatch:\n%s", err, Format(fd))
			}
			if got != tt.b {
				t.Errorf("Apply = %q, want %q\npatch:\n%s", got, tt.b, Format(fd))
			}
		})
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	a := "one\ntwo\nthree\nfour\nfive\nsix\nseven\neight\nnine\nten\n"
	b := "one\ntwo\nTHREE\nfour\nfive\nsix\nseven\neight\nNINE\nten\nextra\n"
	fd := mustDiff(t, a, b)
	text := Format(fd)
	parsed, err := ParsePatch(text)
	if err != nil {
		t.Fatalf("ParsePatch: %v\n%s", err, text)
	}
	if len(parsed) != 1 {
		t.Fatalf("parsed %d file diffs, want 1", len(parsed))
	}
	if !reflect.DeepEqual(parsed[0], fd) {
		t.Errorf("round trip mismatch:\norig: %+v\nparsed: %+v", fd, parsed[0])
	}
	got, err := Apply(a, parsed[0])
	if err != nil {
		t.Fatalf("Apply parsed: %v", err)
	}
	if got != b {
		t.Errorf("Apply parsed = %q, want %q", got, b)
	}
}

func TestParseMultiFilePatch(t *testing.T) {
	a1, b1 := "x\ny\n", "x\nz\n"
	a2, b2 := "p\nq\n", "p\nq\nr\n"
	fd1 := mustDiff(t, a1, b1)
	fd2, _ := Diff("g.h", "g.h", a2, b2)
	text := FormatPatch([]FileDiff{fd1, fd2})
	parsed, err := ParsePatch(text)
	if err != nil {
		t.Fatalf("ParsePatch: %v", err)
	}
	if len(parsed) != 2 {
		t.Fatalf("parsed %d diffs, want 2", len(parsed))
	}
	if parsed[0].NewPath != "f.c" || parsed[1].NewPath != "g.h" {
		t.Errorf("paths = %q, %q", parsed[0].NewPath, parsed[1].NewPath)
	}
	if got, _ := Apply(a2, parsed[1]); got != b2 {
		t.Errorf("Apply second = %q, want %q", got, b2)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct{ name, text string }{
		{"hunk without header", "@@ -1,1 +1,1 @@\n-a\n+b\n"},
		{"truncated hunk", "--- a/f\n+++ b/f\n@@ -1,2 +1,2 @@\n-a\n"},
		{"bad hunk line", "--- a/f\n+++ b/f\n@@ -1,1 +1,1 @@\n*bogus\n"},
		{"bad header numbers", "--- a/f\n+++ b/f\n@@ -x,1 +1,1 @@\n-a\n+b\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParsePatch(tt.text); err == nil {
				t.Error("ParsePatch succeeded, want error")
			}
		})
	}
}

func TestApplyContextMismatch(t *testing.T) {
	fd := mustDiff(t, "a\nb\nc\n", "a\nB\nc\n")
	if _, err := Apply("a\nX\nc\n", fd); err == nil {
		t.Error("Apply succeeded on mismatched context, want error")
	}
}

func TestChangedNewLines(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want []int
	}{
		{"modify one", "a\nb\nc\nd\ne\n", "a\nb\nX\nd\ne\n", []int{3}},
		{"add two adjacent", "a\nb\nc\n", "a\nn1\nn2\nb\nc\n", []int{2, 3}},
		{"pure removal middle", "a\nb\nc\nd\n", "a\nc\nd\n", []int{2}},
		{"pure removal at end", "a\nb\nc\n", "a\nb\n", []int{2}},
		{"removal then later add", "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n13\n14\n15\n",
			"1\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n13\nX\n14\n15\n", []int{2, 13}},
		{"whole file new", "", "a\nb\n", []int{1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fd, changed := Diff("f", "f", tt.a, tt.b)
			if !changed {
				t.Fatal("no change")
			}
			total := len(splitLines(tt.b))
			got := ChangedNewLines(fd, total)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("ChangedNewLines = %v, want %v\npatch:\n%s", got, tt.want, Format(fd))
			}
		})
	}
}

// randomLines builds content from a tiny alphabet so diffs hit many shared
// lines (the interesting case for Myers).
func randomLines(r *rand.Rand, n int) string {
	words := []string{"alpha", "beta", "gamma", "delta", "", "x = 1;", "}"}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(words[r.Intn(len(words))])
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Property: Apply(a, Diff(a,b)) == b for arbitrary line-structured content.
func TestQuickDiffApply(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		a := randomLines(r, r.Intn(40))
		b := randomLines(r, r.Intn(40))
		fd, changed := Diff("f", "f", a, b)
		if !changed {
			if a != b {
				t.Fatalf("Diff said unchanged but a != b\na=%q\nb=%q", a, b)
			}
			continue
		}
		got, err := Apply(a, fd)
		if err != nil {
			t.Fatalf("Apply: %v\na=%q\nb=%q\npatch:\n%s", err, a, b, Format(fd))
		}
		if got != b {
			t.Fatalf("round trip failed\na=%q\nb=%q\ngot=%q\npatch:\n%s", a, b, got, Format(fd))
		}
	}
}

// Property: Format/ParsePatch round-trips structurally.
func TestQuickFormatParse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := randomLines(r, r.Intn(30))
		b := randomLines(r, r.Intn(30))
		fd, changed := Diff("dir/file.c", "dir/file.c", a, b)
		if !changed {
			continue
		}
		parsed, err := ParsePatch(Format(fd))
		if err != nil {
			t.Fatalf("ParsePatch: %v", err)
		}
		if len(parsed) != 1 || !reflect.DeepEqual(parsed[0], fd) {
			t.Fatalf("round trip mismatch\norig=%+v\nparsed=%+v", fd, parsed)
		}
	}
}

// Property: splitLines/joinLines round-trip for newline-terminated content.
func TestQuickSplitJoin(t *testing.T) {
	f := func(parts []string) bool {
		for i, p := range parts {
			parts[i] = strings.ReplaceAll(p, "\n", " ")
		}
		s := joinLines(parts)
		return joinLines(splitLines(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMyersMinimalOnKnownCase(t *testing.T) {
	// Classic example: ABCABBA -> CBABAC has edit distance 5.
	a := []string{"A", "B", "C", "A", "B", "B", "A"}
	b := []string{"C", "B", "A", "B", "A", "C"}
	script := myers(a, b)
	edits := 0
	var gotA, gotB []string
	for _, e := range script {
		switch e.op {
		case ' ':
			gotA = append(gotA, e.text)
			gotB = append(gotB, e.text)
		case '-':
			edits++
			gotA = append(gotA, e.text)
		case '+':
			edits++
			gotB = append(gotB, e.text)
		}
	}
	if !reflect.DeepEqual(gotA, a) || !reflect.DeepEqual(gotB, b) {
		t.Fatalf("script does not reconstruct inputs: %v / %v", gotA, gotB)
	}
	if edits != 5 {
		t.Errorf("edit count = %d, want 5 (minimal)", edits)
	}
}
