// Package textdiff implements line-oriented diffing and the unified-diff
// patch format.
//
// JMake consumes Linux kernel commits as patches (paper §II-C): a commit is
// viewed through `git show` as a sequence of hunks with -/+/context lines.
// This package provides the equivalents of the Unix diff and patch tools
// plus the changed-line extraction rule of paper §III-B.
package textdiff

// editOp is one step of an edit script.
type editOp struct {
	op   byte // ' ' keep, '-' delete from a, '+' insert from b
	text string
}

// myers computes a minimal edit script between line slices a and b using
// Myers' O(ND) greedy algorithm.
func myers(a, b []string) []editOp {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	max := n + m
	// v[k+max] = furthest x on diagonal k.
	v := make([]int, 2*max+2)
	// trace saves v per d for backtracking.
	var trace [][]int
	var foundD int
outer:
	for d := 0; d <= max; d++ {
		cp := make([]int, len(v))
		copy(cp, v)
		trace = append(trace, cp)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = v[k+1+max] // move down (insert)
			} else {
				x = v[k-1+max] + 1 // move right (delete)
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = x
			if x >= n && y >= m {
				foundD = d
				break outer
			}
		}
	}

	// Backtrack.
	var rev []editOp
	x, y := n, m
	for d := foundD; d > 0; d-- {
		vv := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vv[k-1+max] < vv[k+1+max]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vv[prevK+max]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			rev = append(rev, editOp{' ', a[x-1]})
			x--
			y--
		}
		if x == prevX {
			rev = append(rev, editOp{'+', b[y-1]})
			y--
		} else {
			rev = append(rev, editOp{'-', a[x-1]})
			x--
		}
	}
	for x > 0 && y > 0 {
		rev = append(rev, editOp{' ', a[x-1]})
		x--
		y--
	}
	for y > 0 {
		rev = append(rev, editOp{'+', b[y-1]})
		y--
	}
	for x > 0 {
		rev = append(rev, editOp{'-', a[x-1]})
		x--
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
