package commitgen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"jmake/internal/fstree"
	"jmake/internal/kernelgen"
	"jmake/internal/vcs"
)

// Params configure history synthesis.
type Params struct {
	// Seed drives all randomness.
	Seed int64
	// Scale multiplies every commit count; 1.0 reproduces the paper's
	// volumes (12,946 window commits).
	Scale float64
	// HistoryBackground is the number of non-janitor pre-window commits at
	// scale 1.0.
	HistoryBackground int
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 1.0
	}
	if p.HistoryBackground <= 0 {
		p.HistoryBackground = 3500
	}
	return p
}

// Result is the synthesized history.
type Result struct {
	Repo *vcs.Repo
	// Janitors is the Table II roster (scaled volumes).
	Janitors []JanitorSpec
	// PlannedWindow counts the modifying window commits generated.
	PlannedWindow int
	// KindCounts records how many window patches of each kind were
	// realized (degraded plans count under their realized kind).
	KindCounts map[string]int
}

// builder carries generation state.
type builder struct {
	rng  *rand.Rand
	repo *vcs.Repo
	man  *kernelgen.Manifest
	ed   *editor
	when time.Time

	// pools
	portableCs    []string // portable driver .c files (non-arch-bound)
	stagingCs     []string
	archBoundOK   []int // driver indices, working arch
	archBoundBad  []int
	withHeader    []int // driver indices having a local header
	phantomHdr    []int
	siteIndex     map[kernelgen.SiteClass][]int
	absorbers     []string // staging + docs + arch .c files
	subsysOfFile  map[string]int
	bgMaintainers []backgroundAuthor
	bgDriveBys    []backgroundAuthor
	// fallbackSigs is a large pool of one-off contributor identities for
	// patches whose file has no specific maintainer (docs, subsystem
	// headers, setup files). Spreading these thinly keeps any single
	// background identity below the janitor-study thresholds.
	fallbackSigs []vcs.Signature
	// maintainerSig maps a driver file to its maintainer's signature.
	maintainerSig map[string]vcs.Signature

	// per-janitor file slots (multiset realization), window portion first
	janSlots [][]string

	kindCounts map[string]int
}

// Build synthesizes the repository over the generated tree.
func Build(tree *fstree.Tree, man *kernelgen.Manifest, p Params) (*Result, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	b := &builder{
		rng:        rng,
		man:        man,
		ed:         &editor{rng: rng},
		when:       time.Date(2011, 7, 22, 10, 0, 0, 0, time.UTC), // "v3.0" era
		siteIndex:  make(map[kernelgen.SiteClass][]int),
		kindCounts: make(map[string]int),
	}
	b.repo = vcs.NewRepo(tree, vcs.Signature{Name: "Linus Torvalds", Email: "torvalds@kernel.example.org", When: b.when})
	if err := b.repo.Tag("v3.0", b.repo.Head()); err != nil {
		return nil, err
	}
	b.buildPools(tree)
	b.buildJanitorSlots(p.Scale)
	b.buildBackgroundAuthors()
	nFallback := int(700 * p.Scale)
	if nFallback < 150 {
		nFallback = 150 // even at tiny scales, each guest stays below thresholds
	}
	for i := 0; i < nFallback; i++ {
		b.fallbackSigs = append(b.fallbackSigs, vcs.Signature{
			Name:  fmt.Sprintf("Guest Contributor %04d", i),
			Email: fmt.Sprintf("guest%04d@kernel.example.org", i),
		})
	}

	if err := b.history(p); err != nil {
		return nil, err
	}
	if err := b.repo.Tag("v4.3", b.repo.Head()); err != nil {
		return nil, err
	}
	planned, err := b.window(p)
	if err != nil {
		return nil, err
	}
	if err := b.repo.Tag("v4.4", b.repo.Head()); err != nil {
		return nil, err
	}
	return &Result{
		Repo:          b.repo,
		Janitors:      JanitorSpecs(),
		PlannedWindow: planned,
		KindCounts:    b.kindCounts,
	}, nil
}

func (b *builder) buildPools(tree *fstree.Tree) {
	b.subsysOfFile = make(map[string]int)
	for di, d := range b.man.Drivers {
		b.subsysOfFile[d.CFile] = d.Subsystem
		if d.Header != "" {
			b.subsysOfFile[d.Header] = d.Subsystem
			b.withHeader = append(b.withHeader, di)
		}
		if d.Sites[kernelgen.SiteHeaderPhantom] {
			b.phantomHdr = append(b.phantomHdr, di)
		}
		isStaging := b.man.Subsystems[d.Subsystem].Dir == "drivers/staging"
		switch {
		case d.ArchBound == "":
			if isStaging {
				b.stagingCs = append(b.stagingCs, d.CFile)
			} else {
				b.portableCs = append(b.portableCs, d.CFile)
			}
		default:
			broken := false
			for _, ba := range b.man.BrokenArches {
				if d.ArchBound == ba {
					broken = true
				}
			}
			if broken {
				b.archBoundBad = append(b.archBoundBad, di)
			} else {
				b.archBoundOK = append(b.archBoundOK, di)
			}
		}
		for c := range d.Sites {
			b.siteIndex[c] = append(b.siteIndex[c], di)
		}
	}
	b.absorbers = append(b.absorbers, b.stagingCs...)
	b.absorbers = append(b.absorbers, b.man.DocFiles...)
	for _, p := range tree.Under("arch") {
		if strings.HasSuffix(p, ".c") {
			b.absorbers = append(b.absorbers, p)
		}
	}
}

func (b *builder) buildJanitorSlots(scale float64) {
	b.janSlots = make([][]string, len(janitorTable))
	entried := make([]string, 0, len(b.portableCs))
	entried = append(entried, b.portableCs...)
	for ji, j := range janitorTable {
		total := scaleN(j.TotalPatches, scale, 4)
		counts := fileCountMultiset(b.rng, total, j.CVTarget)

		// Each entried driver file matches its own MAINTAINERS entry plus a
		// parent subsystem entry, so the driver count sits below the
		// subsystem hint; the floor keeps small-spread janitors (Table II's
		// 25-30 subsystem rows) above the >= 20 threshold.
		eTarget := j.SubsystemsHint - 25
		if floor := j.SubsystemsHint * 55 / 100; eTarget < floor {
			eTarget = floor
		}
		if j.StagingFocus {
			eTarget = j.SubsystemsHint - 6
		}
		eTarget = int(float64(eTarget)*scale + 0.5)
		if eTarget < 0 {
			eTarget = 0
		}
		if eTarget > len(entried) {
			eTarget = len(entried)
		}
		if eTarget > len(counts) {
			eTarget = len(counts)
		}

		files := make([]string, 0, len(counts))
		perm := b.rng.Perm(len(entried))
		for i := 0; i < eTarget; i++ {
			files = append(files, entried[perm[i]])
		}
		aperm := b.rng.Perm(len(b.absorbers))
		for i := 0; len(files) < len(counts) && i < len(aperm); i++ {
			f := b.absorbers[aperm[i]]
			if j.StagingFocus && !strings.HasPrefix(f, "drivers/staging/") &&
				i < len(aperm)/2 {
				continue // prefer staging for the staging-focused janitor
			}
			files = append(files, f)
		}
		// If the absorber pool ran dry, fold the leftover counts into the
		// existing files (cv drifts slightly; recorded in EXPERIMENTS.md).
		var slots []string
		for i, f := range files {
			for c := 0; c < counts[i]; c++ {
				slots = append(slots, f)
			}
		}
		for i := len(files); i < len(counts); i++ {
			slots = append(slots, files[b.rng.Intn(len(files))])
		}
		b.rng.Shuffle(len(slots), func(x, y int) { slots[x], slots[y] = slots[y], slots[x] })
		b.janSlots[ji] = slots
	}
}

func (b *builder) buildBackgroundAuthors() {
	b.bgMaintainers, b.bgDriveBys = makeBackgroundAuthors(b.rng, b.man)
	b.maintainerSig = make(map[string]vcs.Signature)
	for _, d := range b.man.Drivers {
		name, email := parseIdentity(d.Maintainer)
		sig := vcs.Signature{Name: name, Email: email}
		b.maintainerSig[d.CFile] = sig
		if d.ExtraCFile != "" {
			b.maintainerSig[d.ExtraCFile] = sig
		}
		if d.Header != "" {
			b.maintainerSig[d.Header] = sig
		}
	}
}

// tick advances virtual commit time.
func (b *builder) tick() time.Time {
	b.when = b.when.Add(time.Duration(5+b.rng.Intn(55)) * time.Minute)
	return b.when
}

func (b *builder) janitorSig(ji int) vcs.Signature {
	j := janitorTable[ji]
	return vcs.Signature{Name: j.Name, Email: j.Email, When: b.tick()}
}

// bgSigFor attributes a dictated-file patch: usually the file's own
// maintainer, otherwise a one-off guest contributor. Maintainers never
// author random files and drive-bys never leave their driver, so neither
// background population accumulates janitor-like breadth.
func (b *builder) bgSigFor(file string) vcs.Signature {
	if sig, ok := b.maintainerSig[file]; ok && b.rng.Intn(10) < 8 {
		sig.When = b.tick()
		return sig
	}
	sig := b.fallbackSigs[b.rng.Intn(len(b.fallbackSigs))]
	sig.When = b.tick()
	return sig
}

// subject builds a kernel-style commit subject.
func (b *builder) subject(file, action string) string {
	dir := file
	if i := strings.LastIndexByte(file, '/'); i > 0 {
		dir = file[:i]
	}
	base := file[strings.LastIndexByte(file, '/')+1:]
	base = strings.TrimSuffix(strings.TrimSuffix(base, ".c"), ".h")
	return fmt.Sprintf("%s: %s: %s", dir, base, action)
}

var plainActions = []string{
	"fix timeout handling", "clean up register access", "simplify error path",
	"remove unneeded cast", "use standard constants", "adjust default threshold",
	"update register map", "fix off-by-one in setup", "tidy probe function",
}

// editFallback guarantees a change when a targeted edit finds no site.
func editFallback(content string) string {
	return content + "/* janitorial pass */\n"
}

// commitEdit applies one single-file edit and commits it.
func (b *builder) commitEdit(sig vcs.Signature, file string, class editClass, site kernelgen.SiteClass, regions int) error {
	content, err := b.repo.ReadTip(file)
	if err != nil {
		return fmt.Errorf("commitgen: %s: %w", file, err)
	}
	res, ok := b.ed.apply(content, class, site, regions)
	newContent := res.content
	if !ok {
		newContent = editFallback(content)
	}
	b.repo.Commit(sig, b.subject(file, pick(b.rng, plainActions)),
		map[string]*string{file: &newContent}, false)
	return nil
}

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// history generates the v3.0→v4.3 commits: janitor multiset slots plus
// background contributor activity.
func (b *builder) history(p Params) error {
	type hc struct {
		janitor int // -1 background
		file    string
		author  *vcs.Signature
	}
	var cs []hc
	for ji := range janitorTable {
		slots := b.janSlots[ji]
		win := scaleN(janitorTable[ji].WindowPatches, p.Scale, 2)
		if win > len(slots) {
			win = len(slots)
		}
		// The first `win` slots are reserved for the window; the rest are
		// history.
		for _, f := range slots[win:] {
			cs = append(cs, hc{janitor: ji, file: f})
		}
		b.janSlots[ji] = slots[:win]
	}
	// Background history: authors work from their personal pools —
	// maintainers on their drivers (repeatedly: depth-first), drive-bys on
	// their one driver.
	nbg := scaleN(p.HistoryBackground, p.Scale, 10)
	for i := 0; i < nbg; i++ {
		var a backgroundAuthor
		if b.rng.Intn(10) < 7 {
			a = b.bgMaintainers[b.rng.Intn(len(b.bgMaintainers))]
		} else {
			a = b.bgDriveBys[b.rng.Intn(len(b.bgDriveBys))]
		}
		cs = append(cs, hc{janitor: -1, file: pick(b.rng, a.pool), author: &a.sig})
	}
	b.rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })

	for _, c := range cs {
		var sig vcs.Signature
		switch {
		case c.janitor >= 0:
			sig = b.janitorSig(c.janitor)
		case c.author != nil:
			sig = *c.author
			sig.When = b.tick()
		default:
			sig = b.bgSigFor(c.file)
		}
		if err := b.commitEdit(sig, c.file, editPlain, 0, 1); err != nil {
			return err
		}
	}
	return nil
}
