package commitgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"jmake/internal/kernelgen"
	"jmake/internal/vcs"
)

// JanitorSpec pins one row of the paper's Table II: the ten developers
// identified as janitors, their activity volumes over v3.0→v4.4, their
// v4.3→v4.4 window contribution, and the coefficient-of-variation target
// their per-file patch counts must realize.
type JanitorSpec struct {
	Name  string
	Email string
	// TotalPatches covers v3.0→v4.4 (Table II "patches").
	TotalPatches int
	// WindowPatches covers v4.3→v4.4 (sums to 591 across the ten).
	WindowPatches int
	// SubsystemsHint and ListsHint size the spread of touched entries.
	SubsystemsHint int
	ListsHint      int
	// CVTarget is the Table II file cv.
	CVTarget float64
	// StagingFocus concentrates the janitor's work in drivers/staging
	// (which has umbrella-only MAINTAINERS coverage), producing the
	// low-subsystem profile of the intern row.
	StagingFocus bool
}

// janitorTable reproduces Table II. Window patch counts are the paper's
// 591 total split roughly proportionally (the paper only reports the sum
// and the ≥20 threshold).
var janitorTable = []JanitorSpec{
	{Name: "Javier Martinez Canillas", Email: "javier@osg.example.org", TotalPatches: 118, WindowPatches: 20, SubsystemsHint: 61, ListsHint: 30, CVTarget: 0.25},
	{Name: "Luis de Bethencourt", Email: "luisbg@osg.example.org", TotalPatches: 104, WindowPatches: 20, SubsystemsHint: 56, ListsHint: 31, CVTarget: 0.41},
	{Name: "Dan Carpenter", Email: "dan.carpenter@oracle.example.org", TotalPatches: 1554, WindowPatches: 150, SubsystemsHint: 400, ListsHint: 146, CVTarget: 0.43},
	{Name: "Julia Lawall", Email: "julia.lawall@lip6.example.org", TotalPatches: 653, WindowPatches: 65, SubsystemsHint: 255, ListsHint: 93, CVTarget: 0.67},
	{Name: "Shraddha Barke", Email: "shraddha.6596@outreach.example.org", TotalPatches: 160, WindowPatches: 20, SubsystemsHint: 21, ListsHint: 14, CVTarget: 0.72, StagingFocus: true},
	{Name: "Joe Perches", Email: "joe@perches.example.org", TotalPatches: 1078, WindowPatches: 100, SubsystemsHint: 530, ListsHint: 158, CVTarget: 0.81},
	{Name: "Axel Lin", Email: "axel.lin@ingics.example.org", TotalPatches: 1044, WindowPatches: 95, SubsystemsHint: 142, ListsHint: 49, CVTarget: 0.92},
	{Name: "Daniel Borkmann", Email: "daniel@iogearbox.example.org", TotalPatches: 121, WindowPatches: 20, SubsystemsHint: 25, ListsHint: 15, CVTarget: 1.29},
	{Name: "Fabio Estevam", Email: "fabio.estevam@nxp.example.org", TotalPatches: 790, WindowPatches: 77, SubsystemsHint: 95, ListsHint: 42, CVTarget: 1.29},
	{Name: "Jarkko Nikula", Email: "jarkko.nikula@intel.example.org", TotalPatches: 173, WindowPatches: 24, SubsystemsHint: 30, ListsHint: 14, CVTarget: 1.35},
}

// JanitorSpecs returns a copy of the Table II roster.
func JanitorSpecs() []JanitorSpec {
	out := make([]JanitorSpec, len(janitorTable))
	copy(out, janitorTable)
	return out
}

// solveRepeats finds (k, p) such that a per-file count distribution of
// value k with probability p (else 1) has coefficient of variation ~cv:
//
//	cv(k, p) = (k-1)·sqrt(p(1-p)) / (1 + p(k-1))
//
// Returns the repeat count k and repeat fraction p.
func solveRepeats(cv float64) (int, float64) {
	cvOf := func(k int, p float64) float64 {
		return float64(k-1) * math.Sqrt(p*(1-p)) / (1 + p*float64(k-1))
	}
	// Prefer the smallest k that can reach the target, and within that k
	// the largest p within tolerance: large p means many repeated files,
	// which realizes smoothly even for modest patch counts (cv(p) is
	// unimodal in p, so we grid-search rather than bisect).
	const tol = 0.02
	bestK, bestP, bestErr := 2, 0.25, math.Inf(1)
	for k := 2; k <= 40; k++ {
		foundP, found := 0.0, false
		for i := 0; i <= 400; i++ {
			p := 0.002 + (0.5-0.002)*float64(i)/400
			e := math.Abs(cvOf(k, p) - cv)
			if e < tol && p > foundP {
				foundP, found = p, true
			}
			if e < bestErr {
				bestErr, bestK, bestP = e, k, p
			}
		}
		if found {
			return k, foundP
		}
	}
	return bestK, bestP
}

// fileCountMultiset realizes per-file patch counts for a janitor: how many
// distinct files and how often each is revisited, targeting the cv.
func fileCountMultiset(rng *rand.Rand, totalPatches int, cv float64) []int {
	k, p := solveRepeats(cv)
	mean := 1 + p*float64(k-1)
	files := int(float64(totalPatches)/mean + 0.5)
	if files < 1 {
		files = 1
	}
	counts := make([]int, files)
	// Deterministic placement: round(p*files) entries get the repeat value
	// (Bernoulli sampling is far too noisy at small p and file counts).
	nk := int(p*float64(files) + 0.5)
	if nk < 1 && cv > 0.1 {
		nk = 1
	}
	if nk > files {
		nk = files
	}
	assigned := 0
	for i := range counts {
		if i < nk {
			counts[i] = k
		} else {
			counts[i] = 1
		}
		assigned += counts[i]
	}
	rng.Shuffle(files, func(i, j int) { counts[i], counts[j] = counts[j], counts[i] })
	// Adjust the tail so the total matches exactly.
	for assigned < totalPatches {
		counts[rng.Intn(files)]++
		assigned++
	}
	for assigned > totalPatches {
		i := rng.Intn(files)
		if counts[i] > 1 {
			counts[i]--
			assigned--
		}
	}
	return counts
}

// backgroundAuthor is a non-janitor contributor with a personal file pool.
// Two populations exist, each failing a different Table I filter:
//
//   - maintainers (identities from the generated MAINTAINERS file) work on
//     the drivers they maintain — excluded by the <5% maintainer-patches
//     rule;
//   - drive-by contributors concentrate on a single driver — excluded by
//     the >= 20 subsystems rule (and usually by volume).
//
// Only the planted janitors combine breadth with zero maintainership.
type backgroundAuthor struct {
	sig  vcs.Signature
	pool []string
}

// parseIdentity splits "Name <email>".
func parseIdentity(s string) (name, email string) {
	if i := strings.IndexByte(s, '<'); i >= 0 {
		if j := strings.IndexByte(s[i:], '>'); j > 0 {
			return strings.TrimSpace(s[:i]), s[i+1 : i+j]
		}
	}
	return s, s
}

// makeBackgroundAuthors derives the two contributor populations from the
// manifest.
func makeBackgroundAuthors(rng *rand.Rand, man *kernelgen.Manifest) (maintainersPop, driveBys []backgroundAuthor) {
	byEmail := make(map[string]*backgroundAuthor)
	var order []string
	for _, d := range man.Drivers {
		name, email := parseIdentity(d.Maintainer)
		a, ok := byEmail[email]
		if !ok {
			a = &backgroundAuthor{sig: vcs.Signature{Name: name, Email: email}}
			byEmail[email] = a
			order = append(order, email)
		}
		a.pool = append(a.pool, d.CFile)
		if d.Header != "" {
			a.pool = append(a.pool, d.Header)
		}
	}
	for _, e := range order {
		maintainersPop = append(maintainersPop, *byEmail[e])
	}
	// Drive-by contributors: one driver each.
	nDriveBy := len(man.Drivers) / 2
	for i := 0; i < nDriveBy; i++ {
		d := man.Drivers[rng.Intn(len(man.Drivers))]
		pool := []string{d.CFile}
		if d.Header != "" {
			pool = append(pool, d.Header)
		}
		driveBys = append(driveBys, backgroundAuthor{
			sig: vcs.Signature{
				Name:  fmt.Sprintf("Contributor %03d", i),
				Email: fmt.Sprintf("contrib%03d@kernel.example.org", i),
			},
			pool: pool,
		})
	}
	return maintainersPop, driveBys
}
