package commitgen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/kernelgen"
	"jmake/internal/stats"
	"jmake/internal/vcs"
)

// buildSmall generates a small tree + history for tests.
func buildSmall(t *testing.T) (*fstree.Tree, *kernelgen.Manifest, *Result) {
	t.Helper()
	tree, man, err := kernelgen.Generate(kernelgen.Params{Seed: 11, Scale: 0.2})
	if err != nil {
		t.Fatalf("kernelgen: %v", err)
	}
	res, err := Build(tree, man, Params{Seed: 12, Scale: 0.02})
	if err != nil {
		t.Fatalf("commitgen: %v", err)
	}
	return tree, man, res
}

func TestSolveRepeats(t *testing.T) {
	for _, cv := range []float64{0.25, 0.43, 0.72, 0.92, 1.29, 1.35} {
		k, p := solveRepeats(cv)
		got := float64(k-1) * math.Sqrt(p*(1-p)) / (1 + p*float64(k-1))
		if math.Abs(got-cv) > 0.05 {
			t.Errorf("solveRepeats(%v) = k=%d p=%v -> cv %v", cv, k, p, got)
		}
	}
}

func TestFileCountMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tt := range []struct {
		patches int
		cv      float64
	}{
		{1554, 0.43}, {160, 0.72}, {173, 1.35},
	} {
		counts := fileCountMultiset(rng, tt.patches, tt.cv)
		total := 0
		fs := make([]float64, len(counts))
		for i, c := range counts {
			total += c
			fs[i] = float64(c)
		}
		if total != tt.patches {
			t.Errorf("cv %v: total = %d, want %d", tt.cv, total, tt.patches)
		}
		got := stats.CoefficientOfVariation(fs)
		if math.Abs(got-tt.cv) > 0.25 {
			t.Errorf("cv realized %v, want ~%v", got, tt.cv)
		}
	}
}

func TestBuildWindowCounts(t *testing.T) {
	_, _, res := buildSmall(t)
	ids, err := res.Repo.Between("v4.3", "v4.4", vcs.LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		t.Fatalf("Between: %v", err)
	}
	if len(ids) != res.PlannedWindow {
		t.Errorf("window commits = %d, want %d (merges/additions must be filtered)",
			len(ids), res.PlannedWindow)
	}
	// Unfiltered log must contain more (merges + additions).
	all, _ := res.Repo.Between("v4.3", "v4.4", vcs.LogOptions{})
	if len(all) <= len(ids) {
		t.Errorf("unfiltered (%d) should exceed filtered (%d)", len(all), len(ids))
	}
}

func TestBuildDeterministic(t *testing.T) {
	tree1, man1, _ := func() (*fstree.Tree, *kernelgen.Manifest, error) {
		tr, m, err := kernelgen.Generate(kernelgen.Params{Seed: 11, Scale: 0.1})
		return tr, m, err
	}()
	r1, err := Build(tree1, man1, Params{Seed: 3, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tree2, man2, _ := func() (*fstree.Tree, *kernelgen.Manifest, error) {
		tr, m, err := kernelgen.Generate(kernelgen.Params{Seed: 11, Scale: 0.1})
		return tr, m, err
	}()
	r2, err := Build(tree2, man2, Params{Seed: 3, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Repo.Head() != r2.Repo.Head() {
		t.Error("same seeds must produce identical histories")
	}
}

func TestJanitorCommitsPresent(t *testing.T) {
	_, _, res := buildSmall(t)
	ids, _ := res.Repo.Between("v3.0", "v4.4", vcs.LogOptions{NoMerges: true, OnlyModify: true})
	perAuthor := map[string]int{}
	for _, id := range ids {
		c, err := res.Repo.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		perAuthor[c.Author.Email]++
	}
	for _, j := range res.Janitors {
		if perAuthor[j.Email] < 4 {
			t.Errorf("janitor %s has %d commits, want >= 4", j.Name, perAuthor[j.Email])
		}
	}
}

func TestWindowDiffsAreWellFormed(t *testing.T) {
	_, _, res := buildSmall(t)
	ids, _ := res.Repo.Between("v4.3", "v4.4", vcs.LogOptions{NoMerges: true, OnlyModify: true})
	checked := 0
	for i, id := range ids {
		if i%7 != 0 {
			continue
		}
		fds, err := res.Repo.FileDiffs(id)
		if err != nil {
			t.Fatalf("FileDiffs(%s): %v", id, err)
		}
		if len(fds) == 0 {
			t.Errorf("commit %s has no diffs", id)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no commits checked")
	}
}

func TestKindCoverage(t *testing.T) {
	_, _, res := buildSmall(t)
	for _, want := range []string{"plain", "ignored", "setup", "honly", "bothcovered", "archbound", "manymacro"} {
		if res.KindCounts[want] == 0 {
			t.Errorf("no %q patches realized: %v", want, res.KindCounts)
		}
	}
	t.Logf("kind counts: %v", res.KindCounts)
}

func TestEditEngineClasses(t *testing.T) {
	_, man, res := buildSmall(t)
	// An escape edit must land inside the right guard: take a driver with
	// a MODULE site and verify the diff context.
	var target kernelgen.Driver
	found := false
	for _, d := range man.Drivers {
		if d.Sites[kernelgen.SiteIfdefModule] && d.ArchBound == "" {
			target, found = d, true
			break
		}
	}
	if !found {
		t.Skip("no MODULE-site drivers at this scale")
	}
	content, err := res.Repo.ReadTip(target.CFile)
	if err != nil {
		t.Fatal(err)
	}
	ed := &editor{rng: rand.New(rand.NewSource(9))}
	r, ok := ed.apply(content, editEscape, kernelgen.SiteIfdefModule, 1)
	if !ok {
		t.Fatalf("no MODULE site found in %s", target.CFile)
	}
	if r.content == content {
		t.Error("edit did not change content")
	}
	// The changed line must be inside the #ifdef MODULE block.
	oldLines := strings.Split(content, "\n")
	newLines := strings.Split(r.content, "\n")
	if len(oldLines) != len(newLines) {
		t.Fatal("escape edit must not add/remove lines")
	}
	for i := range oldLines {
		if oldLines[i] != newLines[i] {
			inModule := false
			for j := i; j >= 0; j-- {
				if strings.HasPrefix(oldLines[j], "#ifdef MODULE") {
					inModule = true
					break
				}
				if strings.HasPrefix(oldLines[j], "#endif") || strings.HasPrefix(oldLines[j], "#ifdef CONFIG") {
					break
				}
			}
			if !inModule {
				t.Errorf("changed line %d not under #ifdef MODULE: %q", i+1, newLines[i])
			}
		}
	}
}
