package commitgen

import (
	"fmt"
	"strings"

	"jmake/internal/kernelgen"
	"jmake/internal/vcs"
)

// window generates the v4.3→v4.4 patch stream from the plan list, plus the
// merge and file-adding commits that the evaluation's git-log filters
// exclude. It returns the number of modifying (counted) commits.
func (b *builder) window(p Params) (int, error) {
	plans := buildWindowPlans(b.rng, p.Scale)
	counted := 0
	newFileSeq := 0
	for i, pl := range plans {
		if err := b.executePlan(pl); err != nil {
			return 0, err
		}
		counted++
		// Sprinkle non-counted commits: merges and file additions, which
		// the -no-merges / --diff-filter=M options drop (paper §V-A).
		if i%23 == 11 {
			sig := b.bgSigFor("")
			b.repo.Commit(sig, "Merge branch 'fixes'", nil, true)
		}
		if i%61 == 37 {
			sig := b.bgSigFor("")
			newFileSeq++
			path := fmt.Sprintf("Documentation/new/notes%04d.txt", newFileSeq)
			content := fmt.Sprintf("New notes %d.\n", newFileSeq)
			b.repo.Commit(sig, "docs: add "+path, map[string]*string{path: &content}, false)
		}
	}
	return counted, nil
}

// sigFor picks the author for a plan.
func (b *builder) sigFor(pl plan, file string) vcs.Signature {
	if pl.janitor >= 0 {
		return b.janitorSig(pl.janitor)
	}
	return b.bgSigFor(file)
}

// janitorFile pops a reserved window slot for file selection. Window
// patches are always source edits (Table III: janitor patches are 100%
// .c/.h), so documentation slots from the janitor's absorber pool are
// spent but replaced by a source file.
func (b *builder) janitorFile(ji int) string {
	slots := b.janSlots[ji]
	for i, f := range slots {
		if strings.HasSuffix(f, ".c") {
			b.janSlots[ji] = append(slots[:i], slots[i+1:]...)
			return f
		}
	}
	if len(slots) > 0 {
		b.janSlots[ji] = slots[1:]
	}
	return pick(b.rng, b.portableCs)
}

// driverWith returns a random driver index advertising the site class, or
// -1.
func (b *builder) driverWith(site kernelgen.SiteClass) int {
	ds := b.siteIndex[site]
	if len(ds) == 0 {
		return -1
	}
	return ds[b.rng.Intn(len(ds))]
}

func (b *builder) record(kind string) { b.kindCounts[kind]++ }

// executePlan realizes one window patch. Plans that cannot find a suitable
// site degrade to plain edits (recorded under their realized kind).
func (b *builder) executePlan(pl plan) error {
	switch pl.kind {
	case planIgnored:
		b.record("ignored")
		f := pick(b.rng, b.man.DocFiles)
		return b.commitEdit(b.sigFor(pl, f), f, editPlain, 0, 1)

	case planSetup:
		b.record("setup")
		f := pick(b.rng, b.man.SetupFiles)
		content, err := b.repo.ReadTip(f)
		if err != nil {
			return err
		}
		nc, ok := addUnusedHeaderMacro(b.rng, content)
		if !ok {
			nc = editFallback(content)
		}
		b.repo.Commit(b.sigFor(pl, f), b.subject(f, "adjust compiler plumbing"),
			map[string]*string{f: &nc}, false)
		return nil

	case planPromInit:
		b.record("prominit")
		return b.commitEdit(b.sigFor(pl, b.man.WholeBuildFile), b.man.WholeBuildFile, editPlain, 0, 1)

	case planManyMacro:
		b.record("manymacro")
		return b.commitEdit(b.sigFor(pl, b.man.ManyMacroFile), b.man.ManyMacroFile, editManyMacros, 0, 0)

	case planMultiRegion:
		b.record("multiregion")
		f := b.pickCFile(pl)
		return b.commitEdit(b.sigFor(pl, f), f, editPlain, 0, pl.regions)

	case planMacroEdit:
		if di := b.driverWith(kernelgen.SiteMacroBody); di >= 0 {
			b.record("macro")
			f := b.man.Drivers[di].CFile
			return b.commitEdit(b.sigFor(pl, f), f, editMacroBody, 0, 1)
		}
		return b.degrade(pl)

	case planCommentOnly:
		b.record("comment")
		f := b.pickCFile(pl)
		return b.commitEdit(b.sigFor(pl, f), f, editComment, 0, 1)

	case planArchBound:
		if len(b.archBoundOK) == 0 {
			return b.degrade(pl)
		}
		b.record("archbound")
		di := b.archBoundOK[b.rng.Intn(len(b.archBoundOK))]
		f := b.man.Drivers[di].CFile
		return b.commitEdit(b.sigFor(pl, f), f, editPlain, 0, 1)

	case planBrokenArch:
		if len(b.archBoundBad) == 0 {
			return b.degrade(pl)
		}
		b.record("brokenarch")
		di := b.archBoundBad[b.rng.Intn(len(b.archBoundBad))]
		f := b.man.Drivers[di].CFile
		return b.commitEdit(b.sigFor(pl, f), f, editPlain, 0, 1)

	case planEscape:
		di := b.driverWith(pl.escape)
		if di < 0 {
			return b.degrade(pl)
		}
		b.record(fmt.Sprintf("escape:%d", pl.escape))
		f := b.man.Drivers[di].CFile
		class := editEscape
		if pl.escape == kernelgen.SiteBothBranches {
			class = editBothBranches
		}
		return b.commitEdit(b.sigFor(pl, f), f, class, pl.escape, 1)

	case planQuirk:
		di := b.driverWith(kernelgen.SiteArchQuirk)
		if di < 0 {
			return b.degrade(pl)
		}
		b.record("quirk")
		f := b.man.Drivers[di].CFile
		return b.commitEdit(b.sigFor(pl, f), f, editEscape, kernelgen.SiteArchQuirk, 1)

	case planDefconfigOnly:
		di := b.driverWith(kernelgen.SiteDefconfigOnly)
		if di < 0 {
			return b.degrade(pl)
		}
		b.record("defconfig")
		f := b.man.Drivers[di].CFile
		return b.commitEdit(b.sigFor(pl, f), f, editEscape, kernelgen.SiteDefconfigOnly, 1)

	case planHOnly:
		b.record("honly")
		// Headers need more than one mutation more often than .c files
		// (paper: 75% one vs 82%): a third of header-only edits touch 2-3
		// macro definitions.
		regions := 1
		if b.rng.Intn(3) == 0 {
			regions = 2 + b.rng.Intn(2)
		}
		// 20%: a subsystem-wide header (many candidate .c files, §III-E's
		// threshold path); else a driver's local header.
		if b.rng.Intn(5) == 0 {
			sub := b.man.Subsystems[b.rng.Intn(len(b.man.Subsystems))]
			return b.commitEdit(b.sigFor(pl, sub.Header), sub.Header, editPlain, 0, regions)
		}
		if len(b.withHeader) == 0 {
			return b.degrade(pl)
		}
		di := b.withHeader[b.rng.Intn(len(b.withHeader))]
		h := b.man.Drivers[di].Header
		return b.commitEdit(b.sigFor(pl, h), h, editPlain, 0, regions)

	case planHOnlyNever:
		if len(b.phantomHdr) > 0 && b.rng.Intn(2) == 0 {
			b.record("honlynever")
			di := b.phantomHdr[b.rng.Intn(len(b.phantomHdr))]
			h := b.man.Drivers[di].Header
			return b.commitEdit(b.sigFor(pl, h), h, editEscape, kernelgen.SiteHeaderPhantom, 1)
		}
		// Add a macro nothing uses: equally unwitnessable.
		if len(b.withHeader) == 0 {
			return b.degrade(pl)
		}
		b.record("honlynever")
		di := b.withHeader[b.rng.Intn(len(b.withHeader))]
		h := b.man.Drivers[di].Header
		content, err := b.repo.ReadTip(h)
		if err != nil {
			return err
		}
		nc, ok := addUnusedHeaderMacro(b.rng, content)
		if !ok {
			nc = editFallback(content)
		}
		b.repo.Commit(b.sigFor(pl, h), b.subject(h, "reserve future mask bits"),
			map[string]*string{h: &nc}, false)
		return nil

	case planBothCovered, planBothDisjoint, planBothNever:
		return b.executeBoth(pl)

	default: // planPlainC
		b.record("plain")
		f := b.pickCFile(pl)
		return b.commitEdit(b.sigFor(pl, f), f, editPlain, 0, 1)
	}
}

// pickCFile selects the .c file for a plain-ish plan.
func (b *builder) pickCFile(pl plan) string {
	if pl.janitor >= 0 {
		return b.janitorFile(pl.janitor)
	}
	if b.rng.Intn(10) < 2 && len(b.stagingCs) > 0 {
		return pick(b.rng, b.stagingCs)
	}
	return pick(b.rng, b.portableCs)
}

// executeBoth realizes the .c-and-.h patch shapes.
func (b *builder) executeBoth(pl plan) error {
	if len(b.withHeader) == 0 {
		return b.degrade(pl)
	}
	di := b.withHeader[b.rng.Intn(len(b.withHeader))]
	d := b.man.Drivers[di]
	files := make(map[string]*string, 2)

	cPath := d.CFile
	hPath := d.Header
	hClass := editPlain
	hSite := kernelgen.SiteClass(0)

	switch pl.kind {
	case planBothDisjoint:
		// The .c comes from a different driver, so the header needs the
		// §III-E hunt.
		other := b.pickCFile(plan{janitor: pl.janitor})
		if other == cPath {
			other = pick(b.rng, b.portableCs)
		}
		cPath = other
		b.record("bothdisjoint")
	case planBothNever:
		pdi := -1
		for _, cand := range b.phantomHdr {
			if b.man.Drivers[cand].Header != "" {
				pdi = cand
				break
			}
		}
		if pdi < 0 {
			b.record("bothcovered")
		} else {
			d = b.man.Drivers[pdi]
			cPath, hPath = d.CFile, d.Header
			hClass, hSite = editEscape, kernelgen.SiteHeaderPhantom
			b.record("bothnever")
		}
	default:
		b.record("bothcovered")
	}

	cContent, err := b.repo.ReadTip(cPath)
	if err != nil {
		return err
	}
	cRes, ok := b.ed.apply(cContent, editPlain, 0, 1)
	nc := cRes.content
	if !ok {
		nc = editFallback(cContent)
	}
	files[cPath] = &nc

	hContent, err := b.repo.ReadTip(hPath)
	if err != nil {
		return err
	}
	hRes, ok := b.ed.apply(hContent, hClass, hSite, 1)
	nh := hRes.content
	if !ok {
		nh = editFallback(hContent)
	}
	files[hPath] = &nh

	b.repo.Commit(b.sigFor(pl, cPath), b.subject(cPath, pick(b.rng, plainActions)), files, false)
	return nil
}

// degrade falls back to a plain .c edit when a plan's site class is
// unavailable (possible at small scales).
func (b *builder) degrade(pl plan) error {
	b.record("degraded")
	f := b.pickCFile(pl)
	return b.commitEdit(b.sigFor(pl, f), f, editPlain, 0, 1)
}
