// Package commitgen synthesizes the commit history the evaluation runs
// over: a long pre-window history (for the janitor study of paper §IV) and
// the v4.3→v4.4 window itself, with edit classes calibrated against the
// paper's measured distributions (Tables III-IV and §V-B).
package commitgen

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"jmake/internal/csrc"
	"jmake/internal/kernelgen"
)

// editClass describes where an edit must land.
type editClass int

const (
	// editPlain: unconditional code or defines — always compiled.
	editPlain editClass = iota + 1
	// editMacroBody: a continuation line of a multi-line macro.
	editMacroBody
	// editComment: a comment-only line.
	editComment
	// editEscape: a line inside the conditional region selected by guard.
	editEscape
	// editBothBranches: lines in both branches of a DEBUG ifdef/else pair.
	editBothBranches
	// editManyMacros: bulk-edit many #define lines (the 200+ mutation
	// outlier).
	editManyMacros
)

// guardSuffix maps site classes to the Kconfig-variable suffix of the
// guard commitgen must find.
func guardFor(site kernelgen.SiteClass) (kind csrc.CondKind, argMatch func(string) bool) {
	switch site {
	case kernelgen.SiteIfdefNotAllyes:
		return csrc.CondIfdef, func(a string) bool { return strings.HasSuffix(a, "_LEGACY") }
	case kernelgen.SiteDefconfigOnly:
		return csrc.CondIfdef, func(a string) bool { return strings.HasSuffix(a, "_EXT") }
	case kernelgen.SiteIfdefNever:
		return csrc.CondIfdef, func(a string) bool { return strings.HasSuffix(a, "_PHANTOM_GLUE") }
	case kernelgen.SiteHeaderPhantom:
		return csrc.CondIfdef, func(a string) bool { return strings.HasSuffix(a, "_PHANTOM_HDR") }
	case kernelgen.SiteIfdefModule:
		return csrc.CondIfdef, func(a string) bool { return a == "MODULE" }
	case kernelgen.SiteIfndef:
		return csrc.CondIfndef, func(a string) bool { return true }
	case kernelgen.SiteIfZero:
		return csrc.CondIf, func(a string) bool { return strings.TrimSpace(a) == "0" }
	case kernelgen.SiteArchQuirk:
		return csrc.CondIfdef, func(a string) bool { return strings.HasSuffix(a, "_QUIRK") }
	default:
		return 0, nil
	}
}

var (
	hexNumRe = regexp.MustCompile(`0x[0-9a-fA-F]+`)
	decNumRe = regexp.MustCompile(`\b[0-9]+\b`)
	// editableStmtRe matches simple statements and defines safe to
	// renumber.
	editableStmtRe = regexp.MustCompile(`(=\s*-?[0-9]|0x[0-9a-fA-F]+|\breturn\b.*[0-9]|#define\s+[A-Za-z0-9_]+\s+-?[0-9])`)
	defineNumRe    = regexp.MustCompile(`^\s*#define\s+[A-Za-z0-9_]+(\(|\s)`)
	// unusedMacroRe matches the deliberately-unused defines; plain edits
	// avoid them so only planned edits hit the unused-macro escape class.
	unusedMacroRe = regexp.MustCompile(`^#define\s+([A-Z0-9_]+_SPARE_MASK|RESERVED_FUTURE_MASK_[0-9]+)\s`)
)

// bumpNumbers rewrites the last number on the line, guaranteeing a textual
// change.
func bumpNumbers(rng *rand.Rand, line string) (string, bool) {
	if loc := hexNumRe.FindStringIndex(line); loc != nil {
		old := line[loc[0]:loc[1]]
		nv := fmt.Sprintf("0x%02x", rng.Intn(0xff)+1)
		if nv == old {
			nv = fmt.Sprintf("0x%02x", (rng.Intn(0xfe)+2)^1)
		}
		return line[:loc[0]] + nv + line[loc[1]:], nv != old
	}
	if loc := decNumRe.FindStringIndex(line); loc != nil {
		old := line[loc[0]:loc[1]]
		nv := fmt.Sprintf("%d", rng.Intn(97)+1)
		if nv == old {
			nv = fmt.Sprintf("%d", rng.Intn(97)+101)
		}
		return line[:loc[0]] + nv + line[loc[1]:], true
	}
	return line, false
}

// editResult is a successfully computed file edit.
type editResult struct {
	content string
	// regions is the approximate number of distinct mutation groups the
	// edit spans (for calibrating the paper's mutation-count statistics).
	regions int
}

// editor applies class-targeted edits to file content.
type editor struct {
	rng *rand.Rand
}

// onlyIncludeGuards reports whether every enclosing conditional is an
// include guard (#ifndef *_H), which never excludes code in practice.
func onlyIncludeGuards(conds []csrc.CondFrame) bool {
	for _, c := range conds {
		if c.Kind != csrc.CondIfndef || !strings.HasSuffix(strings.TrimSpace(c.Arg), "_H") {
			return false
		}
	}
	return true
}

// lineEligible reports whether a line suits the requested class.
func lineEligible(li csrc.Line, class editClass, kind csrc.CondKind, argMatch func(string) bool) bool {
	switch class {
	case editPlain:
		if li.CommentOnly || li.InComment || li.InMacroDef || li.Directive != "" {
			// Unconditional #define lines are fine targets too.
			if !(li.Directive == "define" && onlyIncludeGuards(li.Conds) && !continuedDefine(li)) {
				return false
			}
		}
		if !onlyIncludeGuards(li.Conds) {
			return false
		}
		if unusedMacroRe.MatchString(strings.TrimSpace(li.Text)) {
			return false
		}
		return editableStmtRe.MatchString(li.Text)
	case editMacroBody:
		return li.InMacroDef && li.Num != li.MacroStart && onlyIncludeGuards(li.Conds) &&
			editableStmtRe.MatchString(li.Text)
	case editComment:
		return li.CommentOnly && strings.Contains(li.Text, "note:")
	case editEscape:
		// Statements and defines inside the guarded region both qualify; a
		// changed define there is equally invisible to the compiler.
		if li.CommentOnly || (li.Directive != "" && li.Directive != "define") || len(li.Conds) == 0 {
			return false
		}
		top := li.Conds[len(li.Conds)-1]
		return top.Kind == kind && argMatch(top.Arg) && editableStmtRe.MatchString(li.Text)
	default:
		return false
	}
}

func continuedDefine(li csrc.Line) bool {
	return strings.HasSuffix(strings.TrimRight(li.Text, " \t"), "\\")
}

// apply edits content per the class; returns false when the file has no
// suitable site.
func (e *editor) apply(content string, class editClass, site kernelgen.SiteClass, regions int) (editResult, bool) {
	f := csrc.Analyze(content)
	lines := strings.Split(strings.TrimSuffix(content, "\n"), "\n")

	switch class {
	case editManyMacros:
		// Rewrite every register #define — one mutation per macro.
		n := 0
		for i, li := range f.Lines {
			if li.Directive == "define" && strings.Contains(li.Text, "CM_REG_") {
				if nl, ok := bumpNumbers(e.rng, li.Text); ok {
					lines[i] = nl
					n++
				}
			}
		}
		if n == 0 {
			return editResult{}, false
		}
		return editResult{content: joinLines(lines), regions: n}, true

	case editBothBranches:
		// Find a DEBUG ifdef/else pair and edit one line in each branch.
		ifLine, elseLine := -1, -1
		for _, li := range f.Lines {
			if li.CommentOnly || li.Directive != "" || len(li.Conds) == 0 {
				continue
			}
			top := li.Conds[len(li.Conds)-1]
			if !strings.HasSuffix(top.Arg, "_DEBUG") {
				continue
			}
			if top.Kind == csrc.CondIfdef && ifLine < 0 && editableStmtRe.MatchString(li.Text) {
				ifLine = li.Num
			}
			if top.Kind == csrc.CondElse && elseLine < 0 && editableStmtRe.MatchString(li.Text) {
				elseLine = li.Num
			}
		}
		if ifLine < 0 || elseLine < 0 {
			return editResult{}, false
		}
		ok1, ok2 := false, false
		lines[ifLine-1], ok1 = bumpOrAnnotate(e.rng, lines[ifLine-1])
		lines[elseLine-1], ok2 = bumpOrAnnotate(e.rng, lines[elseLine-1])
		if !ok1 || !ok2 {
			return editResult{}, false
		}
		return editResult{content: joinLines(lines), regions: 2}, true
	}

	var kind csrc.CondKind
	var argMatch func(string) bool
	if class == editEscape {
		if site == kernelgen.SiteUnusedMacro {
			for i, li := range f.Lines {
				if unusedMacroRe.MatchString(li.Text) {
					if nl, ok := bumpNumbers(e.rng, li.Text); ok {
						lines[i] = nl
						return editResult{content: joinLines(lines), regions: 1}, true
					}
				}
			}
			return editResult{}, false
		}
		kind, argMatch = guardFor(site)
		if argMatch == nil {
			return editResult{}, false
		}
	}

	// Collect eligible lines, then edit `regions` of them from distinct
	// mutation regions.
	var eligible []csrc.Line
	for _, li := range f.Lines {
		if lineEligible(li, class, kind, argMatch) {
			eligible = append(eligible, li)
		}
	}
	if len(eligible) == 0 {
		return editResult{}, false
	}
	if regions < 1 {
		regions = 1
	}
	e.rng.Shuffle(len(eligible), func(i, j int) {
		eligible[i], eligible[j] = eligible[j], eligible[i]
	})
	edited := 0
	usedRegions := make(map[string]bool)
	for _, li := range eligible {
		if edited >= regions {
			break
		}
		key := regionKeyOf(li)
		if usedRegions[key] {
			continue
		}
		var ok bool
		if class == editComment {
			lines[li.Num-1], ok = editCommentLine(e.rng, li.Text)
		} else {
			lines[li.Num-1], ok = bumpOrAnnotate(e.rng, lines[li.Num-1])
		}
		if !ok {
			continue
		}
		usedRegions[key] = true
		edited++
	}
	if edited == 0 {
		return editResult{}, false
	}
	return editResult{content: joinLines(lines), regions: edited}, true
}

// regionKeyOf groups lines the way the mutation engine will: by macro
// definition or conditional region.
func regionKeyOf(li csrc.Line) string {
	if li.InMacroDef {
		return fmt.Sprintf("m%d", li.MacroStart)
	}
	return fmt.Sprintf("r%d", li.Region)
}

// bumpOrAnnotate renumbers the line, or appends a trailing no-op change
// when it has no number.
func bumpOrAnnotate(rng *rand.Rand, line string) (string, bool) {
	if nl, ok := bumpNumbers(rng, line); ok {
		return nl, true
	}
	if strings.HasSuffix(strings.TrimRight(line, " \t"), ";") {
		return line + " /* adjusted */", true
	}
	return line, false
}

func editCommentLine(rng *rand.Rand, line string) (string, bool) {
	if nl, ok := bumpNumbers(rng, line); ok {
		return nl, true
	}
	return strings.Replace(line, "note:", "updated note:", 1), strings.Contains(line, "note:")
}

func joinLines(lines []string) string {
	return strings.Join(lines, "\n") + "\n"
}

// addUnusedHeaderMacro appends a never-used macro to a header — a .h
// change no .c compilation can witness.
func addUnusedHeaderMacro(rng *rand.Rand, content string) (string, bool) {
	f := csrc.Analyze(content)
	// Insert before the closing #endif of the include guard.
	for i := len(f.Lines) - 1; i >= 0; i-- {
		if f.Lines[i].Directive == "endif" {
			lines := strings.Split(strings.TrimSuffix(content, "\n"), "\n")
			nl := fmt.Sprintf("#define RESERVED_FUTURE_MASK_%d 0x%02x", rng.Intn(1000), rng.Intn(255)+1)
			out := append(lines[:i:i], append([]string{nl}, lines[i:]...)...)
			return joinLines(out), true
		}
	}
	return "", false
}
