package commitgen

import (
	"math/rand"

	"jmake/internal/kernelgen"
)

// planKind is the behavioural class of one window patch.
type planKind int

const (
	// planIgnored touches only Documentation/scripts/tools files.
	planIgnored planKind = iota + 1
	// planSetup touches a build-setup file (untreatable, §V-D).
	planSetup
	// planPromInit touches the whole-kernel-build file (§V-C).
	planPromInit
	// planManyMacro is the 200+ mutation register-map rewrite (§V-B).
	planManyMacro
	// planPlainC edits unconditional .c code.
	planPlainC
	// planMultiRegion edits 2-3 regions of one .c file.
	planMultiRegion
	// planMacroEdit edits a multi-line macro body.
	planMacroEdit
	// planCommentOnly edits only comments.
	planCommentOnly
	// planArchBound edits a driver only another architecture compiles.
	planArchBound
	// planBrokenArch edits a driver bound to a compiler-less architecture.
	planBrokenArch
	// planEscape edits a region allyesconfig never compiles (Table IV).
	planEscape
	// planQuirk edits an arch-quirk region (escape recovered via arch).
	planQuirk
	// planDefconfigOnly edits a region only a configs/ defconfig compiles.
	planDefconfigOnly
	// planHOnly edits a header only.
	planHOnly
	// planHOnlyNever edits a header region nothing can witness.
	planHOnlyNever
	// planBothCovered edits a driver's .c and its header (witnessed
	// together).
	planBothCovered
	// planBothDisjoint edits a .c and an unrelated header (needs hunting).
	planBothDisjoint
	// planBothNever edits a .c and a never-witnessable header region.
	planBothNever
)

// plan is one planned window patch.
type plan struct {
	kind    planKind
	escape  kernelgen.SiteClass // for planEscape
	janitor int                 // index into janitorTable, -1 for background
	regions int                 // region count for planMultiRegion
}

// quota emits n copies of a plan.
func addN(dst []plan, n int, p plan) []plan {
	for i := 0; i < n; i++ {
		dst = append(dst, p)
	}
	return dst
}

// scaleN scales a paper count, keeping at least min.
func scaleN(n int, scale float64, min int) int {
	v := int(float64(n)*scale + 0.5)
	if v < min {
		v = min
	}
	return v
}

// escapeWeights reproduces Table IV's relative frequencies.
var escapeWeights = []struct {
	site   kernelgen.SiteClass
	weight int
}{
	{kernelgen.SiteIfdefNotAllyes, 5},
	{kernelgen.SiteIfdefNever, 5},
	{kernelgen.SiteIfdefModule, 3},
	{kernelgen.SiteIfndef, 2},
	{kernelgen.SiteBothBranches, 1},
	{kernelgen.SiteIfZero, 1},
	{kernelgen.SiteUnusedMacro, 5},
}

func pickEscapeSite(rng *rand.Rand) kernelgen.SiteClass {
	total := 0
	for _, w := range escapeWeights {
		total += w.weight
	}
	n := rng.Intn(total)
	for _, w := range escapeWeights {
		n -= w.weight
		if n < 0 {
			return w.site
		}
	}
	return kernelgen.SiteIfdefNotAllyes
}

// buildWindowPlans lays out the v4.3→v4.4 patch stream at the given scale,
// mirroring the paper's quotas:
//
//	12,946 modifying commits; 2,099 ignored (paths); Table III's
//	7614/631/2602 .c-only/.h-only/both split; 317 setup patches; 3
//	prom_init patches; 1 many-macro commit; ~415 escape instances (54
//	arch-recoverable); 365 arch-only instances; ~101 defconfig-only; the
//	janitors' 591 patches with their Table III/IV profile.
func buildWindowPlans(rng *rand.Rand, scale float64) []plan {
	var plans []plan

	// --- Janitor window patches (591 = 514 c-only + 16 h-only + 60 both
	// + 1 setup). Escapes (21) and arch-bound (38) live inside the 514.
	type jq struct{ escape, arch, broken, hnever, multi, macro, comment, honly, both, setup int }
	jTotals := jq{escape: 21, arch: 38, broken: 20, hnever: 12, multi: 40, macro: 55, comment: 18, honly: 16, both: 60, setup: 1}
	jwin := 0
	for _, j := range janitorTable {
		jwin += scaleN(j.WindowPatches, scale, 2)
	}
	frac := func(n int) int { return scaleN(n, float64(jwin)/591.0, 0) }
	remaining := jq{
		escape: frac(jTotals.escape), arch: frac(jTotals.arch),
		broken: frac(jTotals.broken), hnever: frac(jTotals.hnever),
		multi: frac(jTotals.multi), macro: frac(jTotals.macro),
		comment: frac(jTotals.comment), honly: frac(jTotals.honly),
		both: frac(jTotals.both), setup: frac(jTotals.setup),
	}
	if remaining.escape == 0 {
		remaining.escape = 2 // keep Table IV populated at small scales
	}
	for ji, j := range janitorTable {
		n := scaleN(j.WindowPatches, scale, 2)
		for i := 0; i < n; i++ {
			p := plan{janitor: ji, kind: planPlainC}
			switch {
			case remaining.setup > 0 && ji == 2: // one setup patch (§V-D)
				p.kind = planSetup
				remaining.setup--
			case remaining.escape > 0 && i%7 == 3:
				p.kind = planEscape
				p.escape = pickEscapeSite(rng)
				remaining.escape--
			case remaining.arch > 0 && i%9 == 4:
				p.kind = planArchBound
				remaining.arch--
			case remaining.broken > 0 && i%17 == 8:
				p.kind = planBrokenArch
				remaining.broken--
			case remaining.hnever > 0 && i%19 == 9:
				p.kind = planBothNever
				remaining.hnever--
			case remaining.honly > 0 && i%11 == 5:
				p.kind = planHOnly
				remaining.honly--
			case remaining.both > 0 && i%5 == 1:
				p.kind = planBothCovered
				remaining.both--
			case remaining.multi > 0 && i%10 == 6:
				p.kind = planMultiRegion
				p.regions = 2 + rng.Intn(2)
				remaining.multi--
			case remaining.macro > 0 && i%8 == 2:
				p.kind = planMacroEdit
				remaining.macro--
			case remaining.comment > 0 && i%13 == 7:
				p.kind = planCommentOnly
				remaining.comment--
			}
			plans = append(plans, p)
		}
	}

	// --- Background window patches fill the remaining paper quotas.
	bg := func(kind planKind) plan { return plan{kind: kind, janitor: -1} }
	plans = addN(plans, scaleN(2099, scale, 3), bg(planIgnored))
	plans = addN(plans, scaleN(316, scale, 1), bg(planSetup))
	plans = addN(plans, scaleN(3, scale, 1), bg(planPromInit))
	plans = append(plans, bg(planManyMacro))
	plans = addN(plans, scaleN(590, scale, 3), bg(planHOnly))
	plans = addN(plans, scaleN(45, scale, 1), bg(planHOnlyNever))
	plans = addN(plans, scaleN(2100, scale, 3), bg(planBothCovered))
	plans = addN(plans, scaleN(290, scale, 1), bg(planBothDisjoint))
	plans = addN(plans, scaleN(70, scale, 1), bg(planBothNever))
	plans = addN(plans, scaleN(327, scale, 2), bg(planArchBound))
	plans = addN(plans, scaleN(160, scale, 1), bg(planBrokenArch))
	for _, w := range escapeWeights {
		n := scaleN(w.weight*550/22, scale, 1)
		p := bg(planEscape)
		p.escape = w.site
		plans = addN(plans, n, p)
	}
	plans = addN(plans, scaleN(54, scale, 1), bg(planQuirk))
	plans = addN(plans, scaleN(101, scale, 1), bg(planDefconfigOnly))
	mr := bg(planMultiRegion)
	for i, n := 0, scaleN(850, scale, 2); i < n; i++ {
		mr.regions = 2 + rng.Intn(2)
		plans = append(plans, mr)
	}
	plans = addN(plans, scaleN(650, scale, 2), bg(planMacroEdit))
	plans = addN(plans, scaleN(150, scale, 1), bg(planCommentOnly))

	// Plain background .c patches make up the rest of the 12,946.
	target := scaleN(12946, scale, len(plans))
	if len(plans) < target {
		plans = addN(plans, target-len(plans), bg(planPlainC))
	}

	rng.Shuffle(len(plans), func(i, j int) { plans[i], plans[j] = plans[j], plans[i] })
	return plans
}
