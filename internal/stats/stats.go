// Package stats provides the small statistical toolkit the evaluation
// needs: cumulative distribution functions over durations (Figures 4-6),
// the coefficient of variation used to rank janitors (paper §IV), and
// fixed-width text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewDurationCDF builds a CDF over durations, in seconds.
func NewDurationCDF(ds []time.Duration) *CDF {
	s := make([]float64, len(ds))
	for i, d := range ds {
		s[i] = d.Seconds()
	}
	return NewCDF(s)
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// FractionAtOrBelow returns the fraction of samples <= x, in [0, 1].
func (c *CDF) FractionAtOrBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the value at quantile p in [0, 1] (nearest-rank).
func (c *CDF) Percentile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.sorted[rank]
}

// Max returns the largest sample (0 for an empty CDF).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns n evenly spaced (x, cumulative-percent) pairs suitable for
// plotting the CDF, covering [0, max].
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	maxV := c.Max()
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		x := maxV * float64(i) / float64(n-1)
		out[i] = [2]float64{x, 100 * c.FractionAtOrBelow(x)}
	}
	return out
}

// RenderASCII draws the CDF as a small text plot, for the evaluation
// binaries' figure output.
func (c *CDF) RenderASCII(width, height int, xlabel string) string {
	if len(c.sorted) == 0 {
		return "(no samples)\n"
	}
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	maxV := c.Max()
	if maxV == 0 {
		maxV = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for col := 0; col < width; col++ {
		x := maxV * float64(col) / float64(width-1)
		frac := c.FractionAtOrBelow(x)
		row := int(math.Round(frac * float64(height-1)))
		grid[height-1-row][col] = '*'
	}
	var b strings.Builder
	for i, row := range grid {
		pct := 100 * float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&b, "%5.1f%% |%s|\n", pct, string(row))
	}
	fmt.Fprintf(&b, "        0%s%.1f %s\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.1f", maxV))), maxV, xlabel)
	return b.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// CoefficientOfVariation returns StdDev/Mean, the janitor-ranking metric of
// paper §IV ("abstracts away from the number of patches involved"). A zero
// mean yields 0.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Table renders rows as a fixed-width text table with the given headers.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := 0; i < len(t.headers) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
