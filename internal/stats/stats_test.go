package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFFractions(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.2},
		{2.5, 0.4},
		{5, 1},
		{100, 1},
	}
	for _, tt := range tests {
		if got := c.FractionAtOrBelow(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("FractionAtOrBelow(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFPercentile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if got := c.Percentile(0.5); got != 20 {
		t.Errorf("P50 = %v, want 20", got)
	}
	if got := c.Percentile(0); got != 10 {
		t.Errorf("P0 = %v, want 10", got)
	}
	if got := c.Percentile(1); got != 40 {
		t.Errorf("P100 = %v, want 40", got)
	}
	if got := c.Percentile(0.95); got != 40 {
		t.Errorf("P95 = %v, want 40", got)
	}
}

func TestDurationCDF(t *testing.T) {
	c := NewDurationCDF([]time.Duration{time.Second, 2 * time.Second, 30 * time.Second})
	if got := c.FractionAtOrBelow(2); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("FractionAtOrBelow(2s) = %v", got)
	}
	if c.Max() != 30 {
		t.Errorf("Max = %v, want 30", c.Max())
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if c.FractionAtOrBelow(1) != 0 || c.Percentile(0.5) != 0 || c.Max() != 0 {
		t.Error("empty CDF should return zeros")
	}
	if c.Points(10) != nil {
		t.Error("empty CDF Points should be nil")
	}
	if !strings.Contains(c.RenderASCII(20, 5, "s"), "no samples") {
		t.Error("empty CDF render")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points = %d", len(pts))
	}
	if pts[0][0] != 0 || pts[4][0] != 4 {
		t.Errorf("x range = %v..%v", pts[0][0], pts[4][0])
	}
	if pts[4][1] != 100 {
		t.Errorf("final cumulative %% = %v, want 100", pts[4][1])
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Errorf("CDF not monotone at %d: %v < %v", i, pts[i][1], pts[i-1][1])
		}
	}
}

func TestRenderASCII(t *testing.T) {
	c := NewCDF([]float64{1, 1, 2, 3, 10})
	out := c.RenderASCII(30, 6, "seconds")
	if !strings.Contains(out, "100.0%") || !strings.Contains(out, "seconds") {
		t.Errorf("render:\n%s", out)
	}
	if strings.Count(out, "*") == 0 {
		t.Error("no plot points rendered")
	}
}

func TestMeanStdDevCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := CoefficientOfVariation(xs); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("CV = %v, want 0.4", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || CoefficientOfVariation(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	if CoefficientOfVariation([]float64{0, 0}) != 0 {
		t.Error("zero mean should give CV 0")
	}
}

// Property: a uniform set of identical values has CV 0; scaling values
// leaves CV unchanged.
func TestQuickCVScaleInvariant(t *testing.T) {
	f := func(raw []uint8, scale8 uint8) bool {
		if len(raw) < 2 {
			return true
		}
		scale := float64(scale8%9) + 1
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
			ys[i] = xs[i] * scale
		}
		return math.Abs(CoefficientOfVariation(xs)-CoefficientOfVariation(ys)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FractionAtOrBelow is monotone and hits 1 at the max sample.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs)
		sort.Float64s(xs)
		prev := -1.0
		for _, x := range xs {
			fr := c.FractionAtOrBelow(x)
			if fr < prev {
				return false
			}
			prev = fr
		}
		return c.FractionAtOrBelow(xs[len(xs)-1]) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "patches", "cv")
	tb.AddRow("Dan Carpenter", "1554", "0.43")
	tb.AddRow("Julia Lawall", "653", "0.67")
	tb.AddRow("short")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "patches") {
		t.Errorf("header: %q", lines[0])
	}
	// All rows align to the same width.
	for i := 1; i < len(lines); i++ {
		if len(strings.TrimRight(lines[i], " ")) > len(lines[0])+2 {
			t.Errorf("row %d wider than header: %q", i, lines[i])
		}
	}
}
