package vclock

import "time"

// Clock accumulates charged virtual durations into a monotone "now".
// Every consumer of the cost model that wants to *stamp* events (rather
// than just sum durations) advances a Clock by exactly the durations it
// charges, so span start/end times can be read off without each caller
// re-deriving virtual time from stage totals.
//
// A Clock is single-writer: the checker processes one patch on one
// goroutine, so each patch gets its own Clock (sharing one across patches
// would both race and entangle their timelines).
type Clock struct {
	now time.Duration
}

// NewClock returns a fresh per-patch clock starting at virtual zero.
// It hangs off the Model only so call sites that already hold the cost
// model do not need a second import; the costs themselves are charged
// explicitly via Advance.
func (m *Model) NewClock() *Clock { return &Clock{} }

// Advance moves the clock forward by d and returns the new now.
// Negative durations are ignored: virtual time never runs backwards,
// even if a caller misprices an operation.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d > 0 {
		c.now += d
	}
	return c.now
}

// Now returns the current virtual time since the clock was created.
func (c *Clock) Now() time.Duration { return c.now }

// Elapsed is an alias for Now: the virtual time elapsed since creation.
func (c *Clock) Elapsed() time.Duration { return c.now }
