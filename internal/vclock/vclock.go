// Package vclock prices toolchain operations in deterministic virtual time.
//
// The paper's Figures 4-6 report wall-clock CDFs measured on a 48-core
// Opteron with the whole kernel in tmpfs. Absolute seconds on that testbed
// are not reproducible, but the *shape* of each CDF is driven by how much
// work every invocation performs: how many Makefile set-up operations run,
// how many files are preprocessed and how large they are, and whether a
// .o compile drags in a whole-kernel prerequisite build (the
// arch/powerpc/kernel/prom_init.c pathology, §V-C). This package converts
// those measured work quantities into durations using fixed per-unit costs
// calibrated against the paper's reported ranges (config creation <= 5 s;
// 98% of .i invocations <= 15 s with a 22 s tail; 97% of .o compiles <= 7 s
// with ~15 s stragglers and >6000 s whole-kernel outliers).
//
// A deterministic +/-10% jitter, keyed by the operation's identity, stands
// in for testbed noise so CDFs are smooth rather than stair-stepped.
package vclock

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Model holds the per-unit costs. The zero value is not useful; use
// DefaultModel.
type Model struct {
	// Seed decorrelates jitter between experiment runs.
	Seed uint64

	// Configuration creation: fixed overhead plus per-symbol evaluation.
	ConfigBase      time.Duration
	ConfigPerSymbol time.Duration

	// Make invocation set-up: per set-up operation on the first invocation
	// for a configuration, and a smaller re-check cost on subsequent ones
	// (paper §III-D: >80 ops for x86, >60 for arm; "a small number of extra
	// checks on each subsequent invocation").
	SetupPerOp       time.Duration
	RecheckPerInvoke time.Duration

	// Preprocessing (.i): per file overhead, per logical input line, and
	// per include resolved.
	PreprocessPerFile    time.Duration
	PreprocessPerLine    time.Duration
	PreprocessPerInclude time.Duration

	// Compilation proper (.o): per file overhead and per compiled line.
	CompilePerFile time.Duration
	CompilePerLine time.Duration

	// Retry backoff after a transient failure: BackoffBase doubles per
	// attempt up to BackoffCap. Backoff is virtual time the checker
	// charges itself for waiting out a flaky substrate.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// Result-cache probing (internal/ccache): fixed overhead per lookup
	// plus one content check per manifest entry (the include closure is
	// typically a handful of headers, so a probe is orders of magnitude
	// cheaper than the compile it replaces).
	CacheProbeBase   time.Duration
	CacheProbePerDep time.Duration
}

// DefaultModel returns the calibrated cost model used throughout the
// evaluation.
func DefaultModel(seed uint64) *Model {
	// Calibration against the paper's reported budgets: a configuration
	// over ~2,600 symbols lands just under 5 s (Fig 4a); the first make
	// invocation for x86 (84 set-up ops) costs ~12 s so that a typical
	// single-file .i generation stays <= 15 s (Fig 4b); an .o compilation
	// with set-up already paid lands at 3-5 s (Fig 4c, 97% <= 7 s); and the
	// resulting single-configuration patch total of ~20 s puts multi-
	// configuration patches past 30 s, reproducing Fig 5's 82%-within-30s
	// knee.
	return &Model{
		Seed:                 seed,
		ConfigBase:           2200 * time.Millisecond,
		ConfigPerSymbol:      750 * time.Microsecond,
		SetupPerOp:           140 * time.Millisecond,
		RecheckPerInvoke:     400 * time.Millisecond,
		PreprocessPerFile:    40 * time.Millisecond,
		PreprocessPerLine:    90 * time.Microsecond,
		PreprocessPerInclude: 5 * time.Millisecond,
		CompilePerFile:       2200 * time.Millisecond,
		CompilePerLine:       800 * time.Microsecond,
		BackoffBase:          800 * time.Millisecond,
		BackoffCap:           10 * time.Second,
		CacheProbeBase:       15 * time.Millisecond,
		CacheProbePerDep:     500 * time.Microsecond,
	}
}

// jitter returns a deterministic multiplier in [0.9, 1.1] for the key.
func (m *Model) jitter(key string) float64 {
	h := fnv.New64a()
	var seedBytes [8]byte
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(m.Seed >> (8 * i))
	}
	_, _ = h.Write(seedBytes[:])
	_, _ = h.Write([]byte(key))
	frac := float64(h.Sum64()%10_000) / 10_000 // [0,1)
	return 0.9 + 0.2*frac
}

func (m *Model) scale(d time.Duration, key string) time.Duration {
	return time.Duration(float64(d) * m.jitter(key))
}

// ConfigCreate prices generating a configuration (make allyesconfig or a
// defconfig) over a Kconfig tree with nSymbols symbols.
func (m *Model) ConfigCreate(nSymbols int, key string) time.Duration {
	d := m.ConfigBase + time.Duration(nSymbols)*m.ConfigPerSymbol
	return m.scale(d, "config:"+key)
}

// FileWork describes the measured work of preprocessing one file.
type FileWork struct {
	Lines    int // logical input lines across the file and its includes
	Includes int // files entered
}

// MakeI prices one `make f1.i f2.i ...` invocation. first marks the first
// invocation for a freshly created configuration, which pays the full
// set-up (setupOps operations); later invocations pay only re-checks.
func (m *Model) MakeI(first bool, setupOps int, files []FileWork, key string) time.Duration {
	var d time.Duration
	if first {
		d += time.Duration(setupOps) * m.SetupPerOp
	} else {
		d += m.RecheckPerInvoke
	}
	for _, f := range files {
		d += m.PreprocessPerFile +
			time.Duration(f.Lines)*m.PreprocessPerLine +
			time.Duration(f.Includes)*m.PreprocessPerInclude
	}
	return m.scale(d, "makei:"+key)
}

// Backoff prices the wait before retry number attempt (1-based) of the
// operation identified by key: capped exponential doubling from
// BackoffBase, with the usual jitter.
func (m *Model) Backoff(attempt int, key string) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := m.BackoffBase
	for i := 1; i < attempt && d < m.BackoffCap; i++ {
		d *= 2
	}
	if m.BackoffCap > 0 && d > m.BackoffCap {
		d = m.BackoffCap
	}
	return m.scale(d, fmt.Sprintf("backoff:%s:%d", key, attempt))
}

// CacheProbe prices one result-cache lookup that verified nDeps manifest
// entries (root file plus headers) against the tree. Charged instead of
// the full preprocess/compile price when a cached verdict is served, so
// the effective virtual-time ledger stays honest.
func (m *Model) CacheProbe(nDeps int, key string) time.Duration {
	d := m.CacheProbeBase + time.Duration(nDeps)*m.CacheProbePerDep
	return m.scale(d, "probe:"+key)
}

// MakeO prices one `make file.o` invocation compiling compiledLines of
// preprocessed code. If prereqFiles > 0, the target is entangled with the
// kernel's build set-up and compiling it first builds that many other
// files (the paper's prom_init.c case, >6000 s).
func (m *Model) MakeO(first bool, setupOps, compiledLines, prereqFiles int, key string) time.Duration {
	var d time.Duration
	if first {
		d += time.Duration(setupOps) * m.SetupPerOp
	} else {
		d += m.RecheckPerInvoke
	}
	d += m.CompilePerFile + time.Duration(compiledLines)*m.CompilePerLine
	if prereqFiles > 0 {
		// A whole-kernel prerequisite build: each file pays compile cost for
		// an average-sized unit (~400 effective lines).
		d += time.Duration(prereqFiles) * (m.CompilePerFile + 400*m.CompilePerLine)
	}
	return m.scale(d, "makeo:"+key)
}
