package vclock

import (
	"testing"
	"time"
)

// The clock must be monotone under any charge sequence, including the
// zero and negative durations a buggy pricing path could produce.
func TestClockMonotonic(t *testing.T) {
	m := DefaultModel(7)
	c := m.NewClock()
	if c.Now() != 0 {
		t.Fatalf("fresh clock Now() = %v, want 0", c.Now())
	}
	charges := []time.Duration{
		m.ConfigCreate(2600, "x86"),
		0,
		m.MakeI(true, 84, []FileWork{{Lines: 1200, Includes: 30}}, "a.c"),
		-time.Second, // must be ignored, not rewind
		m.Backoff(2, "a.c"),
		m.MakeO(false, 84, 900, 0, "a.c"),
	}
	prev := c.Now()
	var sum time.Duration
	for i, d := range charges {
		got := c.Advance(d)
		if got < prev {
			t.Fatalf("charge %d (%v): clock went backwards %v -> %v", i, d, prev, got)
		}
		if got != c.Now() {
			t.Fatalf("Advance returned %v but Now() = %v", got, c.Now())
		}
		if d > 0 {
			sum += d
		}
		prev = got
	}
	if c.Now() != sum {
		t.Fatalf("clock accumulated %v, want sum of positive charges %v", c.Now(), sum)
	}
	if c.Elapsed() != c.Now() {
		t.Fatalf("Elapsed() = %v, want Now() = %v", c.Elapsed(), c.Now())
	}
}
