package vclock

import (
	"testing"
	"time"
)

func TestDeterminism(t *testing.T) {
	m1 := DefaultModel(7)
	m2 := DefaultModel(7)
	if m1.ConfigCreate(1500, "x86:allyes") != m2.ConfigCreate(1500, "x86:allyes") {
		t.Error("same seed and key must give identical durations")
	}
	m3 := DefaultModel(8)
	if m1.ConfigCreate(1500, "x86:allyes") == m3.ConfigCreate(1500, "x86:allyes") {
		t.Error("different seeds should perturb durations")
	}
}

func TestJitterBounds(t *testing.T) {
	m := DefaultModel(1)
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		j := m.jitter(key)
		if j < 0.9 || j >= 1.1 {
			t.Errorf("jitter(%q) = %v, want [0.9, 1.1)", key, j)
		}
	}
}

func TestConfigCreateWithinPaperRange(t *testing.T) {
	// Paper Fig 4a: all configuration creations complete in <= 5 s. Our
	// largest Kconfig trees have a few thousand symbols.
	m := DefaultModel(1)
	d := m.ConfigCreate(3000, "big")
	if d > 5*time.Second {
		t.Errorf("ConfigCreate(3000) = %v, want <= 5s", d)
	}
	if d < 500*time.Millisecond {
		t.Errorf("ConfigCreate(3000) = %v, suspiciously fast", d)
	}
}

func TestMakeIScaling(t *testing.T) {
	m := DefaultModel(1)
	typical := []FileWork{{Lines: 900, Includes: 12}}
	first := m.MakeI(true, 80, typical, "k1")
	later := m.MakeI(false, 80, typical, "k1")
	if later >= first {
		t.Errorf("subsequent invocation (%v) should be cheaper than first (%v)", later, first)
	}
	// Paper Fig 4b: 98% of .i invocations <= 15 s, max ~22 s. Large file
	// groups run on already-configured trees (set-up paid by an earlier
	// invocation).
	if first > 15*time.Second {
		t.Errorf("first single-file MakeI = %v, want <= 15s (Fig 4b)", first)
	}
	big := make([]FileWork, 50)
	for i := range big {
		big[i] = FileWork{Lines: 1500, Includes: 20}
	}
	worst := m.MakeI(false, 80, big, "k2")
	if worst > 25*time.Second {
		t.Errorf("50-file MakeI = %v, want <= ~22s", worst)
	}
	if worst < 8*time.Second {
		t.Errorf("50-file MakeI = %v, want >= 8s to spread the CDF tail", worst)
	}
}

func TestMakeOScaling(t *testing.T) {
	m := DefaultModel(1)
	normal := m.MakeO(false, 80, 2200, 0, "o1")
	// Paper Fig 4c: 97% of .o compiles <= 7 s, max ~15 s for normal files.
	if normal > 7*time.Second {
		t.Errorf("normal MakeO = %v, want <= 7s", normal)
	}
	promInit := m.MakeO(false, 80, 2500, 9000, "o2")
	if promInit < 6000*time.Second {
		t.Errorf("whole-kernel MakeO = %v, want > 6000s (prom_init case)", promInit)
	}
}

func TestMoreWorkCostsMore(t *testing.T) {
	m := DefaultModel(3)
	// Jitter is +/-10%, so compare workloads far enough apart.
	small := m.MakeI(false, 80, []FileWork{{Lines: 100, Includes: 2}}, "same")
	large := m.MakeI(false, 80, []FileWork{{Lines: 5000, Includes: 40}}, "same")
	if large <= small {
		t.Errorf("large (%v) should cost more than small (%v)", large, small)
	}
}

func TestBackoff(t *testing.T) {
	m := DefaultModel(1)
	prev := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		d := m.Backoff(attempt, "x86_64:f.c")
		// Jitter is +/-10%, so the cap can only be exceeded by that much.
		if d <= 0 || float64(d) > 1.1*float64(m.BackoffCap) {
			t.Fatalf("attempt %d: backoff %v outside (0, 1.1*cap]", attempt, d)
		}
		if attempt > 1 && float64(d) < 0.8*float64(prev) {
			t.Errorf("attempt %d: backoff %v shrank from %v", attempt, d, prev)
		}
		prev = d
	}
	// Deterministic for identical inputs.
	if m.Backoff(3, "k") != m.Backoff(3, "k") {
		t.Error("backoff not deterministic")
	}
	// Attempt floor.
	if m.Backoff(0, "k") != m.Backoff(1, "k") {
		t.Error("attempt < 1 should price like attempt 1")
	}
}
