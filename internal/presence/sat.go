package presence

// MaxSatSymbols bounds SAT-by-enumeration. Presence conditions are shallow
// — a nesting stack plus a Kbuild gate plus a few dependency clauses rarely
// exceeds a dozen distinct symbols — so 2^20 assignments is a comfortable
// ceiling; anything wider is reported SatUnknown.
const MaxSatSymbols = 20

// SatResult is the tri-state answer of the bounded SAT check. The zero
// value is SatUnknown, so a forgotten initialization can never claim a
// proof in either direction.
type SatResult int8

const (
	// SatUnknown means the enumeration bound was exceeded: the formula has
	// more than MaxSatSymbols distinct symbols and nothing was proven.
	// Consumers proving deadness MUST treat this as "possibly satisfiable";
	// consumers proving liveness must treat it as "possibly unsatisfiable".
	SatUnknown SatResult = iota
	// SatNo means the formula is exactly unsatisfiable.
	SatNo
	// SatYes means a satisfying assignment exists.
	SatYes
)

func (r SatResult) String() string {
	switch r {
	case SatNo:
		return "unsat"
	case SatYes:
		return "sat"
	}
	return "unknown"
}

// Decide reports the satisfiability of f by enumerating assignments over
// its symbols, giving up explicitly (SatUnknown) beyond MaxSatSymbols.
// Earlier revisions folded the gave-up case into "satisfiable", which was
// sound for dead-line proofs but invited misuse the moment a caller asked
// the opposite question; the tri-state makes the bound impossible to
// overlook.
func Decide(f Formula) SatResult {
	if c, ok := f.(constF); ok {
		if bool(c) {
			return SatYes
		}
		return SatNo
	}
	syms := Symbols(f)
	if len(syms) > MaxSatSymbols {
		return SatUnknown
	}
	assign := make(map[string]bool, len(syms))
	for mask := uint64(0); mask < uint64(1)<<len(syms); mask++ {
		for i, s := range syms {
			assign[s] = mask&(1<<i) != 0
		}
		if Eval(f, assign) {
			return SatYes
		}
	}
	return SatNo
}

// Sat is the two-valued view of Decide. exact is false when f has more
// than MaxSatSymbols symbols, in which case sat is conservatively true:
// callers prove lines *dead* with this, so an inexact answer must never
// claim unsatisfiability.
func Sat(f Formula) (sat, exact bool) {
	switch Decide(f) {
	case SatYes:
		return true, true
	case SatNo:
		return false, true
	}
	return true, false
}

// SatAssignment is Sat plus a witness: when f is satisfiable within the
// enumeration bound, it returns one satisfying assignment over f's symbols.
func SatAssignment(f Formula) (assign map[string]bool, sat, exact bool) {
	if c, ok := f.(constF); ok {
		return map[string]bool{}, bool(c), true
	}
	syms := Symbols(f)
	if len(syms) > MaxSatSymbols {
		return nil, true, false
	}
	a := make(map[string]bool, len(syms))
	for mask := uint64(0); mask < uint64(1)<<len(syms); mask++ {
		for i, s := range syms {
			a[s] = mask&(1<<i) != 0
		}
		if Eval(f, a) {
			out := make(map[string]bool, len(a))
			for k, v := range a {
				out[k] = v
			}
			return out, true, true
		}
	}
	return nil, false, true
}
