package presence

// MaxSatSymbols bounds SAT-by-enumeration. Presence conditions are shallow
// — a nesting stack plus a Kbuild gate plus a few dependency clauses rarely
// exceeds a dozen distinct symbols — so 2^20 assignments is a comfortable
// ceiling; anything wider is conservatively reported satisfiable.
const MaxSatSymbols = 20

// Sat decides satisfiability of f by enumerating assignments over its
// symbols. exact is false when f has more than MaxSatSymbols symbols, in
// which case sat is conservatively true: callers prove lines *dead* with
// this, so an inexact answer must never claim unsatisfiability.
func Sat(f Formula) (sat, exact bool) {
	if c, ok := f.(constF); ok {
		return bool(c), true
	}
	syms := Symbols(f)
	if len(syms) > MaxSatSymbols {
		return true, false
	}
	assign := make(map[string]bool, len(syms))
	for mask := uint64(0); mask < uint64(1)<<len(syms); mask++ {
		for i, s := range syms {
			assign[s] = mask&(1<<i) != 0
		}
		if Eval(f, assign) {
			return true, true
		}
	}
	return false, true
}

// SatAssignment is Sat plus a witness: when f is satisfiable within the
// enumeration bound, it returns one satisfying assignment over f's symbols.
func SatAssignment(f Formula) (assign map[string]bool, sat, exact bool) {
	if c, ok := f.(constF); ok {
		return map[string]bool{}, bool(c), true
	}
	syms := Symbols(f)
	if len(syms) > MaxSatSymbols {
		return nil, true, false
	}
	a := make(map[string]bool, len(syms))
	for mask := uint64(0); mask < uint64(1)<<len(syms); mask++ {
		for i, s := range syms {
			a[s] = mask&(1<<i) != 0
		}
		if Eval(f, a) {
			out := make(map[string]bool, len(a))
			for k, v := range a {
				out[k] = v
			}
			return out, true, true
		}
	}
	return nil, false, true
}
