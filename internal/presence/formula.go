// Package presence implements static presence-condition analysis: every
// line of a C source file gets a boolean formula over CONFIG_* symbols
// describing the configurations under which the preprocessor emits it. The
// formula combines the #if/#ifdef/#elif/#else nesting stack (parsed
// symbolically via internal/cpp, with each #elif/#else branch carrying the
// negation of all earlier branches in its chain) with the file's Kbuild
// obj-$(CONFIG_X) gate. Conditions the analysis cannot decide statically —
// arithmetic over unknown macros, identifiers the file itself (re)defines —
// become opaque free variables, so satisfiability checks over-approximate:
// a line is declared dead only when no valuation at all enables it.
package presence

import (
	"sort"
	"strings"
)

// Formula is a boolean formula over named symbols. Values are built with
// True, False, Symbol, Not, And and Or; the constructors constant-fold, so
// a formula containing no symbols is always exactly True or False.
type Formula interface {
	String() string
	formula()
}

type constF bool
type symF string
type notF struct{ x Formula }
type andF struct{ l, r Formula }
type orF struct{ l, r Formula }

func (constF) formula() {}
func (symF) formula()   {}
func (notF) formula()   {}
func (andF) formula()   {}
func (orF) formula()    {}

// True and False are the constant formulas.
var (
	True  Formula = constF(true)
	False Formula = constF(false)
)

func (f constF) String() string {
	if f {
		return "true"
	}
	return "false"
}
func (f symF) String() string { return string(f) }
func (f notF) String() string { return "!" + f.x.String() }
func (f andF) String() string { return "(" + f.l.String() + " && " + f.r.String() + ")" }
func (f orF) String() string  { return "(" + f.l.String() + " || " + f.r.String() + ")" }

// Symbol is a formula variable. CONFIG_* names mean "this option is y";
// other spellings ("defined(FOO)", "?FOO") are opaque unknowns.
func Symbol(name string) Formula { return symF(name) }

// Not negates a formula, folding constants and double negation.
func Not(x Formula) Formula {
	switch n := x.(type) {
	case constF:
		return constF(!n)
	case notF:
		return n.x
	}
	return notF{x: x}
}

// And conjoins formulas, folding constants.
func And(xs ...Formula) Formula {
	out := True
	for _, x := range xs {
		if x == nil {
			continue
		}
		if c, ok := x.(constF); ok {
			if !c {
				return False
			}
			continue
		}
		if out == True {
			out = x
		} else {
			out = andF{l: out, r: x}
		}
	}
	return out
}

// Or disjoins formulas, folding constants.
func Or(xs ...Formula) Formula {
	out := False
	for _, x := range xs {
		if x == nil {
			continue
		}
		if c, ok := x.(constF); ok {
			if c {
				return True
			}
			continue
		}
		if out == False {
			out = x
		} else {
			out = orF{l: out, r: x}
		}
	}
	return out
}

// Implies builds the material implication p -> q.
func Implies(p, q Formula) Formula { return Or(Not(p), q) }

// Eval evaluates f under a total assignment (missing symbols read false).
func Eval(f Formula, assign map[string]bool) bool {
	v, _ := EvalPartial(f, func(name string) (bool, bool) {
		return assign[name], true
	})
	return v
}

// EvalPartial evaluates f under a partial assignment: know returns (value,
// true) for resolved symbols and (_, false) for unknown ones. The second
// result reports whether the formula's value is determined; short-circuit
// rules apply, so one known-false conjunct decides a conjunction.
func EvalPartial(f Formula, know func(string) (bool, bool)) (value, known bool) {
	switch n := f.(type) {
	case constF:
		return bool(n), true
	case symF:
		return know(string(n))
	case notF:
		v, ok := EvalPartial(n.x, know)
		return !v, ok
	case andF:
		lv, lok := EvalPartial(n.l, know)
		rv, rok := EvalPartial(n.r, know)
		switch {
		case lok && !lv, rok && !rv:
			return false, true
		case lok && rok:
			return true, true
		}
		return false, false
	case orF:
		lv, lok := EvalPartial(n.l, know)
		rv, rok := EvalPartial(n.r, know)
		switch {
		case lok && lv, rok && rv:
			return true, true
		case lok && rok:
			return false, true
		}
		return false, false
	}
	return false, false
}

// Substitute replaces resolved symbols with constants and re-folds.
func Substitute(f Formula, know func(string) (bool, bool)) Formula {
	switch n := f.(type) {
	case symF:
		if v, ok := know(string(n)); ok {
			return constF(v)
		}
		return n
	case notF:
		return Not(Substitute(n.x, know))
	case andF:
		return And(Substitute(n.l, know), Substitute(n.r, know))
	case orF:
		return Or(Substitute(n.l, know), Substitute(n.r, know))
	}
	return f
}

// Replace rewrites symbols into arbitrary sub-formulas and re-folds: repl
// returns (replacement, true) for symbols to rewrite. Substitute is the
// constant-only special case.
func Replace(f Formula, repl func(string) (Formula, bool)) Formula {
	switch n := f.(type) {
	case symF:
		if g, ok := repl(string(n)); ok {
			return g
		}
		return n
	case notF:
		return Not(Replace(n.x, repl))
	case andF:
		return And(Replace(n.l, repl), Replace(n.r, repl))
	case orF:
		return Or(Replace(n.l, repl), Replace(n.r, repl))
	}
	return f
}

// Symbols returns the distinct symbol names in f, sorted.
func Symbols(f Formula) []string {
	set := make(map[string]bool)
	collectSymbols(f, set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func collectSymbols(f Formula, into map[string]bool) {
	switch n := f.(type) {
	case symF:
		into[string(n)] = true
	case notF:
		collectSymbols(n.x, into)
	case andF:
		collectSymbols(n.l, into)
		collectSymbols(n.r, into)
	case orF:
		collectSymbols(n.l, into)
		collectSymbols(n.r, into)
	}
}

// IsConfigSymbol reports whether a formula symbol denotes a CONFIG_* option
// (as opposed to an opaque unknown like "defined(FOO)" or "?EXPR").
func IsConfigSymbol(name string) bool {
	return strings.HasPrefix(name, "CONFIG_") && !strings.ContainsAny(name, "?() ")
}
