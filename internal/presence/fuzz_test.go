package presence

import (
	"testing"

	"jmake/internal/cpp"
)

// FuzzPresenceParse throws arbitrary source at the symbolic conditional
// parser and the full line analysis: malformed #if lines must degrade to
// opaque variables, never panic, and every resulting condition must render
// and answer satisfiability.
func FuzzPresenceParse(f *testing.F) {
	f.Add("#if defined(CONFIG_A) && (CONFIG_B > 2)\nint x;\n#endif\n")
	f.Add("#if ((\n#elif ?:\n#else\n#endif\n")
	f.Add("#ifdef\n#elif 1 ? : 0\nint y;\n#endif\n")
	f.Add("#if 'x' == 0x1uLL\n/* c */ int z;\n#endif\n")
	f.Add("#define CONFIG_SELF 1\n#ifdef CONFIG_SELF\nint s;\n#endif\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		// The symbolic expression parser must return, not panic, on any
		// directive argument.
		if e, err := cpp.ParseCondExpr(src); err == nil {
			_ = e.String()
		}
		fa := Analyze("fuzz.c", src)
		for i := 1; i <= fa.Len(); i++ {
			cond := fa.LineCond(i)
			_ = cond.String()
			if len(Symbols(cond)) <= 8 {
				_, _ = Sat(cond)
			}
		}
	})
}
