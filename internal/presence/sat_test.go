package presence

import (
	"fmt"
	"testing"
)

// contradiction builds (x0 ∨ ... ∨ x(n-2)) ∧ xlast ∧ ¬xlast over exactly n
// distinct symbols: unsatisfiable regardless of the padding disjuncts.
func contradiction(n int) Formula {
	pad := False
	for i := 0; i < n-1; i++ {
		pad = Or(pad, Symbol(fmt.Sprintf("CONFIG_X%02d", i)))
	}
	last := Symbol("CONFIG_XLAST")
	return And(pad, last, Not(last))
}

func TestDecideConstants(t *testing.T) {
	if got := Decide(True); got != SatYes {
		t.Fatalf("Decide(True) = %v, want SatYes", got)
	}
	if got := Decide(False); got != SatNo {
		t.Fatalf("Decide(False) = %v, want SatNo", got)
	}
	if got := Decide(Symbol("CONFIG_A")); got != SatYes {
		t.Fatalf("Decide(A) = %v, want SatYes", got)
	}
	if got := Decide(And(Symbol("CONFIG_A"), Not(Symbol("CONFIG_A")))); got != SatNo {
		t.Fatalf("Decide(A && !A) = %v, want SatNo", got)
	}
}

// TestDecideBoundary pins the enumeration bound: a contradiction over
// exactly MaxSatSymbols symbols is proven unsat, while the same shape one
// symbol wider must come back SatUnknown — never SatYes, which would let a
// consumer misread "gave up" as "satisfiable", and never SatNo, which
// would be an unproven deadness claim.
func TestDecideBoundary(t *testing.T) {
	at := contradiction(MaxSatSymbols)
	if n := len(Symbols(at)); n != MaxSatSymbols {
		t.Fatalf("fixture has %d symbols, want %d", n, MaxSatSymbols)
	}
	if got := Decide(at); got != SatNo {
		t.Fatalf("Decide(%d-symbol contradiction) = %v, want SatNo", MaxSatSymbols, got)
	}

	over := contradiction(MaxSatSymbols + 1)
	if n := len(Symbols(over)); n != MaxSatSymbols+1 {
		t.Fatalf("fixture has %d symbols, want %d", n, MaxSatSymbols+1)
	}
	if got := Decide(over); got != SatUnknown {
		t.Fatalf("Decide(%d-symbol contradiction) = %v, want SatUnknown", MaxSatSymbols+1, got)
	}

	// The legacy two-valued view must map SatUnknown to (sat, inexact).
	sat, exact := Sat(over)
	if !sat || exact {
		t.Fatalf("Sat(over-bound) = (%v, %v), want (true, false)", sat, exact)
	}
	sat, exact = Sat(at)
	if sat || !exact {
		t.Fatalf("Sat(at-bound contradiction) = (%v, %v), want (false, true)", sat, exact)
	}
}

// TestDecideOverBoundSatisfiable: a wide but satisfiable formula also
// reports SatUnknown — the bound is about width, not truth, and the audit
// counts these rather than guessing.
func TestDecideOverBoundSatisfiable(t *testing.T) {
	f := False
	for i := 0; i <= MaxSatSymbols; i++ {
		f = Or(f, Symbol(fmt.Sprintf("CONFIG_W%02d", i)))
	}
	if got := Decide(f); got != SatUnknown {
		t.Fatalf("Decide(wide disjunction) = %v, want SatUnknown", got)
	}
}

func TestSatResultString(t *testing.T) {
	for _, tc := range []struct {
		r    SatResult
		want string
	}{{SatUnknown, "unknown"}, {SatNo, "unsat"}, {SatYes, "sat"}} {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.r, got, tc.want)
		}
	}
}

func TestRegions(t *testing.T) {
	src := "int a;\n" + // 1
		"#ifdef CONFIG_A\n" + // 2 (directive: enclosing cond = True)
		"int b;\n" + // 3
		"int c;\n" + // 4
		"#endif\n" + // 5
		"int d;\n" + // 6
		"#if defined(CONFIG_B) && !defined(CONFIG_B)\n" + // 7
		"int e;\n" + // 8
		"#endif\n" // 9
	f := Analyze("t.c", src)
	regs := f.Regions()
	if len(regs) != 2 {
		t.Fatalf("got %d regions, want 2: %+v", len(regs), regs)
	}
	if regs[0].Start != 3 || regs[0].End != 4 {
		t.Errorf("region 0 = [%d,%d], want [3,4]", regs[0].Start, regs[0].End)
	}
	if got := Decide(regs[0].Cond); got != SatYes {
		t.Errorf("region 0 cond %v, want SatYes", got)
	}
	if regs[1].Start != 8 || regs[1].End != 8 {
		t.Errorf("region 1 = [%d,%d], want [8,8]", regs[1].Start, regs[1].End)
	}
	if got := Decide(regs[1].Cond); got != SatNo {
		t.Errorf("region 1 cond %v, want SatNo", got)
	}
}
