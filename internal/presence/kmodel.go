package presence

import (
	"strings"

	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
)

// This file builds presence formulas from Kbuild and Kconfig knowledge —
// the tristate abstraction shared by the per-commit static pre-pass
// (internal/core) and the whole-tree audit (internal/audit). Every
// construction over-approximates satisfiability: opaque conditions stay
// free variables and unknown structure widens the model, so an
// unsatisfiability proof (Decide == SatNo) is always sound.

// GateFormula is the Kbuild reachability condition of a file: every gating
// variable of the Makefile descent chain and of the file's own rule must be
// enabled.
func GateFormula(kt *kconfig.Tree, g *kbuild.Gate) Formula {
	out := True
	for _, v := range g.Vars {
		out = And(out, SymbolEnabled(kt, v))
	}
	return out
}

// SymbolEnabled is the formula for "option name is y or m" in one
// architecture's tree. Undeclared options always evaluate to n.
func SymbolEnabled(kt *kconfig.Tree, name string) Formula {
	s := kt.Symbol(name)
	if s == nil {
		return False
	}
	y := Symbol("CONFIG_" + name)
	if s.Type != kconfig.TypeTristate {
		return y
	}
	return Or(y, Symbol("CONFIG_"+name+"_MODULE"))
}

// ModuleRepl resolves the MODULE macro from the file's own Kbuild rule:
// obj-m files always build modular, obj-y never, and an obj-$(CONFIG_X)
// tristate rule builds modular exactly when X is m.
func ModuleRepl(kt *kconfig.Tree, g *kbuild.Gate) func(string) (Formula, bool) {
	return func(name string) (Formula, bool) {
		if name != "defined(MODULE)" && name != "?MODULE" {
			return nil, false
		}
		switch {
		case g.OwnModule:
			return True, true
		case g.OwnVar == "":
			return False, true
		}
		if s := kt.Symbol(g.OwnVar); s != nil && s.Type == kconfig.TypeTristate {
			return Symbol("CONFIG_" + g.OwnVar + "_MODULE"), true
		}
		return False, true
	}
}

// UndeclaredKnow substitutes False for configuration symbols the
// architecture's tree does not declare — autoconf never defines their
// macros (Config.Value reports No for unknown names, so this is exact).
// CONFIG_X_MODULE variables of declared bool options are likewise False.
func UndeclaredKnow(kt *kconfig.Tree) func(string) (bool, bool) {
	return func(name string) (bool, bool) {
		if !IsConfigSymbol(name) {
			return false, false
		}
		base := strings.TrimPrefix(name, "CONFIG_")
		if kt.Symbol(base) != nil {
			return false, false
		}
		if root, ok := strings.CutSuffix(base, "_MODULE"); ok {
			if s := kt.Symbol(root); s != nil {
				if s.Type == kconfig.TypeTristate {
					return false, false // a real module variable: stays free
				}
				return false, true // bool options are never m
			}
		}
		return false, true
	}
}

// KconfigConstraints conjoins what the architecture's Kconfig tree says
// about the configuration symbols appearing in f: y and m are exclusive
// values of one option, and a symbol not forced by `select` can only be
// enabled when its `depends on` allows it. Dependency clauses are expanded
// one level — symbols they introduce stay unconstrained, which only widens
// satisfiability and therefore keeps dead proofs sound. selects holds the
// tree's select targets (kconfig.Tree.SelectTargets).
func KconfigConstraints(kt *kconfig.Tree, selects map[string]bool, f Formula) Formula {
	out := True
	syms := Symbols(f)
	present := make(map[string]bool, len(syms))
	for _, s := range syms {
		present[s] = true
	}
	for _, name := range syms {
		if !IsConfigSymbol(name) {
			continue
		}
		base := strings.TrimPrefix(name, "CONFIG_")
		root, isModuleVar := base, false
		if kt.Symbol(base) == nil {
			r, ok := strings.CutSuffix(base, "_MODULE")
			if !ok {
				continue
			}
			root, isModuleVar = r, true
		}
		s := kt.Symbol(root)
		if s == nil {
			continue
		}
		yVar := Symbol("CONFIG_" + root)
		mVar := Symbol("CONFIG_" + root + "_MODULE")
		if s.Type == kconfig.TypeTristate && !isModuleVar && present["CONFIG_"+root+"_MODULE"] {
			out = And(out, Not(And(yVar, mVar)))
		}
		if selects[root] || s.DependsOn == nil {
			continue
		}
		enabled, isYes := DependsFormulas(kt, s.DependsOn)
		switch {
		case isModuleVar:
			out = And(out, Implies(mVar, enabled))
		case s.Type == kconfig.TypeTristate:
			// The fixpoint bounds a tristate by its dependency value, so
			// reaching y needs the dependency at y.
			out = And(out, Implies(yVar, isYes))
		default:
			out = And(out, Implies(yVar, enabled))
		}
	}
	return out
}

// depAbs abstracts a tristate dependency expression into two booleans:
// "value != n" and "value == y".
type depAbs struct{ enabled, isYes Formula }

// DependsFormulas folds a `depends on` expression into the boolean domain.
// min/max/negation over {n, m, y} decompose exactly into this pair;
// =/!= comparisons become one opaque variable for both components.
func DependsFormulas(kt *kconfig.Tree, e kconfig.Expr) (enabled, isYes Formula) {
	fns := kconfig.FoldFuncs[depAbs]{
		Sym: func(name string) depAbs {
			switch name {
			case "y":
				return depAbs{True, True}
			case "m":
				return depAbs{True, False}
			case "n":
				return depAbs{False, False}
			}
			s := kt.Symbol(name)
			if s == nil {
				return depAbs{False, False}
			}
			y := Symbol("CONFIG_" + name)
			if s.Type != kconfig.TypeTristate {
				return depAbs{y, y}
			}
			return depAbs{Or(y, Symbol("CONFIG_"+name+"_MODULE")), y}
		},
		Not: func(x depAbs) depAbs {
			// y - v: != n iff v != y; == y iff v == n.
			return depAbs{Not(x.isYes), Not(x.enabled)}
		},
		And: func(l, r depAbs) depAbs {
			return depAbs{And(l.enabled, r.enabled), And(l.isYes, r.isYes)}
		},
		Or: func(l, r depAbs) depAbs {
			return depAbs{Or(l.enabled, r.enabled), Or(l.isYes, r.isYes)}
		},
		Cmp: func(l, r kconfig.Expr, ne bool) depAbs {
			op := " = "
			if ne {
				op = " != "
			}
			v := Symbol("?kconfig:" + l.String() + op + r.String())
			return depAbs{v, v}
		},
	}
	d := kconfig.FoldExpr(e, fns)
	return d.enabled, d.isYes
}

// ArchFormula assembles the full satisfiability query for a source
// condition under one architecture: cond ∧ Kbuild gate (with MODULE
// resolved from the rule), undeclared symbols fixed to n, and the Kconfig
// constraints over every symbol that remains. gate may be nil for
// ungated files (headers). The result feeds Decide: SatNo proves the
// condition can hold in no configuration of this architecture.
func ArchFormula(kt *kconfig.Tree, selects map[string]bool, cond Formula, gate *kbuild.Gate) Formula {
	f := cond
	if gate != nil {
		f = And(f, GateFormula(kt, gate))
		f = Replace(f, ModuleRepl(kt, gate))
	}
	f = Substitute(f, UndeclaredKnow(kt))
	return And(f, KconfigConstraints(kt, selects, f))
}
