package presence

import (
	"reflect"
	"strings"
	"testing"
)

func TestFormulaFolding(t *testing.T) {
	a, b := Symbol("CONFIG_A"), Symbol("CONFIG_B")
	cases := []struct {
		got  Formula
		want string
	}{
		{And(a, True), "CONFIG_A"},
		{And(a, False), "false"},
		{Or(a, True), "true"},
		{Or(a, False), "CONFIG_A"},
		{Not(Not(a)), "CONFIG_A"},
		{Not(True), "false"},
		{And(a, b), "(CONFIG_A && CONFIG_B)"},
		{And(), "true"},
		{Or(), "false"},
		{Implies(a, b), "(!CONFIG_A || CONFIG_B)"},
	}
	for _, c := range cases {
		if got := c.got.String(); got != c.want {
			t.Errorf("got %s, want %s", got, c.want)
		}
	}
}

func TestEvalAndPartial(t *testing.T) {
	f := And(Symbol("A"), Or(Not(Symbol("B")), Symbol("C")))
	if !Eval(f, map[string]bool{"A": true, "C": true, "B": true}) {
		t.Error("A && (!B || C) under A,B,C should hold")
	}
	if Eval(f, map[string]bool{"A": true, "B": true}) {
		t.Error("A && (!B || C) under A,B should fail")
	}

	// Partial: knowing A=false decides the conjunction.
	v, known := EvalPartial(f, func(n string) (bool, bool) { return false, n == "A" })
	if !known || v {
		t.Errorf("EvalPartial with A=false = (%v,%v), want (false,true)", v, known)
	}
	// Knowing only B leaves the value open.
	if _, known := EvalPartial(f, func(n string) (bool, bool) { return true, n == "B" }); known {
		t.Error("EvalPartial should be undetermined when A unknown")
	}
}

func TestSubstituteAndSymbols(t *testing.T) {
	f := And(Symbol("A"), Or(Symbol("B"), Symbol("A")))
	got := Substitute(f, func(n string) (bool, bool) { return true, n == "A" })
	if got.String() != "true" {
		t.Errorf("Substitute(A=true) = %s", got)
	}
	if s := Symbols(f); !reflect.DeepEqual(s, []string{"A", "B"}) {
		t.Errorf("Symbols = %v", s)
	}
}

func TestSat(t *testing.T) {
	a, b := Symbol("A"), Symbol("B")
	if sat, exact := Sat(And(a, Not(a))); sat || !exact {
		t.Errorf("A && !A: sat=%v exact=%v", sat, exact)
	}
	if sat, exact := Sat(And(a, b)); !sat || !exact {
		t.Errorf("A && B: sat=%v exact=%v", sat, exact)
	}
	if sat, exact := Sat(False); sat || !exact {
		t.Errorf("false: sat=%v exact=%v", sat, exact)
	}

	// Too many symbols: conservatively satisfiable, marked inexact.
	wide := False
	for i := 0; i < MaxSatSymbols+1; i++ {
		wide = Or(wide, Symbol(strings.Repeat("S", i+1)))
	}
	if sat, exact := Sat(wide); !sat || exact {
		t.Errorf("wide: sat=%v exact=%v", sat, exact)
	}

	assign, sat, exact := SatAssignment(And(a, Not(b)))
	if !sat || !exact || !assign["A"] || assign["B"] {
		t.Errorf("SatAssignment = %v, %v, %v", assign, sat, exact)
	}
}

func TestAnalyzeNesting(t *testing.T) {
	src := strings.Join([]string{
		"int always;",             // 1
		"#ifdef CONFIG_A",         // 2
		"int a;",                  // 3
		"#ifdef CONFIG_B",         // 4
		"int ab;",                 // 5
		"#endif",                  // 6
		"#endif",                  // 7
		"#if 0",                   // 8
		"int never;",              // 9
		"#endif",                  // 10
		"#ifndef CONFIG_A",        // 11
		"int nota;",               // 12
		"#elif defined(CONFIG_B)", // 13
		"int ab2;",                // 14
		"#else",                   // 15
		"int anotb;",              // 16
		"#endif",                  // 17
		"",
	}, "\n")
	f := Analyze("test.c", src)

	wants := map[int]string{
		1:  "true",
		3:  "CONFIG_A",
		5:  "(CONFIG_A && CONFIG_B)",
		9:  "false",
		12: "!CONFIG_A",
		14: "(CONFIG_A && CONFIG_B)",
		16: "(CONFIG_A && !CONFIG_B)",
	}
	for line, want := range wants {
		if got := f.LineCond(line).String(); got != want {
			t.Errorf("line %d: %s, want %s", line, got, want)
		}
	}

	if dead := f.DeadLines(); !reflect.DeepEqual(dead, []int{9}) {
		t.Errorf("DeadLines = %v, want [9]", dead)
	}
	// The #elif after #ifndef CONFIG_A carries the negation of the opening
	// branch — double negation folds back to CONFIG_A — and stays
	// satisfiable (A on, B on).
	if sat, exact := Sat(f.LineCond(14)); !sat || !exact {
		t.Errorf("elif branch: sat=%v exact=%v", sat, exact)
	}
	// But "#elif defined(CONFIG_A)" after "#ifdef CONFIG_A" would be dead.
	f2 := Analyze("t.c", "#ifdef CONFIG_A\nint a;\n#elif defined(CONFIG_A)\nint b;\n#endif\n")
	if sat, exact := Sat(f2.LineCond(4)); sat || !exact {
		t.Errorf("contradictory elif: sat=%v exact=%v", sat, exact)
	}
}

func TestAnalyzeFileDefinedMacros(t *testing.T) {
	// The file defines CONFIG_LOCAL itself, so its conditions must not be
	// treated as configuration symbols.
	src := "#define CONFIG_LOCAL 1\n#ifdef CONFIG_LOCAL\nint x;\n#endif\n#ifdef CONFIG_REAL\nint y;\n#endif\n"
	f := Analyze("t.c", src)
	if got := f.LineCond(3).String(); got != "defined(CONFIG_LOCAL)" {
		t.Errorf("file-defined macro cond = %s", got)
	}
	if got := f.LineCond(6).String(); got != "CONFIG_REAL" {
		t.Errorf("real config cond = %s", got)
	}
	if !f.Defined["CONFIG_LOCAL"] {
		t.Error("Defined should record CONFIG_LOCAL")
	}
}

func TestFromCondExprOpaqueDiscipline(t *testing.T) {
	// defined(FOO) and bare FOO must stay distinct variables: merging them
	// would wrongly prove `defined(FOO) && !FOO` unsatisfiable.
	f := Analyze("t.c", "#if defined(FOO) && !FOO\nint x;\n#endif\n")
	cond := f.LineCond(2)
	if sat, exact := Sat(cond); !sat || !exact {
		t.Errorf("defined(FOO) && !FOO: sat=%v exact=%v (cond %s)", sat, exact, cond)
	}
	if syms := Symbols(cond); len(syms) != 2 {
		t.Errorf("want two distinct variables, got %v", syms)
	}

	// Arithmetic degrades to one opaque variable per distinct subtree.
	f2 := Analyze("t.c", "#if CONFIG_X > 2\nint x;\n#elif CONFIG_X > 2\nint y;\n#endif\n")
	if sat, exact := Sat(f2.LineCond(4)); sat || !exact {
		t.Errorf("repeated opaque comparison in elif should be unsat, got sat=%v exact=%v (cond %s)",
			sat, exact, f2.LineCond(4))
	}
}

func TestAnalyzeMalformedNeverPanics(t *testing.T) {
	srcs := []string{
		"#if ((\nint x;\n#endif\n",
		"#elif FOO\n#endif\n#else\n",
		"#ifdef\nint x;\n#endif\n",
		"#if 1 ? 2\nint x;\n#endif\n",
	}
	for _, src := range srcs {
		f := Analyze("t.c", src)
		for i := 1; i <= f.Len(); i++ {
			_ = f.LineCond(i).String()
			_, _ = Sat(f.LineCond(i))
		}
	}
}

func TestIncludes(t *testing.T) {
	src := `#include <linux/kernel.h>
#include "local.h"
  #  include <spaced/form.h>
#include BAD_COMPUTED_INCLUDE
#include <unterminated
#include ""
#define NOT_AN_INCLUDE "x.h"
int v; /* #include <comment.h> is not a directive */
#ifdef FOO
#include <cond/gated.h>
#endif
`
	got := Includes(src)
	want := []Include{
		{Target: "linux/kernel.h", Angle: true, Line: 1},
		{Target: "local.h", Angle: false, Line: 2},
		{Target: "spaced/form.h", Angle: true, Line: 3},
		{Target: "cond/gated.h", Angle: true, Line: 10},
	}
	if len(got) != len(want) {
		t.Fatalf("Includes = %+v, want %d entries", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Includes[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
