package presence

import (
	"fmt"
	"sort"
	"strings"

	"jmake/internal/cpp"
	"jmake/internal/csrc"
)

// File is the presence analysis of one source file: a formula per physical
// line, derived from the #if nesting stack. Kbuild gating is not included —
// it depends on the architecture's Makefile walk and is conjoined by the
// caller (see internal/core and cmd/jmake-lint).
type File struct {
	Path string
	// conds[i] is the condition of 1-based line i+1.
	conds []Formula
	// Defined holds macro names the file itself #defines or #undefs.
	// Conditions over these names cannot be resolved from configuration
	// alone, so the analysis keeps them opaque even when they look like
	// CONFIG_* options.
	Defined map[string]bool
}

// Analyze computes a presence condition for every line of content. It never
// fails: malformed directives degrade to opaque free variables, keeping the
// result an over-approximation.
func Analyze(path, content string) *File {
	sf := csrc.Analyze(content)
	f := &File{
		Path:    path,
		conds:   make([]Formula, len(sf.Lines)),
		Defined: make(map[string]bool),
	}
	for _, li := range sf.Lines {
		switch li.Directive {
		case "define":
			if li.MacroName != "" {
				f.Defined[li.MacroName] = true
			}
		case "undef":
			if name := firstIdent(li.DirectiveArg); name != "" {
				f.Defined[name] = true
			}
		}
	}
	// Frames are shared between lines, so one formula per opening directive
	// line covers every line of its branch.
	frameCond := make(map[int]Formula)
	for i, li := range sf.Lines {
		cond := True
		for _, fr := range li.Conds {
			// A conditional directive line carries the frame it just opened,
			// but the directive itself is processed whenever the *enclosing*
			// region is — only the branch body is governed by the new frame.
			if fr.Line == li.Num {
				continue
			}
			fc, ok := frameCond[fr.Line]
			if !ok {
				fc = f.frameFormula(fr)
				frameCond[fr.Line] = fc
			}
			cond = And(cond, fc)
		}
		f.conds[i] = cond
	}
	return f
}

// Include is one #include directive of a source file. The reverse
// dependency index (internal/incr) uses these as its static include
// edges; extraction is deliberately condition-blind — an include behind a
// dead #if still creates an edge, keeping the index an over-approximation
// the same way the line formulas are.
type Include struct {
	// Target is the include operand without its delimiters: `<linux/foo.h>`
	// yields Target "linux/foo.h" with Angle true, `"foo.h"` yields
	// Target "foo.h" with Angle false.
	Target string
	Angle  bool
	// Line is the 1-based directive line.
	Line int
}

// Includes extracts every #include directive from content. Malformed
// operands (no recognizable delimiter) are skipped; like Analyze, this
// never fails.
func Includes(content string) []Include {
	sf := csrc.Analyze(content)
	var out []Include
	for _, li := range sf.Lines {
		if li.Directive != "include" {
			continue
		}
		arg := strings.TrimSpace(li.DirectiveArg)
		var inc Include
		switch {
		case strings.HasPrefix(arg, "<"):
			end := strings.IndexByte(arg, '>')
			if end <= 1 {
				continue
			}
			inc = Include{Target: arg[1:end], Angle: true, Line: li.Num}
		case strings.HasPrefix(arg, "\""):
			end := strings.IndexByte(arg[1:], '"')
			if end <= 0 {
				continue
			}
			inc = Include{Target: arg[1 : 1+end], Line: li.Num}
		default:
			continue
		}
		out = append(out, inc)
	}
	return out
}

// LineCond returns the presence condition of 1-based line n. Out-of-range
// lines are True: a line outside the file is outside every conditional.
func (f *File) LineCond(n int) Formula {
	if n < 1 || n > len(f.conds) {
		return True
	}
	return f.conds[n-1]
}

// Len returns the number of analyzed lines.
func (f *File) Len() int { return len(f.conds) }

// frameFormula is the controlling condition of one conditional frame,
// including the negation of earlier branches in its chain.
func (f *File) frameFormula(fr csrc.CondFrame) Formula {
	prior := make([]cpp.PriorBranch, len(fr.Prior))
	for i, pb := range fr.Prior {
		prior[i] = cpp.PriorBranch{Kind: pb.Kind.String(), Arg: pb.Arg}
	}
	ce, err := cpp.BranchCondExpr(fr.Kind.String(), fr.Arg, prior)
	if err != nil {
		// Unparseable condition: a unique free variable keeps both branches
		// possible.
		return Symbol(fmt.Sprintf("?cond@%d", fr.Line))
	}
	return FromCondExpr(ce, f.Defined)
}

// FromCondExpr turns a symbolic #if expression into a boolean formula.
// Boolean structure (&&, ||, !, ?:) is preserved. CONFIG_* identifiers and
// defined(CONFIG_*) tests become the same configuration symbol: autoconf
// defines CONFIG_X to 1 exactly when option X is y (and CONFIG_X_MODULE
// when X is m), so "defined" and "nonzero" coincide for them. Everything
// whose truth is not derivable from configuration alone — arithmetic,
// comparisons, non-CONFIG macros, and names the file itself (re)defines —
// becomes an opaque free symbol. Opaque "defined(FOO)" and value "?FOO"
// variables are deliberately kept distinct: merging them would wrongly
// prove `#if defined(FOO) && !FOO` unsatisfiable.
func FromCondExpr(e cpp.CondExpr, fileDefined map[string]bool) Formula {
	switch n := e.(type) {
	case cpp.CondNum:
		if n.Val != 0 {
			return True
		}
		return False
	case cpp.CondDefined:
		if isConfigMacro(n.Name) && !fileDefined[n.Name] {
			return Symbol(n.Name)
		}
		return Symbol("defined(" + n.Name + ")")
	case cpp.CondIdent:
		if isConfigMacro(n.Name) && !fileDefined[n.Name] {
			return Symbol(n.Name)
		}
		return Symbol("?" + n.Name)
	case cpp.CondUnary:
		if n.Op == "!" {
			return Not(FromCondExpr(n.X, fileDefined))
		}
		if n.Op == "+" {
			return FromCondExpr(n.X, fileDefined)
		}
		return opaque(e)
	case cpp.CondBinary:
		switch n.Op {
		case "&&":
			return And(FromCondExpr(n.L, fileDefined), FromCondExpr(n.R, fileDefined))
		case "||":
			return Or(FromCondExpr(n.L, fileDefined), FromCondExpr(n.R, fileDefined))
		}
		return opaque(e)
	case cpp.CondTernary:
		c := FromCondExpr(n.C, fileDefined)
		t := FromCondExpr(n.T, fileDefined)
		fls := FromCondExpr(n.F, fileDefined)
		return Or(And(c, t), And(Not(c), fls))
	}
	return opaque(e)
}

// opaque renders a subtree the boolean layer cannot decompose into a
// deterministic free variable. Identical subtrees share one variable, which
// is sound and lets `#if X > 2` agree with itself across lines.
func opaque(e cpp.CondExpr) Formula { return Symbol("?" + e.String()) }

// isConfigMacro matches the macro spelling of configuration options.
func isConfigMacro(name string) bool { return strings.HasPrefix(name, "CONFIG_") }

// firstIdent extracts the leading identifier of a directive argument.
func firstIdent(arg string) string {
	arg = strings.TrimSpace(arg)
	for i := 0; i < len(arg); i++ {
		c := arg[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return arg[:i]
	}
	return arg
}

// Dump renders the analysis for golden-file comparison and jmake-lint: one
// line per source line that sits under a non-trivial condition, plus a
// trailing "dead:" line listing lines whose stack condition alone is
// unsatisfiable. The output is deterministic.
func (f *File) Dump() string {
	var b strings.Builder
	var dead []int
	for i, cond := range f.conds {
		if cond == True {
			continue
		}
		fmt.Fprintf(&b, "%4d: %s\n", i+1, cond.String())
		if Decide(cond) == SatNo {
			dead = append(dead, i+1)
		}
	}
	if len(dead) > 0 {
		fmt.Fprintf(&b, "dead: %s\n", joinInts(dead))
	}
	return b.String()
}

// DeadLines returns the 1-based lines whose stack condition is provably
// unsatisfiable (exact answers only).
func (f *File) DeadLines() []int {
	var dead []int
	for i, cond := range f.conds {
		if cond == True {
			continue
		}
		if Decide(cond) == SatNo {
			dead = append(dead, i+1)
		}
	}
	sort.Ints(dead)
	return dead
}

// Region is a maximal run of consecutive lines sharing one non-trivial
// presence condition. Because frames are shared, every line of a branch
// body holds the identical Formula value, so grouping by equality yields
// exactly the preprocessor's block structure. Directive lines themselves
// (#if/#endif) carry the enclosing condition and are not part of the
// region they delimit.
type Region struct {
	Start, End int // 1-based inclusive line range
	Cond       Formula
}

// Regions returns the file's conditional blocks in line order: one Region
// per maximal run of lines whose condition is identical and not True.
func (f *File) Regions() []Region {
	var regs []Region
	for i := 0; i < len(f.conds); i++ {
		cond := f.conds[i]
		if cond == True {
			continue
		}
		j := i
		for j+1 < len(f.conds) && f.conds[j+1] == cond {
			j++
		}
		regs = append(regs, Region{Start: i + 1, End: j + 1, Cond: cond})
		i = j
	}
	return regs
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, " ")
}
