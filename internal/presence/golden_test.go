package presence

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenCorpus pins the analysis output over examples/presence: every
// .c file under src/ has a golden Dump in golden/<name>.txt. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/presence/ after an intentional
// format or analysis change.
func TestGoldenCorpus(t *testing.T) {
	srcDir := filepath.Join("..", "..", "examples", "presence", "src", "drivers")
	goldenDir := filepath.Join("..", "..", "examples", "presence", "golden")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("corpus missing: %v", err)
	}
	update := os.Getenv("UPDATE_GOLDEN") != ""

	seen := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".c") {
			continue
		}
		seen++
		content, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got := Analyze("drivers/"+e.Name(), string(content)).Dump()
		goldenPath := filepath.Join(goldenDir, e.Name()+".txt")
		if update {
			if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("%s: missing golden (run with UPDATE_GOLDEN=1): %v", e.Name(), err)
		}
		if got != string(want) {
			t.Errorf("%s: analysis drifted from golden\n--- got ---\n%s--- want ---\n%s",
				e.Name(), got, want)
		}
	}
	if seen < 5 {
		t.Errorf("corpus has only %d .c files, want the full set", seen)
	}
}

// The corpus must contain a provably dead region (the acceptance case
// "unsatisfiable #if 0") — guard against the corpus degrading.
func TestGoldenCorpusHasDeadLines(t *testing.T) {
	content, err := os.ReadFile(filepath.Join("..", "..", "examples", "presence", "src", "drivers", "ifzero.c"))
	if err != nil {
		t.Fatal(err)
	}
	f := Analyze("drivers/ifzero.c", string(content))
	if len(f.DeadLines()) == 0 {
		t.Error("ifzero.c has no provably dead lines")
	}
}
