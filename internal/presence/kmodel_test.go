package presence

import (
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
)

func parseKconfig(t *testing.T, content string) *kconfig.Tree {
	t.Helper()
	tr := fstree.New()
	tr.Write("Kconfig", content)
	kt, err := kconfig.Parse(kbuild.TreeSource{T: tr}, "Kconfig")
	if err != nil {
		t.Fatal(err)
	}
	return kt
}

// TestDependsFormulasTristateFold pins the tristate abstraction: a
// tristate dependency contributes different formulas for "enabled at all"
// (y or m) and "at y", negation swaps the thresholds (Kconfig's y - v),
// and the constant m is enabled but never y.
func TestDependsFormulasTristateFold(t *testing.T) {
	kt := parseKconfig(t, `
config A
	tristate "a"

config B
	bool "b"

config P_SYM
	bool "p"
	depends on A

config P_NOT
	bool "p"
	depends on !A

config P_M
	bool "p"
	depends on m

config P_MIX
	bool "p"
	depends on A && B
`)
	probe := func(name string) (string, string) {
		t.Helper()
		s := kt.Symbol(name)
		if s == nil || s.DependsOn == nil {
			t.Fatalf("probe %s missing depends", name)
		}
		en, yes := DependsFormulas(kt, s.DependsOn)
		return en.String(), yes.String()
	}

	if en, yes := probe("P_SYM"); en != "(CONFIG_A || CONFIG_A_MODULE)" || yes != "CONFIG_A" {
		t.Errorf("tristate A folds to enabled=%s isYes=%s", en, yes)
	}
	// y - A: != n iff A != y; == y iff A == n.
	if en, yes := probe("P_NOT"); en != "!CONFIG_A" || yes != "!(CONFIG_A || CONFIG_A_MODULE)" {
		t.Errorf("!A folds to enabled=%s isYes=%s", en, yes)
	}
	if en, yes := probe("P_M"); en != "true" || yes != "false" {
		t.Errorf("constant m folds to enabled=%s isYes=%s", en, yes)
	}
	if en, yes := probe("P_MIX"); en != "((CONFIG_A || CONFIG_A_MODULE) && CONFIG_B)" || yes != "(CONFIG_A && CONFIG_B)" {
		t.Errorf("A && B folds to enabled=%s isYes=%s", en, yes)
	}
}

// TestKconfigConstraintsMvsY is the m-versus-y distinction end to end: a
// tristate capped at m by its dependency can never reach y, so its y
// variable is unsatisfiable while its _MODULE variable stays free.
func TestKconfigConstraintsMvsY(t *testing.T) {
	kt := parseKconfig(t, `
config CAPPED
	tristate "never above m"
	depends on m
`)
	selects := kt.SelectTargets()

	y := Symbol("CONFIG_CAPPED")
	if got := Decide(And(y, KconfigConstraints(kt, selects, y))); got != SatNo {
		t.Errorf("CONFIG_CAPPED=y decide = %v, want SatNo", got)
	}
	m := Symbol("CONFIG_CAPPED_MODULE")
	if got := Decide(And(m, KconfigConstraints(kt, selects, m))); got != SatYes {
		t.Errorf("CONFIG_CAPPED=m decide = %v, want SatYes", got)
	}
}

// TestSymbolEnabledShapes pins SymbolEnabled per type: tristates may be y
// or m, bools only y, undeclared symbols are constant false.
func TestSymbolEnabledShapes(t *testing.T) {
	kt := parseKconfig(t, `
config A
	tristate "a"

config B
	bool "b"
`)
	if got := SymbolEnabled(kt, "A").String(); got != "(CONFIG_A || CONFIG_A_MODULE)" {
		t.Errorf("tristate enabled = %s", got)
	}
	if got := SymbolEnabled(kt, "B").String(); got != "CONFIG_B" {
		t.Errorf("bool enabled = %s", got)
	}
	if got := SymbolEnabled(kt, "NO_SUCH"); got != False {
		t.Errorf("undeclared enabled = %v, want False", got)
	}
}
