package cliopts

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jmake"
)

// TestCheckFlagNames pins the shared flag surface: these are the exact
// names both CLIs exposed before extraction, so renaming any of them is a
// breaking change to scripts and to the jmaked request schema alike.
func TestCheckFlagNames(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var (
		ws    Workspace
		chk   Check
		cache Cache
		tro   Trace
	)
	ws.Register(fs, 0.4, 0.05)
	chk.Register(fs)
	cache.Register(fs)
	tro.Register(fs)
	for _, name := range []string{
		"tree-seed", "history-seed", "tree-scale", "commit-scale",
		"allmod", "prescan", "coverage", "static",
		"fault-rate", "fault-seed", "budget", "retries",
		"cache-dir", "cache-max-bytes", "no-result-cache", "cache-stats",
		"trace-out", "trace-tree",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if got := fs.Lookup("tree-scale").DefValue; got != "0.4" {
		t.Errorf("tree-scale default = %s, want the caller's 0.4", got)
	}
}

// TestCheckOptions verifies the flag → checker-options translation,
// including the fault-plan gate and the zero-seed fallback for JSON
// requests that omit fault_seed.
func TestCheckOptions(t *testing.T) {
	opts := Check{AllMod: true, Static: true, Retries: 3, Budget: time.Second}.Options()
	if !opts.TryAllModConfig || !opts.StaticPresence || opts.MaxRetries != 3 || opts.Budget != time.Second {
		t.Errorf("options not translated: %+v", opts)
	}
	if opts.Faults.Enabled() {
		t.Error("fault plan enabled without fault-rate")
	}
	opts = Check{FaultRate: 0.5}.Options()
	if !opts.Faults.Enabled() {
		t.Fatal("fault plan not enabled at rate 0.5")
	}
	if opts.Faults != jmake.UniformFaultPlan(1, 0.5) {
		t.Errorf("zero fault seed did not fall back to the CLI default of 1: %+v", opts.Faults)
	}
}

// TestCheckJSONSchema: the Check struct IS the daemon's request-options
// schema; pin the wire names so a field rename cannot silently break
// clients.
func TestCheckJSONSchema(t *testing.T) {
	data, err := json.Marshal(Check{
		AllMod: true, Prescan: true, Coverage: true, Static: true,
		FaultRate: 0.25, FaultSeed: 7, Budget: 90 * time.Second, Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"allmod", "prescan", "coverage", "static",
		"fault_rate", "fault_seed", "budget_ns", "retries"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON key %q missing: %s", key, data)
		}
	}
	if m["budget_ns"] != float64(90*time.Second) {
		t.Errorf("budget_ns = %v, want nanoseconds", m["budget_ns"])
	}
	var back Check
	if err := json.Unmarshal([]byte(`{"static":true,"budget_ns":1000}`), &back); err != nil {
		t.Fatal(err)
	}
	if !back.Static || back.Budget != 1000 {
		t.Errorf("round-trip failed: %+v", back)
	}
}

// TestWorkspaceBuildAndSession builds a tiny workspace end to end and
// checks target selection windows.
func TestWorkspaceBuildAndSession(t *testing.T) {
	built, err := Workspace{TreeSeed: 1, HistorySeed: 2, TreeScale: 0.12, CommitScale: 0.008}.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(built.WindowIDs) == 0 {
		t.Fatal("empty patch window")
	}
	if got := built.Targets("abc", 5); len(got) != 1 || got[0] != "abc" {
		t.Errorf("Targets(commit) = %v", got)
	}
	if got := built.Targets("", 3); len(got) != 3 || got[2] != built.WindowIDs[len(built.WindowIDs)-1] {
		t.Errorf("Targets(n=3) = %v", got)
	}
	if got := built.Targets("", len(built.WindowIDs)+10); len(got) != len(built.WindowIDs) {
		t.Errorf("oversized n returned %d targets", len(got))
	}
	session, err := built.SessionAt(built.WindowIDs[0])
	if err != nil {
		t.Fatalf("SessionAt: %v", err)
	}

	// Cache wiring: disabled wins over dir; dir warm-starts into the
	// session registry and flushes back out.
	Cache{Disable: true, Dir: t.TempDir()}.Apply(session)
	if session.ResultCache() != nil {
		t.Error("Disable did not clear the result cache")
	}
	dir := t.TempDir()
	c := Cache{Dir: dir}
	c.Apply(session)
	if session.ResultCache() == nil {
		t.Fatal("cache dir did not install a result cache")
	}
	if err := c.Flush(session); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "jmake-ccache.json")); err != nil {
		t.Errorf("flush wrote nothing: %v", err)
	}
	if err := (Cache{}).Flush(session); err != nil {
		t.Errorf("no-dir Flush should be a no-op: %v", err)
	}
}
