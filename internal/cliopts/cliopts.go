// Package cliopts is the flag surface shared by the jmake command-line
// tools (cmd/jmake, cmd/jmake-eval) and the jmaked service. Before it
// existed, the two CLIs carried ~23 duplicated flag definitions that had
// already started to drift (one had -cache-max-bytes, the other
// -cache-stats); the daemon would have made a third copy. Each option
// group here registers its flags once and builds the corresponding
// runtime objects, and the Check group doubles — via its JSON tags — as
// the jmaked request-options schema, so a flag added for the CLI is
// automatically requestable over HTTP.
package cliopts

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jmake"
	"jmake/internal/ccache"
)

// Workspace selects the generated evaluation substrate: which
// kernel-shaped tree and commit history the tool runs against.
type Workspace struct {
	TreeSeed    int64
	HistorySeed int64
	TreeScale   float64
	CommitScale float64
}

// Register binds the workspace flags. Scale defaults differ per tool
// (jmake favors a small interactive workspace, jmake-eval the paper's
// full scale), so the caller passes them in.
func (w *Workspace) Register(fs *flag.FlagSet, treeScale, commitScale float64) {
	fs.Int64Var(&w.TreeSeed, "tree-seed", 1, "kernel tree generation seed")
	fs.Int64Var(&w.HistorySeed, "history-seed", 2, "history generation seed")
	fs.Float64Var(&w.TreeScale, "tree-scale", treeScale, "kernel tree size multiplier")
	fs.Float64Var(&w.CommitScale, "commit-scale", commitScale, "history size multiplier (1.0 = 12,946 window commits)")
}

// Built is a generated workspace ready for checking: the tree, its
// history, and the v4.3→v4.4 patch window.
type Built struct {
	Tree      *jmake.Tree
	Manifest  *jmake.Manifest
	Hist      *jmake.History
	WindowIDs []string
}

// Build generates the tree and history and resolves the patch window.
func (w Workspace) Build() (*Built, error) {
	tree, man, err := jmake.GenerateKernel(w.TreeSeed, w.TreeScale)
	if err != nil {
		return nil, err
	}
	hist, err := jmake.SynthesizeHistory(tree, man, w.HistorySeed, w.CommitScale)
	if err != nil {
		return nil, err
	}
	ids, err := hist.Repo.Between("v4.3", "v4.4", jmake.ModifyingNonMerge)
	if err != nil {
		return nil, err
	}
	return &Built{Tree: tree, Manifest: man, Hist: hist, WindowIDs: ids}, nil
}

// Targets selects the commits to check: one specific commit when set,
// otherwise the latest n window commits.
func (b *Built) Targets(commit string, n int) []string {
	if commit != "" {
		return []string{commit}
	}
	start := len(b.WindowIDs) - n
	if start < 0 {
		start = 0
	}
	return b.WindowIDs[start:]
}

// SessionAt checks out the snapshot for id and opens a Session over it,
// the shared state for checking many commits of this workspace.
func (b *Built) SessionAt(id string) (*jmake.Session, error) {
	base, err := b.Hist.Repo.CheckoutTree(id)
	if err != nil {
		return nil, err
	}
	return jmake.NewSession(base)
}

// Check is the per-check option group. Its JSON tags make it the jmaked
// request-options schema: the same struct parsed from flags on the CLI
// arrives as the "options" object of a /check request, so the two paths
// cannot drift apart.
type Check struct {
	AllMod    bool          `json:"allmod,omitempty"`
	Prescan   bool          `json:"prescan,omitempty"`
	Coverage  bool          `json:"coverage,omitempty"`
	Static    bool          `json:"static,omitempty"`
	FaultRate float64       `json:"fault_rate,omitempty"`
	FaultSeed uint64        `json:"fault_seed,omitempty"`
	Budget    time.Duration `json:"budget_ns,omitempty"`
	Retries   int           `json:"retries,omitempty"`
}

// Register binds the check flags.
func (c *Check) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.AllMod, "allmod", false, "also try allmodconfig (covers #ifdef MODULE, ~2x configurations)")
	fs.BoolVar(&c.Prescan, "prescan", false, "statically warn about doomed regions before building")
	fs.BoolVar(&c.Coverage, "coverage", false, "synthesize targeted configurations for regions standard configs miss")
	fs.BoolVar(&c.Static, "static", false, "prove dead lines before building and cross-check predictions against .i witnesses")
	fs.Float64Var(&c.FaultRate, "fault-rate", 0, "inject deterministic faults at this per-operation rate (0 = off)")
	fs.Uint64Var(&c.FaultSeed, "fault-seed", 1, "fault-plan seed (with -fault-rate)")
	fs.DurationVar(&c.Budget, "budget", 0, "per-patch virtual-time budget (0 = unlimited)")
	fs.IntVar(&c.Retries, "retries", 0, "max retries per transient failure (0 = default 2, negative = off)")
}

// Options translates the group into checker options. A zero FaultSeed
// (JSON requests omit it) falls back to the CLI flag default of 1.
func (c Check) Options() jmake.Options {
	opts := jmake.Options{
		TryAllModConfig: c.AllMod,
		Prescan:         c.Prescan,
		CoverageConfigs: c.Coverage,
		StaticPresence:  c.Static,
		MaxRetries:      c.Retries,
		Budget:          c.Budget,
	}
	if c.FaultRate > 0 {
		seed := c.FaultSeed
		if seed == 0 {
			seed = 1
		}
		opts.Faults = jmake.UniformFaultPlan(seed, c.FaultRate)
	}
	return opts
}

// Cache is the compile-result-cache option group.
type Cache struct {
	Dir      string
	MaxBytes int64
	Disable  bool
	Stats    bool
}

// Register binds the cache flags.
func (c *Cache) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Dir, "cache-dir", "", "persist the compile-result cache here across runs (warm-start + save back)")
	fs.Int64Var(&c.MaxBytes, "cache-max-bytes", 0, "persistent result-cache size bound (0 = 64 MiB)")
	fs.BoolVar(&c.Disable, "no-result-cache", false, "disable the shared compile-result cache (identical verdicts, more compute)")
	fs.BoolVar(&c.Stats, "cache-stats", false, "print result-cache counters after checking")
}

// Apply configures the session's result cache per the flags: disabled,
// the default in-memory cache, or warm-started from Dir with persistence
// failures counted in the session's metrics registry.
func (c Cache) Apply(session *jmake.Session) {
	switch {
	case c.Disable:
		session.SetResultCache(nil)
	case c.Dir != "":
		rc := ccache.NewIn(session.Metrics())
		rc.Load(c.Dir) // best-effort warm start; corrupt = cold
		session.SetResultCache(rc)
	}
}

// Flush persists the result cache back to Dir; a no-op without -cache-dir
// or with the cache disabled.
func (c Cache) Flush(session *jmake.Session) error {
	if c.Disable || c.Dir == "" || session.ResultCache() == nil {
		return nil
	}
	return session.ResultCache().Save(c.Dir, c.MaxBytes)
}

// PrintStats writes the human cache-counter line when -cache-stats is on.
func (c Cache) PrintStats(w io.Writer, session *jmake.Session) {
	st, ok := session.ResultCacheStats()
	if !ok || !c.Stats {
		return
	}
	fmt.Fprintf(w, "result cache: make.i %d/%d hits (%d deduped), make.o %d/%d hits, %d entries, saved %v virtual\n",
		st.MakeI.Hits, st.MakeI.Hits+st.MakeI.Misses, st.MakeI.Deduped,
		st.MakeO.Hits, st.MakeO.Hits+st.MakeO.Misses,
		st.Entries, st.SavedVirtual.Round(time.Millisecond))
}

// Trace is the trace-export option group.
type Trace struct {
	Out  string
	Tree string
}

// Register binds the trace flags.
func (t *Trace) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.Out, "trace-out", "", "write a Chrome trace-event JSON file of the run's virtual-time spans")
	fs.StringVar(&t.Tree, "trace-tree", "", "write the run's virtual-time spans as an indented text tree")
}

// Enabled reports whether any trace output was requested.
func (t Trace) Enabled() bool { return t.Out != "" || t.Tree != "" }

// WriteFiles writes the requested artifacts (chrome is the trace-event
// JSON, treeText the indented tree), noting each file on note.
func (t Trace) WriteFiles(chrome []byte, treeText string, note io.Writer) error {
	if t.Out != "" {
		if err := os.WriteFile(t.Out, chrome, 0o644); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(note, "wrote Chrome trace to %s\n", t.Out)
	}
	if t.Tree != "" {
		if err := os.WriteFile(t.Tree, []byte(treeText), 0o644); err != nil {
			return fmt.Errorf("writing trace tree: %w", err)
		}
		fmt.Fprintf(note, "wrote span tree to %s\n", t.Tree)
	}
	return nil
}
