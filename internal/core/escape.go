package core

import (
	"strings"

	"jmake/internal/csrc"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
)

// classifyEscapes diagnoses why each uncovered mutation never reached the
// compiler, reproducing the taxonomy of Table IV mechanically: the
// enclosing conditional stack of the changed line is re-examined against
// the Kconfig database and the host allyesconfig valuation.
func (c *Checker) classifyEscapes(fs *fileState) []Escape {
	content, err := c.tree.Read(fs.path)
	if err != nil {
		return nil
	}
	f := csrc.Analyze(content)

	// Host-architecture Kconfig knowledge.
	var kt *kconfig.Tree
	var allyes *kconfig.Config
	if arch, ok := c.arches[kbuild.HostArch]; ok {
		if ktree, kerr := c.configs.KconfigTree(c.tree, arch); kerr == nil {
			kt = ktree
			if cfg, _, cerr := c.configs.Get(c.tree, arch, ConfigChoice{Kind: ConfigAllYes}, nil); cerr == nil {
				allyes = cfg
			}
		}
	}

	var out []Escape
	for _, m := range fs.pending() {
		if m.dead {
			continue // reported as statically dead, not as an escape
		}
		reason := c.classifyOne(f, fs, m, kt, allyes)
		out = append(out, Escape{Mutation: m.mut, Reason: reason})
	}
	return out
}

func (c *Checker) classifyOne(f *csrc.File, fs *fileState, m *mutEntry, kt *kconfig.Tree, allyes *kconfig.Config) EscapeReason {
	li, ok := f.LineAt(m.mut.Line)
	if !ok {
		return EscapeOther
	}

	// An unconditional macro definition whose mutation never surfaced means
	// no compiled code expands the macro. If the file does reference the
	// macro, the reference itself must sit in dead code; keep the verdict
	// only when no use exists at all (this also keeps the §VII prescan from
	// flagging macros that are plainly used).
	if m.mut.Kind == "define" && len(li.Conds) == 0 {
		if !macroUsedInFile(f, li.MacroName, li.MacroStart) {
			return EscapeUnusedMacro
		}
		return EscapeOther
	}

	// Walk enclosing conditionals innermost-first; the innermost frame that
	// explains exclusion wins.
	for i := len(li.Conds) - 1; i >= 0; i-- {
		fr := li.Conds[i]
		if r, found := c.classifyFrame(f, fs, fr); found {
			return r
		}
	}
	if m.mut.Kind == "define" {
		return EscapeUnusedMacro
	}
	return EscapeOther
}

func (c *Checker) classifyFrame(f *csrc.File, fs *fileState, fr csrc.CondFrame) (EscapeReason, bool) {
	arg := strings.TrimSpace(fr.Arg)
	switch fr.Kind {
	case csrc.CondIf:
		if arg == "0" {
			return EscapeIfZero, true
		}
		return c.classifyExprFrame(f, fs, fr, arg, false)
	case csrc.CondIfdef:
		return c.classifyVarFrame(f, fs, fr, arg, false)
	case csrc.CondIfndef:
		return c.classifyVarFrame(f, fs, fr, arg, true)
	case csrc.CondElse:
		if len(fr.Prior) > 0 {
			// The region requires every earlier branch of the chain false;
			// examine them all, not just the opening one.
			return c.classifyPriorBranches(f, fs, fr)
		}
		if fr.OpenKind == csrc.CondIf && strings.TrimSpace(fr.Arg) == "0" {
			return EscapeOther, false // #else of #if 0 is compiled; not the reason
		}
		negated := fr.OpenKind != csrc.CondIfndef
		return c.classifyVarFrame(f, fs, fr, arg, negated)
	case csrc.CondElif:
		// The branch's own expression can explain the miss, or any earlier
		// branch the chain negates can: an #elif is not evaluated in
		// isolation.
		if r, found := c.classifyExprFrame(f, fs, fr, arg, false); found {
			return r, true
		}
		return c.classifyPriorBranches(f, fs, fr)
	}
	return EscapeOther, false
}

// classifyPriorBranches explains exclusion through the negated earlier
// branches of an #elif/#else frame: the region requires every prior branch
// false, so a prior branch that allyesconfig satisfies explains the miss.
func (c *Checker) classifyPriorBranches(f *csrc.File, fs *fileState, fr csrc.CondFrame) (EscapeReason, bool) {
	for _, pb := range fr.Prior {
		arg := strings.TrimSpace(pb.Arg)
		switch pb.Kind {
		case csrc.CondIfdef:
			if r, found := c.classifyVarFrame(f, fs, fr, arg, true); found {
				return r, true
			}
		case csrc.CondIfndef:
			if r, found := c.classifyVarFrame(f, fs, fr, arg, false); found {
				return r, true
			}
		case csrc.CondIf, csrc.CondElif:
			if arg == "0" {
				continue // a never-taken branch excludes nothing
			}
			if c.allyesSatisfies(arg) {
				return EscapeIfndefOrElse, true
			}
		}
	}
	return EscapeOther, false
}

// allyesSatisfies coarsely reports whether allyesconfig satisfies a branch
// expression: it mentions CONFIG variables, negates nothing, and every
// mentioned variable is declared and on. Good enough for Table IV
// bucketing; anything subtler falls through to EscapeOther.
func (c *Checker) allyesSatisfies(expr string) bool {
	if strings.Contains(expr, "!") || !strings.Contains(expr, "CONFIG_") {
		return false
	}
	names := configVarsIn(expr)
	if len(names) == 0 {
		return false
	}
	for _, name := range names {
		declared, value := c.symbolInfo(name)
		if !declared || value == kconfig.No {
			return false
		}
	}
	return true
}

// classifyVarFrame handles a frame controlled by a single variable.
// negated means the region is active when the variable is UNdefined.
func (c *Checker) classifyVarFrame(f *csrc.File, fs *fileState, fr csrc.CondFrame, varName string, negated bool) (EscapeReason, bool) {
	if varName == "MODULE" {
		if negated {
			return EscapeOther, false // #ifndef MODULE is active in allyes builds
		}
		return EscapeIfdefModule, true
	}
	name, isConfig := strings.CutPrefix(varName, "CONFIG_")
	if !isConfig {
		// A plain (non-CONFIG) guard: if it is defined by the compiler or
		// headers the region would be active; treat an unexplained miss
		// conservatively.
		return EscapeOther, false
	}
	declared, value := c.symbolInfo(name)
	if negated {
		// #ifndef CONFIG_X (or #else of #ifdef): excluded when X is set.
		if declared && value != kconfig.No {
			if c.siblingChanged(f, fs, fr) {
				return EscapeBothBranches, true
			}
			return EscapeIfndefOrElse, true
		}
		return EscapeOther, false
	}
	// #ifdef CONFIG_X: excluded when X is off.
	if !declared {
		return EscapeIfdefNeverSet, true
	}
	if value == kconfig.No {
		if c.siblingChanged(f, fs, fr) {
			return EscapeBothBranches, true
		}
		return EscapeIfdefNotAllyes, true
	}
	return EscapeOther, false
}

// classifyExprFrame handles #if/#elif with a general expression by
// examining the CONFIG variables it mentions.
func (c *Checker) classifyExprFrame(f *csrc.File, fs *fileState, fr csrc.CondFrame, expr string, negated bool) (EscapeReason, bool) {
	if strings.Contains(expr, "MODULE") && !strings.Contains(expr, "CONFIG_") {
		return EscapeIfdefModule, true
	}
	rest := expr
	sawDeclaredOff := false
	sawUndeclared := false
	for {
		i := strings.Index(rest, "CONFIG_")
		if i < 0 {
			break
		}
		rest = rest[i+len("CONFIG_"):]
		j := 0
		for j < len(rest) && (rest[j] == '_' || rest[j] >= 'A' && rest[j] <= 'Z' ||
			rest[j] >= '0' && rest[j] <= '9' || rest[j] >= 'a' && rest[j] <= 'z') {
			j++
		}
		declared, value := c.symbolInfo(rest[:j])
		if !declared {
			sawUndeclared = true
		} else if value == kconfig.No {
			sawDeclaredOff = true
		}
		rest = rest[j:]
	}
	switch {
	case sawUndeclared:
		return EscapeIfdefNeverSet, true
	case sawDeclaredOff:
		if c.siblingChanged(f, fs, fr) {
			return EscapeBothBranches, true
		}
		return EscapeIfdefNotAllyes, true
	}
	_ = negated
	return EscapeOther, false
}

// macroUsedInFile reports whether name occurs as a token outside its own
// definition (starting at defStart).
func macroUsedInFile(f *csrc.File, name string, defStart int) bool {
	if name == "" {
		return false
	}
	for _, li := range f.Lines {
		if li.InMacroDef && li.MacroStart == defStart {
			continue
		}
		text := li.Text
		for {
			i := strings.Index(text, name)
			if i < 0 {
				break
			}
			beforeOK := i == 0 || !isIdentByte(text[i-1])
			after := i + len(name)
			afterOK := after >= len(text) || !isIdentByte(text[after])
			if beforeOK && afterOK {
				return true
			}
			text = text[i+len(name):]
		}
	}
	return false
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// symbolInfo reports whether a Kconfig symbol is declared anywhere and its
// host-allyesconfig value.
func (c *Checker) symbolInfo(name string) (declared bool, value kconfig.Value) {
	arch, ok := c.arches[kbuild.HostArch]
	if !ok {
		return false, kconfig.No
	}
	kt, err := c.configs.KconfigTree(c.tree, arch)
	if err != nil {
		return false, kconfig.No
	}
	sym := kt.Symbol(name)
	if sym == nil {
		// Not in the host tree; another architecture may declare it (that is
		// precisely the cross-arch case). Check the others before concluding
		// "never set in the kernel".
		for _, a := range c.arches {
			if a.Name == kbuild.HostArch {
				continue
			}
			if akt, aerr := c.configs.KconfigTree(c.tree, a); aerr == nil && akt.Symbol(name) != nil {
				return true, kconfig.No // declared elsewhere, off here
			}
		}
		return false, kconfig.No
	}
	cfg, _, err := c.configs.Get(c.tree, arch, ConfigChoice{Kind: ConfigAllYes}, nil)
	if err != nil {
		return true, kconfig.No
	}
	return true, cfg.Value(name)
}

// siblingChanged reports whether the patch also changed the opposite
// branch of fr's conditional — the "change under both #ifdef and #else"
// case of Table IV, which no single configuration can cover.
func (c *Checker) siblingChanged(f *csrc.File, fs *fileState, fr csrc.CondFrame) bool {
	for _, m := range fs.muts {
		li, ok := f.LineAt(m.mut.Line)
		if !ok || len(li.Conds) == 0 {
			continue
		}
		top := li.Conds[len(li.Conds)-1]
		if top.Line == fr.Line {
			continue // same branch
		}
		// Same controlling variable, different branch kind.
		if strings.TrimSpace(top.Arg) == strings.TrimSpace(fr.Arg) && top.Kind != fr.Kind {
			return true
		}
	}
	return false
}
