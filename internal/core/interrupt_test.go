package core

import (
	"reflect"
	"testing"
)

// TestInterruptImmediate: an interrupt that is already pending when the
// check starts must stop the pipeline at the first stage boundary and
// finalize every unfinished file as canceled — never as certified, and
// never with escapes the checker did not diagnose.
func TestInterruptImmediate(t *testing.T) {
	tr, fds := chaosEdits(t)
	r := chaosRun(t, tr, fds, Options{Interrupt: func() bool { return true }})
	if !r.Interrupted {
		t.Fatal("report not marked Interrupted")
	}
	sawCanceled := false
	for _, f := range r.Files {
		switch f.Status {
		case StatusCanceled:
			sawCanceled = true
		case StatusCertified:
			t.Errorf("%s certified under an immediate interrupt", f.Path)
		case StatusEscapes:
			// EscapedLines (the raw unwitnessed set) is expected on a
			// canceled file, but claiming a *diagnosed* escape without
			// having compiled anything would be a lie.
			t.Errorf("%s reports diagnosed escapes under an immediate interrupt", f.Path)
		}
	}
	if !sawCanceled {
		t.Errorf("no file finalized canceled: %+v", r.Files)
	}
}

// TestInterruptPartial sweeps the trip point across every poll count and
// asserts the certification safety invariant at each: whatever boundary
// the interrupt lands on, a certified file has all mutations found and no
// escapes, and a tripped run is always marked Interrupted.
func TestInterruptPartial(t *testing.T) {
	// First measure how often a full run polls.
	polls := 0
	tr, fds := chaosEdits(t)
	full := chaosRun(t, tr, fds, Options{Interrupt: func() bool { polls++; return false }})
	if !full.Certified() {
		t.Fatalf("fixture patch should certify with a non-firing interrupt: %+v", full.Files)
	}
	if full.Interrupted {
		t.Fatal("non-firing interrupt marked the report Interrupted")
	}
	if polls == 0 {
		t.Fatal("Interrupt was never polled; stage boundaries are not wired")
	}

	for trip := 1; trip <= polls; trip++ {
		n := 0
		tr, fds := chaosEdits(t)
		r := chaosRun(t, tr, fds, Options{Interrupt: func() bool { n++; return n >= trip }})
		if !r.Interrupted {
			t.Fatalf("trip %d: report not marked Interrupted", trip)
		}
		for _, f := range r.Files {
			if f.Status == StatusCertified {
				if f.FoundMutations != f.Mutations {
					t.Errorf("trip %d: %s certified with %d/%d mutations",
						trip, f.Path, f.FoundMutations, f.Mutations)
				}
				if len(f.EscapedLines) != 0 {
					t.Errorf("trip %d: %s certified with escapes %v",
						trip, f.Path, f.EscapedLines)
				}
			}
		}
	}
}

// TestInterruptNilIsNoop: leaving Interrupt unset (or never firing) must
// not perturb the report in any way — the deterministic evaluation path
// depends on this.
func TestInterruptNilIsNoop(t *testing.T) {
	tr, fds := chaosEdits(t)
	base := chaosRun(t, tr, fds, Options{})
	tr2, fds2 := chaosEdits(t)
	quiet := chaosRun(t, tr2, fds2, Options{Interrupt: func() bool { return false }})
	if !reflect.DeepEqual(base, quiet) {
		t.Fatalf("non-firing interrupt changed the report:\nbase  %+v\nquiet %+v", base, quiet)
	}
}
