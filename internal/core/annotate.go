package core

import (
	"fmt"
	"sort"
	"strings"

	"jmake/internal/fstree"
	"jmake/internal/textdiff"
)

// Annotate renders a patch with per-line verdicts from a completed check:
// every added line is marked as witnessed by the compiler, escaped (with
// the Table IV diagnosis), or irrelevant (comments). This is the
// human-facing answer JMake exists to give a janitor.
//
//	+✓ compiled    the compiler saw this line in a successful build
//	+✗ ESCAPED     no tried configuration compiled this line
//	+·             comment or blank: nothing for the compiler to see
func Annotate(fds []textdiff.FileDiff, report *PatchReport) string {
	var b strings.Builder
	for _, fd := range fds {
		fo := outcomeFor(report, fstree.Clean(fd.NewPath))
		if fo == nil {
			continue
		}
		fmt.Fprintf(&b, "--- %s (%s)\n", fo.Path, fo.Status)
		covered := toSet(fo.CoveredLines)
		escaped := toSet(fo.EscapedLines)
		reasons := escapeReasonsByLine(fo)

		for _, h := range fd.Hunks {
			fmt.Fprintf(&b, "@@ -%d,%d +%d,%d @@\n", h.OldStart, h.OldCount, h.NewStart, h.NewCount)
			newLine := h.NewStart
			if h.NewCount == 0 {
				newLine = h.NewStart + 1
			}
			for _, l := range h.Lines {
				switch l.Op {
				case ' ':
					fmt.Fprintf(&b, "   %s\n", l.Text)
					newLine++
				case '-':
					fmt.Fprintf(&b, "-  %s\n", l.Text)
				case '+':
					marker := annotationFor(newLine, covered, escaped, fo)
					fmt.Fprintf(&b, "+%s %s", marker, l.Text)
					if r, ok := reasons[newLine]; ok {
						fmt.Fprintf(&b, "   <-- %s", r)
					}
					b.WriteByte('\n')
					newLine++
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func outcomeFor(report *PatchReport, path string) *FileOutcome {
	for i := range report.Files {
		if report.Files[i].Path == path {
			return &report.Files[i]
		}
	}
	return nil
}

func toSet(xs []int) map[int]bool {
	out := make(map[int]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}

// escapeReasonsByLine maps each escaped line to its diagnosis text.
func escapeReasonsByLine(fo *FileOutcome) map[int]string {
	out := make(map[int]string)
	for _, e := range fo.Escapes {
		for _, n := range e.Mutation.CoversLines {
			out[n] = "ESCAPED: " + e.Reason.String()
		}
	}
	return out
}

// annotationFor picks the marker for one added line. A line tracked by a
// covered mutation is ✓; by an uncovered one ✗; untracked lines are
// comments or blanks (·) unless the whole file failed to build (?).
func annotationFor(line int, covered, escaped map[int]bool, fo *FileOutcome) string {
	switch {
	case covered[line]:
		return "✓"
	case escaped[line]:
		return "✗"
	case fo.Status == StatusBuildFailed || fo.Status == StatusUnsupportedArch ||
		fo.Status == StatusSetupFile || fo.Status == StatusNoMakefile:
		return "?"
	default:
		return "·"
	}
}

// CoverageRatio summarizes an annotation: witnessed lines over
// compiler-relevant changed lines (comment-only lines excluded).
func CoverageRatio(report *PatchReport) (covered, relevant int) {
	for _, fo := range report.Files {
		covered += len(dedupInts(fo.CoveredLines))
		relevant += len(dedupInts(fo.CoveredLines)) + len(dedupInts(fo.EscapedLines))
	}
	return covered, relevant
}

func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := make([]int, 0, len(xs))
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i, x := range sorted {
		if i == 0 || sorted[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}
