package core

import (
	"strings"
	"testing"

	"jmake/internal/textdiff"
	"jmake/internal/vclock"
)

// moduleEscapeEdit inserts a MODULE-guarded change into moddrv.c.
func moduleEscapeEdit(t *testing.T, tr interface {
	Read(string) (string, error)
	Write(string, string)
}) textdiff.FileDiff {
	t.Helper()
	old, err := tr.Read("drivers/net/moddrv.c")
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(old, "\treturn 0;",
		"#ifdef MODULE\n\tprintk(\"modular path\");\n#endif\n\treturn 0;", 1)
	fd, changed := textdiff.Diff("drivers/net/moddrv.c", "drivers/net/moddrv.c", old, edited)
	if !changed {
		t.Fatal("no change")
	}
	tr.Write("drivers/net/moddrv.c", edited)
	return fd
}

// The paper's §V-B proposal: allmodconfig covers #ifdef MODULE regions.
func TestAllModConfigRecoversModuleEscape(t *testing.T) {
	// Without the option: escapes.
	tr1 := fixtureTree()
	fd1 := moduleEscapeEdit(t, tr1)
	report1 := checkOne(t, tr1, fd1)
	f1 := findFile(t, report1, "drivers/net/moddrv.c")
	if f1.Status != StatusEscapes {
		t.Fatalf("baseline: status = %v, want escapes", f1.Status)
	}

	// With TryAllModConfig: certified via allmodconfig.
	tr2 := fixtureTree()
	fd2 := moduleEscapeEdit(t, tr2)
	ch, err := NewChecker(tr2, vclock.DefaultModel(1), nil, Options{TryAllModConfig: true})
	if err != nil {
		t.Fatal(err)
	}
	report2, err := ch.CheckPatch("allmod", []textdiff.FileDiff{fd2})
	if err != nil {
		t.Fatal(err)
	}
	f2 := findFile(t, report2, "drivers/net/moddrv.c")
	if f2.Status != StatusCertified {
		t.Fatalf("with allmodconfig: status = %v (%s), want certified", f2.Status, f2.FailureDetail)
	}
	if !f2.UsedAllMod {
		t.Error("UsedAllMod should be set")
	}
	// The extra configuration costs extra invocations (paper: "nearly
	// doubling the set of configurations").
	if len(report2.ConfigDurations) <= len(report1.ConfigDurations) {
		t.Errorf("allmod run used %d configs, baseline %d — expected more",
			len(report2.ConfigDurations), len(report1.ConfigDurations))
	}
}

// The §VII proposal: diagnose doomed regions before building.
func TestPrescanWarnsBeforeBuilding(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifdef CONFIG_TOTALLY_UNKNOWN\n\tprintk(\"never\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)

	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{Prescan: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := ch.CheckPatch("prescan", []textdiff.FileDiff{fd})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range report.PrescanWarnings {
		if w.Reason == EscapeIfdefNeverSet {
			found = true
		}
	}
	if !found {
		t.Errorf("prescan warnings = %+v, want never-set diagnosis", report.PrescanWarnings)
	}
}

// Prescan must stay silent for healthy changes.
func TestPrescanQuietOnCleanChange(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(old, "#define DRV_REG 0x04", "#define DRV_REG 0x0c", 1))

	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{Prescan: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := ch.CheckPatch("clean", []textdiff.FileDiff{fd})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.PrescanWarnings) != 0 {
		t.Errorf("prescan warned on a clean change: %+v", report.PrescanWarnings)
	}
	if !report.Certified() {
		t.Error("clean change should certify")
	}
}

// The refined unused-macro analysis: an edit to a used macro's definition
// must not be classified as unused when it fails for other reasons.
func TestUsedMacroNotMisclassified(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	// DRV_REG is used by drv_read; edit it and check certification (the
	// mutation must be witnessed through the use site).
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(old, "#define DRV_REG 0x04", "#define DRV_REG 0x10", 1))
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusCertified {
		t.Errorf("used-macro edit: %+v", f)
	}
}

// The §VII extension: #ifndef regions are covered by a synthesized
// configuration that turns the variable off — something neither
// allyesconfig nor any defconfig in the tree can do.
func TestCoverageConfigRecoversIfndef(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifndef CONFIG_MODDRV\n\tprintk(\"without moddrv\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)

	// Baseline: escapes (allyesconfig sets MODDRV=y).
	chBase, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rBase, err := chBase.CheckPatch("base", []textdiff.FileDiff{fd})
	if err != nil {
		t.Fatal(err)
	}
	if findFile(t, rBase, "drivers/net/netdrv.c").Status != StatusEscapes {
		t.Fatalf("baseline should escape: %+v", rBase.Files)
	}

	// With coverage configs: certified via a synthesized MODDRV=n config.
	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{CoverageConfigs: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := ch.CheckPatch("cov", []textdiff.FileDiff{fd})
	if err != nil {
		t.Fatal(err)
	}
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusCertified {
		t.Fatalf("with coverage configs: %+v (%s)", f, f.FailureDetail)
	}
	if !f.UsedCoverageConfig {
		t.Error("UsedCoverageConfig should be set")
	}
}

// Both branches of an ifdef/else pair get covered across two synthesized
// configurations — the case the paper says plain JMake "never succeeds"
// on (§VII).
func TestCoverageConfigRecoversBothBranches(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifdef CONFIG_MODDRV\n\tprintk(\"with\");\n#else\n\tprintk(\"without\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)

	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{CoverageConfigs: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := ch.CheckPatch("both", []textdiff.FileDiff{fd})
	if err != nil {
		t.Fatal(err)
	}
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusCertified {
		t.Fatalf("both branches should certify across two configs: %+v", f)
	}
}

// Hopeless regions stay uncovered: the synthesis cannot satisfy an
// undeclared dependency, so the escape diagnosis is preserved.
func TestCoverageConfigCannotFixNeverSet(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifdef CONFIG_TOTALLY_UNKNOWN\n\tprintk(\"never\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)

	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{CoverageConfigs: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := ch.CheckPatch("hopeless", []textdiff.FileDiff{fd})
	if err != nil {
		t.Fatal(err)
	}
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes || len(f.Escapes) != 1 || f.Escapes[0].Reason != EscapeIfdefNeverSet {
		t.Errorf("outcome = %+v", f)
	}
}

// DEBUG_EXTRA depends on an undeclared MISSING_DEP, so even a targeted
// want cannot enable it; the synthesized config is detected as
// unsatisfiable without paying for a build.
func TestCoverageConfigUnsatisfiableDependency(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifdef CONFIG_DEBUG_EXTRA\n\tprintk(\"dbg\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)

	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{CoverageConfigs: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := ch.CheckPatch("unsat", []textdiff.FileDiff{fd})
	if err != nil {
		t.Fatal(err)
	}
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes {
		t.Errorf("unsatisfiable want must stay an escape: %+v", f)
	}
}
