package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"jmake/internal/csrc"
	"jmake/internal/textdiff"
	"jmake/internal/vclock"
)

// Property: mutation never reorders or alters the original code lines —
// stripping the inserted mutation lines and the appended mutation suffixes
// recovers the original content exactly.
func TestQuickMutatePreservesCode(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	fragments := []string{
		"int a;",
		"#define M(x) ((x) + 1)",
		"#define LONG(x) \\",
		"\t((x) + 2)",
		"/* a comment */",
		"#ifdef CONFIG_FOO",
		"#endif",
		"int f(void) { return 0; }",
		"",
	}
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(15)
		var lines []string
		depth := 0
		for i := 0; i < n; i++ {
			frag := fragments[rng.Intn(len(fragments))]
			if frag == "#ifdef CONFIG_FOO" {
				depth++
			}
			if frag == "#endif" {
				if depth == 0 {
					continue
				}
				depth--
			}
			lines = append(lines, frag)
		}
		for depth > 0 {
			lines = append(lines, "#endif")
			depth--
		}
		content := strings.Join(lines, "\n") + "\n"
		var changed []int
		for i := 1; i <= len(lines); i++ {
			if rng.Intn(3) == 0 {
				changed = append(changed, i)
			}
		}
		if len(changed) == 0 {
			changed = []int{1}
		}
		res := Mutate("f.c", content, changed)

		stripped := stripMutations(res.Content)
		if stripped != content {
			t.Fatalf("mutation altered code:\noriginal:\n%s\nmutated:\n%s\nstripped:\n%s",
				content, res.Content, stripped)
		}
		if len(res.Mutations) > len(changed) {
			t.Fatalf("more mutations (%d) than changed lines (%d)", len(res.Mutations), len(changed))
		}
	}
}

// stripMutations removes inserted mutation lines and appended tokens.
func stripMutations(content string) string {
	var out []string
	for _, ln := range strings.Split(strings.TrimSuffix(content, "\n"), "\n") {
		trimmed := strings.TrimSpace(ln)
		if strings.HasPrefix(trimmed, MutationMarker+`"`) {
			continue // pure mutation line (possibly with trailing backslash)
		}
		if i := strings.Index(ln, " "+MutationMarker+`"`); i >= 0 {
			//

			// Appended to a #define line: drop the token, restoring any
			// trailing continuation backslash.
			rest := ln[i:]
			ln = ln[:i]
			if strings.HasSuffix(strings.TrimRight(rest, " \t"), "\\") {
				ln += " \\"
			}
		}
		out = append(out, ln)
	}
	return strings.Join(out, "\n") + "\n"
}

// Property: every mutation ID embeds its file and line and is unique.
func TestQuickMutationIDs(t *testing.T) {
	f := func(rawLines []uint8) bool {
		content := "int a;\nint b;\nint c;\nint d;\nint e;\n"
		seen := map[int]bool{}
		var changed []int
		for _, r := range rawLines {
			n := int(r)%5 + 1
			if !seen[n] {
				seen[n] = true
				changed = append(changed, n)
			}
		}
		if len(changed) == 0 {
			return true
		}
		res := Mutate("dir/f.c", content, changed)
		ids := map[string]bool{}
		for _, m := range res.Mutations {
			if ids[m.ID] {
				return false
			}
			ids[m.ID] = true
			if !strings.Contains(m.ID, "dir/f.c") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The group-size option must split .i invocations (paper: max 50 files per
// make to bound tmpfs usage).
func TestCheckerGroupSizeOption(t *testing.T) {
	tr := fixtureTree()
	old1, _ := tr.Read("drivers/net/netdrv.c")
	fd1 := applyEdit(t, tr, "drivers/net/netdrv.c", strings.Replace(old1, "0x40", "0x41", 1))
	old2, _ := tr.Read("drivers/net/moddrv.c")
	fd2 := applyEdit(t, tr, "drivers/net/moddrv.c", strings.Replace(old2, "return 0", "return 3", 1))

	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{MaxGroupSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	report, err := ch.CheckPatch("group", []textdiff.FileDiff{fd1, fd2})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Certified() {
		t.Fatalf("not certified: %+v", report.Files)
	}
	if len(report.MakeIDurations) != 2 {
		t.Errorf("MakeI invocations = %d, want 2 with group size 1", len(report.MakeIDurations))
	}
}

// With a tiny HCandidateLimit, header hunting must restrict itself to
// allyesconfig (paper §III-E's user-configurable threshold).
func TestHeaderCandidateLimit(t *testing.T) {
	tr := fixtureTree()
	oldH, _ := tr.Read("include/linux/netdev.h")
	fdH := applyEdit(t, tr, "include/linux/netdev.h", strings.Replace(oldH, "<< 4", "<< 7", 1))

	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{HCandidateLimit: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Limit 0 takes the default; use an explicit tiny limit instead.
	ch.opts.HCandidateLimit = 1
	report, err := ch.CheckPatch("hlimit", []textdiff.FileDiff{fdH})
	if err != nil {
		t.Fatal(err)
	}
	h := findFile(t, report, "include/linux/netdev.h")
	if h.Status != StatusCertified {
		t.Fatalf("header not certified: %+v", h)
	}
	if h.UsedDefconfig {
		t.Error("above the candidate limit only allyesconfig may be used")
	}
}

// A patch deleting lines (pure removal) still gets checked: the first
// remaining line is certified (paper §III-B).
func TestCheckPureRemoval(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);\n", "", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusCertified {
		t.Errorf("pure removal: %+v", f)
	}
	if f.Mutations != 1 {
		t.Errorf("Mutations = %d, want 1", f.Mutations)
	}
}

// A file whose Makefile is missing gets the dedicated status.
func TestCheckNoMakefile(t *testing.T) {
	tr := fixtureTree()
	tr.Write("orphan/lost.c", "int lost;\n")
	fd := applyEdit(t, tr, "orphan/lost.c", "int lost = 1;\n")
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "orphan/lost.c")
	if f.Status != StatusNoMakefile && f.Status != StatusBuildFailed {
		t.Errorf("status = %v, want no-makefile or build-failed", f.Status)
	}
	if report.Certified() {
		t.Error("orphan file cannot be certified")
	}
}

// A change that deletes the whole file content except one line still works.
func TestCheckHeavyRewrite(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/moddrv.c")
	edited := "#include <linux/kernel.h>\n\nint moddrv_probe(void)\n{\n\tprintk(\"rewritten\");\n\treturn 7;\n}\n"
	if edited == old {
		t.Fatal("contents identical")
	}
	fd := applyEdit(t, tr, "drivers/net/moddrv.c", edited)
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/moddrv.c")
	if f.Status != StatusCertified {
		t.Errorf("rewrite: %+v (%s)", f, f.FailureDetail)
	}
}

// Verify csrc and Mutate agree on macro continuation chains ending at EOF.
func TestMutateMacroAtEOF(t *testing.T) {
	content := "#define TAIL(x) \\\n\t((x) + 1)"
	res := Mutate("f.c", content, []int{2})
	if len(res.Mutations) != 1 || res.Mutations[0].Kind != "define" {
		t.Fatalf("mutations = %+v", res.Mutations)
	}
	f := csrc.Analyze(res.Content)
	if len(f.Lines) != 3 {
		t.Fatalf("mutated content has %d lines:\n%s", len(f.Lines), res.Content)
	}
}

// The report's duration lists must sum to Total.
func TestReportTotalsConsistent(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", strings.Replace(old, "0x40", "0x42", 1))
	report := checkOne(t, tr, fd)
	var sum = report.Total - report.Total
	for _, d := range report.ConfigDurations {
		sum += d
	}
	for _, d := range report.MakeIDurations {
		sum += d
	}
	for _, d := range report.MakeODurations {
		sum += d
	}
	if sum != report.Total {
		t.Errorf("durations sum %v != Total %v", sum, report.Total)
	}
}
