package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/textdiff"
	"jmake/internal/vclock"
)

// corpusTree loads examples/presence/src — the golden corpus shared with
// jmake-lint and the presence package — into an in-memory tree.
func corpusTree(t *testing.T) *fstree.Tree {
	t.Helper()
	root := filepath.Join("..", "..", "examples", "presence", "src")
	tr := fstree.New()
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		content, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		tr.Write(filepath.ToSlash(rel), string(content))
		return nil
	})
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	return tr
}

// The acceptance run over the golden corpus: a patch touching only
// provably-dead regions issues ZERO compiler invocations.
func TestCorpusDeadOnlyPatchCompilesNothing(t *testing.T) {
	tr := corpusTree(t)
	old, _ := tr.Read("drivers/ifzero.c")
	edited := strings.Replace(old, "int never_compiled;", "int never_compiled2;", 1)
	edited = strings.Replace(edited, "int contradiction;", "int contradiction2;", 1)
	fd := applyEdit(t, tr, "drivers/ifzero.c", edited)
	report := checkStatic(t, tr, fd)

	f := findFile(t, report, "drivers/ifzero.c")
	if f.Status != StatusStaticDead {
		t.Fatalf("status = %v: %+v", f.Status, f)
	}
	if len(report.ConfigDurations)+len(report.MakeIDurations)+len(report.MakeODurations) != 0 {
		t.Errorf("dead-only corpus patch still built: %d/%d/%d",
			len(report.ConfigDurations), len(report.MakeIDurations), len(report.MakeODurations))
	}
	if report.StaticSkippedMakeI != 1 || report.StaticSkippedMakeO != 1 {
		t.Errorf("skip counters = %d/%d", report.StaticSkippedMakeI, report.StaticSkippedMakeO)
	}
}

// The full corpus patch: every file's changed lines land where the design
// intends (covered, escaped, or statically dead), and the static
// predictions never disagree with a .i witness.
func TestCorpusFullPatchPredictionsAgree(t *testing.T) {
	tr := corpusTree(t)
	edit := func(path, from, to string) textdiff.FileDiff {
		old, err := tr.Read(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return applyEdit(t, tr, path, strings.Replace(old, from, to, 1))
	}
	fds := []textdiff.FileDiff{
		edit("drivers/nested.c", "int foo_and_bar;", "int foo_and_bar2;"),
		edit("drivers/elif.c", "int second;", "int second2;"),
		edit("drivers/elsecase.c", "int without_foo;", "int without_foo2;"),
		edit("drivers/gated.c", "int only_as_module;", "int only_as_module2;"),
		edit("drivers/ifzero.c", "int contradiction;", "int contradiction2;"),
	}
	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{StaticPresence: true})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	report, err := ch.CheckPatch("corpus", fds)
	if err != nil {
		t.Fatalf("CheckPatch: %v", err)
	}

	if len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("static/dynamic disagreements on the corpus: %+v",
			report.StaticDynamicDisagreements)
	}
	want := map[string]Status{
		"drivers/nested.c":   StatusCertified, // FOO && BAR: visible under allyes
		"drivers/elif.c":     StatusEscapes,   // !FOO && BAR: live, but allyes takes branch 1
		"drivers/elsecase.c": StatusEscapes,   // !FOO: live, allyes sets FOO
		"drivers/gated.c":    StatusEscapes,   // MODULE: live as module, invisible builtin
		"drivers/ifzero.c":   StatusStaticDead,
	}
	for path, ws := range want {
		f := findFile(t, report, path)
		if f.Status != ws {
			t.Errorf("%s: status = %v, want %v (%+v)", path, f.Status, ws, f)
		}
	}
	if report.StaticSkippedMakeI != 1 || report.StaticSkippedMakeO != 1 {
		t.Errorf("only ifzero.c should be pruned whole: %d/%d",
			report.StaticSkippedMakeI, report.StaticSkippedMakeO)
	}
}

// The elif chain's dependency-dead branch: BAZ depends on BAR, but the
// third branch requires !BAR, so a change there is statically dead even
// though its #if stack alone is satisfiable. The remaining live line keeps
// the file building.
func TestCorpusElifDependencyDeadBranch(t *testing.T) {
	tr := corpusTree(t)
	old, _ := tr.Read("drivers/elif.c")
	edited := strings.Replace(old, "int third;", "int third2;", 1)
	edited = strings.Replace(edited, "int first;", "int first2;", 1)
	fd := applyEdit(t, tr, "drivers/elif.c", edited)
	report := checkStatic(t, tr, fd)

	f := findFile(t, report, "drivers/elif.c")
	if f.Status != StatusStaticDead {
		t.Fatalf("status = %v, want static-dead remainder: %+v", f.Status, f)
	}
	if len(f.CoveredLines) != 1 {
		t.Errorf("CoveredLines = %v, want the live first-branch line", f.CoveredLines)
	}
	if len(f.StaticDeadLines) != 1 {
		t.Errorf("StaticDeadLines = %v, want the dependency-dead third-branch line", f.StaticDeadLines)
	}
	if len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("disagreements = %+v", report.StaticDynamicDisagreements)
	}
}
