package core

import (
	"strings"
	"testing"
)

func TestMutatePlainCode(t *testing.T) {
	content := "int a;\nint b;\nint c;\n"
	res := Mutate("drivers/a.c", content, []int{2})
	if len(res.Mutations) != 1 {
		t.Fatalf("mutations = %d, want 1", len(res.Mutations))
	}
	m := res.Mutations[0]
	if m.Kind != "other" || m.Line != 2 {
		t.Errorf("mutation = %+v", m)
	}
	wantID := `@"other:drivers/a.c:2"`
	if m.ID != wantID {
		t.Errorf("ID = %q, want %q", m.ID, wantID)
	}
	lines := strings.Split(res.Content, "\n")
	if lines[1] != wantID {
		t.Errorf("mutation line = %q; content:\n%s", lines[1], res.Content)
	}
	if lines[2] != "int b;" {
		t.Errorf("changed line displaced: %q", lines[2])
	}
}

func TestMutateOneMutationPerRegion(t *testing.T) {
	// Three changed lines in the same region: one mutation suffices
	// (paper §III-B).
	content := "int a;\nint b;\nint c;\nint d;\n"
	res := Mutate("f.c", content, []int{1, 2, 4})
	if len(res.Mutations) != 1 {
		t.Fatalf("mutations = %d, want 1: %+v", len(res.Mutations), res.Mutations)
	}
	if got := res.Mutations[0].CoversLines; len(got) != 3 {
		t.Errorf("CoversLines = %v", got)
	}
}

func TestMutateRegionsSplitByConditionals(t *testing.T) {
	content := `int a;
#ifdef CONFIG_X
int b;
#else
int c;
#endif
int d;
`
	res := Mutate("f.c", content, []int{1, 3, 5, 7})
	// Regions: before #ifdef (line 1), ifdef branch (line 3), else branch
	// (lines 5 and 7 share the #else region — the paper does not split at
	// #endif).
	if len(res.Mutations) != 3 {
		t.Fatalf("mutations = %d, want 3: %+v", len(res.Mutations), res.Mutations)
	}
}

func TestMutateDefineSingleLine(t *testing.T) {
	content := "#define REG_CTRL 0x04\nint x = REG_CTRL;\n"
	res := Mutate("f.c", content, []int{1})
	if len(res.Mutations) != 1 || res.Mutations[0].Kind != "define" {
		t.Fatalf("mutations = %+v", res.Mutations)
	}
	lines := strings.Split(res.Content, "\n")
	want := `#define REG_CTRL 0x04 @"define:f.c:1"`
	if lines[0] != want {
		t.Errorf("define line = %q, want %q", lines[0], want)
	}
	if res.ChangedMacros[0] != "REG_CTRL" {
		t.Errorf("ChangedMacros = %v", res.ChangedMacros)
	}
}

func TestMutateDefineWithContinuation(t *testing.T) {
	// Change on the #define line that ends with a continuation: the
	// mutation goes before the backslash (paper Fig 2).
	content := "#define MUX(x) (((x) & 0xf) << 4) | \\\n\t(((x) & 0xf) << 0)\nint v = MUX(2);\n"
	res := Mutate("f.c", content, []int{1})
	lines := strings.Split(res.Content, "\n")
	if !strings.HasSuffix(lines[0], `@"define:f.c:1" \`) {
		t.Errorf("define line = %q", lines[0])
	}
}

func TestMutateDefineContinuationLineChanged(t *testing.T) {
	// Change on a non-first macro line: a fresh "mutation \" line goes
	// before the changed one (paper Fig 2, SINGLE_CHAN case).
	content := "#define SINGLE(x) \\\n\t(HI(x) | \\\n\t LO(x))\nint v;\n"
	res := Mutate("f.c", content, []int{2})
	lines := strings.Split(res.Content, "\n")
	if lines[1] != `@"define:f.c:2" \` {
		t.Errorf("inserted line = %q; content:\n%s", lines[1], res.Content)
	}
	if !strings.HasPrefix(lines[2], "\t(HI(x)") {
		t.Errorf("original line displaced: %q", lines[2])
	}
}

func TestMutateOneMutationPerMacro(t *testing.T) {
	content := "#define BIG(x) \\\n\t((x) + \\\n\t 1 + \\\n\t 2)\nint v;\n"
	res := Mutate("f.c", content, []int{2, 3, 4})
	if len(res.Mutations) != 1 {
		t.Fatalf("mutations = %d, want 1 per macro", len(res.Mutations))
	}
}

func TestMutateCommentOnlyChange(t *testing.T) {
	content := "/* header comment */\nint a;\n// trailing\n"
	res := Mutate("f.c", content, []int{1, 3})
	if len(res.Mutations) != 0 || !res.CommentOnly {
		t.Errorf("comment-only change: %+v", res)
	}
	if res.Content != content {
		t.Error("content must be unchanged")
	}
}

func TestMutateLineStartingMidComment(t *testing.T) {
	// The changed line begins inside a comment that ends on it: mutation
	// placed after the comment end (paper §III-B).
	content := "int a; /* spans\nto here */ int b;\nint c;\n"
	res := Mutate("f.c", content, []int{2})
	if len(res.Mutations) != 1 {
		t.Fatalf("mutations = %+v", res.Mutations)
	}
	lines := strings.Split(res.Content, "\n")
	if !strings.HasPrefix(lines[1], `to here */ @"other:f.c:2"`) {
		t.Errorf("line 2 = %q", lines[1])
	}
}

func TestMutateMixedMacroAndCode(t *testing.T) {
	content := `#define A 1
#define B 2
int f(void)
{
	return A + B;
}
`
	res := Mutate("f.c", content, []int{1, 2, 5})
	if len(res.Mutations) != 3 {
		t.Fatalf("mutations = %d, want 3 (two macros + one region): %+v",
			len(res.Mutations), res.Mutations)
	}
	kinds := map[string]int{}
	for _, m := range res.Mutations {
		kinds[m.Kind]++
	}
	if kinds["define"] != 2 || kinds["other"] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	if len(res.ChangedMacros) != 2 {
		t.Errorf("ChangedMacros = %v", res.ChangedMacros)
	}
}

func TestMutateChangedLinePastEOF(t *testing.T) {
	// Pure removal at end of file can reference one past the last line.
	content := "int a;\nint b;\n"
	res := Mutate("f.c", content, []int{3})
	if len(res.Mutations) != 1 || res.Mutations[0].Line != 2 {
		t.Errorf("mutations = %+v", res.Mutations)
	}
}

func TestMutateEmptyFile(t *testing.T) {
	res := Mutate("f.c", "", []int{1})
	if len(res.Mutations) != 0 {
		t.Errorf("mutations on empty file = %+v", res.Mutations)
	}
}

func TestMutationsSurvivePreprocessingConcept(t *testing.T) {
	// End-to-end sanity at the mutation level: IDs are unique per site.
	content := "int a;\n#ifdef X\nint b;\n#endif\n#define M 1\n"
	res := Mutate("f.c", content, []int{1, 3, 5})
	seen := map[string]bool{}
	for _, m := range res.Mutations {
		if seen[m.ID] {
			t.Errorf("duplicate mutation ID %q", m.ID)
		}
		seen[m.ID] = true
		if !strings.Contains(res.Content, m.ID) {
			t.Errorf("mutation %q not inserted", m.ID)
		}
	}
}
