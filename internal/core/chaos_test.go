package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"jmake/internal/faultinject"
	"jmake/internal/fstree"
	"jmake/internal/textdiff"
	"jmake/internal/vclock"
)

// chaosBudget caps each chaos run. Ops are charged whole, so a run may
// overshoot by the last uninterruptible operation; for this fixture no
// single operation (setup + preprocess + compile + stall + backoff
// chain) exceeds chaosSlack.
const (
	chaosBudget = 90 * time.Second
	chaosSlack  = 40 * time.Second
)

// chaosEdits builds a fixture tree and a multi-file patch (two .c files,
// one header) exercising the .c pipeline, header coverage via patch .c
// files, and the cross-arch path.
func chaosEdits(t *testing.T) (*fstree.Tree, []textdiff.FileDiff) {
	t.Helper()
	tr := fixtureTree()
	var fds []textdiff.FileDiff
	oldC, _ := tr.Read("drivers/net/netdrv.c")
	fds = append(fds, applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(oldC, "0x40", "0x44", 1)))
	oldA, _ := tr.Read("drivers/net/armdrv.c")
	fds = append(fds, applyEdit(t, tr, "drivers/net/armdrv.c",
		strings.Replace(oldA, "\treturn 0;", "\treturn 1;", 1)))
	oldH, _ := tr.Read("include/linux/netdev.h")
	fds = append(fds, applyEdit(t, tr, "include/linux/netdev.h",
		strings.Replace(oldH, "<< 4)", "<< 5)", 1)))
	return tr, fds
}

func chaosRun(t *testing.T, tr *fstree.Tree, fds []textdiff.FileDiff, opts Options) *PatchReport {
	t.Helper()
	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, opts)
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	report, err := ch.CheckPatch("chaos", fds)
	if err != nil {
		t.Fatalf("CheckPatch: %v", err)
	}
	return report
}

// assertSafety checks the invariants no fault plan may violate.
func assertSafety(t *testing.T, seed uint64, r *PatchReport) {
	t.Helper()
	for _, f := range r.Files {
		if f.Status == StatusCertified {
			if f.FoundMutations != f.Mutations {
				t.Errorf("seed %d: %s certified with %d/%d mutations found",
					seed, f.Path, f.FoundMutations, f.Mutations)
			}
			if len(f.EscapedLines) != 0 {
				t.Errorf("seed %d: %s certified with escaped lines %v",
					seed, f.Path, f.EscapedLines)
			}
		}
	}
	if r.Total > chaosBudget+chaosSlack {
		t.Errorf("seed %d: Total %v exceeds budget %v + slack %v",
			seed, r.Total, chaosBudget, chaosSlack)
	}
	if !r.BudgetExhausted {
		for _, f := range r.Files {
			if f.Status == StatusBudgetExhausted {
				t.Errorf("seed %d: %s budget-exhausted on a non-exhausted run", seed, f.Path)
			}
		}
	}
}

// TestChaosSweep sweeps fault-plan seeds and asserts that no fault plan
// can ever cause a false certification, that every run terminates within
// the virtual-time budget, and that identical seeds yield identical
// reports.
func TestChaosSweep(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	sawFault, sawRetry := false, false
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		opts := Options{
			Faults: faultinject.Uniform(seed, 0.25),
			Budget: chaosBudget,
		}
		tr, fds := chaosEdits(t)
		r1 := chaosRun(t, tr, fds, opts)
		assertSafety(t, seed, r1)
		if len(r1.FaultEvents) > 0 {
			sawFault = true
		}
		if r1.Retries > 0 {
			sawRetry = true
		}

		r2 := chaosRun(t, tr, fds, opts)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("seed %d: identical seeds produced different reports:\n%+v\nvs\n%+v", seed, r1, r2)
		}
	}
	if !sawFault {
		t.Error("no seed injected any fault; the sweep is vacuous")
	}
	if !sawRetry {
		t.Error("no seed triggered a retry; the sweep is vacuous")
	}
}

// TestChaosHighRate pushes the rates up so every resilience path (retry
// exhaustion, quarantine, truncation) is exercised; safety must hold.
func TestChaosHighRate(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		opts := Options{
			Faults: faultinject.Uniform(seed, 0.7),
			Budget: chaosBudget,
		}
		tr, fds := chaosEdits(t)
		assertSafety(t, seed, chaosRun(t, tr, fds, opts))
	}
}

// TestZeroPlanMatchesSeedBehavior: with no fault plan the resilience
// layer must be a strict no-op — statuses, durations, and totals are
// byte-identical to a run with plain zero Options.
func TestZeroPlanMatchesSeedBehavior(t *testing.T) {
	tr, fds := chaosEdits(t)
	base := chaosRun(t, tr, fds, Options{})
	resil := chaosRun(t, tr, fds, Options{
		MaxRetries:           5,
		ArchFailureThreshold: 2,
		// No Faults plan, no Budget: nothing may change.
	})
	if !reflect.DeepEqual(base, resil) {
		t.Fatalf("zero fault plan changed the report:\nbase  %+v\nresil %+v", base, resil)
	}
	if base.Retries != 0 || len(base.FaultEvents) != 0 || base.BudgetExhausted ||
		len(base.QuarantinedArches) != 0 || len(base.BackoffDurations) != 0 {
		t.Errorf("fault-free run has resilience residue: %+v", base)
	}
	if !base.Certified() {
		t.Errorf("fixture patch should certify cleanly: %+v", base.Files)
	}
}

// TestChaosStatusesReachable: across the sweep, the two new terminal
// statuses must actually occur — budget exhaustion under a tiny budget,
// quarantine under a breaker-heavy plan.
func TestChaosStatusesReachable(t *testing.T) {
	tr, fds := chaosEdits(t)
	r := chaosRun(t, tr, fds, Options{Budget: time.Millisecond})
	if !r.BudgetExhausted {
		t.Fatal("1ms budget not marked exhausted")
	}
	found := false
	for _, f := range r.Files {
		if f.Status == StatusBudgetExhausted {
			found = true
		}
		if f.Status == StatusCertified {
			t.Errorf("%s certified under a 1ms budget", f.Path)
		}
	}
	if !found {
		t.Errorf("no file finalized budget-exhausted: %+v", r.Files)
	}

	seen := false
	for seed := uint64(1); seed <= 30 && !seen; seed++ {
		opts := Options{
			Faults:               faultinject.Plan{Seed: seed, ArchBreakRate: 1},
			Budget:               chaosBudget,
			ArchFailureThreshold: 1,
		}
		tr, fds := chaosEdits(t)
		r := chaosRun(t, tr, fds, opts)
		assertSafety(t, seed, r)
		for _, f := range r.Files {
			if f.Status == StatusArchQuarantined {
				seen = true
			}
		}
		if seen && len(r.QuarantinedArches) == 0 {
			t.Errorf("seed %d: quarantined status without QuarantinedArches", seed)
		}
	}
	if !seen {
		t.Error("no seed in 1..30 produced StatusArchQuarantined under ArchBreakRate=1")
	}
}
