package core

import (
	"reflect"
	"strings"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/textdiff"
	"jmake/internal/vclock"
)

func checkStatic(t *testing.T, tr *fstree.Tree, fds ...textdiff.FileDiff) *PatchReport {
	t.Helper()
	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{StaticPresence: true})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	report, err := ch.CheckPatch("test", fds)
	if err != nil {
		t.Fatalf("CheckPatch: %v", err)
	}
	return report
}

// seedRegion rewrites a fixture file so the base (pre-patch) version
// already contains a conditional region around `body`, placed before the
// anchor line. The patch then edits only the region's interior, which is
// the interesting static case: changing the directive lines themselves is
// always live (cpp reads them whenever the enclosing region is compiled).
func seedRegion(t *testing.T, tr *fstree.Tree, path, anchor, open, body string) {
	t.Helper()
	old, err := tr.Read(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	seeded := strings.Replace(old, anchor, open+"\n"+body+"\n#endif\n"+anchor, 1)
	if seeded == old {
		t.Fatalf("anchor %q not found in %s", anchor, path)
	}
	tr.Write(path, seeded)
}

// A change entirely under #if 0 is proven dead before any build: the file
// is never handed to make, and the skip is counted.
func TestStaticDeadFileSkipsAllCompiles(t *testing.T) {
	tr := fixtureTree()
	seedRegion(t, tr, "drivers/net/netdrv.c", "\tdrv_read(v);",
		"#if 0", "\tprintk(\"dead\");")
	old, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(old, "printk(\"dead\")", "printk(\"still dead\")", 1))
	report := checkStatic(t, tr, fd)

	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusStaticDead {
		t.Fatalf("status = %v, want static-dead: %+v", f.Status, f)
	}
	if len(f.StaticDeadLines) == 0 || len(f.EscapedLines) != 0 || len(f.Escapes) != 0 {
		t.Errorf("dead=%v escaped=%v escapes=%v", f.StaticDeadLines, f.EscapedLines, f.Escapes)
	}
	if len(report.MakeIDurations) != 0 || len(report.MakeODurations) != 0 || len(report.ConfigDurations) != 0 {
		t.Errorf("statically dead patch still built: %d/%d/%d invocations",
			len(report.ConfigDurations), len(report.MakeIDurations), len(report.MakeODurations))
	}
	if report.StaticSkippedMakeI != 1 || report.StaticSkippedMakeO != 1 {
		t.Errorf("skip counters = %d/%d, want 1/1", report.StaticSkippedMakeI, report.StaticSkippedMakeO)
	}
	if len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("disagreements = %+v", report.StaticDynamicDisagreements)
	}
}

// A mixed patch: the live line is compiled and witnessed as usual, the dead
// region is pruned, and the verdict names the remainder statically dead.
func TestStaticMixedLiveAndDead(t *testing.T) {
	tr := fixtureTree()
	seedRegion(t, tr, "drivers/net/netdrv.c", "\tdrv_read(v);",
		"#if 0", "\tprintk(\"dead\");")
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "printk(\"dead\")", "printk(\"still dead\")", 1)
	edited = strings.Replace(edited, "0x40", "0x44", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkStatic(t, tr, fd)

	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusStaticDead {
		t.Fatalf("status = %v, want static-dead remainder: %+v", f.Status, f)
	}
	if len(f.CoveredLines) == 0 {
		t.Error("live changed line should be witnessed")
	}
	if len(f.StaticDeadLines) == 0 {
		t.Error("dead region should be reported")
	}
	if len(report.MakeIDurations) == 0 || len(report.MakeODurations) == 0 {
		t.Error("live line still requires a real build")
	}
	if report.StaticSkippedMakeI != 0 || report.StaticSkippedMakeO != 0 {
		t.Errorf("partially live files are not skipped: %d/%d",
			report.StaticSkippedMakeI, report.StaticSkippedMakeO)
	}
	if len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("disagreements = %+v", report.StaticDynamicDisagreements)
	}
}

// A dead-everywhere Kconfig region: DEBUG_EXTRA depends on an undeclared
// symbol, so no configuration of any architecture can enable it. The
// static pass proves it via the dependency constraint, not just #if 0.
func TestStaticDeadThroughKconfigDependency(t *testing.T) {
	tr := fixtureTree()
	seedRegion(t, tr, "drivers/net/netdrv.c", "\tdrv_read(v);",
		"#ifdef CONFIG_DEBUG_EXTRA", "\tprintk(\"dbg\");")
	old, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(old, "printk(\"dbg\")", "printk(\"dbg2\")", 1))
	report := checkStatic(t, tr, fd)

	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusStaticDead {
		t.Fatalf("status = %v, want static-dead: %+v", f.Status, f)
	}
	if len(report.MakeIDurations) != 0 {
		t.Errorf("unsatisfiable dependency chain still built %d times", len(report.MakeIDurations))
	}
	if len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("disagreements = %+v", report.StaticDynamicDisagreements)
	}
}

// #ifdef MODULE on a tristate-gated file is satisfiable (the file can build
// modular), so it must NOT be marked dead — it stays a classic escape, the
// static prediction (invisible under allyesconfig) matches the .i, and the
// cross-check stays clean.
func TestStaticModuleRegionStaysLiveAndAgrees(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/moddrv.c")
	edited := strings.Replace(old, "\treturn 0;",
		"#ifdef MODULE\n\tprintk(\"as module\");\n#endif\n\treturn 0;", 1)
	fd := applyEdit(t, tr, "drivers/net/moddrv.c", edited)
	report := checkStatic(t, tr, fd)

	f := findFile(t, report, "drivers/net/moddrv.c")
	if f.Status != StatusEscapes || len(f.Escapes) != 1 || f.Escapes[0].Reason != EscapeIfdefModule {
		t.Fatalf("outcome = %+v", f)
	}
	if len(f.StaticDeadLines) != 0 {
		t.Errorf("MODULE region wrongly proven dead: %v", f.StaticDeadLines)
	}
	if len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("disagreements = %+v", report.StaticDynamicDisagreements)
	}
}

// A clean visible change: predicted visible under host allyesconfig, and
// the .i witness agrees, so certification is reached with a clean
// cross-check.
func TestStaticPredictionMatchesWitness(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(old, "0x40", "0x48", 1))
	report := checkStatic(t, tr, fd)

	if !report.Certified() {
		t.Fatalf("not certified: %+v", report.Files)
	}
	if len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("disagreements = %+v", report.StaticDynamicDisagreements)
	}
	if report.StaticSkippedMakeI != 0 || report.StaticSkippedMakeO != 0 {
		t.Errorf("nothing was dead; skip counters = %d/%d",
			report.StaticSkippedMakeI, report.StaticSkippedMakeO)
	}
}

// Architecture ordering: armdrv.c is only reachable under arm, and the
// prediction knows it, so arm is tried before the (useless) host build and
// the patch certifies with fewer preprocessing invocations than the
// host-first default.
func TestStaticOrderingPrefersPredictedArch(t *testing.T) {
	baseline := func(static bool) *PatchReport {
		tr := fixtureTree()
		old, _ := tr.Read("drivers/net/armdrv.c")
		fd := applyEdit(t, tr, "drivers/net/armdrv.c",
			strings.Replace(old, "\treturn 0;", "\treturn 1;", 1))
		ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{StaticPresence: static})
		if err != nil {
			t.Fatalf("NewChecker: %v", err)
		}
		report, err := ch.CheckPatch("test", []textdiff.FileDiff{fd})
		if err != nil {
			t.Fatalf("CheckPatch: %v", err)
		}
		return report
	}
	with, without := baseline(true), baseline(false)
	for _, r := range []*PatchReport{with, without} {
		f := findFile(t, r, "drivers/net/armdrv.c")
		if f.Status != StatusCertified {
			t.Fatalf("outcome = %+v", f)
		}
	}
	if w, wo := len(with.MakeIDurations), len(without.MakeIDurations); w > wo {
		t.Errorf("predicted ordering used %d MakeI runs, host-first used %d", w, wo)
	}
	if len(with.ConfigDurations) >= len(without.ConfigDurations) {
		t.Errorf("predicted ordering should skip the host config: %d vs %d",
			len(with.ConfigDurations), len(without.ConfigDurations))
	}
	if len(with.StaticDynamicDisagreements) != 0 {
		t.Errorf("disagreements = %+v", with.StaticDynamicDisagreements)
	}
}

// Headers are pruned too: a header change under #if 0 triggers no candidate
// hunting at all.
func TestStaticDeadHeaderSkipsHunting(t *testing.T) {
	tr := fixtureTree()
	seedRegion(t, tr, "include/linux/netdev.h", "extern void *netdev_alloc(int size);",
		"#if 0", "extern void *netdev_dead(void);")
	oldH, _ := tr.Read("include/linux/netdev.h")
	fd := applyEdit(t, tr, "include/linux/netdev.h",
		strings.Replace(oldH, "netdev_dead(void)", "netdev_dead2(void)", 1))
	report := checkStatic(t, tr, fd)

	h := findFile(t, report, "include/linux/netdev.h")
	if h.Status != StatusStaticDead {
		t.Fatalf("status = %v, want static-dead: %+v", h.Status, h)
	}
	if h.ExtraCCompiles != 0 || len(report.MakeIDurations) != 0 {
		t.Errorf("dead header still hunted: extra=%d makeI=%d",
			h.ExtraCCompiles, len(report.MakeIDurations))
	}
	if report.StaticSkippedMakeI != 1 {
		t.Errorf("StaticSkippedMakeI = %d, want 1", report.StaticSkippedMakeI)
	}
}

// With the pre-pass off, nothing changes: no dead lines, no skip counters,
// no disagreements — the default pipeline is byte-for-byte the seed one.
func TestStaticOffLeavesReportUntouched(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#if 0\n\tprintk(\"dead\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkOne(t, tr, fd)

	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes || len(f.StaticDeadLines) != 0 {
		t.Errorf("outcome with pre-pass off = %+v", f)
	}
	if report.StaticSkippedMakeI != 0 || report.StaticSkippedMakeO != 0 ||
		len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("static fields populated without StaticPresence: %+v", report)
	}
}

// The three-branch chain from the satellite fix, end to end: under
// allyesconfig the first branch is taken, so a change in the second branch
// is predicted invisible, proven live (a defconfig could reach it), and the
// escape classification points at the satisfied earlier branch.
func TestStaticElifChainClassification(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifdef CONFIG_NETDRV\n\tdrv_read(v);\n#elif defined(CONFIG_MODDRV)\n\tprintk(\"second\");\n#else\n\tprintk(\"third\");\n#endif", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkStatic(t, tr, fd)

	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes {
		t.Fatalf("status = %v: %+v", f.Status, f)
	}
	if len(f.StaticDeadLines) != 0 {
		// NETDRV off + MODDRV on reaches the elif; NETDRV off + MODDRV off
		// reaches the else. Neither branch is dead.
		t.Errorf("elif chain wrongly dead: %v", f.StaticDeadLines)
	}
	for _, esc := range f.Escapes {
		if esc.Reason == EscapeOther {
			t.Errorf("chain-aware classifier left %+v unexplained", esc)
		}
	}
	if len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("disagreements = %+v", report.StaticDynamicDisagreements)
	}
}

// Inserting a fresh #if 0 region is the instructive boundary case: the
// directive lines themselves are read by cpp whenever the OUTER region is
// compiled, so their mutation is live and witnessed, while the interior
// lines (grouped with the closing #endif by region) are proven dead. The
// report must partition the changed lines accordingly.
func TestStaticInsertedIfZeroRegionPartition(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#if 0\n\tprintk(\"one\");\n\tprintk(\"two\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkStatic(t, tr, fd)

	lineOf := func(sub string) int {
		i := strings.Index(edited, sub)
		if i < 0 {
			t.Fatalf("%q not in edited file", sub)
		}
		return 1 + strings.Count(edited[:i], "\n")
	}
	open := lineOf("#if 0")

	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusStaticDead {
		t.Fatalf("status = %v: %+v", f.Status, f)
	}
	wantDead := []int{lineOf("printk(\"one\")"), lineOf("printk(\"two\")"), lineOf("#endif")}
	if !reflect.DeepEqual(f.StaticDeadLines, wantDead) {
		t.Errorf("StaticDeadLines = %v, want %v", f.StaticDeadLines, wantDead)
	}
	if !reflect.DeepEqual(f.CoveredLines, []int{open}) {
		t.Errorf("CoveredLines = %v, want [%d] (the #if 0 line itself)", f.CoveredLines, open)
	}
	if len(report.StaticDynamicDisagreements) != 0 {
		t.Errorf("disagreements = %+v", report.StaticDynamicDisagreements)
	}
}
