package core

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// warmState carries the per-session caches and effective-time ledgers that
// make a long-lived follower session cheap between commits. It exists only
// when Session.EnableWarm was called; a nil warmState leaves every code
// path exactly as it was, so one-shot invocations are untouched.
//
// The dependability contract: nothing cached here may ever change a
// report byte. Cached arch choices and static Kconfig knowledge are pure
// recomputations of session-invariant inputs, invalidated by
// Session.Refresh the moment a commit touches those inputs; the ledgers
// only measure how much *effective* (wall-clock-analogue) time the warmth
// saved, while reported durations keep charging the full cold price.
type warmState struct {
	mu sync.Mutex
	// archChoices caches Checker.selectArches results. Key:
	// path|useDefconfigs|tryAllMod. Values are returned as shallow copies
	// so callers may reorder the slice; the inner Configs slices are never
	// mutated by callers (mergeArchChoices copies before appending).
	archChoices map[string][]ArchChoice
	// statics caches per-arch Kconfig knowledge for the static presence
	// pre-pass, promoted from the per-Checker map so a follower pays the
	// Kconfig walk once per session instead of once per commit.
	statics map[string]*archStatic
	// setupDone marks arch|kind|path builder contexts whose one-time make
	// set-up already ran this session — the analogue of a build directory
	// that survives between commits. Builders for a marked context get
	// WarmSetup and their charged set-up price lands in setupSavedNS.
	setupDone map[string]bool

	// Ledgers (atomic nanoseconds; written from builder/checker hot paths,
	// read by the follower between commits).
	configSavedNS int64
	setupSavedNS  int64
}

func newWarmState() *warmState {
	return &warmState{
		archChoices: make(map[string][]ArchChoice),
		statics:     make(map[string]*archStatic),
		setupDone:   make(map[string]bool),
	}
}

// WarmLedger is a snapshot of the session's saved-effective-time ledgers.
// The follower differences two snapshots around a commit to price that
// commit's effective cost: report total minus what warmth absorbed.
type WarmLedger struct {
	// ConfigSaved is charged `make *config` time served from the warm
	// valuation cache.
	ConfigSaved time.Duration
	// SetupSaved is charged per-builder set-up time for (arch, config)
	// contexts whose set-up already ran this session.
	SetupSaved time.Duration
}

func (w *warmState) ledger() WarmLedger {
	return WarmLedger{
		ConfigSaved: time.Duration(atomic.LoadInt64(&w.configSavedNS)),
		SetupSaved:  time.Duration(atomic.LoadInt64(&w.setupSavedNS)),
	}
}

func (w *warmState) addConfigSaved(d time.Duration) {
	if d > 0 {
		atomic.AddInt64(&w.configSavedNS, int64(d))
	}
}

// markSetup records that the context's set-up is about to run (or ran) and
// reports whether it had already run this session.
func (w *warmState) markSetup(key string) (was bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	was = w.setupDone[key]
	w.setupDone[key] = true
	return was
}

// choiceKey builds the archChoices cache key for one selectArches call.
func choiceKey(file string, useDefconfigs, tryAllMod bool) string {
	return file + "|" + strconv.FormatBool(useDefconfigs) + "|" + strconv.FormatBool(tryAllMod)
}

// selectArches serves the checker's candidate-architecture computation from
// the session cache, computing on miss. The returned outer slice is a copy
// (callers reorder it); inner Configs slices are shared, which is safe
// because no caller appends to a per-file Configs slice in place.
func (w *warmState) selectArches(c *Checker, file string, useDefconfigs bool) []ArchChoice {
	key := choiceKey(file, useDefconfigs, c.opts.TryAllModConfig)
	w.mu.Lock()
	cached, ok := w.archChoices[key]
	w.mu.Unlock()
	if !ok {
		cached = c.computeSelectArches(file, useDefconfigs)
		w.mu.Lock()
		w.archChoices[key] = cached
		w.mu.Unlock()
	}
	if cached == nil {
		return nil
	}
	out := make([]ArchChoice, len(cached))
	copy(out, cached)
	return out
}

// staticArch serves per-arch static Kconfig knowledge from the session
// cache. Computation happens under the lock: it runs once per arch per
// session and the underlying Kconfig parse is itself an elected
// computation, so contention is negligible.
func (w *warmState) staticArch(c *Checker, name string) *archStatic {
	w.mu.Lock()
	defer w.mu.Unlock()
	if as, ok := w.statics[name]; ok {
		return as
	}
	arch := c.arches[name]
	if arch == nil {
		return nil
	}
	as := &archStatic{arch: arch}
	as.kt, as.err = c.configs.KconfigTree(c.tree, arch)
	if as.err == nil {
		as.selects = as.kt.SelectTargets()
	} else {
		// Like the config provider, never cache a failure: transient tree
		// states must not poison the session.
		return as
	}
	w.statics[name] = as
	return as
}

// Invalidation — called by Session.Refresh with the session lock semantics
// documented there (no concurrent checkers).

func (w *warmState) dropAllChoices() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.archChoices)
	w.archChoices = make(map[string][]ArchChoice)
	return n
}

func (w *warmState) dropAllStatics() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.statics)
	w.statics = make(map[string]*archStatic)
	return n
}

func (w *warmState) dropAllSetup() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.setupDone)
	w.setupDone = make(map[string]bool)
	return n
}

// dropSetupArch forgets set-up state for one architecture's contexts
// (keys are arch|kind|path).
func (w *warmState) dropSetupArch(archName string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	prefix := archName + "|"
	n := 0
	for k := range w.setupDone {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(w.setupDone, k)
			n++
		}
	}
	return n
}
