package core

import (
	"reflect"
	"strings"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/textdiff"
	"jmake/internal/vclock"
)

// cacheFixtureEdit prepares a fresh fixture tree with one .c and one .h
// edit applied, returning the tree and diffs.
func cacheFixtureEdit(t *testing.T) (*fstree.Tree, []textdiff.FileDiff) {
	t.Helper()
	tr := fixtureTree()
	oldC, _ := tr.Read("drivers/net/netdrv.c")
	fdC := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(oldC, "0x40", "0x41", 1))
	oldH, _ := tr.Read("include/linux/netdev.h")
	fdH := applyEdit(t, tr, "include/linux/netdev.h",
		strings.Replace(oldH, "<< 4)", "<< 5)", 1))
	return tr, []textdiff.FileDiff{fdC, fdH}
}

// The correctness crux: a PatchReport must be byte-identical with the
// result cache on or off. Durations, statuses, escapes, fault bookkeeping
// — everything.
func TestResultCacheOnOffReportEquality(t *testing.T) {
	check := func(cacheOn bool) *PatchReport {
		tr, fds := cacheFixtureEdit(t)
		ch := newFixtureChecker(t, tr)
		if !cacheOn {
			ch.results = nil
		}
		report, err := ch.CheckPatch("test", fds)
		if err != nil {
			t.Fatalf("CheckPatch(cache=%v): %v", cacheOn, err)
		}
		return report
	}
	on := check(true)
	off := check(false)
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("reports differ with cache on vs off:\non:  %+v\noff: %+v", on, off)
	}
}

// Cache warmth must be equally invisible: checking patch B after patch A
// warmed the shared session cache yields the same report as checking B
// against a fresh session.
func TestResultCacheWarmthInvariantReports(t *testing.T) {
	checkB := func(warmFirst bool) *PatchReport {
		base := fixtureTree()
		session, err := NewSession(base)
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		if warmFirst {
			trA := fixtureTree()
			oldC, _ := trA.Read("drivers/net/netdrv.c")
			fdA := applyEdit(t, trA, "drivers/net/netdrv.c",
				strings.Replace(oldC, "return 0;", "return 1;", 1))
			ch := session.Checker(trA, vclock.DefaultModel(1), Options{})
			if _, err := ch.CheckPatch("warmup", []textdiff.FileDiff{fdA}); err != nil {
				t.Fatalf("warmup CheckPatch: %v", err)
			}
		}
		trB, fdsB := cacheFixtureEdit(t)
		ch := session.Checker(trB, vclock.DefaultModel(2), Options{})
		report, err := ch.CheckPatch("b", fdsB)
		if err != nil {
			t.Fatalf("CheckPatch B: %v", err)
		}
		return report
	}
	cold := checkB(false)
	warm := checkB(true)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("patch B's report depends on cache warmth:\ncold: %+v\nwarm: %+v", cold, warm)
	}
}

// Sharing a session across checkers must actually produce cache hits:
// re-checking the same content (a re-run, or a revert landing back on an
// already-seen tree state) recomputes nothing, and the savings ledger
// moves.
func TestResultCacheSharedAcrossCheckers(t *testing.T) {
	base := fixtureTree()
	session, err := NewSession(base)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	var reports []*PatchReport
	for i := 0; i < 2; i++ {
		tr, fds := cacheFixtureEdit(t)
		ch := session.Checker(tr, vclock.DefaultModel(7), Options{})
		report, err := ch.CheckPatch("p", fds)
		if err != nil {
			t.Fatalf("CheckPatch %d: %v", i, err)
		}
		reports = append(reports, report)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatal("re-check of identical content produced a different report")
	}
	st, ok := session.ResultCacheStats()
	if !ok {
		t.Fatal("session cache disabled by default")
	}
	if st.MakeI.Hits == 0 || st.MakeO.Hits == 0 {
		t.Fatalf("re-check produced no hits: %+v", st)
	}
	if st.SavedVirtual <= 0 {
		t.Fatalf("no effective savings recorded: %+v", st)
	}
}

// SetResultCache(nil) must disable cleanly: no stats, identical behavior.
func TestSetResultCacheNil(t *testing.T) {
	base := fixtureTree()
	session, err := NewSession(base)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	session.SetResultCache(nil)
	if _, ok := session.ResultCacheStats(); ok {
		t.Fatal("stats reported for a disabled cache")
	}
	tr, fds := cacheFixtureEdit(t)
	ch := session.Checker(tr, vclock.DefaultModel(1), Options{})
	if _, err := ch.CheckPatch("test", fds); err != nil {
		t.Fatalf("CheckPatch without cache: %v", err)
	}
}
