package core

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/textdiff"
	"jmake/internal/vclock"
)

// NewChecker must hand out a working token cache just like Session.Checker
// does; a nil cache silently disabled preprocessing memoization.
func TestNewCheckerHasTokenCache(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(old, "0x40", "0x41", 1))
	ch := newFixtureChecker(t, tr)
	if ch.tokens == nil {
		t.Fatal("NewChecker left the token cache nil")
	}
	if _, err := ch.CheckPatch("test", []textdiff.FileDiff{fd}); err != nil {
		t.Fatalf("CheckPatch: %v", err)
	}
	if ch.tokens.Len() == 0 {
		t.Error("token cache never used during CheckPatch")
	}
	if _, misses := ch.tokens.Stats(); misses == 0 {
		t.Error("token cache recorded no lookups during CheckPatch")
	}
}

// A .c file whose .i witnesses only a header's mutation has validated the
// configuration, but its own changed lines never surfaced: it must not be
// stamped with UsedArches/UsedDefconfig bookkeeping, while the header's
// attribution (via the .c's preprocessing) must survive.
func TestCheckHeaderWitnessDoesNotStampCFile(t *testing.T) {
	tr := fixtureTree()
	// Give the pre-patch .c a region guarded by a CONFIG that is never
	// set, then change only the line inside it: the resulting mutation
	// sits inside the dead region, so no configuration can witness it.
	// (Editing the #ifdef line itself would not do: that line belongs to
	// the enclosing region, and its mutation lands before the guard.)
	base, _ := tr.Read("drivers/net/netdrv.c")
	tr.Write("drivers/net/netdrv.c", strings.Replace(base, "\tdrv_read(v);",
		"#ifdef CONFIG_TOTALLY_UNKNOWN\n\tprintk(\"x %d\", v);\n#endif\n\tdrv_read(v);", 1))

	oldH, _ := tr.Read("include/linux/netdev.h")
	fdH := applyEdit(t, tr, "include/linux/netdev.h",
		strings.Replace(oldH, "<< 4)", "<< 5)", 1))
	oldC, _ := tr.Read("drivers/net/netdrv.c")
	fdC := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(oldC, "\tprintk(\"x %d\", v);", "\tprintk(\"x2 %d\", v);", 1))
	report := checkOne(t, tr, fdC, fdH)

	c := findFile(t, report, "drivers/net/netdrv.c")
	if c.Status != StatusEscapes {
		t.Fatalf("c-file status = %v, want escapes: %+v", c.Status, c)
	}
	if len(c.UsedArches) != 0 || c.UsedDefconfig || c.UsedAllMod {
		t.Errorf("borrowed header witness stamped the .c file: arches=%v defconfig=%v allmod=%v",
			c.UsedArches, c.UsedDefconfig, c.UsedAllMod)
	}
	h := findFile(t, report, "include/linux/netdev.h")
	if h.Status != StatusCertified || !h.CoveredByPatchCs {
		t.Errorf("header outcome = %+v, want certified via patch .c", h)
	}
	if len(h.UsedArches) == 0 {
		t.Error("header lost its arch attribution")
	}
}

// A patch carrying several FileDiff entries for one path (split hunk runs)
// must classify as ONE file whose changed-line set is the union across the
// entries — not N aliased outcomes where only the last entry's markers
// reach the mutated tree.
func TestCheckDuplicatePathDiffsMerged(t *testing.T) {
	const path = "drivers/net/netdrv.c"
	tr := fixtureTree()
	c0, _ := tr.Read(path)
	c1 := strings.Replace(c0, "#define DRV_REG 0x04", "#define DRV_REG 0x08", 1)
	fd1, ok := textdiff.Diff(path, path, c0, c1)
	if !ok {
		t.Fatal("first edit changed nothing")
	}
	c2 := strings.Replace(c1, "outw(v, 0x40);", "outw(v, 0x44);", 1)
	fd2, ok := textdiff.Diff(path, path, c1, c2)
	if !ok {
		t.Fatal("second edit changed nothing")
	}
	tr.Write(path, c2)
	report := checkOne(t, tr, fd1, fd2)

	entries := 0
	for _, f := range report.Files {
		if f.Path == path {
			entries++
		}
	}
	if entries != 1 {
		t.Fatalf("report holds %d outcomes for %s, want 1: %+v", entries, path, report.Files)
	}
	f := findFile(t, report, path)
	if f.Mutations != 2 || f.FoundMutations != 2 {
		t.Errorf("mutations = %d found = %d, want 2/2 (union of both diffs)",
			f.Mutations, f.FoundMutations)
	}
	if f.Status != StatusCertified {
		t.Errorf("status = %v, want certified: %+v", f.Status, f)
	}
	if !report.Certified() {
		t.Error("merged patch should certify")
	}
}

// dupPathJob prepares one independent patch over a clone of base.
type sessJob struct {
	tree *fstree.Tree
	fd   textdiff.FileDiff
}

func makeSessJobs(t *testing.T, base *fstree.Tree, n int) []sessJob {
	t.Helper()
	jobs := make([]sessJob, n)
	for i := range jobs {
		tr := base.Clone()
		var path, old, edited string
		if i%3 == 2 {
			path = "include/linux/netdev.h"
			old, _ = tr.Read(path)
			edited = strings.Replace(old, "<< 4)", fmt.Sprintf("<< %d)", 5+i), 1)
		} else {
			path = "drivers/net/netdrv.c"
			old, _ = tr.Read(path)
			edited = strings.Replace(old, "0x40", fmt.Sprintf("0x%02x", 0x41+i), 1)
		}
		fd, ok := textdiff.Diff(path, path, old, edited)
		if !ok {
			t.Fatalf("job %d changed nothing", i)
		}
		tr.Write(path, edited)
		jobs[i] = sessJob{tree: tr, fd: fd}
	}
	return jobs
}

// Checkers handed out by one Session must be usable concurrently (run
// under -race) and produce exactly the reports a serial run produces —
// including the shared caches' counters, which must be invariant under
// interleaving because every key is computed exactly once.
func TestSessionCheckerConcurrent(t *testing.T) {
	base := fixtureTree()
	const n = 12
	jobs := makeSessJobs(t, base, n)
	model := vclock.DefaultModel(7)

	run := func(concurrent bool) ([]*PatchReport, CacheStats, CacheStats) {
		sess, err := NewSession(base)
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		reports := make([]*PatchReport, n)
		check := func(i int) {
			ch := sess.Checker(jobs[i].tree, model, Options{})
			r, err := ch.CheckPatch(fmt.Sprintf("commit-%d", i), []textdiff.FileDiff{jobs[i].fd})
			if err != nil {
				t.Errorf("CheckPatch %d: %v", i, err)
				return
			}
			reports[i] = r
		}
		if concurrent {
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					check(i)
				}(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < n; i++ {
				check(i)
			}
		}
		return reports, sess.ConfigCacheStats(), sess.TokenCacheStats()
	}

	serial, serialCfg, serialTok := run(false)
	parallel, parallelCfg, parallelTok := run(true)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("report %d diverges between serial and concurrent runs:\nserial:   %+v\nparallel: %+v",
				i, serial[i], parallel[i])
		}
	}
	if serialCfg != parallelCfg {
		t.Errorf("config-cache stats diverge: serial %+v, parallel %+v", serialCfg, parallelCfg)
	}
	if serialTok != parallelTok {
		t.Errorf("token-cache stats diverge: serial %+v, parallel %+v", serialTok, parallelTok)
	}
	if serialCfg.Misses == 0 || serialTok.Misses == 0 {
		t.Errorf("caches unused? config=%+v token=%+v", serialCfg, serialTok)
	}
}
