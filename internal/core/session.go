package core

import (
	"fmt"

	"jmake/internal/ccache"
	"jmake/internal/cpp"
	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/metrics"
	"jmake/internal/vclock"
)

// Session shares the window-invariant state across the checkers of an
// evaluation run: build metadata, discovered architectures, the
// arch-heuristic index, and the configuration cache. The paper's
// evaluation re-checks these per patch only because git clean wipes
// generated state; the inputs (Kconfig files, arch trees, Kbuild.meta) do
// not change across the evaluation window, so sharing is sound and keeps
// the 12,000-patch run tractable.
type Session struct {
	meta    *kbuild.Meta
	arches  map[string]*kbuild.Arch
	archIx  *archIndex
	metrics *metrics.Registry
	configs *ConfigProvider
	tokens  *cpp.TokenCache
	results *ccache.Cache
}

// NewSession captures shared state from a base tree (any window snapshot).
// The session owns one metrics.Registry; every shared cache's counters
// are series in it, so the scattered per-package counter piles are views
// over a single home.
func NewSession(base *fstree.Tree) (*Session, error) {
	meta, err := kbuild.LoadMeta(base)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	arches := kbuild.DiscoverArches(base, meta)
	reg := metrics.NewRegistry()
	return &Session{
		meta:    meta,
		arches:  arches,
		archIx:  buildArchIndex(base, arches),
		metrics: reg,
		configs: NewConfigProviderIn(reg),
		tokens:  cpp.NewTokenCacheIn(reg),
		results: ccache.NewIn(reg),
	}, nil
}

// Metrics returns the session's registry. Counters created by a
// replacement result cache (SetResultCache) live in that cache's own
// registry; everything else counts here.
func (s *Session) Metrics() *metrics.Registry { return s.metrics }

// SetResultCache replaces the shared compile-result cache — e.g. with one
// warm-started from disk (ccache.Load) — or disables result caching
// entirely (nil). Call it before the first Checker; verdicts and reported
// durations are identical either way, only real compute changes.
func (s *Session) SetResultCache(c *ccache.Cache) { s.results = c }

// ResultCache returns the shared compile-result cache (nil when disabled),
// e.g. to persist it with ccache.Save after a window completes.
func (s *Session) ResultCache() *ccache.Cache { return s.results }

// ResultCacheStats snapshots the shared compile-result cache counters.
// Unlike the config/token counters these are warmth-dependent (a
// -cache-dir warm start converts misses to hits), so they belong with the
// volatile runtime metrics, never in the default reproducible report.
func (s *Session) ResultCacheStats() (ccache.StatsSet, bool) {
	if s.results == nil {
		return ccache.StatsSet{}, false
	}
	return s.results.Stats(), true
}

// Checker builds a checker over one patch snapshot, reusing the session's
// shared state. Resilience state (fault injector, budget ledger, circuit
// breaker) is deliberately NOT shared: it lives per patch on the checker,
// configured via opts, so concurrent workers cannot perturb each other's
// fault sequences and same-seed runs stay deterministic.
func (s *Session) Checker(tree *fstree.Tree, model *vclock.Model, opts Options) *Checker {
	return &Checker{
		tree:    tree,
		model:   model,
		opts:    opts.withDefaults(),
		meta:    s.meta,
		arches:  s.arches,
		archIx:  s.archIx,
		configs: s.configs,
		tokens:  s.tokens,
		results: s.results,
	}
}

// KconfigProvider adapts the session's shared per-arch Kconfig cache to
// the loader signature the whole-tree audit takes (audit.Params.Kconfig):
// architectures the session already discovered are served from the warm
// parse, anything else — e.g. a fixture corpus's pseudo-architecture —
// parses fresh from base. Kconfig inputs are window-invariant (see the
// Session doc), so serving a cached parse for any window snapshot is sound.
func (s *Session) KconfigProvider(base *fstree.Tree) func(archName, rootPath string) (*kconfig.Tree, error) {
	return func(archName, rootPath string) (*kconfig.Tree, error) {
		if a := s.arches[archName]; a != nil && a.KconfigRoot == rootPath {
			return s.configs.KconfigTree(base, a)
		}
		return kconfig.Parse(kbuild.TreeSource{T: base}, rootPath)
	}
}

// ConfigCacheStats returns the shared Kconfig-valuation cache counters.
// Every valuation is computed exactly once under the provider's lock, so
// the counters are worker-count-invariant and safe to put in
// reproducible reports.
func (s *Session) ConfigCacheStats() CacheStats {
	return s.configs.Stats()
}

// TokenCacheStats returns the shared lexing cache counters, with the same
// worker-count invariance (each content key is computed exactly once).
func (s *Session) TokenCacheStats() CacheStats {
	h, m := s.tokens.Stats()
	return CacheStats{Hits: h, Misses: m}
}
