package core

import (
	"fmt"
	"sort"
	"strings"

	"jmake/internal/ccache"
	"jmake/internal/cpp"
	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/metrics"
	"jmake/internal/vclock"
)

// Session shares the window-invariant state across the checkers of an
// evaluation run: build metadata, discovered architectures, the
// arch-heuristic index, and the configuration cache. The paper's
// evaluation re-checks these per patch only because git clean wipes
// generated state; the inputs (Kconfig files, arch trees, Kbuild.meta) do
// not change across the evaluation window, so sharing is sound and keeps
// the 12,000-patch run tractable.
type Session struct {
	meta    *kbuild.Meta
	arches  map[string]*kbuild.Arch
	archIx  *archIndex
	metrics *metrics.Registry
	configs *ConfigProvider
	tokens  *cpp.TokenCache
	results *ccache.Cache
	// warm holds the follower-session caches and saved-effective-time
	// ledgers (nil unless EnableWarm was called; nil changes nothing).
	warm *warmState
}

// NewSession captures shared state from a base tree (any window snapshot).
// The session owns one metrics.Registry; every shared cache's counters
// are series in it, so the scattered per-package counter piles are views
// over a single home.
func NewSession(base *fstree.Tree) (*Session, error) {
	meta, err := kbuild.LoadMeta(base)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	arches := kbuild.DiscoverArches(base, meta)
	reg := metrics.NewRegistry()
	return &Session{
		meta:    meta,
		arches:  arches,
		archIx:  buildArchIndex(base, arches),
		metrics: reg,
		configs: NewConfigProviderIn(reg),
		tokens:  cpp.NewTokenCacheIn(reg),
		results: ccache.NewIn(reg),
	}, nil
}

// Metrics returns the session's registry. Counters created by a
// replacement result cache (SetResultCache) live in that cache's own
// registry; everything else counts here.
func (s *Session) Metrics() *metrics.Registry { return s.metrics }

// SetResultCache replaces the shared compile-result cache — e.g. with one
// warm-started from disk (ccache.Load) — or disables result caching
// entirely (nil). Call it before the first Checker; verdicts and reported
// durations are identical either way, only real compute changes.
func (s *Session) SetResultCache(c *ccache.Cache) { s.results = c }

// ResultCache returns the shared compile-result cache (nil when disabled),
// e.g. to persist it with ccache.Save after a window completes.
func (s *Session) ResultCache() *ccache.Cache { return s.results }

// ResultCacheStats snapshots the shared compile-result cache counters.
// Unlike the config/token counters these are warmth-dependent (a
// -cache-dir warm start converts misses to hits), so they belong with the
// volatile runtime metrics, never in the default reproducible report.
func (s *Session) ResultCacheStats() (ccache.StatsSet, bool) {
	if s.results == nil {
		return ccache.StatsSet{}, false
	}
	return s.results.Stats(), true
}

// EnableWarm switches the session into warm (follower) mode: checkers
// built from it share per-session arch-choice and static-Kconfig caches
// and credit cache-served work into saved-effective-time ledgers. Reports
// stay byte-identical to a cold session's — warmth only changes how much
// effective time a check costs, never what it says. Idempotent.
func (s *Session) EnableWarm() {
	if s.warm == nil {
		s.warm = newWarmState()
	}
}

// WarmEnabled reports whether EnableWarm was called.
func (s *Session) WarmEnabled() bool { return s.warm != nil }

// WarmSaved snapshots the warm-session ledgers (zero when not warm).
func (s *Session) WarmSaved() WarmLedger {
	if s.warm == nil {
		return WarmLedger{}
	}
	return s.warm.ledger()
}

// RefreshSummary reports what a Refresh invalidated, for follower
// per-commit statistics.
type RefreshSummary struct {
	// MetaReloaded is true when Kbuild.meta changed: everything derived
	// from the base tree was rebuilt.
	MetaReloaded bool
	// ArchesRebuilt is true when a commit touched arch/: architecture
	// discovery and the arch-heuristic index were recomputed.
	ArchesRebuilt bool
	// KconfigReset is true when a Kconfig input changed and every cached
	// valuation was dropped.
	KconfigReset bool
	// ConfigsInvalidated lists architectures whose cached valuations were
	// dropped individually (empty when KconfigReset dropped them all).
	ConfigsInvalidated []string
	// ChoicesDropped / StaticsDropped / SetupDropped count warm-cache
	// entries invalidated (always zero for a non-warm session).
	ChoicesDropped int
	StaticsDropped int
	SetupDropped   int
}

// Changed reports whether the refresh invalidated anything.
func (r RefreshSummary) Changed() bool {
	return r.MetaReloaded || r.ArchesRebuilt || r.KconfigReset ||
		len(r.ConfigsInvalidated) > 0 || r.ChoicesDropped > 0 ||
		r.StaticsDropped > 0 || r.SetupDropped > 0
}

// Refresh advances the session past a commit: given the tree after the
// commit and the commit's changed paths, it invalidates exactly the
// session state those paths could affect, so every later Checker answers
// as a cold session over the new tree would. Callers must not run
// checkers concurrently with Refresh.
//
// Invalidation rules, from most to least structural:
//
//   - Kbuild.meta        → reload metadata, rediscover architectures,
//     rebuild the arch index, drop every cached valuation and warm entry;
//   - any arch/<A>/ path → rediscover architectures and rebuild the arch
//     index (discovery and the §III-C heuristic both scan arch/), drop
//     <A>'s valuations and set-up state, drop all cached choices/statics;
//   - any file named Kconfig* → drop every valuation, static entry and
//     set-up mark (a shared Kconfig file may be sourced by any root);
//   - any Makefile/Kbuild    → drop cached arch choices and set-up marks
//     (gating-variable extraction walks Makefiles);
//   - .c/.h content          → nothing: the token, result and mutation
//     caches are content-keyed and self-invalidating.
//
// Everything dropped here is a pure recomputation; over-invalidating
// costs only effective time, never correctness, so ambiguous paths take
// the wider rule.
func (s *Session) Refresh(tree *fstree.Tree, changed []string) (RefreshSummary, error) {
	var sum RefreshSummary
	archSet := make(map[string]bool)
	var metaTouched, archTouched, kconfigTouched, makefileTouched bool
	for _, p := range changed {
		p = fstree.Clean(p)
		base := p[strings.LastIndexByte(p, '/')+1:]
		if p == kbuild.MetaPath {
			metaTouched = true
		}
		if rest, ok := strings.CutPrefix(p, "arch/"); ok {
			archTouched = true
			if i := strings.IndexByte(rest, '/'); i > 0 {
				archSet[rest[:i]] = true
			}
		}
		if strings.HasPrefix(base, "Kconfig") {
			kconfigTouched = true
		}
		if base == "Makefile" || base == "Kbuild" {
			makefileTouched = true
		}
	}

	if metaTouched {
		meta, err := kbuild.LoadMeta(tree)
		if err != nil {
			return sum, fmt.Errorf("core: refresh: %w", err)
		}
		s.meta = meta
		sum.MetaReloaded = true
		archTouched = true   // rediscover against the new metadata
		kconfigTouched = true // drop everything valuation-shaped
	}
	if archTouched {
		s.arches = kbuild.DiscoverArches(tree, s.meta)
		s.archIx = buildArchIndex(tree, s.arches)
		sum.ArchesRebuilt = true
		if !kconfigTouched {
			for _, a := range sortedKeys(archSet) {
				s.configs.Invalidate(a)
				sum.ConfigsInvalidated = append(sum.ConfigsInvalidated, a)
			}
		}
	}
	if kconfigTouched {
		s.configs.InvalidateAll()
		sum.KconfigReset = true
	}
	if s.warm != nil {
		if archTouched || makefileTouched {
			sum.ChoicesDropped += s.warm.dropAllChoices()
		}
		if archTouched || kconfigTouched {
			sum.StaticsDropped += s.warm.dropAllStatics()
		}
		switch {
		case kconfigTouched || makefileTouched:
			sum.SetupDropped += s.warm.dropAllSetup()
		case archTouched:
			for _, a := range sortedKeys(archSet) {
				sum.SetupDropped += s.warm.dropSetupArch(a)
			}
		}
	}
	return sum, nil
}

// sortedKeys returns the map's keys in deterministic order.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Checker builds a checker over one patch snapshot, reusing the session's
// shared state. Resilience state (fault injector, budget ledger, circuit
// breaker) is deliberately NOT shared: it lives per patch on the checker,
// configured via opts, so concurrent workers cannot perturb each other's
// fault sequences and same-seed runs stay deterministic.
func (s *Session) Checker(tree *fstree.Tree, model *vclock.Model, opts Options) *Checker {
	return &Checker{
		tree:    tree,
		model:   model,
		opts:    opts.withDefaults(),
		meta:    s.meta,
		arches:  s.arches,
		archIx:  s.archIx,
		configs: s.configs,
		tokens:  s.tokens,
		results: s.results,
		warm:    s.warm,
	}
}

// KconfigProvider adapts the session's shared per-arch Kconfig cache to
// the loader signature the whole-tree audit takes (audit.Params.Kconfig):
// architectures the session already discovered are served from the warm
// parse, anything else — e.g. a fixture corpus's pseudo-architecture —
// parses fresh from base. Kconfig inputs are window-invariant (see the
// Session doc), so serving a cached parse for any window snapshot is sound.
func (s *Session) KconfigProvider(base *fstree.Tree) func(archName, rootPath string) (*kconfig.Tree, error) {
	return func(archName, rootPath string) (*kconfig.Tree, error) {
		if a := s.arches[archName]; a != nil && a.KconfigRoot == rootPath {
			return s.configs.KconfigTree(base, a)
		}
		return kconfig.Parse(kbuild.TreeSource{T: base}, rootPath)
	}
}

// ConfigCacheStats returns the shared Kconfig-valuation cache counters.
// Every valuation is computed exactly once under the provider's lock, so
// the counters are worker-count-invariant and safe to put in
// reproducible reports.
func (s *Session) ConfigCacheStats() CacheStats {
	return s.configs.Stats()
}

// TokenCacheStats returns the shared lexing cache counters, with the same
// worker-count invariance (each content key is computed exactly once).
func (s *Session) TokenCacheStats() CacheStats {
	h, m := s.tokens.Stats()
	return CacheStats{Hits: h, Misses: m}
}
