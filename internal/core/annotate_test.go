package core

import (
	"strings"
	"testing"

	"jmake/internal/textdiff"
)

func TestAnnotateMixedOutcome(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	// One compiled change (the register define) and one escaping change
	// (under a never-set variable) in the same patch.
	edited := strings.Replace(old, "#define DRV_REG 0x04", "#define DRV_REG 0x08", 1)
	edited = strings.Replace(edited, "\tdrv_read(v);",
		"#ifdef CONFIG_TOTALLY_UNKNOWN\n\tprintk(\"ghost\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkOne(t, tr, fd)

	out := Annotate([]textdiff.FileDiff{fd}, report)
	if !strings.Contains(out, "+✓ #define DRV_REG 0x08") {
		t.Errorf("compiled line not marked:\n%s", out)
	}
	if !strings.Contains(out, "✗") || !strings.Contains(out, "ESCAPED: ifdef variable never set in the kernel") {
		t.Errorf("escaped line not marked with diagnosis:\n%s", out)
	}
	covered, relevant := CoverageRatio(report)
	if covered >= relevant || covered == 0 {
		t.Errorf("CoverageRatio = %d/%d, want partial coverage", covered, relevant)
	}
}

func TestAnnotateCommentLines(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(old, "#include <linux/kernel.h>",
			"/* refreshed boilerplate */\n#include <linux/kernel.h>", 1))
	report := checkOne(t, tr, fd)
	out := Annotate([]textdiff.FileDiff{fd}, report)
	if !strings.Contains(out, "+· /* refreshed boilerplate */") {
		t.Errorf("comment line should be marked irrelevant:\n%s", out)
	}
}

func TestAnnotateFullyCovered(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(old, "0x40", "0x44", 1))
	report := checkOne(t, tr, fd)
	out := Annotate([]textdiff.FileDiff{fd}, report)
	if strings.Contains(out, "✗") {
		t.Errorf("fully covered patch shows escapes:\n%s", out)
	}
	covered, relevant := CoverageRatio(report)
	if covered != relevant || covered == 0 {
		t.Errorf("CoverageRatio = %d/%d, want full", covered, relevant)
	}
}
