package core

import (
	"sort"
	"strings"

	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/presence"
)

// This file implements the Options.StaticPresence pre-pass: before any
// build runs, every mutation's changed line gets a presence condition
// (#if nesting stack ∧ Kbuild gate ∧ Kconfig constraints) and three things
// are derived from it:
//
//  1. dead marking — a mutation whose condition is exactly unsatisfiable
//     under every candidate architecture can never surface in a .i, so the
//     checker stops chasing it (and skips the file's builds entirely when
//     every mutation is dead);
//  2. per-architecture allyesconfig visibility predictions, used to order
//     candidate architectures by expected witness count and cross-checked
//     against the actual .i markers (PatchReport.StaticDynamicDisagreements);
//  3. nothing else: live lines keep the full dynamic pipeline, so the
//     certification semantics are unchanged.
//
// Everything here over-approximates satisfiability. Opaque conditions stay
// free variables, unknown gates drop to the stack condition alone, and a
// Kconfig parse failure makes the architecture count as alive — a line is
// only marked dead on an exact proof.

// staticInfo holds the per-file result of the presence pre-pass.
type staticInfo struct {
	fc *presence.File
	// predict[arch][mutID] reports whether the mutation's marker is
	// predicted to appear in the file's .i under that architecture's
	// allyesconfig. Mutations whose condition depends on something the
	// static model cannot resolve are absent — no prediction, no
	// disagreement risk.
	predict map[string]map[string]bool
	// predCount[arch] counts predicted-visible mutations, for ordering
	// candidate architectures.
	predCount map[string]int
}

// archStatic caches per-architecture Kconfig knowledge for the pre-pass.
type archStatic struct {
	arch *kbuild.Arch
	kt   *kconfig.Tree
	// selects are symbols forced by some `select`: the fixpoint raises them
	// regardless of their own dependencies, so their `depends on` must not
	// become a hard constraint.
	selects map[string]bool
	err     error
}

func (c *Checker) staticArch(name string) *archStatic {
	if c.warm != nil {
		// Warm sessions promote this cache to session scope: the Kconfig
		// walk happens once per architecture per session, not per commit.
		// Session.Refresh drops entries when their inputs change.
		return c.warm.staticArch(c, name)
	}
	if as, ok := c.statics[name]; ok {
		return as
	}
	arch := c.arches[name]
	if arch == nil {
		return nil
	}
	as := &archStatic{arch: arch}
	as.kt, as.err = c.configs.KconfigTree(c.tree, arch)
	if as.err == nil {
		as.selects = as.kt.SelectTargets()
	}
	if c.statics == nil {
		c.statics = make(map[string]*archStatic)
	}
	c.statics[name] = as
	return as
}

// archGate pairs an architecture's Kconfig knowledge with the file's Kbuild
// gate under that architecture (nil when the Makefile walk failed).
type archGate struct {
	as   *archStatic
	gate *kbuild.Gate
}

// staticPrepass analyzes every changed file, marks dead mutations, counts
// the make invocations pruned by fully-dead files, and computes visibility
// predictions for .c files.
func (c *Checker) staticPrepass(report *PatchReport, cFiles, hFiles []*fileState) {
	for _, fs := range cFiles {
		c.staticAnalyzeC(fs)
		if fs.allDead() {
			// The file would otherwise have been preprocessed and compiled
			// at least once.
			report.StaticSkippedMakeI++
			report.StaticSkippedMakeO++
		}
	}
	for _, fs := range hFiles {
		c.staticAnalyzeH(fs)
		if fs.allDead() {
			report.StaticSkippedMakeI++
		}
	}
}

// staticAnalyzeC computes presence conditions for a changed .c file, marks
// mutations dead when unsatisfiable under every candidate architecture, and
// predicts per-architecture allyesconfig visibility for the live ones.
func (c *Checker) staticAnalyzeC(fs *fileState) {
	content, err := c.tree.Read(fs.path)
	if err != nil {
		return
	}
	si := &staticInfo{
		fc:        presence.Analyze(fs.path, content),
		predict:   make(map[string]map[string]bool),
		predCount: make(map[string]int),
	}
	fs.static = si

	// The candidate architectures are exactly the ones the dynamic loop
	// would try (§III-C); a witness can only ever come from those.
	var archNames []string
	seen := make(map[string]bool)
	for _, ac := range c.selectArches(fs.path, true) {
		if !seen[ac.Arch] {
			seen[ac.Arch] = true
			archNames = append(archNames, ac.Arch)
		}
	}
	ags := c.archGates(fs.path, archNames, true)

	for _, m := range fs.muts {
		m.dead = condDead(si.fc.LineCond(m.mut.Line), ags)
	}
	for _, an := range archNames {
		c.predictArch(fs, si, an)
	}
}

// staticAnalyzeH marks dead mutations in a changed header. Headers have no
// Kbuild gate of their own; deadness is proven against the #if stack and
// every working architecture's Kconfig tree (an arch/<A>/ header against A
// alone). Predictions are not computed: which candidate .c witnesses a
// header is not derivable from the header's own conditions.
func (c *Checker) staticAnalyzeH(fs *fileState) {
	content, err := c.tree.Read(fs.path)
	if err != nil {
		return
	}
	si := &staticInfo{
		fc:        presence.Analyze(fs.path, content),
		predict:   make(map[string]map[string]bool),
		predCount: make(map[string]int),
	}
	fs.static = si
	ags := c.archGates(fs.path, c.headerArches(fs.path), false)
	for _, m := range fs.muts {
		m.dead = condDead(si.fc.LineCond(m.mut.Line), ags)
	}
}

// headerArches lists the architectures whose compilations could pull in the
// header: its own for arch/<A>/ headers, every working one otherwise.
func (c *Checker) headerArches(path string) []string {
	if strings.HasPrefix(path, "arch/") {
		rest := strings.TrimPrefix(path, "arch/")
		if i := strings.IndexByte(rest, '/'); i > 0 {
			if a := c.arches[rest[:i]]; a != nil && !a.Broken {
				return []string{rest[:i]}
			}
			return nil
		}
	}
	var out []string
	for _, name := range kbuild.ArchNames(c.arches) {
		if !c.arches[name].Broken {
			out = append(out, name)
		}
	}
	return out
}

// archGates resolves each architecture's Kconfig context and (for gated .c
// files) the file's Kbuild gate under it.
func (c *Checker) archGates(path string, archNames []string, gated bool) []archGate {
	var out []archGate
	for _, an := range archNames {
		as := c.staticArch(an)
		if as == nil {
			continue
		}
		ag := archGate{as: as}
		if gated {
			if g, err := kbuild.FileGate(c.tree, path, an); err == nil {
				ag.gate = &g
			}
		}
		out = append(out, ag)
	}
	return out
}

// condDead reports whether cond is exactly unsatisfiable under every
// candidate architecture. No candidates means no proof.
func condDead(cond presence.Formula, ags []archGate) bool {
	if len(ags) == 0 {
		return false
	}
	for _, ag := range ags {
		if archAlive(ag.as, cond, ag.gate) {
			return false
		}
	}
	return true
}

// archAlive reports whether cond could hold under some configuration of one
// architecture: the condition is conjoined with the file's Kbuild gate and
// the Kconfig constraints over its symbols (presence.ArchFormula), then
// checked for satisfiability. Any gap in knowledge — a parse failure, or a
// formula wider than the SAT bound — errs toward alive.
func archAlive(as *archStatic, cond presence.Formula, gate *kbuild.Gate) bool {
	if as.err != nil {
		return true
	}
	f := presence.ArchFormula(as.kt, as.selects, cond, gate)
	return presence.Decide(f) != presence.SatNo
}

// predictArch evaluates each live mutation's condition under one
// architecture's allyesconfig. Only conditions the model fully resolves
// produce a prediction; define-kind mutations never do (their markers
// surface at macro use sites, not at the definition line).
func (c *Checker) predictArch(fs *fileState, si *staticInfo, archName string) {
	as := c.staticArch(archName)
	if as == nil || as.err != nil || as.arch.Broken {
		return
	}
	gate, gerr := kbuild.FileGate(c.tree, fs.path, archName)
	if gerr != nil {
		return
	}
	cfg, _, err := c.configs.Get(c.tree, as.arch, ConfigChoice{Kind: ConfigAllYes}, nil)
	if err != nil {
		return
	}
	// The file itself must be reachable for its markers to appear at all.
	for _, v := range gate.Vars {
		if cfg.Value(v) == kconfig.No {
			return
		}
	}
	asModule := gate.OwnModule || (gate.OwnVar != "" && cfg.Value(gate.OwnVar) == kconfig.Mod)
	know := func(name string) (bool, bool) {
		switch name {
		case "defined(MODULE)", "?MODULE":
			return asModule, true
		}
		if !presence.IsConfigSymbol(name) {
			return false, false
		}
		base := strings.TrimPrefix(name, "CONFIG_")
		if as.kt.Symbol(base) != nil {
			return cfg.Value(base) == kconfig.Yes, true
		}
		if root, ok := strings.CutSuffix(base, "_MODULE"); ok {
			if as.kt.Symbol(root) != nil {
				return cfg.Value(root) == kconfig.Mod, true
			}
		}
		return false, true // undeclared: autoconf never defines it
	}
	preds := make(map[string]bool)
	for _, m := range fs.muts {
		if m.dead || m.mut.Kind == "define" {
			continue
		}
		v, known := presence.EvalPartial(si.fc.LineCond(m.mut.Line), know)
		if !known {
			continue
		}
		preds[m.mut.ID] = v
		if v {
			si.predCount[archName]++
		}
	}
	if len(preds) > 0 {
		si.predict[archName] = preds
	}
}

// orderByPredictedWitnesses stable-sorts candidate architectures by how
// many mutations their allyesconfig is predicted to witness, most first.
// Ties keep the merge order (host architecture first).
func orderByPredictedWitnesses(choices []ArchChoice, cFiles []*fileState) {
	score := make(map[string]int, len(choices))
	for _, ac := range choices {
		for _, fs := range cFiles {
			if fs.static != nil {
				score[ac.Arch] += fs.static.predCount[ac.Arch]
			}
		}
	}
	sort.SliceStable(choices, func(i, j int) bool {
		return score[choices[i].Arch] > score[choices[j].Arch]
	})
}

// recordDisagreements cross-checks one allyesconfig .i against the file's
// static predictions. Each prediction is checked once; a mismatch is a
// checker bug or a constraint the static model missed, never silent.
func (c *Checker) recordDisagreements(report *PatchReport, fs *fileState, archName string, found map[string]bool) {
	if fs.static == nil {
		return
	}
	preds := fs.static.predict[archName]
	for _, m := range fs.muts {
		want, ok := preds[m.mut.ID]
		if !ok {
			continue
		}
		if got := found[m.mut.ID]; got != want {
			report.StaticDynamicDisagreements = append(report.StaticDynamicDisagreements,
				StaticDisagreement{File: fs.path, Line: m.mut.Line, Arch: archName, Predicted: want, Observed: got})
			delete(preds, m.mut.ID)
		}
	}
}

// sortDisagreements puts the report's cross-check failures in a canonical
// order so the JSON output is invariant under worker scheduling.
func sortDisagreements(ds []StaticDisagreement) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Arch < b.Arch
	})
}
