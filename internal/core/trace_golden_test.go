package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jmake/internal/textdiff"
	"jmake/internal/trace"
	"jmake/internal/vclock"
)

// The golden trace for the presence corpus's full patch: pins the exact
// span tree — kinds, virtual times, attributes, cache outcomes — that
// checking examples/presence/src produces, so any drift in span taxonomy
// or clock charging shows up as a readable text diff. Regenerate after an
// intentional change with UPDATE_GOLDEN=1.
func TestCorpusGoldenTrace(t *testing.T) {
	tr := corpusTree(t)
	edit := func(path, from, to string) textdiff.FileDiff {
		old, err := tr.Read(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return applyEdit(t, tr, path, strings.Replace(old, from, to, 1))
	}
	fds := []textdiff.FileDiff{
		edit("drivers/nested.c", "int foo_and_bar;", "int foo_and_bar2;"),
		edit("drivers/elif.c", "int second;", "int second2;"),
		edit("drivers/elsecase.c", "int without_foo;", "int without_foo2;"),
		edit("drivers/gated.c", "int only_as_module;", "int only_as_module2;"),
		edit("drivers/ifzero.c", "int contradiction;", "int contradiction2;"),
	}
	model := vclock.DefaultModel(1)
	ch, err := NewChecker(tr, model, nil, Options{StaticPresence: true})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	rec := trace.NewRecorder(trace.KindPatch, model.NewClock(), trace.A("commit", "corpus"))
	ch.SetTrace(rec)
	report, err := ch.CheckPatch("corpus", fds)
	if err != nil {
		t.Fatalf("CheckPatch: %v", err)
	}

	session := &trace.Trace{Spans: []*trace.Span{rec.Finish()}}
	session.Stamp()

	// Cross-check before pinning: the span extent is the report total, and
	// the Chrome rendering of the same trace is structurally valid.
	if got := session.Spans[0].Dur(); got != report.Total {
		t.Fatalf("span extent %v != report total %v", got, report.Total)
	}
	if err := trace.ValidateChrome(session.Chrome(2)); err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}

	got := session.Tree()
	path := filepath.Join("testdata", "corpus_trace.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("corpus trace drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
