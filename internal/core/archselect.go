package core

import (
	"sort"
	"strings"

	"jmake/internal/fstree"
	"jmake/internal/kbuild"
)

// ConfigKind distinguishes generated configurations from prepared ones.
type ConfigKind int

// Configuration kinds.
const (
	ConfigAllYes ConfigKind = iota + 1
	ConfigDefconfig
	// ConfigAllMod is the paper's proposed extension (§V-B): allmodconfig
	// builds everything modular, defining MODULE and thereby covering
	// `#ifdef MODULE` regions, at the cost of nearly doubling the
	// configurations tried.
	ConfigAllMod
	// ConfigCoverage is a synthesized configuration that forces specific
	// variables on or off to activate an otherwise-uncovered region — the
	// Vampyr/Troll-style generation the paper points to (§VI-VII).
	ConfigCoverage
)

func (k ConfigKind) String() string {
	switch k {
	case ConfigDefconfig:
		return "defconfig"
	case ConfigAllMod:
		return "allmodconfig"
	case ConfigCoverage:
		return "coverage"
	default:
		return "allyesconfig"
	}
}

// ConfigChoice is one configuration to try for an architecture.
type ConfigChoice struct {
	Kind ConfigKind
	// Path is the defconfig file path for ConfigDefconfig.
	Path string
}

// ArchChoice is one candidate architecture with its ordered configurations.
type ArchChoice struct {
	Arch    string
	Configs []ConfigChoice
}

// archIndex maps configuration variable names to the architectures whose
// subtrees mention them, and to defconfig files mentioning them, per the
// paper's heuristic ("if such a configuration variable is also mentioned
// somewhere in a subdirectory of arch", §III-C).
type archIndex struct {
	varArches     map[string][]string
	varDefconfigs map[string][]string
}

// buildArchIndex scans arch/*/ Kconfig, Makefile and configs/ files once
// per checkout.
func buildArchIndex(t *fstree.Tree, arches map[string]*kbuild.Arch) *archIndex {
	ix := &archIndex{
		varArches:     make(map[string][]string),
		varDefconfigs: make(map[string][]string),
	}
	names := kbuild.ArchNames(arches)
	for _, arch := range names {
		seen := make(map[string]bool)
		for _, p := range t.Under("arch/" + arch) {
			base := p[strings.LastIndexByte(p, '/')+1:]
			isDefconfig := strings.Contains(p, "/configs/")
			if !isDefconfig && base != "Kconfig" && base != "Makefile" {
				continue
			}
			content, err := t.Read(p)
			if err != nil {
				continue
			}
			for _, name := range referencedVarNames(content) {
				if isDefconfig {
					ix.varDefconfigs[name] = append(ix.varDefconfigs[name], p)
					continue
				}
				if !seen[name] {
					seen[name] = true
					ix.varArches[name] = append(ix.varArches[name], arch)
				}
			}
		}
	}
	return ix
}

// referencedVarNames extracts configuration variable names from Kconfig,
// Makefile or defconfig text: CONFIG_X references and Kconfig declarations
// or expressions mentioning bare upper-case identifiers after keywords.
func referencedVarNames(content string) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, raw := range strings.Split(content, "\n") {
		line := strings.TrimSpace(raw)
		// CONFIG_-prefixed references (Makefiles, defconfigs, "# CONFIG_X is
		// not set" lines).
		for {
			i := strings.Index(line, "CONFIG_")
			if i < 0 {
				break
			}
			rest := line[i+len("CONFIG_"):]
			j := 0
			for j < len(rest) && isVarChar(rest[j]) {
				j++
			}
			add(rest[:j])
			line = rest[j:]
		}
		// Kconfig declarations: "config NAME" / "menuconfig NAME".
		trimmed := strings.TrimSpace(raw)
		for _, kw := range []string{"config ", "menuconfig ", "select ", "depends on "} {
			if strings.HasPrefix(trimmed, kw) {
				for _, tok := range strings.FieldsFunc(trimmed[len(kw):], func(r rune) bool {
					return !(r == '_' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
				}) {
					if tok != "" && tok[0] >= 'A' && tok[0] <= 'Z' {
						add(tok)
					}
				}
			}
		}
	}
	return out
}

func isVarChar(c byte) bool {
	return c == '_' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z'
}

// selectArches returns the ordered (architecture, configurations) candidates
// for one file, per paper §III-C:
//
//  1. a file under arch/<A>/ is compiled with <A>'s cross-compiler only;
//  2. otherwise the host architecture is tried first (a "simple make",
//     counting on CONFIG_COMPILE_TEST to cover foreign devices);
//  3. then any architecture whose subtree mentions one of the file's
//     gating configuration variables, with that architecture's
//     allyesconfig — plus one matching defconfig from its configs/
//     directory, chosen deterministically.
//
// useDefconfigs disables the configs/ exploration (the .h fallback when
// too many candidate .c files exist, §III-E).
//
// Warm sessions serve the answer from a session-scoped cache: the result
// depends only on the file path, the arch index, the tree's Makefiles and
// the options, all of which Session.Refresh invalidates on change.
func (c *Checker) selectArches(file string, useDefconfigs bool) []ArchChoice {
	if c.warm != nil {
		return c.warm.selectArches(c, file, useDefconfigs)
	}
	return c.computeSelectArches(file, useDefconfigs)
}

func (c *Checker) computeSelectArches(file string, useDefconfigs bool) []ArchChoice {
	file = fstree.Clean(file)
	if strings.HasPrefix(file, "arch/") {
		rest := strings.TrimPrefix(file, "arch/")
		if i := strings.IndexByte(rest, '/'); i > 0 {
			arch := rest[:i]
			if _, ok := c.arches[arch]; ok {
				cs := []ConfigChoice{{Kind: ConfigAllYes}}
				if c.opts.TryAllModConfig {
					cs = append(cs, ConfigChoice{Kind: ConfigAllMod})
				}
				return []ArchChoice{{Arch: arch, Configs: cs}}
			}
			return nil // unsupported architecture
		}
	}

	gating, err := kbuild.GatingConfigs(c.tree, file, kbuild.HostArch)
	if err != nil {
		gating = nil // no Makefile: fall back to the host architecture alone
	}

	var out []ArchChoice
	added := make(map[string]int) // arch -> index in out
	baseConfigs := func() []ConfigChoice {
		cs := []ConfigChoice{{Kind: ConfigAllYes}}
		if c.opts.TryAllModConfig {
			cs = append(cs, ConfigChoice{Kind: ConfigAllMod})
		}
		return cs
	}
	addArch := func(arch string) int {
		if i, ok := added[arch]; ok {
			return i
		}
		out = append(out, ArchChoice{Arch: arch, Configs: baseConfigs()})
		added[arch] = len(out) - 1
		return len(out) - 1
	}
	addArch(kbuild.HostArch)

	for _, v := range gating {
		for _, arch := range c.archIx.varArches[v] {
			addArch(arch)
		}
		if !useDefconfigs {
			continue
		}
		if defs := c.archIx.varDefconfigs[v]; len(defs) > 0 {
			// "JMake additionally uses one such configuration file chosen at
			// random" — deterministic here, keyed by file identity.
			pick := defs[int(hashString(file+v))%len(defs)]
			arch := archOfDefconfig(pick)
			i := addArch(arch)
			if !hasDefconfig(out[i].Configs, pick) {
				out[i].Configs = append(out[i].Configs, ConfigChoice{Kind: ConfigDefconfig, Path: pick})
			}
		}
	}
	return out
}

func hasDefconfig(cs []ConfigChoice, path string) bool {
	for _, cc := range cs {
		if cc.Kind == ConfigDefconfig && cc.Path == path {
			return true
		}
	}
	return false
}

// archOfDefconfig extracts the architecture from arch/<a>/configs/<f>.
func archOfDefconfig(p string) string {
	rest := strings.TrimPrefix(p, "arch/")
	if i := strings.IndexByte(rest, '/'); i > 0 {
		return rest[:i]
	}
	return ""
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// mergeArchChoices combines per-file choices preserving order: host arch
// first, then in first-seen order (the paper compiles all of a patch's
// files relevant to an architecture together).
func mergeArchChoices(per [][]ArchChoice) []ArchChoice {
	var out []ArchChoice
	index := make(map[string]int)
	for _, choices := range per {
		for _, ch := range choices {
			i, ok := index[ch.Arch]
			if !ok {
				out = append(out, ArchChoice{Arch: ch.Arch, Configs: append([]ConfigChoice(nil), ch.Configs...)})
				index[ch.Arch] = len(out) - 1
				continue
			}
			for _, cc := range ch.Configs {
				if cc.Kind == ConfigAllYes || cc.Kind == ConfigAllMod {
					continue // already present for every arch
				}
				if !hasDefconfig(out[i].Configs, cc.Path) {
					out[i].Configs = append(out[i].Configs, cc)
				}
			}
		}
	}
	// Host arch first, remaining in insertion order.
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Arch == kbuild.HostArch && out[j].Arch != kbuild.HostArch
	})
	return out
}
