package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jmake/internal/kbuild"
	"jmake/internal/vclock"
)

// finalizeChecker builds a checker with a controllable runState so the
// finalize precedence can be tested in isolation.
func finalizeChecker(t *testing.T, exhausted bool) *Checker {
	t.Helper()
	ch, err := NewChecker(fixtureTree(), vclock.DefaultModel(1), nil, Options{})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	ch.run = newRunState(ch.opts, "finalize-test")
	ch.run.exhausted = exhausted
	return ch
}

func TestFinalizePrecedence(t *testing.T) {
	covered := func(file string) *mutEntry {
		return &mutEntry{mut: Mutation{ID: `@"other:` + file + `:1"`, CoversLines: []int{1}}, file: file, covered: true}
	}
	pending := func(file string) *mutEntry {
		return &mutEntry{mut: Mutation{ID: `@"other:` + file + `:2"`, CoversLines: []int{2}}, file: file}
	}

	cases := []struct {
		name      string
		exhausted bool
		fs        *fileState
		want      Status
	}{
		{
			// Certification requires all mutations witnessed + a compile;
			// it then beats every other condition, including exhaustion.
			name: "certified beats exhaustion", exhausted: true,
			fs:   &fileState{path: "a.c", kind: CFile, muts: []*mutEntry{covered("a.c")}, compiledOK: true},
			want: StatusCertified,
		},
		{
			name: "header certified without compile", exhausted: false,
			fs:   &fileState{path: "a.h", kind: HFile, muts: []*mutEntry{covered("a.h")}},
			want: StatusCertified,
		},
		{
			// With work left and the budget gone, exhaustion beats both the
			// escapes and build-failed verdicts.
			name: "exhaustion beats escapes", exhausted: true,
			fs: &fileState{path: "a.c", kind: CFile,
				muts: []*mutEntry{covered("a.c"), pending("a.c")}, compiledOK: true},
			want: StatusBudgetExhausted,
		},
		{
			name: "exhaustion beats build-failed", exhausted: true,
			fs: &fileState{path: "a.c", kind: CFile, muts: []*mutEntry{pending("a.c")},
				lastErr: errors.New("compile error")},
			want: StatusBudgetExhausted,
		},
		{
			name: "escapes when compiled with pending", exhausted: false,
			fs: &fileState{path: "drivers/net/netdrv.c", kind: CFile,
				muts: []*mutEntry{covered("drivers/net/netdrv.c"), pending("drivers/net/netdrv.c")}, compiledOK: true},
			want: StatusEscapes,
		},
		{
			name: "build failed without error detail", exhausted: false,
			fs:   &fileState{path: "a.c", kind: CFile, muts: []*mutEntry{pending("a.c")}},
			want: StatusBuildFailed,
		},
		{
			name: "unsupported arch from broken toolchain", exhausted: false,
			fs: &fileState{path: "a.c", kind: CFile, muts: []*mutEntry{pending("a.c")},
				lastErr: fmt.Errorf("%w: mips", kbuild.ErrBrokenArch)},
			want: StatusUnsupportedArch,
		},
		{
			name: "no makefile", exhausted: false,
			fs: &fileState{path: "a.c", kind: CFile, muts: []*mutEntry{pending("a.c")},
				lastErr: fmt.Errorf("%w: drivers/x", kbuild.ErrNoMakefile)},
			want: StatusNoMakefile,
		},
		{
			// Quarantine wins over the broken-arch mapping even though the
			// wrapped error chain could match either sentinel.
			name: "quarantined arch", exhausted: false,
			fs: &fileState{path: "a.c", kind: CFile, muts: []*mutEntry{pending("a.c")},
				lastErr: fmt.Errorf("%w: x86_64", errArchQuarantined)},
			want: StatusArchQuarantined,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch := finalizeChecker(t, tc.exhausted)
			tc.fs.state = &FileOutcome{Path: tc.fs.path, Kind: tc.fs.kind, Mutations: len(tc.fs.muts)}
			ch.finalize(&PatchReport{}, tc.fs)
			if got := tc.fs.state.Status; got != tc.want {
				t.Errorf("status = %v, want %v (outcome %+v)", got, tc.want, tc.fs.state)
			}
		})
	}
}

// TestFinalizeBudgetNeverCertifies drives finalize through real fault
// plans at a range of budgets: whatever the plan does, a certified file
// always has all mutations found, and an exhausted run never reports
// escapes or build failures for incomplete files.
func TestFinalizeBudgetLadder(t *testing.T) {
	for _, budget := range []time.Duration{
		time.Millisecond, time.Second, 10 * time.Second, 30 * time.Second, 0,
	} {
		tr, fds := chaosEdits(t)
		r := chaosRun(t, tr, fds, Options{Budget: budget})
		for _, f := range r.Files {
			switch f.Status {
			case StatusCertified:
				if f.FoundMutations != f.Mutations {
					t.Errorf("budget %v: %s certified incomplete", budget, f.Path)
				}
			case StatusEscapes, StatusBuildFailed:
				if r.BudgetExhausted {
					t.Errorf("budget %v: %s reported %v on an exhausted run", budget, f.Path, f.Status)
				}
			}
		}
		if budget == 0 && !r.Certified() {
			t.Errorf("unlimited budget should certify the fixture patch: %+v", r.Files)
		}
	}
}

// TestMarkErrOnlyBlamesRelevantFiles: a builder-creation failure for one
// architecture must not smear error state onto files that architecture
// would never compile (the satellite fix for markErr).
func TestMarkErrOnlyBlamesRelevantFiles(t *testing.T) {
	armFile := &fileState{path: "arch/arm/kernel/entry.c", kind: CFile}
	hostFile := &fileState{path: "drivers/net/netdrv.c", kind: CFile}
	files := []*fileState{armFile, hostFile}

	err := fmt.Errorf("%w: arm", kbuild.ErrBrokenArch)
	// What processCFiles now does for an arm builder failure:
	markErr(relevantFiles(files, "arm"), err)

	if armFile.lastErr == nil {
		t.Error("arm file should carry the arm builder error")
	}
	if hostFile.lastErr == nil {
		t.Error("non-arch files are relevant to every architecture, including arm")
	}

	// And for an x86_64 builder failure, the arm-specific file is spared.
	armFile2 := &fileState{path: "arch/arm/kernel/entry.c", kind: CFile}
	host2 := &fileState{path: "drivers/net/netdrv.c", kind: CFile}
	markErr(relevantFiles([]*fileState{armFile2, host2}, "x86_64"), err)
	if armFile2.lastErr != nil {
		t.Error("arch/arm file blamed for an x86_64 builder failure")
	}
	if host2.lastErr == nil {
		t.Error("host-relevant file should carry the error")
	}
}
