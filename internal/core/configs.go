package core

import (
	"fmt"
	"sync"

	"jmake/internal/faultinject"
	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/metrics"
)

// ConfigProvider caches parsed Kconfig trees and computed configurations
// across patches. The evaluation re-creates configurations for every patch
// (the paper cleans the working tree between patches, so `make
// allyesconfig` runs again and its cost is charged again), but the
// *valuation* is identical as long as the Kconfig files are unchanged, so
// caching it is sound and keeps the 12,000-patch evaluation tractable.
//
// A ConfigProvider is safe for concurrent use by the evaluation workers:
// both caches are checked and filled under one mutex, so every valuation
// is computed exactly once and the hit/miss counters are invariant under
// concurrency (misses always equal the number of distinct keys), keeping
// pipeline metrics reproducible across -workers settings.
type ConfigProvider struct {
	mu     sync.Mutex
	trees  map[string]*kconfig.Tree
	values map[string]*kconfig.Config
	// Counter handles into the owning metrics registry — the registry is
	// the single home for these numbers; Stats() is a view over it.
	hits   *metrics.Counter
	misses *metrics.Counter
}

// CacheStats are lookup counters for one shared cache.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns Hits over total lookups (0 when never used).
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewConfigProvider returns an empty provider counting into a private
// registry.
func NewConfigProvider() *ConfigProvider {
	return NewConfigProviderIn(metrics.NewRegistry())
}

// NewConfigProviderIn returns an empty provider whose counters are
// series in reg.
func NewConfigProviderIn(reg *metrics.Registry) *ConfigProvider {
	return &ConfigProvider{
		trees:  make(map[string]*kconfig.Tree),
		values: make(map[string]*kconfig.Config),
		hits:   reg.Counter("config_cache_hits"),
		misses: reg.Counter("config_cache_misses"),
	}
}

// KconfigTree returns the parsed Kconfig hierarchy for an architecture.
func (p *ConfigProvider) KconfigTree(t *fstree.Tree, arch *kbuild.Arch) (*kconfig.Tree, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kconfigTreeLocked(t, arch)
}

func (p *ConfigProvider) kconfigTreeLocked(t *fstree.Tree, arch *kbuild.Arch) (*kconfig.Tree, error) {
	if kt, ok := p.trees[arch.Name]; ok {
		return kt, nil
	}
	kt, err := kconfig.Parse(kbuild.TreeSource{T: t}, arch.KconfigRoot)
	if err != nil {
		return nil, fmt.Errorf("core: parsing %s: %w", arch.KconfigRoot, err)
	}
	p.trees[arch.Name] = kt
	return kt, nil
}

// Get returns the configuration for (arch, choice), computing and caching
// it on first use. The returned symbol count prices the virtual
// `make allyesconfig` / defconfig invocation. inj optionally injects
// transient generation failures — the valuation cache cannot absorb
// those, because the paper's evaluation regenerates the configuration
// for every patch and any regeneration can fail; pass nil to disable.
func (p *ConfigProvider) Get(t *fstree.Tree, arch *kbuild.Arch, choice ConfigChoice, inj *faultinject.Injector) (*kconfig.Config, int, error) {
	if inj.FailConfig(arch.Name + ":" + choice.Kind.String() + choice.Path) {
		return nil, 0, fmt.Errorf("%w: config generation failed (%s, %s)",
			kbuild.ErrTransient, arch.Name, choice.Kind)
	}
	key := arch.Name + "|" + choice.Kind.String() + "|" + choice.Path
	p.mu.Lock()
	defer p.mu.Unlock()
	kt, err := p.kconfigTreeLocked(t, arch)
	if err != nil {
		return nil, 0, err
	}
	if cfg, ok := p.values[key]; ok {
		p.hits.Inc()
		return cfg, kt.Len(), nil
	}
	p.misses.Inc()
	var cfg *kconfig.Config
	switch choice.Kind {
	case ConfigAllMod:
		cfg = kt.AllModConfig()
	case ConfigDefconfig:
		content, rerr := t.Read(choice.Path)
		if rerr != nil {
			return nil, 0, fmt.Errorf("core: defconfig %s: %w", choice.Path, rerr)
		}
		cfg, err = kt.ApplyDefconfig(content)
		if err != nil {
			return nil, 0, fmt.Errorf("core: defconfig %s: %w", choice.Path, err)
		}
	default:
		cfg = kt.AllYesConfig()
	}
	p.values[key] = cfg
	return cfg, kt.Len(), nil
}

// Stats returns the valuation-cache counters (a view over the registry
// series).
func (p *ConfigProvider) Stats() CacheStats {
	return CacheStats{Hits: p.hits.Value(), Misses: p.misses.Value()}
}
