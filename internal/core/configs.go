package core

import (
	"fmt"
	"sync"

	"jmake/internal/faultinject"
	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/metrics"
)

// ConfigProvider caches parsed Kconfig trees and computed configurations
// across patches. The evaluation re-creates configurations for every patch
// (the paper cleans the working tree between patches, so `make
// allyesconfig` runs again and its cost is charged again), but the
// *valuation* is identical as long as the Kconfig files are unchanged, so
// caching it is sound and keeps the 12,000-patch evaluation tractable.
//
// A ConfigProvider is safe for concurrent use by the evaluation workers
// and uses the per-key election pattern (the same discipline as
// cpp.TokenCache): the provider's mutex only guards the entry maps, never
// a computation. Concurrent first requests for one key elect a single
// computer via the entry's sync.Once and the rest wait on it, so every
// valuation is computed exactly once and the hit/miss counters are
// invariant under concurrency (misses always equal the number of distinct
// keys), keeping pipeline metrics reproducible across -workers settings.
// Crucially, workers computing *different* keys no longer serialize
// behind each other: parsing one arch's Kconfig tree or valuating
// allyesconfig happens outside the map lock.
type ConfigProvider struct {
	mu     sync.Mutex
	trees  map[string]*treeEntry
	values map[string]*valueEntry
	// Counter handles into the owning metrics registry — the registry is
	// the single home for these numbers; Stats() is a view over it.
	hits   *metrics.Counter
	misses *metrics.Counter
}

// treeEntry is one arch's parsed-Kconfig election slot.
type treeEntry struct {
	once sync.Once
	kt   *kconfig.Tree
	err  error
}

// valueEntry is one (arch, choice) valuation election slot.
type valueEntry struct {
	once    sync.Once
	cfg     *kconfig.Config
	symbols int
	err     error
}

// CacheStats are lookup counters for one shared cache.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns Hits over total lookups (0 when never used).
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewConfigProvider returns an empty provider counting into a private
// registry.
func NewConfigProvider() *ConfigProvider {
	return NewConfigProviderIn(metrics.NewRegistry())
}

// NewConfigProviderIn returns an empty provider whose counters are
// series in reg.
func NewConfigProviderIn(reg *metrics.Registry) *ConfigProvider {
	return &ConfigProvider{
		trees:  make(map[string]*treeEntry),
		values: make(map[string]*valueEntry),
		hits:   reg.Counter("config_cache_hits"),
		misses: reg.Counter("config_cache_misses"),
	}
}

// treeEntryFor returns the election slot for arch, creating it on first
// request. Only the map access is locked; parsing runs under the slot's
// once.
func (p *ConfigProvider) treeEntryFor(arch string) *treeEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.trees[arch]
	if !ok {
		e = &treeEntry{}
		p.trees[arch] = e
	}
	return e
}

// KconfigTree returns the parsed Kconfig hierarchy for an architecture,
// parsing it exactly once per arch no matter how many workers ask.
func (p *ConfigProvider) KconfigTree(t *fstree.Tree, arch *kbuild.Arch) (*kconfig.Tree, error) {
	e := p.treeEntryFor(arch.Name)
	e.once.Do(func() {
		kt, err := kconfig.Parse(kbuild.TreeSource{T: t}, arch.KconfigRoot)
		if err != nil {
			e.err = fmt.Errorf("core: parsing %s: %w", arch.KconfigRoot, err)
			// Do not cache failures: drop the slot so a later request
			// re-elects and retries (deterministic inputs will fail the
			// same way, but transiently injected tree states must not
			// poison the window).
			p.mu.Lock()
			if p.trees[arch.Name] == e {
				delete(p.trees, arch.Name)
			}
			p.mu.Unlock()
			return
		}
		e.kt = kt
	})
	return e.kt, e.err
}

// Get returns the configuration for (arch, choice), computing and caching
// it on first use. The returned symbol count prices the virtual
// `make allyesconfig` / defconfig invocation. inj optionally injects
// transient generation failures — the valuation cache cannot absorb
// those, because the paper's evaluation regenerates the configuration
// for every patch and any regeneration can fail; pass nil to disable.
//
// Counting discipline: the elected computer counts the miss; waiters and
// later callers count hits. Failed computations are never cached (the
// slot is dropped), and every caller that observes the failure counts a
// miss — so on the success path misses still equal distinct keys.
func (p *ConfigProvider) Get(t *fstree.Tree, arch *kbuild.Arch, choice ConfigChoice, inj *faultinject.Injector) (*kconfig.Config, int, error) {
	cfg, symbols, _, err := p.Lookup(t, arch, choice, inj)
	return cfg, symbols, err
}

// Lookup is Get additionally reporting whether the valuation was served
// from cache. The warm-session ledger uses the hit bit to credit the
// charged `make *config` price as saved effective time; the charge itself
// is unconditional either way, so reports stay byte-identical.
func (p *ConfigProvider) Lookup(t *fstree.Tree, arch *kbuild.Arch, choice ConfigChoice, inj *faultinject.Injector) (*kconfig.Config, int, bool, error) {
	if inj.FailConfig(arch.Name + ":" + choice.Kind.String() + choice.Path) {
		return nil, 0, false, fmt.Errorf("%w: config generation failed (%s, %s)",
			kbuild.ErrTransient, arch.Name, choice.Kind)
	}
	key := arch.Name + "|" + choice.Kind.String() + "|" + choice.Path
	p.mu.Lock()
	e, ok := p.values[key]
	if !ok {
		e = &valueEntry{}
		p.values[key] = e
	}
	p.mu.Unlock()

	won := false
	e.once.Do(func() {
		won = true
		e.cfg, e.symbols, e.err = p.compute(t, arch, choice)
		if e.err != nil {
			// Failed valuations are not cached: drop the slot so the next
			// request re-elects (and is counted as a fresh miss, matching
			// the pre-election counter semantics for error paths).
			p.mu.Lock()
			if p.values[key] == e {
				delete(p.values, key)
			}
			p.mu.Unlock()
		}
	})
	switch {
	case e.err != nil:
		p.misses.Inc()
		return nil, 0, false, e.err
	case won:
		p.misses.Inc()
	default:
		p.hits.Inc()
	}
	return e.cfg, e.symbols, !won, nil
}

// Invalidate drops every cached parse and valuation for one architecture.
// A commit-stream follower calls this when a commit touches the arch's
// Kconfig inputs: the next request re-parses and re-valuates against the
// advanced tree, so warm answers stay provably equal to a cold session's.
func (p *ConfigProvider) Invalidate(archName string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.trees, archName)
	prefix := archName + "|"
	for key := range p.values {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			delete(p.values, key)
		}
	}
}

// InvalidateAll drops every cached parse and valuation (shared Kconfig
// input changed — any arch's valuation may be stale).
func (p *ConfigProvider) InvalidateAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trees = make(map[string]*treeEntry)
	p.values = make(map[string]*valueEntry)
}

// compute performs one full valuation — Kconfig tree parse (itself a
// cached election) plus the choice's config derivation — outside any
// provider-wide lock.
func (p *ConfigProvider) compute(t *fstree.Tree, arch *kbuild.Arch, choice ConfigChoice) (*kconfig.Config, int, error) {
	kt, err := p.KconfigTree(t, arch)
	if err != nil {
		return nil, 0, err
	}
	var cfg *kconfig.Config
	switch choice.Kind {
	case ConfigAllMod:
		cfg = kt.AllModConfig()
	case ConfigDefconfig:
		content, rerr := t.Read(choice.Path)
		if rerr != nil {
			return nil, 0, fmt.Errorf("core: defconfig %s: %w", choice.Path, rerr)
		}
		cfg, err = kt.ApplyDefconfig(content)
		if err != nil {
			return nil, 0, fmt.Errorf("core: defconfig %s: %w", choice.Path, err)
		}
	default:
		cfg = kt.AllYesConfig()
	}
	return cfg, kt.Len(), nil
}

// Stats returns the valuation-cache counters (a view over the registry
// series).
func (p *ConfigProvider) Stats() CacheStats {
	return CacheStats{Hits: p.hits.Value(), Misses: p.misses.Value()}
}
