package core

import (
	"time"

	"jmake/internal/faultinject"
)

// FileKind distinguishes the two processed file types.
type FileKind int

// File kinds.
const (
	CFile FileKind = iota + 1
	HFile
)

func (k FileKind) String() string {
	if k == HFile {
		return ".h"
	}
	return ".c"
}

// Status is the per-file outcome of a JMake run.
type Status int

// File statuses.
const (
	// StatusCertified: every changed line was subjected to the compiler in
	// at least one successful compilation.
	StatusCertified Status = iota + 1
	// StatusCommentOnly: all changed lines are comments; nothing to check.
	StatusCommentOnly
	// StatusEscapes: some compilation succeeded without error, but one or
	// more changed lines were never seen by the compiler — the insidious
	// case JMake exists to detect.
	StatusEscapes
	// StatusBuildFailed: no tried configuration compiled the file (or, for
	// a header, no candidate .c file worked).
	StatusBuildFailed
	// StatusSetupFile: the file takes part in the build's own set-up
	// compilation and cannot be mutated (paper §V-D).
	StatusSetupFile
	// StatusUnsupportedArch: the file belongs to an architecture without a
	// working cross-compiler.
	StatusUnsupportedArch
	// StatusNoMakefile: no Makefile governs the file.
	StatusNoMakefile
	// StatusBudgetExhausted: the per-patch virtual-time budget ran out
	// before the file's mutations could all be witnessed. Reported
	// honestly instead of masquerading as a build failure (and never,
	// ever, as certification).
	StatusBudgetExhausted
	// StatusArchQuarantined: the architecture circuit breaker quarantined
	// every architecture that could have compiled the file after repeated
	// non-permanent failures.
	StatusArchQuarantined
	// StatusStaticDead: every unwitnessed changed line sits under a
	// presence condition that is unsatisfiable for every candidate
	// architecture — no configuration whatsoever can show it to the
	// compiler, so no compile was issued for it (Options.StaticPresence).
	StatusStaticDead
	// StatusCanceled: the caller's Options.Interrupt fired (a service
	// deadline expired, a client went away) before the file's mutations
	// could all be witnessed. Like StatusBudgetExhausted it reports the
	// partial truth honestly — never escapes the checker did not diagnose,
	// never certification it did not earn.
	StatusCanceled
)

func (s Status) String() string {
	switch s {
	case StatusCertified:
		return "certified"
	case StatusCommentOnly:
		return "comment-only"
	case StatusEscapes:
		return "escapes"
	case StatusBuildFailed:
		return "build-failed"
	case StatusSetupFile:
		return "setup-file"
	case StatusUnsupportedArch:
		return "unsupported-arch"
	case StatusNoMakefile:
		return "no-makefile"
	case StatusBudgetExhausted:
		return "budget-exhausted"
	case StatusArchQuarantined:
		return "arch-quarantined"
	case StatusStaticDead:
		return "static-dead"
	case StatusCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// EscapeReason classifies why a changed line escaped the compiler,
// reproducing Table IV mechanically.
type EscapeReason int

// Escape reasons (Table IV rows).
const (
	// EscapeIfdefNotAllyes: under #ifdef of a variable that allyesconfig
	// does not set (declared, but its dependencies forbid y).
	EscapeIfdefNotAllyes EscapeReason = iota + 1
	// EscapeIfdefNeverSet: under #ifdef of a variable never declared in any
	// Kconfig file.
	EscapeIfdefNeverSet
	// EscapeIfdefModule: under #ifdef MODULE; allyesconfig builds nothing
	// modular, so the region is skipped (allmodconfig would cover it).
	EscapeIfdefModule
	// EscapeIfndefOrElse: under #ifndef, or under the #else of a satisfied
	// #ifdef — allyesconfig sets variables to yes, not no (paper §VII).
	EscapeIfndefOrElse
	// EscapeBothBranches: the patch changes both a conditional branch and
	// its #else; no single configuration can see both.
	EscapeBothBranches
	// EscapeIfZero: under #if 0.
	EscapeIfZero
	// EscapeUnusedMacro: inside a macro definition that no compiled code
	// expands.
	EscapeUnusedMacro
	// EscapeOther: none of the above (deep conditional interactions).
	EscapeOther
)

func (r EscapeReason) String() string {
	switch r {
	case EscapeIfdefNotAllyes:
		return "ifdef variable not set by allyesconfig"
	case EscapeIfdefNeverSet:
		return "ifdef variable never set in the kernel"
	case EscapeIfdefModule:
		return "ifdef MODULE"
	case EscapeIfndefOrElse:
		return "ifndef or else"
	case EscapeBothBranches:
		return "both ifdef and else"
	case EscapeIfZero:
		return "if 0"
	case EscapeUnusedMacro:
		return "unused macro"
	default:
		return "other"
	}
}

// Escape pairs an uncovered mutation with its diagnosed reason.
type Escape struct {
	Mutation Mutation
	Reason   EscapeReason
}

// FileOutcome is the per-file result of a JMake run.
type FileOutcome struct {
	Path   string
	Kind   FileKind
	Status Status

	// Mutations is the number of mutations inserted; FoundMutations how
	// many were witnessed in a successfully compiled .i.
	Mutations      int
	FoundMutations int

	// UsedArches lists architectures whose compilation both succeeded and
	// reduced the set of unwitnessed mutations, in the order tried.
	UsedArches []string
	// NeededBeyondHost is true when the host architecture alone was not
	// sufficient but another architecture helped.
	NeededBeyondHost bool
	// UsedDefconfig is true when a configs/ defconfig (not allyesconfig)
	// contributed coverage.
	UsedDefconfig bool
	// UsedAllMod is true when allmodconfig contributed coverage (only with
	// Options.TryAllModConfig).
	UsedAllMod bool
	// UsedCoverageConfig is true when a synthesized coverage configuration
	// contributed (only with Options.CoverageConfigs).
	UsedCoverageConfig bool

	// Escapes classifies each unwitnessed mutation.
	Escapes []Escape

	// CoveredLines and EscapedLines list the changed line numbers (in the
	// post-patch file) whose compilation was witnessed / never witnessed,
	// for per-line patch annotation.
	CoveredLines []int
	EscapedLines []int
	// StaticDeadLines lists changed lines proven unreachable by the static
	// presence analysis: unsatisfiable under every candidate architecture.
	// They are excluded from EscapedLines — no compile was ever issued for
	// them (only with Options.StaticPresence).
	StaticDeadLines []int

	// CoveredByPatchCs is true for a header whose mutations were all
	// witnessed while compiling the .c files of the same patch (§III-E's
	// ideal case).
	CoveredByPatchCs bool
	// ExtraCCompiles counts additional .c files compiled to exercise a
	// header.
	ExtraCCompiles int

	// FailureDetail carries the underlying error text for failed statuses.
	FailureDetail string
}

// PatchReport is the result of checking one patch.
type PatchReport struct {
	Commit string
	Files  []FileOutcome

	// Durations of each operation class, in virtual time (Figures 4a-4c).
	ConfigDurations []time.Duration
	MakeIDurations  []time.Duration
	MakeODurations  []time.Duration
	// Total is the overall virtual running time (Figures 5-6).
	Total time.Duration

	// Untreatable marks patches touching build-setup files (§V-D).
	Untreatable bool

	// PrescanWarnings lists changed regions diagnosed as uncompilable
	// before any build ran (populated when Options.Prescan is set).
	PrescanWarnings []Escape

	// Retries counts transient failures that were retried; each retry's
	// backoff wait is in BackoffDurations and included in Total.
	Retries          int
	BackoffDurations []time.Duration
	// FaultEvents lists the faults the configured plan injected into this
	// patch, in injection order (empty without a fault plan).
	FaultEvents []faultinject.Event
	// BudgetExhausted is true when the virtual-time budget ran out and
	// the checker stopped launching builds.
	BudgetExhausted bool
	// Interrupted is true when Options.Interrupt stopped the check before
	// completion (service deadline, client gone); the report is a partial
	// answer. Unlike BudgetExhausted this is wall-clock-driven and
	// therefore NOT reproducible — it never occurs in evaluation runs,
	// which do not set Interrupt.
	Interrupted bool `json:",omitempty"`
	// QuarantinedArches lists architectures the circuit breaker shut off
	// during this patch, sorted.
	QuarantinedArches []string

	// StaticSkippedMakeI / StaticSkippedMakeO count preprocessing and
	// compilation passes the static presence analysis pruned: files whose
	// every mutation was proven dead are never handed to make. Deterministic
	// (derived from the patch content, not from scheduling).
	StaticSkippedMakeI int
	StaticSkippedMakeO int
	// StaticDynamicDisagreements lists static/dynamic cross-check failures:
	// places where a .i witness contradicted the presence prediction.
	// Always empty unless Options.StaticPresence is set; any entry is a
	// checker bug or a kconfig constraint the static model missed. Sorted
	// by file, line, then architecture.
	StaticDynamicDisagreements []StaticDisagreement
}

// StaticDisagreement records one static/dynamic cross-check failure.
type StaticDisagreement struct {
	File string
	Line int
	Arch string
	// Predicted is the static verdict (visible under this architecture's
	// allyesconfig, or — for a dead-marked line — visible at all); Observed
	// is what the .i actually showed.
	Predicted bool
	Observed  bool
}

// Certified reports whether every processed file had all changed lines
// subjected to the compiler.
func (r *PatchReport) Certified() bool {
	if r.Untreatable || len(r.Files) == 0 {
		return false
	}
	for _, f := range r.Files {
		if f.Status != StatusCertified && f.Status != StatusCommentOnly {
			return false
		}
	}
	return true
}

// Options tune the checker.
type Options struct {
	// MaxGroupSize bounds how many files one make invocation processes
	// (paper: 50, to avoid exhausting the in-memory filesystem).
	MaxGroupSize int
	// HCandidateLimit is the candidate-count threshold above which header
	// processing uses only allyesconfig (paper §III-E: 100,
	// user-configurable).
	HCandidateLimit int
	// HCandidateCap bounds how many candidate .c files are tried per
	// header.
	HCandidateCap int
	// TryAllModConfig additionally tries allmodconfig for every candidate
	// architecture, covering `#ifdef MODULE` regions at the cost of nearly
	// doubling the configurations tried (the paper's proposed extension,
	// §V-B).
	TryAllModConfig bool
	// Prescan statically diagnoses changed regions that no standard
	// configuration can compile *before* any build runs, populating
	// PatchReport.PrescanWarnings (the paper's §VII "ask for user
	// assistance" proposal, saving exploration of unpromising cases).
	Prescan bool
	// CoverageConfigs synthesizes targeted configurations for regions that
	// every standard configuration missed — forcing the guarding variables
	// to the values the region needs (#ifndef wants its variable off,
	// #ifdef wants it on plus its dependency chain). This implements the
	// Vampyr/Troll-style generation the paper cites as the way to handle
	// #ifndef and ifdef/else cases (§VI-VII).
	CoverageConfigs bool

	// StaticPresence enables the static presence-condition pre-pass: changed
	// lines whose condition is unsatisfiable under every candidate
	// architecture are reported as statically dead and never compiled,
	// candidate architectures are ordered by predicted witness count, and
	// every allyesconfig .i is cross-checked against the prediction
	// (PatchReport.StaticDynamicDisagreements). The analysis only prunes
	// when the unsatisfiability proof is exact, so certification semantics
	// are unchanged for live lines.
	StaticPresence bool

	// MaxRetries bounds how many times one transient MakeI/MakeO/config
	// failure is retried with capped exponential backoff (charged to
	// virtual time). 0 means the default of 2; negative disables retries.
	MaxRetries int
	// ArchFailureThreshold is how many consecutive non-permanent failures
	// an architecture may accumulate before the circuit breaker
	// quarantines it for the rest of the patch. 0 means the default of 3.
	ArchFailureThreshold int
	// Budget caps the virtual time one patch may spend. Once spent, the
	// checker stops launching builds and finalizes pending files with
	// StatusBudgetExhausted. 0 means unlimited.
	Budget time.Duration
	// Interrupt, when non-nil, is polled at every stage boundary (before a
	// configuration is built, between file groups, before each compile and
	// retry). The first true return stops the check: no further builds are
	// launched and pending files finalize as StatusCanceled. This is the
	// cancellation hook for service deadlines — wall-clock-driven and thus
	// NOT deterministic; reproducible evaluation runs must leave it nil
	// (nil costs nothing and changes nothing).
	Interrupt func() bool
	// Faults configures deterministic fault injection. The zero plan
	// injects nothing and adds no overhead.
	Faults faultinject.Plan
}

func (o Options) withDefaults() Options {
	if o.MaxGroupSize <= 0 {
		o.MaxGroupSize = 50
	}
	if o.HCandidateLimit <= 0 {
		o.HCandidateLimit = 100
	}
	if o.HCandidateCap <= 0 {
		o.HCandidateCap = 120
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 2
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.ArchFailureThreshold <= 0 {
		o.ArchFailureThreshold = 3
	}
	return o
}
