package core

import (
	"fmt"
	"sort"
	"strings"

	"jmake/internal/csrc"
	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/trace"
)

// maxCoverageConfigs bounds how many synthesized configurations one patch
// may try (the exploration the paper wants to keep cheap, §VII).
const maxCoverageConfigs = 4

// coverageWants derives the targeted symbol wants that would activate the
// region guarding an uncovered mutation: #ifdef CONFIG_X wants X on (plus
// its dependency chain), #ifndef / #else want X off. Guards that no
// configuration can influence (MODULE, #if 0, non-CONFIG) yield nil.
func (c *Checker) coverageWants(f *csrc.File, m *mutEntry, kt *kconfig.Tree) map[string]kconfig.Value {
	li, ok := f.LineAt(m.mut.Line)
	if !ok || len(li.Conds) == 0 {
		return nil
	}
	wants := make(map[string]kconfig.Value)
	for _, fr := range li.Conds {
		arg := strings.TrimSpace(fr.Arg)
		switch fr.Kind {
		case csrc.CondIfdef:
			name, isConfig := strings.CutPrefix(arg, "CONFIG_")
			if !isConfig || kt.Symbol(name) == nil {
				return nil // MODULE, undeclared, or non-config guard
			}
			for k, v := range kt.DependencyWants(name, kconfig.Yes) {
				wants[k] = v
			}
		case csrc.CondIfndef:
			name, isConfig := strings.CutPrefix(arg, "CONFIG_")
			if !isConfig {
				return nil
			}
			wants[name] = kconfig.No
		case csrc.CondElse:
			name, isConfig := strings.CutPrefix(arg, "CONFIG_")
			if !isConfig {
				return nil
			}
			if fr.OpenKind == csrc.CondIfndef {
				for k, v := range kt.DependencyWants(name, kconfig.Yes) {
					wants[k] = v
				}
			} else {
				wants[name] = kconfig.No
			}
		case csrc.CondIf, csrc.CondElif:
			// General expressions: only the literal-constant cases are
			// hopeless; for CONFIG-mentioning expressions, drive every
			// mentioned symbol on. `#if 0` yields no wants and is skipped.
			if !strings.Contains(arg, "CONFIG_") {
				return nil
			}
			for _, name := range configVarsIn(arg) {
				if kt.Symbol(name) == nil {
					return nil
				}
				for k, v := range kt.DependencyWants(name, kconfig.Yes) {
					wants[k] = v
				}
			}
		}
	}
	if len(wants) == 0 {
		return nil
	}
	return wants
}

func configVarsIn(expr string) []string {
	var out []string
	rest := expr
	for {
		i := strings.Index(rest, "CONFIG_")
		if i < 0 {
			return out
		}
		rest = rest[i+len("CONFIG_"):]
		j := 0
		for j < len(rest) && isVarChar(rest[j]) {
			j++
		}
		if j > 0 {
			out = append(out, rest[:j])
		}
		rest = rest[j:]
	}
}

func wantsKey(wants map[string]kconfig.Value) string {
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s,", k, wants[k])
	}
	return b.String()
}

// processCoverageConfigs is the §VII extension: for mutations that every
// standard configuration missed, synthesize configurations that force the
// guarding variables to the needed values (Vampyr/Troll-style), and try
// again on the host architecture.
func (c *Checker) processCoverageConfigs(report *PatchReport, mutatedTree *fstree.Tree, cFiles []*fileState) {
	arch, ok := c.arches[kbuild.HostArch]
	if !ok {
		return
	}
	kt, err := c.configs.KconfigTree(c.tree, arch)
	if err != nil {
		return
	}
	covSpan := c.rec.Open(trace.KindCoverage, trace.A("arch", kbuild.HostArch))
	defer c.rec.Close(covSpan)
	tried := make(map[string]bool)
	budget := maxCoverageConfigs

	for _, fs := range cFiles {
		if budget <= 0 || c.run.halted() {
			break
		}
		pending := fs.pendingLive()
		if len(pending) == 0 {
			continue
		}
		content, err := c.tree.Read(fs.path)
		if err != nil {
			continue
		}
		f := csrc.Analyze(content)
		for _, m := range pending {
			if budget <= 0 || c.run.halted() {
				break
			}
			wants := c.coverageWants(f, m, kt)
			if wants == nil {
				continue
			}
			key := wantsKey(wants)
			if tried[key] {
				continue
			}
			tried[key] = true
			budget--

			cfg := kt.ConfigWithWants(wants)
			// Verify the wants were actually satisfiable before paying for
			// a build.
			satisfied := true
			for k, v := range wants {
				if cfg.Value(k) != v {
					satisfied = false
					break
				}
			}
			d := c.model.ConfigCreate(kt.Len(), report.Commit+":coverage:"+key)
			report.ConfigDurations = append(report.ConfigDurations, d)
			c.run.charge(d)
			if sp := c.rec.Leaf(trace.KindConfig, d,
				trace.A("arch", kbuild.HostArch),
				trace.A("config", "coverage:"+key)); sp != nil {
				sp.Key = configTraceKey(kbuild.HostArch, "coverage", key)
			}
			if !satisfied {
				continue
			}
			ib, err1 := kbuild.NewBuilder(mutatedTree, arch, cfg, c.meta, c.model)
			ob, err2 := kbuild.NewBuilder(c.tree, arch, cfg, c.meta, c.model)
			if err1 != nil || err2 != nil {
				continue
			}
			ib.Cache = c.tokens
			ob.Cache = c.tokens
			ib.Faults = c.run.inj
			ob.Faults = c.run.inj
			ib.Results = c.results
			ob.Results = c.results
			ib.Trace = c.rec
			ob.Trace = c.rec
			bp := &builderPair{ib: ib, ob: ob}
			c.runGroup(report, bp, kbuild.HostArch,
				ConfigChoice{Kind: ConfigCoverage}, []*fileState{fs}, fs.muts)
		}
	}
}
