package core

import (
	"sync"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/sched"
)

type configFixtureState struct {
	tree   *fstree.Tree
	arches map[string]*kbuild.Arch
}

// configFixture returns a provider plus the fixture's discovered arches.
func configFixture(t *testing.T) (*ConfigProvider, *configFixtureState) {
	t.Helper()
	tr := fixtureTree()
	meta, err := kbuild.LoadMeta(tr)
	if err != nil {
		t.Fatalf("LoadMeta: %v", err)
	}
	arches := kbuild.DiscoverArches(tr, meta)
	if len(arches) < 2 {
		t.Fatalf("fixture discovered %d arches, want >= 2", len(arches))
	}
	return NewConfigProvider(), &configFixtureState{tree: tr, arches: arches}
}

// An N-goroutine hammer on one key must elect exactly one computation:
// every caller gets the same *kconfig.Config (pointer identity proves a
// single valuation), misses == 1, hits == N-1. Run under -race this also
// proves the election publishes the value safely.
func TestConfigProviderConcurrentGetSingleComputation(t *testing.T) {
	p, fx := configFixture(t)
	arch := fx.arches["x86_64"]
	if arch == nil {
		t.Fatal("fixture has no x86_64 arch")
	}
	const goroutines = 32
	cfgs := make([]any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg, symbols, err := p.Get(fx.tree, arch, ConfigChoice{Kind: ConfigAllYes}, nil)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if symbols <= 0 {
				t.Errorf("Get returned %d symbols", symbols)
			}
			cfgs[g] = cfg
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if cfgs[g] != cfgs[0] {
			t.Fatalf("goroutine %d received a different valuation object: two computations happened", g)
		}
	}
	st := p.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (single elected computation)", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, goroutines-1)
	}
}

// Misses must equal the number of distinct keys at any worker count: the
// same mixed-key request stream through the sched pool at workers 1 and 8
// lands on identical counters (the worker-invariance the reproducible
// report depends on).
func TestConfigProviderMissesEqualDistinctKeysAcrossWorkers(t *testing.T) {
	for _, workers := range []int{1, 8} {
		p, fx := configFixture(t)
		var choices []struct {
			arch   *kbuild.Arch
			choice ConfigChoice
		}
		for _, name := range []string{"x86_64", "arm"} {
			arch := fx.arches[name]
			if arch == nil {
				t.Fatalf("fixture has no %s arch", name)
			}
			choices = append(choices,
				struct {
					arch   *kbuild.Arch
					choice ConfigChoice
				}{arch, ConfigChoice{Kind: ConfigAllYes}},
				struct {
					arch   *kbuild.Arch
					choice ConfigChoice
				}{arch, ConfigChoice{Kind: ConfigAllMod}},
			)
		}
		distinct := len(choices)
		const rounds = 8 // every key requested 8 times
		sched.Map(distinct*rounds, sched.Options{Workers: workers}, func(i int) error {
			c := choices[i%distinct]
			_, _, err := p.Get(fx.tree, c.arch, c.choice, nil)
			return err
		}, func(i int, err error) {
			if err != nil {
				t.Errorf("Get(%d): %v", i, err)
			}
		})
		st := p.Stats()
		if st.Misses != uint64(distinct) {
			t.Fatalf("workers=%d: misses = %d, want %d (distinct keys)", workers, st.Misses, distinct)
		}
		if st.Hits != uint64(distinct*(rounds-1)) {
			t.Fatalf("workers=%d: hits = %d, want %d", workers, st.Hits, distinct*(rounds-1))
		}
	}
}
