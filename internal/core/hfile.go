package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"jmake/internal/fstree"
	"jmake/internal/trace"
)

// headerChunk is how many candidate .c files one make invocation
// preprocesses while hunting for header coverage. Smaller than the general
// group size so that the search can stop early (the paper reports 1-12
// compilations per header).
const headerChunk = 10

// candidate is one .c file that may exercise a changed header.
type candidate struct {
	path     string
	includes bool
	allHints bool
	anyHint  bool
}

// findHeaderCandidates scans the tree's .c files for candidates per paper
// §III-E: files that directly include the header, and files that refer to
// the macro names changed in it. Priority: include+all-hints, then
// all-hints, then the rest. A header under arch/<A>/ is only relevant to
// .c files of that architecture or outside arch/.
func (c *Checker) findHeaderCandidates(hPath string, hints []string) []candidate {
	relInclude := strings.TrimPrefix(hPath, "include/")
	base := hPath[strings.LastIndexByte(hPath, '/')+1:]
	hArch := ""
	if strings.HasPrefix(hPath, "arch/") {
		rest := strings.TrimPrefix(hPath, "arch/")
		if i := strings.IndexByte(rest, '/'); i > 0 {
			hArch = rest[:i]
		}
	}

	var out []candidate
	for _, p := range c.tree.Paths() {
		if !strings.HasSuffix(p, ".c") {
			continue
		}
		if hArch != "" && strings.HasPrefix(p, "arch/") && !strings.HasPrefix(p, "arch/"+hArch+"/") {
			continue
		}
		content, err := c.tree.Read(p)
		if err != nil {
			continue
		}
		cand := candidate{path: p}
		if strings.Contains(content, "<"+relInclude+">") || strings.Contains(content, "\""+base+"\"") {
			cand.includes = true
		}
		if len(hints) > 0 {
			cand.allHints = true
			for _, h := range hints {
				if strings.Contains(content, h) {
					cand.anyHint = true
				} else {
					cand.allHints = false
				}
			}
		}
		if cand.includes || cand.anyHint {
			out = append(out, cand)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return candRank(out[i]) < candRank(out[j])
	})
	return out
}

func candRank(c candidate) int {
	switch {
	case c.includes && c.allHints:
		return 0
	case c.allHints:
		return 1
	default:
		return 2
	}
}

// processHFile hunts .c files that witness the header's remaining
// mutations (paper §III-E). Candidates are processed like a pseudo-patch
// of unmutated .c files against the mutated tree; each make invocation
// covers a chunk, and a candidate whose .i witnesses a pending mutation is
// compiled to an object to validate the configuration.
func (c *Checker) processHFile(report *PatchReport, mutatedTree *fstree.Tree, hf *fileState) {
	cands := c.findHeaderCandidates(hf.path, hf.res.ChangedMacros)
	if len(cands) == 0 {
		return
	}
	hSpan := c.rec.Open(trace.KindHFile,
		trace.A("path", hf.path),
		trace.A("candidates", strconv.Itoa(len(cands))))
	defer c.rec.Close(hSpan)
	// Above the threshold, restrict to allyesconfig only (paper: avoids
	// false positives at a bounded cost; threshold is user-configurable).
	useDefconfigs := len(cands) <= c.opts.HCandidateLimit
	if len(cands) > c.opts.HCandidateCap {
		cands = cands[:c.opts.HCandidateCap]
	}

	for start := 0; start < len(cands) && len(hf.pendingLive()) > 0; start += headerChunk {
		if c.run.halted() {
			break
		}
		end := start + headerChunk
		if end > len(cands) {
			end = len(cands)
		}
		chunk := cands[start:end]

		perFile := make([][]ArchChoice, 0, len(chunk))
		for _, cand := range chunk {
			perFile = append(perFile, c.selectArches(cand.path, useDefconfigs))
		}
		choices := mergeArchChoices(perFile)

		for _, ac := range choices {
			if len(hf.pendingLive()) == 0 || c.run.halted() {
				break
			}
			arch := c.arches[ac.Arch]
			if arch == nil || arch.Broken {
				continue
			}
			if c.run.quarantined[ac.Arch] {
				if hf.lastErr == nil {
					hf.lastErr = fmt.Errorf("%w: %s", errArchQuarantined, ac.Arch)
				}
				continue
			}
			for _, cc := range ac.Configs {
				if len(hf.pendingLive()) == 0 || c.run.halted() || c.run.quarantined[ac.Arch] {
					break
				}
				bp, err := c.newBuilders(report, mutatedTree, ac.Arch, cc)
				if err != nil {
					if hf.lastErr == nil {
						hf.lastErr = err
					}
					continue
				}
				paths := make([]string, 0, len(chunk))
				for _, cand := range chunk {
					if strings.HasPrefix(cand.path, "arch/") && !strings.HasPrefix(cand.path, "arch/"+ac.Arch+"/") {
						continue
					}
					paths = append(paths, cand.path)
				}
				if len(paths) == 0 {
					continue
				}
				results := c.makeIGroup(report, bp, paths)
				for _, res := range results {
					if res.Err != nil {
						continue
					}
					witnessed := witnessedIn(res.Text, hf.muts)
					c.rec.Mark(trace.KindWitnessScan,
						trace.A("path", res.Path),
						trace.A("witnessed", strconv.Itoa(len(witnessed))))
					if len(witnessed) == 0 {
						continue
					}
					if c.run.halted() || c.run.quarantined[ac.Arch] {
						break
					}
					oerr := c.makeO(report, bp, res.Path)
					if oerr != nil {
						continue
					}
					hf.state.ExtraCCompiles++
					hf.compiledOK = true
					recordUse(hf.state, ac.Arch, cc)
					for _, m := range witnessed {
						m.covered = true
						m.coveredByArch = ac.Arch
						m.coveredByDefconfig = cc.Kind == ConfigDefconfig
					}
					if len(hf.pendingLive()) == 0 {
						break
					}
				}
			}
		}
	}
}
