package core

import (
	"strings"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/textdiff"
	"jmake/internal/vclock"
)

// fixtureTree builds a miniature two-architecture kernel with enough
// Kconfig/Kbuild structure to exercise every checker path.
func fixtureTree() *fstree.Tree {
	tr := fstree.New()
	tr.Write("Kbuild.meta", `
setupops x86_64 84
setupops arm 63
setupfile include/linux/setuphdr.h
`)
	tr.Write("Makefile", "obj-y += drivers/ arch/$(SRCARCH)/\n")
	tr.Write("drivers/Makefile", "obj-y += net/\n")
	tr.Write("drivers/net/Makefile", `
obj-$(CONFIG_NETDRV) += netdrv.o
obj-$(CONFIG_ARMDRV) += armdrv.o
obj-$(CONFIG_MODDRV) += moddrv.o
`)
	tr.Write("Kconfig.shared", "source \"drivers/Kconfig\"\n")
	tr.Write("drivers/Kconfig", `
config NETDRV
	tristate "Net driver"

config MODDRV
	tristate "Modular driver"

config DEBUG_EXTRA
	bool "Extra debugging"
	depends on MISSING_DEP
`)
	tr.Write("arch/x86_64/Kconfig", "config X86_64\n\tbool \"x86_64\"\n\tdefault y\nsource \"Kconfig.shared\"\n")
	tr.Write("arch/x86_64/Makefile", "obj-y += kernel/\n")
	tr.Write("arch/x86_64/kernel/Makefile", "obj-y += setup.o\n")
	tr.Write("arch/x86_64/kernel/setup.c", "int setup_arch(void)\n{\n\treturn 0;\n}\n")
	tr.Write("arch/x86_64/include/asm/io.h",
		"#ifndef ASM_IO_H\n#define ASM_IO_H\nextern void outw(int v, unsigned long a);\n#endif\n")
	tr.Write("arch/arm/Kconfig", `config ARM
	bool "arm"
	default y
config ARMDRV
	tristate "ARM-specific driver"
source "Kconfig.shared"
`)
	tr.Write("arch/arm/Makefile", "obj-y += kernel/\n")
	tr.Write("arch/arm/kernel/Makefile", "obj-y += entry.o\n")
	tr.Write("arch/arm/kernel/entry.c", "int arm_entry(void)\n{\n\treturn 0;\n}\n")
	tr.Write("arch/arm/include/asm/io.h",
		"#ifndef ASM_IO_H\n#define ASM_IO_H\nextern void outw(int v, unsigned long a);\nextern void arm_cp15(void);\n#endif\n")
	tr.Write("include/linux/kernel.h", `#ifndef LINUX_KERNEL_H
#define LINUX_KERNEL_H
extern int printk(const char *fmt, ...);
#define pr_info(fmt, ...) printk(fmt, __VA_ARGS__)
#endif
`)
	tr.Write("include/linux/netdev.h", `#ifndef LINUX_NETDEV_H
#define LINUX_NETDEV_H
#define NETDEV_MAGIC_MUX(x) (((x) & 0xf) << 4)
extern void *netdev_alloc(int size);
#endif
`)
	tr.Write("include/linux/setuphdr.h", "#define SETUP_THING 1\n")
	tr.Write("drivers/net/netdrv.c", `#include <linux/kernel.h>
#include <linux/netdev.h>
#include <asm/io.h>

#define DRV_REG 0x04

static int drv_read(int reg)
{
	return reg + DRV_REG;
}

int drv_probe(void)
{
	void *p = netdev_alloc(64);
	int v = NETDEV_MAGIC_MUX(3);
	outw(v, 0x40);
	drv_read(v);
	printk("probed %d", v);
	if (!p)
		return 1;
	return 0;
}
`)
	tr.Write("drivers/net/armdrv.c", `#include <asm/io.h>

int armdrv_probe(void)
{
	arm_cp15();
	return 0;
}
`)
	tr.Write("drivers/net/moddrv.c", `#include <linux/kernel.h>

int moddrv_probe(void)
{
	return 0;
}
`)
	return tr
}

// applyEdit rewrites one file and returns the diff of the change.
func applyEdit(t *testing.T, tr *fstree.Tree, path, newContent string) textdiff.FileDiff {
	t.Helper()
	old, err := tr.Read(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	fd, changed := textdiff.Diff(path, path, old, newContent)
	if !changed {
		t.Fatalf("edit to %s changed nothing", path)
	}
	tr.Write(path, newContent)
	return fd
}

func newFixtureChecker(t *testing.T, tr *fstree.Tree) *Checker {
	t.Helper()
	ch, err := NewChecker(tr, vclock.DefaultModel(1), nil, Options{})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	return ch
}

func checkOne(t *testing.T, tr *fstree.Tree, fds ...textdiff.FileDiff) *PatchReport {
	t.Helper()
	ch := newFixtureChecker(t, tr)
	report, err := ch.CheckPatch("test", fds)
	if err != nil {
		t.Fatalf("CheckPatch: %v", err)
	}
	return report
}

func TestCheckCleanChange(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(old, "#define DRV_REG 0x04", "#define DRV_REG 0x08", 1))
	report := checkOne(t, tr, fd)

	if !report.Certified() {
		t.Fatalf("not certified: %+v", report.Files)
	}
	f := report.Files[0]
	if f.Status != StatusCertified || f.Mutations != 1 || f.FoundMutations != 1 {
		t.Errorf("outcome = %+v", f)
	}
	if len(f.UsedArches) != 1 || f.UsedArches[0] != "x86_64" {
		t.Errorf("UsedArches = %v", f.UsedArches)
	}
	if f.NeededBeyondHost {
		t.Error("host arch sufficed; NeededBeyondHost should be false")
	}
	if len(report.ConfigDurations) == 0 || len(report.MakeIDurations) == 0 || len(report.MakeODurations) == 0 {
		t.Errorf("durations missing: %d/%d/%d", len(report.ConfigDurations),
			len(report.MakeIDurations), len(report.MakeODurations))
	}
	if report.Total <= 0 {
		t.Errorf("Total = %v", report.Total)
	}
}

func TestCheckEscapeNotAllyes(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifdef CONFIG_DEBUG_EXTRA\n\tprintk(\"dbg %d\", v);\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkOne(t, tr, fd)

	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes {
		t.Fatalf("status = %v, want escapes: %+v", f.Status, f)
	}
	if len(f.Escapes) != 1 || f.Escapes[0].Reason != EscapeIfdefNotAllyes {
		t.Errorf("escapes = %+v", f.Escapes)
	}
}

func TestCheckEscapeNeverSet(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifdef CONFIG_TOTALLY_UNKNOWN\n\tprintk(\"x %d\", v);\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes || len(f.Escapes) != 1 || f.Escapes[0].Reason != EscapeIfdefNeverSet {
		t.Errorf("outcome = %+v", f)
	}
}

func TestCheckEscapeModule(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/moddrv.c")
	edited := strings.Replace(old, "\treturn 0;",
		"#ifdef MODULE\n\tprintk(\"as module\");\n#endif\n\treturn 0;", 1)
	// moddrv calls printk only in the new region; keep kernel.h included.
	fd := applyEdit(t, tr, "drivers/net/moddrv.c", edited)
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/moddrv.c")
	if f.Status != StatusEscapes || len(f.Escapes) != 1 || f.Escapes[0].Reason != EscapeIfdefModule {
		t.Errorf("outcome = %+v", f)
	}
}

func TestCheckEscapeIfndef(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifndef CONFIG_NETDRV\n\tprintk(\"unreachable\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes || len(f.Escapes) != 1 || f.Escapes[0].Reason != EscapeIfndefOrElse {
		t.Errorf("outcome = %+v", f)
	}
}

func TestCheckEscapeIfZero(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#if 0\n\tprintk(\"dead\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes || len(f.Escapes) != 1 || f.Escapes[0].Reason != EscapeIfZero {
		t.Errorf("outcome = %+v", f)
	}
}

func TestCheckEscapeUnusedMacro(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "#define DRV_REG 0x04",
		"#define DRV_REG 0x04\n#define DRV_UNUSED 0x99", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes || len(f.Escapes) != 1 || f.Escapes[0].Reason != EscapeUnusedMacro {
		t.Errorf("outcome = %+v", f)
	}
}

func TestCheckEscapeBothBranches(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/netdrv.c")
	edited := strings.Replace(old, "\tdrv_read(v);",
		"#ifdef CONFIG_NETDRV\n\tprintk(\"on\");\n#else\n\tprintk(\"off\");\n#endif\n\tdrv_read(v);", 1)
	fd := applyEdit(t, tr, "drivers/net/netdrv.c", edited)
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusEscapes {
		t.Fatalf("outcome = %+v", f)
	}
	if len(f.Escapes) != 1 || f.Escapes[0].Reason != EscapeBothBranches {
		t.Errorf("escapes = %+v", f.Escapes)
	}
}

func TestCheckArchSpecificFile(t *testing.T) {
	tr := fixtureTree()
	old, _ := tr.Read("drivers/net/armdrv.c")
	fd := applyEdit(t, tr, "drivers/net/armdrv.c",
		strings.Replace(old, "\treturn 0;", "\treturn 1;", 1))
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/armdrv.c")
	if f.Status != StatusCertified {
		t.Fatalf("outcome = %+v", f)
	}
	if !f.NeededBeyondHost || len(f.UsedArches) != 1 || f.UsedArches[0] != "arm" {
		t.Errorf("UsedArches = %v, NeededBeyondHost = %v", f.UsedArches, f.NeededBeyondHost)
	}
}

func TestCheckHeaderCoveredByPatchCFile(t *testing.T) {
	tr := fixtureTree()
	oldH, _ := tr.Read("include/linux/netdev.h")
	fdH := applyEdit(t, tr, "include/linux/netdev.h",
		strings.Replace(oldH, "<< 4)", "<< 5)", 1))
	oldC, _ := tr.Read("drivers/net/netdrv.c")
	fdC := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(oldC, "0x40", "0x44", 1))
	report := checkOne(t, tr, fdC, fdH)

	if !report.Certified() {
		t.Fatalf("not certified: %+v", report.Files)
	}
	h := findFile(t, report, "include/linux/netdev.h")
	if !h.CoveredByPatchCs {
		t.Errorf("header should be covered by the patch's own .c: %+v", h)
	}
	if h.ExtraCCompiles != 0 {
		t.Errorf("ExtraCCompiles = %d, want 0", h.ExtraCCompiles)
	}
}

func TestCheckHeaderOnlyPatch(t *testing.T) {
	tr := fixtureTree()
	oldH, _ := tr.Read("include/linux/netdev.h")
	fdH := applyEdit(t, tr, "include/linux/netdev.h",
		strings.Replace(oldH, "<< 4)", "<< 6)", 1))
	report := checkOne(t, tr, fdH)

	h := findFile(t, report, "include/linux/netdev.h")
	if h.Status != StatusCertified {
		t.Fatalf("outcome = %+v (detail: %s)", h, h.FailureDetail)
	}
	if h.CoveredByPatchCs {
		t.Error("no .c files in patch; coverage must come from hunting")
	}
	if h.ExtraCCompiles < 1 {
		t.Errorf("ExtraCCompiles = %d, want >= 1", h.ExtraCCompiles)
	}
}

func TestCheckSetupFileUntreatable(t *testing.T) {
	tr := fixtureTree()
	oldH, _ := tr.Read("include/linux/setuphdr.h")
	fdH := applyEdit(t, tr, "include/linux/setuphdr.h",
		strings.Replace(oldH, "1", "2", 1))
	report := checkOne(t, tr, fdH)
	if !report.Untreatable {
		t.Fatal("patch touching a setup file must be untreatable")
	}
	if report.Certified() {
		t.Error("untreatable patches are not certified")
	}
	if report.Files[0].Status != StatusSetupFile {
		t.Errorf("status = %v", report.Files[0].Status)
	}
}

func TestCheckCommentOnlyPatch(t *testing.T) {
	tr := fixtureTree()
	oldC, _ := tr.Read("drivers/net/netdrv.c")
	fd := applyEdit(t, tr, "drivers/net/netdrv.c",
		strings.Replace(oldC, "#include <linux/kernel.h>",
			"/* updated copyright notice */\n#include <linux/kernel.h>", 1))
	report := checkOne(t, tr, fd)
	f := findFile(t, report, "drivers/net/netdrv.c")
	if f.Status != StatusCommentOnly {
		t.Errorf("status = %v, want comment-only", f.Status)
	}
	if !report.Certified() {
		t.Error("comment-only patches are trivially certified")
	}
	if len(report.MakeIDurations) != 0 {
		t.Error("comment-only patches need no compilation")
	}
}

func TestCheckMultiFilePatchGroupsInvocations(t *testing.T) {
	tr := fixtureTree()
	old1, _ := tr.Read("drivers/net/netdrv.c")
	fd1 := applyEdit(t, tr, "drivers/net/netdrv.c", strings.Replace(old1, "0x40", "0x48", 1))
	old2, _ := tr.Read("drivers/net/moddrv.c")
	fd2 := applyEdit(t, tr, "drivers/net/moddrv.c", strings.Replace(old2, "return 0", "return 2", 1))
	report := checkOne(t, tr, fd1, fd2)
	if !report.Certified() {
		t.Fatalf("not certified: %+v", report.Files)
	}
	// Both .c files are preprocessed in ONE make invocation (paper §III-D).
	if len(report.MakeIDurations) != 1 {
		t.Errorf("MakeI invocations = %d, want 1", len(report.MakeIDurations))
	}
	// But each gets its own .o.
	if len(report.MakeODurations) != 2 {
		t.Errorf("MakeO invocations = %d, want 2", len(report.MakeODurations))
	}
}

func TestSelectArchesForArchFile(t *testing.T) {
	tr := fixtureTree()
	ch := newFixtureChecker(t, tr)
	choices := ch.selectArches("arch/arm/kernel/entry.c", true)
	if len(choices) != 1 || choices[0].Arch != "arm" {
		t.Errorf("choices = %+v", choices)
	}
}

func TestSelectArchesHostFirst(t *testing.T) {
	tr := fixtureTree()
	ch := newFixtureChecker(t, tr)
	choices := ch.selectArches("drivers/net/armdrv.c", true)
	if len(choices) < 2 {
		t.Fatalf("choices = %+v", choices)
	}
	if choices[0].Arch != "x86_64" {
		t.Errorf("first arch = %s, want x86_64 (simple make first)", choices[0].Arch)
	}
	found := false
	for _, c := range choices {
		if c.Arch == "arm" {
			found = true
		}
	}
	if !found {
		t.Errorf("arm not among candidates: %+v", choices)
	}
}

func findFile(t *testing.T, r *PatchReport, path string) FileOutcome {
	t.Helper()
	for _, f := range r.Files {
		if f.Path == path {
			return f
		}
	}
	t.Fatalf("file %s not in report: %+v", path, r.Files)
	return FileOutcome{}
}
