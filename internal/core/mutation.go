// Package core implements JMake itself: mutation of changed lines,
// architecture and configuration selection, the .c and .h file processing
// pipelines, and the escape analysis that explains why a changed line was
// never subjected to the compiler (paper §III and Table IV).
package core

import (
	"fmt"
	"sort"
	"strings"

	"jmake/internal/csrc"
)

// MutationMarker is the invalid character prefixed to every mutation. The
// C lexer rejects it (so a mutated file can never reach a .o), while the
// preprocessor passes it through (so it can be found in the .i), which is
// the central trick of the paper (§III-A).
const MutationMarker = "@"

// Mutation is one inserted token of the form @"kind:file:line".
type Mutation struct {
	// ID is the exact text searched for in .i files.
	ID string
	// Kind is "define" for macro-definition mutations, "other" otherwise.
	Kind string
	// File and Line locate the (first) changed line this mutation certifies.
	File string
	Line int
	// CoversLines are all changed lines certified by this mutation (same
	// macro definition or same conditional region).
	CoversLines []int
	// MacroName is set for define mutations.
	MacroName string
}

func mutationID(kind, file string, line int) string {
	return fmt.Sprintf("%s%q", MutationMarker, fmt.Sprintf("%s:%s:%d", kind, file, line))
}

// MutateResult is the outcome of mutating one file.
type MutateResult struct {
	// Content is the mutated file text.
	Content string
	// Mutations lists the inserted mutations.
	Mutations []Mutation
	// CommentOnly is true when every changed line was inside a comment, so
	// no mutations were needed (the change is trivially irrelevant to the
	// compiler, paper §III-B).
	CommentOnly bool
	// ChangedMacros lists macro names whose definitions were changed, used
	// as hints when hunting .c files for a changed header (paper §III-E).
	ChangedMacros []string
}

// Mutate inserts mutations into content (the post-patch file at path) so
// that every changed line's compilation is witnessed by a unique token in
// the .i file. Placement follows paper §III-B:
//
//   - comment lines need no mutation;
//   - one mutation per changed macro definition: appended to the #define
//     line (before a trailing backslash) when the first change is on that
//     line, otherwise on a fresh continuation line before the first
//     changed line;
//   - one mutation per conditional region otherwise, on a fresh line
//     before the first changed line of the region — or after the end of a
//     comment when the changed line begins inside one.
func Mutate(path, content string, changedLines []int) MutateResult {
	f := csrc.Analyze(content)
	lines := sorted(changedLines)

	type group struct {
		kind   string // "define" | "other"
		first  csrc.Line
		covers []int
		macro  string
	}
	groups := make(map[string]*group)
	var order []string
	anyCode := false
	seenMacro := make(map[string]bool)
	var changedMacros []string

	for _, n := range lines {
		li, ok := f.LineAt(n)
		if !ok {
			// A changed line beyond EOF (pure removal at end of file): treat
			// as the last line, or skip for an empty file.
			if len(f.Lines) == 0 {
				continue
			}
			li, _ = f.LineAt(len(f.Lines))
		}
		if li.CommentOnly || (li.InComment && li.CommentEndCol < 0) {
			continue // entirely comment: never processed by the compiler
		}
		anyCode = true
		var key string
		g := &group{first: li}
		switch {
		case li.InMacroDef:
			key = fmt.Sprintf("m:%d", li.MacroStart)
			g.kind = "define"
			g.macro = li.MacroName
			if !seenMacro[li.MacroName] {
				seenMacro[li.MacroName] = true
				changedMacros = append(changedMacros, li.MacroName)
			}
		default:
			key = fmt.Sprintf("r:%d", li.Region)
			g.kind = "other"
		}
		if existing, ok := groups[key]; ok {
			existing.covers = append(existing.covers, li.Num)
			continue
		}
		g.covers = []int{li.Num}
		groups[key] = g
		order = append(order, key)
	}

	if !anyCode {
		return MutateResult{Content: content, CommentOnly: len(lines) > 0, ChangedMacros: changedMacros}
	}

	// Build insertions, applied bottom-up so line numbers stay valid.
	type insertion struct {
		afterLine int    // insert new line after this 1-based line (0 = top)
		newLine   string // full new line, or "" when modifying in place
		modLine   int    // when >0, replace this line with modText
		modText   string
	}
	var ins []insertion
	var muts []Mutation

	for _, key := range order {
		g := groups[key]
		li := g.first
		mut := Mutation{
			Kind:        g.kind,
			File:        path,
			Line:        li.Num,
			CoversLines: g.covers,
			MacroName:   g.macro,
		}
		mut.ID = mutationID(g.kind, path, li.Num)
		muts = append(muts, mut)

		if g.kind == "define" {
			if li.Num == li.MacroStart {
				// Change on the #define line itself: append the mutation at
				// end of line, before any continuation backslash.
				text := li.Text
				trimmed := strings.TrimRight(text, " \t")
				if strings.HasSuffix(trimmed, "\\") {
					base := strings.TrimRight(trimmed[:len(trimmed)-1], " \t")
					ins = append(ins, insertion{modLine: li.Num, modText: base + " " + mut.ID + " \\"})
				} else {
					ins = append(ins, insertion{modLine: li.Num, modText: text + " " + mut.ID})
				}
			} else {
				// Change on a continuation line: new line with only the
				// mutation and a continuation character, before the first
				// changed line.
				ins = append(ins, insertion{afterLine: li.Num - 1, newLine: mut.ID + " \\"})
			}
			continue
		}
		// Non-macro code.
		if li.InComment && li.CommentEndCol >= 0 {
			// The changed line starts inside a comment ending here: place
			// the mutation right after the comment's end.
			text := li.Text
			ins = append(ins, insertion{modLine: li.Num,
				modText: text[:li.CommentEndCol] + " " + mut.ID + text[li.CommentEndCol:]})
			continue
		}
		ins = append(ins, insertion{afterLine: li.Num - 1, newLine: mut.ID})
	}

	// Apply insertions bottom-up.
	sort.SliceStable(ins, func(i, j int) bool {
		li := ins[i].modLine
		if li == 0 {
			li = ins[i].afterLine
		}
		lj := ins[j].modLine
		if lj == 0 {
			lj = ins[j].afterLine
		}
		return li > lj
	})
	outLines := strings.Split(strings.TrimSuffix(content, "\n"), "\n")
	for _, in := range ins {
		if in.modLine > 0 {
			outLines[in.modLine-1] = in.modText
			continue
		}
		outLines = append(outLines[:in.afterLine],
			append([]string{in.newLine}, outLines[in.afterLine:]...)...)
	}
	return MutateResult{
		Content:       strings.Join(outLines, "\n") + "\n",
		Mutations:     muts,
		ChangedMacros: changedMacros,
	}
}

func sorted(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	return out
}
