package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"jmake/internal/ccache"
	"jmake/internal/cpp"

	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/textdiff"
	"jmake/internal/trace"
	"jmake/internal/vclock"
)

// Checker runs JMake against one post-patch source snapshot.
type Checker struct {
	tree    *fstree.Tree
	model   *vclock.Model
	opts    Options
	meta    *kbuild.Meta
	arches  map[string]*kbuild.Arch
	archIx  *archIndex
	configs *ConfigProvider
	tokens  *cpp.TokenCache
	// results memoizes preprocessing/compilation verdicts across builders
	// and (via Session) across patches; nil disables result caching.
	results *ccache.Cache
	// statics caches per-architecture Kconfig knowledge for the static
	// presence pre-pass (Options.StaticPresence).
	statics map[string]*archStatic
	// warm is the session's follower-mode cache/ledger state (nil outside
	// warm sessions; nil leaves every path byte-for-byte unchanged).
	warm *warmState

	// run holds the per-patch resilience state (fault injector, budget
	// ledger, circuit breaker); CheckPatch resets it for every patch.
	run *runState

	// rec records the patch's span tree against a per-patch virtual clock
	// (nil disables tracing — every recorder method no-ops). The checker
	// charges each priced duration on the recorder exactly once, so span
	// edges line up with the reported stage totals.
	rec *trace.Recorder
}

// SetTrace installs the per-patch trace recorder. Call it before
// CheckPatch; pass nil to disable (the default).
func (c *Checker) SetTrace(rec *trace.Recorder) { c.rec = rec }

// configTraceKey is the config span's content identity: a hash of the
// ConfigProvider's valuation key, so Trace.Stamp classifies the first
// occurrence of each distinct (arch, kind, path) as "compute" and
// repeats as "reuse" — mirroring the provider's compute-exactly-once
// discipline without consulting its warmth-dependent live counters.
func configTraceKey(parts ...string) uint64 {
	h := fnv.New64a()
	h.Write([]byte("config"))
	for _, p := range parts {
		h.Write([]byte{'|'})
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// NewChecker builds a checker over tree (the snapshot after applying the
// patch under test). configs may be shared across checkers to amortize
// Kconfig evaluation; pass nil for a private provider. The checker always
// gets a token cache (private here, shared via Session.Checker), so
// preprocessing memoization is never silently lost.
func NewChecker(tree *fstree.Tree, model *vclock.Model, configs *ConfigProvider, opts Options) (*Checker, error) {
	meta, err := kbuild.LoadMeta(tree)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if configs == nil {
		configs = NewConfigProvider()
	}
	arches := kbuild.DiscoverArches(tree, meta)
	return &Checker{
		tree:    tree,
		model:   model,
		opts:    opts.withDefaults(),
		meta:    meta,
		arches:  arches,
		archIx:  buildArchIndex(tree, arches),
		configs: configs,
		tokens:  cpp.NewTokenCache(),
		results: ccache.New(),
		statics: make(map[string]*archStatic),
	}, nil
}

// mutEntry tracks one pending mutation during the run.
type mutEntry struct {
	mut     Mutation
	file    string
	kind    FileKind
	covered bool
	// coveredByArch / coveredByDefconfig record how coverage was obtained.
	coveredByArch      string
	coveredByDefconfig bool
	// coveredByPatchC is true for .h mutations witnessed during the
	// patch's own .c processing.
	coveredByPatchC bool
	// dead is true when the static presence pre-pass proved the mutation's
	// condition unsatisfiable under every candidate architecture; the
	// checker stops chasing it (only with Options.StaticPresence).
	dead bool
}

// fileState tracks one changed file during the run.
type fileState struct {
	path  string
	kind  FileKind
	res   MutateResult
	muts  []*mutEntry
	state *FileOutcome
	// compiledOK is true once some configuration compiled the file (.c)
	// in a pass where the file's *own* mutations were witnessed — errors
	// from other configurations then stop mattering, and the pass earns
	// coverage bookkeeping (UsedArches etc.) for this file.
	compiledOK bool
	// validatedOK is true once some configuration compiled the file at
	// all, even if the pass only witnessed other files' mutations (e.g. a
	// header's marker surfacing in this file's .i). It distinguishes "the
	// file builds but its changed lines never surfaced" (escapes) from
	// "the file never built" (build failure) without letting a borrowed
	// witness stamp this file's coverage statistics.
	validatedOK bool
	lastErr     error
	// static is the presence pre-pass result (nil without
	// Options.StaticPresence).
	static *staticInfo
}

func (fs *fileState) pending() []*mutEntry {
	var out []*mutEntry
	for _, m := range fs.muts {
		if !m.covered {
			out = append(out, m)
		}
	}
	return out
}

// pendingLive is pending minus statically-dead mutations: the work the
// build loop still owes. Identical to pending when the pre-pass is off.
func (fs *fileState) pendingLive() []*mutEntry {
	var out []*mutEntry
	for _, m := range fs.muts {
		if !m.covered && !m.dead {
			out = append(out, m)
		}
	}
	return out
}

// allDead reports whether every mutation was statically proven dead; such
// a file is never handed to make.
func (fs *fileState) allDead() bool {
	if len(fs.muts) == 0 {
		return false
	}
	for _, m := range fs.muts {
		if !m.dead {
			return false
		}
	}
	return true
}

// staticDead reports whether the file still has unwitnessed mutations and
// every one of them is statically dead.
func (fs *fileState) staticDead() bool {
	pend := fs.pending()
	if len(pend) == 0 {
		return false
	}
	for _, m := range pend {
		if !m.dead {
			return false
		}
	}
	return true
}

// CheckPatch runs the full JMake pipeline on a patch given as per-file
// diffs (as obtained from vcs.FileDiffs or textdiff.ParsePatch).
func (c *Checker) CheckPatch(commit string, fds []textdiff.FileDiff) (*PatchReport, error) {
	report := &PatchReport{Commit: commit}
	c.run = newRunState(c.opts, commit)

	var cFiles, hFiles []*fileState
	mutatedTree := c.tree.Clone()

	classifySpan := c.rec.Open(trace.KindClassify, trace.A("diff_files", strconv.Itoa(len(fds))))
	for _, g := range groupByPath(fds) {
		path := g.path
		kind, ok := classify(path)
		if !ok {
			continue
		}
		fileMark := c.rec.Mark(trace.KindFile, trace.A("path", path), trace.A("kind", kindName(kind)))
		outcome := FileOutcome{Path: path, Kind: kind}
		fs := &fileState{path: path, kind: kind, state: &outcome}

		if c.meta.SetupFiles[path] {
			outcome.Status = StatusSetupFile
			report.Untreatable = true
			report.Files = append(report.Files, outcome)
			continue
		}
		content, err := c.tree.Read(path)
		if err != nil {
			outcome.Status = StatusNoMakefile
			outcome.FailureDetail = err.Error()
			report.Files = append(report.Files, outcome)
			continue
		}
		changed := g.changedLines(countLines(content))
		fs.res = Mutate(path, content, changed)
		outcome.Mutations = len(fs.res.Mutations)
		fileMark.Add(trace.A("mutations", strconv.Itoa(outcome.Mutations)))
		if len(fs.res.Mutations) == 0 {
			outcome.Status = StatusCommentOnly
			report.Files = append(report.Files, outcome)
			continue
		}
		mutatedTree.Write(path, fs.res.Content)
		for i := range fs.res.Mutations {
			fs.muts = append(fs.muts, &mutEntry{mut: fs.res.Mutations[i], file: path, kind: kind})
		}
		switch kind {
		case CFile:
			cFiles = append(cFiles, fs)
		case HFile:
			hFiles = append(hFiles, fs)
		}
		report.Files = append(report.Files, outcome)
	}
	c.rec.Close(classifySpan)
	if report.Untreatable {
		// Paper §V-D: mutating build-setup files breaks every subsequent
		// compilation, so the whole patch is untreatable.
		return report, nil
	}

	// Re-bind file states to the report slice (the appends above copied the
	// outcome values).
	rebind(report, cFiles)
	rebind(report, hFiles)

	// §VII extension: diagnose doomed regions from context alone, before
	// spending any build time.
	if c.opts.Prescan {
		for _, fs := range append(append([]*fileState(nil), cFiles...), hFiles...) {
			for _, esc := range c.classifyEscapes(fs) {
				if esc.Reason != EscapeOther {
					report.PrescanWarnings = append(report.PrescanWarnings, esc)
				}
			}
		}
	}

	// Static presence pre-pass: prove lines dead before any build runs,
	// count the make invocations this prunes, and compute per-architecture
	// visibility predictions for the dynamic cross-check.
	if c.opts.StaticPresence {
		staticSpan := c.rec.Open(trace.KindStatic,
			trace.A("files", strconv.Itoa(len(cFiles)+len(hFiles))))
		c.staticPrepass(report, cFiles, hFiles)
		staticSpan.Add(
			trace.A("pruned_make_i", strconv.Itoa(report.StaticSkippedMakeI)),
			trace.A("pruned_make_o", strconv.Itoa(report.StaticSkippedMakeO)))
		c.rec.Close(staticSpan)
	}

	// §III-D: process the patch's .c files across candidate architectures.
	if len(cFiles) > 0 {
		c.processCFiles(report, mutatedTree, cFiles, hFiles)
		// §VII extension: synthesize coverage configurations for whatever
		// the standard strategies missed.
		if c.opts.CoverageConfigs && !allCovered(cFiles) {
			c.processCoverageConfigs(report, mutatedTree, cFiles)
		}
	}

	// §III-E: headers not fully covered by the patch's own .c files.
	for _, hf := range hFiles {
		if len(hf.pendingLive()) == 0 {
			if len(hf.pending()) == 0 {
				hf.state.CoveredByPatchCs = len(cFiles) > 0
			}
			continue
		}
		c.processHFile(report, mutatedTree, hf)
	}

	// Finalize outcomes and escape analysis.
	c.rec.Mark(trace.KindFinalize, trace.A("files", strconv.Itoa(len(cFiles)+len(hFiles))))
	for _, fs := range append(append([]*fileState(nil), cFiles...), hFiles...) {
		c.finalize(report, fs)
	}
	sortDisagreements(report.StaticDynamicDisagreements)

	for _, d := range report.ConfigDurations {
		report.Total += d
	}
	for _, d := range report.MakeIDurations {
		report.Total += d
	}
	for _, d := range report.MakeODurations {
		report.Total += d
	}
	for _, d := range report.BackoffDurations {
		report.Total += d
	}
	report.FaultEvents = c.run.inj.Events()
	report.BudgetExhausted = c.run.exhausted
	report.Interrupted = c.run.interrupted
	report.QuarantinedArches = c.run.quarantinedList()
	return report, nil
}

// pathDiffs collects the FileDiff entries of one patch that target the
// same cleaned path. Patches occasionally carry several entries for one
// file (split hunk runs, a rename chain re-listing its destination);
// treating each entry as its own file is wrong twice over: the mutated
// tree keeps only the last entry's content, and rebind matches by path,
// so every duplicate's state aliases onto the first FileOutcome.
// Merging before classification yields exactly one file state per path
// whose changed-line set is the union across entries.
type pathDiffs struct {
	path string
	fds  []textdiff.FileDiff
}

func groupByPath(fds []textdiff.FileDiff) []pathDiffs {
	var out []pathDiffs
	index := make(map[string]int, len(fds))
	for _, fd := range fds {
		path := fstree.Clean(fd.NewPath)
		if i, ok := index[path]; ok {
			out[i].fds = append(out[i].fds, fd)
			continue
		}
		index[path] = len(out)
		out = append(out, pathDiffs{path: path, fds: []textdiff.FileDiff{fd}})
	}
	return out
}

// changedLines is the sorted union of ChangedNewLines over the group.
func (g pathDiffs) changedLines(lineCount int) []int {
	if len(g.fds) == 1 {
		return textdiff.ChangedNewLines(g.fds[0], lineCount)
	}
	seen := make(map[int]bool)
	var out []int
	for _, fd := range g.fds {
		for _, ln := range textdiff.ChangedNewLines(fd, lineCount) {
			if !seen[ln] {
				seen[ln] = true
				out = append(out, ln)
			}
		}
	}
	sort.Ints(out)
	return out
}

func rebind(report *PatchReport, fss []*fileState) {
	for _, fs := range fss {
		for i := range report.Files {
			if report.Files[i].Path == fs.path {
				fs.state = &report.Files[i]
				break
			}
		}
	}
}

func kindName(k FileKind) string {
	if k == HFile {
		return "h"
	}
	return "c"
}

func classify(path string) (FileKind, bool) {
	switch {
	case strings.HasSuffix(path, ".c"):
		return CFile, true
	case strings.HasSuffix(path, ".h"):
		return HFile, true
	default:
		return 0, false
	}
}

func countLines(content string) int {
	if content == "" {
		return 0
	}
	return strings.Count(strings.TrimSuffix(content, "\n"), "\n") + 1
}

// builderPair holds the mutated-tree and pristine-tree builders for one
// (arch, config).
type builderPair struct {
	ib *kbuild.Builder // preprocessing over the mutated tree
	ob *kbuild.Builder // object compilation over the pristine tree
}

// newBuilders creates the builder pair, charging the configuration
// creation to the report. Transient configuration-generation failures
// are retried with backoff; toolchain-level failures feed the circuit
// breaker.
func (c *Checker) newBuilders(report *PatchReport, mutatedTree *fstree.Tree, archName string, choice ConfigChoice) (*builderPair, error) {
	arch, ok := c.arches[archName]
	if !ok {
		return nil, fmt.Errorf("core: unknown architecture %q", archName)
	}
	var (
		cfg     *kconfig.Config
		symbols int
		hit     bool
		err     error
	)
	for attempt := 0; ; attempt++ {
		cfg, symbols, hit, err = c.configs.Lookup(c.tree, arch, choice, c.run.inj)
		if err == nil || !kbuild.IsTransient(err) ||
			attempt >= c.run.maxRetries || c.run.halted() {
			break
		}
		c.chargeBackoff(report, attempt+1, "config:"+archName+":"+choice.Kind.String()+choice.Path)
	}
	if err != nil {
		c.run.noteArch(archName, err)
		return nil, err
	}
	ib, err := kbuild.NewBuilder(mutatedTree, arch, cfg, c.meta, c.model)
	if err != nil {
		c.run.noteArch(archName, err)
		return nil, err
	}
	ob, err := kbuild.NewBuilder(c.tree, arch, cfg, c.meta, c.model)
	if err != nil {
		c.run.noteArch(archName, err)
		return nil, err
	}
	ib.Cache = c.tokens
	ob.Cache = c.tokens
	ib.Faults = c.run.inj
	ob.Faults = c.run.inj
	ib.Results = c.results
	ob.Results = c.results
	ib.Trace = c.rec
	ob.Trace = c.rec
	if c.warm != nil {
		// Warm-session set-up: once some builder for this (arch, config)
		// context ran its one-time make set-up, later builders behave like
		// a build directory that survived — the full set-up price is still
		// charged into the report (byte-identity), but lands in the saved
		// ledger instead of effective time.
		wasWarm := c.warm.markSetup(archName + "|" + choice.Kind.String() + "|" + choice.Path)
		ib.WarmSetup, ib.SetupSaved = wasWarm, &c.warm.setupSavedNS
		ob.WarmSetup, ob.SetupSaved = wasWarm, &c.warm.setupSavedNS
	}
	d := c.model.ConfigCreate(symbols, report.Commit+":"+archName+":"+choice.Kind.String()+choice.Path)
	report.ConfigDurations = append(report.ConfigDurations, d)
	c.run.charge(d)
	if c.warm != nil && hit {
		// The valuation came from the warm cache: the charge above stays
		// (reports price every `make *config` run), the effective cost is
		// credited back.
		c.warm.addConfigSaved(d)
	}
	if sp := c.rec.Leaf(trace.KindConfig, d,
		trace.A("arch", archName),
		trace.A("config", choice.Kind.String()+choice.Path),
		trace.A("symbols", strconv.Itoa(symbols))); sp != nil {
		sp.Key = configTraceKey(archName, choice.Kind.String(), choice.Path)
	}
	return &builderPair{ib: ib, ob: ob}, nil
}

// processCFiles drives the §III-D loop: for each candidate architecture
// and configuration, preprocess the relevant mutated .c files together,
// scan for pending mutations (including .h mutations that surface in these
// .i files), and compile the pristine file when its mutations are present.
func (c *Checker) processCFiles(report *PatchReport, mutatedTree *fstree.Tree, cFiles, hFiles []*fileState) {
	perFile := make([][]ArchChoice, 0, len(cFiles))
	for _, fs := range cFiles {
		choices := c.selectArches(fs.path, true)
		if choices == nil {
			fs.lastErr = fmt.Errorf("unsupported architecture for %s", fs.path)
		}
		perFile = append(perFile, choices)
	}
	choices := mergeArchChoices(perFile)
	if c.opts.StaticPresence {
		// Try the architectures predicted to witness the most mutations
		// first, so coverage is reached in fewer builds.
		orderByPredictedWitnesses(choices, cFiles)
	}

	allMuts := collectMuts(cFiles, hFiles)

	for _, ac := range choices {
		if allCovered(cFiles) && allCompiled(cFiles) {
			break
		}
		if c.run.halted() {
			break
		}
		arch := c.arches[ac.Arch]
		if arch == nil || arch.Broken {
			markArchFailure(cFiles, ac.Arch)
			continue
		}
		if c.run.quarantined[ac.Arch] {
			markQuarantined(relevantFiles(cFiles, ac.Arch), ac.Arch)
			continue
		}
		archSpan := c.rec.Open(trace.KindArch, trace.A("arch", ac.Arch))
		for _, cc := range ac.Configs {
			if allCovered(cFiles) && allCompiled(cFiles) {
				break
			}
			if c.run.halted() || c.run.quarantined[ac.Arch] {
				break
			}
			bp, err := c.newBuilders(report, mutatedTree, ac.Arch, cc)
			if err != nil {
				// Only the files this architecture would have compiled can
				// blame it for the failure.
				markErr(relevantFiles(cFiles, ac.Arch), err)
				continue
			}
			relevant := relevantFiles(cFiles, ac.Arch)
			if len(relevant) == 0 {
				continue
			}
			c.runGroup(report, bp, ac.Arch, cc, relevant, allMuts)
		}
		c.rec.Close(archSpan)
		if c.run.quarantined[ac.Arch] {
			markQuarantined(relevantFiles(cFiles, ac.Arch), ac.Arch)
		}
	}
}

// collectMuts gathers every pending mutation across the patch's files.
func collectMuts(groups ...[]*fileState) []*mutEntry {
	var out []*mutEntry
	for _, g := range groups {
		for _, fs := range g {
			out = append(out, fs.muts...)
		}
	}
	return out
}

// relevantFiles selects the .c files worth compiling for an architecture:
// non-arch files are relevant everywhere; arch files only to their own
// architecture (paper §III-D "all of the .c files from a given patch that
// are relevant for that architecture").
func relevantFiles(cFiles []*fileState, arch string) []*fileState {
	var out []*fileState
	for _, fs := range cFiles {
		if fs.allDead() {
			continue // statically pruned: no build can witness anything
		}
		if len(fs.pendingLive()) == 0 && fs.compiledOK {
			continue
		}
		if strings.HasPrefix(fs.path, "arch/") && !strings.HasPrefix(fs.path, "arch/"+arch+"/") {
			continue
		}
		out = append(out, fs)
	}
	return out
}

// runGroup preprocesses files in groups of at most MaxGroupSize, scans the
// .i output for every pending mutation, and compiles pristine files whose
// mutations showed up.
func (c *Checker) runGroup(report *PatchReport, bp *builderPair, archName string, cc ConfigChoice, files []*fileState, allMuts []*mutEntry) {
	for start := 0; start < len(files); start += c.opts.MaxGroupSize {
		if c.run.halted() || c.run.quarantined[archName] {
			break
		}
		end := start + c.opts.MaxGroupSize
		if end > len(files) {
			end = len(files)
		}
		group := files[start:end]
		paths := make([]string, len(group))
		for i, fs := range group {
			paths[i] = fs.path
		}
		results := c.makeIGroup(report, bp, paths)

		for i, res := range results {
			fs := group[i]
			if res.Err != nil {
				fs.lastErr = res.Err
				continue
			}
			found := markerIDs(res.Text)
			// Cross-check the static predictions against what the .i
			// actually shows, before any early exit below can skip it.
			if c.opts.StaticPresence && cc.Kind == ConfigAllYes {
				c.recordDisagreements(report, fs, archName, found)
			}
			// Which pending mutations does this .i witness?
			witnessed := pendingWitnessed(found, allMuts)
			c.rec.Mark(trace.KindWitnessScan,
				trace.A("path", fs.path),
				trace.A("markers", strconv.Itoa(len(found))),
				trace.A("witnessed", strconv.Itoa(len(witnessed))))
			ownPresent := 0
			for _, m := range witnessed {
				if m.file == fs.path {
					ownPresent++
				}
			}
			if len(witnessed) == 0 && (fs.compiledOK || fs.validatedOK) {
				continue
			}
			if c.run.halted() || c.run.quarantined[archName] {
				break
			}
			// Compile the pristine file to validate the configuration.
			oerr := c.makeO(report, bp, fs.path)
			if oerr != nil {
				fs.lastErr = oerr
				continue
			}
			fs.validatedOK = true
			if ownPresent > 0 {
				// Coverage bookkeeping is earned only by the file's own
				// witnessed mutations: a .i carrying nothing but a header's
				// marker proves the header was seen under this
				// configuration, not that this file's changed lines were.
				fs.compiledOK = true
				recordUse(fs.state, archName, cc)
			}
			for _, m := range witnessed {
				if m.covered {
					continue
				}
				m.covered = true
				m.coveredByArch = archName
				m.coveredByDefconfig = cc.Kind == ConfigDefconfig
				if m.kind == HFile {
					m.coveredByPatchC = true
				}
				// Attribute .h coverage to the header's own outcome too.
				if m.file != fs.path {
					recordUseByPath(report, m.file, archName, cc)
				}
			}
		}
	}
}

// witnessedIn returns the pending mutations whose ID occurs in iText, in
// muts order.
func witnessedIn(iText string, muts []*mutEntry) []*mutEntry {
	return pendingWitnessed(markerIDs(iText), muts)
}

// markerIDs collects every mutation-marker token in a .i output. A single
// pass suffices — IDs all share the marker prefix and end at the next
// double quote — so the text is not rescanned once per pending mutation.
func markerIDs(iText string) map[string]bool {
	const prefix = MutationMarker + `"`
	var found map[string]bool
	for off := 0; ; {
		i := strings.Index(iText[off:], prefix)
		if i < 0 {
			break
		}
		start := off + i
		body := start + len(prefix)
		j := strings.IndexByte(iText[body:], '"')
		if j < 0 {
			break // token truncated mid-stream: no witness
		}
		if found == nil {
			found = make(map[string]bool)
		}
		found[iText[start:body+j+1]] = true
		off = body + j + 1
	}
	return found
}

// pendingWitnessed filters muts to the uncovered ones whose ID was found.
func pendingWitnessed(found map[string]bool, muts []*mutEntry) []*mutEntry {
	if len(found) == 0 {
		return nil
	}
	var out []*mutEntry
	for _, m := range muts {
		if !m.covered && found[m.mut.ID] {
			out = append(out, m)
		}
	}
	return out
}

func recordUse(fo *FileOutcome, archName string, cc ConfigChoice) {
	mark := func() {
		switch cc.Kind {
		case ConfigDefconfig:
			fo.UsedDefconfig = true
		case ConfigAllMod:
			fo.UsedAllMod = true
		case ConfigCoverage:
			fo.UsedCoverageConfig = true
		}
	}
	for _, a := range fo.UsedArches {
		if a == archName {
			mark()
			return
		}
	}
	fo.UsedArches = append(fo.UsedArches, archName)
	if archName != kbuild.HostArch {
		fo.NeededBeyondHost = true
	}
	mark()
}

func recordUseByPath(report *PatchReport, path, archName string, cc ConfigChoice) {
	for i := range report.Files {
		if report.Files[i].Path == path {
			recordUse(&report.Files[i], archName, cc)
			return
		}
	}
}

func allCovered(files []*fileState) bool {
	for _, fs := range files {
		if len(fs.pendingLive()) > 0 {
			return false
		}
	}
	return true
}

func allCompiled(files []*fileState) bool {
	for _, fs := range files {
		if fs.allDead() {
			continue // never compiled by design
		}
		if !fs.compiledOK {
			return false
		}
	}
	return true
}

func markArchFailure(files []*fileState, arch string) {
	for _, fs := range files {
		if strings.HasPrefix(fs.path, "arch/"+arch+"/") && fs.lastErr == nil {
			fs.lastErr = fmt.Errorf("%w: %s", kbuild.ErrBrokenArch, arch)
		}
	}
}

func markErr(files []*fileState, err error) {
	for _, fs := range files {
		if fs.lastErr == nil {
			fs.lastErr = err
		}
	}
}

// finalize assigns the file's status and runs escape analysis on
// uncovered mutations.
func (c *Checker) finalize(report *PatchReport, fs *fileState) {
	fo := fs.state
	fo.FoundMutations = len(fs.muts) - len(fs.pending())
	for _, m := range fs.muts {
		switch {
		case m.covered:
			fo.CoveredLines = append(fo.CoveredLines, m.mut.CoversLines...)
			if m.dead {
				// A .i witnessed a line the pre-pass proved dead: the static
				// model missed a constraint. Record it loudly.
				report.StaticDynamicDisagreements = append(report.StaticDynamicDisagreements,
					StaticDisagreement{File: fs.path, Line: m.mut.Line,
						Arch: m.coveredByArch, Predicted: false, Observed: true})
			}
		case m.dead:
			fo.StaticDeadLines = append(fo.StaticDeadLines, m.mut.CoversLines...)
		default:
			fo.EscapedLines = append(fo.EscapedLines, m.mut.CoversLines...)
		}
	}
	sort.Ints(fo.CoveredLines)
	sort.Ints(fo.EscapedLines)
	sort.Ints(fo.StaticDeadLines)
	switch {
	case len(fs.pending()) == 0 && (fs.compiledOK || fs.kind == HFile):
		// Certification is untouched by budget or faults: it structurally
		// requires every mutation witnessed and (for .c) a successful
		// pristine compile.
		fo.Status = StatusCertified
	case fs.staticDead():
		// Everything unwitnessed is provably unreachable; no build was (or
		// could have been) issued for it.
		fo.Status = StatusStaticDead
	case c.run != nil && c.run.exhausted:
		// The budget ran out with work left. Reporting escapes or a build
		// failure here would claim knowledge the checker never bought, so
		// degrade honestly.
		fo.Status = StatusBudgetExhausted
		fo.FailureDetail = "virtual-time budget exhausted"
	case c.run != nil && c.run.interrupted:
		// The caller canceled (deadline, client gone) with work left. Same
		// honesty rule as budget exhaustion: a partial answer, clearly
		// labeled, never escapes the checker did not diagnose. Budget takes
		// precedence above because it is the deterministic cause.
		fo.Status = StatusCanceled
		fo.FailureDetail = "check canceled before completion"
	case fs.compiledOK || fs.validatedOK || (fs.kind == HFile && fo.FoundMutations > 0):
		fo.Status = StatusEscapes
		fo.Escapes = c.classifyEscapes(fs)
	default:
		fo.Status = StatusBuildFailed
		if fs.lastErr != nil {
			fo.FailureDetail = fs.lastErr.Error()
			switch {
			case errors.Is(fs.lastErr, errArchQuarantined):
				fo.Status = StatusArchQuarantined
			case errors.Is(fs.lastErr, kbuild.ErrBrokenArch):
				fo.Status = StatusUnsupportedArch
			case errors.Is(fs.lastErr, kbuild.ErrNoMakefile):
				fo.Status = StatusNoMakefile
			}
		}
	}
}
