package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"jmake/internal/faultinject"
	"jmake/internal/kbuild"
	"jmake/internal/trace"
)

// errArchQuarantined marks files whose remaining candidate architecture
// was shut off by the circuit breaker.
var errArchQuarantined = errors.New("core: architecture quarantined by circuit breaker")

// runState is the per-CheckPatch resilience state: the fault injector,
// the virtual-time budget ledger, and the architecture circuit breaker.
// It lives on the Checker but is reset for every patch, so concurrent
// evaluation workers (one Checker per patch) never share it and
// same-seed runs stay deterministic.
type runState struct {
	inj *faultinject.Injector

	budget    time.Duration
	spent     time.Duration
	exhausted bool

	// interrupt is Options.Interrupt; interrupted latches its first true
	// return so one firing stops the whole patch (and the report can say
	// so) even if the callback later flips back.
	interrupt   func() bool
	interrupted bool

	maxRetries  int
	threshold   int
	archFails   map[string]int
	quarantined map[string]bool
}

func newRunState(opts Options, commit string) *runState {
	return &runState{
		inj:         faultinject.New(opts.Faults, commit),
		budget:      opts.Budget,
		interrupt:   opts.Interrupt,
		maxRetries:  opts.MaxRetries,
		threshold:   opts.ArchFailureThreshold,
		archFails:   make(map[string]int),
		quarantined: make(map[string]bool),
	}
}

// charge adds virtual time to the patch's ledger, tripping the budget
// when the cap is crossed. With Budget == 0 it only accumulates.
func (r *runState) charge(d time.Duration) {
	r.spent += d
	if r.budget > 0 && r.spent >= r.budget {
		r.exhausted = true
	}
}

// halted reports whether the patch must stop launching work: the virtual
// budget ran out, or the caller's interrupt fired. It is the single poll
// every stage boundary uses, so budget exhaustion and cancellation stop
// the pipeline at exactly the same points.
func (r *runState) halted() bool {
	if r.exhausted || r.interrupted {
		return true
	}
	if r.interrupt != nil && r.interrupt() {
		r.interrupted = true
	}
	return r.interrupted
}

// noteArch feeds the circuit breaker one architecture outcome. Success
// resets the consecutive-failure count; only non-permanent failures
// (transient or broken-toolchain) count toward quarantine, so a file
// that simply does not compile can never shut off an architecture.
func (r *runState) noteArch(arch string, err error) {
	if err == nil {
		r.archFails[arch] = 0
		return
	}
	switch kbuild.Classify(err) {
	case kbuild.ClassTransient, kbuild.ClassArch:
		r.archFails[arch]++
		if r.archFails[arch] >= r.threshold {
			r.quarantined[arch] = true
		}
	}
}

func (r *runState) quarantinedList() []string {
	if len(r.quarantined) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.quarantined))
	for a := range r.quarantined {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// chargeBackoff prices one retry wait in virtual time and records it in
// the report.
func (c *Checker) chargeBackoff(report *PatchReport, attempt int, key string) {
	d := c.model.Backoff(attempt, report.Commit+":"+key)
	report.BackoffDurations = append(report.BackoffDurations, d)
	report.Retries++
	c.run.charge(d)
	c.rec.Leaf(trace.KindBackoff, d,
		trace.A("attempt", strconv.Itoa(attempt)),
		trace.A("op", key))
}

// makeIGroup runs one MakeI invocation and retries any transiently
// failed paths, merging retried results back in place. With no
// transient failures it is exactly one MakeI call.
func (c *Checker) makeIGroup(report *PatchReport, bp *builderPair, paths []string) []kbuild.IFile {
	results, dur := bp.ib.MakeI(paths)
	bp.ob.SetSetupDone()
	report.MakeIDurations = append(report.MakeIDurations, dur)
	c.run.charge(dur)
	for attempt := 1; attempt <= c.run.maxRetries; attempt++ {
		var retry []int
		for i := range results {
			if results[i].Err != nil && kbuild.IsTransient(results[i].Err) {
				retry = append(retry, i)
			}
		}
		if len(retry) == 0 || c.run.halted() {
			break
		}
		c.chargeBackoff(report, attempt, "makei:"+bp.ib.Arch.Name)
		again := make([]string, len(retry))
		for j, i := range retry {
			again[j] = results[i].Path
		}
		redo, rdur := bp.ib.MakeI(again)
		report.MakeIDurations = append(report.MakeIDurations, rdur)
		c.run.charge(rdur)
		for j, i := range retry {
			results[i] = redo[j]
		}
	}
	var archErr error
	ok := false
	for i := range results {
		if results[i].Err == nil {
			ok = true
			break
		}
		if archErr == nil && kbuild.Classify(results[i].Err) != kbuild.ClassPermanent {
			archErr = results[i].Err
		}
	}
	if ok {
		c.run.noteArch(bp.ib.Arch.Name, nil)
	} else if archErr != nil {
		c.run.noteArch(bp.ib.Arch.Name, archErr)
	}
	return results
}

// makeO compiles one pristine file, retrying transient failures. Every
// attempt's duration is recorded, like the real tool re-invoking make.
func (c *Checker) makeO(report *PatchReport, bp *builderPair, path string) error {
	for attempt := 0; ; attempt++ {
		_, dur, err := bp.ob.MakeO(path)
		report.MakeODurations = append(report.MakeODurations, dur)
		c.run.charge(dur)
		if err == nil {
			c.run.noteArch(bp.ob.Arch.Name, nil)
			return nil
		}
		if !kbuild.IsTransient(err) || attempt >= c.run.maxRetries || c.run.halted() {
			c.run.noteArch(bp.ob.Arch.Name, err)
			return err
		}
		c.chargeBackoff(report, attempt+1, "makeo:"+bp.ob.Arch.Name+":"+path)
	}
}

// markQuarantined records the breaker verdict on the files that would
// have used the architecture, overwriting only absent or non-permanent
// prior errors (a real compile error is more informative).
func markQuarantined(files []*fileState, arch string) {
	for _, fs := range files {
		if fs.lastErr == nil || kbuild.Classify(fs.lastErr) != kbuild.ClassPermanent {
			fs.lastErr = fmt.Errorf("%w: %s", errArchQuarantined, arch)
		}
	}
}
