package core

import (
	"fmt"
	"strings"
	"testing"
)

// benchIText synthesizes a preprocessed-output-shaped text: lines of
// filler C with mutation tokens sprinkled through, roughly what MakeI
// returns for a large group of files.
func benchIText(lines, tokens int) (string, []*mutEntry) {
	var muts []*mutEntry
	for i := 0; i < tokens; i++ {
		id := fmt.Sprintf("%s%q", MutationMarker, fmt.Sprintf("other:drivers/net/f%d.c:%d", i%7, i))
		muts = append(muts, &mutEntry{mut: Mutation{ID: id}, file: "drivers/net/f.c"})
	}
	var b strings.Builder
	every := lines / tokens
	if every < 1 {
		every = 1
	}
	tok := 0
	for i := 0; i < lines; i++ {
		if i%every == 0 && tok < tokens {
			// Half the tokens present in the .i, half absent (pending).
			if tok%2 == 0 {
				b.WriteString(muts[tok].mut.ID)
				b.WriteString(";\n")
			}
			tok++
		}
		b.WriteString("static int reg_read(struct dev *d) { return readl(d->base + 0x40); }\n")
	}
	return b.String(), muts
}

func BenchmarkWitnessedIn(b *testing.B) {
	for _, sz := range []struct {
		name          string
		lines, tokens int
	}{
		{"small-64KB-8muts", 1_000, 8},
		{"medium-1MB-64muts", 16_000, 64},
		{"large-8MB-256muts", 128_000, 256},
	} {
		iText, muts := benchIText(sz.lines, sz.tokens)
		b.Run(sz.name, func(b *testing.B) {
			b.SetBytes(int64(len(iText)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got := witnessedIn(iText, muts)
				if len(got) == 0 {
					b.Fatal("benchmark input witnessed nothing")
				}
			}
		})
	}
}
