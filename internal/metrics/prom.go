package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Prometheus text exposition content type served
// by /metricsz when a scraper asks for text/plain.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the registries in Prometheus text exposition format
// 0.0.4: one "# TYPE" comment per metric family, families sorted by
// name, series within a family sorted by label set, label keys sorted
// within each series, histograms as cumulative `_bucket` series with an
// `le` label plus `_sum` and `_count`. The output is deterministic for a
// given registry state — scraping an idle daemon twice yields identical
// bytes.
//
// Series appearing in more than one registry under the same (name,
// labels) are merged: counters and gauges sum, histograms with identical
// bounds sum bucket-wise (mismatched bounds keep the first occurrence).
// Metric names are sanitized to the Prometheus charset; label values are
// escaped per the exposition format.
func WriteText(w io.Writer, regs ...*Registry) error {
	type key struct {
		name   string
		labels string
	}
	type expo struct {
		kind    string
		name    string
		labels  []Label
		intVal  int64
		uintVal uint64
		bounds  []float64
		buckets []uint64
		sum     float64
	}
	merged := make(map[key]*expo)
	order := make([]key, 0, 64)
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, s := range r.sortedSeries() {
			ls := make([]Label, len(s.labels))
			for i, l := range s.labels {
				ls[i] = Label{Key: sanitizeLabelName(l.Key), Value: l.Value}
			}
			k := key{sanitizeName(s.name), labelKey(ls)}
			e, ok := merged[k]
			if !ok {
				e = &expo{kind: s.kind, name: k.name, labels: ls}
				merged[k] = e
				order = append(order, k)
			}
			switch s.kind {
			case "counter":
				e.uintVal += s.counter.Value()
			case "gauge":
				e.intVal += s.gauge.Value()
			case "histogram":
				bounds, buckets := s.hist.Buckets()
				sum := s.hist.Sum()
				if e.buckets == nil {
					e.bounds, e.buckets, e.sum = bounds, buckets, sum
				} else if len(e.bounds) == len(bounds) && boundsEqual(e.bounds, bounds) {
					for i := range buckets {
						e.buckets[i] += buckets[i]
					}
					e.sum += sum
				}
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].labels < order[j].labels
	})

	typed := make(map[string]bool)
	for _, k := range order {
		e := merged[k]
		if !typed[e.name] {
			typed[e.name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
		}
		switch e.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", e.name, renderLabels(e.labels, nil), strconv.FormatUint(e.uintVal, 10)); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", e.name, renderLabels(e.labels, nil), strconv.FormatInt(e.intVal, 10)); err != nil {
				return err
			}
		case "histogram":
			var cum uint64
			for i, b := range e.bounds {
				cum += e.buckets[i]
				le := Label{Key: "le", Value: formatFloat(b)}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, renderLabels(e.labels, &le), cum); err != nil {
					return err
				}
			}
			cum += e.buckets[len(e.buckets)-1]
			le := Label{Key: "le", Value: "+Inf"}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, renderLabels(e.labels, &le), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", e.name, renderLabels(e.labels, nil), formatFloat(e.sum)); err != nil {
				return err
			}
			// _count derives from the bucket snapshot (not the count field)
			// so the exposition is internally consistent mid-Observe.
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, renderLabels(e.labels, nil), cum); err != nil {
				return err
			}
		}
	}
	return nil
}

func boundsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// renderLabels formats the sorted label set, inserting extra (the `le`
// bucket label) in sorted position so every emitted label list is fully
// sorted by key.
func renderLabels(labels []Label, extra *Label) string {
	all := labels
	if extra != nil {
		all = make([]Label, 0, len(labels)+1)
		inserted := false
		for _, l := range labels {
			if !inserted && extra.Key < l.Key {
				all = append(all, *extra)
				inserted = true
			}
			all = append(all, l)
		}
		if !inserted {
			all = append(all, *extra)
		}
	}
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a float the shortest way that round-trips, the
// conventional Prometheus rendering ("0.005", "1", "2.5").
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func isValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sanitizeName maps a registry name onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are snake_case
// already; this is a safety net for future series, not a rewrite pass.
func sanitizeName(s string) string {
	if isValidMetricName(s) {
		return s
	}
	var b strings.Builder
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out == "" {
		return "_"
	}
	return out
}

// sanitizeLabelName is sanitizeName without the colon (label names may
// not contain ':').
func sanitizeLabelName(s string) string {
	return strings.ReplaceAll(sanitizeName(s), ":", "_")
}
