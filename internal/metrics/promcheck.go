package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateText checks data against the Prometheus text exposition
// invariants the obs-smoke gate cares about:
//
//   - every line is blank, a # HELP/# TYPE comment, or a sample;
//   - metric and label names use the legal charset, label values are
//     properly quoted, every sample value parses as a float;
//   - label keys within a series are strictly sorted (our writer's
//     determinism discipline, stronger than the format requires);
//   - each family has at most one # TYPE line, appearing before its
//     samples;
//   - every histogram family (declared via "# TYPE x histogram") has,
//     per label set: cumulative non-decreasing _bucket series ordered by
//     le, a le="+Inf" bucket, and _sum/_count with _count equal to the
//     +Inf bucket.
//
// It returns nil for valid input and a descriptive error for the first
// violation found.
func ValidateText(data []byte) error {
	lines := strings.Split(string(data), "\n")
	typeOf := make(map[string]string)                       // family -> declared type
	sampled := make(map[string]bool)                        // family -> samples seen
	histBuckets := make(map[string]map[string][]histSample) // family -> rest-labels -> buckets
	histSums := make(map[string]map[string]bool)
	histCounts := make(map[string]map[string]float64)
	sampleCount := 0

	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			switch {
			case strings.HasPrefix(rest, "HELP "):
				// free-form; nothing to check beyond the name token
			case strings.HasPrefix(rest, "TYPE "):
				fields := strings.Fields(rest)
				if len(fields) != 3 {
					return fmt.Errorf("line %d: malformed TYPE comment", lineNo)
				}
				name, typ := fields[1], fields[2]
				if !isValidMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := typeOf[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				typeOf[name] = typ
			default:
				return fmt.Errorf("line %d: unknown comment %q", lineNo, line)
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		sampleCount++
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typeOf[base] == "histogram" {
				family = base
				break
			}
		}
		sampled[family] = true
		sampled[name] = true

		if typeOf[family] == "histogram" {
			rest, le := splitLE(labels)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				leV, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
				}
				m := histBuckets[family]
				if m == nil {
					m = make(map[string][]histSample)
					histBuckets[family] = m
				}
				m[rest] = append(m[rest], histSample{le: leV, count: value})
			case strings.HasSuffix(name, "_sum"):
				m := histSums[family]
				if m == nil {
					m = make(map[string]bool)
					histSums[family] = m
				}
				m[rest] = true
			case strings.HasSuffix(name, "_count"):
				m := histCounts[family]
				if m == nil {
					m = make(map[string]float64)
					histCounts[family] = m
				}
				m[rest] = value
			}
		}
	}

	if sampleCount == 0 {
		return fmt.Errorf("no samples found")
	}

	// Histogram invariants per (family, label set).
	families := make([]string, 0, len(histBuckets))
	for f := range histBuckets {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		for rest, buckets := range histBuckets[f] {
			sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
			last := -1.0
			hasInf := false
			for _, b := range buckets {
				if b.count < last {
					return fmt.Errorf("%s{%s}: buckets not cumulative (le=%v count %v < %v)", f, rest, b.le, b.count, last)
				}
				last = b.count
				if math.IsInf(b.le, 1) {
					hasInf = true
				}
			}
			if !hasInf {
				return fmt.Errorf("%s{%s}: missing le=\"+Inf\" bucket", f, rest)
			}
			if !histSums[f][rest] {
				return fmt.Errorf("%s{%s}: missing _sum", f, rest)
			}
			count, ok := histCounts[f][rest]
			if !ok {
				return fmt.Errorf("%s{%s}: missing _count", f, rest)
			}
			if count != last {
				return fmt.Errorf("%s{%s}: _count %v != +Inf bucket %v", f, rest, count, last)
			}
		}
	}
	return nil
}

type histSample struct {
	le    float64
	count float64
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// splitLE removes the le label from a parsed label list, returning the
// remaining labels re-rendered as a grouping key plus the le value.
func splitLE(labels []Label) (rest string, le string) {
	var b strings.Builder
	for _, l := range labels {
		if l.Key == "le" {
			le = l.Value
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), le
}

// parseSample parses one exposition sample line: name{labels} value
// [timestamp]. It checks name/label charset, quoting, and strictly
// sorted label keys.
func parseSample(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		rest = rest[brace+1:]
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return "", nil, 0, err
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample without value: %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !isValidMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	prev := ""
	for i, l := range labels {
		if !isValidMetricName(l.Key) || strings.Contains(l.Key, ":") {
			return "", nil, 0, fmt.Errorf("invalid label name %q", l.Key)
		}
		if i > 0 && l.Key <= prev {
			return "", nil, 0, fmt.Errorf("label keys not strictly sorted: %q after %q", l.Key, prev)
		}
		prev = l.Key
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp] after labels, got %q", rest)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels consumes `k="v",k="v"}` and returns the labels plus the
// remainder of the line after the closing brace.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label value for %q not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %q", s[i], key)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, "", fmt.Errorf("unterminated label value for %q", key)
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' after label %q", key)
	}
}
