package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", L("stage", "make_i"))
	b := r.Counter("hits", L("stage", "make_i"))
	if a != b {
		t.Fatal("same (name, labels) must return the same series")
	}
	// Label order must not matter.
	x := r.Counter("hits", L("stage", "make_o"), L("arch", "x86"))
	y := r.Counter("hits", L("arch", "x86"), L("stage", "make_o"))
	if x != y {
		t.Fatal("label order must not create distinct series")
	}
	if x == a {
		t.Fatal("different labels must be distinct series")
	}
	if r.Counter("other") == a {
		t.Fatal("different names must be distinct series")
	}
}

// Counter totals must be exact under concurrent adds: the registry is the
// single home for numbers that used to live in per-package fields.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	d := r.Counter("ns")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				d.AddDuration(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := d.Duration(); got != 8000*time.Microsecond {
		t.Fatalf("duration counter = %v, want 8ms", got)
	}
}

func TestNegativeDurationIgnored(t *testing.T) {
	var c Counter
	c.AddDuration(-time.Second)
	if c.Value() != 0 {
		t.Fatalf("negative duration must be ignored, got %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("entries")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	for _, x := range []float64{0.5, 1, 5, 100} {
		h.Observe(x)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("count=%d sum=%g, want 4 / 106.5", h.Count(), h.Sum())
	}
	_, counts := h.Buckets()
	want := []uint64{2, 1, 1} // <=1, <=10, +Inf
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
}

// Snapshot order must be stable regardless of series creation order.
func TestSnapshotDeterministic(t *testing.T) {
	mk := func(order []string) []Sample {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Inc()
		}
		return r.Snapshot()
	}
	a := mk([]string{"b", "a", "c"})
	b := mk([]string{"c", "b", "a"})
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("want 3 samples, got %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("snapshot order depends on creation order: %v vs %v", a[i], b[i])
		}
	}
}

// Snapshot must be name-major sorted across kinds with fully sorted
// label sets, so /metricsz JSON scrapes of an idle daemon are
// byte-identical however the series were created.
func TestSnapshotFullySorted(t *testing.T) {
	r := NewRegistry()
	r.Histogram("zlat", []float64{1}).Observe(0.5)
	r.Counter("hits", L("stage", "b")).Inc()
	r.Gauge("entries").Set(4)
	r.Counter("hits", L("stage", "a"), L("arch", "x86")).Inc()
	r.Counter("alpha").Inc()
	got := r.Snapshot()
	wantNames := []string{
		"alpha",
		"entries",
		"hits{arch=x86}{stage=a}",
		"hits{stage=b}",
		"zlat",
	}
	if len(got) != len(wantNames) {
		t.Fatalf("snapshot has %d samples, want %d: %v", len(got), len(wantNames), got)
	}
	for i, w := range wantNames {
		if got[i].Name != w {
			t.Errorf("snapshot[%d].Name = %q, want %q", i, got[i].Name, w)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 uniform samples in (0,4]: 25 per bucket up to 4, none beyond.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	checks := []struct {
		q, lo, hi float64
	}{
		{0.25, 0.9, 1.1},
		{0.50, 1.9, 2.1},
		{0.95, 3.7, 3.9},
		{1.00, 3.9, 4.1},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("Quantile(%v) = %v, want in [%v, %v]", c.q, got, c.lo, c.hi)
		}
	}
	// A sample past the last bound is clamped to it.
	h.Observe(1000)
	if got := h.Quantile(1); got != 8 {
		t.Errorf("Quantile(1) with +Inf sample = %v, want 8 (last bound)", got)
	}
}

// Bounds are upper-inclusive: a sample exactly on a bound lands in that
// bound's bucket. Pins the binary-search bucketing (sort.SearchFloat64s
// finds the first bound >= x) against the old linear scan's semantics.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, x := range []float64{1, 2, 4, 0.5, 1.5, 5} {
		h.Observe(x)
	}
	_, counts := h.Buckets()
	want := []uint64{2, 2, 1, 1} // (..1], (1..2], (2..4], (4..+Inf)
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, want)
		}
	}
}

// Concurrent Observe must lose no samples and keep Sum exact for integer
// observations (the CAS loop retries, never drops).
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	const goroutines, per = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(2)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	if got := h.Sum(); got != float64(2*goroutines*per) {
		t.Fatalf("Sum = %v, want %v", got, 2*goroutines*per)
	}
	_, counts := h.Buckets()
	if counts[0] != goroutines*per {
		t.Fatalf("first bucket = %d, want %d", counts[0], goroutines*per)
	}
}
