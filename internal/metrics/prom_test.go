package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func buildPromRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total", L("endpoint", "check"), L("outcome", "ok")).Add(7)
	r.Counter("requests_total", L("endpoint", "check"), L("outcome", "shed")).Add(2)
	r.Counter("requests_total", L("endpoint", "batch"), L("outcome", "ok")).Inc()
	r.Gauge("inflight").Set(3)
	// Dyadic observations so the float sum is exact and its rendering
	// stable across platforms.
	h := r.Histogram("wall_seconds", []float64{0.01, 0.1, 1}, L("endpoint", "check"))
	h.Observe(0.0078125)
	h.Observe(0.0625)
	h.Observe(0.0625)
	h.Observe(5)
	return r
}

func renderProm(t *testing.T, regs ...*Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteText(&buf, regs...); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

func TestWriteTextRendering(t *testing.T) {
	got := renderProm(t, buildPromRegistry())
	want := strings.Join([]string{
		"# TYPE inflight gauge",
		"inflight 3",
		"# TYPE requests_total counter",
		`requests_total{endpoint="batch",outcome="ok"} 1`,
		`requests_total{endpoint="check",outcome="ok"} 7`,
		`requests_total{endpoint="check",outcome="shed"} 2`,
		"# TYPE wall_seconds histogram",
		`wall_seconds_bucket{endpoint="check",le="0.01"} 1`,
		`wall_seconds_bucket{endpoint="check",le="0.1"} 3`,
		`wall_seconds_bucket{endpoint="check",le="1"} 3`,
		`wall_seconds_bucket{endpoint="check",le="+Inf"} 4`,
		`wall_seconds_sum{endpoint="check"} 5.1328125`,
		`wall_seconds_count{endpoint="check"} 4`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	r := buildPromRegistry()
	a := renderProm(t, r)
	b := renderProm(t, r)
	if a != b {
		t.Errorf("two consecutive renders differ:\n%s\n---\n%s", a, b)
	}
	// Creation order must not leak into the output.
	r2 := NewRegistry()
	r2.Histogram("wall_seconds", []float64{0.01, 0.1, 1}, L("endpoint", "check")).Observe(0.0078125)
	r2.Counter("requests_total", L("outcome", "ok"), L("endpoint", "check")).Add(7)
	r2.Gauge("inflight").Set(3)
	r2.Counter("requests_total", L("outcome", "shed"), L("endpoint", "check")).Add(2)
	r2.Counter("requests_total", L("outcome", "ok"), L("endpoint", "batch")).Inc()
	h := r2.Histogram("wall_seconds", nil, L("endpoint", "check"))
	h.Observe(0.0625)
	h.Observe(0.0625)
	h.Observe(5)
	if got := renderProm(t, r2); got != a {
		t.Errorf("creation order leaked into exposition:\ngot:\n%s\nwant:\n%s", got, a)
	}
}

func TestWriteTextMergesRegistries(t *testing.T) {
	a := NewRegistry()
	a.Counter("requests_total", L("outcome", "ok")).Add(2)
	a.Histogram("wall_seconds", []float64{1, 10}).Observe(0.5)
	b := NewRegistry()
	b.Counter("requests_total", L("outcome", "ok")).Add(3)
	b.Counter("only_b_total").Inc()
	b.Histogram("wall_seconds", []float64{1, 10}).Observe(5)
	got := renderProm(t, a, b)
	for _, want := range []string{
		`requests_total{outcome="ok"} 5`,
		"only_b_total 1",
		`wall_seconds_bucket{le="1"} 1`,
		`wall_seconds_bucket{le="10"} 2`,
		`wall_seconds_bucket{le="+Inf"} 2`,
		"wall_seconds_sum 5.5",
		"wall_seconds_count 2",
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("merged exposition missing %q:\n%s", want, got)
		}
	}
}

func TestValidateTextAcceptsOwnOutput(t *testing.T) {
	got := renderProm(t, buildPromRegistry())
	if err := ValidateText([]byte(got)); err != nil {
		t.Errorf("validator rejected our own exposition: %v\n%s", err, got)
	}
}

func TestValidateTextRejectsBrokenInput(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"garbage line":      "this is not a metric\n",
		"bad name":          "9leading 1\n",
		"bad value":         "ok_total pizza\n",
		"unsorted labels":   "x{b=\"1\",a=\"2\"} 1\n",
		"unquoted label":    "x{a=1} 1\n",
		"unterminated":      "x{a=\"1 1\n",
		"unknown comment":   "# NOPE x counter\nx 1\n",
		"duplicate type":    "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"type after sample": "x 1\n# TYPE x counter\n",
		"non-cumulative histogram": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
		"missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
	}
	for name, in := range cases {
		if err := ValidateText([]byte(in)); err == nil {
			t.Errorf("%s: validator accepted invalid input:\n%s", name, in)
		}
	}
}

func TestValidateTextAcceptsLabeledHistograms(t *testing.T) {
	in := "# TYPE h histogram\n" +
		`h_bucket{ep="a",le="1"} 2` + "\n" +
		`h_bucket{ep="a",le="+Inf"} 3` + "\n" +
		`h_sum{ep="a"} 1.5` + "\n" +
		`h_count{ep="a"} 3` + "\n" +
		`h_bucket{ep="b",le="1"} 0` + "\n" +
		`h_bucket{ep="b",le="+Inf"} 1` + "\n" +
		`h_sum{ep="b"} 9` + "\n" +
		`h_count{ep="b"} 1` + "\n"
	if err := ValidateText([]byte(in)); err != nil {
		t.Errorf("validator rejected valid labeled histogram: %v", err)
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":     "ok_name",
		"with-dash":   "with_dash",
		"9lead":       "_lead",
		"dots.inside": "dots_inside",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
