// Package metrics is the pipeline's single home for counters, gauges and
// histograms. PR 2-4 each grew a private counter pile (PipelineMetrics,
// ccache hit/miss ledgers, token-cache counters, fault tallies); those are
// now *views* over one Registry, so a number can never drift between the
// place it is incremented and the place it is reported.
//
// Determinism discipline: counters and gauges are integers updated with
// atomic adds, which commute — their final values are invariant under any
// worker interleaving as long as the *set* of increments is deterministic
// (the compute-exactly-once caches guarantee that for cache counters).
// Durations are stored as integer nanoseconds for the same reason; float
// accumulation is left to readers, who see only the final sums.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension on a metric. Metrics with the same
// name but different label sets are distinct series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer. The zero value is ready
// to use, but series obtained from a Registry are the norm.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// AddDuration adds d as integer nanoseconds (negative d is ignored).
func (c *Counter) AddDuration(d time.Duration) {
	if d > 0 {
		c.v.Add(uint64(d))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Duration reinterprets the count as nanoseconds.
func (c *Counter) Duration() time.Duration { return time.Duration(c.v.Load()) }

// Gauge is a settable integer (e.g. entries resident in a cache).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Observations are
// float64; bucket bounds are upper-inclusive, with an implicit +Inf
// bucket at the end. Count and Sum are exact for integer observations.
//
// The hot path (Observe) is lock-free: the bucket is found by binary
// search over the immutable bounds (upper-inclusive, so the first bound
// >= x) and bumped with an atomic add — every request-latency sample used
// to take one shared mutex and a linear bucket scan. The sum accumulates
// through a CAS loop on the float bits. Readers snapshot the buckets
// atomically; Quantile derives its total from that snapshot (not the
// count field), so a quantile computed mid-Observe is internally
// consistent.
type Histogram struct {
	bounds  []float64 // immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.buckets[sort.SearchFloat64s(h.bounds, x)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns (bounds, counts); counts has one extra slot for +Inf.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return append([]float64(nil), h.bounds...), counts
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank, the standard Prometheus-style
// estimate. Samples beyond the last finite bound are reported as that
// bound (the estimate cannot exceed what the buckets can resolve).
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	_, counts := h.Buckets()
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, b := range h.bounds {
		n := float64(counts[i])
		if cum+n >= target {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if n == 0 {
				return b
			}
			return lower + (b-lower)*((target-cum)/n)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// series is one registered metric with its structured identity kept
// beside the value, so exporters (the JSON snapshot, the Prometheus text
// exposition) can sort and render by (name, label set) instead of
// re-parsing flattened keys.
type series struct {
	kind    string // "counter", "gauge", "histogram"
	name    string
	labels  []Label // sorted by key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// labelKey renders the sorted label set as the stable "{k=v}{k=v}" tail
// used for map keys and snapshot names.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// Registry hands out metric series keyed by (name, labels). Lookups are
// cheap but callers on hot paths should hold the returned handle.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	series []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// lookup finds or creates the series for (kind, name, labels). Caller
// must not hold mu.
func (r *Registry) lookup(kind, name string, labels []Label) *series {
	ls := sortLabels(labels)
	key := kind + ":" + name + labelKey(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byKey[key]
	if !ok {
		s = &series{kind: kind, name: name, labels: ls}
		r.byKey[key] = s
		r.series = append(r.series, s)
	}
	return s
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.lookup("counter", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.lookup("gauge", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram series for (name, labels) with the
// given bucket upper bounds (ignored if the series already exists).
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup("histogram", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		s.hist = &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
	}
	return s.hist
}

// sortedSeries snapshots the series list fully sorted by metric name,
// then label set, then kind — the one order every exporter uses, so
// repeated scrapes of an idle registry are byte-identical however the
// series were created.
func (r *Registry) sortedSeries() []*series {
	r.mu.Lock()
	out := append([]*series(nil), r.series...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		li, lj := labelKey(out[i].labels), labelKey(out[j].labels)
		if li != lj {
			return li < lj
		}
		return out[i].kind < out[j].kind
	})
	return out
}

// Sample is one series value in a Snapshot dump.
type Sample struct {
	Kind  string // "counter", "gauge", "histogram"
	Name  string // full series key incl. labels
	Value string // rendered value
}

// Snapshot returns every series fully sorted by metric name then label
// set (kind breaks the vanishingly rare tie), for tests and debug dumps.
// Sorting (not insertion order) keeps the dump deterministic under
// concurrent series creation, and the name-major order keeps repeated
// idle scrapes byte-identical.
func (r *Registry) Snapshot() []Sample {
	sorted := r.sortedSeries()
	out := make([]Sample, 0, len(sorted))
	for _, s := range sorted {
		name := s.name + labelKey(s.labels)
		switch s.kind {
		case "counter":
			out = append(out, Sample{Kind: "counter", Name: name, Value: fmt.Sprintf("%d", s.counter.Value())})
		case "gauge":
			out = append(out, Sample{Kind: "gauge", Name: name, Value: fmt.Sprintf("%d", s.gauge.Value())})
		case "histogram":
			out = append(out, Sample{Kind: "histogram", Name: name, Value: fmt.Sprintf("count=%d sum=%g", s.hist.Count(), s.hist.Sum())})
		}
	}
	return out
}
