// Package janitor implements the paper's §IV methodology for identifying
// kernel janitors: developers who work breadth-first across many
// subsystems and mailing lists, with little maintainer activity, doing
// about the same small amount of work on each file. Candidates passing the
// Table I thresholds are ranked by the coefficient of variation of their
// per-file patch counts, ascending — an even spread ranks first.
package janitor

import (
	"fmt"
	"sort"

	"jmake/internal/maintainers"
	"jmake/internal/stats"
	"jmake/internal/vcs"
)

// Thresholds are the Table I criteria.
type Thresholds struct {
	// MinPatches over the whole study period (Table I: >= 10).
	MinPatches int
	// MinSubsystems distinct MAINTAINERS entries touched (>= 20).
	MinSubsystems int
	// MinLists distinct designated mailing lists (>= 3).
	MinLists int
	// MaxMaintainerFrac of patches where the author maintains a touched
	// file (< 5%).
	MaxMaintainerFrac float64
	// MinWindowPatches in the evaluation window, so enough janitor patches
	// exist to study (paper: >= 20 between v4.3 and v4.4).
	MinWindowPatches int
	// TopN developers returned after ranking (paper: 10).
	TopN int
}

// DefaultThresholds returns Table I plus the paper's window constraint.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MinPatches:        10,
		MinSubsystems:     20,
		MinLists:          3,
		MaxMaintainerFrac: 0.05,
		MinWindowPatches:  20,
		TopN:              10,
	}
}

// AuthorStats aggregates one developer's activity (Table II row).
type AuthorStats struct {
	Name  string
	Email string
	// Patches is the total over the study period (history + window).
	Patches int
	// Subsystems and Lists are distinct counts via MAINTAINERS.
	Subsystems int
	Lists      int
	// MaintainerFrac is the fraction of patches touching files the author
	// maintains.
	MaintainerFrac float64
	// FileCV is the coefficient of variation of per-file patch counts.
	FileCV float64
	// WindowPatches counts patches inside the evaluation window.
	WindowPatches int
}

type accum struct {
	name           string
	patches        int
	windowPatches  int
	maintainerHits int
	subsystems     map[string]bool
	lists          map[string]bool
	fileCounts     map[string]int
}

// Identify runs the study over fromTag..toTag with the window starting at
// midTag, and returns the ranked janitors.
func Identify(repo *vcs.Repo, ix *maintainers.Index, fromTag, midTag, toTag string, th Thresholds) ([]AuthorStats, error) {
	history, err := repo.Between(fromTag, midTag, vcs.LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		return nil, fmt.Errorf("janitor: %w", err)
	}
	window, err := repo.Between(midTag, toTag, vcs.LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		return nil, fmt.Errorf("janitor: %w", err)
	}

	authors := make(map[string]*accum)
	tally := func(id string, inWindow bool) error {
		c, err := repo.Get(id)
		if err != nil {
			return err
		}
		a, ok := authors[c.Author.Email]
		if !ok {
			a = &accum{
				name:       c.Author.Name,
				subsystems: make(map[string]bool),
				lists:      make(map[string]bool),
				fileCounts: make(map[string]int),
			}
			authors[c.Author.Email] = a
		}
		a.patches++
		if inWindow {
			a.windowPatches++
		}
		maintains := false
		for _, ch := range c.Changes {
			a.fileCounts[ch.Path]++
			for _, s := range ix.SubsystemsFor(ch.Path) {
				a.subsystems[s] = true
			}
			for _, l := range ix.ListsFor(ch.Path) {
				a.lists[l] = true
			}
			if ix.IsMaintainer(c.Author.Email, ch.Path) {
				maintains = true
			}
		}
		if maintains {
			a.maintainerHits++
		}
		return nil
	}
	for _, id := range history {
		if err := tally(id, false); err != nil {
			return nil, err
		}
	}
	for _, id := range window {
		if err := tally(id, true); err != nil {
			return nil, err
		}
	}

	var out []AuthorStats
	for email, a := range authors {
		st := AuthorStats{
			Name:           a.name,
			Email:          email,
			Patches:        a.patches,
			Subsystems:     len(a.subsystems),
			Lists:          len(a.lists),
			MaintainerFrac: float64(a.maintainerHits) / float64(a.patches),
			WindowPatches:  a.windowPatches,
		}
		counts := make([]float64, 0, len(a.fileCounts))
		for _, n := range a.fileCounts {
			counts = append(counts, float64(n))
		}
		st.FileCV = stats.CoefficientOfVariation(counts)
		if st.Patches < th.MinPatches ||
			st.Subsystems < th.MinSubsystems ||
			st.Lists < th.MinLists ||
			st.MaintainerFrac >= th.MaxMaintainerFrac ||
			st.WindowPatches < th.MinWindowPatches {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FileCV != out[j].FileCV {
			return out[i].FileCV < out[j].FileCV
		}
		return out[i].Email < out[j].Email
	})
	if th.TopN > 0 && len(out) > th.TopN {
		out = out[:th.TopN]
	}
	return out, nil
}

// Emails extracts the address set of the identified janitors, for
// filtering the evaluation's patch stream.
func Emails(js []AuthorStats) map[string]bool {
	out := make(map[string]bool, len(js))
	for _, j := range js {
		out[j.Email] = true
	}
	return out
}
