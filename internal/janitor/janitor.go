// Package janitor implements the paper's §IV methodology for identifying
// kernel janitors: developers who work breadth-first across many
// subsystems and mailing lists, with little maintainer activity, doing
// about the same small amount of work on each file. Candidates passing the
// Table I thresholds are ranked by the coefficient of variation of their
// per-file patch counts, ascending — an even spread ranks first.
package janitor

import (
	"fmt"
	"sort"

	"jmake/internal/maintainers"
	"jmake/internal/sched"
	"jmake/internal/stats"
	"jmake/internal/vcs"
)

// Thresholds are the Table I criteria.
type Thresholds struct {
	// MinPatches over the whole study period (Table I: >= 10).
	MinPatches int
	// MinSubsystems distinct MAINTAINERS entries touched (>= 20).
	MinSubsystems int
	// MinLists distinct designated mailing lists (>= 3).
	MinLists int
	// MaxMaintainerFrac of patches where the author maintains a touched
	// file (< 5%).
	MaxMaintainerFrac float64
	// MinWindowPatches in the evaluation window, so enough janitor patches
	// exist to study (paper: >= 20 between v4.3 and v4.4).
	MinWindowPatches int
	// TopN developers returned after ranking (paper: 10).
	TopN int
}

// DefaultThresholds returns Table I plus the paper's window constraint.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MinPatches:        10,
		MinSubsystems:     20,
		MinLists:          3,
		MaxMaintainerFrac: 0.05,
		MinWindowPatches:  20,
		TopN:              10,
	}
}

// AuthorStats aggregates one developer's activity (Table II row).
type AuthorStats struct {
	Name  string
	Email string
	// Patches is the total over the study period (history + window).
	Patches int
	// Subsystems and Lists are distinct counts via MAINTAINERS.
	Subsystems int
	Lists      int
	// MaintainerFrac is the fraction of patches touching files the author
	// maintains.
	MaintainerFrac float64
	// FileCV is the coefficient of variation of per-file patch counts.
	FileCV float64
	// WindowPatches counts patches inside the evaluation window.
	WindowPatches int
}

type accum struct {
	name           string
	patches        int
	windowPatches  int
	maintainerHits int
	subsystems     map[string]bool
	lists          map[string]bool
	fileCounts     map[string]int
}

// commitTally is the per-commit work computed in parallel: everything the
// serial fold needs to add one commit to its author's accumulator. The
// commit lookup and the MAINTAINERS index queries dominate the study's
// cost and are pure reads, so they parallelize; the fold itself stays
// serial in submission order, making the study worker-count-invariant.
type commitTally struct {
	email, name string
	inWindow    bool
	paths       []string // one entry per change, duplicates intact
	subsystems  []string
	lists       []string
	maintains   bool
	err         error
}

// Identify runs the study over fromTag..toTag with the window starting at
// midTag, and returns the ranked janitors.
func Identify(repo *vcs.Repo, ix *maintainers.Index, fromTag, midTag, toTag string, th Thresholds) ([]AuthorStats, error) {
	return IdentifyWorkers(repo, ix, fromTag, midTag, toTag, th, 1)
}

// IdentifyWorkers is Identify with the per-commit tallying fanned over
// workers. The result is identical at any worker count.
func IdentifyWorkers(repo *vcs.Repo, ix *maintainers.Index, fromTag, midTag, toTag string, th Thresholds, workers int) ([]AuthorStats, error) {
	history, err := repo.Between(fromTag, midTag, vcs.LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		return nil, fmt.Errorf("janitor: %w", err)
	}
	window, err := repo.Between(midTag, toTag, vcs.LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		return nil, fmt.Errorf("janitor: %w", err)
	}
	ids := make([]string, 0, len(history)+len(window))
	ids = append(ids, history...)
	ids = append(ids, window...)

	tallies, _ := sched.Collect(len(ids), sched.Options{Workers: workers}, func(i int) commitTally {
		return tallyCommit(repo, ix, ids[i], i >= len(history))
	})

	authors := make(map[string]*accum)
	for _, ct := range tallies {
		if ct.err != nil {
			return nil, ct.err
		}
		a, ok := authors[ct.email]
		if !ok {
			a = &accum{
				name:       ct.name,
				subsystems: make(map[string]bool),
				lists:      make(map[string]bool),
				fileCounts: make(map[string]int),
			}
			authors[ct.email] = a
		}
		a.patches++
		if ct.inWindow {
			a.windowPatches++
		}
		for _, p := range ct.paths {
			a.fileCounts[p]++
		}
		for _, s := range ct.subsystems {
			a.subsystems[s] = true
		}
		for _, l := range ct.lists {
			a.lists[l] = true
		}
		if ct.maintains {
			a.maintainerHits++
		}
	}

	var out []AuthorStats
	for email, a := range authors {
		st := AuthorStats{
			Name:           a.name,
			Email:          email,
			Patches:        a.patches,
			Subsystems:     len(a.subsystems),
			Lists:          len(a.lists),
			MaintainerFrac: float64(a.maintainerHits) / float64(a.patches),
			WindowPatches:  a.windowPatches,
		}
		counts := make([]float64, 0, len(a.fileCounts))
		for _, n := range a.fileCounts {
			counts = append(counts, float64(n))
		}
		// Map iteration order is random; the CV's floating-point sums are
		// order-sensitive in the last ulp, so sort for reproducible output.
		sort.Float64s(counts)
		st.FileCV = stats.CoefficientOfVariation(counts)
		if st.Patches < th.MinPatches ||
			st.Subsystems < th.MinSubsystems ||
			st.Lists < th.MinLists ||
			st.MaintainerFrac >= th.MaxMaintainerFrac ||
			st.WindowPatches < th.MinWindowPatches {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FileCV != out[j].FileCV {
			return out[i].FileCV < out[j].FileCV
		}
		return out[i].Email < out[j].Email
	})
	if th.TopN > 0 && len(out) > th.TopN {
		out = out[:th.TopN]
	}
	return out, nil
}

// tallyCommit computes one commit's contribution to the study.
func tallyCommit(repo *vcs.Repo, ix *maintainers.Index, id string, inWindow bool) commitTally {
	c, err := repo.Get(id)
	if err != nil {
		return commitTally{err: err}
	}
	ct := commitTally{
		email:    c.Author.Email,
		name:     c.Author.Name,
		inWindow: inWindow,
	}
	for _, ch := range c.Changes {
		ct.paths = append(ct.paths, ch.Path)
		ct.subsystems = append(ct.subsystems, ix.SubsystemsFor(ch.Path)...)
		ct.lists = append(ct.lists, ix.ListsFor(ch.Path)...)
		if ix.IsMaintainer(c.Author.Email, ch.Path) {
			ct.maintains = true
		}
	}
	return ct
}

// Emails extracts the address set of the identified janitors, for
// filtering the evaluation's patch stream.
func Emails(js []AuthorStats) map[string]bool {
	out := make(map[string]bool, len(js))
	for _, j := range js {
		out[j.Email] = true
	}
	return out
}
