package janitor

import (
	"testing"

	"jmake/internal/commitgen"
	"jmake/internal/kernelgen"
	"jmake/internal/maintainers"
)

func buildStudy(t *testing.T) ([]AuthorStats, []commitgen.JanitorSpec) {
	t.Helper()
	tree, man, err := kernelgen.Generate(kernelgen.Params{Seed: 21, Scale: 0.3})
	if err != nil {
		t.Fatalf("kernelgen: %v", err)
	}
	res, err := commitgen.Build(tree, man, commitgen.Params{Seed: 22, Scale: 0.05})
	if err != nil {
		t.Fatalf("commitgen: %v", err)
	}
	content, err := res.Repo.ReadTip("MAINTAINERS")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := maintainers.Parse(content)
	if err != nil {
		t.Fatal(err)
	}
	th := DefaultThresholds()
	// Scale-adjusted thresholds: at 5% commit scale the janitors have ~5%
	// of their paper volumes. MinPatches sits above the one-off guest
	// contributors' noise floor, as the paper's >= 10 does at full scale.
	th.MinPatches = 8
	th.MinSubsystems = 4
	th.MinLists = 2
	th.MinWindowPatches = 2
	got, err := Identify(res.Repo, maintainers.NewIndex(entries), "v3.0", "v4.3", "v4.4", th)
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	return got, res.Janitors
}

func TestIdentifyFindsJanitors(t *testing.T) {
	got, specs := buildStudy(t)
	if len(got) == 0 {
		t.Fatal("no janitors identified")
	}
	if len(got) > DefaultThresholds().TopN {
		t.Errorf("returned %d, cap is %d", len(got), DefaultThresholds().TopN)
	}
	specEmails := map[string]bool{}
	for _, s := range specs {
		specEmails[s.Email] = true
	}
	hits := 0
	for _, a := range got {
		if specEmails[a.Email] {
			hits++
		}
	}
	// At 5% commit scale the relaxed thresholds admit some staging
	// maintainers (who, like real ones, fail the paper's >= 20 subsystems
	// bar at full scale); a majority of roster hits is the small-scale
	// expectation. The full-scale reproduction is checked by jmake-eval.
	if hits < len(got)/2 {
		t.Errorf("only %d/%d identified janitors are from the planted roster", hits, len(got))
	}
	for _, a := range got {
		t.Logf("%-28s patches=%4d subsystems=%3d lists=%3d maint=%.2f cv=%.2f window=%d",
			a.Name, a.Patches, a.Subsystems, a.Lists, a.MaintainerFrac, a.FileCV, a.WindowPatches)
	}
}

func TestRankingAscendingCV(t *testing.T) {
	got, _ := buildStudy(t)
	for i := 1; i < len(got); i++ {
		if got[i].FileCV < got[i-1].FileCV {
			t.Errorf("ranking not ascending: %v then %v", got[i-1].FileCV, got[i].FileCV)
		}
	}
}

func TestThresholdsFilter(t *testing.T) {
	got, _ := buildStudy(t)
	for _, a := range got {
		if a.MaintainerFrac >= 0.05 {
			t.Errorf("%s has maintainer fraction %.2f, threshold is 5%%", a.Name, a.MaintainerFrac)
		}
	}
}

func TestEmails(t *testing.T) {
	got, _ := buildStudy(t)
	emails := Emails(got)
	if len(emails) != len(got) {
		t.Errorf("Emails = %d entries, want %d", len(emails), len(got))
	}
	for _, a := range got {
		if !emails[a.Email] {
			t.Errorf("missing %s", a.Email)
		}
	}
}
