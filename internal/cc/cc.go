// Package cc implements the front end of a C compiler, sufficient to decide
// whether a preprocessed translation unit (.i text) compiles into an object
// file.
//
// JMake needs exactly the front end's verdict (paper §III-A): a file
// containing a mutation token (an invalid '@' character) must fail, while
// the original file must succeed — and a file whose architecture-specific
// declarations are missing must fail for that architecture. cc therefore
// checks three things for real: character validity, bracket structure, and
// declaration-before-use for called functions ("implicit declaration",
// an error in kernel builds).
package cc

import (
	"fmt"
	"strconv"
	"strings"

	"jmake/internal/cpp"
)

// Diagnostic is a positioned compiler error, with positions mapped back to
// the original source via the .i file's line markers.
type Diagnostic struct {
	File string
	Line int
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: error: %s", d.File, d.Line, d.Msg)
}

// CompileError aggregates the diagnostics of a failed compilation.
type CompileError struct {
	Diags []Diagnostic
}

func (e *CompileError) Error() string {
	if len(e.Diags) == 0 {
		return "cc: compilation failed"
	}
	msgs := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		msgs[i] = d.String()
	}
	return strings.Join(msgs, "\n")
}

// Object summarizes a successfully compiled translation unit; its fields
// feed the evaluation's cost model.
type Object struct {
	// Lines is the number of code lines compiled (markers and blanks
	// excluded).
	Lines int
	// Functions is the number of function definitions.
	Functions int
	// Defined lists the functions this unit defines, in order.
	Defined []string
}

// maxDiags bounds error reporting, like gcc's default error limit.
const maxDiags = 20

// controlKeywords may be followed by '(' without being function calls.
var controlKeywords = map[string]bool{
	"if": true, "while": true, "for": true, "switch": true, "return": true,
	"sizeof": true, "do": true, "else": true, "goto": true, "case": true,
	"default": true, "break": true, "continue": true, "typeof": true,
	"__attribute__": true, "asm": true, "__asm__": true,
}

// typeKeywords can precede a declarator, so "int foo(" declares foo rather
// than calling it.
var typeKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "unsigned": true, "signed": true,
	"const": true, "volatile": true, "static": true, "extern": true,
	"inline": true, "__inline__": true, "struct": true, "union": true,
	"enum": true, "typedef": true, "register": true, "_Bool": true,
}

func isKeyword(s string) bool { return controlKeywords[s] || typeKeywords[s] }

// tok is a token with its source position resolved through line markers.
type tok struct {
	cpp.Token
	file string
	line int
}

// Compile type-checks the preprocessed translation unit and returns a
// summary of the object that a full compiler would emit. On failure the
// returned error is a *CompileError carrying positioned diagnostics.
func Compile(iText string) (Object, error) {
	toks, codeLines := scan(iText)
	var diags []Diagnostic
	addDiag := func(d Diagnostic) {
		if len(diags) < maxDiags {
			diags = append(diags, d)
		}
	}

	// Pass 1: character validity and literal well-formedness.
	for _, t := range toks {
		switch t.Kind {
		case cpp.KindOther:
			addDiag(Diagnostic{t.file, t.line, fmt.Sprintf("stray %q in program", t.Text)})
		case cpp.KindString:
			if len(t.Text) < 2 || t.Text[len(t.Text)-1] != '"' {
				addDiag(Diagnostic{t.file, t.line, "missing terminating \" character"})
			}
		case cpp.KindChar:
			if len(t.Text) < 3 || t.Text[len(t.Text)-1] != '\'' {
				addDiag(Diagnostic{t.file, t.line, "missing terminating ' character"})
			}
		}
	}

	// Pass 2: bracket structure.
	checkBalance(toks, addDiag)

	// Pass 3: declaration analysis. Only when the structure is sound —
	// depth tracking is meaningless in unbalanced code.
	var obj Object
	obj.Lines = codeLines
	if len(diags) == 0 {
		declared, defined := collectDeclarations(toks)
		obj.Functions = len(defined)
		obj.Defined = defined
		seen := make(map[string]bool, len(defined))
		for _, name := range defined {
			if seen[name] {
				addDiag(Diagnostic{Msg: fmt.Sprintf("redefinition of %q", name)})
			}
			seen[name] = true
		}
		checkCalls(toks, declared, addDiag)
	}

	if len(diags) > 0 {
		return Object{}, &CompileError{Diags: diags}
	}
	return obj, nil
}

// scan lexes the .i text, resolving line markers into per-token positions.
func scan(iText string) ([]tok, int) {
	var out []tok
	file := "<unknown>"
	line := 0
	codeLines := 0
	for _, raw := range strings.Split(iText, "\n") {
		if strings.HasPrefix(raw, "# ") {
			// Line marker: # <line> "<file>" [flags]
			if f, l, ok := parseMarker(raw); ok {
				file, line = f, l-1
				continue
			}
		}
		line++
		if strings.TrimSpace(raw) == "" {
			continue
		}
		codeLines++
		for _, t := range cpp.Lex(raw) {
			out = append(out, tok{Token: t, file: file, line: line})
		}
	}
	return out, codeLines
}

func parseMarker(s string) (file string, line int, ok bool) {
	rest := strings.TrimPrefix(s, "# ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(rest[:sp])
	if err != nil {
		return "", 0, false
	}
	rest = rest[sp+1:]
	if !strings.HasPrefix(rest, "\"") {
		return "", 0, false
	}
	end := strings.Index(rest[1:], "\"")
	if end < 0 {
		return "", 0, false
	}
	return rest[1 : 1+end], n, true
}

// checkBalance verifies that (), [], {} nest correctly.
func checkBalance(toks []tok, addDiag func(Diagnostic)) {
	type open struct {
		ch   string
		file string
		line int
	}
	var stack []open
	match := map[string]string{")": "(", "]": "[", "}": "{"}
	for _, t := range toks {
		if t.Kind != cpp.KindPunct {
			continue
		}
		switch t.Text {
		case "(", "[", "{":
			stack = append(stack, open{t.Text, t.file, t.line})
		case ")", "]", "}":
			if len(stack) == 0 {
				addDiag(Diagnostic{t.file, t.line, fmt.Sprintf("unexpected %q", t.Text)})
				return
			}
			top := stack[len(stack)-1]
			if top.ch != match[t.Text] {
				addDiag(Diagnostic{t.file, t.line,
					fmt.Sprintf("mismatched %q: open %q at %s:%d", t.Text, top.ch, top.file, top.line)})
				return
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) > 0 {
		top := stack[len(stack)-1]
		addDiag(Diagnostic{top.file, top.line, fmt.Sprintf("unclosed %q", top.ch)})
	}
}

// collectDeclarations gathers function names declared or defined at file
// scope: an identifier immediately followed by '(' at brace depth 0. It
// also returns the subset that are *definitions* (their parameter list is
// followed by '{').
func collectDeclarations(toks []tok) (declared map[string]bool, defined []string) {
	declared = make(map[string]bool)
	depth := 0
	for i, t := range toks {
		if t.Kind == cpp.KindPunct {
			switch t.Text {
			case "{":
				depth++
			case "}":
				depth--
			}
			continue
		}
		if depth != 0 || t.Kind != cpp.KindIdent || isKeyword(t.Text) {
			continue
		}
		if i+1 >= len(toks) || toks[i+1].Kind != cpp.KindPunct || toks[i+1].Text != "(" {
			continue
		}
		if !declared[t.Text] {
			declared[t.Text] = true
		}
		// Definition: scan past the balanced parameter list for '{'.
		if isDefinition(toks, i+1) {
			defined = append(defined, t.Text)
		}
	}
	return declared, defined
}

// isDefinition reports whether the '(' at toks[open] closes into a '{'
// (function definition) rather than ';' (prototype).
func isDefinition(toks []tok, open int) bool {
	depth := 0
	for i := open; i < len(toks); i++ {
		if toks[i].Kind != cpp.KindPunct {
			continue
		}
		switch toks[i].Text {
		case "(":
			depth++
		case ")":
			depth--
			if depth == 0 {
				for j := i + 1; j < len(toks); j++ {
					if toks[j].Kind == cpp.KindPunct {
						switch toks[j].Text {
						case "{":
							return true
						case ";", ",", "=":
							return false
						}
					}
					// Attribute-ish identifiers between ')' and '{' are fine.
				}
				return false
			}
		}
	}
	return false
}

// checkCalls reports calls to functions that are never declared in the
// translation unit. Kernel builds treat implicit declarations as errors;
// this is the mechanism by which a driver that needs another architecture's
// headers fails to compile for the wrong architecture.
func checkCalls(toks []tok, declared map[string]bool, addDiag func(Diagnostic)) {
	depth := 0
	reported := make(map[string]bool)
	for i, t := range toks {
		if t.Kind == cpp.KindPunct {
			switch t.Text {
			case "{":
				depth++
			case "}":
				depth--
			}
			continue
		}
		if depth == 0 || t.Kind != cpp.KindIdent || isKeyword(t.Text) {
			continue
		}
		if i+1 >= len(toks) || toks[i+1].Kind != cpp.KindPunct || toks[i+1].Text != "(" {
			continue
		}
		// Member access (p->init(...), s.cb(...)) goes through pointers, not
		// file-scope declarations.
		if i > 0 && toks[i-1].Kind == cpp.KindPunct && (toks[i-1].Text == "->" || toks[i-1].Text == ".") {
			continue
		}
		// A declarator inside a body ("int foo(void);") is rare in kernel
		// style; treat identifier-preceded-by-type-keyword as a declaration.
		if i > 0 && toks[i-1].Kind == cpp.KindIdent && typeKeywords[toks[i-1].Text] {
			continue
		}
		if !declared[t.Text] && !reported[t.Text] {
			reported[t.Text] = true
			addDiag(Diagnostic{t.file, t.line,
				fmt.Sprintf("implicit declaration of function %q", t.Text)})
		}
	}
}
