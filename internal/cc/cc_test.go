package cc

import (
	"errors"
	"strings"
	"testing"
)

// compileOK asserts success and returns the object.
func compileOK(t *testing.T, iText string) Object {
	t.Helper()
	obj, err := Compile(iText)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return obj
}

// compileFail asserts failure and returns the diagnostics.
func compileFail(t *testing.T, iText string) []Diagnostic {
	t.Helper()
	_, err := Compile(iText)
	if err == nil {
		t.Fatal("Compile succeeded, want failure")
	}
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("error type = %T, want *CompileError", err)
	}
	return ce.Diags
}

const validUnit = `# 1 "drivers/a.c"
static int helper(int x)
{
 return x + 1;
}
int probe(void)
{
 int v = helper(2);
 return v;
}
`

func TestCompileValid(t *testing.T) {
	obj := compileOK(t, validUnit)
	if obj.Functions != 2 {
		t.Errorf("Functions = %d, want 2", obj.Functions)
	}
	if len(obj.Defined) != 2 || obj.Defined[0] != "helper" || obj.Defined[1] != "probe" {
		t.Errorf("Defined = %v", obj.Defined)
	}
	if obj.Lines != 9 {
		t.Errorf("Lines = %d, want 9", obj.Lines)
	}
}

func TestStrayCharacterRejected(t *testing.T) {
	src := "# 1 \"drivers/a.c\"\nint x = 1;\n@\"other:drivers/a.c:2\"\nint y = 2;\n"
	diags := compileFail(t, src)
	if len(diags) == 0 || !strings.Contains(diags[0].Msg, `stray "@"`) {
		t.Errorf("diags = %v", diags)
	}
	if diags[0].File != "drivers/a.c" || diags[0].Line != 2 {
		t.Errorf("position = %s:%d, want drivers/a.c:2", diags[0].File, diags[0].Line)
	}
}

func TestLineMarkersMapPositions(t *testing.T) {
	// Mutation propagated from a macro use on original line 40.
	src := "# 1 \"drivers/a.c\"\nint a;\n# 40 \"drivers/a.c\"\nint v = @\"define:drivers/a.c:7\";\n"
	diags := compileFail(t, src)
	if diags[0].Line != 40 {
		t.Errorf("line = %d, want 40 (from marker)", diags[0].Line)
	}
}

func TestImplicitDeclaration(t *testing.T) {
	src := `# 1 "drivers/a.c"
int probe(void)
{
 return arch_only_fn(1);
}
`
	diags := compileFail(t, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, `implicit declaration of function "arch_only_fn"`) {
		t.Errorf("diags = %v", diags)
	}
}

func TestDeclaredByPrototype(t *testing.T) {
	src := `# 1 "include/linux/io.h"
extern void outw(int v, unsigned long addr);
# 1 "drivers/a.c"
int probe(void)
{
 outw(1, 0x40);
 return 0;
}
`
	compileOK(t, src)
}

func TestKeywordsNotCalls(t *testing.T) {
	src := `# 1 "a.c"
int f(int x)
{
 if (x) {
  while (x > 0) {
   x--;
  }
 }
 for (x = 0; x < 3; x++) {
  x += sizeof(int);
 }
 switch (x) {
 case 1:
  break;
 default:
  break;
 }
 return (x);
}
`
	compileOK(t, src)
}

func TestMemberCallsAllowed(t *testing.T) {
	src := `# 1 "a.c"
struct ops { int (*init)(void); };
int f(struct ops *o)
{
 return o->init();
}
`
	compileOK(t, src)
}

func TestFunctionPointerMembersNotDeclarations(t *testing.T) {
	// (*cb)( must not be treated as declaring "cb" nor as calling it.
	src := `# 1 "a.c"
struct handler { void (*cb)(int); };
static struct handler h;
int use(void)
{
 h.cb(1);
 return 0;
}
`
	compileOK(t, src)
}

func TestUnbalancedBraces(t *testing.T) {
	src := "# 1 \"a.c\"\nint f(void)\n{\n return 0;\n"
	diags := compileFail(t, src)
	if !strings.Contains(diags[0].Msg, `unclosed "{"`) {
		t.Errorf("diags = %v", diags)
	}
}

func TestMismatchedBrackets(t *testing.T) {
	src := "# 1 \"a.c\"\nint a[3} ;\n"
	diags := compileFail(t, src)
	if !strings.Contains(diags[0].Msg, "mismatched") {
		t.Errorf("diags = %v", diags)
	}
}

func TestUnexpectedCloser(t *testing.T) {
	src := "# 1 \"a.c\"\nint f(void)\n{\n return 0;\n}\n}\n"
	diags := compileFail(t, src)
	if !strings.Contains(diags[0].Msg, "unexpected") {
		t.Errorf("diags = %v", diags)
	}
}

func TestUnterminatedString(t *testing.T) {
	src := "# 1 \"a.c\"\nconst char *s = \"oops;\n"
	diags := compileFail(t, src)
	if !strings.Contains(diags[0].Msg, "missing terminating") {
		t.Errorf("diags = %v", diags)
	}
}

func TestDiagLimit(t *testing.T) {
	var b strings.Builder
	b.WriteString("# 1 \"a.c\"\n")
	for i := 0; i < 100; i++ {
		b.WriteString("@ @ @\n")
	}
	diags := compileFail(t, b.String())
	if len(diags) > maxDiags {
		t.Errorf("len(diags) = %d, want <= %d", len(diags), maxDiags)
	}
}

func TestPrototypeOnlyIsNotDefinition(t *testing.T) {
	src := "# 1 \"a.c\"\nint declared_only(int);\nint f(void)\n{\n return declared_only(3);\n}\n"
	obj := compileOK(t, src)
	if obj.Functions != 1 {
		t.Errorf("Functions = %d, want 1 (prototype is not a definition)", obj.Functions)
	}
}

func TestStaticInitializerNotCall(t *testing.T) {
	src := `# 1 "a.c"
static int probe_fn(void)
{
 return 0;
}
static struct { int (*p)(void); } ops = { probe_fn };
`
	compileOK(t, src)
}

func TestMultipleErrorsCollected(t *testing.T) {
	src := "# 1 \"a.c\"\n@ x;\n$ y;\n"
	diags := compileFail(t, src)
	if len(diags) != 2 {
		t.Errorf("len(diags) = %d, want 2: %v", len(diags), diags)
	}
}

func TestEmptyUnit(t *testing.T) {
	obj := compileOK(t, "# 1 \"a.c\"\n")
	if obj.Lines != 0 || obj.Functions != 0 {
		t.Errorf("empty unit: %+v", obj)
	}
}

func TestRedefinitionRejected(t *testing.T) {
	src := `# 1 "a.c"
int f(void)
{
 return 1;
}
int f(void)
{
 return 2;
}
`
	diags := compileFail(t, src)
	if !strings.Contains(diags[0].Msg, `redefinition of "f"`) {
		t.Errorf("diags = %v", diags)
	}
}

func TestPrototypePlusDefinitionAllowed(t *testing.T) {
	src := "# 1 \"a.c\"\nint f(void);\nint f(void)\n{\n return 1;\n}\n"
	compileOK(t, src)
}
