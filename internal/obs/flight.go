package obs

import (
	"sync"

	"jmake/internal/trace"
)

// Outcome taxonomy for request records. Every terminal path through the
// daemon maps to exactly one of these, so the flight recorder and the
// requests_outcome_total counter always agree on vocabulary.
const (
	OutcomeOK       = "ok"       // 200, report delivered
	OutcomeShed     = "shed"     // 429, admission refused
	OutcomeTimeout  = "timeout"  // 504, deadline expired mid-check
	OutcomePanic    = "panic"    // 500, checker panicked (session canaried)
	OutcomeError    = "error"    // 4xx/5xx, validation or internal error
	OutcomeCanceled = "canceled" // client went away mid-request
	OutcomeDraining = "draining" // 503, server shutting down
)

// Record is one entry in the flight recorder: the compact post-mortem of
// a single daemon request. Field order here is the serve order of
// /debugz/requests, so the JSON layout is part of the debug surface.
//
// Wall-clock fields are allowed: records live beside reports (the
// byte-identical invariant covers report JSON only). Virtual and cache
// fields come from the request's stamped trace, so they are
// deterministic for a given commit.
type Record struct {
	Seq            uint64  `json:"seq"`
	RequestID      string  `json:"request_id"`
	Endpoint       string  `json:"endpoint"`
	Commit         string  `json:"commit,omitempty"`
	Outcome        string  `json:"outcome"`
	Status         int     `json:"status"`
	Cause          string  `json:"cause,omitempty"`
	WallMillis     float64 `json:"wall_ms"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	CacheCompute   int     `json:"cache_compute"`
	CacheReuse     int     `json:"cache_reuse"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	Spans          string  `json:"spans,omitempty"`

	// Trace is the request's merged, stamped span tree, kept for
	// GET /tracez/<request-id> until the record is evicted. Not part of
	// the debugz JSON (it has its own endpoint and formats).
	Trace *trace.Trace `json:"-"`
}

// FlightRecorder is a fixed-size ring of the most recent Records. Adds
// are O(1); eviction is strictly oldest-first, so after the ring wraps,
// Records() is a sliding window of the last Cap() requests.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []Record
	head int    // index of the oldest record when full
	n    int    // live records
	seq  uint64 // last assigned sequence number
}

// DefaultFlightRecorderSize is the ring capacity when the flag is unset.
const DefaultFlightRecorderSize = 256

// NewFlightRecorder returns a ring holding the last n records
// (n <= 0 selects DefaultFlightRecorderSize).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightRecorderSize
	}
	return &FlightRecorder{buf: make([]Record, n)}
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int { return len(f.buf) }

// Add appends rec, assigning and returning its sequence number
// (monotonic from 1). The oldest record is evicted when full.
func (f *FlightRecorder) Add(rec Record) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	rec.Seq = f.seq
	if f.n < len(f.buf) {
		f.buf[(f.head+f.n)%len(f.buf)] = rec
		f.n++
	} else {
		f.buf[f.head] = rec
		f.head = (f.head + 1) % len(f.buf)
	}
	return rec.Seq
}

// Records returns a copy of the live records, oldest first.
func (f *FlightRecorder) Records() []Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Record, f.n)
	for i := 0; i < f.n; i++ {
		out[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	return out
}

// Find returns the record for requestID, or ok=false if it was never
// recorded or has been evicted.
func (f *FlightRecorder) Find(requestID string) (Record, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Newest-first: a request ID is unique, but if a caller ever reuses
	// one, the most recent record is the useful answer.
	for i := f.n - 1; i >= 0; i-- {
		r := f.buf[(f.head+i)%len(f.buf)]
		if r.RequestID == requestID {
			return r, true
		}
	}
	return Record{}, false
}
