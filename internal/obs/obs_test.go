package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func testLogger(buf *bytes.Buffer, level Level) *Logger {
	l := New(buf, level)
	l.now = func() time.Time { return time.Unix(1700000000, 123456789).UTC() }
	return l
}

func TestLoggerNDJSON(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, Info)
	l.Info("request", F("request_id", "r000001-abc"), F("status", 200), F("wall_ms", 1.5), F("ok", true))
	line := buf.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("event not newline-terminated: %q", line)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("event is not valid JSON: %v\n%s", err, line)
	}
	for k, want := range map[string]any{
		"level":      "info",
		"msg":        "request",
		"request_id": "r000001-abc",
		"status":     float64(200),
		"wall_ms":    1.5,
		"ok":         true,
	} {
		if ev[k] != want {
			t.Errorf("event[%q] = %v, want %v", k, ev[k], want)
		}
	}
	// Fixed key prefix order: ts, level, msg, then fields in call order.
	wantPrefix := `{"ts":"2023-11-14T22:13:20.123456789Z","level":"info","msg":"request","request_id":`
	if !strings.HasPrefix(line, wantPrefix) {
		t.Errorf("key order not fixed:\n got %s\nwant prefix %s", line, wantPrefix)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, Warn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 events at warn level, got %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"level":"warn"`) || !strings.Contains(lines[1], `"level":"error"`) {
		t.Errorf("unexpected events:\n%s", buf.String())
	}
	if l.Enabled(Info) || !l.Enabled(Error) {
		t.Error("Enabled disagrees with level filter")
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Debug("d")
	l.Info("i", F("k", "v"))
	l.Warn("w")
	l.Error("e")
	l.SetDebugSampling(10)
	if l.Enabled(Error) {
		t.Error("nil logger must report disabled")
	}
	if l.Dropped() != 0 {
		t.Error("nil logger Dropped != 0")
	}
}

func TestDebugSampling(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, Debug)
	l.SetDebugSampling(10)
	for i := 0; i < 100; i++ {
		l.Debug("d", F("i", i))
	}
	got := strings.Count(buf.String(), "\n")
	if got != 10 {
		t.Errorf("1-in-10 sampling of 100 events wrote %d, want 10", got)
	}
	if l.Dropped() != 90 {
		t.Errorf("Dropped = %d, want 90", l.Dropped())
	}
	// Info is never sampled.
	buf.Reset()
	for i := 0; i < 5; i++ {
		l.Info("i")
	}
	if strings.Count(buf.String(), "\n") != 5 {
		t.Errorf("sampling must not apply to info events")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": Debug, "INFO": Info, "warn": Warn, "warning": Warn, " error ": Error,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel must reject unknown levels")
	}
}

func TestLoggerConcurrentLinesIntact(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, Info)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("event", F("g", g), F("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("want 400 intact lines, got %d", len(lines))
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("interleaved/corrupt line: %v\n%s", err, line)
		}
	}
}

func TestFlightRecorderEviction(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		seq := f.Add(Record{RequestID: fmt.Sprintf("r%03d", i)})
		if seq != uint64(i+1) {
			t.Fatalf("Add #%d returned seq %d", i, seq)
		}
	}
	recs := f.Records()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for i, r := range recs {
		wantID := fmt.Sprintf("r%03d", 6+i)
		if r.RequestID != wantID || r.Seq != uint64(7+i) {
			t.Errorf("records[%d] = {%s seq=%d}, want {%s seq=%d}", i, r.RequestID, r.Seq, wantID, 7+i)
		}
	}
	if _, ok := f.Find("r005"); ok {
		t.Error("evicted record still findable")
	}
	if r, ok := f.Find("r009"); !ok || r.Seq != 10 {
		t.Errorf("Find(r009) = %+v, %v", r, ok)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32)
	var wg sync.WaitGroup
	const writers, per = 8, 200
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Add(Record{RequestID: fmt.Sprintf("w%d-%d", g, i), Outcome: OutcomeOK})
			}
		}(g)
	}
	wg.Wait()
	recs := f.Records()
	if len(recs) != 32 {
		t.Fatalf("ring holds %d, want 32", len(recs))
	}
	// Sequence numbers are unique, strictly increasing oldest->newest,
	// and end at the total add count.
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("sequence not increasing at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
	if recs[len(recs)-1].Seq != writers*per {
		t.Errorf("last seq = %d, want %d", recs[len(recs)-1].Seq, writers*per)
	}
}

func TestFlightRecorderDefaultSize(t *testing.T) {
	if got := NewFlightRecorder(0).Cap(); got != DefaultFlightRecorderSize {
		t.Errorf("default cap = %d, want %d", got, DefaultFlightRecorderSize)
	}
	if got := NewFlightRecorder(7).Cap(); got != 7 {
		t.Errorf("cap = %d, want 7", got)
	}
}

func TestRecordJSONFieldOrder(t *testing.T) {
	b, err := json.Marshal(Record{
		Seq: 1, RequestID: "r1", Endpoint: "check", Commit: "abc",
		Outcome: OutcomeTimeout, Status: 504, Cause: "deadline",
		WallMillis: 1.5, VirtualSeconds: 2.5,
		CacheCompute: 3, CacheReuse: 1, CacheHitRatio: 0.25,
		Spans: "make.i x86=4",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"request_id":"r1","endpoint":"check","commit":"abc",` +
		`"outcome":"timeout","status":504,"cause":"deadline","wall_ms":1.5,` +
		`"virtual_seconds":2.5,"cache_compute":3,"cache_reuse":1,` +
		`"cache_hit_ratio":0.25,"spans":"make.i x86=4"}`
	if string(b) != want {
		t.Errorf("record JSON layout changed:\n got %s\nwant %s", b, want)
	}
}
