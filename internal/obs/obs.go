// Package obs is the service-side observability kit for jmaked: a
// leveled NDJSON event logger and a fixed-size flight recorder of recent
// request records.
//
// Everything here lives *beside* check reports, never inside them: logs
// and flight records may carry wall-clock timestamps and durations, but
// the report JSON a request returns is byte-identical whether or not
// logging or flight recording is enabled. That split is the same
// discipline internal/trace established for virtual-time spans — the
// deterministic artifact and the operational telemetry never share a
// byte stream.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity threshold.
type Level int

const (
	// Debug events are high-volume per-request details, subject to
	// sampling (SetDebugSampling).
	Debug Level = iota
	// Info events are one line per request plus lifecycle events.
	Info
	// Warn events are recoverable anomalies (shed, timeout, canary miss).
	Warn
	// Error events are panics and internal failures.
	Error
)

// String renders the level as its lowercase NDJSON token.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug, nil
	case "info":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// Field is one key/value pair on an event. Fields render in the order
// given, after the fixed ts/level/msg prefix.
type Field struct {
	Key   string
	Value any
}

// F is shorthand for constructing a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes one JSON object per event, newline-delimited. A nil
// *Logger is valid and discards everything, so call sites never need a
// guard. Writes under a mutex so concurrent request goroutines never
// interleave bytes within a line.
type Logger struct {
	mu      sync.Mutex
	w       io.Writer
	level   Level
	sample  atomic.Int64 // keep 1 of every N debug events; <=1 keeps all
	debugN  atomic.Uint64
	now     func() time.Time // test hook
	dropped atomic.Uint64    // sampled-away debug events
}

// New returns a logger writing NDJSON events at or above level to w.
func New(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level, now: time.Now}
}

// SetDebugSampling keeps 1 of every n Debug events (n <= 1 keeps all).
// Info and above are never sampled.
func (l *Logger) SetDebugSampling(n int) {
	if l == nil {
		return
	}
	l.sample.Store(int64(n))
}

// Enabled reports whether events at lv would be written, so callers can
// skip building expensive debug fields.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// Dropped returns how many debug events sampling has discarded.
func (l *Logger) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Debugf-style sugar is deliberately absent: events are (msg, fields),
// not format strings, so downstream tooling can filter on keys.

// Debug logs a sampled high-volume event.
func (l *Logger) Debug(msg string, fields ...Field) {
	if !l.Enabled(Debug) {
		return
	}
	if n := l.sample.Load(); n > 1 {
		if l.debugN.Add(1)%uint64(n) != 1 {
			l.dropped.Add(1)
			return
		}
	}
	l.emit(Debug, msg, fields)
}

// Info logs a per-request or lifecycle event.
func (l *Logger) Info(msg string, fields ...Field) {
	if l.Enabled(Info) {
		l.emit(Info, msg, fields)
	}
}

// Warn logs a recoverable anomaly.
func (l *Logger) Warn(msg string, fields ...Field) {
	if l.Enabled(Warn) {
		l.emit(Warn, msg, fields)
	}
}

// Error logs a failure.
func (l *Logger) Error(msg string, fields ...Field) {
	if l.Enabled(Error) {
		l.emit(Error, msg, fields)
	}
}

// emit renders the event by hand so the key order is fixed
// (ts, level, msg, then fields in call order); values go through
// encoding/json so arbitrary types are safe.
func (l *Logger) emit(lv Level, msg string, fields []Field) {
	var b strings.Builder
	b.Grow(128)
	b.WriteString(`{"ts":"`)
	b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`","level":"`)
	b.WriteString(lv.String())
	b.WriteString(`","msg":`)
	writeJSONValue(&b, msg)
	for _, f := range fields {
		b.WriteByte(',')
		writeJSONValue(&b, f.Key)
		b.WriteByte(':')
		writeJSONValue(&b, f.Value)
	}
	b.WriteString("}\n")
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func writeJSONValue(b *strings.Builder, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	b.Write(enc)
}
