package csrc

import (
	"strings"
	"testing"
)

const sample = `/* SPDX header */
#include <linux/types.h>

#define REG_CTRL 0x04
#define MUX(x) \
	(((x) & 0xf) << 4) | \
	(((x) & 0xf) << 0)

/* multi
   line
   comment */
int global = 1; /* trailing */

#ifdef CONFIG_FOO
static int foo_state;
#else
static int bar_state;
#endif

#if defined(CONFIG_A) && !defined(CONFIG_B)
int ab;
#elif CONFIG_C
int c_only;
#endif

int f(void)
{
	return REG_CTRL; // line comment
}
`

func analyzeSample(t *testing.T) *File {
	t.Helper()
	return Analyze(sample)
}

func line(t *testing.T, f *File, n int) Line {
	t.Helper()
	li, ok := f.LineAt(n)
	if !ok {
		t.Fatalf("LineAt(%d) out of range", n)
	}
	return li
}

func TestCommentClassification(t *testing.T) {
	f := analyzeSample(t)
	if !line(t, f, 1).CommentOnly {
		t.Error("line 1 (block comment) should be CommentOnly")
	}
	if li := line(t, f, 9); !li.CommentOnly || li.InComment {
		t.Errorf("line 9 starts a multi-line comment: %+v", li)
	}
	if li := line(t, f, 10); !li.InComment || !li.CommentOnly {
		t.Errorf("line 10 is inside the comment: %+v", li)
	}
	if li := line(t, f, 11); !li.InComment || li.CommentEndCol < 0 {
		t.Errorf("line 11 ends the comment: %+v", li)
	}
	if li := line(t, f, 12); li.CommentOnly || li.InComment {
		t.Errorf("line 12 has code before a trailing comment: %+v", li)
	}
	if li := line(t, f, 2); li.CommentOnly {
		t.Error("line 2 (#include) should not be comment-only")
	}
	if li := line(t, f, 3); !li.CommentOnly {
		t.Error("line 3 (blank) should be comment-only")
	}
}

func TestMacroDefinitionTracking(t *testing.T) {
	f := analyzeSample(t)
	if li := line(t, f, 4); !li.InMacroDef || li.MacroName != "REG_CTRL" || li.MacroStart != 4 {
		t.Errorf("line 4: %+v", li)
	}
	for n := 5; n <= 7; n++ {
		li := line(t, f, n)
		if !li.InMacroDef || li.MacroName != "MUX" || li.MacroStart != 5 {
			t.Errorf("line %d should be in MUX definition: %+v", n, li)
		}
	}
	if li := line(t, f, 8); li.InMacroDef {
		t.Errorf("line 8 should not be in a macro: %+v", li)
	}
}

func TestDirectiveParsing(t *testing.T) {
	f := analyzeSample(t)
	if li := line(t, f, 2); li.Directive != "include" || li.DirectiveArg != "<linux/types.h>" {
		t.Errorf("line 2: %+v", li)
	}
	if li := line(t, f, 14); li.Directive != "ifdef" || li.DirectiveArg != "CONFIG_FOO" {
		t.Errorf("line 14: %+v", li)
	}
}

func TestConditionalStack(t *testing.T) {
	f := analyzeSample(t)
	// Line 15 is under #ifdef CONFIG_FOO.
	li := line(t, f, 15)
	if len(li.Conds) != 1 || li.Conds[0].Kind != CondIfdef || li.Conds[0].Arg != "CONFIG_FOO" {
		t.Errorf("line 15 conds = %+v", li.Conds)
	}
	// Line 17 is under the #else of CONFIG_FOO.
	li = line(t, f, 17)
	if len(li.Conds) != 1 || li.Conds[0].Kind != CondElse || li.Conds[0].Arg != "CONFIG_FOO" ||
		li.Conds[0].OpenKind != CondIfdef {
		t.Errorf("line 17 conds = %+v", li.Conds)
	}
	// Line 21 is under the #if defined(...) expression.
	li = line(t, f, 21)
	if len(li.Conds) != 1 || li.Conds[0].Kind != CondIf ||
		!strings.Contains(li.Conds[0].Arg, "CONFIG_A") {
		t.Errorf("line 21 conds = %+v", li.Conds)
	}
	// Line 23 is under the #elif.
	li = line(t, f, 23)
	if len(li.Conds) != 1 || li.Conds[0].Kind != CondElif || li.Conds[0].Arg != "CONFIG_C" {
		t.Errorf("line 23 conds = %+v", li.Conds)
	}
	// Line 27 (int f...) is outside all conditionals.
	if li = line(t, f, 26); len(li.Conds) != 0 {
		t.Errorf("line 26 conds = %+v, want empty", li.Conds)
	}
}

func TestRegions(t *testing.T) {
	f := analyzeSample(t)
	if r := line(t, f, 12).Region; r != 0 {
		t.Errorf("line 12 region = %d, want 0 (before any conditional)", r)
	}
	if r := line(t, f, 15).Region; r != 14 {
		t.Errorf("line 15 region = %d, want 14 (#ifdef line)", r)
	}
	if r := line(t, f, 17).Region; r != 16 {
		t.Errorf("line 17 region = %d, want 16 (#else line)", r)
	}
	// Lines after #endif keep the last directive's region (the paper's rule
	// does not split at #endif).
	if r := line(t, f, 19).Region; r != 16 {
		t.Errorf("line 19 region = %d, want 16", r)
	}
	if r := line(t, f, 23).Region; r != 22 {
		t.Errorf("line 23 region = %d, want 22 (#elif)", r)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `#ifdef A
#ifdef B
int ab;
#endif
int a_only;
#endif
`
	f := Analyze(src)
	li, _ := f.LineAt(3)
	if len(li.Conds) != 2 || li.Conds[0].Arg != "A" || li.Conds[1].Arg != "B" {
		t.Errorf("line 3 conds = %+v", li.Conds)
	}
	li, _ = f.LineAt(5)
	if len(li.Conds) != 1 || li.Conds[0].Arg != "A" {
		t.Errorf("line 5 conds = %+v", li.Conds)
	}
}

func TestCommentMarkersInsideStrings(t *testing.T) {
	f := Analyze(`const char *s = "/* not a comment";` + "\nint after;\n")
	li, _ := f.LineAt(2)
	if li.InComment || li.CommentOnly {
		t.Errorf("string contents misparsed as comment: %+v", li)
	}
}

func TestIfZeroTracked(t *testing.T) {
	f := Analyze("#if 0\nint dead;\n#endif\n")
	li, _ := f.LineAt(2)
	if len(li.Conds) != 1 || li.Conds[0].Kind != CondIf || li.Conds[0].Arg != "0" {
		t.Errorf("conds = %+v", li.Conds)
	}
}

func TestMacroDefInsideConditional(t *testing.T) {
	src := `#ifdef CONFIG_X
#define GATED(v) ((v) + 1)
#endif
`
	f := Analyze(src)
	li, _ := f.LineAt(2)
	if !li.InMacroDef || li.MacroName != "GATED" {
		t.Errorf("line 2: %+v", li)
	}
	if len(li.Conds) != 1 || li.Conds[0].Arg != "CONFIG_X" {
		t.Errorf("line 2 conds = %+v", li.Conds)
	}
}

func TestEmptyAndEdgeFiles(t *testing.T) {
	if f := Analyze(""); len(f.Lines) != 0 {
		t.Errorf("empty file lines = %d", len(f.Lines))
	}
	if _, ok := Analyze("x\n").LineAt(2); ok {
		t.Error("LineAt past end should fail")
	}
	if _, ok := Analyze("x\n").LineAt(0); ok {
		t.Error("LineAt(0) should fail")
	}
	f := Analyze("no trailing newline")
	if len(f.Lines) != 1 || f.Lines[0].Text != "no trailing newline" {
		t.Errorf("lines = %+v", f.Lines)
	}
}

func TestDefineNameExtraction(t *testing.T) {
	tests := []struct{ arg, want string }{
		{"FOO 1", "FOO"},
		{"MUX(x) ((x))", "MUX"},
		{"BARE", "BARE"},
	}
	for _, tt := range tests {
		if got := defineName(tt.arg); got != tt.want {
			t.Errorf("defineName(%q) = %q, want %q", tt.arg, got, tt.want)
		}
	}
}

// A stack snapshot taken at one line must remain valid after later lines
// pop frames (regression guard for slice aliasing).
func TestCondStackNotAliased(t *testing.T) {
	src := `#ifdef A
int a1;
#ifdef B
int ab;
#endif
#ifdef C
int ac;
#endif
#endif
`
	f := Analyze(src)
	abLine, _ := f.LineAt(4)
	acLine, _ := f.LineAt(7)
	if abLine.Conds[1].Arg != "B" {
		t.Errorf("line 4 inner frame = %+v (aliased?)", abLine.Conds[1])
	}
	if acLine.Conds[1].Arg != "C" {
		t.Errorf("line 7 inner frame = %+v", acLine.Conds[1])
	}
}

func TestElifChainPriors(t *testing.T) {
	src := strings.Join([]string{
		"#ifdef A",         // 1
		"int a;",           // 2
		"#elif defined(B)", // 3
		"int b;",           // 4
		"#elif defined(C)", // 5
		"int c;",           // 6
		"#else",            // 7
		"int d;",           // 8
		"#endif",           // 9
		"",
	}, "\n")
	f := Analyze(src)

	fr := func(n int) CondFrame {
		li, ok := f.LineAt(n)
		if !ok || len(li.Conds) != 1 {
			t.Fatalf("line %d: want one frame, got %+v", n, li.Conds)
		}
		return li.Conds[0]
	}

	first := fr(2)
	if first.Kind != CondIfdef || len(first.Prior) != 0 {
		t.Errorf("opening frame: %+v", first)
	}
	second := fr(4)
	if second.Kind != CondElif || second.Arg != "defined(B)" {
		t.Errorf("second frame: %+v", second)
	}
	if len(second.Prior) != 1 || second.Prior[0] != (CondBranch{CondIfdef, "A"}) {
		t.Errorf("second frame priors: %+v", second.Prior)
	}
	third := fr(6)
	wantThird := []CondBranch{{CondIfdef, "A"}, {CondElif, "defined(B)"}}
	if len(third.Prior) != 2 || third.Prior[0] != wantThird[0] || third.Prior[1] != wantThird[1] {
		t.Errorf("third frame priors: %+v", third.Prior)
	}
	last := fr(8)
	if last.Kind != CondElse || last.OpenKind != CondIfdef {
		t.Errorf("else frame: %+v", last)
	}
	wantElse := []CondBranch{{CondIfdef, "A"}, {CondElif, "defined(B)"}, {CondElif, "defined(C)"}}
	if len(last.Prior) != 3 {
		t.Fatalf("else frame priors: %+v", last.Prior)
	}
	for i, w := range wantElse {
		if last.Prior[i] != w {
			t.Errorf("else prior[%d] = %+v, want %+v", i, last.Prior[i], w)
		}
	}
	// The second branch's Prior slice must not have been clobbered when the
	// third branch extended the chain.
	if len(second.Prior) != 1 {
		t.Errorf("second frame priors mutated: %+v", second.Prior)
	}
}
