// Package csrc analyzes C source files at the physical-line level: which
// lines sit inside comments, which belong to macro definitions (including
// backslash continuations), and which preprocessor conditionals enclose
// each line.
//
// JMake's mutation placement (paper §III-B) distinguishes exactly these
// three cases — comment lines, macro-definition lines, other lines — and
// needs the enclosing-conditional structure both to minimize mutations
// (one per region between conditional directives) and to explain, after
// the fact, why an unseen mutation escaped the compiler (Table IV).
package csrc

import "strings"

// CondKind is the kind of conditional directive opening a region.
type CondKind int

// Conditional kinds.
const (
	CondIf CondKind = iota + 1
	CondIfdef
	CondIfndef
	CondElif
	CondElse
)

func (k CondKind) String() string {
	switch k {
	case CondIf:
		return "if"
	case CondIfdef:
		return "ifdef"
	case CondIfndef:
		return "ifndef"
	case CondElif:
		return "elif"
	case CondElse:
		return "else"
	default:
		return "?"
	}
}

// CondBranch records the own test of one earlier branch in a conditional
// chain: the directive kind and its argument.
type CondBranch struct {
	Kind CondKind
	Arg  string
}

// CondFrame is one enclosing conditional at a given line.
type CondFrame struct {
	Kind CondKind
	// Arg is the directive's argument: the expression of #if/#elif, the
	// identifier of #ifdef/#ifndef. For an #else frame, Arg is the argument
	// of the matching opening directive.
	Arg string
	// OpenKind is the kind of the original opening directive (meaningful
	// for Else/Elif frames).
	OpenKind CondKind
	// Line is the 1-based line of the directive that opened this branch.
	Line int
	// Prior lists every earlier branch of the same chain, outermost-opening
	// first. An #elif or #else branch is active only when all of these
	// tests failed, so static consumers must conjoin their negations. Empty
	// for an opening #if/#ifdef/#ifndef frame. The slice is shared between
	// lines; callers must not mutate it.
	Prior []CondBranch
}

// Line describes one physical source line.
type Line struct {
	// Num is the 1-based physical line number.
	Num int
	// Text is the raw line content (no newline).
	Text string
	// InComment is true when the line begins inside a block comment.
	InComment bool
	// CommentEndCol is the byte offset just past the closing "*/" when the
	// line begins inside a comment that ends on this line; -1 otherwise.
	CommentEndCol int
	// CommentOnly is true when the line contains no code at all (blank,
	// fully inside a comment, or only comment text).
	CommentOnly bool
	// Directive is the preprocessor directive name when the line starts one
	// ("if", "ifdef", "define", "include", ...), else "".
	Directive string
	// DirectiveArg is the remainder of the directive line.
	DirectiveArg string
	// InMacroDef is true when the line belongs to a #define (the directive
	// line itself or a backslash continuation of one).
	InMacroDef bool
	// MacroName is the macro being defined when InMacroDef.
	MacroName string
	// MacroStart is the line number of the #define when InMacroDef.
	MacroStart int
	// Conds is the stack of enclosing conditionals (outermost first). The
	// slice is shared between lines; callers must not mutate it.
	Conds []CondFrame
	// Region is the line number of the most recent #if/#ifdef/#ifndef/
	// #elif/#else directive at or before this line, or 0. Non-macro changed
	// lines with equal Region share one mutation (paper §III-B: "since the
	// beginning of the file, or since the most recent conditional
	// compilation directive").
	Region int
}

// File is the analysis result for one file.
type File struct {
	Lines []Line // index i is physical line i+1
}

// LineAt returns the info for 1-based line n; ok is false out of range.
func (f *File) LineAt(n int) (Line, bool) {
	if n < 1 || n > len(f.Lines) {
		return Line{}, false
	}
	return f.Lines[n-1], true
}

// Analyze scans content and classifies every physical line.
func Analyze(content string) *File {
	rawLines := strings.Split(strings.TrimSuffix(content, "\n"), "\n")
	if content == "" {
		rawLines = nil
	}
	f := &File{Lines: make([]Line, len(rawLines))}

	inComment := false
	inMacro := false
	macroName := ""
	macroStart := 0
	region := 0
	var stack []CondFrame

	for i, text := range rawLines {
		li := Line{Num: i + 1, Text: text, CommentEndCol: -1}
		li.InComment = inComment
		// A conditional directive line itself belongs to the *preceding*
		// region — the preprocessor always sees the directive, so a mutation
		// certifying it must land before it, outside the region it opens.
		regionAtStart := region

		code, endCol, stillIn := stripComments(text, inComment)
		if li.InComment && !stillIn {
			li.CommentEndCol = endCol
		}
		trimmedCode := strings.TrimSpace(code)
		li.CommentOnly = trimmedCode == ""

		continuing := inMacro && !li.InComment
		if continuing {
			li.InMacroDef = true
			li.MacroName = macroName
			li.MacroStart = macroStart
		}
		// Does the macro continue past this line?
		if inMacro {
			if !strings.HasSuffix(strings.TrimRight(text, " \t"), "\\") {
				inMacro = false
			}
		}

		if !li.InComment && strings.HasPrefix(trimmedCode, "#") {
			rest := strings.TrimLeft(trimmedCode[1:], " \t")
			name := rest
			arg := ""
			if j := strings.IndexAny(rest, " \t"); j >= 0 {
				name = rest[:j]
				arg = strings.TrimSpace(rest[j:])
			}
			li.Directive = name
			li.DirectiveArg = arg
			li.CommentOnly = false
			switch name {
			case "define":
				li.InMacroDef = true
				li.MacroName = defineName(arg)
				li.MacroStart = li.Num
				if strings.HasSuffix(strings.TrimRight(text, " \t"), "\\") {
					inMacro = true
					macroName = li.MacroName
					macroStart = li.Num
				}
			case "if":
				region = li.Num
				stack = append(stack, CondFrame{Kind: CondIf, OpenKind: CondIf, Arg: arg, Line: li.Num})
			case "ifdef":
				region = li.Num
				stack = append(stack, CondFrame{Kind: CondIfdef, OpenKind: CondIfdef, Arg: arg, Line: li.Num})
			case "ifndef":
				region = li.Num
				stack = append(stack, CondFrame{Kind: CondIfndef, OpenKind: CondIfndef, Arg: arg, Line: li.Num})
			case "elif":
				region = li.Num
				if len(stack) > 0 {
					top := stack[len(stack)-1]
					stack = append(stack[:len(stack)-1:len(stack)-1],
						CondFrame{Kind: CondElif, OpenKind: top.OpenKind, Arg: arg, Line: li.Num,
							Prior: appendBranch(top.Prior, top.Kind, top.Arg)})
				}
			case "else":
				region = li.Num
				if len(stack) > 0 {
					top := stack[len(stack)-1]
					stack = append(stack[:len(stack)-1:len(stack)-1],
						CondFrame{Kind: CondElse, OpenKind: top.OpenKind, Arg: top.Arg, Line: li.Num,
							Prior: appendBranch(top.Prior, top.Kind, top.Arg)})
				}
			case "endif":
				if len(stack) > 0 {
					stack = stack[: len(stack)-1 : len(stack)-1]
				}
			}
		}

		li.Conds = stack
		li.Region = regionAtStart
		f.Lines[i] = li
		inComment = stillIn
	}
	return f
}

// appendBranch extends a prior-branch list into a fresh slice, so chain
// siblings never alias each other's backing arrays.
func appendBranch(prior []CondBranch, kind CondKind, arg string) []CondBranch {
	out := make([]CondBranch, len(prior), len(prior)+1)
	copy(out, prior)
	return append(out, CondBranch{Kind: kind, Arg: arg})
}

// stripComments removes comment text from one line. startInComment says
// the line begins inside a block comment. It returns the code portion
// (comment bytes replaced by spaces), the offset just past the first "*/"
// that closes an initial comment (or -1), and whether a block comment is
// still open at end of line. String literals are respected.
func stripComments(text string, startInComment bool) (code string, endCol int, stillIn bool) {
	var b strings.Builder
	endCol = -1
	in := startInComment
	i := 0
	n := len(text)
	first := startInComment
	for i < n {
		if in {
			if text[i] == '*' && i+1 < n && text[i+1] == '/' {
				in = false
				i += 2
				if first {
					endCol = i
					first = false
				}
				b.WriteByte(' ')
				continue
			}
			i++
			continue
		}
		c := text[i]
		switch {
		case c == '/' && i+1 < n && text[i+1] == '/':
			return b.String(), endCol, false
		case c == '/' && i+1 < n && text[i+1] == '*':
			in = true
			i += 2
		case c == '"' || c == '\'':
			q := c
			b.WriteByte(c)
			i++
			for i < n && text[i] != q {
				if text[i] == '\\' && i+1 < n {
					b.WriteByte(text[i])
					i++
				}
				b.WriteByte(text[i])
				i++
			}
			if i < n {
				b.WriteByte(q)
				i++
			}
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String(), endCol, in
}

// defineName extracts the macro name from a #define argument.
func defineName(arg string) string {
	for i := 0; i < len(arg); i++ {
		c := arg[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return arg[:i]
		}
	}
	return arg
}
